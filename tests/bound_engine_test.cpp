// Property tests for the incremental bound engine and the parallel root
// split: the event-driven ternary simulator must track the from-scratch
// simulator through arbitrary set/undo sequences, the incremental bound
// must be bit-identical to the reference recomputation, and the parallel
// exhaustive search must return the serial result for any thread count.
#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "opt/bound_engine.hpp"
#include "opt/state_search.hpp"
#include "sim/incremental.hpp"
#include "util/rng.hpp"

namespace svtox::opt {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist random_net(std::uint64_t seed, int inputs = 10, int gates = 60) {
  return netlist::random_circuit(lib(), "bound_r", inputs, gates, seed);
}

sim::Tri random_tri(Rng& rng) {
  const std::uint64_t r = rng.next_below(3);
  return r == 0 ? sim::Tri::kZero : r == 1 ? sim::Tri::kOne : sim::Tri::kX;
}

TEST(IncrementalTernarySim, MatchesFullResimulationUnderRandomSetUndo) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto n = random_net(seed, 8 + static_cast<int>(seed), 50 + 20 * static_cast<int>(seed));
    sim::IncrementalTernarySim inc(n);
    std::vector<sim::Tri> reference(static_cast<std::size_t>(n.num_control_points()),
                                    sim::Tri::kX);
    std::vector<std::pair<int, sim::Tri>> stack;  // (index, previous) per frame

    Rng rng(seed * 97);
    for (int step = 0; step < 200; ++step) {
      const bool do_undo = !stack.empty() && rng.next_below(3) == 0;
      if (do_undo) {
        reference[static_cast<std::size_t>(stack.back().first)] = stack.back().second;
        stack.pop_back();
        inc.undo();
      } else {
        const int index =
            static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.num_control_points())));
        const sim::Tri value = random_tri(rng);
        stack.emplace_back(index, reference[static_cast<std::size_t>(index)]);
        reference[static_cast<std::size_t>(index)] = value;
        inc.set_input(index, value);
      }
      ASSERT_EQ(inc.input_values(), reference) << "seed " << seed << " step " << step;
      ASSERT_EQ(inc.values(), sim::simulate_ternary(n, reference))
          << "seed " << seed << " step " << step;
    }
    // Full unwind returns to the all-X start.
    while (!stack.empty()) {
      stack.pop_back();
      inc.undo();
    }
    EXPECT_EQ(inc.values(),
              sim::simulate_ternary(
                  n, std::vector<sim::Tri>(
                         static_cast<std::size_t>(n.num_control_points()), sim::Tri::kX)));
  }
}

TEST(IncrementalTernarySim, ReportsEveryGateWhoseLocalStateChanged) {
  const auto n = random_net(5, 12, 80);
  sim::IncrementalTernarySim inc(n);
  std::vector<sim::Tri> previous = inc.values();
  Rng rng(55);
  for (int step = 0; step < 60; ++step) {
    const int index =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.num_control_points())));
    std::vector<int> changed;
    inc.set_input(index, random_tri(rng), &changed);
    // Every gate whose masked local state differs must be in the report.
    for (int g = 0; g < n.num_gates(); ++g) {
      const bool stale = !(sim::local_ternary_mask(n, previous, g) ==
                           sim::local_ternary_mask(n, inc.values(), g));
      const bool reported = std::find(changed.begin(), changed.end(), g) != changed.end();
      if (stale) {
        EXPECT_TRUE(reported) << "gate " << g << " step " << step;
      }
    }
    // And no gate is reported twice.
    std::vector<int> sorted = changed;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
    previous = inc.values();
  }
}

TEST(BoundEngine, IncrementalBoundBitIdenticalToReference) {
  for (std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
    const auto n = random_net(seed, 10, 70);
    const AssignmentProblem problem(n, 0.05);
    for (BoundKind kind : {BoundKind::kMinVariant, BoundKind::kFastestVariant}) {
      BoundEngine incremental(problem, kind, BoundMode::kIncremental);
      BoundEngine reference(problem, kind, BoundMode::kReference);
      Rng rng(seed * 131);
      int open_frames = 0;
      for (int step = 0; step < 120; ++step) {
        if (open_frames > 0 && rng.next_below(3) == 0) {
          incremental.undo();
          reference.undo();
          --open_frames;
        } else {
          const int index = static_cast<int>(
              rng.next_below(static_cast<std::uint64_t>(n.num_control_points())));
          const sim::Tri value = random_tri(rng);
          const double inc_bound = incremental.set_input(index, value);
          const double ref_bound = reference.set_input(index, value);
          ++open_frames;
          // Bit-identical, not approximately equal: the engine sums its
          // term cache in the reference's gate order on purpose, so the
          // search traversal cannot be perturbed by the optimization.
          ASSERT_EQ(inc_bound, ref_bound) << "seed " << seed << " step " << step;
        }
        ASSERT_EQ(incremental.bound(), reference.bound());
        ASSERT_EQ(incremental.input_values(), reference.input_values());
      }
    }
  }
}

TEST(BoundEngine, MatchesFreeFunctionLowerBound) {
  const auto n = random_net(11, 9, 55);
  const AssignmentProblem problem(n, 0.10);
  BoundEngine engine(problem, BoundKind::kMinVariant);
  std::vector<sim::Tri> inputs(static_cast<std::size_t>(n.num_control_points()),
                               sim::Tri::kX);
  Rng rng(11);
  double bound = engine.bound();
  EXPECT_EQ(bound, leakage_lower_bound_na(problem, inputs, BoundKind::kMinVariant));
  for (int i = 0; i < n.num_control_points(); ++i) {
    const sim::Tri value = rng.next_bool() ? sim::Tri::kOne : sim::Tri::kZero;
    inputs[static_cast<std::size_t>(i)] = value;
    bound = engine.set_input(i, value);
    EXPECT_EQ(bound, leakage_lower_bound_na(problem, inputs, BoundKind::kMinVariant));
  }
}

TEST(ParallelSearch, ExactSolutionIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {26ULL, 27ULL}) {
    const auto n = random_net(seed, 6, 14);
    const AssignmentProblem problem(n, 0.10);
    SearchOptions options;
    options.time_limit_s = 60.0;
    options.threads = 1;
    const Solution serial = exact_search(problem, options);
    for (int threads : {2, 4}) {
      options.threads = threads;
      const Solution parallel = exact_search(problem, options);
      EXPECT_EQ(parallel.leakage_na, serial.leakage_na)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel.sleep_vector, serial.sleep_vector);
      EXPECT_EQ(parallel.delay_ps, serial.delay_ps);
      ASSERT_EQ(parallel.config.size(), serial.config.size());
      for (std::size_t g = 0; g < serial.config.size(); ++g) {
        EXPECT_EQ(parallel.config[g].variant, serial.config[g].variant) << "gate " << g;
      }
    }
  }
}

TEST(ParallelSearch, ParallelHeu2NeverWorseThanHeu1) {
  const auto n = random_net(30, 10, 80);
  const AssignmentProblem problem(n, 0.05);
  const Solution h1 = heuristic1(problem);
  SearchOptions options;
  options.time_limit_s = 0.5;
  options.threads = 4;
  const Solution h2 = heuristic2(problem, options);
  EXPECT_LE(h2.leakage_na, h1.leakage_na + 1e-9);
  EXPECT_GE(h2.states_explored, h1.states_explored);
}

TEST(ParallelSearch, ReferenceBoundModeFindsTheSameExactOptimum) {
  const auto n = random_net(31, 6, 14);
  const AssignmentProblem problem(n, 0.10);
  SearchOptions options;
  options.time_limit_s = 60.0;
  const Solution incremental = exact_search(problem, options);
  options.bound_mode = BoundMode::kReference;
  const Solution reference = exact_search(problem, options);
  EXPECT_EQ(incremental.leakage_na, reference.leakage_na);
  EXPECT_EQ(incremental.sleep_vector, reference.sleep_vector);
  // Identical bounds mean identical traversals: same node/leaf counts.
  EXPECT_EQ(incremental.nodes_visited, reference.nodes_visited);
  EXPECT_EQ(incremental.states_explored, reference.states_explored);
}

TEST(ParallelSearch, ProbeSeedIsConfigurableAndDeterministic) {
  const auto n = random_net(32, 10, 60);
  const AssignmentProblem problem(n, 0.05);
  SearchOptions options;
  options.time_limit_s = 60.0;  // generous: every probe must complete
  options.max_leaves = 1;       // tree search stops after the first descent
  options.random_probes = 64;
  const Solution a = state_only_search(problem, options);
  const Solution b = state_only_search(problem, options);
  EXPECT_EQ(a.leakage_na, b.leakage_na);
  EXPECT_EQ(a.sleep_vector, b.sleep_vector);
  options.probe_seed = 42;
  const Solution c = state_only_search(problem, options);
  // A different probe stream still yields a valid (possibly different)
  // solution that the incumbent logic never lets fall below the descent.
  EXPECT_GT(c.leakage_na, 0.0);
  EXPECT_EQ(c.states_explored, a.states_explored);
}

TEST(ParallelSearch, ProbesHonorTheSearchDeadline) {
  const auto n = random_net(32, 10, 60);
  const AssignmentProblem problem(n, 0.05);
  SearchOptions options;
  options.time_limit_s = 0.0;  // expired before the sweep starts
  options.random_probes = 64;
  const Solution a = state_only_search(problem, options);
  // The first descent's leaf always completes, but no probe may start once
  // the deadline has passed.
  EXPECT_GE(a.states_explored, 1u);
  EXPECT_LT(a.states_explored,
            static_cast<std::uint64_t>(options.random_probes));
}

}  // namespace
}  // namespace svtox::opt
