// Variant-generation tests. The headline check is the paper's Table 2:
// the number of cell versions required per archetype.
#include <gtest/gtest.h>

#include <set>

#include "cellkit/analyzer.hpp"
#include "cellkit/state.hpp"
#include "cellkit/topology.hpp"
#include "cellkit/variants.hpp"

namespace svtox::cellkit {
namespace {

const model::TechParams& tech() { return model::TechParams::nominal(); }

CellVersionSet gen(const CellTopology& topo, bool four_point, bool uniform = false) {
  VariantOptions opt;
  opt.four_point = four_point;
  opt.uniform_stack = uniform;
  return generate_versions(topo, tech(), opt);
}

struct Table2Case {
  const char* cell;
  int four_point_versions;
  int two_point_versions;
};

class Table2 : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2, VersionCountsMatchPaper) {
  const Table2Case& c = GetParam();
  const CellTopology topo = make_standard_cell(c.cell, tech());
  EXPECT_EQ(gen(topo, /*four_point=*/true).num_versions(), c.four_point_versions)
      << c.cell << " 4-option";
  EXPECT_EQ(gen(topo, /*four_point=*/false).num_versions(), c.two_point_versions)
      << c.cell << " 2-option";
}

// Paper Table 2 rows. One documented deviation: the paper reports 8
// four-option versions for NOR2; our generator produces 7 because the
// fast-fall version of state 11 (single output-side PMOS at high-Vt) is
// shared with state 01's, which the paper's count implies was not shared.
// No uniform stack-position rule reproduces both NOR2=8 and NOR3=9; ours
// matches NOR3 exactly and every 2-option count, and the extra sharing only
// shrinks the library without removing any trade-off point.
INSTANTIATE_TEST_SUITE_P(PaperTable2, Table2,
                         ::testing::Values(Table2Case{"INV", 5, 3},
                                           Table2Case{"NAND2", 5, 3},
                                           Table2Case{"NAND3", 5, 3},
                                           Table2Case{"NOR2", 7, 4},
                                           Table2Case{"NOR3", 9, 5}),
                         [](const auto& info) { return info.param.cell; });

TEST(Variants, FastestVersionAlwaysPresentAndShared) {
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet set = gen(topo, true);
    const int fast = set.fastest_version();
    EXPECT_TRUE(set.versions()[fast].is_fastest());
    for (const StateTradeoffs& st : set.all_tradeoffs()) {
      EXPECT_EQ(st.version_index[static_cast<int>(TradeoffPoint::kMinDelay)], fast)
          << name;
    }
  }
}

TEST(Variants, EveryStateReachesItsTradeoffsThroughCanonicalization) {
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet set = gen(topo, true);
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      const PinMapping m = canonicalize(topo, state);
      // Must not throw, and must include at least min-delay and min-leak.
      const StateTradeoffs& st = set.tradeoffs(m.canonical_state);
      EXPECT_GE(st.version_index[static_cast<int>(TradeoffPoint::kMinDelay)], 0);
      EXPECT_GE(st.version_index[static_cast<int>(TradeoffPoint::kMinLeakage)], 0);
    }
  }
}

TEST(Variants, MinLeakIsLowestLeakageOptionPerState) {
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet set = gen(topo, true);
    for (const StateTradeoffs& st : set.all_tradeoffs()) {
      const int min_leak = st.version_index[static_cast<int>(TradeoffPoint::kMinLeakage)];
      const double floor =
          cell_leakage(topo, tech(), st.canonical_state,
                       set.versions()[min_leak].assignment)
              .total_na();
      for (int v : st.distinct_versions()) {
        const double leak =
            cell_leakage(topo, tech(), st.canonical_state, set.versions()[v].assignment)
                .total_na();
        EXPECT_GE(leak, floor - 1e-9) << name;
      }
    }
  }
}

TEST(Variants, IntermediatePointsBracketedByExtremes) {
  // fast_rise / fast_fall leakage lies between min-delay and min-leak
  // (paper Sec. 4: "lower leakage than the fastest cell version but faster
  // than the lowest leakage version").
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const CellVersionSet set = gen(nand2, true);
  const StateTradeoffs& st11 = set.tradeoffs(0b11);
  const double fast =
      cell_leakage(nand2, tech(), 0b11,
                   set.versions()[st11.version_index[0]].assignment)
          .total_na();
  const double min_leak =
      cell_leakage(nand2, tech(), 0b11,
                   set.versions()[st11.version_index[3]].assignment)
          .total_na();
  for (TradeoffPoint p : {TradeoffPoint::kFastRise, TradeoffPoint::kFastFall}) {
    const int v = st11.version_index[static_cast<int>(p)];
    ASSERT_GE(v, 0);
    const double leak =
        cell_leakage(nand2, tech(), 0b11, set.versions()[v].assignment).total_na();
    EXPECT_LT(leak, fast);
    EXPECT_GT(leak, min_leak);
  }
}

TEST(Variants, Nand2State00HasOnlyTwoTradeoffPoints) {
  // Paper Sec. 4: "for the input state 00, only two trade-off points are
  // needed" -- the intermediate versions degenerate.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const CellVersionSet set = gen(nand2, true);
  const StateTradeoffs& st = set.tradeoffs(0b00);
  EXPECT_EQ(st.distinct_versions().size(), 2u);
}

TEST(Variants, Nand2States00And10ShareMinLeakVersion) {
  // Paper Sec. 4: "both versions are shared with the 00 state."
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const CellVersionSet set = gen(nand2, true);
  EXPECT_EQ(set.tradeoffs(0b00).version_index[3], set.tradeoffs(0b01).version_index[3]);
}

TEST(Variants, ToxAssignmentsAreStackUniform) {
  // Paper Sec. 4: "the assignment of Tox to transistors in a stack is
  // already uniform in the proposed approach" -- for the Table 2 cell set.
  for (const std::string& name : {"INV", "NAND2", "NAND3", "NOR2", "NOR3"}) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet set = gen(topo, true);
    const SpNode* nets[2] = {&topo.pull_down(), &topo.pull_up()};
    const int firsts[2] = {0, topo.num_pull_down_devices()};
    const int counts[2] = {topo.num_pull_down_devices(),
                           topo.num_devices() - topo.num_pull_down_devices()};
    for (const CellVersion& version : set.versions()) {
      for (int n = 0; n < 2; ++n) {
        if (longest_path(*nets[n]) <= 1) continue;  // no stack in network
        // In a stacked network, thick devices must be all-or-none among the
        // devices that tunnel; with our NAND/NOR set, all-or-none overall.
        std::set<model::ToxClass> tox;
        for (int d = firsts[n]; d < firsts[n] + counts[n]; ++d) {
          tox.insert(version.assignment[d].tox);
        }
        EXPECT_EQ(tox.size(), 1u) << name << " " << version.name;
      }
    }
  }
}

TEST(Variants, UniformStackNeverBeatsIndividualControl) {
  // Uniform stacks restrict the assignment space; per-state min-leak can
  // only get worse or stay equal (paper Table 5's ~10% penalty).
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet indiv = gen(topo, true, /*uniform=*/false);
    const CellVersionSet unif = gen(topo, true, /*uniform=*/true);
    for (const StateTradeoffs& st : indiv.all_tradeoffs()) {
      const double i =
          cell_leakage(topo, tech(), st.canonical_state,
                       indiv.versions()[st.version_index[3]].assignment)
              .total_na();
      const double u =
          cell_leakage(topo, tech(), st.canonical_state,
                       unif.versions()[unif.tradeoffs(st.canonical_state).version_index[3]]
                           .assignment)
              .total_na();
      EXPECT_LE(u, i + 1e-9) << name;  // more devices slowed -> leak <= individual
    }
  }
}

TEST(Variants, UniformStackAssignsWholeSeriesGroup) {
  // NAND2 state 10's single-device assignment grows to the whole stack.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const CellVersionSet unif = gen(nand2, true, /*uniform=*/true);
  const StateTradeoffs& st = unif.tradeoffs(0b01);
  const CellAssignment& a = unif.versions()[st.version_index[3]].assignment;
  EXPECT_EQ(a[0].vt, model::VtClass::kHigh);
  EXPECT_EQ(a[1].vt, model::VtClass::kHigh);
}

TEST(Variants, VtOnlyLibraryHasNoThickOxide) {
  VariantOptions opt;
  opt.four_point = true;
  opt.vt_only = true;
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet set = generate_versions(topo, tech(), opt);
    for (const CellVersion& version : set.versions()) {
      for (const DeviceAssign& a : version.assignment) {
        EXPECT_EQ(a.tox, model::ToxClass::kThin) << name << " " << version.name;
      }
    }
  }
}

TEST(Variants, TwoPointIsSubsetOfFourPoint) {
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet four = gen(topo, true);
    const CellVersionSet two = gen(topo, false);
    EXPECT_LE(two.num_versions(), four.num_versions()) << name;
    // Every 2-option assignment exists in the 4-option library.
    for (const CellVersion& v2 : two.versions()) {
      bool found = false;
      for (const CellVersion& v4 : four.versions()) {
        found = found || v4.assignment == v2.assignment;
      }
      EXPECT_TRUE(found) << name << " " << v2.name;
    }
  }
}

TEST(Variants, VersionNamesAreUnique) {
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet set = gen(topo, true);
    std::set<std::string> names;
    for (const CellVersion& v : set.versions()) names.insert(v.name);
    EXPECT_EQ(names.size(), static_cast<std::size_t>(set.num_versions()));
  }
}

}  // namespace
}  // namespace svtox::cellkit
