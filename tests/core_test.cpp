// End-to-end tests of the StandbyOptimizer facade -- the paper's headline
// orderings must hold on real benchmark circuits.
#include <gtest/gtest.h>

#include <fstream>

#include "core/optimizer.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "report/report.hpp"
#include "util/error.hpp"

namespace svtox::core {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

class CoreC432 : public ::testing::Test {
 protected:
  static const netlist::Netlist& circuit() {
    static const netlist::Netlist n = netlist::make_benchmark("c432", lib());
    return n;
  }
  static RunConfig fast_config() {
    RunConfig config;
    config.penalty_fraction = 0.05;
    config.time_limit_s = 0.3;
    config.random_vectors = 2000;
    return config;
  }
};

TEST_F(CoreC432, MethodOrderingMatchesPaper) {
  StandbyOptimizer optimizer(circuit());
  const RunConfig config = fast_config();
  const MethodResult avg = optimizer.run(Method::kAverageRandom, config);
  const MethodResult state = optimizer.run(Method::kStateOnly, config);
  const MethodResult vt = optimizer.run(Method::kVtState, config);
  const MethodResult h1 = optimizer.run(Method::kHeu1, config);
  const MethodResult h2 = optimizer.run(Method::kHeu2, config);

  // Paper Table 4's ordering: average >= state-only > vt+state > proposed.
  EXPECT_GE(avg.leakage_ua, state.leakage_ua * 0.999);
  EXPECT_GT(state.leakage_ua, vt.leakage_ua);
  EXPECT_GT(vt.leakage_ua, h1.leakage_ua);
  EXPECT_LE(h2.leakage_ua, h1.leakage_ua + 1e-9);
}

TEST_F(CoreC432, ReductionFactorsInPaperRegime) {
  StandbyOptimizer optimizer(circuit());
  const RunConfig config = fast_config();
  // Paper averages at 5%: state-only ~1.06X, vt+state ~2.5X, Heu1 ~5.3X.
  const MethodResult state = optimizer.run(Method::kStateOnly, config);
  EXPECT_GT(state.reduction_x, 1.0);
  EXPECT_LT(state.reduction_x, 1.6);
  const MethodResult vt = optimizer.run(Method::kVtState, config);
  EXPECT_GT(vt.reduction_x, 1.6);
  EXPECT_LT(vt.reduction_x, 4.5);
  const MethodResult h1 = optimizer.run(Method::kHeu1, config);
  EXPECT_GT(h1.reduction_x, 3.0);
  EXPECT_LT(h1.reduction_x, 9.0);
}

TEST_F(CoreC432, HigherPenaltyImprovesProposedMethod) {
  StandbyOptimizer optimizer(circuit());
  RunConfig config = fast_config();
  config.penalty_fraction = 0.05;
  const double at5 = optimizer.run(Method::kHeu1, config).leakage_ua;
  config.penalty_fraction = 0.25;
  const double at25 = optimizer.run(Method::kHeu1, config).leakage_ua;
  EXPECT_LT(at25, at5);
}

TEST_F(CoreC432, DelayBudgetExposedAndSane) {
  StandbyOptimizer optimizer(circuit());
  const auto& budget = optimizer.delay_budget();
  EXPECT_GT(budget.fast_delay_ps, 0.0);
  EXPECT_GT(budget.slow_delay_ps, 1.5 * budget.fast_delay_ps);
}

TEST_F(CoreC432, AverageRandomIsCached) {
  StandbyOptimizer optimizer(circuit());
  const double a = optimizer.average_random_leakage_ua(2000, 7);
  const double b = optimizer.average_random_leakage_ua(2000, 7);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(CoreC432, SolutionDelayWithinConstraint) {
  StandbyOptimizer optimizer(circuit());
  RunConfig config = fast_config();
  const MethodResult h1 = optimizer.run(Method::kHeu1, config);
  const double constraint = optimizer.delay_budget().constraint_ps(0.05);
  EXPECT_LE(h1.solution.delay_ps, constraint + 1e-3);
}

TEST(Core, ExactBeatsHeuristicsOnTinyCircuit) {
  const auto n = netlist::random_circuit(lib(), "tiny_e", 4, 10, 5);
  StandbyOptimizer optimizer(n);
  RunConfig config;
  config.penalty_fraction = 0.10;
  config.time_limit_s = 20.0;
  config.random_vectors = 200;
  const MethodResult exact = optimizer.run(Method::kExact, config);
  const MethodResult h1 = optimizer.run(Method::kHeu1, config);
  EXPECT_LE(exact.leakage_ua, h1.leakage_ua + 1e-9);
}

TEST(Core, UnfinalizedNetlistRejected) {
  netlist::Netlist n("raw", &lib());
  EXPECT_THROW(StandbyOptimizer{n}, ContractError);
}

TEST(Core, MethodNames) {
  EXPECT_STREQ(to_string(Method::kHeu1), "heu1");
  EXPECT_STREQ(to_string(Method::kAverageRandom), "average_random");
  EXPECT_STREQ(to_string(Method::kVtState), "vt_state");
}

TEST(Report, Formatting) {
  EXPECT_EQ(report::format_ua(24.53), "24.5");
  EXPECT_EQ(report::format_x(5.28), "5.3");
  EXPECT_EQ(report::paper_vs_measured(24.5, 26.12), "24.5 / 26.1");
  EXPECT_EQ(report::format_seconds(0.002), "2.00ms");
  EXPECT_EQ(report::format_seconds(0.5), "500ms");
  EXPECT_EQ(report::format_seconds(12.3), "12.3s");
}

TEST(Report, SaveTableWritesTxtAndCsv) {
  AsciiTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/svtox_table.txt";
  ASSERT_TRUE(report::save_table(t, path));
  std::ifstream txt(path);
  EXPECT_TRUE(txt.good());
  std::ifstream csv(path + ".csv");
  EXPECT_TRUE(csv.good());
}

}  // namespace
}  // namespace svtox::core
