// Parameterized property sweeps over every cell archetype and every input
// state: structural invariants the electrical classifier and the variant
// generator must never violate, regardless of topology.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "cellkit/analyzer.hpp"
#include "cellkit/delay.hpp"
#include "cellkit/state.hpp"
#include "cellkit/topology.hpp"
#include "cellkit/variants.hpp"

namespace svtox::cellkit {
namespace {

const model::TechParams& tech() { return model::TechParams::nominal(); }

/// One (cell, state) pair of the sweep.
class CellStateSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t>> {
 protected:
  const std::string& cell_name() const { return std::get<0>(GetParam()); }
  std::uint32_t state() const { return std::get<1>(GetParam()); }
  bool state_valid(const CellTopology& topo) const {
    return state() < topo.num_states();
  }
};

TEST_P(CellStateSweep, ClassificationInvariants) {
  const CellTopology topo = make_standard_cell(cell_name(), tech());
  if (!state_valid(topo)) GTEST_SKIP();
  const CellStateAnalysis a = classify(topo, state());

  for (int d = 0; d < topo.num_devices(); ++d) {
    const DeviceSituation& sit = a.devices[d];
    // ON/OFF must agree with gate polarity.
    EXPECT_EQ(sit.on, topo.device_on(d, state())) << cell_name() << " dev " << d;
    // Channel tunneling classifications apply to ON devices only; EDT and
    // subthreshold bias to OFF devices only.
    if (sit.on) {
      EXPECT_TRUE(sit.gate_bias == model::GateBias::kFullChannel ||
                  sit.gate_bias == model::GateBias::kReducedChannel)
          << cell_name() << " dev " << d;
    } else {
      EXPECT_TRUE(sit.gate_bias == model::GateBias::kReverseOverlap ||
                  sit.gate_bias == model::GateBias::kNone)
          << cell_name() << " dev " << d;
    }
    // Exactly one network conducts; every device knows which side it is on.
    const bool in_pdn = d < topo.num_pull_down_devices();
    EXPECT_EQ(sit.in_conducting_network, in_pdn ? !a.output : a.output);
  }
}

TEST_P(CellStateSweep, LeakyDeviceTargetsArePolarized) {
  const CellTopology topo = make_standard_cell(cell_name(), tech());
  if (!state_valid(topo)) GTEST_SKIP();
  const LeakyDevices leaky = find_leaky_devices(topo, tech(), state());
  // Thick-oxide only suppresses tunneling of ON devices; high-Vt only
  // suppresses subthreshold current of OFF devices.
  for (int d : leaky.tox_targets) {
    EXPECT_TRUE(topo.device_on(d, state())) << cell_name() << " dev " << d;
  }
  for (int d : leaky.vt_targets) {
    EXPECT_FALSE(topo.device_on(d, state())) << cell_name() << " dev " << d;
  }
}

TEST_P(CellStateSweep, CanonicalStateIsAFixpoint) {
  const CellTopology topo = make_standard_cell(cell_name(), tech());
  if (!state_valid(topo)) GTEST_SKIP();
  const PinMapping once = canonicalize(topo, state());
  const PinMapping twice = canonicalize(topo, once.canonical_state);
  EXPECT_EQ(twice.canonical_state, once.canonical_state);
  EXPECT_TRUE(twice.is_identity());
}

TEST_P(CellStateSweep, CanonicalLeakageNeverExceedsRaw) {
  // Pin reordering can only help (or be neutral) for the fastest version.
  const CellTopology topo = make_standard_cell(cell_name(), tech());
  if (!state_valid(topo)) GTEST_SKIP();
  const CellAssignment nominal = nominal_assignment(topo);
  const PinMapping m = canonicalize(topo, state());
  const double raw = cell_leakage(topo, tech(), state(), nominal).total_na();
  const double canon = cell_leakage(topo, tech(), m.canonical_state, nominal).total_na();
  EXPECT_LE(canon, raw + 1e-9) << cell_name();
}

TEST_P(CellStateSweep, MinLeakDelayPenaltyIsOneSidedPerEdge) {
  // The fast-rise point never slows any rise arc; fast-fall never slows any
  // fall arc (that is their defining property, paper Sec. 4).
  const CellTopology topo = make_standard_cell(cell_name(), tech());
  if (!state_valid(topo)) GTEST_SKIP();
  const CellVersionSet set = generate_versions(topo, tech(), {});
  const PinMapping m = canonicalize(topo, state());
  const StateTradeoffs& st = set.tradeoffs(m.canonical_state);

  const int fr = st.version_index[static_cast<int>(TradeoffPoint::kFastRise)];
  if (fr >= 0) {
    for (int pin = 0; pin < topo.num_inputs(); ++pin) {
      EXPECT_DOUBLE_EQ(delay_factor(topo, tech(), set.versions()[fr].assignment, pin,
                                    Edge::kRise),
                       1.0)
          << cell_name();
    }
  }
  const int ff = st.version_index[static_cast<int>(TradeoffPoint::kFastFall)];
  if (ff >= 0) {
    for (int pin = 0; pin < topo.num_inputs(); ++pin) {
      EXPECT_DOUBLE_EQ(delay_factor(topo, tech(), set.versions()[ff].assignment, pin,
                                    Edge::kFall),
                       1.0)
          << cell_name();
    }
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<std::string, std::uint32_t>>& info) {
  return std::get<0>(info.param) + "_s" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllCellsAllStates, CellStateSweep,
    ::testing::Combine(::testing::ValuesIn(standard_cell_names()),
                       ::testing::Range(0u, 16u)),
    sweep_name);

}  // namespace
}  // namespace svtox::cellkit
