#!/usr/bin/env bash
# Two-node cluster smoke test with a mid-run worker kill.
#
# Runs a batch manifest (flat jobs + subtree coordinator jobs) three ways:
#   1. through a single standalone daemon (the reference),
#   2. through a 2-node --peers cluster,
#   3. through a fresh 2-node cluster whose worker node is SIGKILLed while
#      the coordinator jobs are in flight (work-stealing must finish the
#      orphaned subtrees locally),
# and requires the solution files and the result table (runtime stripped)
# of runs 2 and 3 to be byte-identical to run 1: node count and node death
# must be invisible in the output.
#
# usage: dist_daemon_test.sh <svtox> <svtoxd> <workdir> [big]
#   "big" switches the circuit set to c6288/c7552 (the CI dist-smoke lane);
#   the default set keeps the test minutes-cheap for local ctest runs.
set -u

SVTOX=$1
SVTOXD=$2
WORK=$3
MODE=${4:-quick}

rm -rf "$WORK"
mkdir -p "$WORK"
PIDS=()

stop_all() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill -TERM "$pid" 2>/dev/null
  done
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    wait "$pid" 2>/dev/null
  done
  PIDS=()
}

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    [ -f "$log" ] && sed "s#^#  $(basename "$log"): #" "$log" >&2
  done
  stop_all
  exit 1
}

# Launches one daemon on the given port; returns non-zero if it never
# reports the TCP listener (e.g. the port was taken). Appends to PIDS on
# success and exports LAUNCHED_PID.
launch() {  # <name> <port> [extra svtoxd args...]
  local name=$1 port=$2
  shift 2
  local log="$WORK/$name.log"
  : > "$log"
  "$SVTOXD" --socket "$WORK/$name.sock" --workers 2 --listen-tcp "$port" \
      --steal-after 10 "$@" > "$log" 2>&1 &
  local pid=$!
  for _ in $(seq 1 50); do
    grep -q "listening on tcp://" "$log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if grep -q "listening on tcp://" "$log" 2>/dev/null; then
    PIDS+=("$pid")
    LAUNCHED_PID=$pid
    return 0
  fi
  wait "$pid" 2>/dev/null
  return 1
}

# Starts a standalone daemon on a random free port -> DAEMON_PID, DAEMON_PORT.
start_solo() {  # <name>
  for _ in 1 2 3 4 5; do
    local port=$((20000 + RANDOM % 20000))
    if launch "$1" "$port"; then
      DAEMON_PID=$LAUNCHED_PID
      DAEMON_PORT=$port
      return 0
    fi
  done
  fail "could not start daemon $1 on any port"
}

# Starts a 2-node cluster -> A_PID/A_PORT/B_PID/B_PORT. Peer addresses must
# be known up front, so both ports are picked before either daemon starts;
# a collision on either port retries the whole pair.
start_cluster() {  # <tag>
  local tag=$1
  for _ in 1 2 3 4 5; do
    local pa=$((20000 + RANDOM % 20000))
    local pb=$((20000 + RANDOM % 20000))
    [ "$pa" = "$pb" ] && continue
    local peers="127.0.0.1:$pa,127.0.0.1:$pb"
    if ! launch "a_$tag" "$pa" --peers "$peers" --self "127.0.0.1:$pa"; then
      continue
    fi
    local a_pid=$LAUNCHED_PID
    if ! launch "b_$tag" "$pb" --peers "$peers" --self "127.0.0.1:$pb"; then
      kill -TERM "$a_pid" 2>/dev/null
      wait "$a_pid" 2>/dev/null
      PIDS=()
      continue
    fi
    A_PID=$a_pid A_PORT=$pa B_PID=$LAUNCHED_PID B_PORT=$pb
    return 0
  done
  fail "could not start cluster $tag"
}

# The manifest: cache off so every run solves fresh (determinism is the
# point here; the distributed cache has its own tests). Coordinator jobs
# lead so the worker node is busy with subtrees when the kill lands. The
# state-only row stays on c432: its per-leaf cost grows steeply with gate
# count (hundreds of ms/leaf on c880+), and the transport/stealing paths
# under test are circuit-agnostic.
if [ "$MODE" = big ]; then
  CIRCUITS="c6288 c7552"
  LEAVES=200
else
  CIRCUITS="c880 c1355"
  LEAVES=400
fi
MANIFEST=$WORK/manifest.json
cat > "$MANIFEST" <<EOF
{"circuit":"c432","method":"state","penalty":10,"max_leaves":300,"time_limit":600,"subtrees":4,"vectors":500,"cache":false}
EOF
for circuit in $CIRCUITS; do
  cat >> "$MANIFEST" <<EOF
{"circuit":"$circuit","method":"heu2","penalty":5,"max_leaves":$LEAVES,"time_limit":600,"subtrees":4,"vectors":500,"cache":false}
{"circuit":"$circuit","method":"heu1","penalty":5,"vectors":500,"cache":false}
EOF
done

# Result lines vary only in runtime across runs; strip it for the table.
table_of() {  # <ndjson-file> <out-table>
  sed -E 's/"runtime_s":[0-9.eE+-]+,?//' "$1" > "$2"
}

run_batch() {  # <port> <tag>
  local port=$1 tag=$2
  mkdir -p "$WORK/out_$tag"
  "$SVTOX" batch --manifest "$MANIFEST" --tcp "127.0.0.1:$port" \
      --output-dir "$WORK/out_$tag" > "$WORK/results_$tag.json" 2> "$WORK/batch_$tag.log" \
      || fail "batch $tag failed: $(cat "$WORK/batch_$tag.log")"
  table_of "$WORK/results_$tag.json" "$WORK/table_$tag.txt"
}

compare_to_reference() {  # <tag>
  local tag=$1
  cmp -s "$WORK/table_ref.txt" "$WORK/table_$tag.txt" \
      || fail "$tag result table differs from single-node reference
$(diff "$WORK/table_ref.txt" "$WORK/table_$tag.txt" | head -10)"
  for ref in "$WORK"/out_ref/*.solution; do
    local name
    name=$(basename "$ref")
    cmp -s "$ref" "$WORK/out_$tag/$name" \
        || fail "$tag solution $name differs from single-node reference"
  done
}

# --- Run 1: single-node reference. -----------------------------------------
start_solo ref
run_batch "$DAEMON_PORT" ref
stop_all

# --- Run 2: two-node cluster, both nodes healthy. --------------------------
start_cluster healthy
run_batch "$A_PORT" cluster
compare_to_reference cluster
stop_all

# --- Run 3: two-node cluster, worker killed mid-run. ------------------------
start_cluster kill
mkdir -p "$WORK/out_killed"
"$SVTOX" batch --manifest "$MANIFEST" --tcp "127.0.0.1:$A_PORT" \
    --output-dir "$WORK/out_killed" > "$WORK/results_killed.json" 2> "$WORK/batch_killed.log" &
BATCH_PID=$!
sleep 2
kill -KILL "$B_PID" 2>/dev/null || echo "note: worker exited before the kill" >&2
wait "$BATCH_PID" || fail "batch with killed worker failed: $(cat "$WORK/batch_killed.log")"
table_of "$WORK/results_killed.json" "$WORK/table_killed.txt"
compare_to_reference killed
stop_all

echo "PASS: 2-node and kill-one-worker runs byte-identical to single node ($CIRCUITS)"
exit 0
