// Electrical-classification tests: these encode the paper's Figure 1-3
// reasoning about which transistors leak in which input states.
#include <gtest/gtest.h>

#include <algorithm>

#include "cellkit/analyzer.hpp"
#include "cellkit/state.hpp"
#include "cellkit/topology.hpp"
#include "util/error.hpp"

namespace svtox::cellkit {
namespace {

const model::TechParams& tech() { return model::TechParams::nominal(); }

// Device indices for NAND2: 0 = NMOS pin0 (top), 1 = NMOS pin1 (bottom),
// 2 = PMOS pin0, 3 = PMOS pin1.
class Nand2Analyzer : public ::testing::Test {
 protected:
  CellTopology topo_ = make_standard_cell("NAND2", tech());
};

TEST_F(Nand2Analyzer, State11BothNmosTunnelFully) {
  // Paper Fig. 3(b): at 11 both NMOS conduct with full gate bias and both
  // PMOS block with full drain bias.
  const CellStateAnalysis a = classify(topo_, 0b11);
  EXPECT_FALSE(a.output);
  EXPECT_TRUE(a.devices[0].on);
  EXPECT_TRUE(a.devices[1].on);
  EXPECT_EQ(a.devices[0].gate_bias, model::GateBias::kFullChannel);
  EXPECT_EQ(a.devices[1].gate_bias, model::GateBias::kFullChannel);
  EXPECT_FALSE(a.devices[2].on);
  EXPECT_FALSE(a.devices[3].on);
  EXPECT_EQ(a.devices[2].sub_bias, model::SubthresholdBias::kFullVds);
  EXPECT_EQ(a.devices[3].sub_bias, model::SubthresholdBias::kFullVds);
}

TEST_F(Nand2Analyzer, State10TopNmosSeesReducedBias) {
  // Paper Fig. 3(f): with the ON transistor above the OFF one, its source
  // floats to ~Vdd - Vt and tunneling is negligible.
  const CellStateAnalysis a = classify(topo_, 0b01);  // pin0=1 (top ON), pin1=0
  EXPECT_TRUE(a.output);
  EXPECT_TRUE(a.devices[0].on);
  EXPECT_EQ(a.devices[0].gate_bias, model::GateBias::kReducedChannel);
  EXPECT_FALSE(a.devices[1].on);
  EXPECT_EQ(a.devices[1].sub_bias, model::SubthresholdBias::kFullVds);
}

TEST_F(Nand2Analyzer, State01BottomNmosTunnelsFully) {
  // Paper Fig. 2(d): before pin reordering, an ON transistor at the bottom
  // of the stack sees the full gate bias.
  const CellStateAnalysis a = classify(topo_, 0b10);  // pin0=0, pin1=1 (bottom ON)
  EXPECT_TRUE(a.devices[1].on);
  EXPECT_EQ(a.devices[1].gate_bias, model::GateBias::kFullChannel);
  EXPECT_FALSE(a.devices[0].on);
}

TEST_F(Nand2Analyzer, State00TopNmosHasReverseOverlapTunneling) {
  // With the output high, only the topmost OFF NMOS touches a Vdd node and
  // exhibits the (small) reverse overlap tunneling.
  const CellStateAnalysis a = classify(topo_, 0b00);
  EXPECT_EQ(a.devices[0].gate_bias, model::GateBias::kReverseOverlap);
  EXPECT_EQ(a.devices[1].gate_bias, model::GateBias::kNone);
}

TEST_F(Nand2Analyzer, ConductingNetworkOffDevicesHaveCollapsedVds) {
  // At 10, the pull-up conducts through pin1's PMOS; pin0's OFF PMOS has
  // both terminals at Vdd.
  const CellStateAnalysis a = classify(topo_, 0b01);
  EXPECT_FALSE(a.devices[2].on);
  EXPECT_TRUE(a.devices[2].in_conducting_network);
  EXPECT_EQ(a.devices[2].sub_bias, model::SubthresholdBias::kZeroVds);
}

TEST(NorAnalyzer, State01MatchesPaperFigure2a) {
  // Paper Fig. 2(a): NOR2 at state 01 -- only the OFF PMOS needs high-Vt and
  // only the ON NMOS tunnels. Our pin convention: canonical state has the 1
  // on pin 0. Devices: 0/1 = NMOS pins 0/1, 2/3 = PMOS pins 0/1 (PMOS 0
  // adjacent to the output).
  const CellTopology nor2 = make_standard_cell("NOR2", tech());
  const CellStateAnalysis a = classify(nor2, 0b01);
  EXPECT_FALSE(a.output);
  // ON NMOS tunnels at full bias; OFF NMOS carries no current (Vds = 0).
  EXPECT_TRUE(a.devices[0].on);
  EXPECT_EQ(a.devices[0].gate_bias, model::GateBias::kFullChannel);
  EXPECT_FALSE(a.devices[1].on);
  EXPECT_EQ(a.devices[1].sub_bias, model::SubthresholdBias::kZeroVds);
  // PMOS pin0 blocks with full Vds; PMOS pin1 is ON.
  EXPECT_FALSE(a.devices[2].on);
  EXPECT_EQ(a.devices[2].sub_bias, model::SubthresholdBias::kFullVds);
  EXPECT_TRUE(a.devices[3].on);
}

TEST(LeakyDevices, Nand2State11NeedsAllFour) {
  // Paper Fig. 3(b): both NMOS -> thick oxide, both PMOS -> high-Vt.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const LeakyDevices leaky = find_leaky_devices(nand2, tech(), 0b11);
  EXPECT_EQ(leaky.tox_targets, (std::vector<int>{0, 1}));
  EXPECT_EQ(leaky.vt_targets, (std::vector<int>{2, 3}));
}

TEST(LeakyDevices, Nand2State00NeedsOneHighVt) {
  // Paper Fig. 3(e): a single high-Vt transistor suppresses the whole stack;
  // the shared position is the bottom device (also needed by state 10).
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const LeakyDevices leaky = find_leaky_devices(nand2, tech(), 0b00);
  EXPECT_TRUE(leaky.tox_targets.empty());
  EXPECT_EQ(leaky.vt_targets, (std::vector<int>{1}));
}

TEST(LeakyDevices, Nand2State10SharesBottomDevice) {
  // Paper Fig. 3(f): state 10 needs exactly the bottom NMOS at high-Vt.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const LeakyDevices leaky = find_leaky_devices(nand2, tech(), 0b01);
  EXPECT_TRUE(leaky.tox_targets.empty());
  EXPECT_EQ(leaky.vt_targets, (std::vector<int>{1}));
}

TEST(LeakyDevices, Nor2State11PicksSharedStackPosition) {
  // Both NMOS tunnel (parallel, both at full bias); a single PMOS in the
  // series stack suppresses Isub. Under the zeros-first NOR
  // canonicalization OFF PMOS devices fill the stack from its last
  // position, so the rail-side device (index 3) is the one shared across
  // states (paper Table 2's NOR sharing).
  const CellTopology nor2 = make_standard_cell("NOR2", tech());
  const LeakyDevices leaky = find_leaky_devices(nor2, tech(), 0b11);
  EXPECT_EQ(leaky.tox_targets, (std::vector<int>{0, 1}));
  EXPECT_EQ(leaky.vt_targets, (std::vector<int>{3}));
}

TEST(LeakyDevices, PmosIgateIgnoredUnderSiO2) {
  // INV at 0: the ON PMOS tunnels but an order of magnitude below NMOS, so
  // no thick-oxide assignment is made (paper Sec. 4, Fig. 3 discussion).
  const CellTopology inv = make_standard_cell("INV", tech());
  const LeakyDevices leaky = find_leaky_devices(inv, tech(), 0b0);
  EXPECT_TRUE(leaky.tox_targets.empty());
  EXPECT_EQ(leaky.vt_targets, (std::vector<int>{0}));
}

TEST(CellLeakage, Nand2State11MatchesCalibration) {
  // Hand-computed from the nominal TechParams: 2 NMOS (w=1.5) full-channel
  // tunneling + 2 PMOS (w=2) full-Vds subthreshold + PMOS reverse overlap.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const double wn = 1.0 + tech().stack_upsize_slope;
  const auto leak = cell_leakage(nand2, tech(), 0b11, nominal_assignment(nand2));
  EXPECT_NEAR(leak.igate_na, 2 * wn * tech().igate_n_thin, 1.0);
  EXPECT_NEAR(leak.isub_na, 2 * 2.0 * tech().isub_p_low, 1.0);
  // Paper Table 1 reports 270.4 nA for this cell state; the calibrated model
  // must land in the same range.
  EXPECT_NEAR(leak.total_na(), 270.4, 30.0);
}

TEST(CellLeakage, Nand2State10MatchesCalibration) {
  // One full-Vds NMOS (w=2) dominates; paper Table 1 reports 91.8 nA.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const auto leak = cell_leakage(nand2, tech(), 0b01, nominal_assignment(nand2));
  EXPECT_NEAR(leak.total_na(), 91.8, 15.0);
}

TEST(CellLeakage, Nand2State00ShowsStackEffect) {
  // Two stacked OFF NMOS leak at the calibrated 0.30 factor; paper Table 1
  // reports 41.2 nA including the PMOS tunneling floor.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const auto leak = cell_leakage(nand2, tech(), 0b00, nominal_assignment(nand2));
  EXPECT_NEAR(leak.total_na(), 41.2, 10.0);
  // The stack leaks well below a single unstacked device.
  const auto one_off = cell_leakage(nand2, tech(), 0b01, nominal_assignment(nand2));
  EXPECT_LT(leak.isub_na, 0.5 * one_off.isub_na);
}

TEST(CellLeakage, MinLeakVersionsMatchPaperTable1) {
  // Applying the minimum-leakage assignment at each state must reproduce the
  // Table 1 reductions: 270.4 -> 19.5, 41.2 -> 14.0, 91.8 -> 13.3 (within
  // model tolerance).
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  struct Case {
    std::uint32_t state;
    double paper_min_leak_na;
    double tolerance;
  };
  for (const Case& c : {Case{0b11, 19.5, 8.0}, Case{0b00, 14.0, 6.0}, Case{0b01, 13.3, 8.0}}) {
    const LeakyDevices leaky = find_leaky_devices(nand2, tech(), c.state);
    CellAssignment assign = nominal_assignment(nand2);
    for (int d : leaky.vt_targets) assign[d].vt = model::VtClass::kHigh;
    for (int d : leaky.tox_targets) assign[d].tox = model::ToxClass::kThick;
    const auto leak = cell_leakage(nand2, tech(), c.state, assign);
    EXPECT_NEAR(leak.total_na(), c.paper_min_leak_na, c.tolerance)
        << "state " << state_to_string(c.state, 2);
  }
}

TEST(CellLeakage, HighVtNeverIncreasesLeakage) {
  // Property: flipping any device to high-Vt / thick-Tox can only reduce
  // total leakage, for every cell and state.
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      const double base =
          cell_leakage(topo, tech(), state, nominal_assignment(topo)).total_na();
      for (int d = 0; d < topo.num_devices(); ++d) {
        CellAssignment assign = nominal_assignment(topo);
        assign[d].vt = model::VtClass::kHigh;
        EXPECT_LE(cell_leakage(topo, tech(), state, assign).total_na(), base + 1e-9)
            << name << " state " << state << " device " << d << " (hvt)";
        assign = nominal_assignment(topo);
        assign[d].tox = model::ToxClass::kThick;
        EXPECT_LE(cell_leakage(topo, tech(), state, assign).total_na(), base + 1e-9)
            << name << " state " << state << " device " << d << " (thick)";
      }
    }
  }
}

TEST(CellLeakage, MinLeakAssignmentNearlyAsGoodAsAllSlow) {
  // The paper's key claim (Sec. 3): suppressing only the targeted subset
  // reduces leakage "by nearly the same amount" as assigning every device
  // both knobs. The targeted version deliberately leaves negligible
  // contributors (PMOS tunneling, EDT) untouched, so we compare achieved
  // reduction against the achievable reduction: per state it must recover
  // most of it, and in aggregate (dominated by the high-leakage states)
  // nearly all of it.
  double base_sum = 0.0, targeted_sum = 0.0, slow_sum = 0.0;
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    // Deep-stack states are already near the leakage floor; the per-state
    // bound is only meaningful where there is real leakage to suppress.
    double max_base = 0.0;
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      max_base = std::max(
          max_base,
          cell_leakage(topo, tech(), state, nominal_assignment(topo)).total_na());
    }
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      const LeakyDevices leaky = find_leaky_devices(topo, tech(), state);
      CellAssignment targeted = nominal_assignment(topo);
      for (int d : leaky.vt_targets) targeted[d].vt = model::VtClass::kHigh;
      for (int d : leaky.tox_targets) targeted[d].tox = model::ToxClass::kThick;
      CellAssignment all_slow(static_cast<std::size_t>(topo.num_devices()),
                              DeviceAssign{model::VtClass::kHigh, model::ToxClass::kThick});
      const double base =
          cell_leakage(topo, tech(), state, nominal_assignment(topo)).total_na();
      const double t = cell_leakage(topo, tech(), state, targeted).total_na();
      const double s = cell_leakage(topo, tech(), state, all_slow).total_na();
      base_sum += base;
      targeted_sum += t;
      slow_sum += s;
      ASSERT_GT(base - s, 0.0) << name << " state " << state;
      if (base > 0.25 * max_base) {
        EXPECT_GE((base - t) / (base - s), 0.55) << name << " state " << state;
      }
    }
  }
  EXPECT_GE((base_sum - targeted_sum) / (base_sum - slow_sum), 0.85);
}

TEST(CellLeakage, GateFractionNearPaperCalibration) {
  // Paper Sec. 2: gate leakage is ~36% of total at room temperature for the
  // target process. Check the aggregate over all cells and states.
  model::LeakageBreakdown total;
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      total += cell_leakage(topo, tech(), state, nominal_assignment(topo));
    }
  }
  EXPECT_GT(total.igate_fraction(), 0.25);
  EXPECT_LT(total.igate_fraction(), 0.47);
}

TEST(CellLeakage, AssignmentSizeMismatchThrows) {
  const CellTopology inv = make_standard_cell("INV", tech());
  EXPECT_THROW(cell_leakage(inv, tech(), 0, CellAssignment{}), svtox::ContractError);
}

}  // namespace
}  // namespace svtox::cellkit
