// Checkpoint format round-trips, corruption handling, and the
// kill-and-resume byte-identity property (opt/checkpoint.hpp's invariant):
// with a deterministic leaf budget and a serial search, interrupting at an
// arbitrary point and resuming from the checkpoint must produce the exact
// solution and counters of an uninterrupted run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/solution_io.hpp"
#include "liberty/library.hpp"
#include "netlist/benchmarks.hpp"
#include "opt/checkpoint.hpp"
#include "opt/state_search.hpp"
#include "util/error.hpp"

namespace svtox::opt {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

SearchCheckpoint sample_checkpoint() {
  SearchCheckpoint ck;
  ck.fingerprint = 0x0123456789abcdefULL;
  ck.tree_done = false;
  ck.path = {true, false, true, true};
  ck.probes_done = 0;
  ck.nodes = 42;
  ck.leaves = 9;
  ck.elapsed_s = 1.375;
  ck.sleep_vector = {false, true, true, false};
  ck.leakage_na = 123.4567890123;
  ck.delay_ps = 987.25;
  sim::GateConfig plain;  // identity mapping stays implicit
  plain.variant = 3;
  sim::GateConfig remapped;
  remapped.variant = 1;
  remapped.mapping.canonical_state = 2;
  remapped.mapping.logical_to_physical = {1, 0};
  ck.config = {plain, remapped};
  return ck;
}

void expect_equal(const SearchCheckpoint& a, const SearchCheckpoint& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.tree_done, b.tree_done);
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.probes_done, b.probes_done);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);  // %a round-trips exactly
  EXPECT_EQ(a.sleep_vector, b.sleep_vector);
  EXPECT_EQ(a.leakage_na, b.leakage_na);
  EXPECT_EQ(a.delay_ps, b.delay_ps);
  ASSERT_EQ(a.config.size(), b.config.size());
  for (std::size_t g = 0; g < a.config.size(); ++g) {
    EXPECT_EQ(a.config[g].variant, b.config[g].variant);
    EXPECT_EQ(a.config[g].mapping.canonical_state, b.config[g].mapping.canonical_state);
    EXPECT_EQ(a.config[g].mapping.logical_to_physical,
              b.config[g].mapping.logical_to_physical);
  }
}

TEST(CheckpointFormat, RoundTripsAllFields) {
  const SearchCheckpoint ck = sample_checkpoint();
  const std::string text = write_checkpoint(ck);
  EXPECT_EQ(text.rfind("svtox_checkpoint v1", 0), 0u);
  EXPECT_NE(text.find("\nchecksum "), std::string::npos);
  expect_equal(ck, parse_checkpoint(text));
}

TEST(CheckpointFormat, RoundTripsProbePhase) {
  SearchCheckpoint ck = sample_checkpoint();
  ck.tree_done = true;
  ck.path.clear();
  ck.probes_done = 17;
  expect_equal(ck, parse_checkpoint(write_checkpoint(ck)));
}

TEST(CheckpointFormat, TamperedPayloadFailsChecksum) {
  std::string text = write_checkpoint(sample_checkpoint());
  const auto pos = text.find("nodes 42");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 6] = '3';
  try {
    parse_checkpoint(text);
    FAIL() << "tampered checkpoint parsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
  }
}

TEST(CheckpointFormat, MissingChecksumIsCorrupt) {
  std::string text = write_checkpoint(sample_checkpoint());
  text.resize(text.rfind("checksum "));
  EXPECT_THROW(parse_checkpoint(text), Error);
  EXPECT_THROW(parse_checkpoint("not a checkpoint\n"), Error);
  EXPECT_THROW(parse_checkpoint(""), Error);
}

TEST(CheckpointFile, WritesAtomicallyAndLoadsBack) {
  const std::string path = temp_path("ckpt_roundtrip.ckpt");
  const SearchCheckpoint ck = sample_checkpoint();
  write_checkpoint_file(ck, path);
  const auto loaded = load_checkpoint_file(path, ck.fingerprint);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(ck, *loaded);
  std::remove(path.c_str());
}

TEST(CheckpointFile, FingerprintMismatchIsIgnored) {
  const std::string path = temp_path("ckpt_fp.ckpt");
  const SearchCheckpoint ck = sample_checkpoint();
  write_checkpoint_file(ck, path);
  EXPECT_FALSE(load_checkpoint_file(path, ck.fingerprint + 1).has_value());
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingOrTornFileIsIgnored) {
  EXPECT_FALSE(load_checkpoint_file(temp_path("ckpt_nowhere.ckpt"), 1).has_value());

  const std::string path = temp_path("ckpt_torn.ckpt");
  const std::string text = write_checkpoint(sample_checkpoint());
  std::ofstream(path, std::ios::binary) << text.substr(0, text.size() / 2);
  EXPECT_FALSE(load_checkpoint_file(path, sample_checkpoint().fingerprint).has_value());
  std::remove(path.c_str());
}

TEST(CheckpointFingerprint, TracksProblemAndKnobs) {
  const auto circuit = netlist::make_benchmark("c432", lib());
  const AssignmentProblem p5(circuit, 0.05);
  const AssignmentProblem p25(circuit, 0.25);
  SearchOptions options;
  options.max_leaves = 100;

  const auto fp = [&](const AssignmentProblem& p, const SearchOptions& o,
                      bool state_only = false) {
    return search_fingerprint(p, o, BoundKind::kMinVariant, state_only);
  };
  const std::uint64_t base = fp(p5, options);
  EXPECT_NE(base, fp(p25, options));        // penalty changes the run
  SearchOptions more_leaves = options;
  more_leaves.max_leaves = 200;
  EXPECT_NE(base, fp(p5, more_leaves));     // budget changes the run
  SearchOptions fresh_clock = options;
  fresh_clock.time_limit_s = 99.0;
  EXPECT_EQ(base, fp(p5, fresh_clock));     // wall clock does not
  EXPECT_NE(base, fp(p5, options, true));   // mode changes the run
}

// ---------------------------------------------------------------------------
// Kill-and-resume byte-identity.

using SearchFn =
    std::function<Solution(const AssignmentProblem&, const SearchOptions&)>;

SearchOptions budget_options(std::uint64_t max_leaves) {
  SearchOptions options;
  options.time_limit_s = 600.0;  // leaf budget is the binding limit
  options.max_leaves = max_leaves;
  options.threads = 1;
  options.checkpoint_every_leaves = 16;
  options.checkpoint_every_s = 600.0;  // count trigger only: deterministic cadence
  return options;
}

/// Runs the search repeatedly, cancelling from another thread at staggered
/// delays, resuming from `ckpt_path` each round. The final round runs with
/// no cancellation, so the function always terminates with a complete run.
Solution run_with_interruptions(const SearchFn& search, const AssignmentProblem& problem,
                                SearchOptions options, const std::string& ckpt_path,
                                int* interruptions = nullptr) {
  options.checkpoint_path = ckpt_path;
  std::remove(ckpt_path.c_str());
  for (int delay_ms : {3, 7, 15, 30, 60}) {
    std::atomic<bool> cancel{false};
    options.cancel = &cancel;
    std::thread killer([&cancel, delay_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      cancel.store(true, std::memory_order_relaxed);
    });
    const Solution sol = search(problem, options);
    killer.join();
    if (!sol.interrupted) return sol;
    if (interruptions) ++*interruptions;
    // An interrupted run must leave a resumable snapshot behind.
    EXPECT_TRUE(std::filesystem::exists(ckpt_path));
  }
  options.cancel = nullptr;
  return search(problem, options);
}

void expect_byte_identical(const Solution& resumed, const Solution& reference,
                           const netlist::Netlist& circuit) {
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(core::write_solution(resumed, circuit),
            core::write_solution(reference, circuit));
  EXPECT_EQ(resumed.states_explored, reference.states_explored);
  EXPECT_EQ(resumed.nodes_visited, reference.nodes_visited);
}

void check_resume_identity(const SearchFn& search, const std::string& circuit_name,
                           double penalty, std::uint64_t max_leaves,
                           SearchOptions options, const std::string& tag) {
  const auto circuit = netlist::make_benchmark(circuit_name, lib());
  const AssignmentProblem problem(circuit, penalty);
  options.max_leaves = max_leaves;

  const Solution reference = search(problem, options);  // no checkpoint path

  const std::string ckpt = temp_path("resume_" + tag + ".ckpt");
  const Solution resumed =
      run_with_interruptions(search, problem, options, ckpt);
  expect_byte_identical(resumed, reference, circuit);
  // A completed run cleans up after itself.
  EXPECT_FALSE(std::filesystem::exists(ckpt));
}

const SearchFn kHeu2 = [](const AssignmentProblem& p, const SearchOptions& o) {
  return heuristic2(p, o);
};
const SearchFn kStateOnly = [](const AssignmentProblem& p, const SearchOptions& o) {
  return state_only_search(p, o);
};

TEST(CheckpointResume, Heu2ByteIdenticalC432LowPenalty) {
  check_resume_identity(kHeu2, "c432", 0.05, 300, budget_options(300), "c432_p5");
}

TEST(CheckpointResume, Heu2ByteIdenticalC432HighPenalty) {
  check_resume_identity(kHeu2, "c432", 0.25, 300, budget_options(300), "c432_p25");
}

TEST(CheckpointResume, Heu2ByteIdenticalC880) {
  check_resume_identity(kHeu2, "c880", 0.10, 120, budget_options(120), "c880_p10");
}

TEST(CheckpointResume, StateOnlyWithProbeSweepByteIdentical) {
  SearchOptions options = budget_options(100);
  options.random_probes = 32;  // interrupts can land inside the probe sweep
  check_resume_identity(kStateOnly, "c432", 0.05, 100, options, "c432_probes");
}

TEST(CheckpointResume, InterruptedRunSnapshotIsWellFormed) {
  const auto circuit = netlist::make_benchmark("c432", lib());
  const AssignmentProblem problem(circuit, 0.05);
  SearchOptions options = budget_options(5000);  // big budget: interrupt lands mid-tree
  options.checkpoint_path = temp_path("snapshot_shape.ckpt");
  std::remove(options.checkpoint_path.c_str());

  bool interrupted = false;
  for (int attempt = 0; attempt < 5 && !interrupted; ++attempt) {
    std::remove(options.checkpoint_path.c_str());
    std::atomic<bool> cancel{false};
    options.cancel = &cancel;
    std::thread killer([&cancel] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      cancel.store(true, std::memory_order_relaxed);
    });
    interrupted = heuristic2(problem, options).interrupted;
    killer.join();
  }
  if (!interrupted) GTEST_SKIP() << "search finished before any cancel landed";

  std::ifstream in(options.checkpoint_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const SearchCheckpoint ck = parse_checkpoint(text);  // checksum + shape valid
  EXPECT_NE(ck.fingerprint, 0u);
  EXPECT_GE(ck.leaves, 1u);  // the first descent always completes
  if (!ck.tree_done) {
    EXPECT_EQ(ck.path.size(), static_cast<std::size_t>(circuit.num_inputs()));
  }
  EXPECT_EQ(ck.sleep_vector.size(), static_cast<std::size_t>(circuit.num_inputs()));
  EXPECT_EQ(ck.config.size(), static_cast<std::size_t>(circuit.num_gates()));
  std::remove(options.checkpoint_path.c_str());
}

}  // namespace
}  // namespace svtox::opt
