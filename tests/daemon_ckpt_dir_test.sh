#!/usr/bin/env bash
# Regression: a relative --checkpoint-dir must be resolved against the
# daemon's *startup* CWD (and logged), so checkpoints land where the
# operator expects. Starts svtoxd from a scratch CWD with a relative dir,
# interrupts a deterministic job mid-run, asserts the snapshot landed under
# the startup CWD, then restarts and resumes -- the final solution must be
# byte-identical to an uninterrupted local reference.
#
# usage: daemon_ckpt_dir_test.sh <svtox> <svtoxd> <workdir>
set -u

SVTOX=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
SVTOXD=$(cd "$(dirname "$2")" && pwd)/$(basename "$2")
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK/startup_cwd"
WORK=$(cd "$WORK" && pwd)  # absolute, so paths survive our own cd below
SOCK=$WORK/svtoxd.sock
DAEMON_PID=

stop_daemon() {
  if [ -n "${DAEMON_PID:-}" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi
  DAEMON_PID=
}

fail() {
  echo "FAIL: $*" >&2
  sed 's/^/  daemon: /' "$WORK/daemon.log" >&2 2>/dev/null
  stop_daemon
  exit 1
}

# Started from $WORK/startup_cwd with a RELATIVE checkpoint dir.
start_daemon() {
  (cd "$WORK/startup_cwd" &&
   exec "$SVTOXD" --socket "$SOCK" --workers 1 \
       --checkpoint-dir my_ckpts --checkpoint-every 0.05 \
       >> "$WORK/daemon.log" 2>&1) &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
  done
  fail "daemon socket never appeared"
}

CIRCUIT=c880
MANIFEST=$WORK/manifest.json
cat > "$MANIFEST" <<EOF
{"circuit":"$CIRCUIT","method":"heu2","penalty":5,"max_leaves":1500,"time_limit":600,"vectors":200,"cache":false}
EOF

# Uninterrupted reference with the same deterministic knobs.
"$SVTOX" optimize --circuit "$CIRCUIT" --method heu2 --penalty 5 \
    --max-leaves 1500 --time-limit 600 --output "$WORK/ref.solution" \
    > "$WORK/ref.log" 2>&1 || fail "reference optimize failed"

# Round 1: interrupt mid-run; the frontier snapshot must land under the
# startup CWD, not wherever a daemonizing wrapper might have chdir'd to.
start_daemon
grep -q "checkpoint dir $WORK/startup_cwd/my_ckpts" "$WORK/daemon.log" \
    || fail "daemon did not log the absolute checkpoint dir"
mkdir -p "$WORK/out1"
"$SVTOX" batch --socket "$SOCK" --manifest "$MANIFEST" \
    --output-dir "$WORK/out1" > "$WORK/batch1.log" 2>&1 &
BATCH_PID=$!
sleep 1
kill -TERM "$DAEMON_PID" 2>/dev/null || fail "daemon already gone before SIGTERM"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=
wait "$BATCH_PID" 2>/dev/null  # interrupted; status intentionally ignored

ls "$WORK/startup_cwd/my_ckpts/"*.ckpt > /dev/null 2>&1 \
    || fail "no checkpoint under the startup CWD ($WORK/startup_cwd/my_ckpts)"

# Round 2: fresh daemon, same relative dir from the same CWD; the job must
# resume from the snapshot and finish byte-identical to the reference.
start_daemon
mkdir -p "$WORK/out2"
"$SVTOX" batch --socket "$SOCK" --manifest "$MANIFEST" \
    --output-dir "$WORK/out2" > "$WORK/batch2.log" 2>&1 \
    || fail "resubmitted batch failed: $(cat "$WORK/batch2.log")"
stop_daemon

RESUMED=$(ls "$WORK"/out2/job1_*.solution 2>/dev/null | head -n 1)
[ -n "$RESUMED" ] || fail "resubmitted batch produced no solution file"
cmp -s "$RESUMED" "$WORK/ref.solution" \
    || fail "resumed solution differs from uninterrupted reference"

echo "PASS: relative checkpoint dir pinned to startup CWD and resume is exact"
exit 0
