#!/usr/bin/env bash
# Kill-and-resume across a daemon restart.
#
# Runs a deterministic (leaf-budgeted, serial) heu2 job through svtoxd with
# checkpointing on, SIGTERMs the daemon mid-run, restarts it, resubmits the
# same job, and requires the final solution file to be byte-identical to a
# local uninterrupted reference run. If the job happens to finish before the
# signal lands the resubmission recomputes from scratch, so the comparison
# still holds (just without exercising the resume path).
#
# usage: fault_daemon_test.sh <svtox> <svtoxd> <workdir>
set -u

SVTOX=$1
SVTOXD=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK/ckpt" "$WORK/out1" "$WORK/out2"
SOCK=$WORK/svtoxd.sock
DAEMON_PID=

stop_daemon() {
  if [ -n "${DAEMON_PID:-}" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi
  DAEMON_PID=
}

fail() {
  echo "FAIL: $*" >&2
  sed 's/^/  daemon: /' "$WORK/daemon.log" >&2 2>/dev/null
  stop_daemon
  exit 1
}

start_daemon() {
  "$SVTOXD" --socket "$SOCK" --workers 1 \
      --checkpoint-dir "$WORK/ckpt" --checkpoint-every 0.05 \
      >> "$WORK/daemon.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on startup"
    sleep 0.1
  done
  fail "daemon socket never appeared"
}

# The job: serial, leaf-budgeted, cache off -- fully deterministic, long
# enough (~seconds) that a SIGTERM ~1s in lands mid-search.
CIRCUIT=c880
MANIFEST=$WORK/manifest.json
cat > "$MANIFEST" <<EOF
{"circuit":"$CIRCUIT","method":"heu2","penalty":5,"max_leaves":1500,"time_limit":600,"vectors":200,"cache":false}
EOF

# Uninterrupted reference, same knobs, no daemon involved.
"$SVTOX" optimize --circuit "$CIRCUIT" --method heu2 --penalty 5 \
    --max-leaves 1500 --time-limit 600 --output "$WORK/ref.solution" \
    > "$WORK/ref.log" 2>&1 || fail "reference optimize failed"
[ -s "$WORK/ref.solution" ] || fail "reference solution missing"

# Round 1: submit, then SIGTERM the daemon mid-run. The daemon interrupts the
# search, which writes its frontier to the checkpoint dir before exiting; the
# batch client is expected to fail (cancelled result or lost connection).
start_daemon
"$SVTOX" batch --socket "$SOCK" --manifest "$MANIFEST" \
    --output-dir "$WORK/out1" > "$WORK/batch1.log" 2>&1 &
BATCH_PID=$!
sleep 1
kill -TERM "$DAEMON_PID" 2>/dev/null || fail "daemon already gone before SIGTERM"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=
wait "$BATCH_PID" 2>/dev/null  # exit status intentionally ignored

# Round 2: fresh daemon, same checkpoint dir, same manifest. Resumes from the
# snapshot (or recomputes, if round 1 finished) and must complete cleanly.
start_daemon
"$SVTOX" batch --socket "$SOCK" --manifest "$MANIFEST" \
    --output-dir "$WORK/out2" > "$WORK/batch2.log" 2>&1 \
    || fail "resubmitted batch failed: $(cat "$WORK/batch2.log")"
stop_daemon

RESUMED=$(ls "$WORK"/out2/job1_*.solution 2>/dev/null | head -n 1)
[ -n "$RESUMED" ] || fail "resubmitted batch produced no solution file"
cmp -s "$RESUMED" "$WORK/ref.solution" \
    || fail "resumed solution differs from uninterrupted reference ($RESUMED)"

echo "PASS: resumed $CIRCUIT solution byte-identical to uninterrupted run"
exit 0
