// Tests for the features beyond the paper's core evaluation: the
// nitrided-oxide PMOS-Igate extension, the AOI22/OAI22 archetypes, the
// pin-reorder ablation option, random-probe seeding, and solution I/O.
#include <gtest/gtest.h>

#include "cellkit/analyzer.hpp"
#include "core/optimizer.hpp"
#include "core/solution_io.hpp"
#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "util/error.hpp"

namespace svtox {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

// --- Nitrided-oxide extension ---------------------------------------------

TEST(Nitrided, PmosTunnelingIsAppreciable) {
  const auto& tech = model::TechParams::nitrided();
  const double n = model::igate_na(tech, model::DeviceType::kNmos,
                                   model::ToxClass::kThin, 1.0,
                                   model::GateBias::kFullChannel);
  const double p = model::igate_na(tech, model::DeviceType::kPmos,
                                   model::ToxClass::kThin, 1.0,
                                   model::GateBias::kFullChannel);
  // Paper Sec. 2: PMOS Igate "can actually exceed NMOS Igate".
  EXPECT_GT(p, n);
}

TEST(Nitrided, OnPmosDevicesBecomeToxTargets) {
  // INV at 0: under SiO2 the ON PMOS is ignored; under nitrided oxide it
  // must be thickened.
  const auto& nit = model::TechParams::nitrided();
  const cellkit::CellTopology inv = cellkit::make_standard_cell("INV", nit);
  const cellkit::LeakyDevices leaky = cellkit::find_leaky_devices(inv, nit, 0b0);
  EXPECT_EQ(leaky.tox_targets, (std::vector<int>{1}));  // the PMOS
  EXPECT_EQ(leaky.vt_targets, (std::vector<int>{0}));
}

TEST(Nitrided, LibraryGrowsWithPmosVersions) {
  // More tunneling devices to suppress => more distinct versions.
  liberty::LibraryOptions options;
  const auto nominal = liberty::Library::build(model::TechParams::nominal(), options);
  const auto nitrided = liberty::Library::build(model::TechParams::nitrided(), options);
  EXPECT_GT(nitrided.cell("INV").num_variants(), nominal.cell("INV").num_variants());
}

TEST(Nitrided, OptimizerStillReducesLeakage) {
  const auto nitrided = liberty::Library::build(model::TechParams::nitrided(), {});
  const auto circuit = netlist::random_circuit(nitrided, "nit", 10, 80, 3);
  core::StandbyOptimizer optimizer(circuit);
  core::RunConfig config;
  config.penalty_fraction = 0.10;
  config.random_vectors = 1000;
  const auto h1 = optimizer.run(core::Method::kHeu1, config);
  EXPECT_GT(h1.reduction_x, 2.0);
}

// --- AOI22 / OAI22 ----------------------------------------------------------

TEST(ComplexCells, Aoi22TruthTable) {
  const auto& tech = model::TechParams::nominal();
  const cellkit::CellTopology aoi = cellkit::make_standard_cell("AOI22", tech);
  for (std::uint32_t s = 0; s < 16; ++s) {
    const bool a = s & 1, b = s & 2, c = s & 4, d = s & 8;
    EXPECT_EQ(aoi.output(s), !((a && b) || (c && d))) << s;
  }
}

TEST(ComplexCells, Oai22TruthTable) {
  const auto& tech = model::TechParams::nominal();
  const cellkit::CellTopology oai = cellkit::make_standard_cell("OAI22", tech);
  for (std::uint32_t s = 0; s < 16; ++s) {
    const bool a = s & 1, b = s & 2, c = s & 4, d = s & 8;
    EXPECT_EQ(oai.output(s), !((a || b) && (c || d))) << s;
  }
}

TEST(ComplexCells, Aoi22SymmetricPairsCanonicalizeIndependently) {
  const auto& tech = model::TechParams::nominal();
  const cellkit::CellTopology aoi = cellkit::make_standard_cell("AOI22", tech);
  // A=0,B=1 swaps within {0,1}; C=1,D=0 already canonical within {2,3}.
  const cellkit::PinMapping m = cellkit::canonicalize(aoi, 0b0110);
  EXPECT_EQ(m.canonical_state, 0b0101u);
}

TEST(ComplexCells, VariantGenerationCoversAllStates) {
  const auto& tech = model::TechParams::nominal();
  for (const char* name : {"AOI22", "OAI22"}) {
    const cellkit::CellTopology topo = cellkit::make_standard_cell(name, tech);
    const auto set = cellkit::generate_versions(topo, tech, {});
    for (std::uint32_t s = 0; s < topo.num_states(); ++s) {
      const auto canon = cellkit::canonicalize(topo, s).canonical_state;
      EXPECT_NO_THROW(set.tradeoffs(canon)) << name << " state " << s;
    }
    EXPECT_GT(set.num_versions(), 4) << name;
  }
}

// --- Pin-reorder ablation -----------------------------------------------------

TEST(ReorderAblation, DisablingReorderingNeverHelps) {
  for (std::uint64_t seed : {41ULL, 42ULL, 43ULL}) {
    const auto circuit = netlist::random_circuit(lib(), "abl", 10, 70, seed);
    const opt::AssignmentProblem with(circuit, 0.05);
    opt::ProblemOptions options;
    options.use_pin_reorder = false;
    const opt::AssignmentProblem without(circuit, 0.05, options);
    const auto h_with = opt::heuristic1(with);
    const auto h_without = opt::heuristic1(without);
    EXPECT_LE(h_with.leakage_na, h_without.leakage_na + 1e-6) << seed;
  }
}

TEST(ReorderAblation, NoReorderKeepsIdentityMappings) {
  const auto circuit = netlist::random_circuit(lib(), "abl2", 8, 50, 5);
  opt::ProblemOptions options;
  options.use_pin_reorder = false;
  const opt::AssignmentProblem problem(circuit, 0.10, options);
  const auto sol = opt::heuristic1(problem);
  for (const auto& gc : sol.config) {
    EXPECT_TRUE(gc.mapping.logical_to_physical.empty() || gc.mapping.is_identity());
  }
  // And the solution still respects the delay constraint.
  EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3);
}

TEST(ReorderAblation, NoReorderMenuIsStillSorted) {
  const auto circuit = netlist::random_circuit(lib(), "abl3", 8, 40, 6);
  opt::ProblemOptions options;
  options.use_pin_reorder = false;
  const opt::AssignmentProblem problem(circuit, 0.05, options);
  for (int g = 0; g < circuit.num_gates(); ++g) {
    const auto& cell = circuit.cell_of(g);
    for (std::uint32_t raw = 0; raw < cell.topology().num_states(); ++raw) {
      const auto& menu = problem.menu(g, raw);
      EXPECT_EQ(menu.by_leakage.size(), static_cast<std::size_t>(cell.num_variants()));
      for (std::size_t i = 1; i < menu.by_leakage.size(); ++i) {
        EXPECT_LE(cell.leakage_na(menu.by_leakage[i - 1], raw),
                  cell.leakage_na(menu.by_leakage[i], raw) + 1e-12);
      }
    }
  }
}

// --- Random-probe seeding ---------------------------------------------------

TEST(RandomProbes, StateOnlyBeatsRandomAverage) {
  // The structural weakness the probes fix: on XOR-dominated circuits the
  // ternary bound is flat, but best-of-256 probes guarantees a result no
  // worse than a typical random state.
  const auto circuit = netlist::array_multiplier(lib(), 6);
  const opt::AssignmentProblem problem(circuit, 0.05);
  const auto sol = opt::state_only_search(problem, 0.2);
  const auto mc = sim::monte_carlo_leakage(circuit, sim::fastest_config(circuit), 500, 9);
  EXPECT_LT(sol.leakage_na, mc.mean_na);
}

// --- Solution I/O ---------------------------------------------------------------

TEST(SolutionIo, RoundTripPreservesEverything) {
  const auto circuit = netlist::random_circuit(lib(), "sio", 10, 60, 77);
  const opt::AssignmentProblem problem(circuit, 0.10);
  const opt::Solution sol = opt::heuristic1(problem);

  const std::string text = core::write_solution(sol, circuit);
  const opt::Solution back = core::read_solution(text, circuit);

  EXPECT_EQ(back.sleep_vector, sol.sleep_vector);
  EXPECT_NEAR(back.leakage_na, sol.leakage_na, 1e-3);
  EXPECT_NEAR(back.delay_ps, sol.delay_ps, 1e-3);
  ASSERT_EQ(back.config.size(), sol.config.size());
  for (std::size_t g = 0; g < sol.config.size(); ++g) {
    EXPECT_EQ(back.config[g].variant, sol.config[g].variant) << g;
    // Reconstructed mappings must map states identically.
    const auto& cell = circuit.cell_of(static_cast<int>(g));
    for (std::uint32_t s = 0; s < cell.topology().num_states(); ++s) {
      EXPECT_EQ(back.config[g].physical_state(s), sol.config[g].physical_state(s)) << g;
    }
  }
}

TEST(SolutionIo, RejectsGarbageAndMismatches) {
  const auto circuit = netlist::random_circuit(lib(), "sio2", 6, 20, 78);
  EXPECT_THROW(core::read_solution("nonsense", circuit), ParseError);
  // Truncated (no 'end') and unknown-record files are rejected.
  EXPECT_THROW(core::read_solution("svtox_solution v1 x\nleakage_na 1.0", circuit),
               ParseError);
  EXPECT_THROW(core::read_solution("svtox_solution v1 x\nfrobnicate 1\nend", circuit),
               ParseError);
  EXPECT_THROW(core::read_solution(
                   "svtox_solution v1 x\ngate nope INV_v1 pins 0\nend", circuit),
               ContractError);
}

TEST(SolutionIo, SwapListOnlyRecordsNonDefaultGates) {
  const auto circuit = netlist::random_circuit(lib(), "sio3", 8, 30, 79);
  opt::Solution trivial;
  trivial.sleep_vector.assign(static_cast<std::size_t>(circuit.num_inputs()), false);
  trivial.config = sim::fastest_config(circuit);
  const std::string text = core::write_solution(trivial, circuit);
  EXPECT_EQ(text.find("gate "), std::string::npos);
  const opt::Solution back = core::read_solution(text, circuit);
  for (std::size_t g = 0; g < back.config.size(); ++g) {
    EXPECT_EQ(back.config[g].variant, circuit.cell_of(static_cast<int>(g)).fastest_variant());
  }
}

}  // namespace
}  // namespace svtox
