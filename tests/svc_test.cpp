// Service-layer tests: JSON wire format, content fingerprints, the bounded
// priority queue, the solution cache (hits, inflight dedup, disk
// persistence), scheduler determinism under varying worker counts,
// cooperative cancellation / deadlines, and the svtoxd server/client
// round trip over a Unix-domain socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "core/solution_io.hpp"
#include "liberty/library.hpp"
#include "netlist/benchmarks.hpp"
#include "svc/client.hpp"
#include "svc/fingerprint.hpp"
#include "svc/job.hpp"
#include "svc/job_queue.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "svc/solution_cache.hpp"
#include "util/error.hpp"

namespace svtox {
namespace {

using svc::JobSpec;
using svc::JobStatus;
using svc::Json;

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(SvcJson, DumpParseRoundTrip) {
  const std::string text =
      R"({"cmd":"submit","circuit":"c432","penalty":5.5,"flags":[true,false,null],"label":"a b\n\"c\""})";
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.dump(), text);  // insertion order is preserved
  EXPECT_EQ(parsed.get("circuit")->as_string(), "c432");
  EXPECT_DOUBLE_EQ(parsed.get("penalty")->as_number(), 5.5);
  EXPECT_EQ(parsed.get("flags")->as_array().size(), 3u);
  EXPECT_EQ(parsed.get("label")->as_string(), "a b\n\"c\"");
  EXPECT_EQ(parsed.get("nope"), nullptr);
}

TEST(SvcJson, IntegersRoundTripExactly) {
  Json object = Json::object();
  object.set("id", std::uint64_t{9007199254740992ULL});  // 2^53
  object.set("neg", std::int64_t{-1234567890123});
  const Json back = Json::parse(object.dump());
  EXPECT_EQ(back.get("id")->as_int(), 9007199254740992LL);
  EXPECT_EQ(back.get("neg")->as_int(), -1234567890123LL);
}

TEST(SvcJson, DuplicateKeysLastWins) {
  EXPECT_EQ(Json::parse(R"({"a":1,"a":2})").get("a")->as_int(), 2);
}

TEST(SvcJson, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\":1} junk"), ParseError);
  EXPECT_THROW(Json::parse("{'a':1}"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("\"\\x\""), ParseError);
  EXPECT_THROW(Json::parse("01"), ParseError);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(SvcFingerprint, LibraryStableAndOptionSensitive) {
  const auto a = liberty::Library::build(model::TechParams::nominal(), {});
  const auto b = liberty::Library::build(model::TechParams::nominal(), {});
  EXPECT_EQ(svc::fingerprint_library(a), svc::fingerprint_library(b));

  liberty::LibraryOptions vt_only;
  vt_only.variant_options.vt_only = true;
  const auto c = liberty::Library::build(model::TechParams::nominal(), vt_only);
  EXPECT_NE(svc::fingerprint_library(a), svc::fingerprint_library(c));

  const auto d = liberty::Library::build(model::TechParams::nitrided(), {});
  EXPECT_NE(svc::fingerprint_library(a), svc::fingerprint_library(d));
}

TEST(SvcFingerprint, NetlistStableAndCircuitSensitive) {
  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const auto a = netlist::make_benchmark("c432", library);
  const auto b = netlist::make_benchmark("c432", library);
  EXPECT_EQ(svc::fingerprint_netlist(a), svc::fingerprint_netlist(b));
  const auto c = netlist::make_benchmark("c880", library);
  EXPECT_NE(svc::fingerprint_netlist(a), svc::fingerprint_netlist(c));
}

TEST(SvcFingerprint, CacheKeyReflectsEveryKnob) {
  svc::RunKnobs knobs;
  knobs.method = "heu1";
  knobs.penalty_fraction = 0.05;
  knobs.time_limit_s = 5.0;
  knobs.random_vectors = 10000;
  knobs.seed = 2004;
  const std::string base = svc::cache_key(1, 2, knobs);
  EXPECT_EQ(base.size(), 16u + 1 + 16 + 1 + 16);
  EXPECT_EQ(base, svc::cache_key(1, 2, knobs));  // deterministic

  svc::RunKnobs changed = knobs;
  changed.method = "heu2";
  EXPECT_NE(base, svc::cache_key(1, 2, changed));
  changed = knobs;
  changed.penalty_fraction = 0.10;
  EXPECT_NE(base, svc::cache_key(1, 2, changed));
  changed = knobs;
  changed.seed = 7;
  EXPECT_NE(base, svc::cache_key(1, 2, changed));
  EXPECT_NE(base, svc::cache_key(3, 2, knobs));
  EXPECT_NE(base, svc::cache_key(1, 3, knobs));
}

// ---------------------------------------------------------------------------
// Job specs on the wire
// ---------------------------------------------------------------------------

TEST(SvcJob, SpecJsonRoundTrip) {
  JobSpec spec;
  spec.circuit = "c880";
  spec.method = "heu2";
  spec.penalty_percent = 10;
  spec.time_limit_s = 1.5;
  spec.random_vectors = 500;
  spec.seed = 42;
  spec.priority = 3;
  spec.deadline_s = 9;
  spec.use_cache = false;
  spec.label = "row7";
  const JobSpec back = svc::job_spec_from_json(svc::job_spec_to_json(spec));
  EXPECT_EQ(back.circuit, "c880");
  EXPECT_EQ(back.method, "heu2");
  EXPECT_DOUBLE_EQ(back.penalty_percent, 10);
  EXPECT_DOUBLE_EQ(back.time_limit_s, 1.5);
  EXPECT_EQ(back.random_vectors, 500);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.priority, 3);
  EXPECT_DOUBLE_EQ(back.deadline_s, 9);
  EXPECT_FALSE(back.use_cache);
  EXPECT_EQ(back.label, "row7");
}

TEST(SvcJob, InvalidSpecsRejected) {
  // Unknown keys are spelling mistakes, not extensions.
  EXPECT_THROW(svc::job_spec_from_json(Json::parse(R"({"circuit":"c432","pennalty":5})")),
               ContractError);
  // Exactly one circuit source.
  EXPECT_THROW(svc::job_spec_from_json(Json::parse(R"({"method":"heu1"})")),
               ContractError);
  EXPECT_THROW(
      svc::job_spec_from_json(Json::parse(R"({"circuit":"c432","bench":"x.bench"})")),
      ContractError);
  EXPECT_THROW(
      svc::job_spec_from_json(Json::parse(R"({"circuit":"c432","method":"magic"})")),
      ContractError);
  EXPECT_THROW(
      svc::job_spec_from_json(Json::parse(R"({"circuit":"c432","penalty":101})")),
      ContractError);
  EXPECT_THROW(
      svc::job_spec_from_json(Json::parse(R"({"circuit":"c432","penalty":"5"})")),
      ContractError);
}

TEST(SvcJob, ResultJsonRoundTrip) {
  svc::JobResult result;
  result.status = JobStatus::kDone;
  result.circuit = "c432";
  result.gates = 177;
  result.method = "heu1";
  result.penalty_percent = 5;
  result.leakage_ua = 4.95;
  result.reduction_x = 5.4;
  result.delay_ps = 2295.4;
  result.runtime_s = 0.01;
  result.states_explored = 12;
  result.cache_hit = true;
  result.solution_text = "svtox_solution v1 c432\nend\n";
  result.label = "a";
  const svc::JobResult back =
      svc::job_result_from_json(svc::job_result_to_json(result, true));
  EXPECT_EQ(back.status, JobStatus::kDone);
  EXPECT_EQ(back.circuit, "c432");
  EXPECT_EQ(back.gates, 177);
  EXPECT_DOUBLE_EQ(back.leakage_ua, 4.95);
  EXPECT_EQ(back.states_explored, 12u);
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.solution_text, result.solution_text);

  // include_solution=false elides the text.
  const svc::JobResult lean =
      svc::job_result_from_json(svc::job_result_to_json(result, false));
  EXPECT_TRUE(lean.solution_text.empty());
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(SvcJobQueue, PriorityThenFifo) {
  svc::JobQueue queue(16);
  ASSERT_TRUE(queue.push(1, 0));
  ASSERT_TRUE(queue.push(2, 5));
  ASSERT_TRUE(queue.push(3, 0));
  ASSERT_TRUE(queue.push(4, 5));
  EXPECT_EQ(queue.pop(), 2u);  // highest priority first...
  EXPECT_EQ(queue.pop(), 4u);  // ...FIFO within a priority
  EXPECT_EQ(queue.pop(), 1u);
  EXPECT_EQ(queue.pop(), 3u);
}

TEST(SvcJobQueue, RemoveCancelsQueuedOnly) {
  svc::JobQueue queue(16);
  queue.push(1, 0);
  queue.push(2, 0);
  queue.push(3, 0);
  EXPECT_TRUE(queue.remove(2));
  EXPECT_FALSE(queue.remove(2));   // already gone
  EXPECT_FALSE(queue.remove(99));  // never queued
  EXPECT_EQ(queue.pop(), 1u);
  EXPECT_EQ(queue.pop(), 3u);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(SvcJobQueue, CloseDrainsThenSignalsExit) {
  svc::JobQueue queue(16);
  queue.push(1, 0);
  queue.push(2, 0);
  queue.close();
  EXPECT_FALSE(queue.push(3, 0));  // no pushes after close
  EXPECT_EQ(queue.pop(), 1u);
  EXPECT_EQ(queue.pop(), 2u);
  EXPECT_EQ(queue.pop(), std::nullopt);  // closed + empty = worker exit
}

TEST(SvcJobQueue, BlockedPushUnblocksOnCloseReturningFalse) {
  svc::JobQueue queue(1);
  ASSERT_TRUE(queue.push(1, 0));

  std::atomic<int> outcome{-1};
  std::thread producer([&] { outcome.store(queue.push(2, 0) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(outcome.load(), -1);  // parked on the full queue

  queue.close();  // must wake the producer, not strand it
  producer.join();
  EXPECT_EQ(outcome.load(), 0);  // rejected, not silently enqueued
  EXPECT_EQ(queue.pop(), 1u);
  EXPECT_EQ(queue.pop(), std::nullopt);  // job 2 never made it in
}

TEST(SvcJobQueue, RemoveAfterPopReturnsFalse) {
  // A cancel that races with a worker's pop must not pretend it dequeued
  // the job; the caller falls through to cooperative cancellation.
  svc::JobQueue queue(4);
  ASSERT_TRUE(queue.push(7, 0));
  EXPECT_EQ(queue.pop(), 7u);
  EXPECT_FALSE(queue.remove(7));
}

TEST(SvcJobQueue, BoundedPushBlocksUntilPop) {
  svc::JobQueue queue(1);
  ASSERT_TRUE(queue.try_push(1, 0));
  EXPECT_FALSE(queue.try_push(2, 0));  // full

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2, 0));  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop(), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop(), 2u);
}

// ---------------------------------------------------------------------------
// solution_io property test: write -> read -> write is a fixpoint
// ---------------------------------------------------------------------------

TEST(SvcSolutionIo, RandomSolutionsRoundTripByteIdentical) {
  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const auto circuit = netlist::make_benchmark("c432", library);
  std::mt19937 rng(20040216);

  for (int iteration = 0; iteration < 25; ++iteration) {
    opt::Solution solution;
    solution.leakage_na = std::uniform_real_distribution<>(1.0, 1e6)(rng);
    solution.delay_ps = std::uniform_real_distribution<>(100.0, 1e4)(rng);
    solution.sleep_vector.resize(
        static_cast<std::size_t>(circuit.num_control_points()));
    for (std::size_t i = 0; i < solution.sleep_vector.size(); ++i) {
      solution.sleep_vector[i] = (rng() & 1) != 0;
    }
    solution.config.resize(static_cast<std::size_t>(circuit.num_gates()));
    for (int g = 0; g < circuit.num_gates(); ++g) {
      const liberty::LibCell& cell = circuit.cell_of(g);
      sim::GateConfig& gc = solution.config[static_cast<std::size_t>(g)];
      gc.variant = static_cast<int>(rng() % static_cast<unsigned>(cell.num_variants()));
      if ((rng() & 1) != 0) {
        std::vector<int> perm(static_cast<std::size_t>(cell.num_inputs()));
        for (std::size_t p = 0; p < perm.size(); ++p) perm[p] = static_cast<int>(p);
        std::shuffle(perm.begin(), perm.end(), rng);
        gc.mapping.logical_to_physical = perm;
      }
    }

    const std::string text = core::write_solution(solution, circuit);
    const opt::Solution back = core::read_solution(text, circuit);
    EXPECT_EQ(core::write_solution(back, circuit), text) << "iteration " << iteration;
    // The round trip preserves semantics, not just bytes.
    EXPECT_EQ(back.sleep_vector, solution.sleep_vector);
    for (int g = 0; g < circuit.num_gates(); ++g) {
      const auto& a = solution.config[static_cast<std::size_t>(g)];
      const auto& b = back.config[static_cast<std::size_t>(g)];
      EXPECT_EQ(a.variant, b.variant);
      const int inputs = circuit.cell_of(g).num_inputs();
      for (int pin = 0; pin < inputs; ++pin) {
        const int phys_a = a.mapping.logical_to_physical.empty()
                               ? pin
                               : a.mapping.logical_to_physical[static_cast<std::size_t>(pin)];
        const int phys_b = b.mapping.logical_to_physical.empty()
                               ? pin
                               : b.mapping.logical_to_physical[static_cast<std::size_t>(pin)];
        EXPECT_EQ(phys_a, phys_b);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

JobSpec heu1_job(const std::string& circuit, double penalty) {
  JobSpec spec;
  spec.circuit = circuit;
  spec.method = "heu1";
  spec.penalty_percent = penalty;
  return spec;
}

/// Reference result computed without the service stack.
std::string direct_solution_text(const std::string& circuit_name, double penalty) {
  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const auto circuit = netlist::make_benchmark(circuit_name, library);
  core::StandbyOptimizer optimizer(circuit);
  core::RunConfig config;
  config.penalty_fraction = penalty / 100.0;
  const auto run = optimizer.run(core::Method::kHeu1, config);
  return core::write_solution(run.solution, circuit);
}

TEST(SvcScheduler, DeterministicAcrossWorkerCounts) {
  const std::vector<std::string> circuits = {"c432", "c880", "c1355"};
  const std::vector<double> penalties = {5, 10};

  std::vector<std::string> reference;
  for (const auto& name : circuits) {
    for (double p : penalties) reference.push_back(direct_solution_text(name, p));
  }

  for (int workers : {1, 4}) {
    svc::Scheduler::Options options;
    options.workers = workers;
    svc::Scheduler scheduler(options);
    std::vector<svc::JobId> ids;
    for (const auto& name : circuits) {
      for (double p : penalties) ids.push_back(scheduler.submit(heu1_job(name, p)));
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const svc::JobResult result = scheduler.wait(ids[i]);
      ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
      EXPECT_FALSE(result.interrupted);
      EXPECT_EQ(result.solution_text, reference[i])
          << "workers=" << workers << " job " << i;
    }
    scheduler.shutdown();
  }
}

TEST(SvcScheduler, ResubmitIsAllCacheHitsAndBitIdentical) {
  svc::Scheduler::Options options;
  options.workers = 2;
  svc::Scheduler scheduler(options);

  const std::vector<std::string> circuits = {"c432", "c880"};
  std::vector<svc::JobId> first;
  for (const auto& name : circuits) first.push_back(scheduler.submit(heu1_job(name, 5)));
  std::vector<svc::JobResult> cold;
  for (svc::JobId id : first) cold.push_back(scheduler.wait(id));
  for (const auto& result : cold) {
    ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
    EXPECT_FALSE(result.cache_hit);
  }
  const std::uint64_t misses_after_cold = scheduler.stats().cache.misses;

  std::vector<svc::JobId> second;
  for (const auto& name : circuits) second.push_back(scheduler.submit(heu1_job(name, 5)));
  for (std::size_t i = 0; i < second.size(); ++i) {
    const svc::JobResult warm = scheduler.wait(second[i]);
    ASSERT_EQ(warm.status, JobStatus::kDone);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.solution_text, cold[i].solution_text);
    EXPECT_EQ(warm.leakage_ua, cold[i].leakage_ua);
  }
  const svc::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.cache.misses, misses_after_cold);  // no re-solve
  EXPECT_GE(stats.cache.hits, 2u);
  EXPECT_EQ(stats.executed, 2u);
}

TEST(SvcScheduler, InflightDedupSolvesOnce) {
  svc::Scheduler::Options options;
  options.workers = 4;
  svc::Scheduler scheduler(options);

  constexpr int kJobs = 8;
  std::vector<svc::JobId> ids;
  for (int j = 0; j < kJobs; ++j) ids.push_back(scheduler.submit(heu1_job("c1355", 5)));
  std::vector<svc::JobResult> results;
  for (svc::JobId id : ids) results.push_back(scheduler.wait(id));

  for (const auto& result : results) {
    ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
    EXPECT_EQ(result.solution_text, results.front().solution_text);
  }
  const svc::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.executed, 1u) << "identical concurrent jobs must solve once";
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, static_cast<std::uint64_t>(kJobs - 1));
}

TEST(SvcScheduler, PriorityOrdersBacklog) {
  // One worker, three penalties queued behind a blocker: the high-priority
  // job must run before the earlier-submitted low-priority ones.
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);

  JobSpec blocker = heu1_job("c432", 0);
  const svc::JobId b = scheduler.submit(blocker);

  JobSpec low = heu1_job("c880", 2);
  low.priority = 0;
  JobSpec high = heu1_job("c880", 7);
  high.priority = 10;
  const svc::JobId low_id = scheduler.submit(low);
  const svc::JobId high_id = scheduler.submit(high);

  scheduler.wait(b);
  scheduler.wait(low_id);
  scheduler.wait(high_id);
  // Both ran; relative order is observable through the stats only weakly,
  // so assert through the queue contract instead: resubmission in the same
  // order with a drained pool is deterministic and covered above. Here we
  // just require both completed successfully.
  EXPECT_EQ(scheduler.status(low_id), JobStatus::kDone);
  EXPECT_EQ(scheduler.status(high_id), JobStatus::kDone);
}

JobSpec slow_heu2_job() {
  JobSpec spec;
  spec.circuit = "c1355";
  spec.method = "heu2";
  spec.time_limit_s = 30.0;   // far beyond what the test allows to elapse
  spec.random_vectors = 500;  // keep the Monte-Carlo baseline cheap
  return spec;
}

void wait_for_running(svc::Scheduler& scheduler, svc::JobId id) {
  for (int i = 0; i < 2000; ++i) {
    if (scheduler.status(id) == JobStatus::kRunning) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "job never started running";
}

TEST(SvcScheduler, CancelRunningJobReturnsBestSoFar) {
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);

  const svc::JobId id = scheduler.submit(slow_heu2_job());
  wait_for_running(scheduler, id);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(scheduler.cancel(id));

  const svc::JobResult result = scheduler.wait(id);
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_TRUE(result.interrupted);
  EXPECT_FALSE(result.solution_text.empty()) << "best-so-far solution expected";
  EXPECT_GT(result.leakage_ua, 0.0);
  // An interrupted incumbent is not canonical: it must not be cached.
  EXPECT_EQ(scheduler.stats().cache.entries, 0u);
}

TEST(SvcScheduler, DoubleCancelCompletesExactlyOnce) {
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);

  const svc::JobId id = scheduler.submit(slow_heu2_job());
  wait_for_running(scheduler, id);
  EXPECT_TRUE(scheduler.cancel(id));
  scheduler.cancel(id);  // second request while still winding down: harmless

  const svc::JobResult result = scheduler.wait(id);
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_FALSE(scheduler.cancel(id));  // terminal now

  const svc::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u) << "job finished more than once";
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(SvcScheduler, DeadlineInterruptsRunningJob) {
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);

  JobSpec spec = slow_heu2_job();
  spec.deadline_s = 0.5;
  const auto start = std::chrono::steady_clock::now();
  const svc::JobId id = scheduler.submit(spec);
  const svc::JobResult result = scheduler.wait(id);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_EQ(result.status, JobStatus::kDone);
  EXPECT_TRUE(result.interrupted);
  EXPECT_NE(result.error.find("deadline"), std::string::npos) << result.error;
  EXPECT_FALSE(result.solution_text.empty());
  EXPECT_LT(elapsed, 20.0) << "deadline did not interrupt the 30s search";
}

TEST(SvcScheduler, DeadlineCancelsQueuedJob) {
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);

  JobSpec blocker = slow_heu2_job();
  blocker.time_limit_s = 2.0;
  const svc::JobId front = scheduler.submit(blocker);
  wait_for_running(scheduler, front);

  JobSpec starved = heu1_job("c432", 5);
  starved.deadline_s = 0.2;  // expires while still queued behind the blocker
  const svc::JobId id = scheduler.submit(starved);
  const svc::JobResult result = scheduler.wait(id);
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_NE(result.error.find("deadline"), std::string::npos) << result.error;
  scheduler.wait(front);
}

TEST(SvcScheduler, NonDrainShutdownCancelsBacklog) {
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);

  JobSpec blocker = slow_heu2_job();
  blocker.time_limit_s = 1.0;
  const svc::JobId running = scheduler.submit(blocker);
  wait_for_running(scheduler, running);
  const svc::JobId queued1 = scheduler.submit(heu1_job("c432", 5));
  const svc::JobId queued2 = scheduler.submit(heu1_job("c880", 5));

  scheduler.shutdown(/*drain=*/false);
  EXPECT_EQ(scheduler.status(running), JobStatus::kDone);  // running jobs finish
  EXPECT_EQ(scheduler.status(queued1), JobStatus::kCancelled);
  EXPECT_EQ(scheduler.status(queued2), JobStatus::kCancelled);
  EXPECT_THROW(scheduler.submit(heu1_job("c432", 5)), ContractError);
}

TEST(SvcScheduler, FailedJobReportsError) {
  svc::Scheduler scheduler;
  JobSpec spec;
  spec.circuit = "no_such_circuit";
  spec.method = "heu1";
  const svc::JobId id = scheduler.submit(spec);
  const svc::JobResult result = scheduler.wait(id);
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

// ---------------------------------------------------------------------------
// Disk persistence across scheduler instances
// ---------------------------------------------------------------------------

TEST(SvcCache, DiskPersistsAcrossSchedulers) {
  const std::string dir = "/tmp/svc_test_cache_" + std::to_string(::getpid());
  std::string cold_text;
  {
    svc::Scheduler::Options options;
    options.cache_dir = dir;
    svc::Scheduler scheduler(options);
    const svc::JobResult cold = scheduler.wait(scheduler.submit(heu1_job("c432", 5)));
    ASSERT_EQ(cold.status, JobStatus::kDone) << cold.error;
    EXPECT_FALSE(cold.cache_hit);
    cold_text = cold.solution_text;
  }
  {
    svc::Scheduler::Options options;
    options.cache_dir = dir;
    svc::Scheduler scheduler(options);
    const svc::JobResult warm = scheduler.wait(scheduler.submit(heu1_job("c432", 5)));
    ASSERT_EQ(warm.status, JobStatus::kDone) << warm.error;
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.solution_text, cold_text);
    const svc::SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.cache.disk_hits, 1u);
    EXPECT_EQ(stats.executed, 0u) << "disk hit must not re-solve";
  }
  // Best-effort cleanup.
  std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------------------------------------
// Server / client round trip
// ---------------------------------------------------------------------------

TEST(SvcServer, EndToEndOverUnixSocket) {
  const std::string socket_path =
      "/tmp/svc_test_" + std::to_string(::getpid()) + ".sock";
  svc::Scheduler::Options options;
  options.workers = 2;
  svc::Scheduler scheduler(options);
  svc::Server server(scheduler, socket_path);
  server.start();

  ASSERT_TRUE(svc::Client::ping(socket_path));
  svc::Client client(socket_path);

  // Submit over the wire; the result must match the in-process reference.
  JobSpec spec = heu1_job("c432", 5);
  spec.label = "wire";
  const std::uint64_t job = client.submit(spec);
  const svc::JobResult result = client.result(job);
  EXPECT_EQ(result.status, JobStatus::kDone);
  EXPECT_EQ(result.label, "wire");
  EXPECT_EQ(result.gates, 177);
  EXPECT_EQ(result.solution_text, direct_solution_text("c432", 5));

  // Resubmission is served from the cache.
  const svc::JobResult warm = client.result(client.submit(spec));
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.solution_text, result.solution_text);

  // status / stats / cancel / errors.
  EXPECT_EQ(client.status(job), "done");
  const Json stats = client.stats();
  EXPECT_GE(stats.get("jobs")->get("submitted")->as_int(), 2);
  EXPECT_GE(stats.get("cache")->get("hits")->as_int(), 1);
  EXPECT_FALSE(client.cancel(999999));          // unknown id: not an error
  EXPECT_THROW(client.status(999999), ContractError);
  Json bad = Json::object();
  bad.set("cmd", "frobnicate");
  EXPECT_FALSE(client.request(bad).get("ok")->as_bool(true));
  Json rejected = Json::object();
  rejected.set("cmd", "submit");
  rejected.set("circuit", "c432");
  rejected.set("pennalty", 5);  // unknown key travels back as an error
  EXPECT_FALSE(client.request(rejected).get("ok")->as_bool(true));

  // Graceful shutdown through the protocol.
  client.shutdown(/*drain=*/true);
  EXPECT_TRUE(server.wait_for_shutdown());
  scheduler.shutdown(/*drain=*/true);
  server.stop();
  EXPECT_FALSE(svc::Client::ping(socket_path));
}

// ---------------------------------------------------------------------------
// Adversarial wire input: the server must reply with errors (or close the
// connection), never crash, hang, or stop serving other clients.
// ---------------------------------------------------------------------------

int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads one reply line; empty string = peer closed the connection.
std::string recv_line(int fd) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return line;
    if (c == '\n') return line;
    line.push_back(c);
  }
}

struct RawServer {
  std::string socket_path;
  svc::Scheduler scheduler;
  svc::Server server;

  RawServer()
      : socket_path("/tmp/svc_raw_" + std::to_string(::getpid()) + ".sock"),
        scheduler(one_worker()),
        server(scheduler, socket_path) {
    server.start();
  }
  ~RawServer() {
    scheduler.shutdown(/*drain=*/false, /*interrupt_running=*/true);
    server.stop();
  }
  static svc::Scheduler::Options one_worker() {
    svc::Scheduler::Options options;
    options.workers = 1;
    return options;
  }
};

TEST(SvcServerRobustness, OversizedLineGetsErrorThenClose) {
  RawServer rig;
  const int fd = raw_connect(rig.socket_path);
  send_all(fd, std::string((1u << 20) + 2, 'a'));  // > 1 MiB, no newline
  const std::string reply = recv_line(fd);
  EXPECT_NE(reply.find("exceeds 1 MiB"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
  EXPECT_TRUE(recv_line(fd).empty()) << "connection should be closed";
  ::close(fd);
}

TEST(SvcServerRobustness, MalformedLinesGetErrorRepliesAndConnectionSurvives) {
  RawServer rig;
  const int fd = raw_connect(rig.socket_path);

  const std::string deep_nest =
      std::string(100, '[') + "1" + std::string(100, ']');
  const std::vector<std::string> attacks = {
      "not json at all",
      "{\"cmd\":\"submit\"",                 // truncated object
      std::string("\x01\xff\xfe{", 4),       // control bytes / invalid UTF-8
      deep_nest,                              // past the 64-level depth guard
      "{\"cmd\":\"submit\",\"circuit\":\"c432\",\"penalty\":200}",  // contract
  };
  for (const std::string& attack : attacks) {
    send_all(fd, attack + "\n");
    const std::string reply = recv_line(fd);
    ASSERT_FALSE(reply.empty()) << "server closed on: " << attack;
    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
    EXPECT_NE(reply.find("error"), std::string::npos) << reply;
  }

  // The same connection still serves well-formed requests afterwards.
  send_all(fd, "{\"cmd\":\"stats\"}\n");
  const std::string stats = recv_line(fd);
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos) << stats;
  ::close(fd);
}

TEST(SvcServerRobustness, TruncatedFrameThenDisconnectLeavesServerServing) {
  RawServer rig;
  const int half = raw_connect(rig.socket_path);
  send_all(half, "{\"cmd\":\"stats\"");  // no newline: incomplete frame
  ::close(half);                          // drop mid-frame

  const int fd = raw_connect(rig.socket_path);
  send_all(fd, "{\"cmd\":\"stats\"}\n");
  EXPECT_NE(recv_line(fd).find("\"ok\":true"), std::string::npos);
  ::close(fd);
}

TEST(SvcServerRobustness, ClientDisconnectBeforeReplyDoesNotKillServer) {
  // Regression for SIGPIPE: the handler's reply lands on a closed socket.
  // Without MSG_NOSIGNAL the write would raise SIGPIPE and kill the whole
  // process (this test binary included).
  RawServer rig;
  svc::Client client(rig.socket_path);
  const std::uint64_t id = client.submit(slow_heu2_job());

  const int fd = raw_connect(rig.socket_path);
  send_all(fd, "{\"cmd\":\"result\",\"job\":" + std::to_string(id) + "}\n");
  // The handler is now parked in wait(id). Vanish before it can reply.
  ::close(fd);

  EXPECT_TRUE(client.cancel(id));  // unblocks the handler; reply hits EPIPE
  for (int i = 0; i < 200 && client.status(id) == "running"; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Server still alive and serving.
  const Json stats = client.stats();
  EXPECT_GE(stats.get("jobs")->get("submitted")->as_int(), 1);
}

}  // namespace
}  // namespace svtox
