#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "sim/leakage_eval.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::opt {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist random_net(std::uint64_t seed, int inputs = 10, int gates = 60) {
  return netlist::random_circuit(lib(), "opt_r", inputs, gates, seed);
}

std::vector<bool> random_vector(const netlist::Netlist& n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> v(static_cast<std::size_t>(n.num_inputs()));
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.next_bool();
  return v;
}

TEST(Problem, ConstraintInterpolatesBudget) {
  const auto n = random_net(1);
  const AssignmentProblem p5(n, 0.05);
  const AssignmentProblem p25(n, 0.25);
  EXPECT_GT(p25.constraint_ps(), p5.constraint_ps());
  EXPECT_GE(p5.constraint_ps(), p5.budget().fast_delay_ps);
  EXPECT_THROW(AssignmentProblem(n, 1.5), ContractError);
}

TEST(Problem, MenusAreSortedAscendingByLeakage) {
  const auto n = random_net(2);
  const AssignmentProblem problem(n, 0.05);
  for (int g = 0; g < n.num_gates(); ++g) {
    const auto& cell = n.cell_of(g);
    for (std::uint32_t raw = 0; raw < cell.topology().num_states(); ++raw) {
      const auto canon = cell.canonicalize(raw).canonical_state;
      const VariantMenu& menu = problem.menu(g, canon);
      ASSERT_FALSE(menu.by_leakage.empty());
      for (std::size_t i = 1; i < menu.by_leakage.size(); ++i) {
        EXPECT_LE(cell.leakage_na(menu.by_leakage[i - 1], canon),
                  cell.leakage_na(menu.by_leakage[i], canon) + 1e-12);
      }
    }
  }
}

TEST(Problem, MinLeakBoundIsConsistent) {
  const auto n = random_net(3);
  const AssignmentProblem problem(n, 0.05);
  for (int g = 0; g < n.num_gates(); ++g) {
    const auto& cell = n.cell_of(g);
    for (std::uint32_t raw = 0; raw < cell.topology().num_states(); ++raw) {
      EXPECT_LE(problem.min_gate_leak_na(g, raw),
                problem.fastest_gate_leak_na(g, raw) + 1e-12);
    }
  }
}

TEST(Problem, InputOrderIsAPermutation) {
  const auto n = random_net(4, 14, 70);
  const AssignmentProblem problem(n, 0.05);
  std::vector<bool> seen(static_cast<std::size_t>(n.num_inputs()), false);
  for (int i : problem.input_order()) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, n.num_inputs());
    EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
}

TEST(GreedyAssign, RespectsDelayConstraint) {
  for (double penalty : {0.0, 0.05, 0.10, 0.25}) {
    const auto n = random_net(5, 12, 100);
    const AssignmentProblem problem(n, penalty);
    const Solution sol = assign_gates_greedy(problem, random_vector(n, 55));
    EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3) << "penalty " << penalty;
  }
}

TEST(GreedyAssign, NeverWorseThanFastestConfig) {
  const auto n = random_net(6, 12, 100);
  const AssignmentProblem problem(n, 0.05);
  const auto vec = random_vector(n, 66);
  const Solution greedy = assign_gates_greedy(problem, vec);
  const Solution fastest = evaluate_state_only(problem, vec);
  EXPECT_LE(greedy.leakage_na, fastest.leakage_na + 1e-9);
}

TEST(GreedyAssign, MorePenaltyNeverHurts) {
  const auto n = random_net(7, 12, 120);
  const auto vec = random_vector(n, 77);
  double prev = 1e300;
  for (double penalty : {0.0, 0.05, 0.10, 0.25, 1.0}) {
    const AssignmentProblem problem(n, penalty);
    const Solution sol = assign_gates_greedy(problem, vec);
    EXPECT_LE(sol.leakage_na, prev + 1e-9) << "penalty " << penalty;
    prev = sol.leakage_na;
  }
}

TEST(GreedyAssign, FullBudgetReachesPerGateMinimum) {
  // With a 100% penalty every gate can take its min-leak version: the
  // greedy result must equal the sum of per-gate minima.
  const auto n = random_net(8, 10, 80);
  const AssignmentProblem problem(n, 1.0);
  const auto vec = random_vector(n, 88);
  const Solution sol = assign_gates_greedy(problem, vec);

  const auto values = sim::simulate(n, vec);
  double floor = 0.0;
  for (int g = 0; g < n.num_gates(); ++g) {
    floor += problem.min_gate_leak_na(g, sim::local_state(n, values, g));
  }
  EXPECT_NEAR(sol.leakage_na, floor, 1e-6);
}

TEST(GreedyAssign, GateOrdersAllFeasible) {
  const auto n = random_net(9, 12, 100);
  const AssignmentProblem problem(n, 0.05);
  const auto vec = random_vector(n, 99);
  for (GateOrder order :
       {GateOrder::kBySavings, GateOrder::kTopological, GateOrder::kReverseTopological}) {
    const Solution sol = assign_gates_greedy(problem, vec, order);
    EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3);
    EXPECT_GT(sol.leakage_na, 0.0);
  }
}

TEST(ExactGateAssign, NeverWorseThanGreedy) {
  for (std::uint64_t seed : {10ULL, 11ULL, 12ULL}) {
    const auto n = random_net(seed, 6, 14);
    const AssignmentProblem problem(n, 0.05);
    const auto vec = random_vector(n, seed * 3);
    const Solution greedy = assign_gates_greedy(problem, vec);
    const Solution exact = assign_gates_exact(problem, vec);
    EXPECT_LE(exact.leakage_na, greedy.leakage_na + 1e-9) << "seed " << seed;
    EXPECT_LE(exact.delay_ps, problem.constraint_ps() + 1e-3);
  }
}

TEST(Bound, AdmissibleAgainstSampledCompletions) {
  // Property: the ternary lower bound never exceeds the true leakage of any
  // completion's greedy solution.
  const auto n = random_net(13, 8, 50);
  const AssignmentProblem problem(n, 0.25);
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<sim::Tri> partial(static_cast<std::size_t>(n.num_inputs()), sim::Tri::kX);
    for (std::size_t i = 0; i < partial.size() / 2; ++i) {
      partial[i] = rng.next_bool() ? sim::Tri::kOne : sim::Tri::kZero;
    }
    const double bound = leakage_lower_bound_na(problem, partial, BoundKind::kMinVariant);

    for (int completion = 0; completion < 8; ++completion) {
      std::vector<bool> vec(partial.size());
      for (std::size_t i = 0; i < partial.size(); ++i) {
        vec[i] = partial[i] == sim::Tri::kOne ||
                 (partial[i] == sim::Tri::kX && rng.next_bool());
      }
      const Solution sol = assign_gates_greedy(problem, vec);
      EXPECT_LE(bound, sol.leakage_na + 1e-6);
    }
  }
}

TEST(Bound, TightensAsInputsAreAssigned) {
  const auto n = random_net(14, 10, 60);
  const AssignmentProblem problem(n, 0.05);
  std::vector<sim::Tri> partial(static_cast<std::size_t>(n.num_inputs()), sim::Tri::kX);
  double prev = leakage_lower_bound_na(problem, partial, BoundKind::kMinVariant);
  Rng rng(14);
  for (std::size_t i = 0; i < partial.size(); ++i) {
    partial[i] = rng.next_bool() ? sim::Tri::kOne : sim::Tri::kZero;
    const double bound = leakage_lower_bound_na(problem, partial, BoundKind::kMinVariant);
    EXPECT_GE(bound, prev - 1e-9);
    prev = bound;
  }
}

TEST(Heuristics, Heu2NeverWorseThanHeu1) {
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    const auto n = random_net(seed, 10, 80);
    const AssignmentProblem problem(n, 0.05);
    const Solution h1 = heuristic1(problem);
    const Solution h2 = heuristic2(problem, 0.5);
    EXPECT_LE(h2.leakage_na, h1.leakage_na + 1e-9) << "seed " << seed;
    EXPECT_GE(h2.states_explored, h1.states_explored);
  }
}

TEST(Heuristics, Heu1ExploresExactlyOneLeaf) {
  const auto n = random_net(24, 10, 60);
  const AssignmentProblem problem(n, 0.05);
  const Solution h1 = heuristic1(problem);
  EXPECT_EQ(h1.states_explored, 1u);
  EXPECT_EQ(h1.sleep_vector.size(), static_cast<std::size_t>(n.num_inputs()));
}

TEST(Heuristics, SolutionsRespectDelayConstraint) {
  const auto n = random_net(25, 12, 100);
  for (double penalty : {0.05, 0.25}) {
    const AssignmentProblem problem(n, penalty);
    for (const Solution& sol : {heuristic1(problem), heuristic2(problem, 0.3)}) {
      EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3);
    }
  }
}

TEST(Heuristics, ExactNeverWorseThanHeuristics) {
  // Small circuit so the exact search finishes: full state + gate B&B.
  const auto n = random_net(26, 5, 12);
  const AssignmentProblem problem(n, 0.10);
  SearchOptions options;
  options.time_limit_s = 30.0;
  const Solution exact = exact_search(problem, options);
  const Solution h1 = heuristic1(problem);
  const Solution h2 = heuristic2(problem, 1.0);
  EXPECT_LE(exact.leakage_na, h1.leakage_na + 1e-9);
  EXPECT_LE(exact.leakage_na, h2.leakage_na + 1e-9);
  EXPECT_LE(exact.delay_ps, problem.constraint_ps() + 1e-3);
}

TEST(StateOnly, NoGateIsSwapped) {
  const auto n = random_net(27, 10, 60);
  const AssignmentProblem problem(n, 0.05);
  const Solution sol = state_only_search(problem, 0.3);
  for (int g = 0; g < n.num_gates(); ++g) {
    EXPECT_EQ(sol.config[static_cast<std::size_t>(g)].variant,
              n.cell_of(g).fastest_variant());
  }
}

TEST(StateOnly, WorseThanProposedButBetterThanWorstState) {
  const auto n = random_net(28, 10, 80);
  const AssignmentProblem problem(n, 0.05);
  const Solution state_only = state_only_search(problem, 0.3);
  const Solution h1 = heuristic1(problem);
  EXPECT_GE(state_only.leakage_na, h1.leakage_na - 1e-9);
  // And the chosen state beats the worst state by some margin.
  double worst = 0.0;
  Rng rng(28);
  for (int trial = 0; trial < 50; ++trial) {
    const Solution probe = evaluate_state_only(problem, random_vector(n, rng.next_u64()));
    worst = std::max(worst, probe.leakage_na);
  }
  EXPECT_LT(state_only.leakage_na, worst);
}

TEST(VtOnlyLibrary, ProposedBeatsVtState) {
  // The paper's central comparison: dual-Vt alone cannot touch Igate, so
  // the dual-Tox flow must win at the same circuit and penalty.
  const auto n = random_net(29, 10, 80);
  liberty::LibraryOptions options;
  options.variant_options.vt_only = true;
  const liberty::Library vt_lib =
      liberty::Library::build(model::TechParams::nominal(), options);
  const auto vt_net = netlist::rebind(n, vt_lib);

  const AssignmentProblem full_problem(n, 0.05);
  const AssignmentProblem vt_problem(vt_net, 0.05);
  const Solution full = heuristic1(full_problem);
  const Solution vt = heuristic1(vt_problem);
  EXPECT_LT(full.leakage_na, vt.leakage_na);
}

}  // namespace
}  // namespace svtox::opt

namespace svtox::opt {
namespace {

TEST(Accounting, SolutionLeakageMatchesIndependentSimulation) {
  // The optimizer's internal leakage bookkeeping (canonical-state lookups
  // during the greedy) must agree with a from-scratch evaluation of the
  // final configuration through the simulator -- the same cross-check the
  // CLI `verify` command performs.
  for (std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    const auto n = random_net(seed, 12, 90);
    for (double penalty : {0.0, 0.05, 0.25}) {
      const AssignmentProblem problem(n, penalty);
      const Solution sol = heuristic1(problem);
      const double independent =
          sim::circuit_leakage_na(n, sol.config, sol.sleep_vector);
      EXPECT_NEAR(independent, sol.leakage_na, 1e-6)
          << "seed " << seed << " penalty " << penalty;
    }
  }
}

TEST(Accounting, SolutionDelayMatchesIndependentSta) {
  const auto n = random_net(34, 12, 90);
  const AssignmentProblem problem(n, 0.10);
  const Solution sol = heuristic1(problem);
  sta::TimingState timing(n);
  EXPECT_NEAR(timing.analyze(sol.config), sol.delay_ps, 1e-6);
}

}  // namespace
}  // namespace svtox::opt
