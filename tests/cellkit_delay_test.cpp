// Delay-model tests, anchored to the paper's Table 1 normalized delays.
#include <gtest/gtest.h>

#include "cellkit/delay.hpp"
#include "cellkit/topology.hpp"
#include "cellkit/variants.hpp"
#include "util/error.hpp"

namespace svtox::cellkit {
namespace {

const model::TechParams& tech() { return model::TechParams::nominal(); }

TEST(Delay, NominalFactorIsOne) {
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellAssignment nominal = nominal_assignment(topo);
    for (int pin = 0; pin < topo.num_inputs(); ++pin) {
      for (Edge edge : {Edge::kRise, Edge::kFall}) {
        EXPECT_DOUBLE_EQ(delay_factor(topo, tech(), nominal, pin, edge), 1.0)
            << name << " pin " << pin;
      }
    }
  }
}

TEST(Delay, HighVtPmosSlowsRiseByPaperFactor) {
  // Paper Table 1, state 11 min-leak: normalized rise delay 1.36/1.37.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  CellAssignment assign = nominal_assignment(nand2);
  assign[2].vt = model::VtClass::kHigh;  // PMOS pin0
  assign[3].vt = model::VtClass::kHigh;  // PMOS pin1
  for (int pin : {0, 1}) {
    EXPECT_NEAR(delay_factor(nand2, tech(), assign, pin, Edge::kRise), 1.36, 0.02);
    EXPECT_DOUBLE_EQ(delay_factor(nand2, tech(), assign, pin, Edge::kFall), 1.0);
  }
}

TEST(Delay, ThickOxideNmosSlowsFallByPaperFactor) {
  // Paper Table 1, state 11 min-leak: normalized fall delay 1.27.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  CellAssignment assign = nominal_assignment(nand2);
  assign[0].tox = model::ToxClass::kThick;
  assign[1].tox = model::ToxClass::kThick;
  for (int pin : {0, 1}) {
    EXPECT_NEAR(delay_factor(nand2, tech(), assign, pin, Edge::kFall), 1.27, 0.02);
    EXPECT_DOUBLE_EQ(delay_factor(nand2, tech(), assign, pin, Edge::kRise), 1.0);
  }
}

TEST(Delay, SingleStackHighVtShowsPinAsymmetry) {
  // Paper Table 1, state 00 min-leak (one NMOS at high-Vt): fall delays
  // 1.12 (pin A) vs 1.16 (pin B) -- the pin driving the slowed device pays
  // more. Our weighting reproduces the asymmetry direction and magnitude.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  CellAssignment assign = nominal_assignment(nand2);
  assign[1].vt = model::VtClass::kHigh;  // bottom NMOS (pin 1)
  const double fall_a = delay_factor(nand2, tech(), assign, 0, Edge::kFall);
  const double fall_b = delay_factor(nand2, tech(), assign, 1, Edge::kFall);
  EXPECT_LT(fall_a, fall_b);
  EXPECT_NEAR(fall_a, 1.14, 0.06);
  EXPECT_NEAR(fall_b, 1.19, 0.06);
  // Rise path untouched.
  EXPECT_DOUBLE_EQ(delay_factor(nand2, tech(), assign, 0, Edge::kRise), 1.0);
}

TEST(Delay, FactorsNeverBelowOneForSlowAssignments) {
  // Any high-Vt / thick-Tox assignment can only slow a path down.
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    const CellVersionSet set =
        generate_versions(topo, tech(), VariantOptions{});
    for (const CellVersion& v : set.versions()) {
      for (int pin = 0; pin < topo.num_inputs(); ++pin) {
        for (Edge edge : {Edge::kRise, Edge::kFall}) {
          EXPECT_GE(delay_factor(topo, tech(), v.assignment, pin, edge), 1.0 - 1e-12)
              << name << " " << v.name;
        }
      }
    }
  }
}

TEST(Delay, AllSlowNearlyDoublesBothEdges) {
  // Paper Sec. 6: all high-Vt + thick-Tox ~doubles circuit delay.
  const CellTopology inv = make_standard_cell("INV", tech());
  CellAssignment assign(static_cast<std::size_t>(inv.num_devices()),
                        DeviceAssign{model::VtClass::kHigh, model::ToxClass::kThick});
  for (Edge edge : {Edge::kRise, Edge::kFall}) {
    const double f = delay_factor(inv, tech(), assign, 0, edge);
    EXPECT_GT(f, 1.6);
    EXPECT_LT(f, 2.1);
  }
}

TEST(Delay, NominalDelayIncreasesWithLoad) {
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  double prev = 0.0;
  for (double load : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double d = nominal_delay_ps(nand2, tech(), 0, Edge::kFall, 20.0, load);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Delay, NominalDelayIncreasesWithInputSlew) {
  const CellTopology nor2 = make_standard_cell("NOR2", tech());
  const double fast = nominal_delay_ps(nor2, tech(), 1, Edge::kRise, 10.0, 4.0);
  const double slow = nominal_delay_ps(nor2, tech(), 1, Edge::kRise, 100.0, 4.0);
  EXPECT_GT(slow, fast);
}

TEST(Delay, OutputSlewPositiveAndLoadMonotone) {
  const CellTopology inv = make_standard_cell("INV", tech());
  const double s1 = nominal_output_slew_ps(inv, tech(), 0, Edge::kRise, 20.0, 1.0);
  const double s2 = nominal_output_slew_ps(inv, tech(), 0, Edge::kRise, 20.0, 8.0);
  EXPECT_GT(s1, 0.0);
  EXPECT_GT(s2, s1);
}

TEST(Delay, SeriesStacksAreSlowerThanParallel) {
  // A NAND2's rise (parallel PMOS) is faster than a NOR2's rise (stacked
  // PMOS) at identical load, reflecting the classic NAND-preference.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  const CellTopology nor2 = make_standard_cell("NOR2", tech());
  const double nand_rise = nominal_delay_ps(nand2, tech(), 0, Edge::kRise, 20.0, 4.0);
  const double nor_rise = nominal_delay_ps(nor2, tech(), 0, Edge::kRise, 20.0, 4.0);
  EXPECT_LT(nand_rise, nor_rise);
}

TEST(Delay, BadPinThrows) {
  const CellTopology inv = make_standard_cell("INV", tech());
  EXPECT_THROW(
      path_resistance_kohm(inv, tech(), nominal_assignment(inv), 1, Edge::kRise),
      ContractError);
  EXPECT_THROW(path_resistance_kohm(inv, tech(), CellAssignment{}, 0, Edge::kRise),
               ContractError);
}

}  // namespace
}  // namespace svtox::cellkit
