// Fault-injection suite (`ctest -L fault`): real jobs running with armed
// fail points must degrade gracefully -- retries succeed, corrupt cache
// entries are skipped, a flaky server connection is survived by the
// client's retry loop, and injected hangs surface as client timeouts --
// never as crashes, hangs, or corrupt results.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "svc/client.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "svc/solution_cache.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace svtox {
namespace {

using svc::JobSpec;
using svc::JobStatus;

// ---------------------------------------------------------------------------
// FailPoints registry
// ---------------------------------------------------------------------------

TEST(FailPoints, SpecParsingAndTriggerCounting) {
  FailPoints& points = FailPoints::instance();
  FailPointScope scope("alpha=error*2,beta=off");

  EXPECT_EQ(points.triggers("alpha"), 0u);
  EXPECT_THROW(points.evaluate("alpha"), Error);
  EXPECT_THROW(points.evaluate("alpha"), Error);
  points.evaluate("alpha");  // count exhausted: no-op
  EXPECT_EQ(points.triggers("alpha"), 2u);

  points.evaluate("beta");          // armed off: no-op
  points.evaluate("never_armed");   // unknown: no-op
  EXPECT_EQ(points.triggers("beta"), 0u);

  EXPECT_THROW(points.configure("oops"), ContractError);
  EXPECT_THROW(points.configure("x=explode"), ContractError);
}

TEST(FailPoints, ErrorsAreRetryableIoErrors) {
  FailPointScope scope("boom=error");
  try {
    FailPoints::instance().evaluate("boom");
    FAIL() << "fail point did not fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(FailPoints, BooleanHookReportsInsteadOfThrowing) {
  FailPointScope scope("flaky=error*1");
  EXPECT_TRUE(FailPoints::instance().fails("flaky"));
  EXPECT_FALSE(FailPoints::instance().fails("flaky"));  // count exhausted
  EXPECT_FALSE(FailPoints::instance().fails("unarmed"));
}

TEST(FailPoints, HangStallsBounded) {
  FailPointScope scope("slow=hang:80");
  const auto start = std::chrono::steady_clock::now();
  FailPoints::instance().evaluate("slow");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(elapsed, 0.05);
  EXPECT_LT(elapsed, 5.0) << "hang must be a bounded stall";
  EXPECT_EQ(FailPoints::instance().triggers("slow"), 1u);
}

TEST(FailPoints, ProbabilityZeroNeverFires) {
  FailPointScope scope("maybe=error:0");
  for (int i = 0; i < 100; ++i) FailPoints::instance().evaluate("maybe");
  EXPECT_EQ(FailPoints::instance().triggers("maybe"), 0u);
}

// ---------------------------------------------------------------------------
// Solution cache under disk faults
// ---------------------------------------------------------------------------

svc::JobResult tiny_result() {
  svc::JobResult result;
  result.status = JobStatus::kDone;
  result.circuit = "c17";
  result.method = "heu1";
  result.leakage_ua = 1.25;
  result.solution_text = "svtox_solution v1 c17\nend\n";
  return result;
}

TEST(FaultCache, WriteFaultIsToleratedAndCostsOnlyPersistence) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  const std::string dir = "/tmp/fault_cache_" + std::to_string(::getpid());
  {
    svc::SolutionCache::Options options;
    options.disk_dir = dir;
    svc::SolutionCache cache(options);
    FailPointScope scope("cache_write=error");
    ASSERT_FALSE(cache.fetch_or_lock("k1").has_value());
    cache.publish("k1", tiny_result());  // disk write fails; must not throw
    // The in-memory entry is still served.
    ASSERT_TRUE(cache.peek("k1").has_value());
  }
  {
    // Nothing was persisted, so a fresh cache misses: the fault cost a
    // future re-solve, not a wrong answer.
    svc::SolutionCache::Options options;
    options.disk_dir = dir;
    svc::SolutionCache cache(options);
    EXPECT_FALSE(cache.fetch_or_lock("k1").has_value());
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(FaultCache, CorruptDiskEntryIsDroppedCountedAndRemoved) {
  const std::string dir = "/tmp/fault_cache_" + std::to_string(::getpid()) + "_c";
  svc::SolutionCache::Options options;
  options.disk_dir = dir;
  {
    svc::SolutionCache cache(options);
    ASSERT_FALSE(cache.fetch_or_lock("k1").has_value());
    cache.publish("k1", tiny_result());
  }
  // Truncate the payload behind the checksum's back.
  const std::string path = dir + "/k1.svcache";
  {
    std::ifstream in(path);
    ASSERT_TRUE(bool(in));
    std::string meta_line;
    std::getline(in, meta_line);
    std::ofstream out(path, std::ios::trunc);
    out << meta_line << "\ntruncated";
  }
  {
    svc::SolutionCache cache(options);
    EXPECT_FALSE(cache.fetch_or_lock("k1").has_value())
        << "corrupt entry must read as a miss, not a wrong hit";
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_FALSE(std::ifstream(path).good()) << "corrupt file must be removed";
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(FaultCache, ReadFaultReadsAsMissNotCrash) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  const std::string dir = "/tmp/fault_cache_" + std::to_string(::getpid()) + "_r";
  svc::SolutionCache::Options options;
  options.disk_dir = dir;
  {
    svc::SolutionCache cache(options);
    ASSERT_FALSE(cache.fetch_or_lock("k1").has_value());
    cache.publish("k1", tiny_result());
  }
  {
    svc::SolutionCache cache(options);
    FailPointScope scope("cache_read=error");
    EXPECT_FALSE(cache.fetch_or_lock("k1").has_value());
  }
  std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------------------------------------
// Scheduler retry policy
// ---------------------------------------------------------------------------

JobSpec retry_job(int retries) {
  JobSpec spec;
  spec.circuit = "c432";
  spec.method = "heu1";
  spec.random_vectors = 200;
  spec.retries = retries;
  spec.use_cache = false;
  return spec;
}

TEST(FaultScheduler, RetryableFailureSucceedsWithinBudget) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);
  FailPointScope scope("job_execute=error*2");

  const svc::JobResult result = scheduler.wait(scheduler.submit(retry_job(3)));
  EXPECT_EQ(result.status, JobStatus::kDone) << result.error;
  EXPECT_FALSE(result.solution_text.empty());
  EXPECT_EQ(scheduler.stats().retried, 2u);
}

TEST(FaultScheduler, RetryBudgetExhaustedFailsWithIoCode) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);
  FailPointScope scope("job_execute=error");

  const svc::JobResult result = scheduler.wait(scheduler.submit(retry_job(1)));
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error_code, "io");
  EXPECT_EQ(scheduler.stats().retried, 1u);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

TEST(FaultScheduler, NonRetryableFailureNeverRetries) {
  svc::Scheduler::Options options;
  options.workers = 1;
  svc::Scheduler scheduler(options);

  JobSpec spec = retry_job(5);
  spec.circuit = "no_such_circuit";  // ContractError, not a transient fault
  const svc::JobResult result = scheduler.wait(scheduler.submit(spec));
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error_code, "internal");
  EXPECT_EQ(scheduler.stats().retried, 0u);
}

// ---------------------------------------------------------------------------
// Server/client transport faults
// ---------------------------------------------------------------------------

struct WireFixture {
  std::string socket_path =
      "/tmp/fault_wire_" + std::to_string(::getpid()) + ".sock";
  svc::Scheduler scheduler;
  svc::Server server;

  WireFixture()
      : scheduler([] {
          svc::Scheduler::Options options;
          options.workers = 1;
          return options;
        }()),
        server(scheduler, socket_path) {
    server.start();
  }
  ~WireFixture() {
    server.stop();
    scheduler.shutdown(/*drain=*/false);
  }
};

TEST(FaultWire, ClientRetriesThroughDroppedServerWrite) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  WireFixture wire;
  svc::ClientOptions copts;
  copts.max_attempts = 4;
  copts.backoff_initial_s = 0.01;
  svc::Client client(wire.socket_path, copts);

  // The first reply write "fails": the server closes the connection and
  // the client must reconnect and resend (at-least-once).
  FailPointScope scope("server_write=error*1");
  const std::uint64_t job = client.submit(retry_job(0));
  const svc::JobResult result = client.result(job);
  EXPECT_EQ(result.status, JobStatus::kDone) << result.error;
  EXPECT_FALSE(result.solution_text.empty());
}

TEST(FaultWire, ClientConnectRetriesThroughTransientRefusal) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  WireFixture wire;
  FailPointScope scope("client_connect=error*2");
  svc::ClientOptions copts;
  copts.max_attempts = 4;
  copts.backoff_initial_s = 0.01;
  svc::Client client(wire.socket_path, copts);  // 2 failures + 1 success
  EXPECT_GE(client.stats().get("jobs")->get("workers")->as_int(), 1);
}

TEST(FaultWire, ClientConnectGivesUpAfterBudget) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  WireFixture wire;
  FailPointScope scope("client_connect=error");
  svc::ClientOptions copts;
  copts.max_attempts = 2;
  copts.backoff_initial_s = 0.01;
  try {
    svc::Client client(wire.socket_path, copts);
    FAIL() << "connect must fail when every attempt is refused";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
  EXPECT_EQ(FailPoints::instance().triggers("client_connect"), 2u);
}

TEST(FaultWire, InjectedServerStallSurfacesAsClientTimeout) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  WireFixture wire;
  svc::ClientOptions copts;
  copts.max_attempts = 1;
  copts.request_timeout_s = 0.25;
  svc::Client client(wire.socket_path, copts);

  FailPointScope scope("server_read=hang:2000");
  Timer timer;
  try {
    client.stats();
    FAIL() << "stalled server must time the request out";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
  // The deadline, not the stall, bounds the wait: the client must give up
  // after ~0.25s rather than sit out the 2s server-side hang. (The client
  // never resends a timed-out request -- it may still be executing.)
  EXPECT_LT(timer.seconds(), 1.5);
}

TEST(FaultWire, ClientSendFaultIsRetriedTransparently) {
  if (!FailPoints::compiled_in()) GTEST_SKIP() << "fail points compiled out";
  WireFixture wire;
  svc::ClientOptions copts;
  copts.max_attempts = 3;
  copts.backoff_initial_s = 0.01;
  svc::Client client(wire.socket_path, copts);

  FailPointScope scope("client_send=error*1");
  EXPECT_GE(client.stats().get("jobs")->get("workers")->as_int(), 1);
  EXPECT_EQ(FailPoints::instance().triggers("client_send"), 1u);
}

}  // namespace
}  // namespace svtox
