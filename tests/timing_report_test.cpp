#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "sta/timing_report.hpp"
#include "util/error.hpp"

namespace svtox::sta {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

TEST(SlackAnalysis, WorstSlackMatchesCircuitDelay) {
  const auto n = netlist::random_circuit(lib(), "tr1", 10, 80, 51);
  const auto config = sim::fastest_config(n);
  TimingState timing(n);
  const double delay = timing.analyze(config);
  const double required = delay + 100.0;

  const SlackAnalysis slack(n, config, required);
  // The worst slack equals required - circuit delay (the critical PO).
  EXPECT_NEAR(slack.worst_slack_ps(), 100.0, 1e-6);
}

TEST(SlackAnalysis, NegativeSlackWhenRequiredTooTight) {
  const auto n = netlist::random_circuit(lib(), "tr2", 10, 80, 52);
  const auto config = sim::fastest_config(n);
  TimingState timing(n);
  const double delay = timing.analyze(config);

  const SlackAnalysis slack(n, config, 0.5 * delay);
  EXPECT_LT(slack.worst_slack_ps(), 0.0);
}

TEST(SlackAnalysis, SlackNonNegativeEverywhereWhenMet) {
  const auto n = netlist::random_circuit(lib(), "tr3", 12, 100, 53);
  const auto config = sim::fastest_config(n);
  TimingState timing(n);
  const double delay = timing.analyze(config);
  const SlackAnalysis slack(n, config, delay);
  for (int s = 0; s < n.num_signals(); ++s) {
    EXPECT_GE(slack.slack_ps(s), -1e-6) << n.signal_name(s);
  }
}

TEST(SlackAnalysis, CriticalSignalsHaveSmallestSlack) {
  const auto n = netlist::random_circuit(lib(), "tr4", 10, 90, 54);
  const auto config = sim::fastest_config(n);
  TimingState timing(n);
  const double delay = timing.analyze(config);
  const SlackAnalysis slack(n, config, delay);

  const auto critical = slack.most_critical(5);
  ASSERT_EQ(critical.size(), 5u);
  for (std::size_t i = 1; i < critical.size(); ++i) {
    EXPECT_LE(slack.slack_ps(critical[i - 1]), slack.slack_ps(critical[i]) + 1e-9);
  }
  // The most critical signal sits at ~zero slack.
  EXPECT_NEAR(slack.slack_ps(critical[0]), 0.0, 1e-6);
}

TEST(SlackAnalysis, HistogramCountsAllSignals) {
  const auto n = netlist::random_circuit(lib(), "tr5", 10, 60, 55);
  const auto config = sim::fastest_config(n);
  const SlackAnalysis slack(n, config, 5000.0);
  const auto hist = slack.histogram(8);
  int total = 0;
  for (int c : hist) total += c;
  EXPECT_EQ(total, n.num_signals());
  EXPECT_THROW(slack.histogram(0), ContractError);
}

TEST(SlackAnalysis, OptimizedSolutionKeepsNonNegativeSlackAtConstraint) {
  // After the greedy assignment, every signal must meet the delay
  // constraint the optimizer enforced -- slack analysis cross-checks the
  // incremental STA from an independent direction.
  const auto n = netlist::random_circuit(lib(), "tr6", 12, 110, 56);
  const opt::AssignmentProblem problem(n, 0.10);
  const auto sol = opt::heuristic1(problem);
  const SlackAnalysis slack(n, sol.config, problem.constraint_ps());
  EXPECT_GE(slack.worst_slack_ps(), -1e-3);
}

TEST(WorstPath, RendersStagesInOrder) {
  const auto n = netlist::random_circuit(lib(), "tr7", 8, 50, 57);
  const auto config = sim::fastest_config(n);
  const std::string report = render_worst_path(n, config);
  EXPECT_NE(report.find("worst path"), std::string::npos);
  EXPECT_NE(report.find("ps"), std::string::npos);
  // At least one stage line.
  EXPECT_NE(report.find("->"), std::string::npos);
}

}  // namespace
}  // namespace svtox::sta
