#include <gtest/gtest.h>

#include "liberty/lib_format.hpp"
#include "util/error.hpp"

namespace svtox::liberty {
namespace {

const Library& lib() {
  static const Library library = Library::build(model::TechParams::nominal(), {});
  return library;
}

TEST(LibertyFormat, PinNamesAndFunctions) {
  EXPECT_EQ(liberty_pin_name(0), "A1");
  EXPECT_EQ(liberty_pin_name(3), "A4");
  EXPECT_EQ(liberty_function("INV"), "!A1");
  EXPECT_EQ(liberty_function("NAND2"), "!(A1&A2)");
  EXPECT_EQ(liberty_function("NOR3"), "!(A1|A2|A3)");
  EXPECT_EQ(liberty_function("AOI21"), "!((A1&A2)|A3)");
  EXPECT_EQ(liberty_function("OAI22"), "!((A1|A2)&(A3|A4))");
  EXPECT_THROW(liberty_function("XOR2"), ContractError);
}

class LibertyExport : public ::testing::Test {
 protected:
  static const std::string& text() {
    static const std::string t = write_liberty_format(lib());
    return t;
  }
};

TEST_F(LibertyExport, HasLibraryHeaderAndTemplate) {
  EXPECT_NE(text().find("library (svtox_65nm)"), std::string::npos);
  EXPECT_NE(text().find("lu_table_template (svtox_tmpl)"), std::string::npos);
  EXPECT_NE(text().find("variable_1 : input_net_transition;"), std::string::npos);
  EXPECT_NE(text().find("capacitive_load_unit (1, ff);"), std::string::npos);
}

TEST_F(LibertyExport, EveryVariantBecomesACell) {
  for (const LibCell& cell : lib().cells()) {
    for (const LibCellVariant& variant : cell.variants()) {
      EXPECT_NE(text().find("cell (" + variant.name + ")"), std::string::npos)
          << variant.name;
    }
  }
}

TEST_F(LibertyExport, StateDependentLeakageGroups) {
  // NAND2 has 4 states -> 4 when-conditions per version, including the
  // all-ones and all-zeros corners.
  EXPECT_NE(text().find("when : \"A1&A2\";"), std::string::npos);
  EXPECT_NE(text().find("when : \"!A1&!A2\";"), std::string::npos);
  EXPECT_NE(text().find("when : \"!A1&A2\";"), std::string::npos);
}

TEST_F(LibertyExport, TimingGroupsPerPin) {
  EXPECT_NE(text().find("related_pin : \"A1\";"), std::string::npos);
  EXPECT_NE(text().find("timing_sense : negative_unate;"), std::string::npos);
  EXPECT_NE(text().find("cell_rise (svtox_tmpl)"), std::string::npos);
  EXPECT_NE(text().find("fall_transition (svtox_tmpl)"), std::string::npos);
}

TEST_F(LibertyExport, BracesBalance) {
  int depth = 0;
  for (char c : text()) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(LibertyExport, OutputFunctionPresentForEveryArchetype) {
  for (const LibCell& cell : lib().cells()) {
    EXPECT_NE(text().find("function : \"" + liberty_function(cell.name()) + "\";"),
              std::string::npos)
        << cell.name();
  }
}

}  // namespace
}  // namespace svtox::liberty
