// Tests for the calibrated device leakage model. The quantitative anchors
// come straight from the paper's Section 2.
#include <gtest/gtest.h>

#include "model/leakage.hpp"
#include "model/tech.hpp"
#include "util/error.hpp"

namespace svtox::model {
namespace {

const TechParams& tech() { return TechParams::nominal(); }

TEST(Tech, VtRatiosMatchPaper) {
  // "Isub is reduced by 17.8X (16.7X) when replacing a low-Vt NMOS (PMOS)
  // device with a high-Vt version."
  EXPECT_DOUBLE_EQ(vt_ratio(tech(), DeviceType::kNmos), 17.8);
  EXPECT_DOUBLE_EQ(vt_ratio(tech(), DeviceType::kPmos), 16.7);
}

TEST(Tech, ToxRatioMatchesPaper) {
  // "The difference in Igate for the thick-oxide NMOS devices vs. the
  // thin-oxide device is 11X."
  EXPECT_DOUBLE_EQ(tech().tox_ratio, 11.0);
}

TEST(Tech, ResistanceFactorsAreMultiplicative) {
  const double both = resistance_factor(tech(), VtClass::kHigh, ToxClass::kThick);
  EXPECT_DOUBLE_EQ(both, tech().r_vt_factor * tech().r_tox_factor);
  EXPECT_DOUBLE_EQ(resistance_factor(tech(), VtClass::kLow, ToxClass::kThin), 1.0);
  EXPECT_DOUBLE_EQ(resistance_factor(tech(), VtClass::kHigh, ToxClass::kThin),
                   tech().r_vt_factor);
  EXPECT_DOUBLE_EQ(resistance_factor(tech(), VtClass::kLow, ToxClass::kThick),
                   tech().r_tox_factor);
}

TEST(Tech, AllSlowDeviceNearlyDoublesDelay) {
  // Paper Sec. 6: "a simple replacement of all fast devices with their
  // slowest counterparts would nearly double the total circuit delay."
  const double both = resistance_factor(tech(), VtClass::kHigh, ToxClass::kThick);
  EXPECT_GT(both, 1.6);
  EXPECT_LT(both, 2.1);
}

TEST(Isub, HighVtReductionExactlyCalibrated) {
  const double low = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                             SubthresholdBias::kFullVds, 1);
  const double high = isub_na(tech(), DeviceType::kNmos, VtClass::kHigh, 1.0,
                              SubthresholdBias::kFullVds, 1);
  EXPECT_NEAR(low / high, 17.8, 1e-9);

  const double plow = isub_na(tech(), DeviceType::kPmos, VtClass::kLow, 1.0,
                              SubthresholdBias::kFullVds, 1);
  const double phigh = isub_na(tech(), DeviceType::kPmos, VtClass::kHigh, 1.0,
                               SubthresholdBias::kFullVds, 1);
  EXPECT_NEAR(plow / phigh, 16.7, 1e-9);
}

TEST(Isub, ScalesLinearlyWithWidth) {
  const double w1 = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                            SubthresholdBias::kFullVds, 1);
  const double w3 = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 3.0,
                            SubthresholdBias::kFullVds, 1);
  EXPECT_NEAR(w3, 3.0 * w1, 1e-9);
}

TEST(Isub, StackEffectIsMonotoneAndSuperLinear) {
  double prev = 1e18;
  for (int depth = 1; depth <= 4; ++depth) {
    const double current = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                                   SubthresholdBias::kFullVds, depth);
    EXPECT_LT(current, prev);
    prev = current;
  }
  // Two stacked OFF devices leak well below half of one (super-linear).
  const double one = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                             SubthresholdBias::kFullVds, 1);
  const double two = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                             SubthresholdBias::kFullVds, 2);
  EXPECT_LT(two, 0.5 * one);
}

TEST(Isub, DeepStacksClampToDeepestFactor) {
  const double d4 = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                            SubthresholdBias::kFullVds, 4);
  const double d9 = isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                            SubthresholdBias::kFullVds, 9);
  EXPECT_DOUBLE_EQ(d4, d9);
}

TEST(Isub, CollapsedVdsLeaksResidually) {
  const double full = isub_na(tech(), DeviceType::kPmos, VtClass::kLow, 1.0,
                              SubthresholdBias::kFullVds, 1);
  const double zero = isub_na(tech(), DeviceType::kPmos, VtClass::kLow, 1.0,
                              SubthresholdBias::kZeroVds, 1);
  EXPECT_LT(zero, 0.1 * full);
  EXPECT_GT(zero, 0.0);
}

TEST(Isub, InvalidArgumentsThrow) {
  EXPECT_THROW(isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 0.0,
                       SubthresholdBias::kFullVds, 1),
               ContractError);
  EXPECT_THROW(isub_na(tech(), DeviceType::kNmos, VtClass::kLow, 1.0,
                       SubthresholdBias::kFullVds, 0),
               ContractError);
}

TEST(Igate, ThickOxideReductionExactlyCalibrated) {
  const double thin =
      igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, 1.0, GateBias::kFullChannel);
  const double thick =
      igate_na(tech(), DeviceType::kNmos, ToxClass::kThick, 1.0, GateBias::kFullChannel);
  EXPECT_NEAR(thin / thick, 11.0, 1e-9);
}

TEST(Igate, PmosTunnelingOrderOfMagnitudeBelowNmos) {
  // Paper Sec. 2: "Igate for a PMOS device is typically one order of
  // magnitude smaller than that for an NMOS device" under SiO2.
  const double nmos =
      igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, 1.0, GateBias::kFullChannel);
  const double pmos =
      igate_na(tech(), DeviceType::kPmos, ToxClass::kThin, 1.0, GateBias::kFullChannel);
  EXPECT_NEAR(pmos / nmos, 0.10, 1e-9);
}

TEST(Igate, ReducedChannelIsNegligible) {
  const double full =
      igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, 1.0, GateBias::kFullChannel);
  const double reduced = igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, 1.0,
                                  GateBias::kReducedChannel);
  EXPECT_LT(reduced, 0.05 * full);
}

TEST(Igate, ReverseOverlapTunnelingWellBelowChannel) {
  // Paper Sec. 2: reverse tunneling is restricted to the overlap region and
  // is orders of magnitude below channel tunneling.
  const double full =
      igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, 1.0, GateBias::kFullChannel);
  const double edt = igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, 1.0,
                              GateBias::kReverseOverlap);
  EXPECT_LT(edt, 0.05 * full);
  EXPECT_GT(edt, 0.0);
}

TEST(Igate, NoneBiasIsZero) {
  EXPECT_DOUBLE_EQ(
      igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, 1.0, GateBias::kNone), 0.0);
}

TEST(Igate, InvalidWidthThrows) {
  EXPECT_THROW(
      igate_na(tech(), DeviceType::kNmos, ToxClass::kThin, -1.0, GateBias::kFullChannel),
      ContractError);
}

TEST(LeakageBreakdown, AccumulatesAndReportsFraction) {
  LeakageBreakdown a{.isub_na = 64.0, .igate_na = 36.0};
  LeakageBreakdown b{.isub_na = 1.0, .igate_na = 2.0};
  const LeakageBreakdown sum = a + b;
  EXPECT_DOUBLE_EQ(sum.total_na(), 103.0);
  EXPECT_NEAR(a.igate_fraction(), 0.36, 1e-12);
  EXPECT_DOUBLE_EQ(LeakageBreakdown{}.igate_fraction(), 0.0);
}

}  // namespace
}  // namespace svtox::model

namespace svtox::model {
namespace {

TEST(Temperature, IsubGrowsExponentially) {
  const TechParams& room = TechParams::nominal();
  const TechParams hot = room.at_temperature(273.15 + 110.0);
  // Roughly two orders of magnitude between 27C and 110C.
  const double ratio = hot.isub_n_low / room.isub_n_low;
  EXPECT_GT(ratio, 30.0);
  EXPECT_LT(ratio, 500.0);
}

TEST(Temperature, IgateNearlyAthermal) {
  const TechParams& room = TechParams::nominal();
  const TechParams hot = room.at_temperature(273.15 + 110.0);
  EXPECT_NEAR(hot.igate_n_thin / room.igate_n_thin, 1.0, 0.1);
}

TEST(Temperature, VtRatioCompressesWithHeat) {
  const TechParams& room = TechParams::nominal();
  const TechParams hot = room.at_temperature(360.0);
  EXPECT_LT(hot.vt_ratio_n, room.vt_ratio_n);
  EXPECT_GT(hot.vt_ratio_n, 1.0);
  // And cooling sharpens it.
  const TechParams cold = room.at_temperature(250.0);
  EXPECT_GT(cold.vt_ratio_n, room.vt_ratio_n);
}

TEST(Temperature, RoomTemperatureIsIdentity) {
  const TechParams& room = TechParams::nominal();
  const TechParams same = room.at_temperature(room.temp_kelvin);
  EXPECT_DOUBLE_EQ(same.isub_n_low, room.isub_n_low);
  EXPECT_DOUBLE_EQ(same.vt_ratio_n, room.vt_ratio_n);
  EXPECT_DOUBLE_EQ(same.igate_n_thin, room.igate_n_thin);
}

TEST(Temperature, IgateShareShrinksOnHotDie) {
  // The paper's footnote, in numbers: at operating temperature Isub
  // dominates; in cool standby Igate is a major component.
  const TechParams& room = TechParams::nominal();
  const TechParams hot = room.at_temperature(273.15 + 110.0);
  const double room_share = room.igate_n_thin / (room.igate_n_thin + room.isub_n_low);
  const double hot_share = hot.igate_n_thin / (hot.igate_n_thin + hot.isub_n_low);
  EXPECT_LT(hot_share, 0.3 * room_share);
}

}  // namespace
}  // namespace svtox::model
