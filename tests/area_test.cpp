// Area-model tests, anchored to the paper's Sec. 4 / Table 5 discussion:
// per-transistor Vt control inside a stack costs spacing area; Tox rules
// are more severe; uniform-stack control trades leakage for area.
#include <gtest/gtest.h>

#include "cellkit/area.hpp"
#include "cellkit/variants.hpp"
#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "sim/leakage_eval.hpp"
#include "util/error.hpp"

namespace svtox::cellkit {
namespace {

const model::TechParams& tech() { return model::TechParams::nominal(); }

TEST(Area, UniformAssignmentHasNoBoundaryPenalty) {
  const CellTopology nand3 = make_standard_cell("NAND3", tech());
  const CellAssignment nominal = nominal_assignment(nand3);
  const BoundaryCount count = count_boundaries(nand3, nominal);
  EXPECT_EQ(count.vt, 0);
  EXPECT_EQ(count.tox, 0);
  double width_sum = 0.0;
  for (const Device& dev : nand3.devices()) width_sum += dev.width;
  EXPECT_DOUBLE_EQ(cell_area(nand3, AreaRules{}, nominal), width_sum);
}

TEST(Area, MixedVtInStackCostsSpacing) {
  // NAND2 state-00 min-leak: one NMOS at high-Vt creates one Vt boundary
  // in the 2-stack.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  CellAssignment assign = nominal_assignment(nand2);
  assign[1].vt = model::VtClass::kHigh;
  const BoundaryCount count = count_boundaries(nand2, assign);
  EXPECT_EQ(count.vt, 1);
  EXPECT_EQ(count.tox, 0);
  const AreaRules rules;
  EXPECT_DOUBLE_EQ(cell_area(nand2, rules, assign),
                   cell_area(nand2, rules, nominal_assignment(nand2)) +
                       rules.vt_boundary_area);
}

TEST(Area, ParallelDevicesCarryNoBoundary) {
  // NAND2 PMOS are parallel: mixed Vt there is free in this model.
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  CellAssignment assign = nominal_assignment(nand2);
  assign[2].vt = model::VtClass::kHigh;  // one PMOS only
  EXPECT_EQ(count_boundaries(nand2, assign).vt, 0);
}

TEST(Area, ToxRuleMoreSevereThanVt) {
  const AreaRules rules;
  EXPECT_GT(rules.tox_boundary_area, rules.vt_boundary_area);
}

TEST(Area, UniformStackVersionsNeverLargerThanIndividual) {
  // The paper's Table 5 trade-off: for every cell and state, the uniform-
  // stack min-leak version occupies at most the area of the individual-
  // control version (boundaries are removed, widths unchanged).
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    VariantOptions individual;
    VariantOptions uniform;
    uniform.uniform_stack = true;
    const CellVersionSet vi = generate_versions(topo, tech(), individual);
    const CellVersionSet vu = generate_versions(topo, tech(), uniform);
    const AreaRules rules;
    for (const StateTradeoffs& st : vi.all_tradeoffs()) {
      const auto& a_ind = vi.versions()[st.version_index[3]].assignment;
      const auto& a_uni =
          vu.versions()[vu.tradeoffs(st.canonical_state).version_index[3]].assignment;
      EXPECT_LE(cell_area(topo, rules, a_uni), cell_area(topo, rules, a_ind) + 1e-12)
          << name << " state " << st.canonical_state;
    }
  }
}

TEST(Area, NestedSeriesChainsCounted) {
  // AOI21 pull-down: series(a,b) -- one potential boundary; c is parallel.
  const CellTopology aoi = make_standard_cell("AOI21", tech());
  CellAssignment assign = nominal_assignment(aoi);
  assign[0].vt = model::VtClass::kHigh;  // NMOS a
  EXPECT_EQ(count_boundaries(aoi, assign).vt, 1);
  assign[1].vt = model::VtClass::kHigh;  // NMOS b too -> uniform again
  EXPECT_EQ(count_boundaries(aoi, assign).vt, 0);
}

TEST(Area, AssignmentSizeMismatchThrows) {
  const CellTopology inv = make_standard_cell("INV", tech());
  EXPECT_THROW(count_boundaries(inv, CellAssignment{}), ContractError);
}

TEST(Area, LibraryVariantsCarryArea) {
  const liberty::Library lib = liberty::Library::build(tech(), {});
  for (const auto& cell : lib.cells()) {
    for (const auto& variant : cell.variants()) {
      EXPECT_GT(variant.area, 0.0) << variant.name;
    }
  }
}

TEST(Area, CircuitAreaGrowsWithMixedAssignments) {
  const liberty::Library lib = liberty::Library::build(tech(), {});
  const auto circuit = netlist::random_circuit(lib, "area_r", 10, 80, 4);
  const double fast_area = sim::circuit_area(circuit, sim::fastest_config(circuit));
  EXPECT_GT(fast_area, 0.0);

  const opt::AssignmentProblem problem(circuit, 0.25);
  const auto sol = opt::heuristic1(problem);
  const double opt_area = sim::circuit_area(circuit, sol.config);
  EXPECT_GE(opt_area, fast_area);            // spacing penalties only add
  EXPECT_LT(opt_area, 1.25 * fast_area);     // and stay a mild overhead
}

TEST(Area, UniformLibraryReducesCircuitAreaOverhead) {
  // The full Table 5 trade-off at circuit level: uniform-stack solutions
  // leak slightly more (tested elsewhere) but cost less area overhead.
  liberty::LibraryOptions uniform_options;
  uniform_options.variant_options.uniform_stack = true;
  const liberty::Library individual = liberty::Library::build(tech(), {});
  const liberty::Library uniform = liberty::Library::build(tech(), uniform_options);

  const auto circuit = netlist::random_circuit(individual, "area_u", 12, 120, 8);
  const auto uniform_circuit = netlist::rebind(circuit, uniform);

  const opt::AssignmentProblem pi(circuit, 0.25);
  const opt::AssignmentProblem pu(uniform_circuit, 0.25);
  const auto si = opt::heuristic1(pi);
  const auto su = opt::heuristic1(pu);

  const double base = sim::circuit_area(circuit, sim::fastest_config(circuit));
  const double overhead_i = sim::circuit_area(circuit, si.config) - base;
  const double overhead_u = sim::circuit_area(uniform_circuit, su.config) - base;
  EXPECT_LE(overhead_u, overhead_i + 1e-9);
}

}  // namespace
}  // namespace svtox::cellkit
