// Generator tests: structural statistics plus *functional* correctness of
// the structure-true generators (adder, multiplier, ALU), verified against
// golden arithmetic through logic simulation.
#include <gtest/gtest.h>

#include <cstdint>

#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "sim/sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::netlist {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

// --- Random circuits ----------------------------------------------------

TEST(RandomCircuit, ExactInputAndGateCounts) {
  const Netlist n = random_circuit(lib(), "r1", 24, 150, 7);
  EXPECT_EQ(n.num_inputs(), 24);
  EXPECT_EQ(n.num_gates(), 150);
  EXPECT_GT(n.num_outputs(), 0);
}

TEST(RandomCircuit, DeterministicInSeed) {
  const Netlist a = random_circuit(lib(), "r", 16, 80, 42);
  const Netlist b = random_circuit(lib(), "r", 16, 80, 42);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (int g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(g).cell_index, b.gate(g).cell_index);
    EXPECT_EQ(a.gate(g).fanins, b.gate(g).fanins);
  }
}

TEST(RandomCircuit, DifferentSeedsDiffer) {
  const Netlist a = random_circuit(lib(), "r", 16, 80, 1);
  const Netlist b = random_circuit(lib(), "r", 16, 80, 2);
  bool any_different = false;
  for (int g = 0; g < a.num_gates() && !any_different; ++g) {
    any_different = a.gate(g).cell_index != b.gate(g).cell_index ||
                    a.gate(g).fanins != b.gate(g).fanins;
  }
  EXPECT_TRUE(any_different);
}

TEST(RandomCircuit, EveryPrimaryInputIsUsed) {
  const Netlist n = random_circuit(lib(), "r", 40, 120, 9);
  for (int s : n.primary_inputs()) {
    EXPECT_FALSE(n.sinks(s).empty()) << "unused input " << n.signal_name(s);
  }
}

TEST(RandomCircuit, HasRealisticDepth) {
  const Netlist n = random_circuit(lib(), "r", 36, 400, 11);
  EXPECT_GE(n.depth(), 8);
  EXPECT_LE(n.depth(), 200);
}

// --- Ripple-carry adder --------------------------------------------------

class AdderFunctional : public ::testing::TestWithParam<int> {};

TEST_P(AdderFunctional, MatchesGoldenAddition) {
  const int bits = GetParam();
  const Netlist n = ripple_carry_adder(lib(), bits);
  ASSERT_EQ(n.num_inputs(), 2 * bits + 1);
  ASSERT_EQ(n.num_outputs(), bits + 1);

  Rng rng(1234 + static_cast<std::uint64_t>(bits));
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t a = rng.next_u64() & ((1ULL << bits) - 1);
    const std::uint64_t b = rng.next_u64() & ((1ULL << bits) - 1);
    const bool cin = rng.next_bool();
    std::vector<bool> in;
    for (int i = 0; i < bits; ++i) in.push_back((a >> i) & 1);
    for (int i = 0; i < bits; ++i) in.push_back((b >> i) & 1);
    in.push_back(cin);

    const auto values = sim::simulate(n, in);
    std::uint64_t result = 0;
    for (int i = 0; i <= bits; ++i) {
      if (values[static_cast<std::size_t>(n.primary_outputs()[i])]) result |= 1ULL << i;
    }
    EXPECT_EQ(result, a + b + (cin ? 1 : 0)) << bits << "-bit a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderFunctional, ::testing::Values(1, 2, 4, 8, 16, 32));

// --- Array multiplier -----------------------------------------------------

TEST(Multiplier, FourBitExhaustive) {
  const Netlist n = array_multiplier(lib(), 4);
  ASSERT_EQ(n.num_inputs(), 8);
  ASSERT_EQ(n.num_outputs(), 8);
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 0; b < 16; ++b) {
      std::vector<bool> in;
      for (int i = 0; i < 4; ++i) in.push_back((a >> i) & 1);
      for (int i = 0; i < 4; ++i) in.push_back((b >> i) & 1);
      const auto values = sim::simulate(n, in);
      std::uint32_t product = 0;
      for (int i = 0; i < 8; ++i) {
        if (values[static_cast<std::size_t>(n.primary_outputs()[i])]) product |= 1u << i;
      }
      EXPECT_EQ(product, a * b) << a << " * " << b;
    }
  }
}

TEST(Multiplier, EightBitRandomSpotChecks) {
  const Netlist n = array_multiplier(lib(), 8);
  Rng rng(88);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(256));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(256));
    std::vector<bool> in;
    for (int i = 0; i < 8; ++i) in.push_back((a >> i) & 1);
    for (int i = 0; i < 8; ++i) in.push_back((b >> i) & 1);
    const auto values = sim::simulate(n, in);
    std::uint32_t product = 0;
    for (int i = 0; i < 16; ++i) {
      if (values[static_cast<std::size_t>(n.primary_outputs()[i])]) product |= 1u << i;
    }
    EXPECT_EQ(product, a * b) << a << " * " << b;
  }
}

TEST(Multiplier, SixteenBitMatchesC6288Statistics) {
  const Netlist n = array_multiplier(lib(), 16);
  EXPECT_EQ(n.num_inputs(), 32);  // paper Table 4 row c6288
  EXPECT_EQ(n.num_outputs(), 32);
  // Gate count in the same regime as the original (2470).
  EXPECT_GT(n.num_gates(), 1800);
  EXPECT_LT(n.num_gates(), 3600);
}

// --- 64-bit ALU ------------------------------------------------------------

class AluFunctional : public ::testing::TestWithParam<int> {};

TEST_P(AluFunctional, MatchesGoldenOperation) {
  const int op = GetParam();  // 0=AND 1=OR 2=XOR 3=ADD
  const Netlist n = alu64(lib());
  ASSERT_EQ(n.num_inputs(), 131);  // paper Table 4 row alu64

  Rng rng(640 + static_cast<std::uint64_t>(op));
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    const bool cin = rng.next_bool();
    std::vector<bool> in;
    for (int i = 0; i < 64; ++i) in.push_back((a >> i) & 1);
    for (int i = 0; i < 64; ++i) in.push_back((b >> i) & 1);
    in.push_back(op & 1);         // sel0
    in.push_back((op >> 1) & 1);  // sel1
    in.push_back(cin);

    std::uint64_t expected = 0;
    switch (op) {
      case 0: expected = a & b; break;
      case 1: expected = a | b; break;
      case 2: expected = a ^ b; break;
      case 3: expected = a + b + (cin ? 1 : 0); break;
    }

    const auto values = sim::simulate(n, in);
    std::uint64_t result = 0;
    for (int i = 0; i < 64; ++i) {
      if (values[static_cast<std::size_t>(n.primary_outputs()[i])]) result |= 1ULL << i;
    }
    EXPECT_EQ(result, expected) << "op " << op << " a=" << a << " b=" << b;
  }
}

std::string alu_op_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"AND", "OR", "XOR", "ADD"};
  return kNames[info.param];
}
INSTANTIATE_TEST_SUITE_P(Ops, AluFunctional, ::testing::Values(0, 1, 2, 3), alu_op_name);

TEST(Alu, GateCountNearPaperRow) {
  const Netlist n = alu64(lib());
  EXPECT_GT(n.num_gates(), 1300);
  EXPECT_LT(n.num_gates(), 2400);
}

// --- Parity checker ---------------------------------------------------------

TEST(Parity, InputCountMatchesC499) {
  const Netlist n = parity_checker(lib(), 32, 8);
  EXPECT_EQ(n.num_inputs(), 41);  // paper Table 4 row c499
  EXPECT_EQ(n.num_outputs(), 8);
}

TEST(Parity, SyndromeIsParityOfMembersWhenEnabled) {
  const Netlist n = parity_checker(lib(), 8, 3);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
    in.back() = true;  // enable
    const auto values = sim::simulate(n, in);
    for (int j = 0; j < 3; ++j) {
      bool expected = in[static_cast<std::size_t>(8 + j)];  // check bit j
      for (int i = 0; i < 8; ++i) {
        if (((i + 1) >> (j % 8)) & 1) expected = expected != in[static_cast<std::size_t>(i)];
      }
      EXPECT_EQ(values[static_cast<std::size_t>(n.primary_outputs()[j])], expected);
    }
  }
}

TEST(Parity, DisabledOutputsAreZero) {
  const Netlist n = parity_checker(lib(), 8, 3);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()), true);
  in.back() = false;  // enable off
  const auto values = sim::simulate(n, in);
  for (int s : n.primary_outputs()) {
    EXPECT_FALSE(values[static_cast<std::size_t>(s)]);
  }
}

// --- Benchmark suite ----------------------------------------------------------

TEST(BenchmarkSuite, HasAllElevenCircuits) {
  EXPECT_EQ(benchmark_suite().size(), 11u);
}

class SuiteStats : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteStats, InputCountsMatchPaperTable4) {
  const std::string name = GetParam();
  const BenchmarkSpec& spec = benchmark_spec(name);
  const Netlist n = make_benchmark(name, lib());
  EXPECT_EQ(n.num_inputs(), spec.paper.inputs) << name;
  // Random stand-ins match the gate count exactly; structure-true ones are
  // within a factor reflecting the naive mapping.
  if (name != "c6288" && name != "alu64" && name != "c499") {
    EXPECT_EQ(n.num_gates(), spec.paper.gates) << name;
  } else {
    EXPECT_GT(n.num_gates(), spec.paper.gates / 2) << name;
    EXPECT_LT(n.num_gates(), spec.paper.gates * 2) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, SuiteStats,
                         ::testing::Values("c432", "c499", "c880", "c1355", "c1908",
                                           "c2670", "c3540", "c5315", "c6288", "c7552",
                                           "alu64"),
                         [](const auto& info) { return info.param; });

TEST(BenchmarkSuite, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("c9999", lib()), ContractError);
  EXPECT_THROW(benchmark_spec("c9999"), ContractError);
}

}  // namespace
}  // namespace svtox::netlist
