#include <gtest/gtest.h>

#include "cellkit/analyzer.hpp"
#include "liberty/library.hpp"
#include "liberty/nldm.hpp"
#include "liberty/serialize.hpp"
#include "util/error.hpp"

namespace svtox::liberty {
namespace {

const model::TechParams& tech() { return model::TechParams::nominal(); }

TEST(Nldm, ExactOnGridPoints) {
  NldmTable t({10, 20}, {1, 2, 4}, {1, 2, 3, 10, 20, 30});
  EXPECT_DOUBLE_EQ(t.lookup(10, 1), 1);
  EXPECT_DOUBLE_EQ(t.lookup(10, 4), 3);
  EXPECT_DOUBLE_EQ(t.lookup(20, 2), 20);
}

TEST(Nldm, BilinearInterpolationInside) {
  NldmTable t({0, 10}, {0, 10}, {0, 10, 10, 20});
  // Value = slew + load on this grid.
  EXPECT_NEAR(t.lookup(5, 5), 10.0, 1e-12);
  EXPECT_NEAR(t.lookup(2.5, 7.5), 10.0, 1e-12);
}

TEST(Nldm, LinearExtrapolationBeyondGrid) {
  NldmTable t({0, 10}, {0, 10}, {0, 10, 10, 20});
  // Beyond the last load point the outer segment extends linearly.
  EXPECT_NEAR(t.lookup(0, 20), 20.0, 1e-12);
  EXPECT_NEAR(t.lookup(20, 0), 20.0, 1e-12);
  EXPECT_NEAR(t.lookup(-10, 0), -10.0, 1e-12);
}

TEST(Nldm, SingleRowAndColumnTables) {
  NldmTable row({5}, {1, 2}, {10, 20});
  EXPECT_NEAR(row.lookup(99, 1.5), 15.0, 1e-12);
  NldmTable col({1, 2}, {5}, {10, 20});
  EXPECT_NEAR(col.lookup(1.5, 99), 15.0, 1e-12);
  NldmTable point({1}, {1}, {7});
  EXPECT_DOUBLE_EQ(point.lookup(123, 456), 7.0);
}

TEST(Nldm, ScaledMultipliesValues) {
  NldmTable t({0, 10}, {0, 10}, {1, 2, 3, 4});
  const NldmTable s = t.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.lookup(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.lookup(10, 10), 8.0);
}

TEST(Nldm, InvalidConstructionThrows) {
  EXPECT_THROW(NldmTable({}, {1}, {}), ContractError);
  EXPECT_THROW(NldmTable({2, 1}, {1}, {1, 2}), ContractError);
  EXPECT_THROW(NldmTable({1, 2}, {1}, {1}), ContractError);
  EXPECT_THROW(NldmTable().lookup(1, 1), ContractError);
}

class LibraryTest : public ::testing::Test {
 protected:
  Library lib_ = Library::build(tech(), LibraryOptions{});
};

TEST_F(LibraryTest, AllStandardCellsPresent) {
  for (const std::string& name : cellkit::standard_cell_names()) {
    EXPECT_TRUE(lib_.has_cell(name));
    EXPECT_EQ(lib_.cell(name).name(), name);
  }
  EXPECT_FALSE(lib_.has_cell("XOR2"));
  EXPECT_THROW(lib_.cell("XOR2"), ContractError);
}

TEST_F(LibraryTest, VariantLeakageMatchesDirectEvaluation) {
  // The library tables must agree with the transistor-level analyzer --
  // they are its cached image.
  for (const LibCell& cell : lib_.cells()) {
    for (const LibCellVariant& variant : cell.variants()) {
      for (std::uint32_t state = 0; state < cell.topology().num_states(); ++state) {
        const double direct =
            cellkit::cell_leakage(cell.topology(), tech(), state, variant.assignment)
                .total_na();
        EXPECT_NEAR(variant.leakage_na[state], direct, 1e-9)
            << cell.name() << " " << variant.name << " state " << state;
      }
    }
  }
}

TEST_F(LibraryTest, SlowVariantsHaveSlowerTables) {
  // Every non-fastest variant's delay table dominates the fastest one for
  // the pins its assignment touches.
  for (const LibCell& cell : lib_.cells()) {
    const LibCellVariant& fast = cell.variant(cell.fastest_variant());
    for (const LibCellVariant& variant : cell.variants()) {
      for (int pin = 0; pin < cell.num_inputs(); ++pin) {
        for (double slew : {10.0, 50.0}) {
          for (double load : {2.0, 20.0}) {
            EXPECT_GE(variant.pins[pin].delay_rise.lookup(slew, load),
                      fast.pins[pin].delay_rise.lookup(slew, load) - 1e-9)
                << cell.name() << " " << variant.name;
            EXPECT_GE(variant.pins[pin].delay_fall.lookup(slew, load),
                      fast.pins[pin].delay_fall.lookup(slew, load) - 1e-9);
          }
        }
      }
    }
  }
}

TEST_F(LibraryTest, MinLeakVariantReducesLeakageSubstantially) {
  // Library-level restatement of the paper's headline: at every canonical
  // state the min-leak version cuts leakage by a large factor at the
  // high-leakage states.
  const LibCell& nand2 = lib_.cell("NAND2");
  const auto& st = nand2.tradeoffs(0b11);
  const double fast = nand2.leakage_na(nand2.fastest_variant(), 0b11);
  const double slow = nand2.leakage_na(st.version_index[3], 0b11);
  EXPECT_GT(fast / slow, 8.0);
}

TEST_F(LibraryTest, TotalVersionsSumsCells) {
  int sum = 0;
  for (const LibCell& cell : lib_.cells()) sum += cell.num_variants();
  EXPECT_EQ(lib_.total_versions(), sum);
  EXPECT_GT(sum, 30);
}

TEST_F(LibraryTest, SubsetLibraryBuild) {
  LibraryOptions options;
  options.cell_names = {"INV", "NAND2"};
  const Library small = Library::build(tech(), options);
  EXPECT_EQ(small.cells().size(), 2u);
  EXPECT_TRUE(small.has_cell("INV"));
  EXPECT_FALSE(small.has_cell("NOR2"));
}

TEST_F(LibraryTest, VtOnlyLibraryLeakssMoreAtTunnelingStates) {
  LibraryOptions options;
  options.variant_options.vt_only = true;
  const Library vt = Library::build(tech(), options);
  // At NAND2 state 11 the min-leak version cannot touch Igate without
  // thick oxide, so its floor is higher than the dual-Tox library's.
  const LibCell& full_cell = lib_.cell("NAND2");
  const LibCell& vt_cell = vt.cell("NAND2");
  const double full_floor =
      full_cell.leakage_na(full_cell.tradeoffs(0b11).version_index[3], 0b11);
  const double vt_floor =
      vt_cell.leakage_na(vt_cell.tradeoffs(0b11).version_index[3], 0b11);
  EXPECT_GT(vt_floor, 2.0 * full_floor);
}

TEST_F(LibraryTest, SerializationRoundTripsExactly) {
  const std::string text = write_library(lib_);
  const Library back = read_library(text, tech());
  ASSERT_EQ(back.cells().size(), lib_.cells().size());
  for (std::size_t c = 0; c < lib_.cells().size(); ++c) {
    const LibCell& a = lib_.cell_at(static_cast<int>(c));
    const LibCell& b = back.cell_at(static_cast<int>(c));
    ASSERT_EQ(a.num_variants(), b.num_variants()) << a.name();
    for (int v = 0; v < a.num_variants(); ++v) {
      EXPECT_EQ(a.variant(v).name, b.variant(v).name);
      EXPECT_EQ(a.variant(v).assignment, b.variant(v).assignment);
      for (std::size_t s = 0; s < a.variant(v).leakage_na.size(); ++s) {
        EXPECT_NEAR(a.variant(v).leakage_na[s], b.variant(v).leakage_na[s], 1e-5);
      }
      for (int pin = 0; pin < a.num_inputs(); ++pin) {
        EXPECT_NEAR(a.variant(v).pins[pin].delay_rise.lookup(20, 5),
                    b.variant(v).pins[pin].delay_rise.lookup(20, 5), 1e-4);
        EXPECT_NEAR(a.variant(v).pins[pin].slew_fall.lookup(20, 5),
                    b.variant(v).pins[pin].slew_fall.lookup(20, 5), 1e-4);
      }
    }
  }
}

TEST_F(LibraryTest, SerializationRejectsGarbage) {
  EXPECT_THROW(read_library("not a library", tech()), ParseError);
  EXPECT_THROW(read_library("svtox_library v1\nbogus", tech()), ParseError);
}

TEST_F(LibraryTest, RoundTripPreservesOptions) {
  LibraryOptions options;
  options.variant_options.four_point = false;
  options.variant_options.uniform_stack = true;
  const Library two = Library::build(tech(), options);
  const Library back = read_library(write_library(two), tech());
  EXPECT_FALSE(back.options().variant_options.four_point);
  EXPECT_TRUE(back.options().variant_options.uniform_stack);
  EXPECT_EQ(back.total_versions(), two.total_versions());
}

}  // namespace
}  // namespace svtox::liberty
