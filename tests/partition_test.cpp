// Partitioner + hierarchical flow: coverage/ordering invariants, canonical
// cone text round trips, structural cone dedup, and an end-to-end
// optimize_hierarchical run whose stitched result must respect the global
// delay constraint (full-STA verified inside the flow, re-checked here).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "netlist/bench_io.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "opt/partition.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/sim.hpp"
#include "sta/sta.hpp"
#include "svc/hier.hpp"

namespace svtox {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

TEST(Partition, InvariantsHoldAcrossCircuitsAndBudgets) {
  for (const char* name : {"c432", "c880", "c6288"}) {
    const netlist::Netlist n = netlist::make_benchmark(name, lib());
    for (int max_gates : {50, 400, 100000}) {
      SCOPED_TRACE(std::string(name) + " max_gates=" + std::to_string(max_gates));
      opt::PartitionOptions options;
      options.max_gates = max_gates;
      const std::vector<opt::Partition> parts = opt::partition_netlist(n, options);
      ASSERT_FALSE(parts.empty());
      // check_partitions asserts exactly-once gate coverage, interface
      // consistency, and topological partition order.
      opt::check_partitions(n, parts);
      for (const opt::Partition& part : parts) {
        EXPECT_LE(static_cast<int>(part.gates.size()), max_gates);
        EXPECT_FALSE(part.outputs.empty());
      }
    }
  }
}

TEST(Partition, BudgetCoveringCircuitYieldsOnePartitionPerComponent) {
  // c6288's stand-in (array multiplier) is one weakly-connected component:
  // with the budget covering the whole circuit the partitioner must not
  // cut at all, and the single partition's boundary is exactly the
  // control-point set.
  const netlist::Netlist n = netlist::make_benchmark("c6288", lib());
  opt::PartitionOptions options;
  options.max_gates = n.num_gates();
  const std::vector<opt::Partition> parts = opt::partition_netlist(n, options);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(static_cast<int>(parts[0].gates.size()), n.num_gates());
  EXPECT_EQ(static_cast<int>(parts[0].boundary_inputs.size()), n.num_control_points());
}

TEST(Partition, CanonicalTextRoundTripsGateExact) {
  const netlist::Netlist n = netlist::make_benchmark("c6288", lib());
  opt::PartitionOptions options;
  options.max_gates = 300;
  const std::vector<opt::Partition> parts = opt::partition_netlist(n, options);
  ASSERT_GT(parts.size(), 1u);
  for (const opt::Partition& part : parts) {
    const std::string text = opt::canonical_bench_text(n, part);
    const netlist::Netlist cone =
        netlist::read_bench(text, "cone", n.library(), "cone");
    // Positional contract: cone gate k is global gate part.gates[k] with
    // the same cell and pin arity, cone PI j is boundary input j.
    ASSERT_EQ(cone.num_gates(), static_cast<int>(part.gates.size()));
    ASSERT_EQ(cone.num_control_points(), static_cast<int>(part.boundary_inputs.size()));
    for (std::size_t k = 0; k < part.gates.size(); ++k) {
      const netlist::Gate& global = n.gate(part.gates[k]);
      const netlist::Gate& local = cone.gate(static_cast<int>(k));
      ASSERT_EQ(cone.cell_of(static_cast<int>(k)).name(),
                n.cell_of(part.gates[k]).name());
      ASSERT_EQ(local.fanins.size(), global.fanins.size());
    }
  }
}

TEST(Partition, StructurallyIdenticalComponentsGiveIdenticalText) {
  // Two copies of the same sub-circuit, built side by side in one netlist:
  // disjoint components with identical structure must serialize to
  // byte-identical canonical text (that is what makes the solution cache
  // dedup them to a single solve).
  netlist::Netlist n("twin", &lib());
  const int nand2 = lib().cell_index("NAND2");
  for (int copy = 0; copy < 2; ++copy) {
    const std::string p = "u" + std::to_string(copy) + "_";
    const int a = n.add_signal(p + "a");
    const int b = n.add_signal(p + "b");
    const int c = n.add_signal(p + "c");
    const int x = n.add_signal(p + "x");
    const int y = n.add_signal(p + "y");
    n.mark_input(a);
    n.mark_input(b);
    n.mark_input(c);
    n.add_gate(p + "g0", nand2, {a, b}, x);
    n.add_gate(p + "g1", nand2, {x, c}, y);
    n.mark_output(y);
  }
  n.finalize();
  opt::PartitionOptions options;
  options.max_gates = 2;
  const std::vector<opt::Partition> parts = opt::partition_netlist(n, options);
  ASSERT_EQ(parts.size(), 2u);
  opt::check_partitions(n, parts);
  EXPECT_EQ(opt::canonical_bench_text(n, parts[0]),
            opt::canonical_bench_text(n, parts[1]));
}

TEST(Partition, AoiOaiCellsRoundTripThroughBench) {
  // The canonical cone text leans on the AOI/OAI .bench extension; make
  // sure write/read is gate-exact for a netlist that uses them.
  netlist::Netlist n("aoi", &lib());
  const int aoi21 = lib().cell_index("AOI21");
  const int oai22 = lib().cell_index("OAI22");
  std::vector<int> in;
  for (int i = 0; i < 4; ++i) {
    in.push_back(n.add_signal("i" + std::to_string(i)));
    n.mark_input(in.back());
  }
  const int x = n.add_signal("x");
  const int y = n.add_signal("y");
  n.add_gate("g0", aoi21, {in[0], in[1], in[2]}, x);
  n.add_gate("g1", oai22, {x, in[1], in[2], in[3]}, y);
  n.mark_output(y);
  n.finalize();

  const std::string text = netlist::write_bench(n);
  const netlist::Netlist back = netlist::read_bench(text, "aoi", lib(), "aoi");
  ASSERT_EQ(back.num_gates(), n.num_gates());
  for (int g = 0; g < n.num_gates(); ++g) {
    EXPECT_EQ(back.gate(g).cell_index, n.gate(g).cell_index) << "gate " << g;
    EXPECT_EQ(back.gate(g).fanins.size(), n.gate(g).fanins.size()) << "gate " << g;
  }
}

TEST(Hierarchical, MeetsGlobalConstraintEndToEnd) {
  const netlist::Netlist n = netlist::make_benchmark("c432", lib());
  svc::HierOptions options;
  options.partition.max_gates = 50;
  options.workers = 2;
  options.random_vectors = 16;
  const svc::HierResult hr = svc::optimize_hierarchical(n, options);

  EXPECT_GT(hr.partitions, 1);
  EXPECT_GT(hr.unique_solves, 0u);
  ASSERT_EQ(hr.solution.sleep_vector.size(),
            static_cast<std::size_t>(n.num_control_points()));
  ASSERT_EQ(hr.solution.config.size(), static_cast<std::size_t>(n.num_gates()));

  // The flow's promise: the stitched assignment respects the *global*
  // delay constraint. Re-verify with an independent STA.
  EXPECT_LE(hr.solution.delay_ps, hr.constraint_ps);
  sta::TimingState timing(n);
  sim::CircuitConfig config = hr.solution.config;
  EXPECT_NEAR(timing.analyze(config), hr.solution.delay_ps, 1e-9);

  // Leakage is the exact table evaluation of the stitched sleep vector.
  const std::vector<bool> values = sim::simulate(n, hr.solution.sleep_vector);
  EXPECT_NEAR(
      sim::circuit_leakage_from_values_na(n, hr.solution.config, values),
      hr.solution.leakage_na, 1e-6);
  EXPECT_GT(hr.solution.leakage_na, 0.0);

  // And it should beat the do-nothing baseline: all-fast config under the
  // same sleep vector.
  const sim::CircuitConfig all_fast = sim::fastest_config(n);
  EXPECT_LT(hr.solution.leakage_na,
            sim::circuit_leakage_from_values_na(n, all_fast, values));
}

TEST(Hierarchical, DedupsIdenticalConesToOneSolve) {
  // Twin-component netlist from above, at partition budget 2: both cones
  // serialize identically, so the scheduler executes one solve and serves
  // the other from the cache (memory hit or inflight wait).
  netlist::Netlist n("twin", &lib());
  const int nand2 = lib().cell_index("NAND2");
  for (int copy = 0; copy < 2; ++copy) {
    const std::string p = "u" + std::to_string(copy) + "_";
    const int a = n.add_signal(p + "a");
    const int b = n.add_signal(p + "b");
    const int x = n.add_signal(p + "x");
    n.mark_input(a);
    n.mark_input(b);
    n.add_gate(p + "g0", nand2, {a, b}, x);
    n.mark_output(x);
  }
  n.finalize();

  svc::HierOptions options;
  options.partition.max_gates = 1;
  options.workers = 1;  // serialize so the second job is a clean cache hit
  options.random_vectors = 4;

  // Legacy context-free flow: the two cone jobs are byte-identical, so the
  // cache collapses them to a single solve.
  options.pin_boundaries = false;
  options.seed_boundary_timing = false;
  options.refine_passes = 0;
  const svc::HierResult legacy = svc::optimize_hierarchical(n, options);
  EXPECT_EQ(legacy.partitions, 2);
  EXPECT_EQ(legacy.unique_solves, 1u);
  EXPECT_EQ(legacy.cache_hits, 1u);
  EXPECT_LE(legacy.solution.delay_ps, legacy.constraint_ps);

  // Boundary-aware default flow: both twins sit at level 0 so the sweep
  // jobs keep the historical context-free key (1 solve + 1 hit), and the
  // refine pass re-submits both under identical pinned/seeded context
  // (one more solve + hit). Dedup must survive the context-keyed cache.
  options.pin_boundaries = true;
  options.seed_boundary_timing = true;
  options.refine_passes = 2;
  const svc::HierResult hr = svc::optimize_hierarchical(n, options);
  EXPECT_EQ(hr.partitions, 2);
  EXPECT_EQ(hr.unique_solves, 2u);
  EXPECT_EQ(hr.cache_hits, 2u);
  EXPECT_LE(hr.solution.delay_ps, hr.constraint_ps);
}

TEST(Hierarchical, RandomDagUnderPartitionMatchesConstraint) {
  netlist::DagOptions dag;
  dag.num_inputs = 24;
  dag.num_gates = 600;
  dag.target_depth = 12;
  dag.seed = 11;
  const netlist::Netlist n = netlist::random_dag(lib(), "hd", dag);
  svc::HierOptions options;
  options.partition.max_gates = 100;
  options.workers = 2;
  options.random_vectors = 8;
  const svc::HierResult hr = svc::optimize_hierarchical(n, options);
  EXPECT_GT(hr.partitions, 1);
  EXPECT_LE(hr.solution.delay_ps, hr.constraint_ps);
}

}  // namespace
}  // namespace svtox
