#include <gtest/gtest.h>

#include "cellkit/sp_network.hpp"
#include "cellkit/state.hpp"
#include "cellkit/topology.hpp"
#include "util/error.hpp"

namespace svtox::cellkit {
namespace {

const model::TechParams& tech() { return model::TechParams::nominal(); }

TEST(SpNetwork, DeviceCountAndPins) {
  SpNode nand3_pdn =
      SpNode::series({SpNode::device(0), SpNode::device(1), SpNode::device(2)});
  EXPECT_EQ(device_count(nand3_pdn), 3);
  std::vector<int> pins;
  collect_pins(nand3_pdn, pins);
  EXPECT_EQ(pins, (std::vector<int>{0, 1, 2}));
}

TEST(SpNetwork, SingleChildCollapses) {
  SpNode s = SpNode::series({SpNode::device(3)});
  EXPECT_TRUE(s.is_device());
  EXPECT_EQ(s.pin, 3);
}

TEST(SpNetwork, EmptyChildListThrows) {
  EXPECT_THROW(SpNode::series({}), ContractError);
  EXPECT_THROW(SpNode::parallel({}), ContractError);
}

TEST(SpNetwork, LongestPath) {
  // AOI21 pull-down: (a series b) parallel c.
  SpNode pdn = SpNode::parallel(
      {SpNode::series({SpNode::device(0), SpNode::device(1)}), SpNode::device(2)});
  EXPECT_EQ(longest_path(pdn), 2);
  EXPECT_EQ(longest_path_through(pdn, 0), 2);  // a
  EXPECT_EQ(longest_path_through(pdn, 1), 2);  // b
  EXPECT_EQ(longest_path_through(pdn, 2), 1);  // c
  EXPECT_THROW(longest_path_through(pdn, 3), ContractError);
}

TEST(SpNetwork, ConductsSeriesParallel) {
  SpNode pdn = SpNode::parallel(
      {SpNode::series({SpNode::device(0), SpNode::device(1)}), SpNode::device(2)});
  EXPECT_TRUE(conducts(pdn, {true, true, false}));
  EXPECT_TRUE(conducts(pdn, {false, false, true}));
  EXPECT_FALSE(conducts(pdn, {true, false, false}));
  EXPECT_FALSE(conducts(pdn, {false, true, false}));
}

TEST(Topology, TruthTables) {
  const CellTopology inv = make_standard_cell("INV", tech());
  EXPECT_TRUE(inv.output(0b0));
  EXPECT_FALSE(inv.output(0b1));

  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  EXPECT_TRUE(nand2.output(0b00));
  EXPECT_TRUE(nand2.output(0b01));
  EXPECT_TRUE(nand2.output(0b10));
  EXPECT_FALSE(nand2.output(0b11));

  const CellTopology nor2 = make_standard_cell("NOR2", tech());
  EXPECT_TRUE(nor2.output(0b00));
  EXPECT_FALSE(nor2.output(0b01));
  EXPECT_FALSE(nor2.output(0b10));
  EXPECT_FALSE(nor2.output(0b11));
}

TEST(Topology, Aoi21TruthTable) {
  // out = !(A*B + C); pins 0=A, 1=B, 2=C.
  const CellTopology aoi = make_standard_cell("AOI21", tech());
  for (std::uint32_t s = 0; s < 8; ++s) {
    const bool a = s & 1, b = s & 2, c = s & 4;
    EXPECT_EQ(aoi.output(s), !((a && b) || c)) << "state " << s;
  }
}

TEST(Topology, Oai21TruthTable) {
  // out = !((A+B) * C).
  const CellTopology oai = make_standard_cell("OAI21", tech());
  for (std::uint32_t s = 0; s < 8; ++s) {
    const bool a = s & 1, b = s & 2, c = s & 4;
    EXPECT_EQ(oai.output(s), !((a || b) && c)) << "state " << s;
  }
}

TEST(Topology, DeviceCountsAndOrdering) {
  const CellTopology nand3 = make_standard_cell("NAND3", tech());
  EXPECT_EQ(nand3.num_devices(), 6);
  EXPECT_EQ(nand3.num_pull_down_devices(), 3);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(nand3.devices()[d].type, model::DeviceType::kNmos);
  }
  for (int d = 3; d < 6; ++d) {
    EXPECT_EQ(nand3.devices()[d].type, model::DeviceType::kPmos);
  }
}

TEST(Topology, StackUpsizing) {
  // NAND3: series NMOS on a 3-deep path are partially up-sized; parallel
  // PMOS carry the mobility factor only.
  const CellTopology nand3 = make_standard_cell("NAND3", tech());
  const double expected_n = 1.0 + tech().stack_upsize_slope * 2.0;
  for (int d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(nand3.devices()[d].width, expected_n);
  for (int d = 3; d < 6; ++d) {
    EXPECT_DOUBLE_EQ(nand3.devices()[d].width, tech().pmos_r_mult);
  }
}

TEST(Topology, DeviceOnFollowsPolarity) {
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  // NMOS conduct on 1, PMOS on 0.
  EXPECT_TRUE(nand2.device_on(0, 0b01));   // NMOS pin0, input high
  EXPECT_FALSE(nand2.device_on(0, 0b10));  // NMOS pin0, input low
  EXPECT_FALSE(nand2.device_on(2, 0b01));  // PMOS pin0, input high
  EXPECT_TRUE(nand2.device_on(2, 0b10));   // PMOS pin0, input low
}

TEST(Topology, PinCapacitancePositive) {
  for (const std::string& name : standard_cell_names()) {
    const CellTopology topo = make_standard_cell(name, tech());
    for (int pin = 0; pin < topo.num_inputs(); ++pin) {
      EXPECT_GT(topo.pin_capacitance_ff(pin), 0.0) << name << " pin " << pin;
    }
    EXPECT_GT(topo.max_pin_capacitance_ff(), 0.0);
  }
}

TEST(Topology, UnknownCellThrows) {
  EXPECT_THROW(make_standard_cell("XOR2", tech()), ContractError);
}

TEST(Topology, NonComplementaryNetworksRejected) {
  // Two parallel networks are both ON at mixed states -> must be rejected.
  EXPECT_THROW(CellTopology("BROKEN", 2,
                            SpNode::parallel({SpNode::device(0), SpNode::device(1)}),
                            SpNode::parallel({SpNode::device(0), SpNode::device(1)}),
                            {}, tech()),
               ContractError);
}

TEST(CanonicalState, SortsOnesToOutputSide) {
  const CellTopology nand2 = make_standard_cell("NAND2", tech());
  // Logical state 01 (pin0=0, pin1=1) canonicalizes to 10 (pin0=1, pin1=0):
  // the conducting NMOS moves to the top of the stack.
  const PinMapping m = canonicalize(nand2, 0b10);  // pin1 = 1
  EXPECT_EQ(m.canonical_state, 0b01u);             // pin0 = 1
  EXPECT_FALSE(m.is_identity());
  // And already-canonical states stay put.
  EXPECT_TRUE(canonicalize(nand2, 0b01).is_identity());
  EXPECT_TRUE(canonicalize(nand2, 0b11).is_identity());
  EXPECT_TRUE(canonicalize(nand2, 0b00).is_identity());
}

TEST(CanonicalState, MapStateRoundTrip) {
  const CellTopology nand3 = make_standard_cell("NAND3", tech());
  for (std::uint32_t s = 0; s < 8; ++s) {
    const PinMapping m = canonicalize(nand3, s);
    EXPECT_EQ(map_state(m, s), m.canonical_state);
    // Canonicalization preserves the number of ones.
    EXPECT_EQ(__builtin_popcount(s), __builtin_popcount(m.canonical_state));
    // The function value is invariant under pin reordering of symmetric pins.
    EXPECT_EQ(nand3.output(s), nand3.output(m.canonical_state));
  }
}

TEST(CanonicalState, Aoi21OnlySwapsSymmetricPair) {
  const CellTopology aoi = make_standard_cell("AOI21", tech());
  // A=0, B=1, C=1 -> A/B swap, C stays.
  const PinMapping m = canonicalize(aoi, 0b110);
  EXPECT_EQ(m.canonical_state, 0b101u);
  EXPECT_EQ(m.logical_to_physical[2], 2);
}

TEST(CanonicalState, StateStrings) {
  EXPECT_EQ(state_to_string(0b01, 2), "10");
  EXPECT_EQ(state_to_string(0b10, 2), "01");
  EXPECT_EQ(state_from_string("10"), 0b01u);
  EXPECT_EQ(state_from_string("111"), 0b111u);
  EXPECT_THROW(state_from_string("1x"), ContractError);
}

}  // namespace
}  // namespace svtox::cellkit
