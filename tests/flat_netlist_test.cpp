// FlatNetlist SoA view: structural equality against the Gate API, sim
// bit-identity against a pointer-chasing reference, and finalize()
// correctness on 100k+-gate generated circuits. The flat view is what
// every hot loop (incremental sims, packed plans, STA, bounds) iterates,
// so these are the refactor's safety net.
#include <gtest/gtest.h>

#include <cstdint>

#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "sim/incremental.hpp"
#include "sim/sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::netlist {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

/// Asserts every flat array mirrors the Gate-API structure exactly.
void expect_flat_matches(const Netlist& n) {
  const FlatNetlist& flat = n.flat();
  ASSERT_EQ(static_cast<int>(flat.num_gates()), n.num_gates());
  ASSERT_EQ(static_cast<int>(flat.num_signals()), n.num_signals());
  EXPECT_EQ(flat.depth(), n.depth());

  for (int g = 0; g < n.num_gates(); ++g) {
    const Gate& gate = n.gate(g);
    const std::uint32_t ug = static_cast<std::uint32_t>(g);
    ASSERT_EQ(flat.fanin_count(ug), gate.fanins.size());
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      EXPECT_EQ(static_cast<int>(flat.fanins(ug)[i]), gate.fanins[i]);
    }
    EXPECT_EQ(static_cast<int>(flat.output(ug)), gate.output);
    EXPECT_EQ(static_cast<int>(flat.cell_index(ug)), gate.cell_index);
    EXPECT_EQ(&flat.topology(ug), &n.cell_of(g).topology());
    EXPECT_EQ(flat.level(ug), n.gate_level(g));
  }

  ASSERT_EQ(flat.topo_order().size(), n.topological_order().size());
  for (std::size_t i = 0; i < flat.topo_order().size(); ++i) {
    EXPECT_EQ(static_cast<int>(flat.topo_order()[i]), n.topological_order()[i]);
  }

  for (int s = 0; s < n.num_signals(); ++s) {
    const std::uint32_t us = static_cast<std::uint32_t>(s);
    if (n.driver(s) < 0) {
      EXPECT_EQ(flat.driver(us), FlatNetlist::kNoDriver);
    } else {
      EXPECT_EQ(static_cast<int>(flat.driver(us)), n.driver(s));
    }
    const std::vector<Sink>& sinks = n.sinks(s);
    ASSERT_EQ(flat.sink_count(us), sinks.size());
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      EXPECT_EQ(static_cast<int>(flat.sink_gates(us)[i]), sinks[i].gate);
      EXPECT_EQ(static_cast<int>(flat.sink_pins(us)[i]), sinks[i].pin);
    }
  }

  ASSERT_EQ(static_cast<int>(flat.num_control_points()), n.num_control_points());
  for (int i = 0; i < n.num_control_points(); ++i) {
    EXPECT_EQ(static_cast<int>(flat.control_points()[i]), n.control_points()[i]);
  }
}

TEST(FlatNetlist, MirrorsGateApiOnBenchmarks) {
  for (const char* name : {"c432", "c880", "c6288"}) {
    SCOPED_TRACE(name);
    expect_flat_matches(make_benchmark(name, lib()));
  }
}

TEST(FlatNetlist, MirrorsGateApiOnRandomDag) {
  DagOptions options;
  options.num_inputs = 32;
  options.num_gates = 3000;
  options.target_depth = 24;
  expect_flat_matches(random_dag(lib(), "fd", options));
}

TEST(FlatNetlist, ThrowsBeforeFinalize) {
  Netlist n("unfin", &lib());
  EXPECT_THROW(n.flat(), ContractError);
}

/// Pointer-chasing reference simulation through the Gate API only.
std::vector<bool> reference_simulate(const Netlist& n, const std::vector<bool>& inputs) {
  std::vector<bool> values(static_cast<std::size_t>(n.num_signals()), false);
  for (int i = 0; i < n.num_control_points(); ++i) {
    values[static_cast<std::size_t>(n.control_points()[i])] = inputs[static_cast<std::size_t>(i)];
  }
  for (int g : n.topological_order()) {
    const Gate& gate = n.gate(g);
    std::uint32_t state = 0;
    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      if (values[static_cast<std::size_t>(gate.fanins[pin])]) state |= 1u << pin;
    }
    values[static_cast<std::size_t>(gate.output)] = n.cell_of(g).topology().output(state);
  }
  return values;
}

TEST(FlatNetlist, SimulateBitIdenticalToPointerReference) {
  for (const char* name : {"c432", "c880", "c6288"}) {
    SCOPED_TRACE(name);
    const Netlist n = make_benchmark(name, lib());
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> inputs(static_cast<std::size_t>(n.num_control_points()));
      for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = rng.next_bool();
      EXPECT_EQ(sim::simulate(n, inputs), reference_simulate(n, inputs));
    }
  }
}

TEST(FlatNetlist, IncrementalSimMatchesFullResim) {
  const Netlist n = make_benchmark("c432", lib());
  std::vector<bool> inputs(static_cast<std::size_t>(n.num_control_points()), false);
  sim::IncrementalBoolSim inc(n);  // starts at the all-zero vector
  Rng rng(7);
  for (int step = 0; step < 200; ++step) {
    const int index = static_cast<int>(rng.next_below(inputs.size()));
    inputs[static_cast<std::size_t>(index)] = !inputs[static_cast<std::size_t>(index)];
    inc.set_input(index, inputs[static_cast<std::size_t>(index)], nullptr);
    ASSERT_EQ(inc.values(), reference_simulate(n, inputs)) << "step " << step;
  }
}

// --- 100k+-gate generator + finalize correctness --------------------------

TEST(FlatNetlistScale, RandomDagDeterministicAt100k) {
  DagOptions options;
  options.num_inputs = 128;
  options.num_gates = 100000;
  options.target_depth = 64;
  const Netlist a = random_dag(lib(), "d", options);
  const Netlist b = random_dag(lib(), "d", options);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  ASSERT_EQ(a.num_signals(), b.num_signals());
  for (int g = 0; g < a.num_gates(); ++g) {
    ASSERT_EQ(a.gate(g).cell_index, b.gate(g).cell_index) << "gate " << g;
    ASSERT_EQ(a.gate(g).fanins, b.gate(g).fanins) << "gate " << g;
    ASSERT_EQ(a.gate(g).output, b.gate(g).output) << "gate " << g;
  }
}

TEST(FlatNetlistScale, FinalizeCorrectAt100k) {
  DagOptions options;
  options.num_inputs = 128;
  options.num_gates = 100000;
  options.target_depth = 64;
  options.seed = 5;
  const Netlist n = random_dag(lib(), "d", options);
  ASSERT_EQ(n.num_gates(), 100000);
  EXPECT_EQ(n.depth(), 64);  // random_dag pins the depth exactly

  // Topological order is valid: every fanin's driver appears earlier.
  const FlatNetlist& flat = n.flat();
  std::vector<bool> placed(static_cast<std::size_t>(n.num_signals()), false);
  for (int s : n.control_points()) placed[static_cast<std::size_t>(s)] = true;
  for (std::uint32_t g : flat.topo_order()) {
    for (std::uint32_t i = 0; i < flat.fanin_count(g); ++i) {
      ASSERT_TRUE(placed[flat.fanins(g)[i]]) << "gate " << g;
    }
    placed[flat.output(g)] = true;
  }

  // Levels are consistent: level = 1 + max fanin driver level.
  for (std::uint32_t g = 0; g < flat.num_gates(); ++g) {
    int expect = 0;
    for (std::uint32_t i = 0; i < flat.fanin_count(g); ++i) {
      const std::uint32_t driver = flat.driver(flat.fanins(g)[i]);
      if (driver != FlatNetlist::kNoDriver) {
        expect = std::max(expect, flat.level(driver));
      }
    }
    ASSERT_EQ(flat.level(g), expect + 1) << "gate " << g;
  }
}

TEST(FlatNetlistScale, GateMixPresetsBuild) {
  // Smallest presets only; the big ones are bench_scale territory.
  const Netlist dag = make_scale_circuit(lib(), "dag10k");
  EXPECT_EQ(dag.num_gates(), 10000);
  EXPECT_EQ(dag.depth(), 40);
  EXPECT_THROW(make_scale_circuit(lib(), "nope"), ContractError);
  EXPECT_FALSE(scale_circuit_names().empty());
}

}  // namespace
}  // namespace svtox::netlist
