// Sequential-circuit support: flip-flop state bits as sleep-vector
// controls (the paper's refs [1][3] standby-entry mechanism), FF timing
// boundaries, ISCAS-89 DFF parsing, and end-to-end optimization.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/optimizer.hpp"
#include "core/solution_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "sim/equivalence.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/sim.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"

namespace svtox {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist tiny_sequential() {
  // in -> INV -> d; q -> INV -> out; with a DFF between d and q.
  netlist::Netlist n("tiny_seq", &lib());
  const int in = n.add_signal("in");
  const int d = n.add_signal("d");
  const int q = n.add_signal("q");
  const int out = n.add_signal("out");
  n.mark_input(in);
  n.mark_output(out);
  n.add_gate("g0", "INV", {in}, d);
  n.add_gate("g1", "INV", {q}, out);
  n.add_flip_flop("ff0", d, q);
  n.finalize();
  return n;
}

TEST(Sequential, ControlAndObservePoints) {
  const auto n = tiny_sequential();
  EXPECT_EQ(n.num_flip_flops(), 1);
  EXPECT_TRUE(n.is_sequential());
  EXPECT_EQ(n.num_control_points(), 2);   // in + q
  EXPECT_EQ(n.control_points()[1], n.flip_flops()[0].q);
  ASSERT_EQ(n.observe_points().size(), 2u);  // out + d
  EXPECT_EQ(n.observe_points()[1], n.flip_flops()[0].d);
}

TEST(Sequential, CombinationalCircuitsUnchanged) {
  const auto n = netlist::random_circuit(lib(), "seq_c", 8, 40, 91);
  EXPECT_FALSE(n.is_sequential());
  EXPECT_EQ(n.control_points(), n.primary_inputs());
  EXPECT_EQ(n.observe_points(), n.primary_outputs());
}

TEST(Sequential, SimulationDrivesRegisterOutputs) {
  const auto n = tiny_sequential();
  // Control vector: (in, q).
  const auto v10 = sim::simulate(n, {true, false});
  EXPECT_FALSE(v10[static_cast<std::size_t>(n.find_signal("d"))]);
  EXPECT_TRUE(v10[static_cast<std::size_t>(n.find_signal("out"))]);
  const auto v01 = sim::simulate(n, {false, true});
  EXPECT_TRUE(v01[static_cast<std::size_t>(n.find_signal("d"))]);
  EXPECT_FALSE(v01[static_cast<std::size_t>(n.find_signal("out"))]);
}

TEST(Sequential, FlipFlopOutputCannotBeDriven) {
  netlist::Netlist n("bad", &lib());
  const int a = n.add_signal("a");
  const int q = n.add_signal("q");
  n.mark_input(a);
  n.add_gate("g0", "INV", {a}, q);
  n.add_flip_flop("ff", a, q);
  EXPECT_THROW(n.finalize(), ContractError);
}

TEST(Sequential, TimingSpansRegisterBoundaries) {
  // The pipeline's delay is per-stage, not the sum of stages: registers cut
  // the paths.
  const auto deep = netlist::sequential_pipeline(lib(), "p4", 8, 4, 60, 7);
  const auto flat = netlist::random_circuit(lib(), "f1", 8, 240, 7);
  sta::TimingState t_deep(deep);
  sta::TimingState t_flat(flat);
  const double d_deep = t_deep.analyze(sim::fastest_config(deep));
  const double d_flat = t_flat.analyze(sim::fastest_config(flat));
  EXPECT_LT(d_deep, d_flat);
  EXPECT_GT(d_deep, 0.0);
}

TEST(Sequential, PipelineGeneratorStatistics) {
  const auto n = netlist::sequential_pipeline(lib(), "p3", 8, 3, 50, 11);
  EXPECT_EQ(n.num_inputs(), 8);
  EXPECT_EQ(n.num_gates(), 150);
  EXPECT_EQ(n.num_flip_flops(), 16);  // 2 internal banks of 8
  EXPECT_EQ(n.num_control_points(), 24);
  EXPECT_EQ(n.num_outputs(), 8);
}

TEST(Sequential, DffBenchRoundTrip) {
  const std::string text = R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = NOT(a)
y = NAND(q, a)
)";
  const auto n = netlist::read_bench(text, "seq", lib());
  EXPECT_EQ(n.num_flip_flops(), 1);
  EXPECT_EQ(n.num_gates(), 2);
  // Writer emits the DFF; re-reading preserves structure.
  const auto back = netlist::read_bench(netlist::write_bench(n), "seq", lib());
  EXPECT_EQ(back.num_flip_flops(), 1);
  const auto eq = sim::check_equivalence(n, back, 200, 12);
  EXPECT_TRUE(eq.equivalent);
}

TEST(Sequential, OptimizerCoversRegisterStates) {
  const auto n = netlist::sequential_pipeline(lib(), "p_opt", 8, 3, 60, 13);
  const opt::AssignmentProblem problem(n, 0.05);
  const auto sol = opt::heuristic1(problem);
  EXPECT_EQ(sol.sleep_vector.size(), static_cast<std::size_t>(n.num_control_points()));
  EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3);
  // Cross-check leakage accounting through the simulator.
  EXPECT_NEAR(sim::circuit_leakage_na(n, sol.config, sol.sleep_vector),
              sol.leakage_na, 1e-6);
}

TEST(Sequential, StateControlBeatsInputOnlyControl) {
  // Register control matters: freezing the best (pi, state) combination
  // leaks less than the best achievable when registers float randomly.
  const auto n = netlist::sequential_pipeline(lib(), "p_cmp", 8, 3, 60, 17);
  const opt::AssignmentProblem problem(n, 0.05);
  const auto sol = opt::heuristic1(problem);
  const auto mc = sim::monte_carlo_leakage(n, sim::fastest_config(n), 1000, 17);
  EXPECT_LT(sol.leakage_na, mc.mean_na);
}

TEST(Sequential, EndToEndThroughFacade) {
  const auto n = netlist::sequential_pipeline(lib(), "p_core", 8, 2, 50, 19);
  core::StandbyOptimizer optimizer(n);
  core::RunConfig config;
  config.penalty_fraction = 0.10;
  config.time_limit_s = 0.3;
  config.random_vectors = 500;
  const auto h1 = optimizer.run(core::Method::kHeu1, config);
  EXPECT_GT(h1.reduction_x, 1.5);
  const auto vt = optimizer.run(core::Method::kVtState, config);
  EXPECT_GT(h1.reduction_x, vt.reduction_x * 0.9);
}

TEST(Sequential, SolutionIoRoundTripsRegisterBits) {
  const auto n = netlist::sequential_pipeline(lib(), "p_io", 6, 2, 30, 23);
  const opt::AssignmentProblem problem(n, 0.10);
  const auto sol = opt::heuristic1(problem);
  const auto back = core::read_solution(core::write_solution(sol, n), n);
  EXPECT_EQ(back.sleep_vector, sol.sleep_vector);
}

TEST(Sequential, RebindKeepsFlipFlops) {
  liberty::LibraryOptions options;
  options.variant_options.four_point = false;
  const liberty::Library two = liberty::Library::build(model::TechParams::nominal(), options);
  const auto n = netlist::sequential_pipeline(lib(), "p_rb", 6, 2, 30, 29);
  const auto r = netlist::rebind(n, two);
  EXPECT_EQ(r.num_flip_flops(), n.num_flip_flops());
  EXPECT_TRUE(sim::check_equivalence(n, r, 300, 29).equivalent);
}

}  // namespace
}  // namespace svtox

namespace svtox {
namespace {

TEST(Sequential, S27BenchmarkParsesAndOptimizes) {
  const std::string path =
      (std::filesystem::path(__FILE__).parent_path().parent_path() / "data" /
       "s27.bench")
          .string();
  const auto s27 = netlist::read_bench_file(path, lib());
  EXPECT_EQ(s27.num_inputs(), 4);
  EXPECT_EQ(s27.num_flip_flops(), 3);
  EXPECT_EQ(s27.num_outputs(), 1);
  EXPECT_EQ(s27.num_control_points(), 7);

  const opt::AssignmentProblem problem(s27, 0.10);
  const auto sol = opt::heuristic2(problem, 0.2);
  EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3);
  const auto mc = sim::monte_carlo_leakage(s27, sim::fastest_config(s27), 500, 27);
  EXPECT_LT(sol.leakage_na, mc.mean_na);
}

}  // namespace
}  // namespace svtox
