#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "sim/equivalence.hpp"
#include "util/error.hpp"

namespace svtox::sim {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

TEST(Equivalence, CircuitEqualsItself) {
  const auto n = netlist::random_circuit(lib(), "eq1", 10, 60, 61);
  const auto result = check_equivalence(n, n, 500, 1);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.vectors_checked, 500);
}

TEST(Equivalence, RebindPreservesFunction) {
  liberty::LibraryOptions options;
  options.variant_options.vt_only = true;
  const liberty::Library vt = liberty::Library::build(model::TechParams::nominal(), options);
  const auto n = netlist::random_circuit(lib(), "eq2", 12, 90, 62);
  const auto r = netlist::rebind(n, vt);
  EXPECT_TRUE(check_equivalence(n, r, 1000, 2).equivalent);
}

TEST(Equivalence, BenchRoundTripPreservesFunction) {
  // Generated circuit -> .bench text -> parsed back: must be equivalent.
  const auto n = netlist::ripple_carry_adder(lib(), 8);
  const std::string text = netlist::write_bench(n);
  const auto back = netlist::read_bench(text, n.name(), lib());
  const auto result = check_equivalence(n, back, 2000, 3);
  EXPECT_TRUE(result.equivalent) << (result.counterexample
                                         ? result.counterexample->output_name
                                         : "");
}

TEST(Equivalence, DetectsFunctionalDifferenceWithCounterexample) {
  // Same interface, different function: NAND2 vs NOR2.
  auto make = [&](const char* cell) {
    netlist::Netlist n("one_gate", &lib());
    const int a = n.add_signal("a");
    const int b = n.add_signal("b");
    const int y = n.add_signal("y");
    n.mark_input(a);
    n.mark_input(b);
    n.mark_output(y);
    n.add_gate("g", cell, {a, b}, y);
    n.finalize();
    return n;
  };
  const auto nand2 = make("NAND2");
  const auto nor2 = make("NOR2");
  const auto result = check_equivalence(nand2, nor2, 200, 4);
  EXPECT_FALSE(result.equivalent);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_EQ(result.counterexample->output_name, "y");
  // The witness really does separate the two functions.
  const bool a = result.counterexample->inputs[0];
  const bool b = result.counterexample->inputs[1];
  EXPECT_NE(!(a && b), !(a || b));
  EXPECT_EQ(result.counterexample->value_a, !(a && b));
  EXPECT_EQ(result.counterexample->value_b, !(a || b));
}

TEST(Equivalence, NameMatchingIsOrderInsensitive) {
  // The same function built with inputs declared in a different order.
  auto make = [&](bool swap_order) {
    netlist::Netlist n("ord", &lib());
    const int first = n.add_signal(swap_order ? "b" : "a");
    const int second = n.add_signal(swap_order ? "a" : "b");
    const int y = n.add_signal("y");
    n.mark_input(first);
    n.mark_input(second);
    n.mark_output(y);
    const int a = n.find_signal("a");
    const int b = n.find_signal("b");
    // y = NAND(a, INV-free b) -- asymmetric wiring to catch order bugs:
    // actually use an asymmetric cell: AOI21(a, a, b) = !(a*a + b) = !(a+b).
    n.add_gate("g", "NOR2", {a, b}, y);
    n.finalize();
    return n;
  };
  EXPECT_TRUE(check_equivalence(make(false), make(true), 200, 5).equivalent);
}

TEST(Equivalence, InterfaceMismatchThrows) {
  const auto a = netlist::random_circuit(lib(), "eq3", 6, 20, 63);
  const auto b = netlist::random_circuit(lib(), "eq4", 7, 20, 64);
  EXPECT_THROW(check_equivalence(a, b, 10, 6), ContractError);
}

}  // namespace
}  // namespace svtox::sim
