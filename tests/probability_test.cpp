// Vectorless probability propagation and DOT export tests.
#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "report/dot_export.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/probability.hpp"
#include "util/error.hpp"

namespace svtox::sim {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist one_gate(const char* cell, int arity) {
  netlist::Netlist n("pg", &lib());
  std::vector<int> ins;
  for (int i = 0; i < arity; ++i) {
    const int s = n.add_signal("i" + std::to_string(i));
    n.mark_input(s);
    ins.push_back(s);
  }
  const int y = n.add_signal("y");
  n.mark_output(y);
  n.add_gate("g", cell, ins, y);
  n.finalize();
  return n;
}

TEST(Probability, ExactForSingleGates) {
  // NAND2 with p(a)=p(b)=0.5: P(out=1) = 1 - 0.25 = 0.75.
  const auto nand2 = one_gate("NAND2", 2);
  const auto p = propagate_probabilities(nand2, {0.5, 0.5});
  EXPECT_NEAR(p[static_cast<std::size_t>(nand2.find_signal("y"))], 0.75, 1e-12);

  const auto nor3 = one_gate("NOR3", 3);
  const auto q = propagate_probabilities(nor3, {0.5, 0.5, 0.5});
  EXPECT_NEAR(q[static_cast<std::size_t>(nor3.find_signal("y"))], 0.125, 1e-12);

  // Deterministic inputs give deterministic outputs.
  const auto inv = one_gate("INV", 1);
  EXPECT_NEAR(propagate_probabilities(inv, {1.0})
                  [static_cast<std::size_t>(inv.find_signal("y"))],
              0.0, 1e-12);
}

TEST(Probability, ExactOnFanoutFreeTrees) {
  // On a fanout-free circuit every signal feeds exactly one gate, pins are
  // genuinely independent, and the propagation is *exact*: compare against
  // brute-force enumeration on a 3-level balanced NAND tree (8 inputs).
  netlist::Netlist n("tree", &lib());
  std::vector<int> level;
  for (int i = 0; i < 8; ++i) {
    const int s = n.add_signal("i" + std::to_string(i));
    n.mark_input(s);
    level.push_back(s);
  }
  int counter = 0;
  while (level.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const int out = n.add_signal("t" + std::to_string(counter));
      n.add_gate("g" + std::to_string(counter++), "NAND2", {level[i], level[i + 1]}, out);
      next.push_back(out);
    }
    level = std::move(next);
  }
  n.mark_output(level.front());
  n.finalize();

  // Mixed, non-uniform input probabilities.
  std::vector<double> pin = {0.5, 0.25, 0.9, 0.1, 0.6, 0.4, 1.0, 0.0};
  const auto p = propagate_probabilities(n, pin);

  std::vector<double> exact(static_cast<std::size_t>(n.num_signals()), 0.0);
  for (std::uint32_t v = 0; v < 256; ++v) {
    std::vector<bool> in(8);
    double weight = 1.0;
    for (int i = 0; i < 8; ++i) {
      in[static_cast<std::size_t>(i)] = (v >> i) & 1;
      weight *= in[static_cast<std::size_t>(i)] ? pin[static_cast<std::size_t>(i)]
                                                : 1.0 - pin[static_cast<std::size_t>(i)];
    }
    if (weight == 0.0) continue;
    const auto values = simulate(n, in);
    for (int s = 0; s < n.num_signals(); ++s) {
      if (values[static_cast<std::size_t>(s)]) exact[static_cast<std::size_t>(s)] += weight;
    }
  }
  for (int s = 0; s < n.num_signals(); ++s) {
    EXPECT_NEAR(p[static_cast<std::size_t>(s)], exact[static_cast<std::size_t>(s)], 1e-9)
        << n.signal_name(s);
  }
}

TEST(Probability, ExpectedLeakageTracksMonteCarlo) {
  const auto n = netlist::random_circuit(lib(), "pb1", 12, 100, 95);
  const auto config = fastest_config(n);
  const double expected = expected_leakage_uniform_na(n, config);
  const double mc = monte_carlo_leakage(n, config, 4000, 95).mean_na;
  // Independence bias stays within ~15% on these random circuits.
  EXPECT_NEAR(expected / mc, 1.0, 0.15);
}

TEST(Probability, InvalidInputsThrow) {
  const auto n = one_gate("INV", 1);
  EXPECT_THROW(propagate_probabilities(n, {}), ContractError);
  EXPECT_THROW(propagate_probabilities(n, {1.5}), ContractError);
  EXPECT_THROW(expected_leakage_na(n, CircuitConfig{}, {0.5}), ContractError);
}

TEST(Probability, BiasedInputsShiftExpectation) {
  // Driving inputs toward the low-leakage state reduces expected leakage.
  const auto n = netlist::random_circuit(lib(), "pb2", 10, 80, 96);
  const auto config = fastest_config(n);
  const double uniform = expected_leakage_uniform_na(n, config);

  // Find the better all-constant corner.
  const double all0 = expected_leakage_na(
      n, config, std::vector<double>(static_cast<std::size_t>(n.num_inputs()), 0.0));
  const double all1 = expected_leakage_na(
      n, config, std::vector<double>(static_cast<std::size_t>(n.num_inputs()), 1.0));
  EXPECT_LT(std::min(all0, all1), uniform);
}

TEST(DotExport, ContainsStructureAndAnnotations) {
  const auto n = netlist::random_circuit(lib(), "dot1", 6, 20, 97);
  const opt::AssignmentProblem problem(n, 0.25);
  const auto sol = opt::heuristic1(problem);

  const std::string plain = report::write_dot(n);
  EXPECT_NE(plain.find("digraph \"dot1\""), std::string::npos);
  EXPECT_NE(plain.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(plain.find("->"), std::string::npos);
  EXPECT_EQ(plain.find("lightblue"), std::string::npos);

  const std::string annotated = report::write_dot(n, &sol.config, &sol.sleep_vector);
  EXPECT_NE(annotated.find("lightblue"), std::string::npos);  // swapped gates
  EXPECT_NE(annotated.find("=1"), std::string::npos);         // sleep values
}

TEST(DotExport, SequentialEdgesDashed) {
  const auto n = netlist::sequential_pipeline(lib(), "dot2", 4, 2, 12, 98);
  const std::string text = report::write_dot(n);
  EXPECT_NE(text.find("style=dashed"), std::string::npos);
}

TEST(DotExport, SizeMismatchThrows) {
  const auto n = netlist::random_circuit(lib(), "dot3", 4, 10, 99);
  CircuitConfig bad;
  EXPECT_THROW(report::write_dot(n, &bad), ContractError);
}

}  // namespace
}  // namespace svtox::sim
