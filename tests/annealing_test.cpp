#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "opt/annealing.hpp"
#include "opt/state_search.hpp"
#include "util/rng.hpp"

namespace svtox::opt {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

AnnealingOptions quick(std::uint64_t seed) {
  AnnealingOptions options;
  options.time_limit_s = 0.2;
  options.seed = seed;
  return options;
}

TEST(Annealing, RespectsDelayConstraint) {
  const auto n = netlist::random_circuit(lib(), "sa1", 10, 80, 71);
  for (double penalty : {0.0, 0.05, 0.25}) {
    const AssignmentProblem problem(n, penalty);
    const Solution sol = simulated_annealing(problem, quick(1));
    EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3) << penalty;
  }
}

TEST(Annealing, DeterministicInSeed) {
  const auto n = netlist::random_circuit(lib(), "sa2", 10, 60, 72);
  const AssignmentProblem problem(n, 0.05);
  AnnealingOptions options = quick(9);
  // Fixed move budget instead of wall clock for exact reproducibility is
  // not exposed; compare best sleep vectors across two runs with the same
  // seed and a generous budget -- the walk itself is deterministic, only
  // the stopping point varies, so leakage can only match or improve.
  const Solution a = simulated_annealing(problem, options);
  const Solution b = simulated_annealing(problem, options);
  EXPECT_NEAR(a.leakage_na, b.leakage_na, 0.05 * a.leakage_na);
}

TEST(Annealing, BeatsTypicalRandomState) {
  const auto n = netlist::random_circuit(lib(), "sa3", 12, 100, 73);
  const AssignmentProblem problem(n, 0.05);
  const Solution sa = simulated_annealing(problem, quick(3));

  // Average leakage of greedy-assigned random vectors.
  Rng rng(73);
  double sum = 0.0;
  constexpr int kProbes = 5;
  for (int i = 0; i < kProbes; ++i) {
    std::vector<bool> v(static_cast<std::size_t>(n.num_inputs()));
    for (std::size_t j = 0; j < v.size(); ++j) v[j] = rng.next_bool();
    sum += assign_gates_greedy(problem, v).leakage_na;
  }
  EXPECT_LT(sa.leakage_na, sum / kProbes * 1.05);
}

TEST(Annealing, ComparableToHeu1) {
  // Neither dominates in general; on these circuits SA must land within
  // 2x of Heu1 (and often beats it on flat-bound circuits).
  for (std::uint64_t seed : {74ULL, 75ULL}) {
    const auto n = netlist::random_circuit(lib(), "sa4", 10, 80, seed);
    const AssignmentProblem problem(n, 0.05);
    const Solution sa = simulated_annealing(problem, quick(seed));
    const Solution h1 = heuristic1(problem);
    EXPECT_LT(sa.leakage_na, 2.0 * h1.leakage_na) << seed;
  }
}

TEST(Annealing, ExactStillLowerBoundsOnTinyCircuit) {
  const auto n = netlist::random_circuit(lib(), "sa5", 5, 12, 76);
  const AssignmentProblem problem(n, 0.10);
  SearchOptions exact_options;
  exact_options.time_limit_s = 20.0;
  const Solution exact = exact_search(problem, exact_options);
  const Solution sa = simulated_annealing(problem, quick(5));
  EXPECT_LE(exact.leakage_na, sa.leakage_na + 1e-9);
}

TEST(Annealing, CountsMoves) {
  const auto n = netlist::random_circuit(lib(), "sa6", 8, 40, 77);
  const AssignmentProblem problem(n, 0.05);
  const Solution sol = simulated_annealing(problem, quick(6));
  EXPECT_GT(sol.states_explored, 100u);  // thousands of cheap moves in 0.2s
}

}  // namespace
}  // namespace svtox::opt
