#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "netlist/generators.hpp"
#include "sim/leakage_eval.hpp"
#include "sta/sta.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::sta {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist inverter_chain(int length) {
  netlist::Netlist n("chain", &lib());
  int prev = n.add_signal("in");
  n.mark_input(prev);
  for (int i = 0; i < length; ++i) {
    const int next = n.add_signal("n" + std::to_string(i));
    n.add_gate("g" + std::to_string(i), "INV", {prev}, next);
    prev = next;
  }
  n.mark_output(prev);
  n.finalize();
  return n;
}

TEST(Sta, ChainDelayGrowsLinearly) {
  std::vector<double> delays;
  for (int len : {2, 4, 8}) {
    const auto n = inverter_chain(len);
    TimingState timing(n);
    delays.push_back(timing.analyze(sim::fastest_config(n)));
  }
  EXPECT_GT(delays[1], delays[0]);
  EXPECT_GT(delays[2], delays[1]);
  // Roughly proportional to length (within 30% of 2x per doubling).
  EXPECT_NEAR(delays[2] / delays[1], 2.0, 0.6);
}

TEST(Sta, ArrivalsMonotoneAlongChain) {
  const auto n = inverter_chain(6);
  TimingState timing(n);
  timing.analyze(sim::fastest_config(n));
  double prev = 0.0;
  for (int g : n.topological_order()) {
    const int out = n.gate(g).output;
    const double arrival =
        std::max(timing.arrival_rise_ps(out), timing.arrival_fall_ps(out));
    EXPECT_GT(arrival, prev);
    prev = arrival;
  }
}

TEST(Sta, SlowerVariantNeverDecreasesDelay) {
  const auto n = netlist::random_circuit(lib(), "sta_r", 12, 80, 31);
  TimingState timing(n);
  sim::CircuitConfig config = sim::fastest_config(n);
  const double base = timing.analyze(config);
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const int g = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.num_gates())));
    const int variants = n.cell_of(g).num_variants();
    config[static_cast<std::size_t>(g)].variant =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(variants)));
    TimingState fresh(n);
    EXPECT_GE(fresh.analyze(config), base - 1e-9);
    config[static_cast<std::size_t>(g)].variant = n.cell_of(g).fastest_variant();
  }
}

TEST(Sta, IncrementalMatchesFullReanalysis) {
  // Property: after a random sequence of variant changes, incremental
  // updates leave the exact same state as a from-scratch analysis.
  const auto n = netlist::random_circuit(lib(), "sta_i", 14, 120, 37);
  sim::CircuitConfig config = sim::fastest_config(n);
  TimingState incremental(n);
  incremental.analyze(config);

  Rng rng(37);
  for (int step = 0; step < 40; ++step) {
    const int g = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.num_gates())));
    const int variants = n.cell_of(g).num_variants();
    config[static_cast<std::size_t>(g)].variant =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(variants)));
    const double inc_delay = incremental.update_after_gate_change(config, g, nullptr);

    TimingState fresh(n);
    const double full_delay = fresh.analyze(config);
    ASSERT_NEAR(inc_delay, full_delay, 1e-6) << "step " << step;
    for (int s = 0; s < n.num_signals(); ++s) {
      ASSERT_NEAR(incremental.arrival_rise_ps(s), fresh.arrival_rise_ps(s), 1e-6);
      ASSERT_NEAR(incremental.arrival_fall_ps(s), fresh.arrival_fall_ps(s), 1e-6);
      ASSERT_NEAR(incremental.slew_rise_ps(s), fresh.slew_rise_ps(s), 1e-6);
      ASSERT_NEAR(incremental.slew_fall_ps(s), fresh.slew_fall_ps(s), 1e-6);
    }
  }
}

TEST(Sta, UndoRestoresExactState) {
  const auto n = netlist::random_circuit(lib(), "sta_u", 10, 70, 41);
  sim::CircuitConfig config = sim::fastest_config(n);
  TimingState timing(n);
  const double base = timing.analyze(config);

  std::vector<double> before_rise(static_cast<std::size_t>(n.num_signals()));
  for (int s = 0; s < n.num_signals(); ++s) before_rise[s] = timing.arrival_rise_ps(s);

  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const int g = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.num_gates())));
    const int old = config[static_cast<std::size_t>(g)].variant;
    config[static_cast<std::size_t>(g)].variant =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.cell_of(g).num_variants())));
    TimingUndo undo;
    timing.update_after_gate_change(config, g, &undo);
    timing.revert(undo);
    config[static_cast<std::size_t>(g)].variant = old;

    EXPECT_NEAR(timing.circuit_delay_ps(), base, 1e-9);
    for (int s = 0; s < n.num_signals(); ++s) {
      ASSERT_NEAR(timing.arrival_rise_ps(s), before_rise[s], 1e-9);
    }
  }
}

TEST(Sta, CriticalPathIsConnectedAndEndsAtInput) {
  const auto n = netlist::random_circuit(lib(), "sta_c", 12, 90, 43);
  sim::CircuitConfig config = sim::fastest_config(n);
  TimingState timing(n);
  timing.analyze(config);
  const auto path = timing.critical_path(config);
  ASSERT_FALSE(path.empty());
  // First gate drives the critical output.
  EXPECT_EQ(n.gate(path.front()).output, timing.critical_output().signal);
  // Consecutive path gates are connected fanout -> fanin.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const int upstream_out = n.gate(path[i + 1]).output;
    bool connected = false;
    for (int f : n.gate(path[i]).fanins) connected = connected || f == upstream_out;
    EXPECT_TRUE(connected) << "path position " << i;
  }
  // Path terminates at a primary input.
  const auto& last = n.gate(path.back());
  bool from_pi = false;
  for (int f : last.fanins) from_pi = from_pi || n.driver(f) == -1;
  EXPECT_TRUE(from_pi);
}

TEST(Sta, LoadSliceBitIdenticalToTableLookup) {
  // The contract of NldmLoadSlice: lookup(slew) returns the SAME BITS as
  // the 2-D table lookup at the construction load, including extrapolation
  // beyond both ends of the slew axis.
  Rng rng(59);
  for (const liberty::LibCell& cell : lib().cells()) {
    for (const liberty::LibCellVariant& variant : cell.variants()) {
      for (const liberty::PinTiming& pin : variant.pins) {
        for (const liberty::NldmTable* table :
             {&pin.delay_rise, &pin.delay_fall, &pin.slew_rise, &pin.slew_fall}) {
          // Loads inside, between and outside the characterized axis.
          const double load =
              0.1 + 80.0 * static_cast<double>(rng.next_below(1000)) / 1000.0;
          const liberty::NldmLoadSlice slice(*table, load);
          for (int probe = 0; probe < 20; ++probe) {
            const double slew =
                -30.0 + 400.0 * static_cast<double>(rng.next_below(1000)) / 1000.0;
            const double expect = table->lookup(slew, load);
            const double got = slice.lookup(slew);
            ASSERT_EQ(std::bit_cast<std::uint64_t>(expect),
                      std::bit_cast<std::uint64_t>(got))
                << cell.name() << " slew=" << slew << " load=" << load;
          }
        }
      }
    }
  }
}

TEST(Sta, SlicedIncrementalUpdatesBitIdenticalToUnsliced) {
  // Attaching LoadSlicedTables must not change a single bit of any
  // propagated value relative to the plain 2-D lookups.
  const auto n = netlist::random_circuit(lib(), "sta_s", 14, 120, 53);
  const LoadSlicedTables slices(n);
  sim::CircuitConfig config = sim::fastest_config(n);
  TimingState sliced(n), plain(n);
  sliced.analyze(config);
  plain.analyze(config);
  sliced.use_load_slices(&slices);

  Rng rng(53);
  for (int step = 0; step < 40; ++step) {
    const int g = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.num_gates())));
    config[static_cast<std::size_t>(g)].variant = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n.cell_of(g).num_variants())));
    const double ds = sliced.update_after_gate_change(config, g, nullptr);
    const double dp = plain.update_after_gate_change(config, g, nullptr);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ds), std::bit_cast<std::uint64_t>(dp));
    for (int s = 0; s < n.num_signals(); ++s) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(sliced.arrival_rise_ps(s)),
                std::bit_cast<std::uint64_t>(plain.arrival_rise_ps(s)))
          << "step " << step << " signal " << s;
      ASSERT_EQ(std::bit_cast<std::uint64_t>(sliced.slew_fall_ps(s)),
                std::bit_cast<std::uint64_t>(plain.slew_fall_ps(s)));
    }
  }
}

TEST(Sta, BoundedUpdateMatchesPlainWhenNoAbort) {
  // With an unreachable ceiling the bounded update must walk the exact
  // same cone and produce bit-identical state; with an impossible ceiling
  // it must abort (returning 1e300) and revert back to the starting bits.
  const auto n = netlist::random_circuit(lib(), "sta_bb", 14, 120, 61);
  const std::vector<double> down_lb = downstream_delay_lower_bounds_ps(n);
  sim::CircuitConfig config = sim::fastest_config(n);
  TimingState bounded(n), plain(n);
  bounded.analyze(config);
  plain.analyze(config);

  Rng rng(61);
  for (int step = 0; step < 30; ++step) {
    const int g = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n.num_gates())));
    config[static_cast<std::size_t>(g)].variant = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n.cell_of(g).num_variants())));
    const double db =
        bounded.update_after_gate_change_bounded(config, g, down_lb, 1e12, nullptr);
    const double dp = plain.update_after_gate_change(config, g, nullptr);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(db), std::bit_cast<std::uint64_t>(dp));
    for (int s = 0; s < n.num_signals(); ++s) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(bounded.arrival_fall_ps(s)),
                std::bit_cast<std::uint64_t>(plain.arrival_fall_ps(s)))
          << "step " << step << " signal " << s;
    }
  }

  // Abort path: a negative ceiling is unsatisfiable whenever the changed
  // gate reaches an observe point, so the update must bail and the undo
  // log must restore the pre-trial bits exactly.
  std::vector<double> before(static_cast<std::size_t>(n.num_signals()));
  for (int s = 0; s < n.num_signals(); ++s) before[s] = bounded.arrival_rise_ps(s);
  for (int g = 0; g < n.num_gates(); ++g) {
    if (down_lb[static_cast<std::size_t>(n.gate(g).output)] == -1e300) continue;
    const int old = config[static_cast<std::size_t>(g)].variant;
    config[static_cast<std::size_t>(g)].variant =
        n.cell_of(g).num_variants() - 1;  // slowest
    TimingUndo undo;
    const double d =
        bounded.update_after_gate_change_bounded(config, g, down_lb, -1.0, &undo);
    EXPECT_EQ(d, 1e300);
    bounded.revert(undo);
    config[static_cast<std::size_t>(g)].variant = old;
    for (int s = 0; s < n.num_signals(); ++s) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(bounded.arrival_rise_ps(s)),
                std::bit_cast<std::uint64_t>(before[s]))
          << "gate " << g << " signal " << s;
    }
    break;  // one abort exercise is enough; the loop just finds a covered gate
  }
}

TEST(DelayBudget, EndpointsAndInterpolation) {
  const auto n = netlist::random_circuit(lib(), "sta_b", 12, 100, 47);
  const DelayBudget budget = compute_delay_budget(n);
  EXPECT_GT(budget.fast_delay_ps, 0.0);
  // All-slow sits near the combined corner factor above all-fast
  // (paper: "nearly double").
  const double ratio = budget.slow_delay_ps / budget.fast_delay_ps;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.8);
  EXPECT_DOUBLE_EQ(budget.constraint_ps(0.0), budget.fast_delay_ps);
  EXPECT_DOUBLE_EQ(budget.constraint_ps(1.0), budget.slow_delay_ps);
  const double mid = budget.constraint_ps(0.5);
  EXPECT_GT(mid, budget.fast_delay_ps);
  EXPECT_LT(mid, budget.slow_delay_ps);
}

TEST(DelayBudget, FastEndpointMatchesAnalyze) {
  const auto n = inverter_chain(5);
  const DelayBudget budget = compute_delay_budget(n);
  TimingState timing(n);
  EXPECT_NEAR(timing.analyze(sim::fastest_config(n)), budget.fast_delay_ps, 1e-9);
}

}  // namespace
}  // namespace svtox::sta
