// Distributed-service tests: the consistent-hash ring, per-shard cache
// stats in the wire protocol, Prometheus metrics rendering, and the
// headline invariant of the distributed tree search -- an N-node cluster
// run is byte-identical to a 1-node run -- plus cluster-wide solve dedup
// and graceful degradation when a peer is unreachable.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <optional>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/conn.hpp"
#include "net/listener.hpp"
#include "svc/client.hpp"
#include "svc/cluster.hpp"
#include "svc/hash_ring.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace svtox {
namespace {

using svc::Json;

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

TEST(HashRing, RejectsDegenerateMemberSets) {
  EXPECT_THROW(svc::HashRing({}), ContractError);
  EXPECT_THROW(svc::HashRing({"a:1", "a:1"}), ContractError);
  EXPECT_THROW(svc::HashRing({"a:1"}, /*vnodes=*/0), ContractError);
}

TEST(HashRing, DeterministicAndOrderIndependent) {
  const svc::HashRing forward({"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"});
  const svc::HashRing backward({"10.0.0.3:7000", "10.0.0.2:7000", "10.0.0.1:7000"});
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(forward.owner(key), backward.owner(key));
    EXPECT_EQ(forward.owner(key), forward.owner(key));
  }
}

TEST(HashRing, EveryMemberOwnsASliceOfTheKeySpace) {
  const std::vector<std::string> members = {"a:1", "b:2", "c:3", "d:4"};
  const svc::HashRing ring(members);
  std::set<std::string> seen;
  for (int i = 0; i < 4000; ++i) seen.insert(ring.owner("k" + std::to_string(i)));
  EXPECT_EQ(seen.size(), members.size());
}

TEST(HashRing, SingleMemberOwnsEverything) {
  const svc::HashRing ring({"only:1"});
  EXPECT_EQ(ring.owner("anything"), "only:1");
  EXPECT_EQ(ring.owner(""), "only:1");
}

TEST(HashRing, OwnersAreDistinctStartWithOwnerAndClamp) {
  const std::vector<std::string> members = {"a:1", "b:2", "c:3", "d:4", "e:5"};
  const svc::HashRing ring(members);
  EXPECT_THROW(ring.owners("k", 0), ContractError);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::vector<std::string> owners = ring.owners(key, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], ring.owner(key));
    std::set<std::string> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), owners.size()) << "duplicate successor for " << key;
    // Asking for more replicas than members clamps to the full set.
    EXPECT_EQ(ring.owners(key, 99).size(), members.size());
  }
}

TEST(HashRing, OwnersAgreeAcrossInsertionOrders) {
  const svc::HashRing forward({"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000",
                               "10.0.0.4:7000"});
  const svc::HashRing backward({"10.0.0.4:7000", "10.0.0.3:7000", "10.0.0.2:7000",
                                "10.0.0.1:7000"});
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(forward.owners(key, 3), backward.owners(key, 3));
  }
}

TEST(HashRing, RemovingOneMemberOnlyMovesItsOwnKeys) {
  const std::vector<std::string> members = {"a:1", "b:2", "c:3", "d:4", "e:5"};
  const std::string removed = "c:3";
  std::vector<std::string> rest;
  for (const std::string& m : members) {
    if (m != removed) rest.push_back(m);
  }
  const svc::HashRing before(members);
  const svc::HashRing after(rest);
  const int kKeys = 4000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (before.owner(key) == removed) {
      ++moved;  // must move; its owner left the ring
      EXPECT_NE(after.owner(key), removed);
    } else {
      // Consistent hashing's defining property: keys not owned by the
      // departed member keep their owner.
      EXPECT_EQ(after.owner(key), before.owner(key));
    }
  }
  // The removed member owned ~1/N of the space; allow 2x slack for hash
  // imbalance at 64 vnodes.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 2 * kKeys / static_cast<int>(members.size()));
}

// ---------------------------------------------------------------------------
// In-process daemons
// ---------------------------------------------------------------------------

std::string test_socket(const char* tag) {
  return "/tmp/svtox_dist_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

svc::Scheduler::Options node_options() {
  svc::Scheduler::Options options;
  options.workers = 2;
  return options;
}

struct Node {
  svc::Scheduler scheduler;
  svc::Server server;

  explicit Node(const char* tag)
      : scheduler(node_options()), server(scheduler, server_options(tag)) {
    server.start();
  }
  ~Node() { shutdown(); }

  void shutdown() {
    server.stop();
    scheduler.shutdown(/*drain=*/false);
  }

  std::string tcp() const { return "127.0.0.1:" + std::to_string(server.tcp_port()); }
  std::string address() const { return "tcp://" + tcp(); }

  static svc::ServerOptions server_options(const char* tag) {
    svc::ServerOptions options;
    options.socket_path = test_socket(tag);
    options.tcp_port = 0;
    return options;
  }
};

/// Two daemons joined into one cluster. Schedulers are shut down before the
/// Cluster objects die (coordinator jobs borrow the cluster pointer).
struct TwoNodes {
  Node a, b;
  std::optional<svc::Cluster> cluster_a, cluster_b;

  TwoNodes(const char* tag_a, const char* tag_b) : a(tag_a), b(tag_b) {
    const std::vector<std::string> members = {a.tcp(), b.tcp()};
    svc::ClusterOptions options;
    options.members = members;
    options.connect_attempts = 2;
    options.self = a.tcp();
    cluster_a.emplace(options);
    options.self = b.tcp();
    cluster_b.emplace(options);
    a.scheduler.set_cluster(&*cluster_a);
    b.scheduler.set_cluster(&*cluster_b);
  }
  ~TwoNodes() {
    a.shutdown();
    b.shutdown();
  }
};

svc::JobSpec coordinator_spec(int subtrees, std::uint64_t max_leaves,
                              const std::string& method = "heu2",
                              double penalty = 5.0) {
  svc::JobSpec spec;
  spec.circuit = "c432";
  spec.method = method;
  spec.penalty_percent = penalty;
  spec.time_limit_s = 100.0;
  spec.max_leaves = max_leaves;
  spec.subtrees = subtrees;
  return spec;
}

// ---------------------------------------------------------------------------
// Wire-visible cache and metrics shapes
// ---------------------------------------------------------------------------

TEST(DistStats, PerShardCacheCountersInStatsReply) {
  Node node("shardstats");
  svc::Client client(node.address());

  // One miss then one hit, somewhere in the shard array.
  svc::JobSpec spec;
  spec.circuit = "c432";
  spec.method = "heu1";
  client.result(client.submit(spec));
  client.result(client.submit(spec));

  const Json stats = client.stats();
  const Json* shards = stats.get("cache_shards");
  ASSERT_NE(shards, nullptr);
  const auto& array = shards->as_array();
  ASSERT_FALSE(array.empty());
  std::int64_t hits = 0, misses = 0, entries = 0;
  for (const Json& shard : array) {
    for (const char* key : {"hits", "disk_hits", "misses", "inflight_waits",
                            "evictions", "corrupt", "entries", "inflight"}) {
      ASSERT_NE(shard.get(key), nullptr) << "missing shard counter " << key;
    }
    hits += shard.get("hits")->as_int();
    misses += shard.get("misses")->as_int();
    entries += shard.get("entries")->as_int();
  }
  EXPECT_GE(hits, 1);
  EXPECT_GE(misses, 1);
  EXPECT_GE(entries, 1);
  // No cluster configured: the dist_cache section must be absent.
  EXPECT_EQ(stats.get("dist_cache"), nullptr);
}

TEST(DistStats, PrometheusMetricsParse) {
  Node node("prom");
  svc::Client client(node.address());
  svc::JobSpec spec;
  spec.circuit = "c432";
  spec.method = "heu1";
  client.result(client.submit(spec));

  Json request = Json::object();
  request.set("cmd", std::string("metrics"));
  const Json reply = client.request(request);
  ASSERT_TRUE(reply.get("ok")->as_bool(false));
  const std::string text = reply.get("metrics")->as_string();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Every line is a comment or `name[{labels}] value`; every metric name
  // that appears has HELP and TYPE headers.
  const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?$)");
  std::set<std::string> helped, typed, sampled;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      helped.insert(line.substr(7, line.find(' ', 7) - 7));
    } else if (line.rfind("# TYPE ", 0) == 0) {
      typed.insert(line.substr(7, line.find(' ', 7) - 7));
    } else {
      EXPECT_TRUE(std::regex_match(line, sample)) << "bad metrics line: " << line;
      sampled.insert(line.substr(0, line.find_first_of("{ ")));
    }
  }
  for (const std::string& name : sampled) {
    EXPECT_TRUE(helped.count(name)) << "no HELP for " << name;
    EXPECT_TRUE(typed.count(name)) << "no TYPE for " << name;
  }
  EXPECT_TRUE(sampled.count("svtox_jobs_total"));
  EXPECT_TRUE(sampled.count("svtox_cache_ops_total"));
  EXPECT_TRUE(sampled.count("svtox_net_bytes_total"));
}

TEST(DistStats, CheckpointFetchRejectsPathTraversal) {
  Node node("traversal");
  svc::Client client(node.address());
  Json request = Json::object();
  request.set("cmd", std::string("checkpoint_fetch"));
  request.set("key", std::string("../../etc/passwd"));
  const Json reply = client.request(request);
  EXPECT_FALSE(reply.get("ok")->as_bool(true));
}

// ---------------------------------------------------------------------------
// Distributed tree search: determinism across node counts
// ---------------------------------------------------------------------------

TEST(DistSearch, TwoNodeRunIsByteIdenticalToSingleNode) {
  // Single-node reference: same coordinator spec, no cluster -- every
  // subtree drains on the local inline worker.
  svc::JobResult reference;
  {
    Node solo("solo_ref");
    svc::Client client(solo.address());
    reference = client.result(client.submit(coordinator_spec(4, 400)));
    ASSERT_EQ(reference.status, svc::JobStatus::kDone);
  }

  TwoNodes cluster("pair_a", "pair_b");
  svc::Client client(cluster.a.address());
  const svc::JobResult two = client.result(client.submit(coordinator_spec(4, 400)));
  ASSERT_EQ(two.status, svc::JobStatus::kDone);

  EXPECT_EQ(reference.solution_text, two.solution_text);
  EXPECT_EQ(reference.leakage_ua, two.leakage_ua);      // bitwise
  EXPECT_EQ(reference.delay_ps, two.delay_ps);          // bitwise
  EXPECT_EQ(reference.states_explored, two.states_explored);
}

TEST(DistSearch, StateMethodMatchesAcrossNodeCounts) {
  svc::JobResult reference;
  {
    Node solo("solo_state");
    svc::Client client(solo.address());
    reference =
        client.result(client.submit(coordinator_spec(4, 300, "state", 10.0)));
    ASSERT_EQ(reference.status, svc::JobStatus::kDone);
  }
  TwoNodes cluster("state_a", "state_b");
  svc::Client client(cluster.b.address());
  const svc::JobResult two =
      client.result(client.submit(coordinator_spec(4, 300, "state", 10.0)));
  ASSERT_EQ(two.status, svc::JobStatus::kDone);
  EXPECT_EQ(reference.solution_text, two.solution_text);
  EXPECT_EQ(reference.leakage_ua, two.leakage_ua);
  EXPECT_EQ(reference.states_explored, two.states_explored);
}

// c17: 5 inputs, 6 NAND gates -- small enough for exhaustive search.
const char* kC17Bench =
    "INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n"
    "OUTPUT(G22)\nOUTPUT(G23)\n"
    "G10 = NAND(G1, G3)\nG11 = NAND(G3, G6)\nG16 = NAND(G2, G11)\n"
    "G19 = NAND(G11, G7)\nG22 = NAND(G10, G16)\nG23 = NAND(G16, G19)\n";

TEST(DistSearch, SubtreeExactFindsTheFlatExactOptimum) {
  Node node("exact");
  svc::Client client(node.address());

  svc::JobSpec flat;
  flat.bench_text = kC17Bench;
  flat.method = "exact";
  flat.time_limit_s = 60.0;
  svc::JobSpec split = flat;
  split.subtrees = 4;

  const svc::JobResult flat_result = client.result(client.submit(flat));
  const svc::JobResult split_result = client.result(client.submit(split));
  ASSERT_EQ(flat_result.status, svc::JobStatus::kDone);
  ASSERT_EQ(split_result.status, svc::JobStatus::kDone);
  // Exhaustive search from any partition of the state space reaches the
  // same optimum (the incumbent value is unique even if tied configs are
  // broken differently).
  EXPECT_NEAR(split_result.leakage_ua, flat_result.leakage_ua,
              1e-12 * flat_result.leakage_ua);
}

// ---------------------------------------------------------------------------
// Cluster-wide dedup and degradation
// ---------------------------------------------------------------------------

TEST(DistCache, IdenticalConcurrentJobsSolveOnceClusterWide) {
  TwoNodes cluster("dedup_a", "dedup_b");
  svc::JobSpec spec;
  spec.circuit = "c432";
  spec.method = "heu2";
  spec.penalty_percent = 9.0;
  spec.time_limit_s = 100.0;
  spec.max_leaves = 1200;  // long enough that the submits overlap

  svc::JobResult from_a, from_b;
  std::thread via_a([&] {
    svc::Client client(cluster.a.address());
    from_a = client.result(client.submit(spec));
  });
  std::thread via_b([&] {
    svc::Client client(cluster.b.address());
    from_b = client.result(client.submit(spec));
  });
  via_a.join();
  via_b.join();

  ASSERT_EQ(from_a.status, svc::JobStatus::kDone);
  ASSERT_EQ(from_b.status, svc::JobStatus::kDone);
  EXPECT_EQ(from_a.leakage_ua, from_b.leakage_ua);
  EXPECT_EQ(from_a.solution_text, from_b.solution_text);
  // Exactly one node actually solved; the other was served by the ring
  // (remote hit, or local inflight wait when both landed on the owner).
  const int solves = (from_a.cache_hit ? 0 : 1) + (from_b.cache_hit ? 0 : 1);
  EXPECT_EQ(solves, 1);
}

TEST(DistCache, UnreachablePeerDegradesToLocalSolves) {
  Node node("deadpeer");
  // Reserve a port nobody listens on (released immediately).
  int dead_port = 0;
  {
    net::Listener probe = net::Listener::tcp("127.0.0.1", 0);
    dead_port = probe.port();
  }
  svc::ClusterOptions options;
  options.members = {node.tcp(), "127.0.0.1:" + std::to_string(dead_port)};
  options.self = node.tcp();
  options.connect_attempts = 1;  // fail fast; degradation is the point
  svc::Cluster cluster(options);
  node.scheduler.set_cluster(&cluster);

  svc::Client client(node.address());
  // Enough distinct keys that some are ring-owned by the dead member.
  std::vector<std::uint64_t> jobs;
  for (int penalty = 1; penalty <= 12; ++penalty) {
    svc::JobSpec spec;
    spec.circuit = "c432";
    spec.method = "heu1";
    spec.penalty_percent = penalty;
    jobs.push_back(client.submit(spec));
  }
  for (std::uint64_t job : jobs) {
    EXPECT_EQ(client.result(job).status, svc::JobStatus::kDone);
  }

  // A coordinator job also succeeds: the dead peer's dispatcher retires
  // and the inline drain finishes every subtree.
  const svc::JobResult coordinated =
      client.result(client.submit(coordinator_spec(4, 200)));
  EXPECT_EQ(coordinated.status, svc::JobStatus::kDone);

  const Json stats = client.stats();
  const Json* dist = stats.get("dist_cache");
  ASSERT_NE(dist, nullptr);
  EXPECT_GE(dist->get("peer_failures")->as_int(), 1);

  node.shutdown();  // before `cluster` leaves scope
}

// ---------------------------------------------------------------------------
// Dynamic membership and the failure detector
// ---------------------------------------------------------------------------

TEST(DistCluster, ReloadSwapsRingAndBumpsEpoch) {
  svc::ClusterOptions options;
  options.members = {"10.0.0.1:7000", "10.0.0.2:7000"};
  options.self = "10.0.0.1:7000";
  svc::Cluster cluster(options);
  EXPECT_EQ(cluster.epoch(), 1u);
  EXPECT_EQ(cluster.size(), 2u);

  // Adding a member changes the set: new ring, new epoch.
  EXPECT_TRUE(cluster.reload({"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}));
  EXPECT_EQ(cluster.epoch(), 2u);
  EXPECT_EQ(cluster.size(), 3u);

  // Reloading the identical set (any order) is a no-op: no epoch churn.
  EXPECT_FALSE(cluster.reload({"10.0.0.3:7000", "10.0.0.1:7000", "10.0.0.2:7000"}));
  EXPECT_EQ(cluster.epoch(), 2u);

  // Dropping self is invalid; the ring is untouched.
  EXPECT_THROW(cluster.reload({"10.0.0.2:7000", "10.0.0.3:7000"}), ContractError);
  EXPECT_EQ(cluster.size(), 3u);
}

TEST(DistCluster, HeartbeatMarksKilledPeerDownThenFailsFast) {
  Node a("hb_a"), b("hb_b");
  svc::ClusterOptions options;
  options.members = {a.tcp(), b.tcp()};
  options.self = a.tcp();
  options.connect_attempts = 1;
  options.heartbeat_interval_s = 0.05;
  options.suspect_after_s = 0.15;
  options.down_after_s = 0.5;
  svc::Cluster cluster(options);
  cluster.start();

  // First successful ping: the peer reports up.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.health(b.tcp()) != svc::PeerHealth::kUp &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(cluster.health(b.tcp()), svc::PeerHealth::kUp);

  // Kill the peer; the detector must degrade it to down on its own.
  b.shutdown();
  while (cluster.health(b.tcp()) != svc::PeerHealth::kDown &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(cluster.health(b.tcp()), svc::PeerHealth::kDown);

  // Requests to a down peer fail fast instead of burning a connect timeout.
  Json ping = Json::object();
  ping.set("cmd", "ping");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(cluster.request(b.tcp(), ping), Error);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 1.0);

  cluster.stop();
  a.shutdown();
}

// A crashed inflight owner must never wedge a caller: the first
// fetch_or_lock takes the inflight lock and then "dies" (never publishes,
// never abandons); the second passes wait_s and must come back a duplicate
// solver within that bound instead of parking forever.
TEST(DistCache, CrashedOwnerFetchOrLockDegradesWithinBoundedWait) {
  Node node("boundedwait");
  svc::Client owner(node.address());
  svc::Client caller(node.address());

  Json lock = Json::object();
  lock.set("cmd", "cache_fetch_or_lock");
  lock.set("key", "crashed_owner_key");
  const Json granted = owner.request(lock);
  ASSERT_TRUE(granted.get("ok")->as_bool(false));
  ASSERT_FALSE(granted.get("hit")->as_bool(true));  // miss -> lock granted

  Json bounded = lock;
  bounded.set("wait_s", 0.3);
  const auto t0 = std::chrono::steady_clock::now();
  const Json reply = caller.request(bounded);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ASSERT_TRUE(reply.get("ok")->as_bool(false));
  EXPECT_FALSE(reply.get("hit")->as_bool(true));  // degraded to duplicate solve
  EXPECT_GE(elapsed, 0.2);  // it did wait for the owner first
  EXPECT_LT(elapsed, 5.0);  // ... but came back near the bound, not never
}

// Regression: an aborted handshake (connection reset between SYN and the
// first frame) must not tear down the accept loop -- inject the reset with
// a fail point, then prove the server still answers.
TEST(DistNet, InjectedAcceptResetKeepsListenerServing) {
  if (!FailPoints::compiled_in()) {
    GTEST_SKIP() << "fail points compiled out (SVTOX_FAILPOINTS=0)";
  }
  Node node("acceptreset");
  FailPoints::instance().configure("net_accept=reset-after*2");
  // Two doomed handshakes: the server accepts and immediately resets each.
  for (int i = 0; i < 2; ++i) {
    net::Conn doomed(net::connect_tcp("127.0.0.1", node.server.tcp_port(), 2.0));
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (FailPoints::instance().triggers("net_accept") < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(FailPoints::instance().triggers("net_accept"), 2u);
  FailPoints::instance().clear();

  // The listener survived: a normal client round-trips fine.
  svc::Client client(node.address());
  const Json stats = client.stats();
  ASSERT_NE(stats.get("jobs"), nullptr);
}

}  // namespace
}  // namespace svtox
