#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "sim/sim.hpp"
#include "util/error.hpp"

namespace svtox::netlist {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

Netlist two_gate_circuit() {
  // y = NAND2(a, b); z = INV(y)  => z = a AND b.
  Netlist n("tiny", &lib());
  const int a = n.add_signal("a");
  const int b = n.add_signal("b");
  const int y = n.add_signal("y");
  const int z = n.add_signal("z");
  n.mark_input(a);
  n.mark_input(b);
  n.mark_output(z);
  n.add_gate("g0", "NAND2", {a, b}, y);
  n.add_gate("g1", "INV", {y}, z);
  n.finalize();
  return n;
}

TEST(Netlist, BasicConstructionAndQueries) {
  const Netlist n = two_gate_circuit();
  EXPECT_EQ(n.num_signals(), 4);
  EXPECT_EQ(n.num_gates(), 2);
  EXPECT_EQ(n.num_inputs(), 2);
  EXPECT_EQ(n.num_outputs(), 1);
  EXPECT_EQ(n.depth(), 2);
  EXPECT_EQ(n.driver(0), -1);
  EXPECT_EQ(n.driver(2), 0);
  EXPECT_EQ(n.find_signal("z"), 3);
  EXPECT_EQ(n.find_signal("nope"), -1);
  ASSERT_EQ(n.sinks(2).size(), 1u);
  EXPECT_EQ(n.sinks(2)[0].gate, 1);
  EXPECT_TRUE(n.is_primary_output(3));
  EXPECT_FALSE(n.is_primary_output(2));
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  const Netlist n = two_gate_circuit();
  const auto& order = n.topological_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(n.gate_level(0), 1);
  EXPECT_EQ(n.gate_level(1), 2);
}

TEST(Netlist, SignalLoadIncludesSinksWireAndPoLoad) {
  const Netlist n = two_gate_circuit();
  const model::TechParams& tech = lib().tech();
  // Signal y drives the inverter input plus one wire segment.
  const double inv_cap = lib().cell("INV").topology().pin_capacitance_ff(0);
  EXPECT_NEAR(n.signal_load_ff(2), inv_cap + tech.wire_ff_per_fanout, 1e-9);
  // Signal z is a primary output with no sinks.
  EXPECT_NEAR(n.signal_load_ff(3), tech.default_po_load_ff, 1e-9);
}

TEST(Netlist, RejectsMultipleDrivers) {
  Netlist n("bad", &lib());
  const int a = n.add_signal("a");
  const int y = n.add_signal("y");
  n.mark_input(a);
  n.add_gate("g0", "INV", {a}, y);
  n.add_gate("g1", "INV", {a}, y);
  EXPECT_THROW(n.finalize(), ContractError);
}

TEST(Netlist, RejectsUndrivenSignal) {
  Netlist n("bad", &lib());
  const int a = n.add_signal("a");
  const int y = n.add_signal("y");
  (void)a;
  n.add_signal("floating");
  n.mark_input(a);
  n.add_gate("g0", "INV", {a}, y);
  EXPECT_THROW(n.finalize(), ContractError);
}

TEST(Netlist, RejectsCombinationalCycle) {
  Netlist n("bad", &lib());
  const int a = n.add_signal("a");
  const int x = n.add_signal("x");
  const int y = n.add_signal("y");
  n.mark_input(a);
  n.add_gate("g0", "NAND2", {a, y}, x);
  n.add_gate("g1", "INV", {x}, y);
  EXPECT_THROW(n.finalize(), ContractError);
}

TEST(Netlist, RejectsDrivenPrimaryInput) {
  Netlist n("bad", &lib());
  const int a = n.add_signal("a");
  const int y = n.add_signal("y");
  n.mark_input(a);
  n.mark_input(y);
  n.add_gate("g0", "INV", {a}, y);
  EXPECT_THROW(n.finalize(), ContractError);
}

TEST(Netlist, RejectsArityMismatch) {
  Netlist n("bad", &lib());
  const int a = n.add_signal("a");
  const int y = n.add_signal("y");
  n.mark_input(a);
  EXPECT_THROW(n.add_gate("g0", "NAND2", {a}, y), ContractError);
}

TEST(Netlist, RebindPreservesStructure) {
  const Netlist n = two_gate_circuit();
  liberty::LibraryOptions options;
  options.variant_options.vt_only = true;
  const liberty::Library vt = liberty::Library::build(model::TechParams::nominal(), options);
  const Netlist r = rebind(n, vt);
  EXPECT_EQ(r.num_gates(), n.num_gates());
  EXPECT_EQ(r.num_inputs(), n.num_inputs());
  EXPECT_EQ(&r.library(), &vt);
  EXPECT_EQ(r.cell_of(0).name(), "NAND2");
  // Identical simulation behaviour.
  for (std::uint32_t v = 0; v < 4; ++v) {
    const std::vector<bool> in = {(v & 1) != 0, (v & 2) != 0};
    EXPECT_EQ(sim::simulate(n, in).back(), sim::simulate(r, in).back());
  }
}

TEST(BenchIo, ParsesAllPrimitivesAndMatchesTruth) {
  const std::string text = R"(
# exhaustive primitive test
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o_not)
OUTPUT(o_buf)
OUTPUT(o_and)
OUTPUT(o_or)
OUTPUT(o_nand)
OUTPUT(o_nor)
OUTPUT(o_xor)
OUTPUT(o_xnor)
o_not = NOT(a)
o_buf = BUFF(a)
o_and = AND(a, b, c)
o_or = OR(a, b, c)
o_nand = NAND(a, b)
o_nor = NOR(a, b)
o_xor = XOR(a, b, c)
o_xnor = XNOR(a, b)
)";
  const Netlist n = read_bench(text, "prim", lib());
  EXPECT_EQ(n.num_inputs(), 3);
  EXPECT_EQ(n.num_outputs(), 8);

  for (std::uint32_t v = 0; v < 8; ++v) {
    const bool a = v & 1, b = v & 2, c = v & 4;
    const std::vector<bool> in = {a, b, c};
    const std::vector<bool> values = sim::simulate(n, in);
    auto out = [&](const char* name) {
      return values[static_cast<std::size_t>(n.find_signal(name))];
    };
    EXPECT_EQ(out("o_not"), !a) << v;
    EXPECT_EQ(out("o_buf"), a) << v;
    EXPECT_EQ(out("o_and"), a && b && c) << v;
    EXPECT_EQ(out("o_or"), a || b || c) << v;
    EXPECT_EQ(out("o_nand"), !(a && b)) << v;
    EXPECT_EQ(out("o_nor"), !(a || b)) << v;
    EXPECT_EQ(out("o_xor"), a ^ b ^ c) << v;
    EXPECT_EQ(out("o_xnor"), !(a ^ b)) << v;
  }
}

TEST(BenchIo, MapsWideGatesToTrees) {
  // A 7-input NAND needs AND subtrees; function must be preserved.
  std::string text = "INPUT(a0)\n";
  for (int i = 1; i < 7; ++i) text += "INPUT(a" + std::to_string(i) + ")\n";
  text += "OUTPUT(y)\ny = NAND(a0, a1, a2, a3, a4, a5, a6)\n";
  const Netlist n = read_bench(text, "wide", lib());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> in(7);
    bool all = true;
    for (int i = 0; i < 7; ++i) {
      in[static_cast<std::size_t>(i)] = (trial * 7 + i) % 3 != 0;
      all = all && in[static_cast<std::size_t>(i)];
    }
    const auto values = sim::simulate(n, in);
    EXPECT_EQ(values[static_cast<std::size_t>(n.find_signal("y"))], !all);
  }
}

TEST(BenchIo, RejectsMalformedInput) {
  EXPECT_THROW(read_bench("y = FROB(a)\nINPUT(a)\nOUTPUT(y)", "bad", lib()), ParseError);
  EXPECT_THROW(read_bench("INPUT(\n", "bad", lib()), ParseError);
  EXPECT_THROW(read_bench("y NAND(a, b)", "bad", lib()), ParseError);
  EXPECT_THROW(read_bench("y = NAND()", "bad", lib()), ParseError);
}

TEST(BenchIo, WriteReadRoundTripPreservesFunction) {
  const Netlist original = two_gate_circuit();
  const std::string text = write_bench(original);
  const Netlist back = read_bench(text, "tiny", lib());
  EXPECT_EQ(back.num_inputs(), original.num_inputs());
  for (std::uint32_t v = 0; v < 4; ++v) {
    const std::vector<bool> in = {(v & 1) != 0, (v & 2) != 0};
    const auto a = sim::simulate(original, in);
    const auto b = sim::simulate(back, in);
    EXPECT_EQ(a[static_cast<std::size_t>(original.find_signal("z"))],
              b[static_cast<std::size_t>(back.find_signal("z"))]);
  }
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const std::string text = "# header\n\nINPUT(a)\n  # indented comment\nOUTPUT(y)\ny = NOT(a)\n";
  const Netlist n = read_bench(text, "c", lib());
  EXPECT_EQ(n.num_gates(), 1);
}

}  // namespace
}  // namespace svtox::netlist
