// Tests of the unknown-state strawman and the breakdown report -- the
// quantitative side of the paper's motivation.
#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "opt/unknown_state.hpp"
#include "report/breakdown.hpp"
#include "util/rng.hpp"

namespace svtox {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

opt::UnknownStateOptions quick() {
  opt::UnknownStateOptions options;
  options.probability_vectors = 512;
  return options;
}

TEST(UnknownState, RespectsDelayConstraint) {
  const auto n = netlist::random_circuit(lib(), "us1", 10, 80, 81);
  for (double penalty : {0.05, 0.25}) {
    const opt::AssignmentProblem problem(n, penalty);
    const auto result = opt::assign_unknown_state(problem, quick());
    EXPECT_LE(result.delay_ps, problem.constraint_ps() + 1e-3) << penalty;
  }
}

TEST(UnknownState, ReducesAverageLeakage) {
  const auto n = netlist::random_circuit(lib(), "us2", 12, 100, 82);
  const opt::AssignmentProblem problem(n, 0.25);
  const auto result = opt::assign_unknown_state(problem, quick());
  const double base =
      sim::monte_carlo_leakage(n, sim::fastest_config(n), 512, 2005).mean_na;
  EXPECT_LT(result.average_leakage_na, base);
}

TEST(UnknownState, KnownStateBeatsUnknownState) {
  // The paper's motivation, measured: for the same delay budget, knowing
  // the standby state buys a substantially lower standby leakage than the
  // best unknown-state assignment achieves on average.
  for (std::uint64_t seed : {83ULL, 84ULL}) {
    const auto n = netlist::random_circuit(lib(), "us3", 12, 100, seed);
    const opt::AssignmentProblem problem(n, 0.05);
    const auto unknown = opt::assign_unknown_state(problem, quick());
    const auto known = opt::heuristic1(problem);
    EXPECT_LT(known.leakage_na, unknown.average_leakage_na) << seed;
  }
}

TEST(UnknownState, ExpectationTracksMonteCarlo) {
  const auto n = netlist::random_circuit(lib(), "us4", 10, 70, 85);
  const opt::AssignmentProblem problem(n, 0.10);
  const auto result = opt::assign_unknown_state(problem, quick());
  // Per-gate independence makes the expectation approximate, but it must
  // land in the same regime as the measured average.
  EXPECT_NEAR(result.expected_leakage_na / result.average_leakage_na, 1.0, 0.35);
}

TEST(Breakdown, PreOptimizationIgateFractionNearPaper) {
  // Paper Sec. 2: gate tunneling is ~36% of total leakage at the nominal
  // corner; check at circuit level under a random state.
  const auto n = netlist::random_circuit(lib(), "bd1", 12, 120, 86);
  Rng rng(86);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
  const auto report =
      report::leakage_breakdown(n, sim::fastest_config(n), in);
  EXPECT_GT(report.total.igate_fraction(), 0.20);
  EXPECT_LT(report.total.igate_fraction(), 0.50);
}

TEST(Breakdown, TotalsMatchLibraryTables) {
  // The transistor-level recomputation must agree with the per-gate table
  // sum the optimizer uses.
  const auto n = netlist::random_circuit(lib(), "bd2", 10, 80, 87);
  const auto config = sim::fastest_config(n);
  Rng rng(87);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
  const auto report = report::leakage_breakdown(n, config, in);
  EXPECT_NEAR(report.total.total_na(), sim::circuit_leakage_na(n, config, in), 1e-6);
}

TEST(Breakdown, OptimizedSolutionSuppressesBothComponents) {
  // After the proposed assignment, *both* Isub and Igate must have dropped
  // -- the whole point of the dual-knob method.
  const auto n = netlist::random_circuit(lib(), "bd3", 12, 100, 88);
  const opt::AssignmentProblem problem(n, 0.25);
  const auto sol = opt::heuristic1(problem);

  const auto before =
      report::leakage_breakdown(n, sim::fastest_config(n), sol.sleep_vector);
  const auto after = report::leakage_breakdown(n, sol.config, sol.sleep_vector);
  EXPECT_LT(after.total.isub_na, 0.5 * before.total.isub_na);
  EXPECT_LT(after.total.igate_na, 0.5 * before.total.igate_na);
}

TEST(Breakdown, TopGatesSortedAndBounded) {
  const auto n = netlist::random_circuit(lib(), "bd4", 10, 60, 89);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()), true);
  const auto report = report::leakage_breakdown(n, sim::fastest_config(n), in, 5);
  ASSERT_EQ(report.top_gates.size(), 5u);
  for (std::size_t i = 1; i < report.top_gates.size(); ++i) {
    EXPECT_GE(report.top_gates[i - 1].second.total_na(),
              report.top_gates[i].second.total_na());
  }
}

TEST(Breakdown, RenderContainsKeyLines) {
  const auto n = netlist::random_circuit(lib(), "bd5", 8, 40, 90);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()), false);
  const auto report = report::leakage_breakdown(n, sim::fastest_config(n), in);
  const std::string text = report::render_breakdown(n, report);
  EXPECT_NE(text.find("leakage breakdown"), std::string::npos);
  EXPECT_NE(text.find("Isub"), std::string::npos);
  EXPECT_NE(text.find("Igate"), std::string::npos);
  EXPECT_NE(text.find("leakiest gates"), std::string::npos);
}

}  // namespace
}  // namespace svtox
