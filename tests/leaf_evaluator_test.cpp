// Property tests for the amortized leaf-evaluation engine: the 2-valued
// incremental simulator must track the from-scratch simulator through
// arbitrary set/undo sequences, a LeafEvaluator's incremental contexts and
// solutions must be bit-identical to the from-scratch gate_assign entry
// points after any sync history, and the parallel probe sweep must return
// the same solution for any thread count.
#include <gtest/gtest.h>

#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "opt/gate_assign.hpp"
#include "opt/leaf_evaluator.hpp"
#include "opt/state_search.hpp"
#include "sim/incremental.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::opt {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist random_net(std::uint64_t seed, int inputs = 10, int gates = 60) {
  return netlist::random_circuit(lib(), "leaf_r", inputs, gates, seed);
}

std::vector<bool> random_vector(Rng& rng, int bits) {
  std::vector<bool> vector(static_cast<std::size_t>(bits));
  for (std::size_t i = 0; i < vector.size(); ++i) vector[i] = rng.next_bool();
  return vector;
}

void expect_config_eq(const sim::CircuitConfig& a, const sim::CircuitConfig& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a[g].variant, b[g].variant) << "gate " << g;
    EXPECT_EQ(a[g].mapping.canonical_state, b[g].mapping.canonical_state)
        << "gate " << g;
    EXPECT_EQ(a[g].mapping.logical_to_physical, b[g].mapping.logical_to_physical)
        << "gate " << g;
  }
}

void expect_solution_eq(const Solution& a, const Solution& b) {
  EXPECT_EQ(a.leakage_na, b.leakage_na);  // bitwise, not approximate
  EXPECT_EQ(a.delay_ps, b.delay_ps);
  EXPECT_EQ(a.sleep_vector, b.sleep_vector);
  EXPECT_EQ(a.states_explored, b.states_explored);
  expect_config_eq(a.config, b.config);
}

TEST(IncrementalBoolSim, MatchesFullResimulationUnderRandomSetUndo) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto n = random_net(seed, 8 + static_cast<int>(seed),
                              50 + 20 * static_cast<int>(seed));
    sim::IncrementalBoolSim inc(n);
    std::vector<bool> reference(static_cast<std::size_t>(n.num_control_points()),
                                false);
    std::vector<std::pair<int, bool>> stack;  // (index, previous) per frame

    Rng rng(seed * 131);
    for (int step = 0; step < 200; ++step) {
      const bool do_undo = !stack.empty() && rng.next_below(3) == 0;
      if (do_undo) {
        reference[static_cast<std::size_t>(stack.back().first)] = stack.back().second;
        stack.pop_back();
        inc.undo();
      } else {
        const int index = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(n.num_control_points())));
        const bool value = rng.next_bool();
        stack.emplace_back(index, reference[static_cast<std::size_t>(index)]);
        reference[static_cast<std::size_t>(index)] = value;
        inc.set_input(index, value);
      }
      ASSERT_EQ(inc.input_values(), reference) << "seed " << seed << " step " << step;
      ASSERT_EQ(inc.values(), sim::simulate(n, reference))
          << "seed " << seed << " step " << step;
    }
    // Full unwind returns to the all-zero start.
    while (!stack.empty()) {
      stack.pop_back();
      inc.undo();
    }
    EXPECT_EQ(inc.values(),
              sim::simulate(n, std::vector<bool>(
                                   static_cast<std::size_t>(n.num_control_points()),
                                   false)));
  }
}

TEST(IncrementalBoolSim, ReportsEveryGateWhoseLocalStateChanged) {
  const auto n = random_net(5, 12, 80);
  sim::IncrementalBoolSim inc(n);
  std::vector<bool> previous = inc.values();
  Rng rng(77);
  for (int step = 0; step < 60; ++step) {
    const int index = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n.num_control_points())));
    std::vector<int> changed;
    inc.set_input(index, rng.next_bool(), &changed);

    std::vector<bool> reported(static_cast<std::size_t>(n.num_gates()), false);
    for (int g : changed) {
      EXPECT_FALSE(reported[static_cast<std::size_t>(g)]) << "duplicate gate " << g;
      reported[static_cast<std::size_t>(g)] = true;
    }
    for (int g = 0; g < n.num_gates(); ++g) {
      if (sim::local_state(n, inc.values(), g) != sim::local_state(n, previous, g)) {
        EXPECT_TRUE(reported[static_cast<std::size_t>(g)])
            << "gate " << g << " changed but was not reported at step " << step;
      }
    }
    previous = inc.values();
  }
}

TEST(IncrementalBoolSim, CommitDropsFramesAndKeepsTheValuation) {
  const auto n = random_net(9, 10, 60);
  sim::IncrementalBoolSim inc(n);
  Rng rng(9);
  std::vector<bool> reference(static_cast<std::size_t>(n.num_control_points()), false);
  for (int step = 0; step < 20; ++step) {
    const int index = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(n.num_control_points())));
    const bool value = rng.next_bool();
    reference[static_cast<std::size_t>(index)] = value;
    inc.set_input(index, value);
  }
  EXPECT_EQ(inc.frames(), 20);
  const std::vector<bool> values = inc.values();
  inc.commit();
  EXPECT_EQ(inc.frames(), 0);
  EXPECT_EQ(inc.values(), values);
  EXPECT_EQ(inc.input_values(), reference);
  EXPECT_THROW(inc.undo(), ContractError);
  // The engine keeps tracking the reference simulator after the commit.
  reference[0] = !reference[0];
  inc.set_input(0, reference[0]);
  EXPECT_EQ(inc.values(), sim::simulate(n, reference));
}

TEST(LeafEvaluator, ContextsMatchBuildContextsAfterRandomSyncs) {
  for (const bool pin_reorder : {true, false}) {
    const auto n = random_net(11, 12, 90);
    ProblemOptions popts;
    popts.use_pin_reorder = pin_reorder;
    const AssignmentProblem problem(n, 0.05, popts);
    LeafEvaluator evaluator(problem);
    Rng rng(1234);
    for (int step = 0; step < 40; ++step) {
      const std::vector<bool> vector = random_vector(rng, n.num_control_points());
      evaluator.sync(vector);
      const std::vector<GateContext> reference = build_contexts(problem, vector);
      ASSERT_EQ(evaluator.contexts().size(), reference.size());
      for (std::size_t g = 0; g < reference.size(); ++g) {
        const GateContext& got = evaluator.contexts()[g];
        const GateContext& want = reference[g];
        ASSERT_EQ(got.raw_state, want.raw_state)
            << "gate " << g << " step " << step << " reorder " << pin_reorder;
        ASSERT_EQ(got.canonical_state, want.canonical_state)
            << "gate " << g << " step " << step << " reorder " << pin_reorder;
        ASSERT_EQ(got.mapping.canonical_state, want.mapping.canonical_state);
        ASSERT_EQ(got.mapping.logical_to_physical, want.mapping.logical_to_physical);
      }
    }
  }
}

TEST(LeafEvaluator, GreedyIsBitIdenticalToFromScratch) {
  for (const bool pin_reorder : {true, false}) {
    for (std::uint64_t seed : {21ULL, 22ULL}) {
      const auto n = random_net(seed, 10, 70 + 10 * static_cast<int>(seed));
      ProblemOptions popts;
      popts.use_pin_reorder = pin_reorder;
      const AssignmentProblem problem(n, 0.05, popts);
      LeafEvaluator evaluator(problem);
      Rng rng(seed);
      for (const GateOrder order : {GateOrder::kBySavings, GateOrder::kTopological,
                                    GateOrder::kReverseTopological}) {
        for (int step = 0; step < 8; ++step) {
          const std::vector<bool> vector = random_vector(rng, n.num_control_points());
          const Solution amortized = evaluator.evaluate_greedy(vector, order);
          const Solution scratch = assign_gates_greedy(problem, vector, order);
          expect_solution_eq(amortized, scratch);
        }
      }
    }
  }
}

TEST(LeafEvaluator, ExactIsBitIdenticalToFromScratch) {
  const auto n = random_net(31, 6, 16);
  const AssignmentProblem problem(n, 0.10);
  LeafEvaluator evaluator(problem);
  Rng rng(31);
  for (int step = 0; step < 10; ++step) {
    const std::vector<bool> vector = random_vector(rng, n.num_control_points());
    const Solution amortized = evaluator.evaluate_exact(vector);
    const Solution scratch = assign_gates_exact(problem, vector);
    expect_solution_eq(amortized, scratch);
    EXPECT_EQ(amortized.nodes_visited, scratch.nodes_visited);
  }
}

TEST(LeafEvaluator, StateOnlyIsBitIdenticalToFromScratch) {
  const auto n = random_net(41, 14, 120);
  const AssignmentProblem problem(n, 0.05);
  LeafEvaluator evaluator(problem);
  Rng rng(41);
  for (int step = 0; step < 40; ++step) {
    const std::vector<bool> vector = random_vector(rng, n.num_control_points());
    const Solution amortized = evaluator.evaluate_state_only(vector);
    const Solution scratch = evaluate_state_only(problem, vector);
    expect_solution_eq(amortized, scratch);
  }
}

TEST(LeafEvaluator, BundledCircuitsAreBitIdentical) {
  // Every bundled combinational benchmark, a couple of leaves each: the
  // amortized greedy and state-only evaluations must match the
  // from-scratch entry points bitwise.
  for (const auto& spec : netlist::benchmark_suite()) {
    if (spec.name == "alu64") continue;  // largest; covered by c6288/c7552
    const netlist::Netlist n = netlist::make_benchmark(spec.name, lib());
    const AssignmentProblem problem(n, 0.05);
    LeafEvaluator evaluator(problem);
    Rng rng(7);
    for (int step = 0; step < 2; ++step) {
      const std::vector<bool> vector = random_vector(rng, n.num_control_points());
      expect_solution_eq(evaluator.evaluate_greedy(vector),
                         assign_gates_greedy(problem, vector));
      expect_solution_eq(evaluator.evaluate_state_only(vector),
                         evaluate_state_only(problem, vector));
    }
  }
}

TEST(ParallelSearch, ProbeSweepIsThreadCountInvariant) {
  const auto n = random_net(51, 12, 80);
  const AssignmentProblem problem(n, 0.05);
  SearchOptions options;
  options.time_limit_s = 60.0;  // generous: every probe completes
  options.max_leaves = 1;       // isolate the probe sweep from the DFS
  options.random_probes = 64;

  options.threads = 1;
  const Solution serial = state_only_search(problem, options);
  ASSERT_EQ(serial.states_explored,
            1u + static_cast<std::uint64_t>(options.random_probes));
  for (int threads : {2, 4}) {
    options.threads = threads;
    const Solution parallel = state_only_search(problem, options);
    expect_solution_eq(parallel, serial);
  }

  // The greedy-leaf (Heu2-style) sweep is thread-count invariant too.
  // Small enough that the 60s limit makes the tree search exhaustive, so
  // the combined tree + probe result is fully deterministic.
  const auto n2 = random_net(52, 9, 50);
  const AssignmentProblem problem2(n2, 0.05);
  options.max_leaves = 0;
  options.threads = 1;
  const Solution greedy_serial = heuristic2(problem2, options);
  for (int threads : {2, 4}) {
    options.threads = threads;
    const Solution greedy_parallel = heuristic2(problem2, options);
    EXPECT_EQ(greedy_parallel.leakage_na, greedy_serial.leakage_na);
    EXPECT_EQ(greedy_parallel.sleep_vector, greedy_serial.sleep_vector);
    EXPECT_EQ(greedy_parallel.delay_ps, greedy_serial.delay_ps);
    expect_config_eq(greedy_parallel.config, greedy_serial.config);
  }
}

}  // namespace
}  // namespace svtox::opt
