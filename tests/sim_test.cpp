#include <gtest/gtest.h>

#include "netlist/generators.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::sim {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist random_net(std::uint64_t seed, int inputs = 12, int gates = 60) {
  return netlist::random_circuit(lib(), "sim_r", inputs, gates, seed);
}

TEST(Simulate, InputCountMismatchThrows) {
  const auto n = random_net(1);
  EXPECT_THROW(simulate(n, std::vector<bool>(3)), ContractError);
}

TEST(Simulate64, AgreesWithScalarSimulation) {
  // Property: every lane of the bit-parallel simulator matches a scalar run.
  for (std::uint64_t seed : {10ULL, 20ULL, 30ULL}) {
    const auto n = random_net(seed);
    Rng rng(seed * 77);
    std::vector<std::uint64_t> words(static_cast<std::size_t>(n.num_inputs()));
    for (auto& w : words) w = rng.next_u64();
    const auto packed = simulate64(n, words);

    for (int lane : {0, 1, 31, 63}) {
      std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
      for (int i = 0; i < n.num_inputs(); ++i) in[i] = (words[i] >> lane) & 1;
      const auto scalar = simulate(n, in);
      for (int s = 0; s < n.num_signals(); ++s) {
        EXPECT_EQ(scalar[static_cast<std::size_t>(s)],
                  static_cast<bool>((packed[static_cast<std::size_t>(s)] >> lane) & 1))
            << "seed " << seed << " lane " << lane << " signal " << s;
      }
    }
  }
}

TEST(LocalState, ExtractsPinValues) {
  const auto n = random_net(5);
  Rng rng(5);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
  const auto values = simulate(n, in);
  for (int g = 0; g < n.num_gates(); ++g) {
    const std::uint32_t state = local_state(n, values, g);
    for (std::size_t pin = 0; pin < n.gate(g).fanins.size(); ++pin) {
      EXPECT_EQ((state >> pin) & 1u,
                values[static_cast<std::size_t>(n.gate(g).fanins[pin])] ? 1u : 0u);
    }
  }
}

TEST(Ternary, FullyAssignedMatchesTwoValued) {
  const auto n = random_net(7);
  Rng rng(7);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
  std::vector<Tri> tin(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = rng.next_bool();
    tin[i] = tri_of(in[i]);
  }
  const auto binary = simulate(n, in);
  const auto ternary = simulate_ternary(n, tin);
  for (int s = 0; s < n.num_signals(); ++s) {
    EXPECT_EQ(ternary[static_cast<std::size_t>(s)],
              tri_of(binary[static_cast<std::size_t>(s)]));
  }
}

TEST(Ternary, AllUnknownInputsGiveMostlyUnknownOutputs) {
  const auto n = random_net(9);
  const auto values =
      simulate_ternary(n, std::vector<Tri>(static_cast<std::size_t>(n.num_inputs()),
                                           Tri::kX));
  // Primary inputs stay X.
  for (int s : n.primary_inputs()) {
    EXPECT_EQ(values[static_cast<std::size_t>(s)], Tri::kX);
  }
}

TEST(Ternary, SoundnessAgainstAllCompletions) {
  // Property: whenever ternary simulation reports a definite signal value
  // for a partial input assignment, every completion agrees with it.
  const auto n = random_net(11, 8, 40);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Tri> tin(static_cast<std::size_t>(n.num_inputs()));
    std::vector<int> unknown;
    for (std::size_t i = 0; i < tin.size(); ++i) {
      const int roll = static_cast<int>(rng.next_below(3));
      tin[i] = roll == 0 ? Tri::kZero : roll == 1 ? Tri::kOne : Tri::kX;
      if (tin[i] == Tri::kX) unknown.push_back(static_cast<int>(i));
    }
    if (unknown.size() > 6) continue;  // keep the completion set small
    const auto ternary = simulate_ternary(n, tin);

    for (std::uint32_t mask = 0; mask < (1u << unknown.size()); ++mask) {
      std::vector<bool> in(tin.size());
      for (std::size_t i = 0; i < tin.size(); ++i) in[i] = tin[i] == Tri::kOne;
      for (std::size_t u = 0; u < unknown.size(); ++u) {
        in[static_cast<std::size_t>(unknown[u])] = (mask >> u) & 1;
      }
      const auto binary = simulate(n, in);
      for (int s = 0; s < n.num_signals(); ++s) {
        if (ternary[static_cast<std::size_t>(s)] == Tri::kX) continue;
        EXPECT_EQ(tri_of(binary[static_cast<std::size_t>(s)]),
                  ternary[static_cast<std::size_t>(s)])
            << "signal " << s << " completion " << mask;
      }
    }
  }
}

TEST(CompatibleStates, EnumeratesExactly) {
  EXPECT_EQ(compatible_states({Tri::kZero, Tri::kOne}),
            (std::vector<std::uint32_t>{0b10}));
  const auto two_x = compatible_states({Tri::kX, Tri::kX});
  EXPECT_EQ(two_x.size(), 4u);
  const auto mixed = compatible_states({Tri::kOne, Tri::kX, Tri::kZero});
  ASSERT_EQ(mixed.size(), 2u);
  for (std::uint32_t s : mixed) {
    EXPECT_TRUE(s & 1u);
    EXPECT_FALSE(s & 4u);
  }
}

TEST(LeakageEval, FastestConfigUsesFastestVariants) {
  const auto n = random_net(13);
  const CircuitConfig config = fastest_config(n);
  for (int g = 0; g < n.num_gates(); ++g) {
    EXPECT_EQ(config[static_cast<std::size_t>(g)].variant,
              n.cell_of(g).fastest_variant());
  }
}

TEST(LeakageEval, CircuitLeakageIsSumOfGateTables) {
  const auto n = random_net(15);
  const CircuitConfig config = fastest_config(n);
  Rng rng(15);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
  const auto values = simulate(n, in);

  double expected = 0.0;
  for (int g = 0; g < n.num_gates(); ++g) {
    expected += n.cell_of(g).variant(n.cell_of(g).fastest_variant())
                    .leakage_na[local_state(n, values, g)];
  }
  EXPECT_NEAR(circuit_leakage_na(n, config, in), expected, 1e-9);
}

TEST(LeakageEval, PinReorderingAtSleepStateNeverHurts) {
  // The paper's Fig. 2(d)/(e) benefit: canonicalizing every gate's pins at
  // the applied input state can only reduce leakage (stacked ON devices
  // move above OFF devices, suppressing their tunneling), and on a random
  // circuit it strictly helps.
  const auto n = random_net(17);
  CircuitConfig config = fastest_config(n);
  Rng rng(17);
  std::vector<bool> in(static_cast<std::size_t>(n.num_inputs()));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
  const double before = circuit_leakage_na(n, config, in);

  const auto values = simulate(n, in);
  for (int g = 0; g < n.num_gates(); ++g) {
    config[static_cast<std::size_t>(g)].mapping =
        n.cell_of(g).canonicalize(local_state(n, values, g));
  }
  const double after = circuit_leakage_na(n, config, in);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_LT(after, before);  // strict on this circuit: reordering pays
}

TEST(MonteCarlo, DeterministicInSeed) {
  const auto n = random_net(19);
  const CircuitConfig config = fastest_config(n);
  const auto a = monte_carlo_leakage(n, config, 256, 99);
  const auto b = monte_carlo_leakage(n, config, 256, 99);
  EXPECT_DOUBLE_EQ(a.mean_na, b.mean_na);
  EXPECT_EQ(a.vectors, 256);
}

TEST(MonteCarlo, MeanWithinObservedRange) {
  const auto n = random_net(21);
  const auto result = monte_carlo_leakage(n, fastest_config(n), 500, 5);
  EXPECT_GE(result.mean_na, result.min_na);
  EXPECT_LE(result.mean_na, result.max_na);
  EXPECT_GT(result.min_na, 0.0);
}

TEST(MonteCarlo, ConvergesAcrossSeeds) {
  // Two independent 2000-vector estimates agree within a few percent.
  const auto n = random_net(23, 16, 120);
  const CircuitConfig config = fastest_config(n);
  const double a = monte_carlo_leakage(n, config, 2000, 1).mean_na;
  const double b = monte_carlo_leakage(n, config, 2000, 2).mean_na;
  EXPECT_NEAR(a / b, 1.0, 0.05);
}

TEST(MonteCarlo, InvalidArgumentsThrow) {
  const auto n = random_net(25);
  EXPECT_THROW(monte_carlo_leakage(n, fastest_config(n), 0, 1), ContractError);
  EXPECT_THROW(monte_carlo_leakage(n, CircuitConfig{}, 10, 1), ContractError);
}

}  // namespace
}  // namespace svtox::sim

namespace svtox::sim {
namespace {

TEST(MonteCarloParallel, ThreadCountInvariant) {
  const auto n = netlist::random_circuit(
      lib(), "mcp", 12, 100, 27);
  const CircuitConfig config = fastest_config(n);
  const auto t1 = monte_carlo_leakage_parallel(n, config, 3000, 5, 1);
  const auto t4 = monte_carlo_leakage_parallel(n, config, 3000, 5, 4);
  EXPECT_DOUBLE_EQ(t1.mean_na, t4.mean_na);
  EXPECT_DOUBLE_EQ(t1.min_na, t4.min_na);
  EXPECT_DOUBLE_EQ(t1.max_na, t4.max_na);
}

TEST(MonteCarloParallel, AgreesWithSerialEstimate) {
  const auto n = netlist::random_circuit(
      lib(), "mcp2", 12, 100, 28);
  const CircuitConfig config = fastest_config(n);
  const double serial = monte_carlo_leakage(n, config, 4096, 6).mean_na;
  const double parallel = monte_carlo_leakage_parallel(n, config, 4096, 6, 0).mean_na;
  // Different stream partitioning, same distribution.
  EXPECT_NEAR(parallel / serial, 1.0, 0.05);
}

}  // namespace
}  // namespace svtox::sim
