// Packed-vs-scalar equivalence property tests for the word-parallel
// simulation subsystem (sim/packed.hpp, cellkit/plane_compile.hpp,
// opt/packed_bound.hpp, util/simd.hpp).
//
// The packed kernels are documented as *bit-identical* to their scalar
// references -- not merely close -- because every lane's FP additions
// happen in the same order as the scalar loop (see DESIGN.md Sec. 11's
// reassociation policy). These tests enforce that documented tolerance of
// exactly zero: EXPECT_EQ on doubles throughout, never EXPECT_NEAR.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>

#include "cellkit/plane_compile.hpp"
#include "cellkit/topology.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "opt/packed_bound.hpp"
#include "opt/state_search.hpp"
#include "opt/unknown_state.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/packed.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace svtox {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

netlist::Netlist random_net(std::uint64_t seed, int inputs, int gates) {
  return netlist::random_circuit(lib(), "packed_r", inputs, gates, seed);
}

netlist::Netlist bundled(const char* file) {
  const std::string path =
      (std::filesystem::path(__FILE__).parent_path().parent_path() / "data" / file)
          .string();
  return netlist::read_bench_file(path, lib());
}

// ---------------------------------------------------------------------------
// Plane-program compilation.

TEST(PlaneCompile, EveryStandardCellCompilesExact) {
  // Every standard cell's pull-down is a series/parallel expression where
  // each pin drives exactly one device, so Kleene plane evaluation must be
  // flagged exact (the compiler verifies against all 3^k ternary states).
  for (const std::string& name : cellkit::standard_cell_names()) {
    const cellkit::CellTopology topo =
        cellkit::make_standard_cell(name, model::TechParams::nominal());
    const cellkit::PlaneProgram program = cellkit::compile_plane_program(topo);
    EXPECT_TRUE(program.exact_ternary) << name;
    EXPECT_GE(program.max_stack, 1) << name;
    EXPECT_LE(program.ops.size(),
              static_cast<std::size_t>(2 * topo.num_states())) << name;
  }
}

// ---------------------------------------------------------------------------
// Packed 2-valued simulation.

void expect_packed_matches_simulate64(const netlist::Netlist& net,
                                      std::uint64_t seed, int passes) {
  sim::PackedBoolSim packed(net);
  Rng rng(seed);
  std::vector<std::uint64_t> pi_words(
      static_cast<std::size_t>(net.num_control_points()));
  for (int pass = 0; pass < passes; ++pass) {
    for (auto& w : pi_words) w = rng.next_u64();
    const std::vector<std::uint64_t> reference = sim::simulate64(net, pi_words);
    const std::vector<std::uint64_t>& got = packed.run(pi_words);
    ASSERT_EQ(got, reference) << "pass " << pass;
  }
}

TEST(PackedBoolSim, MatchesSimulate64OnRandomNetlists) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    const auto net = random_net(seed, 6 + static_cast<int>(seed % 7),
                                40 + 25 * static_cast<int>(seed % 5));
    expect_packed_matches_simulate64(net, seed * 97, 8);
  }
}

TEST(PackedBoolSim, MatchesSimulate64OnBundledCircuits) {
  expect_packed_matches_simulate64(bundled("c17.bench"), 21, 8);
  expect_packed_matches_simulate64(bundled("s27.bench"), 22, 8);
  expect_packed_matches_simulate64(netlist::make_benchmark("c6288", lib()), 23, 2);
}

// ---------------------------------------------------------------------------
// Packed ternary simulation: lane-for-lane against simulate_ternary,
// including lanes whose inputs carry X.

TEST(PackedTernarySim, MatchesSimulateTernaryLaneForLane) {
  for (std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    const auto net = random_net(seed, 9, 70 + 10 * static_cast<int>(seed % 3));
    sim::PackedTernarySim packed(net);
    Rng rng(seed * 59);
    const auto num_cps = static_cast<std::size_t>(net.num_control_points());

    // 64 random ternary assignments, one per lane; ~1/3 of pins X.
    std::vector<std::vector<sim::Tri>> assignments(64);
    std::vector<cellkit::TriWord> planes(num_cps);
    for (int lane = 0; lane < 64; ++lane) {
      assignments[static_cast<std::size_t>(lane)].resize(num_cps);
      for (std::size_t i = 0; i < num_cps; ++i) {
        const auto tri = static_cast<sim::Tri>(rng.next_below(3));
        assignments[static_cast<std::size_t>(lane)][i] = tri;
        if (tri == sim::Tri::kOne) planes[i].ones |= 1ULL << lane;
        if (tri == sim::Tri::kX) planes[i].xs |= 1ULL << lane;
      }
    }
    const std::vector<cellkit::TriWord>& out = packed.run(planes);
    for (int lane = 0; lane < 64; ++lane) {
      const std::vector<sim::Tri> reference =
          sim::simulate_ternary(net, assignments[static_cast<std::size_t>(lane)]);
      for (int s = 0; s < net.num_signals(); ++s) {
        const cellkit::TriWord w = out[static_cast<std::size_t>(s)];
        sim::Tri got = sim::Tri::kZero;
        if ((w.xs >> lane) & 1ULL) {
          got = sim::Tri::kX;
        } else if ((w.ones >> lane) & 1ULL) {
          got = sim::Tri::kOne;
        }
        ASSERT_EQ(got, reference[static_cast<std::size_t>(s)])
            << "seed " << seed << " lane " << lane << " signal " << s;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Monte-Carlo leakage: packed backend bit-identical to the scalar
// reference, including tails (num_vectors % 64 != 0).

void expect_mc_backends_identical(const netlist::Netlist& net, int num_vectors,
                                  std::uint64_t seed) {
  const sim::CircuitConfig config = sim::fastest_config(net);
  const sim::MonteCarloResult scalar = sim::monte_carlo_leakage(
      net, config, num_vectors, seed, sim::SimBackend::kScalar);
  const sim::MonteCarloResult packed = sim::monte_carlo_leakage(
      net, config, num_vectors, seed, sim::SimBackend::kPacked);
  EXPECT_EQ(scalar.mean_na, packed.mean_na) << num_vectors << " vectors";
  EXPECT_EQ(scalar.min_na, packed.min_na) << num_vectors << " vectors";
  EXPECT_EQ(scalar.max_na, packed.max_na) << num_vectors << " vectors";
  EXPECT_EQ(scalar.vectors, packed.vectors);
}

TEST(MonteCarloLeakage, BackendsBitIdenticalIncludingTails) {
  const auto net = random_net(41, 10, 80);
  // 1 and 63: single partial pass. 64: exactly one full pass. 65/100/127:
  // full pass + tails of every flavor. 256: multiple full passes.
  for (int vectors : {1, 63, 64, 65, 100, 127, 256}) {
    expect_mc_backends_identical(net, vectors, 0xabcdefULL);
  }
}

TEST(MonteCarloLeakage, BackendsBitIdenticalOnBundledCircuits) {
  expect_mc_backends_identical(bundled("c17.bench"), 200, 7);
  expect_mc_backends_identical(bundled("s27.bench"), 200, 7);
  expect_mc_backends_identical(netlist::make_benchmark("c6288", lib()), 100, 7);
}

TEST(MonteCarloLeakage, ParallelBackendsBitIdenticalAcrossThreadCounts) {
  const auto net = random_net(43, 12, 120);
  const sim::CircuitConfig config = sim::fastest_config(net);
  // 2500 vectors: multiple 1024-vector chunks plus a 452-vector chunk whose
  // last pass carries a 4-lane tail.
  const sim::MonteCarloResult reference = sim::monte_carlo_leakage_parallel(
      net, config, 2500, 99, /*threads=*/1, sim::SimBackend::kScalar);
  for (int threads : {1, 2, 4}) {
    const sim::MonteCarloResult packed = sim::monte_carlo_leakage_parallel(
        net, config, 2500, 99, threads, sim::SimBackend::kPacked);
    EXPECT_EQ(reference.mean_na, packed.mean_na) << threads << " threads";
    EXPECT_EQ(reference.min_na, packed.min_na) << threads << " threads";
    EXPECT_EQ(reference.max_na, packed.max_na) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// State histogram: integer counts byte-identical across backends, and lane
// accounting exact (every vector lands in exactly one state per gate).

TEST(StateHistogram, BackendsIdenticalAndLanesAccounted) {
  for (int vectors : {1, 65, 200}) {
    const auto net = random_net(51, 8, 60);
    const auto packed =
        sim::state_histogram(net, vectors, 77, sim::SimBackend::kPacked);
    const auto scalar =
        sim::state_histogram(net, vectors, 77, sim::SimBackend::kScalar);
    ASSERT_EQ(packed, scalar) << vectors << " vectors";
    for (const auto& gate_counts : packed) {
      std::uint64_t total = 0;
      for (std::uint64_t c : gate_counts) total += c;
      EXPECT_EQ(total, static_cast<std::uint64_t>(vectors));
    }
  }
}

TEST(UnknownState, BackendChoiceDoesNotChangeTheAssignment) {
  const auto net = random_net(53, 9, 70);
  const opt::AssignmentProblem problem(net, 0.05);
  opt::UnknownStateOptions options;
  options.probability_vectors = 300;  // deliberately % 64 != 0
  options.backend = sim::SimBackend::kScalar;
  const auto scalar = opt::assign_unknown_state(problem, options);
  options.backend = sim::SimBackend::kPacked;
  const auto packed = opt::assign_unknown_state(problem, options);
  EXPECT_EQ(scalar.expected_leakage_na, packed.expected_leakage_na);
  EXPECT_EQ(scalar.average_leakage_na, packed.average_leakage_na);
  EXPECT_EQ(scalar.delay_ps, packed.delay_ps);
  ASSERT_EQ(scalar.config.size(), packed.config.size());
  for (std::size_t g = 0; g < scalar.config.size(); ++g) {
    EXPECT_EQ(scalar.config[g].variant, packed.config[g].variant) << "gate " << g;
  }
}

// ---------------------------------------------------------------------------
// Packed partial bounds: bit-identical to leakage_lower_bound_na.

TEST(PackedBounds, PrefixBoundsMatchReferenceForBothKinds) {
  for (std::uint64_t seed : {61ULL, 62ULL}) {
    const auto net = random_net(seed, 8, 60);
    const opt::AssignmentProblem problem(net, 0.05);
    const int split_levels = 5;
    const std::uint32_t num_subtrees = 1u << split_levels;
    for (const opt::BoundKind kind :
         {opt::BoundKind::kMinVariant, opt::BoundKind::kFastestVariant}) {
      const std::vector<double> packed =
          opt::packed_prefix_bounds(problem, kind, split_levels, num_subtrees);
      ASSERT_EQ(packed.size(), num_subtrees);
      for (std::uint32_t subtree = 0; subtree < num_subtrees; ++subtree) {
        std::vector<sim::Tri> inputs(
            static_cast<std::size_t>(net.num_control_points()), sim::Tri::kX);
        for (int level = 0; level < split_levels; ++level) {
          inputs[static_cast<std::size_t>(problem.input_order()[level])] =
              ((subtree >> level) & 1u) != 0 ? sim::Tri::kOne : sim::Tri::kZero;
        }
        const double reference = opt::leakage_lower_bound_na(problem, inputs, kind);
        EXPECT_EQ(packed[subtree], reference)
            << "seed " << seed << " subtree " << subtree;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Packed probe sweep: state-only search results do not depend on the
// backend or the thread count (exercised via the public search entry).

TEST(PackedProbeSweep, StateOnlySearchBackendAndThreadInvariant) {
  const auto net = random_net(71, 10, 90);
  const opt::AssignmentProblem problem(net, 0.05);
  opt::SearchOptions options;
  options.time_limit_s = 30.0;  // ample: the sweep always fully drains
  options.max_leaves = 1;       // pin the tree phase to Heu1's single leaf
  options.random_probes = 150;  // 2 full batches + a 22-lane tail
  options.sim_backend = sim::SimBackend::kScalar;
  const opt::Solution reference = opt::state_only_search(problem, options);
  for (int threads : {1, 2}) {
    options.threads = threads;
    options.sim_backend = sim::SimBackend::kPacked;
    const opt::Solution packed = opt::state_only_search(problem, options);
    EXPECT_EQ(reference.leakage_na, packed.leakage_na) << threads << " threads";
    EXPECT_EQ(reference.sleep_vector, packed.sleep_vector) << threads << " threads";
    EXPECT_EQ(reference.delay_ps, packed.delay_ps);
    EXPECT_EQ(reference.states_explored, packed.states_explored);
  }
}

TEST(PackedPrescreen, ParallelHeu2MatchesSerialWithPackedBackend) {
  // The root split's packed prefix prescreen must not change the search
  // result (it only skips subtrees the engine bound would also prune).
  const auto net = random_net(73, 8, 50);
  const opt::AssignmentProblem problem(net, 0.05);
  opt::SearchOptions options;
  options.time_limit_s = 30.0;  // exhaustive on 8 inputs: deterministic
  options.sim_backend = sim::SimBackend::kScalar;
  options.threads = 1;
  const opt::Solution serial = opt::heuristic2(problem, options);
  options.sim_backend = sim::SimBackend::kPacked;
  options.threads = 4;
  const opt::Solution split = opt::heuristic2(problem, options);
  EXPECT_EQ(serial.leakage_na, split.leakage_na);
  EXPECT_EQ(serial.sleep_vector, split.sleep_vector);
}

// ---------------------------------------------------------------------------
// SIMD kernels: every dispatched variant bit-identical to its portable
// reference (exercises the AVX2 paths when the host supports them).

TEST(Simd, ScatterAddMatchesPortableBitExactly) {
  Rng rng(81);
  for (int trial = 0; trial < 200; ++trial) {
    alignas(32) double a[64];
    alignas(32) double b[64];
    for (int i = 0; i < 64; ++i) {
      // Mix magnitudes and signs, including -0.0 lanes (a masked-add
      // implementation that adds 0.0 would rewrite them to +0.0).
      const double v = (rng.next_double() - 0.5) * std::pow(10.0, trial % 7);
      a[i] = (i % 5 == 0) ? -0.0 : v;
      b[i] = a[i];
    }
    const std::uint64_t mask = rng.next_u64() & rng.next_u64();
    const double value = rng.next_double() * 1e3 - 500.0;
    simd::scatter_add(a, mask, value);
    simd::scatter_add_portable(b, mask, value);
    ASSERT_EQ(0, std::memcmp(a, b, sizeof(a))) << "trial " << trial;
  }
}

TEST(Simd, SelectAddMatchesPortableBitExactly) {
  Rng rng(83);
  for (int trial = 0; trial < 200; ++trial) {
    alignas(32) double a[64];
    alignas(32) double b[64];
    for (int i = 0; i < 64; ++i) {
      const double v = (rng.next_double() - 0.5) * std::pow(10.0, trial % 7);
      a[i] = (i % 7 == 0) ? -0.0 : v;
      b[i] = a[i];
    }
    const std::uint64_t w0 = rng.next_u64();
    const std::uint64_t w1 = rng.next_u64();
    double leak[4];
    for (double& l : leak) l = rng.next_double() * 1e3;
    if (trial % 2 == 0) {
      simd::select_add1(a, w0, leak);
      simd::select_add1_portable(b, w0, leak);
    } else {
      simd::select_add2(a, w0, w1, leak);
      simd::select_add2_portable(b, w0, w1, leak);
    }
    ASSERT_EQ(0, std::memcmp(a, b, sizeof(a))) << "trial " << trial;
  }
}

TEST(Simd, SelectAddStateIndexingMatchesLocalState) {
  // select_add2's state index must follow the cellkit convention
  // (state bit p = pin p): lane value = leak[bit(w0) | bit(w1) << 1].
  alignas(32) double totals[64] = {};
  const double leak[4] = {1.0, 10.0, 100.0, 1000.0};
  // lane 0: (0,0)  lane 1: (1,0)  lane 2: (0,1)  lane 3: (1,1)
  simd::select_add2(totals, 0b1010ULL, 0b1100ULL, leak);
  EXPECT_EQ(1.0, totals[0]);
  EXPECT_EQ(10.0, totals[1]);
  EXPECT_EQ(100.0, totals[2]);
  EXPECT_EQ(1000.0, totals[3]);
}

TEST(Simd, LocateHiMatchesPortableForAllSizesAndQueries) {
  Rng rng(82);
  for (std::size_t size = 2; size <= simd::kAxisPad; ++size) {
    alignas(32) double axis[simd::kAxisPad];
    double knot = -3.0;
    for (std::size_t i = 0; i < size; ++i) {
      knot += 0.25 + rng.next_double() * 10.0;
      axis[i] = knot;
    }
    for (std::size_t i = size; i < simd::kAxisPad; ++i) {
      axis[i] = std::numeric_limits<double>::infinity();
    }
    // Below the first knot, above the last, exactly on knots, in between.
    std::vector<double> queries = {axis[0] - 10.0, axis[size - 1] + 10.0};
    for (std::size_t i = 0; i < size; ++i) {
      queries.push_back(axis[i]);
      queries.push_back(axis[i] + 0.01);
      queries.push_back(axis[i] - 0.01);
    }
    for (int t = 0; t < 50; ++t) {
      queries.push_back(axis[0] - 5.0 + rng.next_double() * (knot - axis[0] + 10.0));
    }
    for (double x : queries) {
      ASSERT_EQ(simd::locate_hi(axis, size, x), simd::locate_hi_portable(axis, size, x))
          << "size " << size << " x " << x;
    }
  }
}

TEST(Simd, DispatchNameIsStable) {
  const char* name = simd::dispatch_name();
  ASSERT_TRUE(name != nullptr);
  EXPECT_TRUE(std::string(name) == "avx2" || std::string(name) == "portable");
  EXPECT_EQ(simd::has_avx2(), std::string(name) == "avx2");
}

}  // namespace
}  // namespace svtox
