#!/usr/bin/env bash
# Network-chaos and failover smoke test for the self-healing cluster.
#
# Runs one batch manifest four ways and requires every run's result table
# (runtime stripped) and solution files to be byte-identical to a 1-node
# reference:
#   1. single standalone daemon (the reference),
#   2. a 3-node cluster with heartbeats + cache replication, where one
#      worker gets fail-point-injected resets/delays on its transport and
#      a second worker is SIGKILLed mid-run,
#   3. a 2-node cluster whose *coordinator* is SIGKILLed mid-batch and
#      restarted on the same port: the restarted daemon must adopt the
#      on-disk job ledger and resume the merge without re-solving the
#      completed subtrees (asserted via the jobs.adopted stats counter),
# plus a membership phase:
#   4. a daemon booted from a one-line peers file discovers a second node
#      after the file is rewritten and SIGHUPed (epoch bump + peer up).
#
# usage: chaos_daemon_test.sh <svtox> <svtoxd> <workdir> <failpoints>
#   <failpoints> is the build's SVTOX_FAILPOINTS value; anything but
#   1/ON/TRUE skips the test (exit 77, ctest SKIP_RETURN_CODE).
set -u

SVTOX=$1
SVTOXD=$2
WORK=$3
FAILPOINTS=${4:-0}

case "$FAILPOINTS" in
  1|ON|on|TRUE|true|YES|yes) ;;
  *) echo "SKIP: fail points compiled out (SVTOX_FAILPOINTS=$FAILPOINTS)"; exit 77 ;;
esac

rm -rf "$WORK"
mkdir -p "$WORK"
PIDS=()

stop_all() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill -TERM "$pid" 2>/dev/null
  done
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    wait "$pid" 2>/dev/null
  done
  PIDS=()
}

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    [ -f "$log" ] && tail -40 "$log" | sed "s#^#  $(basename "$log"): #" >&2
  done
  stop_all
  exit 1
}

launch() {  # <name> <port> [extra svtoxd args...]
  local name=$1 port=$2
  shift 2
  local log="$WORK/$name.log"
  : > "$log"
  "$SVTOXD" --socket "$WORK/$name.sock" --workers 2 --listen-tcp "$port" \
      --steal-after 10 "$@" > "$log" 2>&1 &
  local pid=$!
  for _ in $(seq 1 50); do
    grep -q "listening on tcp://" "$log" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if grep -q "listening on tcp://" "$log" 2>/dev/null; then
    PIDS+=("$pid")
    LAUNCHED_PID=$pid
    return 0
  fi
  wait "$pid" 2>/dev/null
  return 1
}

forget_pid() {  # <pid> -- drop a PID we killed ourselves from the registry
  local keep=()
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    [ "$pid" = "$1" ] || keep+=("$pid")
  done
  PIDS=(${keep[@]+"${keep[@]}"})
}

pick_ports() {  # <n> -> PORTS[]
  PORTS=()
  local tries=0
  while [ "${#PORTS[@]}" -lt "$1" ]; do
    tries=$((tries + 1))
    [ "$tries" -gt 200 ] && fail "could not pick $1 distinct ports"
    local p=$((20000 + RANDOM % 20000))
    local dup=0
    for q in ${PORTS[@]+"${PORTS[@]}"}; do [ "$q" = "$p" ] && dup=1; done
    [ "$dup" = 0 ] && PORTS+=("$p")
  done
}

raw() {  # <port> <json> -- one raw request; prints the reply
  "$SVTOX" cmd --tcp "127.0.0.1:$1" --json "$2" 2>/dev/null
}

# The manifest: cache off so every run solves fresh (byte-identity is the
# point); coordinator (subtree) jobs lead so worker kills land mid-merge.
MANIFEST=$WORK/manifest.json
cat > "$MANIFEST" <<EOF
{"circuit":"c432","method":"state","penalty":10,"max_leaves":300,"time_limit":600,"subtrees":4,"vectors":500,"cache":false}
{"circuit":"c880","method":"heu2","penalty":5,"max_leaves":400,"time_limit":600,"subtrees":4,"vectors":500,"cache":false}
{"circuit":"c880","method":"heu1","penalty":5,"vectors":500,"cache":false}
EOF

# Result lines vary in runtime across runs, and in the client-side job id
# when a batch resubmits after a daemon crash; strip both for the table.
table_of() {  # <ndjson-file> <out-table>
  sed -E 's/"runtime_s":[0-9.eE+-]+,?//; s/,?"job":[0-9]+//' "$1" > "$2"
}

run_batch() {  # <port> <tag>
  local port=$1 tag=$2
  mkdir -p "$WORK/out_$tag"
  "$SVTOX" batch --manifest "$MANIFEST" --tcp "127.0.0.1:$port" \
      --output-dir "$WORK/out_$tag" > "$WORK/results_$tag.json" 2> "$WORK/batch_$tag.log" \
      || fail "batch $tag failed: $(cat "$WORK/batch_$tag.log")"
  table_of "$WORK/results_$tag.json" "$WORK/table_$tag.txt"
}

compare_to_reference() {  # <tag>
  local tag=$1
  cmp -s "$WORK/table_ref.txt" "$WORK/table_$tag.txt" \
      || fail "$tag result table differs from single-node reference
$(diff "$WORK/table_ref.txt" "$WORK/table_$tag.txt" | head -10)"
  for ref in "$WORK"/out_ref/*.solution; do
    local name
    name=$(basename "$ref")
    cmp -s "$ref" "$WORK/out_$tag/$name" \
        || fail "$tag solution $name differs from single-node reference"
  done
}

HB="--heartbeat-interval 0.2 --suspect-after 0.6 --down-after 2"

# --- Run 1: single-node reference. -----------------------------------------
pick_ports 1
launch ref "${PORTS[0]}" || fail "could not start reference daemon"
run_batch "${PORTS[0]}" ref
stop_all

# --- Run 2: 3-node cluster under injected network chaos + a worker kill. ---
pick_ports 3
PA=${PORTS[0]} PB=${PORTS[1]} PC=${PORTS[2]}
PEERS="127.0.0.1:$PA,127.0.0.1:$PB,127.0.0.1:$PC"
launch a_chaos "$PA" --peers "$PEERS" --self "127.0.0.1:$PA" $HB \
    --cache-replicas 1 --checkpoint-dir "$WORK/ckpt_a" \
    || fail "could not start chaos node a"
launch b_chaos "$PB" --peers "$PEERS" --self "127.0.0.1:$PB" $HB \
    --cache-replicas 1 || fail "could not start chaos node b"
launch c_chaos "$PC" --peers "$PEERS" --self "127.0.0.1:$PC" $HB \
    --cache-replicas 1 || fail "could not start chaos node c"
C_PID=$LAUNCHED_PID

# Arm chaos on worker b: the first 60 receives each eat a 2 ms delay, and
# 3 sends die with an injected RST mid-frame. Peers must retry/steal
# around it; the client never talks to b directly.
raw "$PB" '{"cmd":"failpoints","spec":"net_recv=delay*60:2,net_send=reset-after*3:65536"}' \
    | grep -q '"ok":true' || fail "could not arm fail points on node b"

mkdir -p "$WORK/out_chaos"
"$SVTOX" batch --manifest "$MANIFEST" --tcp "127.0.0.1:$PA" \
    --output-dir "$WORK/out_chaos" > "$WORK/results_chaos.json" 2> "$WORK/batch_chaos.log" &
BATCH_PID=$!
sleep 2
kill -KILL "$C_PID" 2>/dev/null || echo "note: node c exited before the kill" >&2
forget_pid "$C_PID"
wait "$BATCH_PID" || fail "chaos batch failed: $(cat "$WORK/batch_chaos.log")"
table_of "$WORK/results_chaos.json" "$WORK/table_chaos.txt"
compare_to_reference chaos
stop_all

# --- Run 3: coordinator SIGKILLed mid-batch, restarted, ledger adopted. ----
pick_ports 2
PA=${PORTS[0]} PB=${PORTS[1]}
PEERS="127.0.0.1:$PA,127.0.0.1:$PB"
launch a_fo "$PB" --peers "$PEERS" --self "127.0.0.1:$PB" $HB \
    || fail "could not start failover worker"
launch c_fo "$PA" --peers "$PEERS" --self "127.0.0.1:$PA" $HB \
    --checkpoint-dir "$WORK/ckpt_fo" --checkpoint-every 0.2 \
    || fail "could not start failover coordinator"
CO_PID=$LAUNCHED_PID
mkdir -p "$WORK/out_failover"
"$SVTOX" batch --manifest "$MANIFEST" --tcp "127.0.0.1:$PA" \
    --output-dir "$WORK/out_failover" > "$WORK/results_failover.json" \
    2> "$WORK/batch_failover.log" &
BATCH_PID=$!
sleep 2
kill -KILL "$CO_PID" 2>/dev/null || echo "note: coordinator finished early" >&2
forget_pid "$CO_PID"
ls "$WORK/ckpt_fo"/*.ledger >/dev/null 2>&1 \
    || echo "note: no ledger on disk at kill time (batch may have finished)" >&2
sleep 0.5
# Same port, same checkpoint dir: the client's resubmit lands on the
# restarted daemon, which finds the job's ledger and resumes the merge.
launch c_fo2 "$PA" --peers "$PEERS" --self "127.0.0.1:$PA" $HB \
    --checkpoint-dir "$WORK/ckpt_fo" --checkpoint-every 0.2 --adopt-jobs \
    || fail "could not restart failover coordinator"
wait "$BATCH_PID" || fail "failover batch failed: $(cat "$WORK/batch_failover.log")"
table_of "$WORK/results_failover.json" "$WORK/table_failover.txt"
compare_to_reference failover
raw "$PA" '{"cmd":"stats"}' > "$WORK/stats_failover.json" \
    || fail "stats after failover failed"
grep -Eq '"adopted":[1-9]' "$WORK/stats_failover.json" \
    || fail "restarted coordinator adopted no job ledger: $(cat "$WORK/stats_failover.json")"
# Clean completion after the resume removes the ledger again.
if ls "$WORK/ckpt_fo"/*.ledger >/dev/null 2>&1; then
  fail "ledger left behind after the resumed job completed"
fi
stop_all

# --- Run 4: peers-file membership reload via SIGHUP. -----------------------
pick_ports 2
PA=${PORTS[0]} PB=${PORTS[1]}
PEERS_FILE=$WORK/peers.txt
echo "127.0.0.1:$PA" > "$PEERS_FILE"
launch a_reload "$PA" --peers-file "$PEERS_FILE" --self "127.0.0.1:$PA" $HB \
    || fail "could not start reload daemon"
A_PID=$LAUNCHED_PID
launch b_reload "$PB" || fail "could not start reload peer"
raw "$PA" '{"cmd":"stats"}' | grep -q '"epoch":1' \
    || fail "fresh daemon should be at membership epoch 1"
printf '127.0.0.1:%s\n127.0.0.1:%s\n' "$PA" "$PB" > "$PEERS_FILE"
kill -HUP "$A_PID" || fail "could not SIGHUP reload daemon"
UP=0
for _ in $(seq 1 50); do
  STATS=$(raw "$PA" '{"cmd":"stats"}')
  if echo "$STATS" | grep -q '"epoch":2' &&
     echo "$STATS" | grep -q "127.0.0.1:$PB\",\"health\":\"up\""; then
    UP=1
    break
  fi
  sleep 0.2
done
[ "$UP" = 1 ] || fail "SIGHUP reload did not pick up the new peer: $STATS"
stop_all

echo "PASS: chaos / worker-kill / coordinator-failover runs byte-identical to single node; ledger adopted; SIGHUP membership reload works"
exit 0
