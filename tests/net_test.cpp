// TCP transport tests: length-prefixed framing (round trip, partial
// accumulation, the pre-body size bound), address parsing, the svtoxd TCP
// front end (submit/result over frames, hostile framing input, the JSON
// depth guard, admission control) and the client's connect retry against a
// daemon that binds its port late.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "net/conn.hpp"
#include "net/frame.hpp"
#include "net/listener.hpp"
#include "svc/client.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "util/error.hpp"

namespace svtox {
namespace {

using svc::Json;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(NetFrame, RoundTripOverSocketpair) {
  SocketPair sp;
  net::write_frame(sp.fds[0], "hello");
  net::write_frame(sp.fds[0], "");  // empty payloads are legal
  std::string big(100000, 'x');
  net::write_frame(sp.fds[0], big);

  std::string payload;
  EXPECT_EQ(net::read_frame(sp.fds[1], payload), net::FrameStatus::kOk);
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(net::read_frame(sp.fds[1], payload), net::FrameStatus::kOk);
  EXPECT_EQ(payload, "");
  EXPECT_EQ(net::read_frame(sp.fds[1], payload), net::FrameStatus::kOk);
  EXPECT_EQ(payload, big);

  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  EXPECT_EQ(net::read_frame(sp.fds[1], payload), net::FrameStatus::kClosed);
}

TEST(NetFrame, OversizedAnnouncementDetectedBeforeBody) {
  SocketPair sp;
  // Header announcing 2 MiB against a 1 MiB cap; no body bytes ever sent.
  const std::uint32_t len = 2u << 20;
  const unsigned char header[4] = {
      static_cast<unsigned char>(len >> 24), static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8), static_cast<unsigned char>(len)};
  ASSERT_EQ(::send(sp.fds[0], header, 4, 0), 4);
  std::string payload;
  EXPECT_EQ(net::read_frame(sp.fds[1], payload, net::kMaxFrameBytes),
            net::FrameStatus::kOversized);
}

TEST(NetFrame, TruncatedFrameThrowsIo) {
  SocketPair sp;
  const std::uint32_t len = 100;
  const unsigned char header[4] = {0, 0, 0, static_cast<unsigned char>(len)};
  ASSERT_EQ(::send(sp.fds[0], header, 4, 0), 4);
  ASSERT_EQ(::send(sp.fds[0], "partial", 7, 0), 7);
  ::close(sp.fds[0]);
  sp.fds[0] = -1;
  std::string payload;
  EXPECT_THROW(net::read_frame(sp.fds[1], payload), Error);
}

TEST(NetFrame, ExtractAccumulatesPartialInput) {
  std::string wire;
  net::encode_frame(wire, "first");
  net::encode_frame(wire, "second");

  std::string buffer, payload;
  // Feed the wire bytes one at a time; frames pop out exactly at their
  // boundaries.
  std::vector<std::string> got;
  for (char c : wire) {
    buffer.push_back(c);
    while (net::extract_frame(buffer, payload)) got.push_back(payload);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
  EXPECT_TRUE(buffer.empty());
}

TEST(NetFrame, ExtractThrowsOnOversizedHeader) {
  std::string buffer = {'\x7f', '\x00', '\x00', '\x00'};  // ~2 GiB announced
  std::string payload;
  EXPECT_THROW(net::extract_frame(buffer, payload, net::kMaxFrameBytes), Error);
}

TEST(NetConn, ParseTcpAddressForms) {
  EXPECT_EQ(net::parse_tcp_address("10.0.0.1:8080").host, "10.0.0.1");
  EXPECT_EQ(net::parse_tcp_address("10.0.0.1:8080").port, 8080);
  EXPECT_EQ(net::parse_tcp_address(":9000").host, "127.0.0.1");
  EXPECT_EQ(net::parse_tcp_address("9000").port, 9000);
  EXPECT_THROW(net::parse_tcp_address("host:notaport"), ContractError);
  EXPECT_THROW(net::parse_tcp_address("host:99999"), ContractError);
}

TEST(NetListener, EphemeralPortIsReported) {
  net::Listener listener = net::Listener::tcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(listener.port(), 0);
  EXPECT_EQ(listener.address(), "127.0.0.1:" + std::to_string(listener.port()));
}

// ---------------------------------------------------------------------------
// svtoxd TCP front end
// ---------------------------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/svtox_net_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

struct TcpDaemon {
  svc::Scheduler scheduler;
  svc::Server server;

  explicit TcpDaemon(const char* tag, std::size_t max_connections = 256)
      : scheduler(small_options()), server(scheduler, server_options(tag, max_connections)) {
    server.start();
  }
  ~TcpDaemon() {
    server.stop();
    scheduler.shutdown(/*drain=*/false);
  }

  std::string address() const {
    return "tcp://127.0.0.1:" + std::to_string(server.tcp_port());
  }

  static svc::Scheduler::Options small_options() {
    svc::Scheduler::Options options;
    options.workers = 2;
    return options;
  }
  static svc::ServerOptions server_options(const char* tag, std::size_t max_conn) {
    svc::ServerOptions options;
    options.socket_path = test_socket_path(tag);
    options.tcp_port = 0;  // ephemeral
    options.max_connections = max_conn;
    return options;
  }
};

svc::JobSpec small_job() {
  svc::JobSpec spec;
  spec.circuit = "c432";
  spec.method = "heu1";
  spec.penalty_percent = 5.0;
  return spec;
}

TEST(TcpServer, SubmitAndResultOverFrames) {
  TcpDaemon daemon("e2e");
  ASSERT_GT(daemon.server.tcp_port(), 0);

  svc::Client client(daemon.address());
  const std::uint64_t job = client.submit(small_job());
  const svc::JobResult result = client.result(job);
  EXPECT_EQ(result.status, svc::JobStatus::kDone);
  EXPECT_GT(result.leakage_ua, 0.0);
  EXPECT_FALSE(result.solution_text.empty());

  // The stats reply accounts for the TCP byte flow.
  const Json stats = client.stats();
  const Json* net = stats.get("net");
  ASSERT_NE(net, nullptr);
  EXPECT_GT(net->get("bytes_in_tcp")->as_int(), 0);
  EXPECT_GT(net->get("bytes_out_tcp")->as_int(), 0);
}

TEST(TcpServer, UnixAndTcpAnswerTheSameScheduler) {
  TcpDaemon daemon("dual");
  svc::Client tcp(daemon.address());
  svc::Client unix_client(daemon.server.socket_path());

  const std::uint64_t job = tcp.submit(small_job());
  // The job id space is shared: the Unix client can query the TCP submit.
  const svc::JobResult result = unix_client.result(job);
  EXPECT_EQ(result.status, svc::JobStatus::kDone);
}

TEST(TcpServer, MalformedJsonGetsErrorReplyAndConnectionSurvives) {
  TcpDaemon daemon("garbage");
  net::Conn conn = net::Conn::connect("127.0.0.1", daemon.server.tcp_port());

  conn.send_frame("this is not json");
  std::string payload;
  ASSERT_EQ(conn.recv_frame(payload), net::FrameStatus::kOk);
  Json reply = Json::parse(payload);
  EXPECT_FALSE(reply.get("ok")->as_bool(true));

  // Same connection still serves well-formed requests.
  conn.send_frame(R"({"cmd":"stats"})");
  ASSERT_EQ(conn.recv_frame(payload), net::FrameStatus::kOk);
  reply = Json::parse(payload);
  EXPECT_TRUE(reply.get("ok")->as_bool(false));
}

TEST(TcpServer, JsonDepthGuardAppliesOverTcp) {
  TcpDaemon daemon("depth");
  net::Conn conn = net::Conn::connect("127.0.0.1", daemon.server.tcp_port());

  std::string bomb;
  for (int i = 0; i < 80; ++i) bomb += "[";
  for (int i = 0; i < 80; ++i) bomb += "]";
  conn.send_frame(bomb);
  std::string payload;
  ASSERT_EQ(conn.recv_frame(payload), net::FrameStatus::kOk);
  const Json reply = Json::parse(payload);
  EXPECT_FALSE(reply.get("ok")->as_bool(true));
  // And the daemon is still healthy afterwards.
  EXPECT_TRUE(svc::Client::ping(daemon.address()));
}

TEST(TcpServer, OversizedFrameAnnouncementClosesOnlyThatConnection) {
  TcpDaemon daemon("oversized");
  net::Conn conn = net::Conn::connect("127.0.0.1", daemon.server.tcp_port());

  // Announce 2 MiB without sending a body: the server must reject from the
  // header alone.
  const std::uint32_t len = 2u << 20;
  const unsigned char header[4] = {
      static_cast<unsigned char>(len >> 24), static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8), static_cast<unsigned char>(len)};
  ASSERT_EQ(::send(conn.fd(), header, 4, 0), 4);

  std::string payload;
  const net::FrameStatus status = conn.recv_frame(payload);
  if (status == net::FrameStatus::kOk) {
    // Best-effort error frame before the close.
    EXPECT_FALSE(Json::parse(payload).get("ok")->as_bool(true));
    EXPECT_EQ(conn.recv_frame(payload), net::FrameStatus::kClosed);
  } else {
    EXPECT_EQ(status, net::FrameStatus::kClosed);
  }
  // The daemon survives hostile framing.
  EXPECT_TRUE(svc::Client::ping(daemon.address()));
}

TEST(TcpServer, TruncatedFrameDropsConnectionDaemonStaysUp) {
  TcpDaemon daemon("truncated");
  {
    net::Conn conn = net::Conn::connect("127.0.0.1", daemon.server.tcp_port());
    const unsigned char header[4] = {0, 0, 0, 100};
    ASSERT_EQ(::send(conn.fd(), header, 4, 0), 4);
    ASSERT_EQ(::send(conn.fd(), "short", 5, 0), 5);
  }  // close mid-frame
  EXPECT_TRUE(svc::Client::ping(daemon.address()));
  svc::Client client(daemon.address());
  EXPECT_TRUE(client.stats().get("ok")->as_bool(false));
}

TEST(TcpServer, AdmissionControlRejectsWithBusy) {
  TcpDaemon daemon("busy", /*max_connections=*/1);

  // First connection occupies the only slot...
  net::Conn holder = net::Conn::connect("127.0.0.1", daemon.server.tcp_port());
  holder.send_frame(R"({"cmd":"stats"})");
  std::string payload;
  ASSERT_EQ(holder.recv_frame(payload), net::FrameStatus::kOk);

  // ...so the next one is told "busy" instead of being left hanging.
  net::Conn second = net::Conn::connect("127.0.0.1", daemon.server.tcp_port());
  ASSERT_EQ(second.recv_frame(payload), net::FrameStatus::kOk);
  const Json reply = Json::parse(payload);
  EXPECT_FALSE(reply.get("ok")->as_bool(true));
  EXPECT_EQ(reply.get("error_code")->as_string(), "busy");
  EXPECT_EQ(second.recv_frame(payload), net::FrameStatus::kClosed);

  // Releasing the slot lets a fresh client in; Client::submit retries
  // "busy" internally, so a briefly saturated daemon is invisible to it.
  holder.close();
  svc::ClientOptions retry;
  retry.max_attempts = 20;
  retry.backoff_initial_s = 0.02;
  svc::Client client(daemon.address(), retry);
  const std::uint64_t job = client.submit(small_job());
  EXPECT_EQ(client.result(job).status, svc::JobStatus::kDone);
}

// Satellite: a client started before the daemon binds its port must reach
// it via connect retry/backoff, exactly like the Unix-socket path.
TEST(TcpClient, ConnectRetryCoversLateStartingDaemon) {
  // Reserve an ephemeral port, then release it for the late daemon. (The
  // tiny window where another process could steal the port is acceptable
  // in a test.)
  int port = 0;
  {
    net::Listener probe = net::Listener::tcp("127.0.0.1", 0);
    port = probe.port();
  }

  std::thread late([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    svc::Scheduler scheduler(TcpDaemon::small_options());
    svc::ServerOptions options;
    options.socket_path = test_socket_path("late");
    options.tcp_port = port;
    svc::Server server(scheduler, options);
    server.start();
    // Stay alive long enough for the client's round trip.
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    server.stop();
    scheduler.shutdown(false);
  });

  svc::ClientOptions patient;
  patient.max_attempts = 30;
  patient.backoff_initial_s = 0.05;
  patient.backoff_max_s = 0.2;
  bool ok = false;
  try {
    svc::Client client("tcp://127.0.0.1:" + std::to_string(port), patient);
    ok = client.stats().get("ok")->as_bool(false);
  } catch (...) {
  }
  late.join();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace svtox
