// Cross-feature integration tests: combinations of technology presets,
// library options, sequential circuits and optimizers that no single-module
// suite exercises together.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/optimizer.hpp"
#include "core/solution_io.hpp"
#include "liberty/lib_format.hpp"
#include "liberty/serialize.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "opt/annealing.hpp"
#include "opt/state_search.hpp"
#include "sim/equivalence.hpp"
#include "sim/probability.hpp"
#include "sta/timing_report.hpp"

namespace svtox {
namespace {

TEST(Integration, NitridedSequentialEndToEnd) {
  // Nitrided-oxide technology + registers + Heu2 + solution round-trip.
  const auto& tech = model::TechParams::nitrided();
  const auto library = liberty::Library::build(tech, {});
  const auto pipe = netlist::sequential_pipeline(library, "nit_pipe", 8, 2, 50, 31);

  core::StandbyOptimizer optimizer(pipe);
  core::RunConfig config;
  config.penalty_fraction = 0.10;
  config.time_limit_s = 0.3;
  config.random_vectors = 500;
  const auto h2 = optimizer.run(core::Method::kHeu2, config);
  EXPECT_GT(h2.reduction_x, 1.5);

  const auto back = core::read_solution(core::write_solution(h2.solution, pipe), pipe);
  EXPECT_NEAR(sim::circuit_leakage_na(pipe, back.config, back.sleep_vector),
              h2.solution.leakage_na, 1e-6);
}

TEST(Integration, TemperatureLibrarySerializationRoundTrip) {
  // A hot-corner characterization survives .svlib round-trip bit-exactly
  // enough for optimization to agree.
  const model::TechParams hot = model::TechParams::nominal().at_temperature(358.0);
  const auto library = liberty::Library::build(hot, {});
  const auto text = liberty::write_library(library);
  const auto back = liberty::read_library(text, hot);

  const auto a = netlist::random_circuit(library, "t_rt", 8, 50, 37);
  const auto b = netlist::rebind(a, back);
  const opt::AssignmentProblem pa(a, 0.05);
  const opt::AssignmentProblem pb(b, 0.05);
  EXPECT_NEAR(opt::heuristic1(pa).leakage_na, opt::heuristic1(pb).leakage_na, 1.0);
}

TEST(Integration, UniformStackLibraryThroughFullFlow) {
  liberty::LibraryOptions options;
  options.variant_options.uniform_stack = true;
  options.variant_options.four_point = false;
  const auto library = liberty::Library::build(model::TechParams::nominal(), options);
  const auto circuit = netlist::make_benchmark("c432", library);
  core::StandbyOptimizer optimizer(circuit);
  core::RunConfig config;
  config.penalty_fraction = 0.05;
  config.random_vectors = 1000;
  config.time_limit_s = 0.2;
  const auto h1 = optimizer.run(core::Method::kHeu1, config);
  EXPECT_GT(h1.reduction_x, 2.5);
  // 2-option uniform library exports valid Liberty too.
  const std::string lib_text = liberty::write_liberty_format(library);
  EXPECT_NE(lib_text.find("cell (NAND2_v1)"), std::string::npos);
}

TEST(Integration, AnnealingAndHeu2AgreeOnSmallCircuit) {
  // Independent optimizers converging to similar leakage is strong evidence
  // neither is cheating the delay constraint or the accounting.
  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const auto n = netlist::random_circuit(library, "agree", 8, 40, 41);
  const opt::AssignmentProblem problem(n, 0.25);
  const auto h2 = opt::heuristic2(problem, 0.5);
  opt::AnnealingOptions sa;
  sa.time_limit_s = 0.5;
  const auto anneal = opt::simulated_annealing(problem, sa);
  EXPECT_NEAR(anneal.leakage_na / h2.leakage_na, 1.0, 0.30);
}

TEST(Integration, BenchFileToSolutionFileFlow) {
  // data/c17.bench -> optimize -> write -> read -> verify (the CLI flow,
  // exercised through the library API). The path is anchored to this source
  // file so the test is independent of the ctest working directory.
  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const std::string bench_path =
      (std::filesystem::path(__FILE__).parent_path().parent_path() / "data" /
       "c17.bench")
          .string();
  const auto c17 = netlist::read_bench_file(bench_path, library);
  EXPECT_EQ(c17.num_inputs(), 5);

  const opt::AssignmentProblem problem(c17, 0.05);
  const auto sol = opt::heuristic2(problem, 0.2);
  const auto back = core::read_solution(core::write_solution(sol, c17), c17);

  sta::TimingState timing(c17);
  EXPECT_NEAR(timing.analyze(back.config), sol.delay_ps, 1e-6);
  EXPECT_LE(sol.delay_ps, problem.constraint_ps() + 1e-3);
}

TEST(Integration, ProbabilityEstimateVsOptimizedConfig) {
  // The vectorless estimator also works on optimized (mixed-version,
  // pin-reordered) configurations.
  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const auto n = netlist::random_circuit(library, "prob_o", 10, 80, 43);
  const opt::AssignmentProblem problem(n, 0.25);
  const auto sol = opt::heuristic1(problem);

  const double expected = sim::expected_leakage_uniform_na(n, sol.config);
  const double mc = sim::monte_carlo_leakage(n, sol.config, 4000, 43).mean_na;
  EXPECT_NEAR(expected / mc, 1.0, 0.2);
  // And the optimized config's average beats the fastest config's average:
  // swaps chosen for one state still help across states.
  const double base = sim::monte_carlo_leakage(n, sim::fastest_config(n), 4000, 43).mean_na;
  EXPECT_LT(mc, base);
}

TEST(Integration, WorstPathReportOnBenchmarkSolution) {
  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const auto circuit = netlist::make_benchmark("c432", library);
  const opt::AssignmentProblem problem(circuit, 0.05);
  const auto sol = opt::heuristic1(problem);
  const sta::SlackAnalysis slack(circuit, sol.config, problem.constraint_ps());
  EXPECT_GE(slack.worst_slack_ps(), -1e-3);
  const std::string path = sta::render_worst_path(circuit, sol.config);
  EXPECT_NE(path.find("worst path"), std::string::npos);
}

TEST(Integration, SuiteSpecsAreConsistent) {
  // The embedded paper data must be self-consistent: reductions derived
  // from Table 3/4 columns are positive and ordered.
  for (const auto& spec : netlist::benchmark_suite()) {
    EXPECT_GT(spec.paper.avg_random_ua, 0.0) << spec.name;
    EXPECT_LT(spec.paper.state_only_ua, spec.paper.avg_random_ua * 1.001) << spec.name;
    EXPECT_LT(spec.paper.vt_state_5_ua, spec.paper.state_only_ua) << spec.name;
    EXPECT_LT(spec.paper.heu1_5_ua, spec.paper.vt_state_5_ua) << spec.name;
    EXPECT_LE(spec.paper.heu2_5_ua, spec.paper.heu1_5_ua) << spec.name;
    EXPECT_LE(spec.paper.heu1_10_ua, spec.paper.heu1_5_ua) << spec.name;
    EXPECT_LE(spec.paper.heu1_25_ua, spec.paper.heu1_10_ua) << spec.name;
    EXPECT_LE(spec.paper.vt_state_25_ua, spec.paper.vt_state_10_ua) << spec.name;
  }
}

}  // namespace
}  // namespace svtox
