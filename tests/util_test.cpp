#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace svtox {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowIsInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleRoughlyUniform) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NextBitsLengthAndVariety) {
  Rng rng(17);
  const auto bits = rng.next_bits(1000);
  ASSERT_EQ(bits.size(), 1000u);
  int ones = 0;
  for (bool b : bits) ones += b;
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream must not simply replay the parent stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.next_u64() == child.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = split_ws("  one\t two \n three ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[1], "two");
  EXPECT_EQ(parts[2], "three");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(x)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_upper("nand2"), "NAND2");
  EXPECT_EQ(to_lower("NaNd2"), "nand2");
}

TEST(Strings, ParseSizeValidAndInvalid) {
  EXPECT_EQ(parse_size("42"), 42u);
  EXPECT_EQ(parse_size("  7 "), 7u);
  EXPECT_THROW(parse_size("x7"), ContractError);
  EXPECT_THROW(parse_size("7x"), ContractError);
  EXPECT_THROW(parse_size(""), ContractError);
}

TEST(Strings, ParseDoubleValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double("abc"), ContractError);
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 1), "2.0");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(Deadline, ExpiresImmediatelyOnZeroBudget) {
  Deadline d(0.0);
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, LongBudgetNotExpired) {
  Deadline d(100.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 90.0);
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| long-name "), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, ShortRowsArePadded) {
  AsciiTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.render().find("| 1 "), std::string::npos);
}

TEST(AsciiTable, WideRowsThrow) {
  AsciiTable t;
  t.set_header({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), ContractError);
}

TEST(AsciiTable, CsvEscapesSpecialCells) {
  AsciiTable t;
  t.set_header({"x", "y"});
  t.add_row({"a,b", "q\"q"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"q\""), std::string::npos);
}

}  // namespace
}  // namespace svtox
