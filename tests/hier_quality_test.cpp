// Hierarchical quality gate + boundary-context regression suite.
//
// The level sweep / stitch-refine flow exists to close the gap to the flat
// solver, so these tests pin the promises that matter: the hier/flat
// leakage ratio on the partitioned ISCAS multipliers, byte-identical
// stitches under any worker count, the repair-count benefit of seeding
// boundary timing, and the pinned-inputs contract the sweep is built on
// (a pinned control point is never flipped by any search mode, and pins
// are part of the solution-cache identity).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/solution_io.hpp"
#include "netlist/benchmarks.hpp"
#include "opt/problem.hpp"
#include "opt/state_search.hpp"
#include "sim/sim.hpp"
#include "svc/fingerprint.hpp"
#include "svc/hier.hpp"

namespace svtox {
namespace {

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

TEST(HierQuality, WithinTenPercentOfFlatHeu1) {
  // The headline acceptance bar: boundary-aware cones + stitch-refine keep
  // the hierarchical result within 10% of flat Heu1 on the circuits where
  // the legacy free-boundary flow was worst (deep multiplier / parity
  // structure cut at 400-gate budgets).
  for (const char* name : {"c6288", "c7552"}) {
    SCOPED_TRACE(name);
    const netlist::Netlist n = netlist::make_benchmark(name, lib());
    svc::HierOptions options;
    options.partition.max_gates = 400;
    options.random_vectors = 64;
    const svc::HierResult hier = svc::optimize_hierarchical(n, options);
    EXPECT_LE(hier.solution.delay_ps, hier.constraint_ps);

    const opt::AssignmentProblem problem(n, options.penalty_fraction);
    const opt::Solution flat = opt::heuristic1(problem);
    ASSERT_GT(flat.leakage_na, 0.0);
    const double ratio = hier.solution.leakage_na / flat.leakage_na;
    EXPECT_LE(ratio, 1.10) << "hier " << hier.solution.leakage_na
                           << " nA vs flat " << flat.leakage_na << " nA";
  }
}

TEST(HierQuality, StitchIsDeterministicAcrossWorkerCounts) {
  // Votes are applied in ascending partition-id order within each level
  // and refine candidates are evaluated in rank order, both independent of
  // scheduler completion order -- so the whole stitched solution must be
  // byte-identical no matter how many workers raced on the cone jobs.
  const netlist::Netlist n = netlist::make_benchmark("c880", lib());
  svc::HierOptions options;
  options.partition.max_gates = 60;
  options.random_vectors = 16;
  std::string reference;
  for (int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    options.workers = workers;
    const svc::HierResult hr = svc::optimize_hierarchical(n, options);
    const std::string text = core::write_solution(hr.solution, n);
    if (reference.empty()) {
      reference = text;
    } else {
      EXPECT_EQ(text, reference);
    }
  }
}

TEST(HierQuality, BoundaryTimingSeedReducesRepair) {
  // Seeding cones with measured upstream arrival/slew makes the per-cone
  // delay budgets composable, so the stitched config should need no more
  // global repair than the unseeded run (refine off to isolate the sweep).
  const netlist::Netlist n = netlist::make_benchmark("c6288", lib());
  svc::HierOptions options;
  options.partition.max_gates = 400;
  options.random_vectors = 64;
  options.refine_passes = 0;
  options.seed_boundary_timing = false;
  const svc::HierResult unseeded = svc::optimize_hierarchical(n, options);
  options.seed_boundary_timing = true;
  const svc::HierResult seeded = svc::optimize_hierarchical(n, options);
  EXPECT_LE(seeded.repaired_gates, unseeded.repaired_gates);
  EXPECT_LE(seeded.solution.delay_ps, seeded.constraint_ps);
}

TEST(PinnedInputs, NoSearchModeFlipsAPinnedControlPoint) {
  // The level sweep's soundness rests on this: a control point pinned via
  // SearchOptions::pinned_inputs holds its value at every leaf the search
  // (or its probe sweep) evaluates, in every search mode the cone jobs
  // dispatch to.
  const netlist::Netlist n = netlist::make_benchmark("c432", lib());
  const opt::AssignmentProblem problem(n, 0.05);
  const int cps = n.num_control_points();
  ASSERT_GE(cps, 4);

  opt::SearchOptions options;
  options.pinned_inputs.assign(cps, sim::Tri::kX);
  options.pinned_inputs[0] = sim::Tri::kOne;
  options.pinned_inputs[1] = sim::Tri::kZero;
  options.pinned_inputs[cps - 1] = sim::Tri::kOne;
  options.time_limit_s = 0.2;
  options.max_leaves = 32;
  options.random_probes = 8;

  const auto check = [&](const opt::Solution& s, const char* mode) {
    SCOPED_TRACE(mode);
    ASSERT_EQ(s.sleep_vector.size(), static_cast<std::size_t>(cps));
    EXPECT_TRUE(s.sleep_vector[0]);
    EXPECT_FALSE(s.sleep_vector[1]);
    EXPECT_TRUE(s.sleep_vector[cps - 1]);
  };
  check(opt::heuristic1(problem, options), "heu1");
  check(opt::heuristic2(problem, options), "heu2");
  check(opt::state_only_search(problem, options), "state-only");
}

TEST(PinnedInputs, CacheKeyChangesWithBoundaryContext) {
  // Cones solved under different stitched contexts must not alias one
  // cache entry: the pinned-input string and the boundary-timing seed are
  // both part of the key, and the empty strings reproduce the historical
  // (context-free) key.
  const std::uint64_t library_fp = svc::fingerprint_library(lib());
  const std::uint64_t netlist_fp =
      svc::fingerprint_netlist(netlist::make_benchmark("c432", lib()));
  svc::RunKnobs knobs;
  knobs.method = "heu1";
  knobs.penalty_fraction = 0.05;
  knobs.random_vectors = 16;
  knobs.seed = 2004;
  const std::string context_free = svc::cache_key(library_fp, netlist_fp, knobs);

  knobs.pinned_inputs = "1x0";
  const std::string pinned = svc::cache_key(library_fp, netlist_fp, knobs);
  EXPECT_NE(pinned, context_free);

  knobs.pinned_inputs = "1x1";
  EXPECT_NE(svc::cache_key(library_fp, netlist_fp, knobs), pinned);

  knobs.pinned_inputs = "1x0";
  EXPECT_EQ(svc::cache_key(library_fp, netlist_fp, knobs), pinned);

  knobs.boundary_timing = "120:14,0:0,310:22";
  EXPECT_NE(svc::cache_key(library_fp, netlist_fp, knobs), pinned);
}

}  // namespace
}  // namespace svtox
