// Sweeps the delay constraint on one circuit and emits the leakage/delay
// trade-off curve as a table and a CSV -- the data behind a Figure-5-style
// plot for any circuit in the suite.
//
//   ./delay_leakage_tradeoff [circuit] [csv_path]
//
// Defaults: c880, curve written to tradeoff.csv.
#include <cstdio>
#include <string>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "netlist/benchmarks.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace svtox;
  const std::string circuit_name = argc > 1 ? argv[1] : "c880";
  const std::string csv_path = argc > 2 ? argv[2] : "tradeoff.csv";

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});
  const auto circuit = netlist::make_benchmark(circuit_name, library);
  core::StandbyOptimizer optimizer(circuit);

  AsciiTable table;
  table.set_header({"penalty %", "constraint ps", "heu1 leakage uA", "reduction X",
                    "achieved delay ps"});

  for (double p : {0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.25, 0.50, 1.0}) {
    core::RunConfig config;
    config.penalty_fraction = p;
    const auto result = optimizer.run(core::Method::kHeu1, config);
    table.add_row({format_double(p * 100.0, 0),
                   format_double(optimizer.delay_budget().constraint_ps(p), 0),
                   report::format_ua(result.leakage_ua),
                   report::format_x(result.reduction_x),
                   format_double(result.solution.delay_ps, 0)});
  }

  std::printf("delay/leakage trade-off for %s (%d gates):\n%s", circuit_name.c_str(),
              circuit.num_gates(), table.render().c_str());
  if (report::save_table(table, csv_path)) {
    std::printf("curve written to %s and %s.csv\n", csv_path.c_str(), csv_path.c_str());
  }
  std::printf("\nreading the curve: leakage drops steeply in the first few percent\n"
              "and saturates -- the paper's conclusion that the method is best used\n"
              "at ~5%% or even 0%% delay cost.\n");
  return 0;
}
