// Optimizes a user-supplied ISCAS-85 .bench netlist -- the drop-in path for
// running the tool on the authentic benchmark files when they are
// available.
//
//   ./custom_netlist <path/to/netlist.bench> [penalty%]
//
// Default input: data/c17.bench at 5%.
#include <cstdio>
#include <string>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "netlist/bench_io.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace svtox;
  const std::string path = argc > 1 ? argv[1] : "data/c17.bench";
  const double penalty = argc > 2 ? parse_double(argv[2]) / 100.0 : 0.05;

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});

  netlist::Netlist circuit = [&] {
    try {
      return netlist::read_bench_file(path, library);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(), e.what());
      std::exit(1);
    }
  }();

  std::printf("%s: %d inputs, %d outputs, %d mapped gates, depth %d\n",
              circuit.name().c_str(), circuit.num_inputs(), circuit.num_outputs(),
              circuit.num_gates(), circuit.depth());

  core::StandbyOptimizer optimizer(circuit);
  core::RunConfig config;
  config.penalty_fraction = penalty;
  config.time_limit_s = 2.0;

  const auto avg = optimizer.run(core::Method::kAverageRandom, config);
  const auto h2 = optimizer.run(core::Method::kHeu2, config);

  std::printf("average-state leakage: %s uA\n", report::format_ua(avg.leakage_ua).c_str());
  std::printf("optimized standby:     %s uA (%.1fX) at %.0f%% delay penalty\n",
              report::format_ua(h2.leakage_ua).c_str(), h2.reduction_x, penalty * 100.0);

  std::string vector;
  for (bool bit : h2.solution.sleep_vector) vector += bit ? '1' : '0';
  std::printf("sleep vector (PI order");
  for (int s : circuit.primary_inputs()) std::printf(" %s", circuit.signal_name(s).c_str());
  std::printf("): %s\n", vector.c_str());
  return 0;
}
