// Quickstart: minimize the standby leakage of a small circuit.
//
// Builds the characterized dual-Vt/dual-Tox library, generates a benchmark
// circuit, runs the paper's methods at a 5% delay penalty, and prints the
// resulting sleep vector and a summary comparison.
//
//   ./quickstart [circuit] [penalty%]
//
// Defaults: c432 at 5%.
#include <cstdio>
#include <string>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "model/tech.hpp"
#include "netlist/benchmarks.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::string circuit_name = argc > 1 ? argv[1] : "c432";
  const double penalty = argc > 2 ? svtox::parse_double(argv[2]) / 100.0 : 0.05;

  // 1. Characterize the library (the SPICE-table substitute).
  const auto& tech = svtox::model::TechParams::nominal();
  const auto library = svtox::liberty::Library::build(tech, {});
  std::printf("library: %d cells, %d versions total\n",
              static_cast<int>(library.cells().size()), library.total_versions());

  // 2. Build the circuit.
  const auto circuit = svtox::netlist::make_benchmark(circuit_name, library);
  const auto st = svtox::netlist::stats(circuit);
  std::printf("circuit: %s -- %d inputs, %d outputs, %d gates, depth %d\n",
              circuit.name().c_str(), st.inputs, st.outputs, st.gates, st.depth);

  // 3. Optimize.
  svtox::core::StandbyOptimizer optimizer(circuit);
  const auto& budget = optimizer.delay_budget();
  std::printf("delay: all-fast %.0f ps, all-slow %.0f ps, constraint %.0f ps (%.0f%%)\n",
              budget.fast_delay_ps, budget.slow_delay_ps, budget.constraint_ps(penalty),
              penalty * 100.0);

  svtox::core::RunConfig config;
  config.penalty_fraction = penalty;
  config.time_limit_s = 2.0;

  svtox::AsciiTable table;
  table.set_header({"method", "leakage [uA]", "reduction X", "delay [ps]", "runtime"});
  for (const auto method :
       {svtox::core::Method::kAverageRandom, svtox::core::Method::kStateOnly,
        svtox::core::Method::kVtState, svtox::core::Method::kHeu1,
        svtox::core::Method::kHeu2}) {
    const auto result = optimizer.run(method, config);
    table.add_row({svtox::core::to_string(method),
                   svtox::report::format_ua(result.leakage_ua),
                   svtox::report::format_x(result.reduction_x),
                   method == svtox::core::Method::kAverageRandom
                       ? "-"
                       : svtox::format_double(result.solution.delay_ps, 0),
                   svtox::report::format_seconds(result.runtime_s)});
  }
  std::printf("%s", table.render().c_str());

  // 4. The sleep vector a scan chain would load on standby entry.
  const auto heu1 = optimizer.run(svtox::core::Method::kHeu1, config);
  std::string vector;
  for (bool bit : heu1.solution.sleep_vector) vector += bit ? '1' : '0';
  std::printf("heu1 sleep vector: %s\n", vector.c_str());
  return 0;
}
