// Explores the characterized dual-Vt/dual-Tox swap library: per-cell
// version counts, per-state leakage of every version, and delay factors.
// Also writes the library to `svtox_library.svlib` so other tools (or a
// later run) can load the identical characterization.
//
//   ./library_explorer [cell]     (default: show every cell briefly,
//                                  detail for NAND2)
#include <cstdio>
#include <fstream>
#include <string>

#include "cellkit/delay.hpp"
#include "cellkit/state.hpp"
#include "liberty/library.hpp"
#include "liberty/serialize.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace svtox;
  const std::string detail_cell = argc > 1 ? argv[1] : "NAND2";

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});

  AsciiTable overview;
  overview.set_header({"cell", "inputs", "versions", "min state leak nA", "max state leak nA"});
  for (const auto& cell : library.cells()) {
    double min_leak = 1e300;
    double max_leak = 0.0;
    for (std::uint32_t s = 0; s < cell.topology().num_states(); ++s) {
      for (const auto& variant : cell.variants()) {
        min_leak = std::min(min_leak, variant.leakage_na[s]);
        max_leak = std::max(max_leak, variant.leakage_na[s]);
      }
    }
    overview.add_row({cell.name(), std::to_string(cell.num_inputs()),
                      std::to_string(cell.num_variants()), format_double(min_leak, 1),
                      format_double(max_leak, 1)});
  }
  std::printf("library overview (%d versions total):\n%s\n", library.total_versions(),
              overview.render().c_str());

  const auto& cell = library.cell(detail_cell);
  std::printf("detail: %s\n", cell.name().c_str());
  AsciiTable detail;
  std::vector<std::string> header = {"version", "devices (vt:tox)"};
  for (std::uint32_t s = 0; s < cell.topology().num_states(); ++s) {
    header.push_back("leak@" + cellkit::state_to_string(s, cell.num_inputs()) + " nA");
  }
  header.push_back("worst rise factor");
  header.push_back("worst fall factor");
  detail.set_header(header);

  for (const auto& variant : cell.variants()) {
    std::vector<std::string> row = {variant.name};
    std::string devices;
    for (const auto& a : variant.assignment) {
      if (!devices.empty()) devices += ' ';
      devices += std::string(model::to_string(a.vt)) + ":" + model::to_string(a.tox);
    }
    row.push_back(devices);
    for (std::uint32_t s = 0; s < cell.topology().num_states(); ++s) {
      row.push_back(format_double(variant.leakage_na[s], 1));
    }
    double worst_rise = 1.0;
    double worst_fall = 1.0;
    for (int pin = 0; pin < cell.num_inputs(); ++pin) {
      worst_rise = std::max(worst_rise,
                            cellkit::delay_factor(cell.topology(), tech,
                                                  variant.assignment, pin,
                                                  cellkit::Edge::kRise));
      worst_fall = std::max(worst_fall,
                            cellkit::delay_factor(cell.topology(), tech,
                                                  variant.assignment, pin,
                                                  cellkit::Edge::kFall));
    }
    row.push_back(format_double(worst_rise, 2));
    row.push_back(format_double(worst_fall, 2));
    detail.add_row(row);
  }
  std::printf("%s\n", detail.render().c_str());

  const std::string path = "svtox_library.svlib";
  std::ofstream out(path);
  if (out) {
    liberty::write_library(library, out);
    std::printf("full characterization written to %s\n", path.c_str());
  }
  return 0;
}
