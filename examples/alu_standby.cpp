// Scenario: a mobile SoC datapath (64-bit ALU) that spends most of its life
// in standby. The paper's motivation -- a cell phone's standby current sets
// its shelf life -- maps exactly onto this block.
//
// The example computes the standby solution at a tight 5% delay penalty,
// reports the expected battery-life multiplier, and emits the cell-swap
// list (ECO-style) that implements the solution in a library-based flow.
#include <cstdio>
#include <map>
#include <string>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "netlist/generators.hpp"
#include "report/breakdown.hpp"
#include "report/report.hpp"
#include "util/table.hpp"

int main() {
  using namespace svtox;

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});
  const auto alu = netlist::alu64(library);
  std::printf("block: %s -- %d inputs, %d gates, logic depth %d\n",
              alu.name().c_str(), alu.num_inputs(), alu.num_gates(), alu.depth());

  core::StandbyOptimizer optimizer(alu);
  core::RunConfig config;
  config.penalty_fraction = 0.05;
  config.time_limit_s = 3.0;

  const auto baseline = optimizer.run(core::Method::kAverageRandom, config);
  const auto solution = optimizer.run(core::Method::kHeu2, config);

  std::printf("\nstandby leakage without any technique: %s uA (random-state average)\n",
              report::format_ua(baseline.leakage_ua).c_str());
  std::printf("standby leakage with state+Vt+Tox:      %s uA (%.1fX lower)\n",
              report::format_ua(solution.leakage_ua).c_str(), solution.reduction_x);
  std::printf("active-mode delay cost:                 %.1f%% of the max penalty "
              "(%.0f ps vs %.0f ps all-fast)\n",
              config.penalty_fraction * 100.0, solution.solution.delay_ps,
              optimizer.delay_budget().fast_delay_ps);
  std::printf("=> standby battery life scales by ~%.1fX for this block\n",
              solution.reduction_x);

  // The sleep vector the power-management unit scans in on standby entry.
  std::string vector;
  for (bool bit : solution.solution.sleep_vector) vector += bit ? '1' : '0';
  std::printf("\nsleep vector (a[63:0], b[63:0], sel1, sel0, cin order of PIs):\n%s\n",
              vector.c_str());

  // The ECO swap list: how many instances moved to which cell version.
  std::map<std::string, int> swaps;
  int swapped = 0;
  int reordered = 0;
  for (int g = 0; g < alu.num_gates(); ++g) {
    const auto& gc = solution.solution.config[static_cast<std::size_t>(g)];
    const auto& cell = alu.cell_of(g);
    if (gc.variant != cell.fastest_variant()) {
      ++swapped;
      ++swaps[cell.variant(gc.variant).name];
    }
    if (!gc.mapping.logical_to_physical.empty() && !gc.mapping.is_identity()) ++reordered;
  }
  // Component view: the dual-knob method must suppress both Isub and Igate.
  const auto before = report::leakage_breakdown(alu, sim::fastest_config(alu),
                                                solution.solution.sleep_vector);
  const auto after = report::leakage_breakdown(alu, solution.solution.config,
                                               solution.solution.sleep_vector);
  std::printf("\nat the chosen sleep state, before: Isub %.1f uA + Igate %.1f uA; "
              "after: Isub %.1f uA + Igate %.1f uA\n",
              before.total.isub_na / 1e3, before.total.igate_na / 1e3,
              after.total.isub_na / 1e3, after.total.igate_na / 1e3);

  std::printf("\ncell swaps: %d of %d instances (%d also pin-reordered)\n", swapped,
              alu.num_gates(), reordered);
  AsciiTable table;
  table.set_header({"target cell version", "instances"});
  for (const auto& [name, count] : swaps) {
    table.add_row({name, std::to_string(count)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
