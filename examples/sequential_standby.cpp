// Sequential standby: a pipelined datapath entering sleep mode.
//
// In a real SoC the sleep vector is not applied at package pins -- it is
// scanned (or set/reset-forced) into the registers, which is exactly the
// flip-flop-modification technique of the paper's refs [1][3]. This example
// optimizes a 4-stage pipeline where the controllable state is primary
// inputs *plus* every register bit, and reports the hardware cost side:
// how many flip-flops need a forcing feature (those whose chosen standby
// state differs from the reset value 0).
#include <cstdio>
#include <string>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "netlist/generators.hpp"
#include "report/report.hpp"

int main() {
  using namespace svtox;

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});
  const auto pipe = netlist::sequential_pipeline(library, "pipe4x16", 16, 4, 220, 42);

  const auto st = netlist::stats(pipe);
  std::printf("pipeline: %d inputs, %d flip-flops, %d gates over 4 stages "
              "(per-stage depth %d)\n",
              st.inputs, st.flip_flops, st.gates, st.depth);
  std::printf("sleep-vector width: %d bits (%d pins + %d register states)\n",
              pipe.num_control_points(), st.inputs, st.flip_flops);

  core::StandbyOptimizer optimizer(pipe);
  core::RunConfig config;
  config.penalty_fraction = 0.05;
  config.time_limit_s = 2.0;

  const auto avg = optimizer.run(core::Method::kAverageRandom, config);
  const auto h2 = optimizer.run(core::Method::kHeu2, config);
  std::printf("\nrandom-state average leakage: %s uA\n",
              report::format_ua(avg.leakage_ua).c_str());
  std::printf("optimized standby leakage:    %s uA (%.1fX)\n",
              report::format_ua(h2.leakage_ua).c_str(), h2.reduction_x);

  // Hardware cost: registers whose standby state is 1 need set-forcing
  // (reset-to-0 flops get their 0 for free on standby entry).
  int forced = 0;
  const std::size_t pi_count = static_cast<std::size_t>(pipe.num_inputs());
  for (std::size_t i = pi_count; i < h2.solution.sleep_vector.size(); ++i) {
    forced += h2.solution.sleep_vector[i] ? 1 : 0;
  }
  std::printf("\nregister modification cost: %d of %d flip-flops need a set-forcing\n"
              "feature; the remaining %d use their existing reset state.\n",
              forced, st.flip_flops, st.flip_flops - forced);

  std::string bits;
  for (std::size_t i = pi_count; i < h2.solution.sleep_vector.size(); ++i) {
    bits += h2.solution.sleep_vector[i] ? '1' : '0';
  }
  std::printf("register standby image: %s\n", bits.c_str());
  return 0;
}
