// Temperature study -- making the paper's footnote quantitative.
//
// The paper analyzes at room temperature, arguing that "junction
// temperatures during these idle periods [are] lower than under normal
// operating conditions". This example re-characterizes the library across
// junction temperatures and shows (1) how the Igate share of total leakage
// collapses as Isub grows exponentially on a hot die, and (2) that the
// proposed method keeps winning at every corner, with the reduction factor
// growing at high temperature (more Isub to suppress).
#include <cstdio>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "netlist/benchmarks.hpp"
#include "report/breakdown.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace svtox;
  const std::string circuit_name = argc > 1 ? argv[1] : "c880";

  AsciiTable table;
  table.set_header({"junction temp", "avg leakage uA", "Igate share %",
                    "heu1@5% uA", "reduction X"});

  for (double celsius : {27.0, 55.0, 85.0, 110.0}) {
    const model::TechParams tech =
        model::TechParams::nominal().at_temperature(273.15 + celsius);
    const auto library = liberty::Library::build(tech, {});
    const auto circuit = netlist::make_benchmark(circuit_name, library);

    core::StandbyOptimizer optimizer(circuit);
    core::RunConfig config;
    config.penalty_fraction = 0.05;
    config.random_vectors = 4000;

    const auto avg = optimizer.run(core::Method::kAverageRandom, config);
    const auto h1 = optimizer.run(core::Method::kHeu1, config);
    const auto breakdown = report::leakage_breakdown(
        circuit, sim::fastest_config(circuit), h1.solution.sleep_vector);

    table.add_row({svtox::format_double(celsius, 0) + " C",
                   report::format_ua(avg.leakage_ua),
                   svtox::format_double(100.0 * breakdown.total.igate_fraction(), 1),
                   report::format_ua(h1.leakage_ua), report::format_x(h1.reduction_x)});
  }
  std::printf("temperature sensitivity for %s:\n%s", circuit_name.c_str(),
              table.render().c_str());
  std::printf(
      "\nreading: at idle (cool) junctions Igate is a large share and the\n"
      "dual-Tox knob is essential; on a hot die Isub dominates and the Vt\n"
      "knob does more of the work -- the method adapts because the library\n"
      "is re-characterized, not re-designed.\n");
  return 0;
}
