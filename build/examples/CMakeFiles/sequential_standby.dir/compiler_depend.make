# Empty compiler generated dependencies file for sequential_standby.
# This may be replaced when dependencies are built.
