file(REMOVE_RECURSE
  "CMakeFiles/sequential_standby.dir/sequential_standby.cpp.o"
  "CMakeFiles/sequential_standby.dir/sequential_standby.cpp.o.d"
  "sequential_standby"
  "sequential_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
