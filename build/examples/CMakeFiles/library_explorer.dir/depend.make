# Empty dependencies file for library_explorer.
# This may be replaced when dependencies are built.
