file(REMOVE_RECURSE
  "CMakeFiles/library_explorer.dir/library_explorer.cpp.o"
  "CMakeFiles/library_explorer.dir/library_explorer.cpp.o.d"
  "library_explorer"
  "library_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
