# Empty compiler generated dependencies file for alu_standby.
# This may be replaced when dependencies are built.
