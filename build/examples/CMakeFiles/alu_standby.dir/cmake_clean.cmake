file(REMOVE_RECURSE
  "CMakeFiles/alu_standby.dir/alu_standby.cpp.o"
  "CMakeFiles/alu_standby.dir/alu_standby.cpp.o.d"
  "alu_standby"
  "alu_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alu_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
