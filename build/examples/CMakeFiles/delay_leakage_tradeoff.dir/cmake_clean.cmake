file(REMOVE_RECURSE
  "CMakeFiles/delay_leakage_tradeoff.dir/delay_leakage_tradeoff.cpp.o"
  "CMakeFiles/delay_leakage_tradeoff.dir/delay_leakage_tradeoff.cpp.o.d"
  "delay_leakage_tradeoff"
  "delay_leakage_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_leakage_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
