# Empty compiler generated dependencies file for delay_leakage_tradeoff.
# This may be replaced when dependencies are built.
