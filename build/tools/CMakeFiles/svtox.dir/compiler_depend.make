# Empty compiler generated dependencies file for svtox.
# This may be replaced when dependencies are built.
