# Empty dependencies file for svtox.
# This may be replaced when dependencies are built.
