file(REMOVE_RECURSE
  "CMakeFiles/svtox.dir/svtox_cli.cpp.o"
  "CMakeFiles/svtox.dir/svtox_cli.cpp.o.d"
  "svtox"
  "svtox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
