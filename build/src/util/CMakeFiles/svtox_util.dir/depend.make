# Empty dependencies file for svtox_util.
# This may be replaced when dependencies are built.
