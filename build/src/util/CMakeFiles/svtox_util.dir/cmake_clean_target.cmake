file(REMOVE_RECURSE
  "libsvtox_util.a"
)
