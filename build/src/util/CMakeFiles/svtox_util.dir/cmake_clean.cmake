file(REMOVE_RECURSE
  "CMakeFiles/svtox_util.dir/log.cpp.o"
  "CMakeFiles/svtox_util.dir/log.cpp.o.d"
  "CMakeFiles/svtox_util.dir/rng.cpp.o"
  "CMakeFiles/svtox_util.dir/rng.cpp.o.d"
  "CMakeFiles/svtox_util.dir/strings.cpp.o"
  "CMakeFiles/svtox_util.dir/strings.cpp.o.d"
  "CMakeFiles/svtox_util.dir/table.cpp.o"
  "CMakeFiles/svtox_util.dir/table.cpp.o.d"
  "libsvtox_util.a"
  "libsvtox_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
