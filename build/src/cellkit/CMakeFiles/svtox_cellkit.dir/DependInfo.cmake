
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellkit/analyzer.cpp" "src/cellkit/CMakeFiles/svtox_cellkit.dir/analyzer.cpp.o" "gcc" "src/cellkit/CMakeFiles/svtox_cellkit.dir/analyzer.cpp.o.d"
  "/root/repo/src/cellkit/area.cpp" "src/cellkit/CMakeFiles/svtox_cellkit.dir/area.cpp.o" "gcc" "src/cellkit/CMakeFiles/svtox_cellkit.dir/area.cpp.o.d"
  "/root/repo/src/cellkit/delay.cpp" "src/cellkit/CMakeFiles/svtox_cellkit.dir/delay.cpp.o" "gcc" "src/cellkit/CMakeFiles/svtox_cellkit.dir/delay.cpp.o.d"
  "/root/repo/src/cellkit/sp_network.cpp" "src/cellkit/CMakeFiles/svtox_cellkit.dir/sp_network.cpp.o" "gcc" "src/cellkit/CMakeFiles/svtox_cellkit.dir/sp_network.cpp.o.d"
  "/root/repo/src/cellkit/state.cpp" "src/cellkit/CMakeFiles/svtox_cellkit.dir/state.cpp.o" "gcc" "src/cellkit/CMakeFiles/svtox_cellkit.dir/state.cpp.o.d"
  "/root/repo/src/cellkit/topology.cpp" "src/cellkit/CMakeFiles/svtox_cellkit.dir/topology.cpp.o" "gcc" "src/cellkit/CMakeFiles/svtox_cellkit.dir/topology.cpp.o.d"
  "/root/repo/src/cellkit/variants.cpp" "src/cellkit/CMakeFiles/svtox_cellkit.dir/variants.cpp.o" "gcc" "src/cellkit/CMakeFiles/svtox_cellkit.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/svtox_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svtox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
