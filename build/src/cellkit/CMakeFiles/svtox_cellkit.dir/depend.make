# Empty dependencies file for svtox_cellkit.
# This may be replaced when dependencies are built.
