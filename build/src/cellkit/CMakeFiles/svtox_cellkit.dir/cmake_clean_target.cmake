file(REMOVE_RECURSE
  "libsvtox_cellkit.a"
)
