file(REMOVE_RECURSE
  "CMakeFiles/svtox_cellkit.dir/analyzer.cpp.o"
  "CMakeFiles/svtox_cellkit.dir/analyzer.cpp.o.d"
  "CMakeFiles/svtox_cellkit.dir/area.cpp.o"
  "CMakeFiles/svtox_cellkit.dir/area.cpp.o.d"
  "CMakeFiles/svtox_cellkit.dir/delay.cpp.o"
  "CMakeFiles/svtox_cellkit.dir/delay.cpp.o.d"
  "CMakeFiles/svtox_cellkit.dir/sp_network.cpp.o"
  "CMakeFiles/svtox_cellkit.dir/sp_network.cpp.o.d"
  "CMakeFiles/svtox_cellkit.dir/state.cpp.o"
  "CMakeFiles/svtox_cellkit.dir/state.cpp.o.d"
  "CMakeFiles/svtox_cellkit.dir/topology.cpp.o"
  "CMakeFiles/svtox_cellkit.dir/topology.cpp.o.d"
  "CMakeFiles/svtox_cellkit.dir/variants.cpp.o"
  "CMakeFiles/svtox_cellkit.dir/variants.cpp.o.d"
  "libsvtox_cellkit.a"
  "libsvtox_cellkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_cellkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
