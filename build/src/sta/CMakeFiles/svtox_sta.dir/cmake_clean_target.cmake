file(REMOVE_RECURSE
  "libsvtox_sta.a"
)
