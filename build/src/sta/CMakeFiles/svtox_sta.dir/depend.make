# Empty dependencies file for svtox_sta.
# This may be replaced when dependencies are built.
