file(REMOVE_RECURSE
  "CMakeFiles/svtox_sta.dir/sta.cpp.o"
  "CMakeFiles/svtox_sta.dir/sta.cpp.o.d"
  "CMakeFiles/svtox_sta.dir/timing_report.cpp.o"
  "CMakeFiles/svtox_sta.dir/timing_report.cpp.o.d"
  "libsvtox_sta.a"
  "libsvtox_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
