# Empty compiler generated dependencies file for svtox_opt.
# This may be replaced when dependencies are built.
