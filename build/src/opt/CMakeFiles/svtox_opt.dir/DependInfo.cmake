
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/annealing.cpp" "src/opt/CMakeFiles/svtox_opt.dir/annealing.cpp.o" "gcc" "src/opt/CMakeFiles/svtox_opt.dir/annealing.cpp.o.d"
  "/root/repo/src/opt/gate_assign.cpp" "src/opt/CMakeFiles/svtox_opt.dir/gate_assign.cpp.o" "gcc" "src/opt/CMakeFiles/svtox_opt.dir/gate_assign.cpp.o.d"
  "/root/repo/src/opt/problem.cpp" "src/opt/CMakeFiles/svtox_opt.dir/problem.cpp.o" "gcc" "src/opt/CMakeFiles/svtox_opt.dir/problem.cpp.o.d"
  "/root/repo/src/opt/state_search.cpp" "src/opt/CMakeFiles/svtox_opt.dir/state_search.cpp.o" "gcc" "src/opt/CMakeFiles/svtox_opt.dir/state_search.cpp.o.d"
  "/root/repo/src/opt/unknown_state.cpp" "src/opt/CMakeFiles/svtox_opt.dir/unknown_state.cpp.o" "gcc" "src/opt/CMakeFiles/svtox_opt.dir/unknown_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/svtox_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svtox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/svtox_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svtox_util.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/svtox_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/cellkit/CMakeFiles/svtox_cellkit.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/svtox_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
