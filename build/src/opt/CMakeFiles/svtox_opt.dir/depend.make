# Empty dependencies file for svtox_opt.
# This may be replaced when dependencies are built.
