file(REMOVE_RECURSE
  "CMakeFiles/svtox_opt.dir/annealing.cpp.o"
  "CMakeFiles/svtox_opt.dir/annealing.cpp.o.d"
  "CMakeFiles/svtox_opt.dir/gate_assign.cpp.o"
  "CMakeFiles/svtox_opt.dir/gate_assign.cpp.o.d"
  "CMakeFiles/svtox_opt.dir/problem.cpp.o"
  "CMakeFiles/svtox_opt.dir/problem.cpp.o.d"
  "CMakeFiles/svtox_opt.dir/state_search.cpp.o"
  "CMakeFiles/svtox_opt.dir/state_search.cpp.o.d"
  "CMakeFiles/svtox_opt.dir/unknown_state.cpp.o"
  "CMakeFiles/svtox_opt.dir/unknown_state.cpp.o.d"
  "libsvtox_opt.a"
  "libsvtox_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
