file(REMOVE_RECURSE
  "libsvtox_opt.a"
)
