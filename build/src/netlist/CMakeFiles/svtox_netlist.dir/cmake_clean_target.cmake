file(REMOVE_RECURSE
  "libsvtox_netlist.a"
)
