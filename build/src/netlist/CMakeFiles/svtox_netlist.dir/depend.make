# Empty dependencies file for svtox_netlist.
# This may be replaced when dependencies are built.
