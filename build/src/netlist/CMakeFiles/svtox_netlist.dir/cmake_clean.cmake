file(REMOVE_RECURSE
  "CMakeFiles/svtox_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/svtox_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/svtox_netlist.dir/benchmarks.cpp.o"
  "CMakeFiles/svtox_netlist.dir/benchmarks.cpp.o.d"
  "CMakeFiles/svtox_netlist.dir/generators.cpp.o"
  "CMakeFiles/svtox_netlist.dir/generators.cpp.o.d"
  "CMakeFiles/svtox_netlist.dir/netlist.cpp.o"
  "CMakeFiles/svtox_netlist.dir/netlist.cpp.o.d"
  "libsvtox_netlist.a"
  "libsvtox_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
