file(REMOVE_RECURSE
  "libsvtox_report.a"
)
