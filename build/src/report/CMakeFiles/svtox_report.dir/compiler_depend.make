# Empty compiler generated dependencies file for svtox_report.
# This may be replaced when dependencies are built.
