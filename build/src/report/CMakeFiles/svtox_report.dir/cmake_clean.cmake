file(REMOVE_RECURSE
  "CMakeFiles/svtox_report.dir/breakdown.cpp.o"
  "CMakeFiles/svtox_report.dir/breakdown.cpp.o.d"
  "CMakeFiles/svtox_report.dir/dot_export.cpp.o"
  "CMakeFiles/svtox_report.dir/dot_export.cpp.o.d"
  "CMakeFiles/svtox_report.dir/report.cpp.o"
  "CMakeFiles/svtox_report.dir/report.cpp.o.d"
  "libsvtox_report.a"
  "libsvtox_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
