
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/lib_format.cpp" "src/liberty/CMakeFiles/svtox_liberty.dir/lib_format.cpp.o" "gcc" "src/liberty/CMakeFiles/svtox_liberty.dir/lib_format.cpp.o.d"
  "/root/repo/src/liberty/library.cpp" "src/liberty/CMakeFiles/svtox_liberty.dir/library.cpp.o" "gcc" "src/liberty/CMakeFiles/svtox_liberty.dir/library.cpp.o.d"
  "/root/repo/src/liberty/nldm.cpp" "src/liberty/CMakeFiles/svtox_liberty.dir/nldm.cpp.o" "gcc" "src/liberty/CMakeFiles/svtox_liberty.dir/nldm.cpp.o.d"
  "/root/repo/src/liberty/serialize.cpp" "src/liberty/CMakeFiles/svtox_liberty.dir/serialize.cpp.o" "gcc" "src/liberty/CMakeFiles/svtox_liberty.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellkit/CMakeFiles/svtox_cellkit.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/svtox_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svtox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
