file(REMOVE_RECURSE
  "CMakeFiles/svtox_liberty.dir/lib_format.cpp.o"
  "CMakeFiles/svtox_liberty.dir/lib_format.cpp.o.d"
  "CMakeFiles/svtox_liberty.dir/library.cpp.o"
  "CMakeFiles/svtox_liberty.dir/library.cpp.o.d"
  "CMakeFiles/svtox_liberty.dir/nldm.cpp.o"
  "CMakeFiles/svtox_liberty.dir/nldm.cpp.o.d"
  "CMakeFiles/svtox_liberty.dir/serialize.cpp.o"
  "CMakeFiles/svtox_liberty.dir/serialize.cpp.o.d"
  "libsvtox_liberty.a"
  "libsvtox_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
