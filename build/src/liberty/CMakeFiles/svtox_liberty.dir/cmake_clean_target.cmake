file(REMOVE_RECURSE
  "libsvtox_liberty.a"
)
