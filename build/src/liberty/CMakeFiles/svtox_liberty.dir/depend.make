# Empty dependencies file for svtox_liberty.
# This may be replaced when dependencies are built.
