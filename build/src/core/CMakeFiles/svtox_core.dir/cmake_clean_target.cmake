file(REMOVE_RECURSE
  "libsvtox_core.a"
)
