file(REMOVE_RECURSE
  "CMakeFiles/svtox_core.dir/optimizer.cpp.o"
  "CMakeFiles/svtox_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/svtox_core.dir/solution_io.cpp.o"
  "CMakeFiles/svtox_core.dir/solution_io.cpp.o.d"
  "libsvtox_core.a"
  "libsvtox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
