# Empty dependencies file for svtox_core.
# This may be replaced when dependencies are built.
