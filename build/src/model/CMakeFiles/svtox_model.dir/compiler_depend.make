# Empty compiler generated dependencies file for svtox_model.
# This may be replaced when dependencies are built.
