file(REMOVE_RECURSE
  "CMakeFiles/svtox_model.dir/leakage.cpp.o"
  "CMakeFiles/svtox_model.dir/leakage.cpp.o.d"
  "CMakeFiles/svtox_model.dir/tech.cpp.o"
  "CMakeFiles/svtox_model.dir/tech.cpp.o.d"
  "libsvtox_model.a"
  "libsvtox_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
