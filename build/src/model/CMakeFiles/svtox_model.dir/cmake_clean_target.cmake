file(REMOVE_RECURSE
  "libsvtox_model.a"
)
