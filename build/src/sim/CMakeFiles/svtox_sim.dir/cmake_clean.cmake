file(REMOVE_RECURSE
  "CMakeFiles/svtox_sim.dir/equivalence.cpp.o"
  "CMakeFiles/svtox_sim.dir/equivalence.cpp.o.d"
  "CMakeFiles/svtox_sim.dir/leakage_eval.cpp.o"
  "CMakeFiles/svtox_sim.dir/leakage_eval.cpp.o.d"
  "CMakeFiles/svtox_sim.dir/probability.cpp.o"
  "CMakeFiles/svtox_sim.dir/probability.cpp.o.d"
  "CMakeFiles/svtox_sim.dir/sim.cpp.o"
  "CMakeFiles/svtox_sim.dir/sim.cpp.o.d"
  "libsvtox_sim.a"
  "libsvtox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svtox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
