
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/equivalence.cpp" "src/sim/CMakeFiles/svtox_sim.dir/equivalence.cpp.o" "gcc" "src/sim/CMakeFiles/svtox_sim.dir/equivalence.cpp.o.d"
  "/root/repo/src/sim/leakage_eval.cpp" "src/sim/CMakeFiles/svtox_sim.dir/leakage_eval.cpp.o" "gcc" "src/sim/CMakeFiles/svtox_sim.dir/leakage_eval.cpp.o.d"
  "/root/repo/src/sim/probability.cpp" "src/sim/CMakeFiles/svtox_sim.dir/probability.cpp.o" "gcc" "src/sim/CMakeFiles/svtox_sim.dir/probability.cpp.o.d"
  "/root/repo/src/sim/sim.cpp" "src/sim/CMakeFiles/svtox_sim.dir/sim.cpp.o" "gcc" "src/sim/CMakeFiles/svtox_sim.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/svtox_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svtox_util.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/svtox_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/cellkit/CMakeFiles/svtox_cellkit.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/svtox_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
