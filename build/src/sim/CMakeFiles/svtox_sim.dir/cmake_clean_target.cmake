file(REMOVE_RECURSE
  "libsvtox_sim.a"
)
