# Empty compiler generated dependencies file for svtox_sim.
# This may be replaced when dependencies are built.
