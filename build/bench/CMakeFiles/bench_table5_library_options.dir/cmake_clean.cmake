file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_library_options.dir/bench_table5_library_options.cpp.o"
  "CMakeFiles/bench_table5_library_options.dir/bench_table5_library_options.cpp.o.d"
  "bench_table5_library_options"
  "bench_table5_library_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_library_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
