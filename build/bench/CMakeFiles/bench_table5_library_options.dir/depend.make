# Empty dependencies file for bench_table5_library_options.
# This may be replaced when dependencies are built.
