# Empty dependencies file for bench_table3_heuristics.
# This may be replaced when dependencies are built.
