file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_heuristics.dir/bench_table3_heuristics.cpp.o"
  "CMakeFiles/bench_table3_heuristics.dir/bench_table3_heuristics.cpp.o.d"
  "bench_table3_heuristics"
  "bench_table3_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
