file(REMOVE_RECURSE
  "CMakeFiles/cellkit_property_test.dir/cellkit_property_test.cpp.o"
  "CMakeFiles/cellkit_property_test.dir/cellkit_property_test.cpp.o.d"
  "cellkit_property_test"
  "cellkit_property_test.pdb"
  "cellkit_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellkit_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
