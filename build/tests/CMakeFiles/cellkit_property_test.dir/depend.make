# Empty dependencies file for cellkit_property_test.
# This may be replaced when dependencies are built.
