# Empty compiler generated dependencies file for cellkit_variants_test.
# This may be replaced when dependencies are built.
