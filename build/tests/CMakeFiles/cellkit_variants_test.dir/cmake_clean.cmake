file(REMOVE_RECURSE
  "CMakeFiles/cellkit_variants_test.dir/cellkit_variants_test.cpp.o"
  "CMakeFiles/cellkit_variants_test.dir/cellkit_variants_test.cpp.o.d"
  "cellkit_variants_test"
  "cellkit_variants_test.pdb"
  "cellkit_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellkit_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
