# Empty dependencies file for timing_report_test.
# This may be replaced when dependencies are built.
