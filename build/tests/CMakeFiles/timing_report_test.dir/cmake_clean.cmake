file(REMOVE_RECURSE
  "CMakeFiles/timing_report_test.dir/timing_report_test.cpp.o"
  "CMakeFiles/timing_report_test.dir/timing_report_test.cpp.o.d"
  "timing_report_test"
  "timing_report_test.pdb"
  "timing_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
