# Empty compiler generated dependencies file for lib_format_test.
# This may be replaced when dependencies are built.
