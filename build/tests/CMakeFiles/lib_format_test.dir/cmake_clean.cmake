file(REMOVE_RECURSE
  "CMakeFiles/lib_format_test.dir/lib_format_test.cpp.o"
  "CMakeFiles/lib_format_test.dir/lib_format_test.cpp.o.d"
  "lib_format_test"
  "lib_format_test.pdb"
  "lib_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lib_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
