# Empty compiler generated dependencies file for cellkit_delay_test.
# This may be replaced when dependencies are built.
