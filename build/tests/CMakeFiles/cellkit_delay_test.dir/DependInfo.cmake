
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cellkit_delay_test.cpp" "tests/CMakeFiles/cellkit_delay_test.dir/cellkit_delay_test.cpp.o" "gcc" "tests/CMakeFiles/cellkit_delay_test.dir/cellkit_delay_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/svtox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/svtox_report.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/svtox_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/svtox_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/svtox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/svtox_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/svtox_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/cellkit/CMakeFiles/svtox_cellkit.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/svtox_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svtox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
