file(REMOVE_RECURSE
  "CMakeFiles/cellkit_delay_test.dir/cellkit_delay_test.cpp.o"
  "CMakeFiles/cellkit_delay_test.dir/cellkit_delay_test.cpp.o.d"
  "cellkit_delay_test"
  "cellkit_delay_test.pdb"
  "cellkit_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellkit_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
