# Empty dependencies file for cellkit_analyzer_test.
# This may be replaced when dependencies are built.
