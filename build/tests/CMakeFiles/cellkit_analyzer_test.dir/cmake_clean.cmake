file(REMOVE_RECURSE
  "CMakeFiles/cellkit_analyzer_test.dir/cellkit_analyzer_test.cpp.o"
  "CMakeFiles/cellkit_analyzer_test.dir/cellkit_analyzer_test.cpp.o.d"
  "cellkit_analyzer_test"
  "cellkit_analyzer_test.pdb"
  "cellkit_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellkit_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
