file(REMOVE_RECURSE
  "CMakeFiles/cellkit_topology_test.dir/cellkit_topology_test.cpp.o"
  "CMakeFiles/cellkit_topology_test.dir/cellkit_topology_test.cpp.o.d"
  "cellkit_topology_test"
  "cellkit_topology_test.pdb"
  "cellkit_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellkit_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
