# Empty compiler generated dependencies file for cellkit_topology_test.
# This may be replaced when dependencies are built.
