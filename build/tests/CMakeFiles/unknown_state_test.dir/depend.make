# Empty dependencies file for unknown_state_test.
# This may be replaced when dependencies are built.
