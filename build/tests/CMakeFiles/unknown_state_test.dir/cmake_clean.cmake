file(REMOVE_RECURSE
  "CMakeFiles/unknown_state_test.dir/unknown_state_test.cpp.o"
  "CMakeFiles/unknown_state_test.dir/unknown_state_test.cpp.o.d"
  "unknown_state_test"
  "unknown_state_test.pdb"
  "unknown_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unknown_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
