#!/usr/bin/env bash
# Regenerate every BENCH_*.json artifact from a Release build.
#
# The artifacts at the repo root are performance provenance: each one must
# come from a Release binary (the benches refuse anything else -- see
# bench/common.hpp) and carries its build type in the JSON. This script is
# the one blessed way to refresh them, so a stray debug capture can never
# land again.
#
# Usage: tools/regen_benchmarks.sh [build-dir]
#   build-dir defaults to build-release (created/configured if missing).
#
# Knobs are inherited from the environment (SVTOX_VECTORS, SVTOX_PROBES,
# SVTOX_TIME_LIMIT, SVTOX_CIRCUITS, SVTOX_SCALE_*); defaults reproduce the
# checked-in artifacts.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$JOBS" --target \
  bench_micro bench_sim_kernels bench_service_throughput bench_scale

cd "$ROOT"

# google-benchmark suites: one artifact per kernel family, filters matching
# the historical captures.
"$BUILD/bench/bench_micro" \
  '--benchmark_filter=BM_BoundEngine|BM_IncrementalTernaryUpdate|BM_FullTernarySim|BM_RootSplitFullTree' \
  --benchmark_out=BENCH_bound_engine.json --benchmark_out_format=json
"$BUILD/bench/bench_micro" \
  '--benchmark_filter=BM_LeafGreedy' \
  --benchmark_out=BENCH_leaf_eval.json --benchmark_out_format=json

# Curated artifacts (hand-rolled JSON writers).
"$BUILD/bench/bench_sim_kernels" BENCH_sim_kernels.json
"$BUILD/bench/bench_service_throughput" BENCH_service.json
"$BUILD/bench/bench_scale" BENCH_scale.json

echo
echo "Regenerated:"
for f in BENCH_bound_engine.json BENCH_leaf_eval.json BENCH_sim_kernels.json BENCH_service.json BENCH_scale.json; do
  echo "  $f"
done
