// svtoxd: the svtox optimization daemon.
//
//   svtoxd [--socket PATH] [--workers N] [--queue-capacity N]
//          [--cache-capacity N] [--cache-dir DIR] [--contexts N]
//          [--checkpoint-dir DIR] [--checkpoint-every SEC]
//          [--listen-tcp [HOST:]PORT] [--peers A,B,...] [--self HOST:PORT]
//          [--peers-file PATH] [--heartbeat-interval SEC]
//          [--suspect-after SEC] [--down-after SEC] [--cache-replicas N]
//          [--adopt-jobs] [--max-connections N] [--steal-after SEC]
//
// Listens on a Unix-domain socket (newline-delimited JSON) and optionally
// on TCP (--listen-tcp; the same JSON in length-prefixed frames) -- the
// protocol is documented in src/svc/server.hpp. Jobs run on a persistent
// worker pool that keeps characterized libraries, per-circuit optimizer
// contexts and the solution cache warm across requests; `svtox batch` is
// the matching client for either transport.
//
// --peers turns the daemon into a cluster member: the solution cache
// becomes two-level (a consistent-hash ring decides which member owns each
// key, so identical jobs submitted anywhere in the cluster solve once),
// and jobs with "subtrees" >= 2 distribute their state-tree shards to the
// peers with checkpoint-token work-stealing. The peer list must be the
// same on every member; --self names this daemon's own TCP address in that
// list (default: 127.0.0.1:<bound port>).
//
// Self-healing: --heartbeat-interval starts a prober that pings every peer
// and classifies it up/suspect/down (--suspect-after / --down-after);
// down peers are routed around until they answer again. --cache-replicas N
// replicates cache entries to the next N ring successors so a crashed
// owner's keys stay served. --peers-file PATH makes membership dynamic:
// SIGHUP (or a `cluster_reload` request) re-reads the file and swaps the
// ring atomically. --adopt-jobs scans --checkpoint-dir at startup for job
// ledgers orphaned by a crashed coordinator and resumes them.
//
// Exits on a `shutdown` request (draining the backlog unless
// {"drain":false}). SIGINT/SIGTERM interrupt running searches instead of
// draining: with --checkpoint-dir each search saves its frontier first, so
// resubmitting the same jobs to a restarted daemon resumes where they
// stopped.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <limits.h>
#include <unistd.h>

#include "svc/cluster.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: svtoxd [--socket PATH] [--workers N] [--queue-capacity N]\n"
               "              [--cache-capacity N] [--cache-dir DIR] [--contexts N]\n"
               "              [--checkpoint-dir DIR] [--checkpoint-every SEC]\n"
               "              [--listen-tcp [HOST:]PORT] [--peers A,B,...]\n"
               "              [--self HOST:PORT] [--peers-file PATH]\n"
               "              [--heartbeat-interval SEC] [--suspect-after SEC]\n"
               "              [--down-after SEC] [--cache-replicas N]\n"
               "              [--adopt-jobs] [--max-connections N]\n"
               "              [--steal-after SEC]\n");
  return 2;
}

// Self-pipe: the only async-signal-safe way to get from a signal handler to
// the server's (mutex-guarded) stop path.
int g_signal_pipe[2] = {-1, -1};

// Distinguishes a signal-driven exit (interrupt running searches so they
// checkpoint) from a protocol shutdown (honor the request's drain flag).
std::atomic<bool> g_signalled{false};

void on_signal(int sig) {
  // 1 = terminate (SIGINT/SIGTERM), 2 = reload peers file (SIGHUP).
  const char byte = sig == SIGHUP ? 2 : 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Daemons may be sent to the background or started from a transient CWD
/// (systemd, test harnesses); every relative state directory is therefore
/// resolved against the *startup* CWD once and logged, so checkpoints and
/// cache entries land where the operator can find them -- not wherever the
/// process happens to chdir to later.
std::string absolute_dir(const std::string& dir) {
  if (dir.empty() || dir.front() == '/') return dir;
  char cwd[PATH_MAX];
  if (::getcwd(cwd, sizeof cwd) == nullptr) return dir;
  return std::string(cwd) + "/" + dir;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  svtox::svc::ServerOptions server_options;
  server_options.socket_path = "/tmp/svtoxd.sock";
  svtox::svc::Scheduler::Options options;
  options.workers = 0;  // all hardware threads
  std::vector<std::string> peers;
  std::string self_address;
  std::string peers_file;
  double heartbeat_interval_s = 0.0;
  double suspect_after_s = 3.0;
  double down_after_s = 10.0;
  int cache_replicas = 0;
  bool adopt_jobs = false;

  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const bool has_value = i + 1 < argc;
    auto value = [&]() -> std::string {
      if (!has_value) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--socket") server_options.socket_path = value();
    else if (key == "--workers") options.workers = std::atoi(value().c_str());
    else if (key == "--queue-capacity")
      options.queue_capacity = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--cache-capacity")
      options.cache_capacity = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--cache-dir") options.cache_dir = value();
    else if (key == "--contexts")
      options.contexts_per_worker = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--checkpoint-dir") options.checkpoint_dir = value();
    else if (key == "--checkpoint-every")
      options.checkpoint_every_s = std::atof(value().c_str());
    else if (key == "--listen-tcp") {
      const std::string addr = value();
      const std::size_t colon = addr.rfind(':');
      if (colon != std::string::npos) {
        server_options.tcp_host = addr.substr(0, colon);
        server_options.tcp_port = std::atoi(addr.c_str() + colon + 1);
      } else {
        server_options.tcp_port = std::atoi(addr.c_str());
      }
    } else if (key == "--peers") peers = split_csv(value());
    else if (key == "--self") self_address = value();
    else if (key == "--peers-file") peers_file = value();
    else if (key == "--heartbeat-interval")
      heartbeat_interval_s = std::atof(value().c_str());
    else if (key == "--suspect-after") suspect_after_s = std::atof(value().c_str());
    else if (key == "--down-after") down_after_s = std::atof(value().c_str());
    else if (key == "--cache-replicas") cache_replicas = std::atoi(value().c_str());
    else if (key == "--adopt-jobs") adopt_jobs = true;
    else if (key == "--max-connections")
      server_options.max_connections = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--steal-after")
      options.dist_steal_after_s = std::atof(value().c_str());
    else if (key == "--help" || key == "-h") return usage();
    else {
      std::fprintf(stderr, "unknown option '%s'\n", key.c_str());
      return usage();
    }
  }

  if ((!peers.empty() || !peers_file.empty()) && server_options.tcp_port < 0) {
    std::fprintf(stderr, "svtoxd: --peers/--peers-file requires --listen-tcp\n");
    return 2;
  }

  // Pin state directories before any job can touch them (and before any
  // daemonizing wrapper chdirs us away from where the operator started).
  options.cache_dir = absolute_dir(options.cache_dir);
  options.checkpoint_dir = absolute_dir(options.checkpoint_dir);

  try {
    svtox::svc::Scheduler scheduler(options);
    svtox::svc::Server server(scheduler, server_options);

    // The cluster speaks to peers over TCP, so it can only exist once the
    // listener is bound (an ephemeral --listen-tcp 0 needs the real port
    // for the default self address).
    std::optional<svtox::svc::Cluster> cluster;
    if (!peers.empty() || !peers_file.empty()) {
      svtox::svc::ClusterOptions cluster_options;
      cluster_options.self =
          self_address.empty() ? "127.0.0.1:" + std::to_string(server.tcp_port())
                               : self_address;
      // A file-only start boots with just self; the reload below fills in
      // the real membership (and SIGHUP keeps it current).
      cluster_options.members =
          peers.empty() ? std::vector<std::string>{cluster_options.self} : peers;
      cluster_options.peers_file = absolute_dir(peers_file);
      cluster_options.heartbeat_interval_s = heartbeat_interval_s;
      cluster_options.suspect_after_s = suspect_after_s;
      cluster_options.down_after_s = down_after_s;
      cluster_options.cache_replicas = cache_replicas;
      cluster.emplace(cluster_options);
      if (!peers_file.empty()) {
        try {
          cluster->reload_from_file();
        } catch (const std::exception& e) {
          std::fprintf(stderr, "svtoxd: cannot read peers file: %s\n", e.what());
          return 2;
        }
      }
      cluster->start();  // no-op when heartbeat_interval_s <= 0
      scheduler.set_cluster(&*cluster);
    }

    if (::pipe(g_signal_pipe) != 0) {
      std::fprintf(stderr, "svtoxd: cannot create signal pipe\n");
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGHUP, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    std::thread signal_watcher([&server, &cluster] {
      char byte;
      while (::read(g_signal_pipe[0], &byte, 1) > 0) {
        if (byte == 2) {
          // SIGHUP: membership reload. Never fatal -- a bad file keeps the
          // current ring.
          if (cluster && !cluster->options().peers_file.empty()) {
            try {
              cluster->reload_from_file();
            } catch (const std::exception& e) {
              std::fprintf(stderr, "svtoxd: peers reload failed: %s\n", e.what());
            }
          }
          continue;
        }
        g_signalled.store(true);
        server.stop();
        return;
      }
    });

    server.start();
    std::printf("svtoxd: listening on %s (%d workers, cache %zu%s%s)\n",
                server.socket_path().c_str(), scheduler.stats().workers,
                options.cache_capacity, options.cache_dir.empty() ? "" : ", disk ",
                options.cache_dir.c_str());
    if (server.tcp_port() >= 0) {
      std::printf("svtoxd: listening on tcp://%s%s\n", server.tcp_address().c_str(),
                  cluster ? (" as cluster member " + cluster->self()).c_str() : "");
    }
    if (!options.checkpoint_dir.empty()) {
      std::printf("svtoxd: checkpoint dir %s\n", options.checkpoint_dir.c_str());
    }
    if (cluster && heartbeat_interval_s > 0.0) {
      std::printf("svtoxd: heartbeats every %.3gs (suspect %.3gs, down %.3gs)\n",
                  heartbeat_interval_s, suspect_after_s, down_after_s);
    }
    if (adopt_jobs) {
      const std::size_t adopted = scheduler.adopt_orphaned_jobs();
      if (adopted > 0) {
        std::printf("svtoxd: adopted %zu orphaned job%s from %s\n", adopted,
                    adopted == 1 ? "" : "s", options.checkpoint_dir.c_str());
      }
    }
    std::fflush(stdout);

    const bool drain = server.wait_for_shutdown();
    const bool signalled = g_signalled.load();
    std::printf("svtoxd: shutting down (%s)\n",
                signalled ? "interrupting running jobs" : drain ? "draining" : "immediate");
    std::fflush(stdout);
    // Order matters: finishing the scheduler releases handler threads blocked
    // in result-waits, which server.stop() then joins -- and the scheduler
    // must be down before `cluster` (which its coordinators borrow) leaves
    // scope. A signal-driven exit cancels running searches so they
    // checkpoint instead of running out their budgets.
    if (signalled) {
      scheduler.shutdown(/*drain=*/false, /*interrupt_running=*/true);
    } else {
      scheduler.shutdown(drain);
    }
    server.stop();

    on_signal(0);  // unblock the watcher if no signal ever arrived
    signal_watcher.join();
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svtoxd: %s\n", e.what());
    return 1;
  }
  return 0;
}
