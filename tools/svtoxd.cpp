// svtoxd: the svtox optimization daemon.
//
//   svtoxd [--socket PATH] [--workers N] [--queue-capacity N]
//          [--cache-capacity N] [--cache-dir DIR] [--contexts N]
//          [--checkpoint-dir DIR] [--checkpoint-every SEC]
//
// Listens on a Unix-domain socket and speaks the newline-delimited JSON
// protocol documented in src/svc/server.hpp (submit / status / result /
// cancel / stats / shutdown). Jobs run on a persistent worker pool that
// keeps characterized libraries, per-circuit optimizer contexts and the
// solution cache warm across requests; `svtox batch --socket PATH` is the
// matching client.
//
// Exits on a `shutdown` request (draining the backlog unless
// {"drain":false}). SIGINT/SIGTERM interrupt running searches instead of
// draining: with --checkpoint-dir each search saves its frontier first, so
// resubmitting the same jobs to a restarted daemon resumes where they
// stopped.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "svc/scheduler.hpp"
#include "svc/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: svtoxd [--socket PATH] [--workers N] [--queue-capacity N]\n"
               "              [--cache-capacity N] [--cache-dir DIR] [--contexts N]\n"
               "              [--checkpoint-dir DIR] [--checkpoint-every SEC]\n");
  return 2;
}

// Self-pipe: the only async-signal-safe way to get from a signal handler to
// the server's (mutex-guarded) stop path.
int g_signal_pipe[2] = {-1, -1};

// Distinguishes a signal-driven exit (interrupt running searches so they
// checkpoint) from a protocol shutdown (honor the request's drain flag).
std::atomic<bool> g_signalled{false};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/svtoxd.sock";
  svtox::svc::Scheduler::Options options;
  options.workers = 0;  // all hardware threads

  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const bool has_value = i + 1 < argc;
    auto value = [&]() -> std::string {
      if (!has_value) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--socket") socket_path = value();
    else if (key == "--workers") options.workers = std::atoi(value().c_str());
    else if (key == "--queue-capacity")
      options.queue_capacity = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--cache-capacity")
      options.cache_capacity = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--cache-dir") options.cache_dir = value();
    else if (key == "--contexts")
      options.contexts_per_worker = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--checkpoint-dir") options.checkpoint_dir = value();
    else if (key == "--checkpoint-every")
      options.checkpoint_every_s = std::atof(value().c_str());
    else if (key == "--help" || key == "-h") return usage();
    else {
      std::fprintf(stderr, "unknown option '%s'\n", key.c_str());
      return usage();
    }
  }

  try {
    svtox::svc::Scheduler scheduler(options);
    svtox::svc::Server server(scheduler, socket_path);

    if (::pipe(g_signal_pipe) != 0) {
      std::fprintf(stderr, "svtoxd: cannot create signal pipe\n");
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    std::thread signal_watcher([&server] {
      char byte;
      if (::read(g_signal_pipe[0], &byte, 1) > 0) {
        g_signalled.store(true);
        server.stop();
      }
    });

    server.start();
    std::printf("svtoxd: listening on %s (%d workers, cache %zu%s%s)\n",
                server.socket_path().c_str(), scheduler.stats().workers,
                options.cache_capacity, options.cache_dir.empty() ? "" : ", disk ",
                options.cache_dir.c_str());
    std::fflush(stdout);

    const bool drain = server.wait_for_shutdown();
    const bool signalled = g_signalled.load();
    std::printf("svtoxd: shutting down (%s)\n",
                signalled ? "interrupting running jobs" : drain ? "draining" : "immediate");
    std::fflush(stdout);
    // Order matters: finishing the scheduler releases handler threads blocked
    // in result-waits, which server.stop() then joins. A signal-driven exit
    // cancels running searches so they checkpoint instead of running out
    // their budgets.
    if (signalled) {
      scheduler.shutdown(/*drain=*/false, /*interrupt_running=*/true);
    } else {
      scheduler.shutdown(drain);
    }
    server.stop();

    on_signal(0);  // unblock the watcher if no signal ever arrived
    signal_watcher.join();
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svtoxd: %s\n", e.what());
    return 1;
  }
  return 0;
}
