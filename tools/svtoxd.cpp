// svtoxd: the svtox optimization daemon.
//
//   svtoxd [--socket PATH] [--workers N] [--queue-capacity N]
//          [--cache-capacity N] [--cache-dir DIR] [--contexts N]
//          [--checkpoint-dir DIR] [--checkpoint-every SEC]
//          [--listen-tcp [HOST:]PORT] [--peers A,B,...] [--self HOST:PORT]
//          [--max-connections N] [--steal-after SEC]
//
// Listens on a Unix-domain socket (newline-delimited JSON) and optionally
// on TCP (--listen-tcp; the same JSON in length-prefixed frames) -- the
// protocol is documented in src/svc/server.hpp. Jobs run on a persistent
// worker pool that keeps characterized libraries, per-circuit optimizer
// contexts and the solution cache warm across requests; `svtox batch` is
// the matching client for either transport.
//
// --peers turns the daemon into a cluster member: the solution cache
// becomes two-level (a consistent-hash ring decides which member owns each
// key, so identical jobs submitted anywhere in the cluster solve once),
// and jobs with "subtrees" >= 2 distribute their state-tree shards to the
// peers with checkpoint-token work-stealing. The peer list must be the
// same on every member; --self names this daemon's own TCP address in that
// list (default: 127.0.0.1:<bound port>).
//
// Exits on a `shutdown` request (draining the backlog unless
// {"drain":false}). SIGINT/SIGTERM interrupt running searches instead of
// draining: with --checkpoint-dir each search saves its frontier first, so
// resubmitting the same jobs to a restarted daemon resumes where they
// stopped.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <limits.h>
#include <unistd.h>

#include "svc/cluster.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: svtoxd [--socket PATH] [--workers N] [--queue-capacity N]\n"
               "              [--cache-capacity N] [--cache-dir DIR] [--contexts N]\n"
               "              [--checkpoint-dir DIR] [--checkpoint-every SEC]\n"
               "              [--listen-tcp [HOST:]PORT] [--peers A,B,...]\n"
               "              [--self HOST:PORT] [--max-connections N]\n"
               "              [--steal-after SEC]\n");
  return 2;
}

// Self-pipe: the only async-signal-safe way to get from a signal handler to
// the server's (mutex-guarded) stop path.
int g_signal_pipe[2] = {-1, -1};

// Distinguishes a signal-driven exit (interrupt running searches so they
// checkpoint) from a protocol shutdown (honor the request's drain flag).
std::atomic<bool> g_signalled{false};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Daemons may be sent to the background or started from a transient CWD
/// (systemd, test harnesses); every relative state directory is therefore
/// resolved against the *startup* CWD once and logged, so checkpoints and
/// cache entries land where the operator can find them -- not wherever the
/// process happens to chdir to later.
std::string absolute_dir(const std::string& dir) {
  if (dir.empty() || dir.front() == '/') return dir;
  char cwd[PATH_MAX];
  if (::getcwd(cwd, sizeof cwd) == nullptr) return dir;
  return std::string(cwd) + "/" + dir;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? csv.size() - start
                                                     : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  svtox::svc::ServerOptions server_options;
  server_options.socket_path = "/tmp/svtoxd.sock";
  svtox::svc::Scheduler::Options options;
  options.workers = 0;  // all hardware threads
  std::vector<std::string> peers;
  std::string self_address;

  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const bool has_value = i + 1 < argc;
    auto value = [&]() -> std::string {
      if (!has_value) {
        std::fprintf(stderr, "missing value for %s\n", key.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (key == "--socket") server_options.socket_path = value();
    else if (key == "--workers") options.workers = std::atoi(value().c_str());
    else if (key == "--queue-capacity")
      options.queue_capacity = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--cache-capacity")
      options.cache_capacity = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--cache-dir") options.cache_dir = value();
    else if (key == "--contexts")
      options.contexts_per_worker = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--checkpoint-dir") options.checkpoint_dir = value();
    else if (key == "--checkpoint-every")
      options.checkpoint_every_s = std::atof(value().c_str());
    else if (key == "--listen-tcp") {
      const std::string addr = value();
      const std::size_t colon = addr.rfind(':');
      if (colon != std::string::npos) {
        server_options.tcp_host = addr.substr(0, colon);
        server_options.tcp_port = std::atoi(addr.c_str() + colon + 1);
      } else {
        server_options.tcp_port = std::atoi(addr.c_str());
      }
    } else if (key == "--peers") peers = split_csv(value());
    else if (key == "--self") self_address = value();
    else if (key == "--max-connections")
      server_options.max_connections = static_cast<std::size_t>(std::atol(value().c_str()));
    else if (key == "--steal-after")
      options.dist_steal_after_s = std::atof(value().c_str());
    else if (key == "--help" || key == "-h") return usage();
    else {
      std::fprintf(stderr, "unknown option '%s'\n", key.c_str());
      return usage();
    }
  }

  if (!peers.empty() && server_options.tcp_port < 0) {
    std::fprintf(stderr, "svtoxd: --peers requires --listen-tcp\n");
    return 2;
  }

  // Pin state directories before any job can touch them (and before any
  // daemonizing wrapper chdirs us away from where the operator started).
  options.cache_dir = absolute_dir(options.cache_dir);
  options.checkpoint_dir = absolute_dir(options.checkpoint_dir);

  try {
    svtox::svc::Scheduler scheduler(options);
    svtox::svc::Server server(scheduler, server_options);

    // The cluster speaks to peers over TCP, so it can only exist once the
    // listener is bound (an ephemeral --listen-tcp 0 needs the real port
    // for the default self address).
    std::optional<svtox::svc::Cluster> cluster;
    if (!peers.empty()) {
      svtox::svc::ClusterOptions cluster_options;
      cluster_options.members = peers;
      cluster_options.self =
          self_address.empty() ? "127.0.0.1:" + std::to_string(server.tcp_port())
                               : self_address;
      cluster.emplace(cluster_options);
      scheduler.set_cluster(&*cluster);
    }

    if (::pipe(g_signal_pipe) != 0) {
      std::fprintf(stderr, "svtoxd: cannot create signal pipe\n");
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    std::thread signal_watcher([&server] {
      char byte;
      if (::read(g_signal_pipe[0], &byte, 1) > 0) {
        g_signalled.store(true);
        server.stop();
      }
    });

    server.start();
    std::printf("svtoxd: listening on %s (%d workers, cache %zu%s%s)\n",
                server.socket_path().c_str(), scheduler.stats().workers,
                options.cache_capacity, options.cache_dir.empty() ? "" : ", disk ",
                options.cache_dir.c_str());
    if (server.tcp_port() >= 0) {
      std::printf("svtoxd: listening on tcp://%s%s\n", server.tcp_address().c_str(),
                  cluster ? (" as cluster member " + cluster->self()).c_str() : "");
    }
    if (!options.checkpoint_dir.empty()) {
      std::printf("svtoxd: checkpoint dir %s\n", options.checkpoint_dir.c_str());
    }
    std::fflush(stdout);

    const bool drain = server.wait_for_shutdown();
    const bool signalled = g_signalled.load();
    std::printf("svtoxd: shutting down (%s)\n",
                signalled ? "interrupting running jobs" : drain ? "draining" : "immediate");
    std::fflush(stdout);
    // Order matters: finishing the scheduler releases handler threads blocked
    // in result-waits, which server.stop() then joins -- and the scheduler
    // must be down before `cluster` (which its coordinators borrow) leaves
    // scope. A signal-driven exit cancels running searches so they
    // checkpoint instead of running out their budgets.
    if (signalled) {
      scheduler.shutdown(/*drain=*/false, /*interrupt_running=*/true);
    } else {
      scheduler.shutdown(drain);
    }
    server.stop();

    on_signal(0);  // unblock the watcher if no signal ever arrived
    signal_watcher.join();
    ::close(g_signal_pipe[0]);
    ::close(g_signal_pipe[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "svtoxd: %s\n", e.what());
    return 1;
  }
  return 0;
}
