// svtox command-line driver.
//
//   svtox characterize [-o lib.svlib] [--two-point] [--uniform-stack]
//                      [--vt-only] [--nitrided]
//   svtox optimize   (--bench file.bench | --circuit NAME)
//                    [--penalty PCT] [--method heu1|heu2|state|vtstate|exact]
//                    [--time-limit SEC] [--threads N] [--no-reorder]
//                    [--max-leaves N] [--checkpoint FILE]
//                    [--checkpoint-every SEC] [-o solution.txt]
//   svtox sweep      (--bench file.bench | --circuit NAME)
//                    [--penalties 0,2,5,10,25] [--threads N]
//                    [--cache-dir DIR] [-o curve.txt]
//   svtox suite      [--penalty PCT] [--time-limit SEC] [--threads N]
//                    [--cache-dir DIR]
//   svtox batch      --manifest FILE (--socket PATH | --tcp HOST:PORT | --local)
//                    [--workers N] [--cache-dir DIR] [--output-dir DIR]
//   svtox stats      (--socket PATH | --tcp HOST:PORT) [--prometheus]
//                    [--timeout SEC]
//   svtox cmd        (--socket PATH | --tcp HOST:PORT) --json '{"cmd":...}'
//                    [--timeout SEC]
//   svtox hier       (--bench file.bench | --circuit NAME | --scale PRESET)
//                    [--penalty PCT] [--method heu1|heu2|state|vtstate]
//                    [--max-gates N] [--threads N] [--cache-dir DIR]
//                    [--time-limit SEC] [--refine-passes N] [--refine-worst K]
//                    [--no-pin-boundaries] [--no-seed-boundary]
//                    [--compare-flat] [--max-gap RATIO] [-o solution.txt]
//   svtox verify     (--bench file.bench | --circuit NAME) --solution FILE
//   svtox timing     (--bench file.bench | --circuit NAME)
//                    [--solution FILE] [--required PS]
//
// `optimize --method sa` runs the simulated-annealing alternative;
// `characterize -o name.lib` exports industry Liberty syntax.
//
// `--circuit NAME` picks one of the paper's benchmark stand-ins (c432 ...
// alu64); `--bench` reads an ISCAS-85 netlist from disk.
//
// `hier` runs the partitioned hierarchical flow (opt/partition.hpp +
// svc/hier.hpp) for circuits too large for the flat state tree; `--scale
// PRESET` builds one of the 10k..1M-gate generated circuits
// (netlist::scale_circuit_names()), `--max-gates` caps the partition size
// and `--compare-flat` also runs flat Heu1 and prints the leakage gap.
// `--no-pin-boundaries` / `--no-seed-boundary` disable the boundary-aware
// level sweep's pins and timing seeds (the legacy free-boundary
// relaxation), `--refine-passes` / `--refine-worst` budget the
// stitch-refine loop, and `--max-gap RATIO` (with `--compare-flat`) exits
// with code 4 when hier/flat leakage exceeds RATIO -- the quality gate CI
// and bench_scale run.
//
// `sweep` and `suite` run their jobs through the svc::Scheduler, so
// `--threads N` solves independent rows concurrently and `--cache-dir`
// keeps solved instances across invocations. `batch` feeds a JSON manifest
// (an array of job objects, or one object per line) either to a running
// svtoxd daemon (`--socket PATH` for the Unix transport, `--tcp HOST:PORT`
// for the framed TCP transport) or to an in-process scheduler (`--local`),
// streaming one JSON result line per job; options per job are documented
// in src/svc/job.hpp. `stats` queries a running daemon: by default the
// stats JSON (job counters, per-shard cache hit/miss/inflight/eviction
// counts, distributed-cache, cluster-health and network counters), with
// `--prometheus` the same numbers in Prometheus text exposition format.
// Both `stats` and `cmd` bound their whole connect+request under
// `--timeout` (default 2s/10s), so pointing them at a dead daemon fails
// fast with a clean error instead of hanging in reconnect backoff.
//
// `cmd` sends one raw JSON request verbatim and prints the reply -- the
// operator/chaos control plane for requests without a dedicated
// subcommand (`failpoints`, `cluster_reload`, `adopt_jobs`, `ping`).
//
// `batch` against a daemon survives a daemon crash or restart: on a lost
// connection it reconnects (bounded retry) and resubmits every
// uncollected job. Server-side checkpoints and coordinator job ledgers
// make those resubmissions resume rather than restart.
#include <sys/stat.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "core/solution_io.hpp"
#include "liberty/lib_format.hpp"
#include "liberty/serialize.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/benchmarks.hpp"
#include "opt/annealing.hpp"
#include "report/report.hpp"
#include "sta/sta.hpp"
#include "sta/timing_report.hpp"
#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "svc/client.hpp"
#include "svc/hier.hpp"
#include "svc/scheduler.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

using namespace svtox;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: svtox <characterize|optimize|hier|sweep|suite|batch|stats|"
               "cmd|verify|timing> [options]\n"
               "see the header of tools/svtox_cli.cpp or README.md for details\n");
  return 2;
}

/// The exact option vocabulary of each command; anything else is a spelling
/// mistake the user should hear about (exit 2), not a silently ignored key.
const std::map<std::string, std::set<std::string>>& allowed_options() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"characterize", {"output", "two-point", "uniform-stack", "vt-only", "nitrided"}},
      {"optimize",
       {"bench", "circuit", "penalty", "method", "time-limit", "threads",
        "no-reorder", "max-leaves", "checkpoint", "checkpoint-every", "output",
        "two-point", "uniform-stack", "vt-only", "nitrided"}},
      {"sweep",
       {"bench", "circuit", "penalties", "threads", "cache-dir", "output",
        "two-point", "uniform-stack", "vt-only", "nitrided"}},
      {"suite",
       {"penalty", "time-limit", "threads", "cache-dir", "two-point",
        "uniform-stack", "vt-only", "nitrided"}},
      {"batch",
       {"manifest", "socket", "tcp", "local", "workers", "cache-dir", "output-dir"}},
      {"stats", {"socket", "tcp", "prometheus", "timeout"}},
      {"cmd", {"socket", "tcp", "json", "timeout"}},
      {"hier",
       {"bench", "circuit", "scale", "penalty", "method", "max-gates", "threads",
        "cache-dir", "time-limit", "compare-flat", "max-gap", "refine-passes",
        "refine-worst", "no-pin-boundaries", "no-seed-boundary", "output",
        "two-point", "uniform-stack", "vt-only", "nitrided"}},
      {"verify",
       {"bench", "circuit", "solution", "two-point", "uniform-stack", "vt-only",
        "nitrided"}},
      {"timing",
       {"bench", "circuit", "solution", "required", "two-point", "uniform-stack",
        "vt-only", "nitrided"}},
  };
  return kAllowed;
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) {
      key = key.substr(2);
    } else if (key == "-o") {
      key = "output";
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      std::exit(2);
    }
    // Flags without values.
    if (key == "two-point" || key == "uniform-stack" || key == "vt-only" ||
        key == "nitrided" || key == "no-reorder" || key == "local" ||
        key == "compare-flat" || key == "prometheus" ||
        key == "no-pin-boundaries" || key == "no-seed-boundary") {
      args.options[key] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for --%s\n", key.c_str());
      std::exit(2);
    }
    args.options[key] = argv[++i];
  }
  // Strict per-command validation: reject unknown options.
  auto allowed = allowed_options().find(args.command);
  if (allowed != allowed_options().end()) {
    for (const auto& [key, value] : args.options) {
      (void)value;
      if (allowed->second.count(key) == 0) {
        std::fprintf(stderr, "unknown option '--%s' for 'svtox %s'\n", key.c_str(),
                     args.command.c_str());
        std::exit(usage());
      }
    }
  }
  return args;
}

const model::TechParams& tech_for(const Args& args) {
  return args.has("nitrided") ? model::TechParams::nitrided()
                              : model::TechParams::nominal();
}

liberty::Library build_library(const Args& args) {
  liberty::LibraryOptions options;
  options.variant_options.four_point = !args.has("two-point");
  options.variant_options.uniform_stack = args.has("uniform-stack");
  options.variant_options.vt_only = args.has("vt-only");
  return liberty::Library::build(tech_for(args), options);
}

netlist::Netlist load_circuit(const Args& args, const liberty::Library& library) {
  if (args.has("bench")) return netlist::read_bench_file(args.get("bench"), library);
  const std::string name = args.get("circuit", "c432");
  return netlist::make_benchmark(name, library);
}

/// Library knobs + circuit source of a scheduler job, from the CLI flags.
svc::JobSpec base_spec(const Args& args) {
  svc::JobSpec spec;
  spec.nitrided = args.has("nitrided");
  spec.two_point = args.has("two-point");
  spec.uniform_stack = args.has("uniform-stack");
  spec.vt_only = args.has("vt-only");
  if (args.has("bench")) {
    spec.bench_path = args.get("bench");
  } else {
    spec.circuit = args.get("circuit", "c432");
  }
  return spec;
}

svc::Scheduler::Options scheduler_options(const Args& args) {
  svc::Scheduler::Options options;
  options.workers = static_cast<int>(parse_double(args.get("threads", "1")));
  options.cache_dir = args.get("cache-dir");
  return options;
}

int cmd_characterize(const Args& args) {
  const liberty::Library library = build_library(args);
  const std::string path = args.get("output", "svtox_library.svlib");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  // Liberty (.lib) syntax when the output name asks for it; otherwise the
  // dense .svlib round-trip format.
  if (path.size() > 4 && path.substr(path.size() - 4) == ".lib") {
    liberty::write_liberty_format(library, out);
  } else {
    liberty::write_library(library, out);
  }
  std::printf("characterized %d cells (%d versions) -> %s\n",
              static_cast<int>(library.cells().size()), library.total_versions(),
              path.c_str());
  return 0;
}

core::Method method_from(const std::string& name) {
  if (name == "heu1") return core::Method::kHeu1;
  if (name == "heu2") return core::Method::kHeu2;
  if (name == "state") return core::Method::kStateOnly;
  if (name == "vtstate") return core::Method::kVtState;
  if (name == "exact") return core::Method::kExact;
  std::fprintf(stderr, "unknown method '%s'\n", name.c_str());
  std::exit(2);
}

int run_annealing(const Args& args, const netlist::Netlist& circuit,
                  const core::RunConfig& config) {
  const opt::AssignmentProblem problem(circuit, config.penalty_fraction);
  opt::AnnealingOptions sa;
  sa.time_limit_s = config.time_limit_s;
  const opt::Solution sol = opt::simulated_annealing(problem, sa);
  std::printf("%s: simulated annealing -> %.3f uA, delay %.0f ps (%llu moves)\n",
              circuit.name().c_str(), sol.leakage_na / 1e3, sol.delay_ps,
              static_cast<unsigned long long>(sol.states_explored));
  if (args.has("output")) {
    std::ofstream out(args.get("output"));
    core::write_solution(sol, circuit, out);
  }
  return 0;
}

/// First Ctrl-C asks the search to stop (it checkpoints and returns the
/// best-so-far solution); the handler then re-arms SIG_DFL so a second
/// Ctrl-C kills the process the usual way.
std::atomic<bool> g_interrupt{false};

void on_interrupt(int sig) {
  g_interrupt.store(true);
  std::signal(sig, SIG_DFL);
}

int cmd_optimize(const Args& args) {
  const liberty::Library library = build_library(args);
  const netlist::Netlist circuit = load_circuit(args, library);
  core::StandbyOptimizer optimizer(circuit);

  core::RunConfig config;
  config.penalty_fraction = parse_double(args.get("penalty", "5")) / 100.0;
  config.time_limit_s = parse_double(args.get("time-limit", "5"));
  // 1 = serial, 0 = all hardware threads (state-tree root split).
  config.threads = static_cast<int>(parse_double(args.get("threads", "1")));
  config.max_leaves =
      static_cast<std::uint64_t>(parse_double(args.get("max-leaves", "0")));
  if (args.has("checkpoint")) {
    config.checkpoint_path = args.get("checkpoint");
    config.checkpoint_every_s = parse_double(args.get("checkpoint-every", "5"));
    config.cancel = &g_interrupt;
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
  }
  if (args.get("method") == "sa") return run_annealing(args, circuit, config);
  const core::Method method = method_from(args.get("method", "heu2"));

  if (args.has("no-reorder")) {
    // The ablation path goes through the problem API directly.
    opt::ProblemOptions popts;
    popts.use_pin_reorder = false;
    const opt::AssignmentProblem problem(circuit, config.penalty_fraction, popts);
    const opt::Solution sol = method == core::Method::kHeu1
                                  ? opt::heuristic1(problem)
                                  : opt::heuristic2(problem, config.time_limit_s);
    std::printf("%s (no pin reorder): %.3f uA, delay %.0f ps\n",
                circuit.name().c_str(), sol.leakage_na / 1e3, sol.delay_ps);
    if (args.has("output")) {
      std::ofstream out(args.get("output"));
      core::write_solution(sol, circuit, out);
    }
    return 0;
  }

  const core::MethodResult result = optimizer.run(method, config);
  std::printf("%s: %s -> %.3f uA (%.1fX vs random-average), delay %.0f ps, %s\n",
              circuit.name().c_str(), core::to_string(method),
              result.leakage_ua, result.reduction_x, result.solution.delay_ps,
              report::format_seconds(result.runtime_s).c_str());
  if (result.solution.interrupted && !config.checkpoint_path.empty()) {
    std::printf("interrupted; progress saved to %s (rerun to resume)\n",
                config.checkpoint_path.c_str());
  }

  if (args.has("output")) {
    const std::string path = args.get("output");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    core::write_solution(result.solution, circuit, out);
    std::printf("solution written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_hier(const Args& args) {
  const liberty::Library library = build_library(args);
  const netlist::Netlist circuit =
      args.has("scale") ? netlist::make_scale_circuit(library, args.get("scale"))
                        : load_circuit(args, library);

  svc::HierOptions options;
  options.partition.max_gates =
      static_cast<int>(parse_double(args.get("max-gates", "2000")));
  options.method = args.get("method", "heu1");
  options.penalty_fraction = parse_double(args.get("penalty", "5")) / 100.0;
  options.workers = static_cast<int>(parse_double(args.get("threads", "0")));
  options.time_limit_s = parse_double(args.get("time-limit", "1"));
  options.cache_dir = args.get("cache-dir");
  options.nitrided = args.has("nitrided");
  options.two_point = args.has("two-point");
  options.uniform_stack = args.has("uniform-stack");
  options.vt_only = args.has("vt-only");
  options.pin_boundaries = !args.has("no-pin-boundaries");
  options.seed_boundary_timing = !args.has("no-seed-boundary");
  options.refine_passes = static_cast<int>(parse_double(args.get("refine-passes", "2")));
  options.refine_worst = static_cast<int>(parse_double(args.get("refine-worst", "8")));
  if (args.has("max-gap") && !args.has("compare-flat")) {
    std::fprintf(stderr, "--max-gap requires --compare-flat\n");
    return 2;
  }

  const svc::HierResult hr = svc::optimize_hierarchical(circuit, options);
  std::printf("%s: %d gates, %d partitions (max %d gates each, %d levels)\n",
              circuit.name().c_str(), circuit.num_gates(), hr.partitions,
              options.partition.max_gates, hr.levels);
  std::printf("cone jobs: %llu solved, %llu from cache; refine: %d passes, "
              "%d re-solves kept\n",
              static_cast<unsigned long long>(hr.unique_solves),
              static_cast<unsigned long long>(hr.cache_hits),
              hr.refine_passes_run, hr.refine_accepted);
  std::printf("hier %s: %.3f uA, delay %.0f ps (constraint %.0f ps, "
              "%d gates repaired), %s\n",
              options.method.c_str(), hr.solution.leakage_na / 1e3,
              hr.solution.delay_ps, hr.constraint_ps, hr.repaired_gates,
              report::format_seconds(hr.runtime_s).c_str());

  int gap_status = 0;
  if (args.has("compare-flat")) {
    const opt::AssignmentProblem problem(circuit, options.penalty_fraction);
    const opt::Solution flat = opt::heuristic1(problem);
    const double ratio = hr.solution.leakage_na / flat.leakage_na;
    std::printf("flat heu1: %.3f uA, delay %.0f ps, %s (hier gap %+.1f%%)\n",
                flat.leakage_na / 1e3, flat.delay_ps,
                report::format_seconds(flat.runtime_s).c_str(),
                100.0 * (ratio - 1.0));
    if (args.has("max-gap")) {
      const double max_gap = parse_double(args.get("max-gap"));
      if (ratio > max_gap) {
        std::fprintf(stderr,
                     "FAIL: hier/flat leakage ratio %.4f exceeds --max-gap %.4f\n",
                     ratio, max_gap);
        gap_status = 4;
      } else {
        std::printf("gap check passed: ratio %.4f <= %.4f\n", ratio, max_gap);
      }
    }
  }

  if (args.has("output")) {
    const std::string path = args.get("output");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    core::write_solution(hr.solution, circuit, out);
    std::printf("solution written to %s\n", path.c_str());
  }
  return gap_status;
}

int cmd_sweep(const Args& args) {
  std::vector<double> penalties;  // percent
  for (auto part : split(args.get("penalties", "0,2,5,10,25,50,100"), ',')) {
    penalties.push_back(parse_double(part));
  }

  // Rows are independent jobs: --threads workers solve them concurrently
  // and --cache-dir makes repeated sweeps free.
  svc::Scheduler scheduler(scheduler_options(args));
  std::vector<svc::JobId> ids;
  for (double p : penalties) {
    svc::JobSpec spec = base_spec(args);
    spec.method = "heu1";
    spec.penalty_percent = p;
    ids.push_back(scheduler.submit(spec));
  }

  AsciiTable table;
  table.set_header({"penalty %", "heu1 uA", "X", "delay ps"});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const svc::JobResult result = scheduler.wait(ids[i]);
    if (result.status != svc::JobStatus::kDone) {
      std::fprintf(stderr, "error: %s\n", result.error.c_str());
      return 1;
    }
    table.add_row({format_double(penalties[i], 0), report::format_ua(result.leakage_ua),
                   report::format_x(result.reduction_x),
                   format_double(result.delay_ps, 0)});
  }
  std::printf("%s", table.render().c_str());
  if (args.has("output")) report::save_table(table, args.get("output"));
  return 0;
}

int cmd_suite(const Args& args) {
  const double penalty = parse_double(args.get("penalty", "5"));
  const double time_limit = parse_double(args.get("time-limit", "1"));

  // Two jobs per circuit (random-average baseline + Heu1) through the
  // scheduler: the library is characterized once in the shared pool and
  // circuits run concurrently under --threads.
  svc::Scheduler scheduler(scheduler_options(args));
  std::vector<std::pair<svc::JobId, svc::JobId>> ids;
  for (const auto& spec : netlist::benchmark_suite()) {
    svc::JobSpec job = base_spec(args);
    job.circuit = spec.name;
    job.penalty_percent = penalty;
    job.time_limit_s = time_limit;
    job.method = "average";
    const svc::JobId avg = scheduler.submit(job);
    job.method = "heu1";
    ids.emplace_back(avg, scheduler.submit(job));
  }

  AsciiTable table;
  table.set_header({"circuit", "gates", "avg uA", "heu1 uA", "X", "heu1 time"});
  for (const auto& [avg_id, h1_id] : ids) {
    const svc::JobResult avg = scheduler.wait(avg_id);
    const svc::JobResult h1 = scheduler.wait(h1_id);
    if (avg.status != svc::JobStatus::kDone || h1.status != svc::JobStatus::kDone) {
      std::fprintf(stderr, "error: %s\n",
                   (avg.status != svc::JobStatus::kDone ? avg : h1).error.c_str());
      return 1;
    }
    table.add_row({h1.circuit, std::to_string(h1.gates),
                   report::format_ua(avg.leakage_ua), report::format_ua(h1.leakage_ua),
                   report::format_x(h1.reduction_x),
                   report::format_seconds(h1.runtime_s)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

/// Parses a batch manifest: a JSON array of job objects, or NDJSON with one
/// object per line (blank and #-comment lines skipped).
std::vector<svc::JobSpec> read_manifest(const std::string& path) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) throw ContractError("cannot read manifest '" + path + "'");
    in = &file;
  }
  std::ostringstream buffer;
  buffer << in->rdbuf();
  const std::string text = buffer.str();

  std::vector<svc::JobSpec> specs;
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) throw ContractError("manifest is empty");
  if (text[first] == '[') {
    const svc::Json manifest = svc::Json::parse(text);
    for (const svc::Json& job : manifest.as_array()) {
      specs.push_back(svc::job_spec_from_json(job));
    }
  } else {
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      specs.push_back(svc::job_spec_from_json(svc::Json::parse(line)));
    }
  }
  if (specs.empty()) throw ContractError("manifest has no jobs");
  return specs;
}

/// Output file name for one batch job's solution.
std::string solution_name(const svc::JobResult& result, std::size_t index) {
  std::string name = result.label;
  if (name.empty()) {
    name = result.circuit + "_" + result.method + "_p" +
           format_double(result.penalty_percent, 0);
  }
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_' &&
        c != '.') {
      c = '_';
    }
  }
  return "job" + std::to_string(index + 1) + "_" + name + ".solution";
}

/// Daemon address from the transport flags: `--socket PATH` (Unix NDJSON;
/// a "tcp://..." value also works) or `--tcp HOST:PORT` (framed TCP).
/// Empty when neither was given.
std::string daemon_address(const Args& args) {
  if (args.has("tcp")) return "tcp://" + args.get("tcp");
  return args.get("socket");
}

int cmd_batch(const Args& args) {
  if (!args.has("manifest")) {
    std::fprintf(stderr, "batch requires --manifest FILE (use '-' for stdin)\n");
    return 2;
  }
  const int sources =
      (args.has("socket") ? 1 : 0) + (args.has("tcp") ? 1 : 0) + (args.has("local") ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr,
                 "batch needs exactly one of --socket PATH, --tcp HOST:PORT or --local\n");
    return 2;
  }
  const std::vector<svc::JobSpec> specs = read_manifest(args.get("manifest"));
  const std::string output_dir = args.get("output-dir");
  if (!output_dir.empty()) ::mkdir(output_dir.c_str(), 0777);

  // Any transport yields the same submit-all / collect-in-order loop.
  std::optional<svc::Client> client;
  std::optional<svc::Scheduler> scheduler;
  if (!args.has("local")) {
    client.emplace(daemon_address(args));
  } else {
    svc::Scheduler::Options options;
    options.workers = static_cast<int>(parse_double(args.get("workers", "0")));
    options.cache_dir = args.get("cache-dir");
    scheduler.emplace(options);
  }

  std::vector<std::uint64_t> ids;
  ids.reserve(specs.size());
  for (const svc::JobSpec& spec : specs) {
    ids.push_back(client ? client->submit(spec) : scheduler->submit(spec));
  }

  // Failover: a crashed/restarted daemon loses our connection AND our job
  // ids. Reconnect (bounded) and resubmit every uncollected job --
  // server-side checkpoints and coordinator ledgers turn the resubmission
  // into a resume, not a restart.
  auto resubmit_from = [&](std::size_t from) -> bool {
    for (int attempt = 0; attempt < 30; ++attempt) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      try {
        svc::ClientOptions reconnect_options;
        reconnect_options.connect_timeout_s = 2.0;
        client.emplace(daemon_address(args), reconnect_options);
        for (std::size_t j = from; j < specs.size(); ++j) {
          ids[j] = client->submit(specs[j]);
        }
        return true;
      } catch (const std::exception&) {
        client.reset();
      }
    }
    return false;
  };

  int failures = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    svc::JobResult result;
    if (client) {
      for (int tries = 0;; ++tries) {
        try {
          result = client->result(ids[i]);
          break;
        } catch (const Error& e) {
          if (tries >= 2) throw;
          std::fprintf(stderr,
                       "batch: daemon connection lost (%s); resubmitting %zu "
                       "uncollected job(s)\n",
                       e.what(), specs.size() - i);
          if (!resubmit_from(i)) throw;
        }
      }
    } else {
      result = scheduler->wait(ids[i]);
    }
    if (result.status != svc::JobStatus::kDone) ++failures;
    if (!output_dir.empty() && !result.solution_text.empty()) {
      const std::string path = output_dir + "/" + solution_name(result, i);
      std::ofstream out(path);
      out << result.solution_text;
    }
    // One NDJSON record per job, in manifest order, solutions elided (they
    // land in --output-dir).
    svc::Json line = svc::job_result_to_json(result, /*include_solution=*/false);
    line.set("job", ids[i]);
    std::printf("%s\n", line.dump().c_str());
    std::fflush(stdout);
  }
  return failures == 0 ? 0 : 1;
}

int cmd_stats(const Args& args) {
  if (args.has("socket") == args.has("tcp")) {
    std::fprintf(stderr, "stats needs exactly one of --socket PATH or --tcp HOST:PORT\n");
    return 2;
  }
  // Interactive probe: fail fast against a dead daemon (clean error, exit
  // 1) instead of sitting in reconnect backoff.
  svc::ClientOptions options;
  options.connect_timeout_s = 1.0;
  options.total_deadline_s = parse_double(args.get("timeout", "2"));
  svc::Client client(daemon_address(args), options);
  if (args.has("prometheus")) {
    // Scrape-ready text: what a Prometheus exporter sidecar would relay.
    svc::Json request = svc::Json::object();
    request.set("cmd", std::string("metrics"));
    const svc::Json reply = client.request(request);
    const svc::Json* ok = reply.get("ok");
    if (ok == nullptr || !ok->as_bool(false)) {
      const svc::Json* error = reply.get("error");
      std::fprintf(stderr, "error: %s\n",
                   error != nullptr ? error->as_string().c_str() : "malformed reply");
      return 1;
    }
    const svc::Json* metrics = reply.get("metrics");
    std::printf("%s", metrics != nullptr ? metrics->as_string().c_str() : "");
    return 0;
  }
  std::printf("%s\n", client.stats().dump().c_str());
  return 0;
}

int cmd_raw(const Args& args) {
  if (args.has("socket") == args.has("tcp")) {
    std::fprintf(stderr, "cmd needs exactly one of --socket PATH or --tcp HOST:PORT\n");
    return 2;
  }
  if (!args.has("json")) {
    std::fprintf(stderr, "cmd requires --json '{\"cmd\":...}'\n");
    return 2;
  }
  svc::ClientOptions options;
  options.connect_timeout_s = 2.0;
  options.total_deadline_s = parse_double(args.get("timeout", "10"));
  svc::Client client(daemon_address(args), options);
  const svc::Json reply = client.request(svc::Json::parse(args.get("json")));
  std::printf("%s\n", reply.dump().c_str());
  const svc::Json* ok = reply.get("ok");
  return ok != nullptr && ok->as_bool(false) ? 0 : 1;
}

int cmd_timing(const Args& args) {
  const liberty::Library library = build_library(args);
  const netlist::Netlist circuit = load_circuit(args, library);

  sim::CircuitConfig config = sim::fastest_config(circuit);
  if (args.has("solution")) {
    std::ifstream in(args.get("solution"));
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", args.get("solution").c_str());
      return 1;
    }
    config = core::read_solution(in, circuit).config;
  }

  sta::TimingState timing(circuit);
  const double delay = timing.analyze(config);
  const double required =
      args.has("required") ? parse_double(args.get("required")) : delay;

  std::printf("%s", sta::render_worst_path(circuit, config).c_str());
  const sta::SlackAnalysis slack(circuit, config, required);
  std::printf("\nworst slack vs %.0f ps requirement: %.1f ps\n", required,
              slack.worst_slack_ps());
  std::printf("slack histogram (8 bins, critical first):");
  for (int c : slack.histogram(8)) std::printf(" %d", c);
  std::printf("\n");
  return 0;
}

int cmd_verify(const Args& args) {
  const liberty::Library library = build_library(args);
  const netlist::Netlist circuit = load_circuit(args, library);
  if (!args.has("solution")) {
    std::fprintf(stderr, "verify requires --solution FILE\n");
    return 2;
  }
  std::ifstream in(args.get("solution"));
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", args.get("solution").c_str());
    return 1;
  }
  const opt::Solution sol = core::read_solution(in, circuit);

  // Independent recomputation of the claimed numbers.
  const double leak = sim::circuit_leakage_na(circuit, sol.config, sol.sleep_vector);
  sta::TimingState timing(circuit);
  const double delay = timing.analyze(sol.config);
  const bool leak_ok = std::abs(leak - sol.leakage_na) <= 0.01 * sol.leakage_na + 1.0;
  const bool delay_ok = std::abs(delay - sol.delay_ps) <= 0.01 * sol.delay_ps + 1.0;

  std::printf("claimed:   %.3f uA, %.0f ps\n", sol.leakage_na / 1e3, sol.delay_ps);
  std::printf("recomputed: %.3f uA, %.0f ps\n", leak / 1e3, delay);
  std::printf("verdict: leakage %s, delay %s\n", leak_ok ? "OK" : "MISMATCH",
              delay_ok ? "OK" : "MISMATCH");
  return leak_ok && delay_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "characterize") return cmd_characterize(args);
    if (args.command == "optimize") return cmd_optimize(args);
    if (args.command == "hier") return cmd_hier(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "suite") return cmd_suite(args);
    if (args.command == "batch") return cmd_batch(args);
    if (args.command == "stats") return cmd_stats(args);
    if (args.command == "cmd") return cmd_raw(args);
    if (args.command == "verify") return cmd_verify(args);
    if (args.command == "timing") return cmd_timing(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
