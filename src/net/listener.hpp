// A bound TCP listening socket.
#pragma once

#include <string>

#include "net/conn.hpp"

namespace svtox::net {

/// Owns a listening fd. Port 0 binds an ephemeral port; `port()` reports
/// the actual one after bind, so tests and ephemeral daemons can publish
/// their address. Move-only.
class Listener {
 public:
  Listener() = default;

  /// Binds and listens on host:port with SO_REUSEADDR. Throws
  /// ContractError on a bad address and Error(kIo) on bind failure
  /// (e.g. the port is taken).
  static Listener tcp(const std::string& host, int port, int backlog = 64);

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int port() const { return port_; }
  const std::string& host() const { return host_; }
  std::string address() const { return host_ + ":" + std::to_string(port_); }

  /// Blocking accept; retries on per-connection failures (EINTR,
  /// ECONNABORTED, ECONNRESET, EPROTO, ...) so one aborted handshake never
  /// tears the loop down. Returns -1 once the listener has been shut down
  /// or closed.
  int accept_fd();
  Conn accept() { return Conn(accept_fd()); }

  /// shutdown(2) the listening socket to wake a blocked accept.
  void shutdown_now();
  void close();

 private:
  int fd_ = -1;
  int port_ = -1;
  std::string host_;
};

}  // namespace svtox::net
