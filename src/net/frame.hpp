// Length-prefixed framing for the TCP transport.
//
// Wire format: a 4-byte big-endian payload length followed by that many
// payload bytes (UTF-8 JSON in svtoxd's case). The frame layer is
// deliberately dumb -- no type tags, no checksums -- because the payload
// is self-describing JSON and TCP already provides integrity; what it
// adds over the Unix socket's newline-delimited protocol is a hard
// request-size bound that is enforced *before* the body is read, so an
// oversized announcement costs the server four bytes, not a megabyte.
//
// All reads/writes loop over partial transfers and restart on EINTR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace svtox::net {

/// Default per-frame payload cap, matching the daemon's per-request line
/// cap on the Unix transport (svc::kMaxRequestBytes).
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Replies may legitimately exceed the request cap (solution texts for
/// large circuits); clients read with this looser bound instead.
inline constexpr std::size_t kMaxReplyFrameBytes = 64u * (1u << 20);

enum class FrameStatus {
  kOk,         ///< A complete frame was read.
  kClosed,     ///< Orderly EOF before the first header byte.
  kOversized,  ///< Announced length exceeds the cap; body NOT consumed.
};

/// Reads one frame from `fd` into `payload` (blocking). Returns kClosed on
/// a clean EOF at a frame boundary and kOversized when the header announces
/// more than `max_bytes` (the connection should then be closed -- the body
/// is still in flight). Throws Error(kIo) on socket errors or on EOF in
/// the middle of a frame (truncation).
FrameStatus read_frame(int fd, std::string& payload,
                       std::size_t max_bytes = kMaxFrameBytes);

/// Writes one frame (header + payload). Throws Error(kIo) on failure and
/// ContractError if the payload cannot be represented in the 32-bit header.
void write_frame(int fd, std::string_view payload);

/// Appends the encoded frame for `payload` to `out` (header + body);
/// the buffer-building half of write_frame, usable for tests and for
/// batching several frames into one send.
void encode_frame(std::string& out, std::string_view payload);

/// Attempts to extract one complete frame from the front of `buffer`.
/// Returns true and erases the consumed bytes when a full frame is
/// present; false when more bytes are needed. Throws Error(kParse) when
/// the header announces more than `max_bytes` -- the stream is then
/// unrecoverable and the caller should drop the connection.
bool extract_frame(std::string& buffer, std::string& payload,
                   std::size_t max_bytes = kMaxReplyFrameBytes);

}  // namespace svtox::net
