#include "net/frame.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace svtox::net {
namespace {

#if defined(SVTOX_FAILPOINTS) && SVTOX_FAILPOINTS
/// Arms SO_LINGER(on, 0) so the owner's eventual close(2) sends RST
/// instead of FIN -- the peer observes ECONNRESET, not a clean EOF.
void arm_reset_on_close(int fd) {
  struct linger hard {};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
}

/// Applies an armed network fault to a frame read/write site. Returns
/// the number of payload bytes a truncate/reset fault allows through
/// (-1 = no transmission cap). Throws Error(kIo) for drop.
ssize_t apply_net_fault(const char* site, int fd, const NetFault& fault) {
  switch (fault.kind) {
    case NetFault::Kind::kNone:
    case NetFault::Kind::kDelay:  // the stall already happened in the hook
      return -1;
    case NetFault::Kind::kDrop:
      ::shutdown(fd, SHUT_RDWR);
      throw Error(ErrorCode::kIo, std::string("injected connection drop at '") +
                                      site + "'");
    case NetFault::Kind::kTruncate:
      return static_cast<ssize_t>(fault.param);
    case NetFault::Kind::kReset:
      arm_reset_on_close(fd);
      return static_cast<ssize_t>(fault.param);
  }
  return -1;
}
#endif

/// Reads exactly `len` bytes. Returns false on clean EOF with zero bytes
/// read so far; throws on errors or mid-buffer EOF.
bool read_exact(int fd, char* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;
      throw Error(ErrorCode::kIo, "connection closed mid-frame (read " +
                                      std::to_string(got) + " of " +
                                      std::to_string(len) + " bytes)");
    }
    if (errno == EINTR) continue;
    throw Error(ErrorCode::kIo,
                "frame read failed: " + std::string(std::strerror(errno)));
  }
  return true;
}

std::uint32_t decode_len(const char* header) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(header[i]));
  };
  return (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
}

void encode_len(char* header, std::uint32_t len) {
  header[0] = static_cast<char>((len >> 24) & 0xff);
  header[1] = static_cast<char>((len >> 16) & 0xff);
  header[2] = static_cast<char>((len >> 8) & 0xff);
  header[3] = static_cast<char>(len & 0xff);
}

}  // namespace

FrameStatus read_frame(int fd, std::string& payload, std::size_t max_bytes) {
#if defined(SVTOX_FAILPOINTS) && SVTOX_FAILPOINTS
  {
    const NetFault fault = SVTOX_NET_FAIL_POINT("net_recv");
    // A read site cannot truncate what the peer sends; both byte-capped
    // faults degrade to an immediate hard failure here.
    if (fault.kind == NetFault::Kind::kReset) arm_reset_on_close(fd);
    if (fault.kind == NetFault::Kind::kTruncate ||
        fault.kind == NetFault::Kind::kReset ||
        fault.kind == NetFault::Kind::kDrop) {
      ::shutdown(fd, SHUT_RDWR);
      throw Error(ErrorCode::kIo, "injected connection drop at 'net_recv'");
    }
  }
#endif
  char header[4];
  if (!read_exact(fd, header, sizeof header)) return FrameStatus::kClosed;
  const std::uint32_t len = decode_len(header);
  if (len > max_bytes) return FrameStatus::kOversized;
  payload.resize(len);
  if (len != 0 && !read_exact(fd, payload.data(), len)) {
    throw Error(ErrorCode::kIo, "connection closed mid-frame");
  }
  return FrameStatus::kOk;
}

void write_frame(int fd, std::string_view payload) {
  std::string buffer;
  encode_frame(buffer, payload);
#if defined(SVTOX_FAILPOINTS) && SVTOX_FAILPOINTS
  const NetFault fault = SVTOX_NET_FAIL_POINT("net_send");
  const ssize_t cap = apply_net_fault("net_send", fd, fault);
  if (cap >= 0) {
    // Transmit at most `cap` bytes of the framed message, then fail the
    // connection: the peer sees a short read (truncate) or ECONNRESET
    // (reset, via the lingering close below).
    const std::size_t allowed =
        std::min(buffer.size(), static_cast<std::size_t>(cap));
    std::size_t partial = 0;
    while (partial < allowed) {
      const ssize_t n =
          ::send(fd, buffer.data() + partial, allowed - partial, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      partial += static_cast<std::size_t>(n);
    }
    if (fault.kind != NetFault::Kind::kReset) ::shutdown(fd, SHUT_RDWR);
    throw Error(ErrorCode::kIo,
                "injected " + std::string(fault.kind == NetFault::Kind::kReset
                                              ? "connection reset"
                                              : "frame truncation") +
                    " at 'net_send' after " + std::to_string(partial) +
                    " bytes");
  }
#endif
  std::size_t sent = 0;
  while (sent < buffer.size()) {
    const ssize_t n =
        ::send(fd, buffer.data() + sent, buffer.size() - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw Error(ErrorCode::kIo,
                "frame write failed: " + std::string(std::strerror(errno)));
  }
}

void encode_frame(std::string& out, std::string_view payload) {
  if (payload.size() > 0xffffffffu) {
    throw ContractError("frame payload exceeds 4 GiB");
  }
  char header[4];
  encode_len(header, static_cast<std::uint32_t>(payload.size()));
  out.append(header, sizeof header);
  out.append(payload.data(), payload.size());
}

bool extract_frame(std::string& buffer, std::string& payload,
                   std::size_t max_bytes) {
  if (buffer.size() < 4) return false;
  const std::uint32_t len = decode_len(buffer.data());
  if (len > max_bytes) {
    throw Error(ErrorCode::kParse,
                "frame header announces " + std::to_string(len) +
                    " bytes (cap " + std::to_string(max_bytes) + ")");
  }
  if (buffer.size() < 4u + len) return false;
  payload.assign(buffer, 4, len);
  buffer.erase(0, 4u + len);
  return true;
}

}  // namespace svtox::net
