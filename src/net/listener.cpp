#include "net/listener.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace svtox::net {

Listener Listener::tcp(const std::string& host, int port, int backlog) {
  Listener listener;
  listener.host_ = host.empty() ? "127.0.0.1" : host;

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc =
      ::getaddrinfo(listener.host_.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    throw ContractError("cannot resolve listen address " + listener.host_ +
                        ":" + service + ": " + ::gai_strerror(rc));
  }
  int last_errno = EADDRNOTAVAIL;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      listener.fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  if (listener.fd_ < 0) {
    throw Error(ErrorCode::kIo, "cannot listen on " + listener.host_ + ":" +
                                    service + ": " +
                                    std::strerror(last_errno));
  }

  // Recover the actual port (meaningful when the caller asked for 0).
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listener.fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      listener.port_ =
          ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      listener.port_ =
          ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  if (listener.port_ < 0) listener.port_ = port;
  return listener;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_), host_(std::move(other.host_)) {
  other.fd_ = -1;
  other.port_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    host_ = std::move(other.host_);
    other.fd_ = -1;
    other.port_ = -1;
  }
  return *this;
}

int Listener::accept_fd() {
  while (fd_ >= 0) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      const NetFault fault = SVTOX_NET_FAIL_POINT("net_accept");
      if (fault.kind == NetFault::Kind::kDrop ||
          fault.kind == NetFault::Kind::kTruncate ||
          fault.kind == NetFault::Kind::kReset) {
        // The connection vanishes before the server ever sees it; keep
        // accepting -- one injected (or real) aborted handshake must not
        // tear the accept loop down.
        ::close(client);
        continue;
      }
      return client;
    }
    // A connection that died between SYN and accept surfaces as one of
    // these per-connection errors; only listener-level failures (EBADF,
    // EINVAL after close) should end the loop.
    if (errno == EINTR || errno == ECONNABORTED || errno == ECONNRESET ||
        errno == EPROTO || errno == ENETDOWN || errno == EHOSTUNREACH) {
      continue;
    }
    return -1;
  }
  return -1;
}

void Listener::shutdown_now() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace svtox::net
