// An owned TCP connection speaking the length-prefixed frame protocol.
#pragma once

#include <string>
#include <string_view>

#include "net/frame.hpp"

namespace svtox::net {

/// "host:port" split. Host may be a name, an IPv4 literal, or empty
/// (meaning localhost); a bare "PORT" with no colon is accepted too.
struct TcpAddress {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parses "host:port" / ":port" / "port". Throws ContractError on a
/// malformed port (non-numeric or outside [0, 65535]).
TcpAddress parse_tcp_address(const std::string& address);

/// Resolves and connects. Connection-level failures (refused, timed out,
/// unreachable, resolution failure) throw Error(kIo) -- retryable, so the
/// client's exponential-backoff policy applies to a daemon that has not
/// bound its port yet. `timeout_s > 0` bounds each connect(2) attempt
/// (non-blocking connect + poll) so a blackholed host cannot stall the
/// caller for the kernel's multi-minute SYN timeout. Returns an owned fd.
int connect_tcp(const std::string& host, int port, double timeout_s = 0.0);

/// RAII frame-speaking connection. Move-only; closes the fd on destruction.
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  static Conn connect(const std::string& host, int port) {
    return Conn(connect_tcp(host, port));
  }

  Conn(Conn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  ~Conn() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Releases ownership of the fd to the caller.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close();
  /// shutdown(2) both directions to wake a thread blocked in recv.
  void shutdown_now();

  void send_frame(std::string_view payload) { write_frame(fd_, payload); }
  FrameStatus recv_frame(std::string& payload,
                         std::size_t max_bytes = kMaxReplyFrameBytes) {
    return read_frame(fd_, payload, max_bytes);
  }

 private:
  int fd_ = -1;
};

}  // namespace svtox::net
