#include "net/conn.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace svtox::net {

namespace {

/// connect(2) with an optional wall-clock bound: non-blocking connect,
/// poll for writability, then harvest SO_ERROR. timeout_s <= 0 keeps the
/// plain blocking behaviour. Returns 0 on success, else an errno value.
int timed_connect(int fd, const sockaddr* addr, socklen_t addr_len,
                  double timeout_s) {
  if (timeout_s <= 0.0) {
    int rc;
    do {
      rc = ::connect(fd, addr, addr_len);
    } while (rc < 0 && errno == EINTR);
    return rc == 0 ? 0 : errno;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return errno;
  int rc;
  do {
    rc = ::connect(fd, addr, addr_len);
  } while (rc < 0 && errno == EINTR);
  int result = 0;
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      result = errno;
    } else {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int remaining_ms = static_cast<int>(timeout_s * 1000.0);
      if (remaining_ms < 1) remaining_ms = 1;
      int polled;
      do {
        polled = ::poll(&pfd, 1, remaining_ms);
      } while (polled < 0 && errno == EINTR);
      if (polled == 0) {
        result = ETIMEDOUT;
      } else if (polled < 0) {
        result = errno;
      } else {
        int so_error = 0;
        socklen_t len = sizeof so_error;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
          result = errno;
        } else {
          result = so_error;
        }
      }
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return result;
}

}  // namespace

TcpAddress parse_tcp_address(const std::string& address) {
  TcpAddress out;
  std::string port_text = address;
  const std::size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) out.host = address.substr(0, colon);
    port_text = address.substr(colon + 1);
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    throw ContractError("malformed TCP address '" + address +
                        "' (expected host:port)");
  }
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port < 0 || port > 65535) {
    throw ContractError("TCP port out of range in '" + address + "'");
  }
  out.port = static_cast<int>(port);
  return out;
}

int connect_tcp(const std::string& host, int port, double timeout_s) {
  {
    const NetFault fault = SVTOX_NET_FAIL_POINT("net_connect");
    // Any byte-scoped action degrades to a refused connect here: this is
    // the partition injection site ("the peer is unreachable").
    if (fault.kind == NetFault::Kind::kDrop ||
        fault.kind == NetFault::Kind::kTruncate ||
        fault.kind == NetFault::Kind::kReset) {
      throw Error(ErrorCode::kIo, "injected connect failure to " + host + ":" +
                                      std::to_string(port) +
                                      " at 'net_connect'");
    }
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const std::string node = host.empty() ? "127.0.0.1" : host;
  const int rc = ::getaddrinfo(node.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    // Resolution failures are transient in practice (DNS hiccup, peer not
    // registered yet) -- classify retryable like a refused connect.
    throw Error(ErrorCode::kIo, "cannot resolve " + node + ":" + service +
                                    ": " + ::gai_strerror(rc));
  }
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const int connect_err =
        timed_connect(fd, ai->ai_addr, ai->ai_addrlen, timeout_s);
    if (connect_err == 0) {
      ::freeaddrinfo(results);
      return fd;
    }
    last_errno = connect_err;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  throw Error(ErrorCode::kIo, "cannot connect to " + node + ":" + service +
                                  ": " + std::strerror(last_errno));
}

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::shutdown_now() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace svtox::net
