#include "net/conn.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace svtox::net {

TcpAddress parse_tcp_address(const std::string& address) {
  TcpAddress out;
  std::string port_text = address;
  const std::size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) out.host = address.substr(0, colon);
    port_text = address.substr(colon + 1);
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    throw ContractError("malformed TCP address '" + address +
                        "' (expected host:port)");
  }
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port < 0 || port > 65535) {
    throw ContractError("TCP port out of range in '" + address + "'");
  }
  out.port = static_cast<int>(port);
  return out;
}

int connect_tcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const std::string node = host.empty() ? "127.0.0.1" : host;
  const int rc = ::getaddrinfo(node.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    // Resolution failures are transient in practice (DNS hiccup, peer not
    // registered yet) -- classify retryable like a refused connect.
    throw Error(ErrorCode::kIo, "cannot resolve " + node + ":" + service +
                                    ": " + ::gai_strerror(rc));
  }
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    int connect_rc;
    do {
      connect_rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (connect_rc < 0 && errno == EINTR);
    if (connect_rc == 0) {
      ::freeaddrinfo(results);
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  throw Error(ErrorCode::kIo, "cannot connect to " + node + ":" + service +
                                  ": " + std::strerror(last_errno));
}

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::shutdown_now() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace svtox::net
