// Primitive per-device leakage currents.
//
// `cellkit` performs the electrical classification (ON/OFF, bias situation,
// stack depth) from the cell topology and input state; this header turns a
// classified situation into nanoamperes. Keeping the two separated lets the
// classification logic be tested against the paper's Figure 2/3 claims
// independently of the calibration constants.
#pragma once

#include "model/tech.hpp"

namespace svtox::model {

/// Drain-source bias situation of an OFF device, as seen in standby.
enum class SubthresholdBias : std::uint8_t {
  kFullVds,   ///< The device blocks (a share of) the full rail-to-rail drop.
  kZeroVds,   ///< Both terminals sit at the same rail; only residual leakage.
};

/// Gate bias situation of a device's tunneling current.
enum class GateBias : std::uint8_t {
  kFullChannel,    ///< ON, Vgs = Vgd = Vdd: maximum channel tunneling.
  kReducedChannel, ///< ON above a non-conducting device: Vgs ~ one Vt drop.
  kReverseOverlap, ///< OFF with drain at the far rail: overlap-region EDT.
  kNone,           ///< No meaningful tunneling path.
};

/// Subthreshold current of one OFF device [nA].
///
/// `series_off_depth` is the number of OFF devices stacked in series on the
/// blocking path this device belongs to (>= 1); the stack effect divides the
/// current super-linearly with depth (TechParams::stack_factor).
double isub_na(const TechParams& tech, DeviceType type, VtClass vt, double width,
               SubthresholdBias bias, int series_off_depth);

/// Gate tunneling current of one device [nA] for the given bias situation.
double igate_na(const TechParams& tech, DeviceType type, ToxClass tox, double width,
                GateBias bias);

/// Components of a cell- or circuit-level leakage total [nA].
struct LeakageBreakdown {
  double isub_na = 0.0;
  double igate_na = 0.0;

  double total_na() const { return isub_na + igate_na; }
  /// Fraction of the total contributed by gate tunneling (0 if total is 0).
  double igate_fraction() const {
    const double t = total_na();
    return t > 0.0 ? igate_na / t : 0.0;
  }

  LeakageBreakdown& operator+=(const LeakageBreakdown& other) {
    isub_na += other.isub_na;
    igate_na += other.igate_na;
    return *this;
  }
};

inline LeakageBreakdown operator+(LeakageBreakdown a, const LeakageBreakdown& b) {
  a += b;
  return a;
}

}  // namespace svtox::model
