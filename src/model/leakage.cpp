#include "model/leakage.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::model {

double isub_na(const TechParams& tech, DeviceType type, VtClass vt, double width,
               SubthresholdBias bias, int series_off_depth) {
  if (width <= 0.0) throw ContractError("isub_na: non-positive device width");
  if (series_off_depth < 1) throw ContractError("isub_na: stack depth must be >= 1");

  double current =
      (type == DeviceType::kNmos ? tech.isub_n_low : tech.isub_p_low) * width;
  if (vt == VtClass::kHigh) current /= vt_ratio(tech, type);
  if (bias == SubthresholdBias::kZeroVds) {
    current *= tech.isub_vds_zero_factor;
  } else {
    const int idx = std::min(series_off_depth, 4) - 1;
    current *= tech.stack_factor[idx];
  }
  return current;
}

double igate_na(const TechParams& tech, DeviceType type, ToxClass tox, double width,
                GateBias bias) {
  if (width <= 0.0) throw ContractError("igate_na: non-positive device width");
  if (bias == GateBias::kNone) return 0.0;

  double current = tech.igate_n_thin * width;
  if (type == DeviceType::kPmos) current *= tech.igate_p_ratio;
  if (tox == ToxClass::kThick) current /= tech.tox_ratio;
  switch (bias) {
    case GateBias::kFullChannel: break;
    case GateBias::kReducedChannel: current *= tech.igate_reduced_factor; break;
    case GateBias::kReverseOverlap: current *= tech.edt_factor; break;
    case GateBias::kNone: return 0.0;
  }
  return current;
}

}  // namespace svtox::model
