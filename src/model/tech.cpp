#include "model/tech.hpp"

#include <cmath>

namespace svtox::model {

const TechParams& TechParams::nominal() {
  static const TechParams params{};
  return params;
}

TechParams TechParams::at_temperature(double kelvin) const {
  TechParams p = *this;
  p.temp_kelvin = kelvin;
  const double t0 = temp_kelvin;
  // Isub ~ exp(T/T0) with T0 calibrated to ~2X per 12K (a typical 65nm
  // subthreshold slope at these Vt values).
  const double isub_scale = std::exp((kelvin - t0) / 17.3);
  p.isub_n_low = isub_n_low * isub_scale;
  p.isub_p_low = isub_p_low * isub_scale;
  // The high/low-Vt ratio is exp(dVt / (n*vT)); vT grows linearly with T,
  // so the exponent -- and hence log(ratio) -- compresses as t0/T.
  p.vt_ratio_n = std::pow(vt_ratio_n, t0 / kelvin);
  p.vt_ratio_p = std::pow(vt_ratio_p, t0 / kelvin);
  // Direct tunneling is nearly athermal; keep a token linear term.
  const double igate_scale = 1.0 + 5e-4 * (kelvin - t0);
  p.igate_n_thin = igate_n_thin * igate_scale;
  return p;
}

const TechParams& TechParams::nitrided() {
  static const TechParams params = [] {
    TechParams p{};
    // Hole tunneling through nitrided oxide is no longer an order of
    // magnitude below electron tunneling (Yeo et al., EDL 2000).
    p.igate_p_ratio = 1.2;
    return p;
  }();
  return params;
}

double vt_ratio(const TechParams& tech, DeviceType type) {
  return type == DeviceType::kNmos ? tech.vt_ratio_n : tech.vt_ratio_p;
}

double resistance_factor(const TechParams& tech, VtClass vt, ToxClass tox) {
  double factor = 1.0;
  if (vt == VtClass::kHigh) factor *= tech.r_vt_factor;
  if (tox == ToxClass::kThick) factor *= tech.r_tox_factor;
  return factor;
}

const char* to_string(DeviceType type) {
  return type == DeviceType::kNmos ? "nmos" : "pmos";
}

const char* to_string(VtClass vt) {
  return vt == VtClass::kLow ? "lvt" : "hvt";
}

const char* to_string(ToxClass tox) {
  return tox == ToxClass::kThin ? "thin" : "thick";
}

}  // namespace svtox::model
