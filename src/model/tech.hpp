// Technology parameters for the predictive-65nm substitute process.
//
// The paper characterizes its library with SPICE/BSIM4 on a predictive 65nm
// process [ITRS'02]. We replace that with an analytical model whose free
// parameters are calibrated to every quantitative anchor the paper reports:
//
//  * high-Vt reduces Isub by 17.8X (NMOS) / 16.7X (PMOS)      (paper Sec. 2)
//  * thick Tox reduces Igate by 11X                            (paper Sec. 2)
//  * Igate is ~36% of total leakage at the nominal corner      (paper Sec. 2)
//  * PMOS Igate ~10X below NMOS for equal Tox (SiO2)           (paper Sec. 2)
//  * reverse (gate-drain overlap) tunneling ~3 orders below
//    channel tunneling                                         (paper Sec. 2)
//  * all high-Vt + thick-Tox nearly doubles circuit delay      (paper Sec. 6)
//  * per-assignment delay factors matching Table 1
//    (~1.36 rise for high-Vt PMOS, ~1.27 fall for thick NMOS)
//
// The optimizer itself only ever sees the pre-characterized tables built from
// this model, exactly as it would from SPICE decks.
#pragma once

#include <cstdint>

namespace svtox::model {

/// NMOS or PMOS.
enum class DeviceType : std::uint8_t { kNmos, kPmos };

/// Threshold-voltage flavor in the dual-Vt process.
enum class VtClass : std::uint8_t { kLow, kHigh };

/// Oxide-thickness flavor in the dual-Tox process.
enum class ToxClass : std::uint8_t { kThin, kThick };

/// Process/supply constants and calibrated leakage-model parameters.
/// Currents are in nA per unit device width; delays are unitless multipliers
/// on nominal drive resistance.
struct TechParams {
  // --- Supply / environment -------------------------------------------
  double vdd_volts = 1.0;        ///< Nominal supply (sub-1V node).
  double temp_kelvin = 300.0;    ///< Standby analysis at room temperature.

  // --- Subthreshold leakage (per unit width, full Vds, low-Vt) ---------
  double isub_n_low = 60.0;      ///< NMOS Isub at Vds=Vdd [nA/unit-W].
  double isub_p_low = 42.0;      ///< PMOS Isub at |Vds|=Vdd [nA/unit-W].
  double vt_ratio_n = 17.8;      ///< Isub(low-Vt)/Isub(high-Vt), NMOS.
  double vt_ratio_p = 16.7;      ///< Isub(low-Vt)/Isub(high-Vt), PMOS.

  /// Residual Isub factor for an OFF device whose Vds collapsed to ~0
  /// (e.g. an OFF PMOS whose drain already sits at Vdd).
  double isub_vds_zero_factor = 0.02;

  /// Series stack-effect factors: Isub multiplier when k OFF devices are
  /// stacked in series (index k-1; k>=5 clamps to the last entry). The
  /// 2-stack value of 0.30 is back-solved from the paper's Table 1 NAND2
  /// state-00 rows (41.2 nA total, 14.0 nA after a single high-Vt
  /// assignment: the stack carries ~27 nA before and ~1.5 nA after).
  double stack_factor[4] = {1.0, 0.30, 0.12, 0.06};

  // --- Gate tunneling leakage (per unit width, Vgs=Vdd, thin Tox) ------
  double igate_n_thin = 33.33;   ///< NMOS channel tunneling [nA/unit-W].
  double igate_p_ratio = 0.10;   ///< PMOS Igate relative to NMOS (SiO2).
  double tox_ratio = 11.0;       ///< Igate(thin)/Igate(thick).

  /// Igate multiplier for an ON device whose Vgs/Vgd collapsed to ~one Vt
  /// drop because it sits above a non-conducting device in its stack
  /// (paper Sec. 3 / Fig. 2(e) and Fig. 3(f)).
  double igate_reduced_factor = 0.02;

  /// Reverse gate-drain overlap tunneling (EDT) for an OFF device whose
  /// drain is at the far rail, relative to full channel tunneling
  /// (paper Sec. 2: restricted to the overlap region, ~3 orders smaller;
  /// we keep it two orders down so it remains visible in the tables).
  double edt_factor = 0.02;

  // --- Delay model ------------------------------------------------------
  /// Drive-resistance multiplier of a high-Vt device vs low-Vt.
  double r_vt_factor = 1.36;
  /// Drive-resistance multiplier of a thick-Tox device vs thin.
  double r_tox_factor = 1.27;
  /// Weight of non-switching series devices in a path-resistance sum;
  /// reproduces the pin-position delay asymmetry of Table 1.
  double series_other_weight = 0.8;

  // --- Base timing / load constants for NLDM characterization ----------
  double r_unit_kohm = 5.0;      ///< Drive resistance of a unit-width NMOS.
  double pmos_r_mult = 2.0;      ///< PMOS resistivity multiplier (mobility).
  /// Stack up-sizing slope: a device on a k-deep series path is widened to
  /// base * (1 + slope*(k-1)). Partial compensation (0.5) keeps stacked
  /// gates (NOR) slower than their parallel duals (NAND), as in real
  /// libraries where full compensation is too area-expensive.
  double stack_upsize_slope = 0.5;
  double cin_ff_per_unit_w = 0.8;///< Gate input capacitance per unit width.
  double cout_self_ff = 0.6;     ///< Cell self-load (drain junction) [fF].
  double wire_ff_per_fanout = 0.25; ///< Net wire cap per fanout connection.
  double slew_derate = 0.25;     ///< Input-slew contribution to delay.
  double output_slew_factor = 1.8;  ///< Output slew as multiple of R*C.
  double default_pi_slew_ps = 20.0; ///< Slew assumed at primary inputs.
  double default_po_load_ff = 2.0;  ///< Load assumed at primary outputs.

  /// The calibrated default technology.
  static const TechParams& nominal();

  /// A nitrided-gate-oxide variant (paper Sec. 2: with higher nitrogen
  /// concentrations "PMOS Igate can actually exceed NMOS Igate"). PMOS
  /// tunneling is appreciable here, so the optimizer also assigns
  /// thick-Tox PMOS devices -- the extension the paper sketches.
  static const TechParams& nitrided();

  /// This technology re-evaluated at junction temperature `kelvin`.
  /// Subthreshold current rises exponentially with temperature (about 2X
  /// per ~12K here) and the high/low-Vt ratio compresses with the thermal
  /// voltage, while gate tunneling is nearly temperature-independent --
  /// which is why the paper's footnote argues room-temperature analysis
  /// fits standby (idle junctions run cool) and why Igate's share shrinks
  /// on a hot die.
  TechParams at_temperature(double kelvin) const;
};

/// Isub reduction ratio for `type` when moving low-Vt -> high-Vt.
double vt_ratio(const TechParams& tech, DeviceType type);

/// Drive-resistance multiplier of a (vt, tox) corner vs (low, thin).
/// Multiplicative in the two knobs: a both-assigned device costs
/// r_vt_factor * r_tox_factor ~ 1.73, i.e. "nearly doubles" delay.
double resistance_factor(const TechParams& tech, VtClass vt, ToxClass tox);

/// Human-readable names for debug output and library serialization.
const char* to_string(DeviceType type);
const char* to_string(VtClass vt);
const char* to_string(ToxClass tox);

}  // namespace svtox::model
