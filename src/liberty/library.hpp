// The swap library: every cell archetype with its full set of Vt/Tox
// versions, pre-characterized leakage-per-state tables and NLDM timing.
//
// This is the artifact the paper's flow assumes ("the proposed method is
// compatible with existing library-based design flows"): optimization is
// cell swapping, and the optimizer only reads the numbers stored here.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cellkit/state.hpp"
#include "cellkit/topology.hpp"
#include "cellkit/variants.hpp"
#include "liberty/nldm.hpp"
#include "model/tech.hpp"

namespace svtox::liberty {

/// Timing of one input pin of one cell variant.
struct PinTiming {
  NldmTable delay_rise;     ///< Output rise driven by this pin.
  NldmTable delay_fall;     ///< Output fall driven by this pin.
  NldmTable slew_rise;      ///< Output rise slew.
  NldmTable slew_fall;      ///< Output fall slew.
};

/// One characterized cell version (library member).
struct LibCellVariant {
  std::string name;                    ///< e.g. "NAND2_v2".
  cellkit::CellAssignment assignment;  ///< Per-device corners.
  std::vector<double> leakage_na;      ///< Indexed by raw input state.
  std::vector<PinTiming> pins;         ///< Indexed by input pin.
  double area = 0.0;                   ///< Cell area incl. mixed-rule spacing.
};

/// One cell archetype with its versions and per-state trade-off map.
class LibCell {
 public:
  LibCell(std::unique_ptr<cellkit::CellTopology> topo,
          cellkit::CellVersionSet versions, std::vector<LibCellVariant> variants);

  const cellkit::CellTopology& topology() const { return *topo_; }
  const std::string& name() const { return topo_->name(); }
  int num_inputs() const { return topo_->num_inputs(); }

  const std::vector<LibCellVariant>& variants() const { return variants_; }
  const LibCellVariant& variant(int index) const { return variants_.at(index); }
  int num_variants() const { return static_cast<int>(variants_.size()); }
  int fastest_variant() const { return versions_.fastest_version(); }

  /// The trade-off record for a *canonical* state.
  const cellkit::StateTradeoffs& tradeoffs(std::uint32_t canonical_state) const {
    return versions_.tradeoffs(canonical_state);
  }

  /// Canonicalizes a raw local input state (pin reordering).
  cellkit::PinMapping canonicalize(std::uint32_t state) const {
    return cellkit::canonicalize(*topo_, state);
  }

  /// Leakage of `variant_index` when the *canonical* local state is
  /// `canonical_state` [nA].
  double leakage_na(int variant_index, std::uint32_t canonical_state) const {
    return variants_.at(variant_index).leakage_na.at(canonical_state);
  }

  /// Mutable variant access for table overlay during deserialization.
  LibCellVariant& variant_mut(int index) { return variants_.at(index); }

 private:
  std::unique_ptr<cellkit::CellTopology> topo_;
  cellkit::CellVersionSet versions_;
  std::vector<LibCellVariant> variants_;
};

/// Options controlling library construction (paper Sec. 4 / Table 5).
struct LibraryOptions {
  cellkit::VariantOptions variant_options;
  std::vector<double> slew_axis_ps = default_slew_axis_ps();
  std::vector<double> load_axis_ff = default_load_axis_ff();
  /// Cell archetypes to include; empty = all standard cells.
  std::vector<std::string> cell_names;
};

/// The full library.
class Library {
 public:
  /// Characterizes all requested archetypes under `tech`. This is the
  /// SPICE-replacement step: every (variant, state) leakage and every
  /// (variant, pin, edge, slew, load) delay is tabulated here once.
  static Library build(const model::TechParams& tech, const LibraryOptions& options);

  const model::TechParams& tech() const { return tech_; }
  const LibraryOptions& options() const { return options_; }

  const std::vector<LibCell>& cells() const { return cells_; }
  bool has_cell(const std::string& name) const;
  const LibCell& cell(const std::string& name) const;
  int cell_index(const std::string& name) const;
  const LibCell& cell_at(int index) const { return cells_.at(index); }

  /// Mutable cell access for table overlay during deserialization.
  LibCell& cell_at_mut(int index) { return cells_.at(index); }

  /// Total number of versions across all cells (library size, Table 2's
  /// bottom-line concern).
  int total_versions() const;

 private:
  Library(const model::TechParams& tech, LibraryOptions options);

  model::TechParams tech_;
  LibraryOptions options_;
  std::vector<LibCell> cells_;
};

}  // namespace svtox::liberty
