// Industry Liberty (.lib) export of the characterized swap library.
//
// The paper's flow is "compatible with existing library-based design
// flows"; this writer makes that concrete by emitting the characterization
// in the de-facto exchange format: per-version cells with area,
// state-dependent leakage_power groups (when-conditions over the input
// pins), pin capacitances, output function strings, and NLDM timing groups
// over a shared lu_table_template. Export-only: svtox itself round-trips
// through the denser .svlib format (serialize.hpp).
#pragma once

#include <iosfwd>
#include <string>

#include "liberty/library.hpp"

namespace svtox::liberty {

/// Writes `lib` in Liberty syntax. `library_name` defaults to "svtox_65nm".
void write_liberty_format(const Library& lib, std::ostream& out,
                          const std::string& library_name = "svtox_65nm");

std::string write_liberty_format(const Library& lib,
                                 const std::string& library_name = "svtox_65nm");

/// The Liberty pin name of input `pin` (A1, A2, ...) and the output (Y).
std::string liberty_pin_name(int pin);

/// Boolean function string of a cell archetype in Liberty syntax,
/// e.g. NAND2 -> "!(A1&A2)". Throws ContractError for unknown archetypes.
std::string liberty_function(const std::string& cell_name);

}  // namespace svtox::liberty
