#include "liberty/nldm.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace svtox::liberty {

namespace {

void check_axis(const std::vector<double>& axis, const char* what) {
  if (axis.empty()) throw ContractError(std::string("NldmTable: empty ") + what);
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (axis[i] <= axis[i - 1]) {
      throw ContractError(std::string("NldmTable: non-ascending ") + what);
    }
  }
}

/// Finds the interpolation segment [i, i+1] for x and the fractional
/// position within it; extrapolates linearly beyond the ends.
struct Segment {
  std::size_t lo;
  double t;  ///< May be <0 or >1 when extrapolating.
};

Segment locate(const std::vector<double>& axis, double x) {
  if (axis.size() == 1) return {0, 0.0};
  std::size_t hi = 1;
  while (hi + 1 < axis.size() && axis[hi] < x) ++hi;
  const std::size_t lo = hi - 1;
  return {lo, (x - axis[lo]) / (axis[hi] - axis[lo])};
}

}  // namespace

NldmTable::NldmTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
                     std::vector<double> values)
    : slew_axis_(std::move(slew_axis_ps)),
      load_axis_(std::move(load_axis_ff)),
      values_(std::move(values)) {
  check_axis(slew_axis_, "slew axis");
  check_axis(load_axis_, "load axis");
  if (values_.size() != slew_axis_.size() * load_axis_.size()) {
    throw ContractError("NldmTable: value count does not match axes");
  }
}

double NldmTable::lookup(double slew_ps, double load_ff) const {
  if (empty()) throw ContractError("NldmTable::lookup on empty table");
  const Segment s = locate(slew_axis_, slew_ps);
  const Segment l = locate(load_axis_, load_ff);

  auto value = [&](std::size_t si, std::size_t li) { return at(si, li); };

  if (slew_axis_.size() == 1 && load_axis_.size() == 1) return value(0, 0);
  if (slew_axis_.size() == 1) {
    const double v0 = value(0, l.lo);
    const double v1 = value(0, l.lo + 1);
    return v0 + (v1 - v0) * l.t;
  }
  if (load_axis_.size() == 1) {
    const double v0 = value(s.lo, 0);
    const double v1 = value(s.lo + 1, 0);
    return v0 + (v1 - v0) * s.t;
  }
  const double v00 = value(s.lo, l.lo);
  const double v01 = value(s.lo, l.lo + 1);
  const double v10 = value(s.lo + 1, l.lo);
  const double v11 = value(s.lo + 1, l.lo + 1);
  const double lo = v00 + (v01 - v00) * l.t;
  const double hi = v10 + (v11 - v10) * l.t;
  return lo + (hi - lo) * s.t;
}

NldmLoadSlice::NldmLoadSlice(const NldmTable& table, double load_ff)
    : slew_axis_(table.slew_axis_ps()) {
  if (table.empty()) throw ContractError("NldmLoadSlice: empty table");
  const std::vector<double>& loads = table.load_axis_ff();
  values_.resize(slew_axis_.size());
  for (std::size_t i = 0; i < slew_axis_.size(); ++i) {
    if (loads.size() == 1) {
      values_[i] = table.at(i, 0);
    } else {
      // The exact load-axis reduction lookup() performs per call.
      const Segment l = locate(loads, load_ff);
      const double v0 = table.at(i, l.lo);
      const double v1 = table.at(i, l.lo + 1);
      values_[i] = v0 + (v1 - v0) * l.t;
    }
  }
  // Pad the axis for lookup()'s SIMD segment search; +inf keeps it
  // ascending, and locate_hi never selects a padded knot (hi <= size - 1).
  if (slew_axis_.size() > 1 && slew_axis_.size() <= simd::kAxisPad) {
    slew_axis_.resize(simd::kAxisPad, std::numeric_limits<double>::infinity());
  }
}

NldmTable NldmTable::scaled(double factor) const {
  NldmTable out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

std::vector<double> default_slew_axis_ps() { return {5.0, 15.0, 40.0, 100.0, 250.0}; }

std::vector<double> default_load_axis_ff() {
  return {0.5, 1.5, 4.0, 10.0, 25.0, 60.0};
}

}  // namespace svtox::liberty
