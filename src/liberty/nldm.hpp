// Non-linear delay model (NLDM) lookup tables.
//
// Exactly like a commercial .lib, timing is stored as a 2-D grid over
// (input slew, output load) and interpolated bilinearly at query time. The
// optimizer and STA consume only these tables -- they never see the
// analytical delay model that characterized them.
#pragma once

#include <string>
#include <vector>

#include "util/simd.hpp"

namespace svtox::liberty {

/// A 2-D characterization table over input slew [ps] x output load [fF].
class NldmTable {
 public:
  NldmTable() = default;

  /// Axes must be strictly ascending and non-empty; values has
  /// slew_axis.size() * load_axis.size() entries, row-major by slew.
  NldmTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
            std::vector<double> values);

  /// Bilinear interpolation inside the grid; linear extrapolation from the
  /// outermost segments when the query falls outside (delay grows ~linearly
  /// in load, so clamping would systematically underestimate).
  double lookup(double slew_ps, double load_ff) const;

  const std::vector<double>& slew_axis_ps() const { return slew_axis_; }
  const std::vector<double>& load_axis_ff() const { return load_axis_; }
  const std::vector<double>& values() const { return values_; }

  double at(std::size_t slew_idx, std::size_t load_idx) const {
    return values_[slew_idx * load_axis_.size() + load_idx];
  }

  bool empty() const { return values_.empty(); }

  /// Multiplies every table entry by `factor` (variant scaling).
  NldmTable scaled(double factor) const;

 private:
  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<double> values_;
};

/// A 1-D restriction of an NldmTable to one fixed output load.
///
/// lookup(slew, load) factors into a load-axis interpolation of each slew
/// row followed by a slew-axis interpolation of the two reduced rows; a
/// slice performs the load reduction once at construction with exactly the
/// arithmetic lookup() applies per call, so lookup(slew) here returns the
/// SAME BITS as table.lookup(slew, load) while skipping the load-axis
/// locate, two of the three lerps and half the grid reads. Incremental STA
/// uses slices because a gate instance's output load never changes.
class NldmLoadSlice {
 public:
  NldmLoadSlice() = default;

  /// Restricts `table` (non-empty) to `load_ff`.
  NldmLoadSlice(const NldmTable& table, double load_ff);

  /// Bit-identical to table.lookup(slew_ps, load_ff) of the construction
  /// arguments, including extrapolation outside the slew axis. Inline and
  /// branch-light: this is the innermost operation of incremental STA.
  double lookup(double slew_ps) const {
    const std::size_t size = values_.size();
    if (size == 1) return values_[0];
    // Same segment search and lerp as NldmTable::lookup's slew axis. The
    // axis is stored padded to simd::kAxisPad knots with +inf (when it
    // fits), turning the scalar scan into one branch-free SIMD compare;
    // simd::locate_hi is bit-identical to the scalar loop either way.
    const double* axis = slew_axis_.data();
    const std::size_t hi = slew_axis_.size() == simd::kAxisPad
                               ? simd::locate_hi(axis, size, slew_ps)
                               : simd::locate_hi_portable(axis, size, slew_ps);
    const std::size_t lo = hi - 1;
    const double t = (slew_ps - axis[lo]) / (axis[hi] - axis[lo]);
    const double v0 = values_[lo];
    const double v1 = values_[lo + 1];
    return v0 + (v1 - v0) * t;
  }

  bool empty() const { return values_.empty(); }

 private:
  /// The slew axis, padded to simd::kAxisPad entries with +inf when the
  /// real knot count fits (values_.size() keeps the real count).
  std::vector<double> slew_axis_;
  std::vector<double> values_;  ///< Load-reduced value per slew knot.
};

/// Default characterization axes used by the library builder.
std::vector<double> default_slew_axis_ps();
std::vector<double> default_load_axis_ff();

}  // namespace svtox::liberty
