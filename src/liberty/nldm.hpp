// Non-linear delay model (NLDM) lookup tables.
//
// Exactly like a commercial .lib, timing is stored as a 2-D grid over
// (input slew, output load) and interpolated bilinearly at query time. The
// optimizer and STA consume only these tables -- they never see the
// analytical delay model that characterized them.
#pragma once

#include <string>
#include <vector>

namespace svtox::liberty {

/// A 2-D characterization table over input slew [ps] x output load [fF].
class NldmTable {
 public:
  NldmTable() = default;

  /// Axes must be strictly ascending and non-empty; values has
  /// slew_axis.size() * load_axis.size() entries, row-major by slew.
  NldmTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
            std::vector<double> values);

  /// Bilinear interpolation inside the grid; linear extrapolation from the
  /// outermost segments when the query falls outside (delay grows ~linearly
  /// in load, so clamping would systematically underestimate).
  double lookup(double slew_ps, double load_ff) const;

  const std::vector<double>& slew_axis_ps() const { return slew_axis_; }
  const std::vector<double>& load_axis_ff() const { return load_axis_; }
  const std::vector<double>& values() const { return values_; }

  double at(std::size_t slew_idx, std::size_t load_idx) const {
    return values_[slew_idx * load_axis_.size() + load_idx];
  }

  bool empty() const { return values_.empty(); }

  /// Multiplies every table entry by `factor` (variant scaling).
  NldmTable scaled(double factor) const;

 private:
  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<double> values_;
};

/// Default characterization axes used by the library builder.
std::vector<double> default_slew_axis_ps();
std::vector<double> default_load_axis_ff();

}  // namespace svtox::liberty
