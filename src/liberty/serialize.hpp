// Text serialization of a characterized library.
//
// The format (".svlib") is a line-oriented dump of every variant's
// assignment, per-state leakage vector, and NLDM tables. A written library
// reloads bit-identically, which lets a characterization run be shared
// across tools exactly like a .lib hand-off in a commercial flow.
#pragma once

#include <iosfwd>
#include <string>

#include "liberty/library.hpp"

namespace svtox::liberty {

/// Serializes `lib` to the stream.
void write_library(const Library& lib, std::ostream& out);

/// Convenience: serializes to a string.
std::string write_library(const Library& lib);

/// Parses a library previously produced by write_library. The cell
/// topologies and version structure are regenerated from the recorded
/// options (generation is deterministic); the numeric tables are taken from
/// the file and validated against the regenerated structure. Throws
/// ParseError on malformed input and ContractError on structural mismatch.
/// `source` names the input in error messages (defaults to "<svlib>").
Library read_library(std::istream& in, const model::TechParams& tech,
                     const std::string& source = "");

/// Convenience: parses from a string.
Library read_library(const std::string& text, const model::TechParams& tech,
                     const std::string& source = "");

}  // namespace svtox::liberty
