#include "liberty/library.hpp"

#include <utility>

#include "cellkit/analyzer.hpp"
#include "cellkit/area.hpp"
#include "cellkit/delay.hpp"
#include "util/error.hpp"

namespace svtox::liberty {

LibCell::LibCell(std::unique_ptr<cellkit::CellTopology> topo,
                 cellkit::CellVersionSet versions, std::vector<LibCellVariant> variants)
    : topo_(std::move(topo)),
      versions_(std::move(versions)),
      variants_(std::move(variants)) {
  if (variants_.size() != static_cast<std::size_t>(versions_.num_versions())) {
    throw ContractError("LibCell: variant/version count mismatch");
  }
}

Library::Library(const model::TechParams& tech, LibraryOptions options)
    : tech_(tech), options_(std::move(options)) {}

Library Library::build(const model::TechParams& tech, const LibraryOptions& options) {
  Library lib(tech, options);
  const std::vector<std::string>& names =
      options.cell_names.empty() ? cellkit::standard_cell_names() : options.cell_names;

  for (const std::string& name : names) {
    auto topo = std::make_unique<cellkit::CellTopology>(
        cellkit::make_standard_cell(name, tech));
    cellkit::CellVersionSet versions =
        cellkit::generate_versions(*topo, tech, options.variant_options);

    std::vector<LibCellVariant> variants;
    variants.reserve(static_cast<std::size_t>(versions.num_versions()));
    for (const cellkit::CellVersion& version : versions.versions()) {
      LibCellVariant variant;
      variant.name = version.name;
      variant.assignment = version.assignment;
      variant.area = cellkit::cell_area(*topo, cellkit::AreaRules{}, version.assignment);

      // Per-state leakage table (the SPICE sweep of the paper's Sec. 2).
      variant.leakage_na.resize(topo->num_states());
      for (std::uint32_t state = 0; state < topo->num_states(); ++state) {
        variant.leakage_na[state] =
            cellkit::cell_leakage(*topo, tech, state, version.assignment).total_na();
      }

      // Per-pin NLDM timing: the nominal characterization scaled by the
      // variant's path-resistance factor for each (pin, edge).
      for (int pin = 0; pin < topo->num_inputs(); ++pin) {
        PinTiming timing;
        const std::size_t ns = options.slew_axis_ps.size();
        const std::size_t nl = options.load_axis_ff.size();
        std::vector<double> delay_r(ns * nl), delay_f(ns * nl);
        std::vector<double> slew_r(ns * nl), slew_f(ns * nl);
        const double factor_r = cellkit::delay_factor(*topo, tech, version.assignment,
                                                      pin, cellkit::Edge::kRise);
        const double factor_f = cellkit::delay_factor(*topo, tech, version.assignment,
                                                      pin, cellkit::Edge::kFall);
        for (std::size_t si = 0; si < ns; ++si) {
          for (std::size_t li = 0; li < nl; ++li) {
            const double slew = options.slew_axis_ps[si];
            const double load = options.load_axis_ff[li];
            const std::size_t idx = si * nl + li;
            delay_r[idx] = factor_r * cellkit::nominal_delay_ps(
                                          *topo, tech, pin, cellkit::Edge::kRise, slew, load);
            delay_f[idx] = factor_f * cellkit::nominal_delay_ps(
                                          *topo, tech, pin, cellkit::Edge::kFall, slew, load);
            slew_r[idx] = factor_r * cellkit::nominal_output_slew_ps(
                                         *topo, tech, pin, cellkit::Edge::kRise, slew, load);
            slew_f[idx] = factor_f * cellkit::nominal_output_slew_ps(
                                         *topo, tech, pin, cellkit::Edge::kFall, slew, load);
          }
        }
        timing.delay_rise = NldmTable(options.slew_axis_ps, options.load_axis_ff, delay_r);
        timing.delay_fall = NldmTable(options.slew_axis_ps, options.load_axis_ff, delay_f);
        timing.slew_rise = NldmTable(options.slew_axis_ps, options.load_axis_ff, slew_r);
        timing.slew_fall = NldmTable(options.slew_axis_ps, options.load_axis_ff, slew_f);
        variant.pins.push_back(std::move(timing));
      }
      variants.push_back(std::move(variant));
    }
    lib.cells_.emplace_back(std::move(topo), std::move(versions), std::move(variants));
  }
  return lib;
}

bool Library::has_cell(const std::string& name) const {
  for (const LibCell& cell : cells_) {
    if (cell.name() == name) return true;
  }
  return false;
}

const LibCell& Library::cell(const std::string& name) const {
  return cells_.at(static_cast<std::size_t>(cell_index(name)));
}

int Library::cell_index(const std::string& name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name() == name) return static_cast<int>(i);
  }
  throw ContractError("Library: unknown cell '" + name + "'");
}

int Library::total_versions() const {
  int total = 0;
  for (const LibCell& cell : cells_) total += cell.num_variants();
  return total;
}

}  // namespace svtox::liberty
