#include "liberty/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace svtox::liberty {

namespace {

constexpr const char* kMagic = "svtox_library";
constexpr int kFormatVersion = 1;

void write_doubles(std::ostream& out, const std::vector<double>& values) {
  for (double v : values) out << ' ' << format_double(v, 6);
  out << '\n';
}

void write_table(std::ostream& out, const char* tag, int pin, const NldmTable& table) {
  out << "    " << tag << ' ' << pin;
  write_doubles(out, table.values());
}

}  // namespace

void write_library(const Library& lib, std::ostream& out) {
  const cellkit::VariantOptions& vo = lib.options().variant_options;
  out << kMagic << " v" << kFormatVersion << '\n';
  out << "options four_point " << vo.four_point << " uniform_stack " << vo.uniform_stack
      << " vt_only " << vo.vt_only << '\n';
  out << "slew_axis_ps";
  write_doubles(out, lib.options().slew_axis_ps);
  out << "load_axis_ff";
  write_doubles(out, lib.options().load_axis_ff);

  for (const LibCell& cell : lib.cells()) {
    out << "cell " << cell.name() << " variants " << cell.num_variants() << '\n';
    for (const LibCellVariant& variant : cell.variants()) {
      out << "  variant " << variant.name << '\n';
      out << "    assign";
      for (const cellkit::DeviceAssign& a : variant.assignment) {
        out << ' ' << model::to_string(a.vt) << ':' << model::to_string(a.tox);
      }
      out << '\n';
      out << "    area " << format_double(variant.area, 6) << '\n';
      out << "    leakage_na";
      write_doubles(out, variant.leakage_na);
      for (int pin = 0; pin < cell.num_inputs(); ++pin) {
        write_table(out, "delay_rise", pin, variant.pins[pin].delay_rise);
        write_table(out, "delay_fall", pin, variant.pins[pin].delay_fall);
        write_table(out, "slew_rise", pin, variant.pins[pin].slew_rise);
        write_table(out, "slew_fall", pin, variant.pins[pin].slew_fall);
      }
    }
  }
  out << "end\n";
}

std::string write_library(const Library& lib) {
  std::ostringstream out;
  write_library(lib, out);
  return out.str();
}

namespace {

/// Line-based reader with position tracking for error messages.
class Reader {
 public:
  Reader(std::istream& in, std::string source)
      : in_(in), source_(std::move(source)) {}

  /// Next non-empty line, tokenized on whitespace.
  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      const auto views = split_ws(line);
      if (views.empty()) continue;
      std::vector<std::string> tokens;
      tokens.reserve(views.size());
      for (auto v : views) tokens.emplace_back(v);
      return tokens;
    }
    throw ParseError(source_, line_no_, "unexpected end of file");
  }

  int line() const { return line_no_; }
  const std::string& source() const { return source_; }

 private:
  std::istream& in_;
  std::string source_;
  int line_no_ = 0;
};

[[noreturn]] void fail(const Reader& r, const std::string& what) {
  throw ParseError(r.source(), r.line(), what);
}

std::vector<double> parse_doubles(const std::vector<std::string>& tokens,
                                  std::size_t first) {
  std::vector<double> out;
  out.reserve(tokens.size() - first);
  for (std::size_t i = first; i < tokens.size(); ++i) out.push_back(parse_double(tokens[i]));
  return out;
}

cellkit::DeviceAssign parse_assign(const Reader& r, const std::string& token) {
  const auto parts = split(token, ':');
  if (parts.size() != 2) fail(r, "bad assignment token '" + token + "'");
  cellkit::DeviceAssign a;
  if (parts[0] == "lvt") {
    a.vt = model::VtClass::kLow;
  } else if (parts[0] == "hvt") {
    a.vt = model::VtClass::kHigh;
  } else {
    fail(r, "bad Vt class '" + std::string(parts[0]) + "'");
  }
  if (parts[1] == "thin") {
    a.tox = model::ToxClass::kThin;
  } else if (parts[1] == "thick") {
    a.tox = model::ToxClass::kThick;
  } else {
    fail(r, "bad Tox class '" + std::string(parts[1]) + "'");
  }
  return a;
}

}  // namespace

Library read_library(std::istream& in, const model::TechParams& tech,
                     const std::string& source) {
  Reader r(in, source.empty() ? "<svlib>" : source);

  auto header = r.next();
  if (header.size() != 2 || header[0] != kMagic || header[1] != "v1") {
    fail(r, "not an svtox library file");
  }

  auto opts_line = r.next();
  if (opts_line.size() != 7 || opts_line[0] != "options") fail(r, "missing options line");
  LibraryOptions options;
  options.variant_options.four_point = parse_size(opts_line[2]) != 0;
  options.variant_options.uniform_stack = parse_size(opts_line[4]) != 0;
  options.variant_options.vt_only = parse_size(opts_line[6]) != 0;

  auto slew_line = r.next();
  if (slew_line[0] != "slew_axis_ps") fail(r, "missing slew axis");
  options.slew_axis_ps = parse_doubles(slew_line, 1);
  auto load_line = r.next();
  if (load_line[0] != "load_axis_ff") fail(r, "missing load axis");
  options.load_axis_ff = parse_doubles(load_line, 1);

  // Collect cell names in file order, then regenerate the library structure
  // and overlay the serialized tables.
  struct VariantData {
    std::string name;
    cellkit::CellAssignment assignment;
    double area = 0.0;
    std::vector<double> leakage;
    std::vector<std::vector<double>> tables;  // 4 per pin: dr, df, sr, sf
  };
  struct CellData {
    std::string name;
    std::vector<VariantData> variants;
  };
  std::vector<CellData> file_cells;

  for (auto tokens = r.next(); tokens[0] != "end"; tokens = r.next()) {
    if (tokens[0] != "cell" || tokens.size() != 4) fail(r, "expected 'cell' record");
    CellData cell;
    cell.name = tokens[1];
    const std::size_t variant_count = parse_size(tokens[3]);
    for (std::size_t v = 0; v < variant_count; ++v) {
      auto vline = r.next();
      if (vline[0] != "variant" || vline.size() != 2) fail(r, "expected 'variant'");
      VariantData data;
      data.name = vline[1];
      auto aline = r.next();
      if (aline[0] != "assign") fail(r, "expected 'assign'");
      for (std::size_t i = 1; i < aline.size(); ++i) {
        data.assignment.push_back(parse_assign(r, aline[i]));
      }
      auto area_line = r.next();
      if (area_line[0] != "area" || area_line.size() != 2) fail(r, "expected 'area'");
      data.area = parse_double(area_line[1]);
      auto lline = r.next();
      if (lline[0] != "leakage_na") fail(r, "expected 'leakage_na'");
      data.leakage = parse_doubles(lline, 1);
      // Tables arrive in a fixed order per pin; infer the pin count from the
      // device assignment (devices = 2 * pins for our complementary cells).
      const std::size_t num_pins = data.assignment.size() / 2;
      for (std::size_t pin = 0; pin < num_pins; ++pin) {
        for (const char* tag : {"delay_rise", "delay_fall", "slew_rise", "slew_fall"}) {
          auto tline = r.next();
          if (tline[0] != tag) fail(r, std::string("expected '") + tag + "'");
          if (parse_size(tline[1]) != pin) fail(r, "table pin index mismatch");
          data.tables.push_back(parse_doubles(tline, 2));
        }
      }
      cell.variants.push_back(std::move(data));
    }
    file_cells.push_back(std::move(cell));
  }

  for (const CellData& cd : file_cells) options.cell_names.push_back(cd.name);

  // Regenerate the structure, then overlay and validate.
  Library lib = Library::build(tech, options);
  if (lib.cells().size() != file_cells.size()) {
    throw ContractError("read_library: cell count mismatch after regeneration");
  }
  for (std::size_t c = 0; c < file_cells.size(); ++c) {
    const CellData& cd = file_cells[c];
    LibCell& cell = lib.cell_at_mut(static_cast<int>(c));
    if (cell.num_variants() != static_cast<int>(cd.variants.size())) {
      throw ContractError("read_library: variant count mismatch for " + cd.name);
    }
    for (int v = 0; v < cell.num_variants(); ++v) {
      const VariantData& data = cd.variants[static_cast<std::size_t>(v)];
      LibCellVariant& variant = cell.variant_mut(v);
      if (variant.assignment != data.assignment) {
        throw ContractError("read_library: assignment mismatch for " + data.name);
      }
      if (data.leakage.size() != variant.leakage_na.size()) {
        throw ContractError("read_library: leakage table size mismatch for " + data.name);
      }
      variant.name = data.name;
      variant.area = data.area;
      variant.leakage_na = data.leakage;
      const std::size_t num_pins = variant.pins.size();
      for (std::size_t pin = 0; pin < num_pins; ++pin) {
        auto table = [&](std::size_t k) {
          return NldmTable(options.slew_axis_ps, options.load_axis_ff,
                           data.tables.at(pin * 4 + k));
        };
        variant.pins[pin].delay_rise = table(0);
        variant.pins[pin].delay_fall = table(1);
        variant.pins[pin].slew_rise = table(2);
        variant.pins[pin].slew_fall = table(3);
      }
    }
  }
  return lib;
}

Library read_library(const std::string& text, const model::TechParams& tech,
                     const std::string& source) {
  std::istringstream in(text);
  return read_library(in, tech, source);
}

}  // namespace svtox::liberty
