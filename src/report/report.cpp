#include "report/report.hpp"

#include <fstream>

#include "util/strings.hpp"

namespace svtox::report {

std::string format_ua(double ua) { return format_double(ua, 1); }

std::string format_x(double x) { return format_double(x, 1); }

std::string format_seconds(double s) {
  if (s < 0.01) return format_double(s * 1e3, 2) + "ms";
  if (s < 1.0) return format_double(s * 1e3, 0) + "ms";
  return format_double(s, 1) + "s";
}

std::string paper_vs_measured(double paper, double measured, int precision) {
  return format_double(paper, precision) + " / " + format_double(measured, precision);
}

bool save_table(const AsciiTable& table, const std::string& path) {
  std::ofstream txt(path);
  if (!txt) return false;
  txt << table.render();
  std::ofstream csv(path + ".csv");
  if (!csv) return false;
  csv << table.to_csv();
  return true;
}

}  // namespace svtox::report
