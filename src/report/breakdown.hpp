// Circuit-level leakage breakdown reporting.
//
// The library tables store only total leakage per (variant, state); for
// analysis the breakdown into subthreshold and gate-tunneling components is
// recomputed from the transistor-level model. This is what substantiates
// the paper's premise at circuit scope: before optimization Igate is a
// large fraction of the total (Sec. 2: ~36%), and a dual-Vt-only flow
// leaves that entire component on the table.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/leakage.hpp"
#include "netlist/netlist.hpp"
#include "sim/leakage_eval.hpp"

namespace svtox::report {

/// Per-circuit leakage decomposition at one input vector.
struct LeakageBreakdownReport {
  model::LeakageBreakdown total;
  /// Aggregated by cell archetype name (INV, NAND2, ...).
  std::map<std::string, model::LeakageBreakdown> by_cell_type;
  /// The `top_n` leakiest gates: (gate index, breakdown), descending.
  std::vector<std::pair<int, model::LeakageBreakdown>> top_gates;
};

/// Computes the breakdown of `netlist` under `config` at `input_values`.
LeakageBreakdownReport leakage_breakdown(const netlist::Netlist& netlist,
                                         const sim::CircuitConfig& config,
                                         const std::vector<bool>& input_values,
                                         int top_n = 10);

/// Renders the report as an ASCII block.
std::string render_breakdown(const netlist::Netlist& netlist,
                             const LeakageBreakdownReport& report);

}  // namespace svtox::report
