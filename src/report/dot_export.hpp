// Graphviz DOT export of a netlist, optionally annotated with a standby
// solution (swapped gates highlighted, sleep values on the sources).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "sim/leakage_eval.hpp"

namespace svtox::report {

/// Writes a `digraph` of the circuit. When `config` is non-null, gates
/// whose version differs from the fastest are filled and labeled with the
/// version name; when `sleep_vector` is non-null (control-point order),
/// source nodes carry their standby value.
void write_dot(const netlist::Netlist& netlist, std::ostream& out,
               const sim::CircuitConfig* config = nullptr,
               const std::vector<bool>* sleep_vector = nullptr);

std::string write_dot(const netlist::Netlist& netlist,
                      const sim::CircuitConfig* config = nullptr,
                      const std::vector<bool>* sleep_vector = nullptr);

}  // namespace svtox::report
