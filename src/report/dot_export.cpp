#include "report/dot_export.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace svtox::report {

void write_dot(const netlist::Netlist& netlist, std::ostream& out,
               const sim::CircuitConfig* config,
               const std::vector<bool>* sleep_vector) {
  if (config != nullptr &&
      config->size() != static_cast<std::size_t>(netlist.num_gates())) {
    throw ContractError("write_dot: config size mismatch");
  }
  if (sleep_vector != nullptr &&
      sleep_vector->size() != static_cast<std::size_t>(netlist.num_control_points())) {
    throw ContractError("write_dot: sleep vector size mismatch");
  }

  out << "digraph \"" << netlist.name() << "\" {\n";
  out << "  rankdir=LR;\n  node [fontsize=9];\n";

  // Sources: primary inputs as triangles, FF outputs as boxes.
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    const int s = netlist.control_points()[i];
    const bool is_pi = i < netlist.num_inputs();
    out << "  \"s" << s << "\" [shape=" << (is_pi ? "invtriangle" : "box")
        << ", label=\"" << netlist.signal_name(s);
    if (sleep_vector != nullptr) out << "=" << ((*sleep_vector)[i] ? '1' : '0');
    out << "\"];\n";
  }

  for (int g = 0; g < netlist.num_gates(); ++g) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    std::string label = netlist.gate(g).name + "\\n" + cell.name();
    bool swapped = false;
    if (config != nullptr) {
      const int v = (*config)[static_cast<std::size_t>(g)].variant;
      if (v != cell.fastest_variant()) {
        swapped = true;
        label = netlist.gate(g).name + "\\n" + cell.variant(v).name;
      }
    }
    out << "  \"g" << g << "\" [shape=ellipse, label=\"" << label << '"';
    if (swapped) out << ", style=filled, fillcolor=lightblue";
    out << "];\n";
  }

  auto source_node = [&](int signal) {
    const int driver = netlist.driver(signal);
    if (driver >= 0) return "g" + std::to_string(driver);
    return "s" + std::to_string(signal);
  };

  for (int g = 0; g < netlist.num_gates(); ++g) {
    for (int f : netlist.gate(g).fanins) {
      out << "  \"" << source_node(f) << "\" -> \"g" << g << "\";\n";
    }
  }
  // Endpoints: POs and FF D pins.
  for (int s : netlist.primary_outputs()) {
    out << "  \"o" << s << "\" [shape=triangle, label=\"" << netlist.signal_name(s)
        << "\"];\n";
    out << "  \"" << source_node(s) << "\" -> \"o" << s << "\";\n";
  }
  for (const netlist::FlipFlop& ff : netlist.flip_flops()) {
    out << "  \"" << source_node(ff.d) << "\" -> \"s" << ff.q
        << "\" [style=dashed, label=\"" << ff.name << "\"];\n";
  }
  out << "}\n";
}

std::string write_dot(const netlist::Netlist& netlist, const sim::CircuitConfig* config,
                      const std::vector<bool>* sleep_vector) {
  std::ostringstream out;
  write_dot(netlist, out, config, sleep_vector);
  return out.str();
}

}  // namespace svtox::report
