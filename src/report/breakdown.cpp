#include "report/breakdown.hpp"

#include <algorithm>
#include <sstream>

#include "cellkit/analyzer.hpp"
#include "sim/sim.hpp"
#include "util/strings.hpp"

namespace svtox::report {

LeakageBreakdownReport leakage_breakdown(const netlist::Netlist& netlist,
                                         const sim::CircuitConfig& config,
                                         const std::vector<bool>& input_values,
                                         int top_n) {
  const std::vector<bool> values = sim::simulate(netlist, input_values);
  const model::TechParams& tech = netlist.library().tech();

  LeakageBreakdownReport report;
  std::vector<std::pair<int, model::LeakageBreakdown>> per_gate;
  per_gate.reserve(static_cast<std::size_t>(netlist.num_gates()));

  for (int g = 0; g < netlist.num_gates(); ++g) {
    const sim::GateConfig& gc = config[static_cast<std::size_t>(g)];
    const liberty::LibCell& cell = netlist.cell_of(g);
    const std::uint32_t physical =
        gc.physical_state(sim::local_state(netlist, values, g));
    const model::LeakageBreakdown leak = cellkit::cell_leakage(
        cell.topology(), tech, physical, cell.variant(gc.variant).assignment);
    report.total += leak;
    report.by_cell_type[cell.name()] += leak;
    per_gate.push_back({g, leak});
  }

  std::stable_sort(per_gate.begin(), per_gate.end(), [](const auto& a, const auto& b) {
    return a.second.total_na() > b.second.total_na();
  });
  if (static_cast<int>(per_gate.size()) > top_n) {
    per_gate.resize(static_cast<std::size_t>(top_n));
  }
  report.top_gates = std::move(per_gate);
  return report;
}

std::string render_breakdown(const netlist::Netlist& netlist,
                             const LeakageBreakdownReport& report) {
  std::ostringstream out;
  out << "leakage breakdown (" << netlist.name() << "): total "
      << format_double(report.total.total_na() / 1e3, 2) << " uA = Isub "
      << format_double(report.total.isub_na / 1e3, 2) << " uA + Igate "
      << format_double(report.total.igate_na / 1e3, 2) << " uA ("
      << format_double(100.0 * report.total.igate_fraction(), 1) << "% tunneling)\n";
  out << "by cell type:\n";
  for (const auto& [name, leak] : report.by_cell_type) {
    out << "  " << name << ": " << format_double(leak.total_na() / 1e3, 2) << " uA ("
        << format_double(100.0 * leak.igate_fraction(), 1) << "% Igate)\n";
  }
  out << "leakiest gates:\n";
  for (const auto& [g, leak] : report.top_gates) {
    out << "  " << netlist.gate(g).name << " (" << netlist.cell_of(g).name() << "): "
        << format_double(leak.total_na(), 1) << " nA\n";
  }
  return out.str();
}

}  // namespace svtox::report
