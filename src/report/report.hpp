// Formatting helpers for the paper-style result tables.
#pragma once

#include <string>

#include "util/table.hpp"

namespace svtox::report {

/// Formats a leakage value in uA with one decimal (paper table style).
std::string format_ua(double ua);

/// Formats a reduction factor "X" with one decimal.
std::string format_x(double x);

/// Formats seconds with an adaptive precision.
std::string format_seconds(double s);

/// Formats a paper-vs-measured pair, e.g. "24.5 / 26.1".
std::string paper_vs_measured(double paper, double measured, int precision = 1);

/// Writes a rendered table (and its CSV twin) under `path` and `path`.csv.
/// Returns false (without throwing) if the location is not writable.
bool save_table(const AsciiTable& table, const std::string& path);

}  // namespace svtox::report
