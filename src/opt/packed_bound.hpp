// Word-parallel leakage lower bounds for partial input assignments.
//
// The state-tree search bounds a partial assignment by ternary simulation
// plus a per-gate minimum over the compatible local states
// (leakage_lower_bound_na). PackedBoundKernel evaluates 64 partial
// assignments per pass: one packed ternary simulation, then per gate a walk
// over that cell's states in ascending-leakage order -- the first state
// compatible with a lane IS that lane's per-gate minimum, so a scatter-add
// into the lane's total resolves it. Each lane receives exactly one
// addition per gate, in gate-index order: the identical FP sequence as the
// scalar reference, hence bit-identical bounds.
//
// The parallel root split uses this to prescreen its fixed-prefix subtrees
// (packed_prefix_bounds): subtrees whose prefix bound cannot beat the
// incumbent are skipped before paying the per-subtree incremental-engine
// descent. The prescreen only ever *skips* work the engine bound would
// also have pruned (both bounds are the same value; the incumbent only
// improves between the two checks), so search results are unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/bound_engine.hpp"
#include "opt/problem.hpp"
#include "sim/packed.hpp"

namespace svtox::opt {

/// Evaluates leakage lower bounds for up to 64 partial assignments at once.
class PackedBoundKernel {
 public:
  PackedBoundKernel(const AssignmentProblem& problem, BoundKind kind);

  /// `input_planes[i]` packs the ternary value of control point i across
  /// the lanes. Writes each active lane's bound -- bit-identical to
  /// leakage_lower_bound_na on that lane's assignment -- into
  /// `bounds[lane]`; all 64 entries are written (inactive lanes read 0).
  void evaluate(const std::vector<cellkit::TriWord>& input_planes,
                std::uint64_t lane_mask, double* bounds);

 private:
  const AssignmentProblem* problem_;
  sim::PackedTernarySim sim_;
  struct StateLeak {
    double leak = 0.0;
    std::uint32_t state = 0;
  };
  /// Per library cell: all local states ascending by the per-gate bound
  /// term (min-variant or fastest-variant leakage, per BoundKind).
  std::vector<std::vector<StateLeak>> by_cell_;
};

/// Bound of every fixed prefix of the root split: subtree `s` assigns
/// input_order()[level] to bit `level` of `s` for the first `split_levels`
/// levels and leaves the rest unknown. 64 subtrees per packed pass;
/// entry s is bit-identical to leakage_lower_bound_na of that prefix.
std::vector<double> packed_prefix_bounds(const AssignmentProblem& problem,
                                         BoundKind kind, int split_levels,
                                         std::uint32_t num_subtrees);

}  // namespace svtox::opt
