#include "opt/problem.hpp"

#include <algorithm>
#include <cassert>

#include "util/error.hpp"

namespace svtox::opt {

AssignmentProblem::AssignmentProblem(const netlist::Netlist& netlist,
                                     double penalty_fraction,
                                     const ProblemOptions& options)
    : netlist_(&netlist),
      flat_(&netlist.flat()),
      penalty_(penalty_fraction),
      options_(options),
      load_slices_(netlist) {
  if (penalty_fraction < 0.0 || penalty_fraction > 1.0) {
    throw ContractError("AssignmentProblem: penalty fraction must be in [0, 1]");
  }
  if (!options_.boundary.points.empty() &&
      options_.boundary.points.size() !=
          static_cast<std::size_t>(netlist.num_control_points())) {
    throw ContractError(
        "AssignmentProblem: boundary timing needs one point per control point");
  }
  budget_ = sta::compute_delay_budget(netlist, options_.boundary);
  constraint_ps_ = budget_.constraint_ps(penalty_fraction);

  // Per-cell caches.
  const liberty::Library& lib = netlist.library();
  cell_cache_.resize(lib.cells().size());
  for (std::size_t c = 0; c < lib.cells().size(); ++c) {
    const liberty::LibCell& cell = lib.cell_at(static_cast<int>(c));
    CellCache& cache = cell_cache_[c];
    const std::uint32_t num_states = cell.topology().num_states();
    cache.menus.resize(num_states);
    cache.min_leak_by_raw_state.resize(num_states);
    cache.fastest_leak_by_raw_state.resize(num_states);
    if (options_.use_pin_reorder) cache.mapping_by_raw_state.resize(num_states);

    for (std::uint32_t raw = 0; raw < num_states; ++raw) {
      const cellkit::PinMapping mapping = cell.canonicalize(raw);
      const std::uint32_t canon = mapping.canonical_state;
      if (options_.use_pin_reorder) cache.mapping_by_raw_state[raw] = mapping;

      if (options_.use_pin_reorder) {
        // Menu lives at the canonical state: the trade-off points generated
        // for it, sorted ascending by leakage there.
        if (cache.menus[canon].by_leakage.empty()) {
          VariantMenu menu;
          menu.by_leakage = cell.tradeoffs(canon).distinct_versions();
          std::sort(menu.by_leakage.begin(), menu.by_leakage.end(), [&](int a, int b) {
            return cell.leakage_na(a, canon) < cell.leakage_na(b, canon);
          });
          cache.menus[canon] = std::move(menu);
        }
      } else {
        // Ablation: no rewiring, so every library version competes at the
        // raw state and the menu is indexed by the raw state itself.
        VariantMenu menu;
        for (int v = 0; v < cell.num_variants(); ++v) menu.by_leakage.push_back(v);
        std::sort(menu.by_leakage.begin(), menu.by_leakage.end(), [&](int a, int b) {
          return cell.leakage_na(a, raw) < cell.leakage_na(b, raw);
        });
        cache.menus[raw] = std::move(menu);
      }

      const std::uint32_t menu_state = options_.use_pin_reorder ? canon : raw;
      double min_leak = 1e300;
      for (int v : cache.menus[menu_state].by_leakage) {
        min_leak = std::min(min_leak, cell.leakage_na(v, menu_state));
      }
      cache.min_leak_by_raw_state[raw] = min_leak;
      // The fastest-version leakage is evaluated at the *raw* state: the
      // state-only baseline does not reorder pins, while min_leak (the
      // proposed method's bound) gets the canonical state's reorder benefit.
      cache.fastest_leak_by_raw_state[raw] =
          cell.leakage_na(cell.fastest_variant(), raw);
    }
  }

  // Input ordering: descending transitive-fanout gate count.
  std::vector<int> cone_size(static_cast<std::size_t>(netlist.num_control_points()), 0);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    std::vector<bool> reached(static_cast<std::size_t>(netlist.num_gates()), false);
    std::vector<int> stack;
    for (const netlist::Sink& sink : netlist.sinks(netlist.control_points()[i])) {
      if (!reached[static_cast<std::size_t>(sink.gate)]) {
        reached[static_cast<std::size_t>(sink.gate)] = true;
        stack.push_back(sink.gate);
      }
    }
    int count = 0;
    while (!stack.empty()) {
      const int g = stack.back();
      stack.pop_back();
      ++count;
      for (const netlist::Sink& sink : netlist.sinks(netlist.gate(g).output)) {
        if (!reached[static_cast<std::size_t>(sink.gate)]) {
          reached[static_cast<std::size_t>(sink.gate)] = true;
          stack.push_back(sink.gate);
        }
      }
    }
    cone_size[static_cast<std::size_t>(i)] = count;
  }
  input_order_.resize(static_cast<std::size_t>(netlist.num_control_points()));
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    input_order_[static_cast<std::size_t>(i)] = i;
  }
  std::stable_sort(input_order_.begin(), input_order_.end(), [&](int a, int b) {
    return cone_size[static_cast<std::size_t>(a)] > cone_size[static_cast<std::size_t>(b)];
  });
}

// The per-gate lookups below sit inside the bound subset walks and leaf
// refresh loops -- the hottest scalar code in the search. They index the
// flat cell array and the per-cell tables unchecked (debug asserts only):
// the constructor sized every table to the cell's num_states, and every
// raw state a simulator can produce is below that.
const VariantMenu& AssignmentProblem::menu(int gate, std::uint32_t canonical_state) const {
  const CellCache& cache = cell_cache_[flat_->cell_index(static_cast<std::uint32_t>(gate))];
  assert(canonical_state < cache.menus.size());
  const VariantMenu& menu = cache.menus[canonical_state];
  if (menu.by_leakage.empty()) {
    throw ContractError("AssignmentProblem::menu: state is not canonical");
  }
  return menu;
}

const cellkit::PinMapping& AssignmentProblem::pin_mapping(int gate,
                                                          std::uint32_t raw_state) const {
  if (!options_.use_pin_reorder) {
    throw ContractError("AssignmentProblem::pin_mapping: pin reordering disabled");
  }
  const CellCache& cache = cell_cache_[flat_->cell_index(static_cast<std::uint32_t>(gate))];
  assert(raw_state < cache.mapping_by_raw_state.size());
  return cache.mapping_by_raw_state[raw_state];
}

double AssignmentProblem::min_gate_leak_na(int gate, std::uint32_t raw_state) const {
  const CellCache& cache = cell_cache_[flat_->cell_index(static_cast<std::uint32_t>(gate))];
  assert(raw_state < cache.min_leak_by_raw_state.size());
  return cache.min_leak_by_raw_state[raw_state];
}

double AssignmentProblem::fastest_gate_leak_na(int gate, std::uint32_t raw_state) const {
  const CellCache& cache = cell_cache_[flat_->cell_index(static_cast<std::uint32_t>(gate))];
  assert(raw_state < cache.fastest_leak_by_raw_state.size());
  return cache.fastest_leak_by_raw_state[raw_state];
}

double AssignmentProblem::min_gate_leak_over_na(
    int gate, const std::vector<std::uint32_t>& raw_states) const {
  double best = 1e300;
  for (std::uint32_t s : raw_states) best = std::min(best, min_gate_leak_na(gate, s));
  return best;
}

}  // namespace svtox::opt
