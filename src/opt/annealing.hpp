// Simulated-annealing state search -- an alternative optimizer beyond the
// paper's branch-and-bound family, useful as a cross-check and on circuits
// whose ternary bound is flat (XOR-dominated logic).
//
// The walk operates on the sleep vector with single-bit flip moves; move
// cost is the cheap state-only leakage (one O(G) simulation), so tens of
// thousands of moves fit in a short budget. The best visited state then
// receives the full greedy gate-tree assignment, exactly like a Heu2 leaf.
#pragma once

#include <cstdint>

#include "opt/gate_assign.hpp"
#include "opt/problem.hpp"
#include "opt/solution.hpp"

namespace svtox::opt {

struct AnnealingOptions {
  double time_limit_s = 2.0;
  std::uint64_t seed = 1;
  /// Initial temperature as a fraction of the starting state-only leakage.
  double t_start_fraction = 0.05;
  /// Geometric cooling applied once per accepted-or-rejected move batch.
  double cooling = 0.9995;
  GateOrder gate_order = GateOrder::kBySavings;
};

/// Runs the annealing walk and returns the greedy-assigned solution of the
/// best sleep vector found. Deterministic in options.seed.
Solution simulated_annealing(const AssignmentProblem& problem,
                             const AnnealingOptions& options = {});

}  // namespace svtox::opt
