// Amortized leaf evaluation for the state-tree search.
//
// Every state-tree leaf fixes a sleep vector and runs a gate-tree search
// (greedy, exact, or the state-only baseline). Done from scratch, each leaf
// pays for work that barely changes between neighboring leaves: a full
// 2-valued simulation, per-gate canonicalization, a freshly heap-allocated
// TimingState and its all-fastest analyze(). A LeafEvaluator owns all of
// that state once per worker and keeps it synchronized with the leaf
// stream:
//
//  * sim::IncrementalBoolSim re-evaluates only the fanout cones of the
//    inputs that differ from the previous leaf's sleep vector;
//  * per-gate contexts (raw state, canonical state, pin mapping) are
//    refreshed only for the gates those cones touched, using the problem's
//    memoized canonicalization;
//  * the all-fastest timing baseline is computed once at construction and
//    recalled per leaf via sta::TimingSnapshot (the fastest configuration's
//    arrival times are independent of the sleep vector and of the
//    symmetric-pin mappings, so one analyze() serves every leaf);
//  * the reusable config/timing buffers feed the reusable-state overloads
//    of assign_gates_greedy / assign_gates_exact;
//  * a per-signal downstream-delay lower bound (computed once; it depends
//    only on the netlist and library) lets those searches abort the timing
//    propagation of delay-infeasible variant trials early -- the dominant
//    cost of a greedy leaf is re-timing the full fanout cone of trials
//    that end up rejected and reverted.
//
// Results are bit-identical to the from-scratch free functions; a property
// test enforces this on random and bundled circuits.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/gate_assign.hpp"
#include "opt/problem.hpp"
#include "opt/solution.hpp"
#include "sim/incremental.hpp"
#include "sta/sta.hpp"

namespace svtox::opt {

class LeafEvaluator {
 public:
  /// Pays the one-time setup: full simulation of the all-zero vector,
  /// per-gate context construction, and the all-fastest timing analyze.
  explicit LeafEvaluator(const AssignmentProblem& problem);

  const AssignmentProblem& problem() const { return *problem_; }

  /// Bit-identical to assign_gates_greedy(problem, sleep_vector, order).
  Solution evaluate_greedy(const std::vector<bool>& sleep_vector,
                           GateOrder order = GateOrder::kBySavings);

  /// Bit-identical to assign_gates_exact(problem, sleep_vector, max_nodes).
  Solution evaluate_exact(const std::vector<bool>& sleep_vector,
                          std::uint64_t max_nodes = 0);

  /// Bit-identical to evaluate_state_only(problem, sleep_vector).
  Solution evaluate_state_only(const std::vector<bool>& sleep_vector);

  /// Advances the internal simulation and per-gate contexts to
  /// `sleep_vector` (cone-local). Exposed for tests; the evaluate_*
  /// entry points call it themselves.
  void sync(const std::vector<bool>& sleep_vector);

  /// Current per-gate contexts (valid for the last synced vector).
  const std::vector<GateContext>& contexts() const { return contexts_; }

 private:
  void refresh_gate(int gate);

  const AssignmentProblem* problem_;
  sim::IncrementalBoolSim sim_;
  std::vector<GateContext> contexts_;
  /// Per-gate fastest-variant leakage at the current raw state; summed in
  /// gate order per state-only leaf (the same association order as the
  /// from-scratch evaluation, hence bit-identical totals).
  std::vector<double> state_terms_;
  sim::CircuitConfig config_;          ///< All-fastest + contexts' mappings.
  sim::CircuitConfig fastest_config_;  ///< Identity mappings (state-only).
  sta::TimingState timing_;
  sta::TimingSnapshot baseline_;
  /// sta::downstream_delay_lower_bounds_ps of the netlist; passed to the
  /// gate-tree searches for early rejection of infeasible trials.
  std::vector<double> down_lb_;
  std::vector<int> changed_;  ///< Scratch for set_input reporting.
};

}  // namespace svtox::opt
