#include "opt/bound_engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::opt {

double masked_gate_bound_na(const AssignmentProblem& problem, int gate,
                            sim::TriMask mask, BoundKind kind) {
  double gate_min = 1e300;
  std::uint32_t sub = mask.xmask;
  for (;;) {
    const std::uint32_t state = mask.ones | sub;
    const double leak = kind == BoundKind::kMinVariant
                            ? problem.min_gate_leak_na(gate, state)
                            : problem.fastest_gate_leak_na(gate, state);
    gate_min = std::min(gate_min, leak);
    if (sub == 0) break;
    sub = (sub - 1) & mask.xmask;
  }
  return gate_min;
}

double leakage_lower_bound_na(const AssignmentProblem& problem,
                              const std::vector<sim::Tri>& input_values,
                              BoundKind kind) {
  const netlist::Netlist& netlist = problem.netlist();
  const netlist::FlatNetlist& flat = netlist.flat();
  const std::vector<sim::Tri> values = sim::simulate_ternary(netlist, input_values);
  double bound = 0.0;
  for (std::uint32_t g = 0; g < flat.num_gates(); ++g) {
    bound += masked_gate_bound_na(problem, static_cast<int>(g),
                                  sim::local_ternary_mask(flat, values, g), kind);
  }
  return bound;
}

BoundEngine::BoundEngine(const AssignmentProblem& problem, BoundKind kind,
                         BoundMode mode)
    : problem_(&problem), kind_(kind), mode_(mode), sim_(problem.netlist()) {
  if (mode_ == BoundMode::kReference) {
    ref_inputs_.assign(
        static_cast<std::size_t>(problem.netlist().num_control_points()), sim::Tri::kX);
    return;
  }
  const netlist::FlatNetlist& flat = problem.netlist().flat();
  terms_.resize(static_cast<std::size_t>(flat.num_gates()));
  for (std::uint32_t g = 0; g < flat.num_gates(); ++g) {
    terms_[g] = masked_gate_bound_na(
        problem, static_cast<int>(g),
        sim::local_ternary_mask(flat, sim_.values(), g), kind_);
  }
}

const std::vector<sim::Tri>& BoundEngine::input_values() const {
  return mode_ == BoundMode::kReference ? ref_inputs_ : sim_.input_values();
}

double BoundEngine::set_input(int index, sim::Tri value) {
  if (mode_ == BoundMode::kReference) {
    ref_log_.push_back({index, ref_inputs_[static_cast<std::size_t>(index)]});
    ref_inputs_[static_cast<std::size_t>(index)] = value;
    return bound();
  }
  term_marks_.push_back(term_log_.size());
  changed_.clear();
  sim_.set_input(index, value, &changed_);
  const netlist::FlatNetlist& flat = problem_->netlist().flat();
  for (int g : changed_) {
    const std::size_t gate = static_cast<std::size_t>(g);
    term_log_.push_back({g, terms_[gate]});
    terms_[gate] = masked_gate_bound_na(
        *problem_, g,
        sim::local_ternary_mask(flat, sim_.values(), static_cast<std::uint32_t>(g)),
        kind_);
  }
  return bound();
}

void BoundEngine::undo() {
  if (mode_ == BoundMode::kReference) {
    if (ref_log_.empty()) throw ContractError("BoundEngine::undo: no frame");
    ref_inputs_[static_cast<std::size_t>(ref_log_.back().index)] =
        ref_log_.back().previous;
    ref_log_.pop_back();
    return;
  }
  if (term_marks_.empty()) throw ContractError("BoundEngine::undo: no frame");
  const std::size_t mark = term_marks_.back();
  term_marks_.pop_back();
  while (term_log_.size() > mark) {
    terms_[static_cast<std::size_t>(term_log_.back().gate)] = term_log_.back().previous;
    term_log_.pop_back();
  }
  sim_.undo();
}

double BoundEngine::bound() const {
  if (mode_ == BoundMode::kReference) {
    return leakage_lower_bound_na(*problem_, ref_inputs_, kind_);
  }
  // Summed in gate-index order -- the exact addition sequence of the
  // reference path -- so incremental and reference bounds are bit-equal.
  double bound = 0.0;
  for (double term : terms_) bound += term;
  return bound;
}

int BoundEngine::frames() const {
  return mode_ == BoundMode::kReference ? static_cast<int>(ref_log_.size())
                                        : static_cast<int>(term_marks_.size());
}

}  // namespace svtox::opt
