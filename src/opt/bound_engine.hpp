// Incremental leakage lower-bound engine for the state-tree search.
//
// The bound at a partial input assignment is a sum of independent per-gate
// terms (min leakage over the local states compatible with the ternary
// valuation). BoundEngine keeps every term cached; when one control point
// is assigned, the event-driven ternary simulator reports exactly the
// gates whose local state changed and only those terms are recomputed.
// The total is still summed over the term array in gate-index order, so
// the reported bound is bit-identical to the from-scratch
// `leakage_lower_bound_na` reference -- branch ordering (and therefore
// every search result) is unchanged by the optimization.
//
// BoundMode::kReference keeps the original full recomputation alive for
// cross-checks in tests and for the before/after microbenchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/problem.hpp"
#include "sim/incremental.hpp"
#include "sim/sim.hpp"

namespace svtox::opt {

/// What the per-gate bound assumes about cell versions.
enum class BoundKind : std::uint8_t {
  kMinVariant,      ///< Gates may take their best version (proposed method).
  kFastestVariant,  ///< Gates stay at the fastest version (state-only).
};

/// How the bound is evaluated.
enum class BoundMode : std::uint8_t {
  kIncremental,  ///< Cone-update + cached per-gate terms (default).
  kReference,    ///< Full ternary resimulation per probe (cross-check).
};

/// Lower bound on `gate`'s leakage over every full local state compatible
/// with the masked ternary state (allocation-free subset walk).
double masked_gate_bound_na(const AssignmentProblem& problem, int gate,
                            sim::TriMask mask, BoundKind kind);

class BoundEngine {
 public:
  BoundEngine(const AssignmentProblem& problem, BoundKind kind,
              BoundMode mode = BoundMode::kIncremental);

  const AssignmentProblem& problem() const { return *problem_; }
  BoundKind kind() const { return kind_; }
  BoundMode mode() const { return mode_; }

  /// Current partial assignment, in control_points() order.
  const std::vector<sim::Tri>& input_values() const;

  /// Assigns control point `index` (opens an undo frame) and returns the
  /// bound of the new partial assignment. O(fanout cone) in incremental
  /// mode, O(circuit) in reference mode.
  double set_input(int index, sim::Tri value);

  /// Reverts the most recent un-undone set_input.
  void undo();

  /// Bound of the current partial assignment.
  double bound() const;

  /// Number of set_input frames currently open.
  int frames() const;

 private:
  const AssignmentProblem* problem_;
  BoundKind kind_;
  BoundMode mode_;

  // --- Incremental mode state ---
  sim::IncrementalTernarySim sim_;
  std::vector<double> terms_;  ///< Cached per-gate bound terms.
  struct TermWrite {
    int gate;
    double previous;
  };
  std::vector<TermWrite> term_log_;
  std::vector<std::size_t> term_marks_;  ///< term_log_ length per frame.
  std::vector<int> changed_;             ///< Scratch for the sim's report.

  // --- Reference mode state ---
  std::vector<sim::Tri> ref_inputs_;
  struct InputWrite {
    int index;
    sim::Tri previous;
  };
  std::vector<InputWrite> ref_log_;
};

}  // namespace svtox::opt
