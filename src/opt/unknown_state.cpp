#include "opt/unknown_state.hpp"

#include <algorithm>
#include <numeric>

#include "sim/packed.hpp"
#include "sta/sta.hpp"

namespace svtox::opt {

namespace {

constexpr double kDelaySlackEps = 1e-6;

/// Per-gate local-state probability estimates from random simulation. The
/// histogram kernel counts 64 vectors per pass (popcounts of packed state
/// matches); the integer counts are exact, so the probabilities are
/// backend-independent.
std::vector<std::vector<double>> estimate_state_probabilities(
    const netlist::Netlist& netlist, int vectors, std::uint64_t seed,
    sim::SimBackend backend) {
  const std::vector<std::vector<std::uint64_t>> counts =
      sim::state_histogram(netlist, vectors, seed, backend);
  std::vector<std::vector<double>> probabilities(counts.size());
  for (std::size_t g = 0; g < counts.size(); ++g) {
    probabilities[g].resize(counts[g].size());
    for (std::size_t s = 0; s < counts[g].size(); ++s) {
      probabilities[g][s] = static_cast<double>(counts[g][s]) / vectors;
    }
  }
  return probabilities;
}

}  // namespace

UnknownStateResult assign_unknown_state(const AssignmentProblem& problem,
                                        const UnknownStateOptions& options) {
  const netlist::Netlist& netlist = problem.netlist();
  const auto probabilities = estimate_state_probabilities(
      netlist, options.probability_vectors, options.seed, options.backend);

  // Expected leakage of every variant of every gate; menus sorted by it.
  auto expected_leak = [&](int g, int variant) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    double expected = 0.0;
    for (std::uint32_t s = 0; s < cell.topology().num_states(); ++s) {
      expected += probabilities[static_cast<std::size_t>(g)][s] *
                  cell.variant(variant).leakage_na[s];
    }
    return expected;
  };

  UnknownStateResult result;
  result.config = sim::fastest_config(netlist);
  sta::TimingState timing(netlist);
  timing.set_boundary(problem.boundary());
  double delay = timing.analyze(result.config);

  // Visit gates by expected savings, mirroring the state-aware greedy.
  std::vector<int> order(static_cast<std::size_t>(netlist.num_gates()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> savings(order.size());
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    double best = 1e300;
    for (int v = 0; v < cell.num_variants(); ++v) best = std::min(best, expected_leak(g, v));
    savings[static_cast<std::size_t>(g)] =
        expected_leak(g, cell.fastest_variant()) - best;
  }
  if (options.gate_order == GateOrder::kBySavings) {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return savings[static_cast<std::size_t>(a)] > savings[static_cast<std::size_t>(b)];
    });
  }

  for (int g : order) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    std::vector<int> menu(static_cast<std::size_t>(cell.num_variants()));
    std::iota(menu.begin(), menu.end(), 0);
    std::stable_sort(menu.begin(), menu.end(), [&](int a, int b) {
      return expected_leak(g, a) < expected_leak(g, b);
    });
    const int fastest = cell.fastest_variant();
    for (int v : menu) {
      if (v == fastest) break;
      result.config[static_cast<std::size_t>(g)].variant = v;
      sta::TimingUndo undo;
      const double new_delay = timing.update_after_gate_change(result.config, g, &undo);
      if (new_delay <= problem.constraint_ps() + kDelaySlackEps) {
        delay = new_delay;
        break;
      }
      timing.revert(undo);
      result.config[static_cast<std::size_t>(g)].variant = fastest;
    }
  }

  result.delay_ps = delay;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    result.expected_leakage_na +=
        expected_leak(g, result.config[static_cast<std::size_t>(g)].variant);
  }
  result.average_leakage_na =
      sim::monte_carlo_leakage(netlist, result.config, options.probability_vectors,
                               options.seed + 1, options.backend)
          .mean_na;
  return result;
}

}  // namespace svtox::opt
