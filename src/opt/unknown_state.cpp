#include "opt/unknown_state.hpp"

#include <algorithm>
#include <numeric>

#include "sim/sim.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace svtox::opt {

namespace {

constexpr double kDelaySlackEps = 1e-6;

/// Per-gate local-state probability estimates from bit-parallel random
/// simulation.
std::vector<std::vector<double>> estimate_state_probabilities(
    const netlist::Netlist& netlist, int vectors, std::uint64_t seed) {
  std::vector<std::vector<double>> counts(static_cast<std::size_t>(netlist.num_gates()));
  for (int g = 0; g < netlist.num_gates(); ++g) {
    counts[static_cast<std::size_t>(g)].assign(
        netlist.cell_of(g).topology().num_states(), 0.0);
  }

  Rng rng(seed);
  int remaining = vectors;
  std::vector<std::uint64_t> words(static_cast<std::size_t>(netlist.num_control_points()));
  while (remaining > 0) {
    const int lanes = std::min(remaining, 64);
    for (auto& w : words) w = rng.next_u64();
    const auto values = sim::simulate64(netlist, words);
    for (int g = 0; g < netlist.num_gates(); ++g) {
      for (int lane = 0; lane < lanes; ++lane) {
        counts[static_cast<std::size_t>(g)][sim::local_state64(netlist, values, g, lane)] +=
            1.0;
      }
    }
    remaining -= lanes;
  }
  for (auto& gate_counts : counts) {
    for (double& c : gate_counts) c /= vectors;
  }
  return counts;
}

}  // namespace

UnknownStateResult assign_unknown_state(const AssignmentProblem& problem,
                                        const UnknownStateOptions& options) {
  const netlist::Netlist& netlist = problem.netlist();
  const auto probabilities = estimate_state_probabilities(
      netlist, options.probability_vectors, options.seed);

  // Expected leakage of every variant of every gate; menus sorted by it.
  auto expected_leak = [&](int g, int variant) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    double expected = 0.0;
    for (std::uint32_t s = 0; s < cell.topology().num_states(); ++s) {
      expected += probabilities[static_cast<std::size_t>(g)][s] *
                  cell.variant(variant).leakage_na[s];
    }
    return expected;
  };

  UnknownStateResult result;
  result.config = sim::fastest_config(netlist);
  sta::TimingState timing(netlist);
  double delay = timing.analyze(result.config);

  // Visit gates by expected savings, mirroring the state-aware greedy.
  std::vector<int> order(static_cast<std::size_t>(netlist.num_gates()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> savings(order.size());
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    double best = 1e300;
    for (int v = 0; v < cell.num_variants(); ++v) best = std::min(best, expected_leak(g, v));
    savings[static_cast<std::size_t>(g)] =
        expected_leak(g, cell.fastest_variant()) - best;
  }
  if (options.gate_order == GateOrder::kBySavings) {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return savings[static_cast<std::size_t>(a)] > savings[static_cast<std::size_t>(b)];
    });
  }

  for (int g : order) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    std::vector<int> menu(static_cast<std::size_t>(cell.num_variants()));
    std::iota(menu.begin(), menu.end(), 0);
    std::stable_sort(menu.begin(), menu.end(), [&](int a, int b) {
      return expected_leak(g, a) < expected_leak(g, b);
    });
    const int fastest = cell.fastest_variant();
    for (int v : menu) {
      if (v == fastest) break;
      result.config[static_cast<std::size_t>(g)].variant = v;
      sta::TimingUndo undo;
      const double new_delay = timing.update_after_gate_change(result.config, g, &undo);
      if (new_delay <= problem.constraint_ps() + kDelaySlackEps) {
        delay = new_delay;
        break;
      }
      timing.revert(undo);
      result.config[static_cast<std::size_t>(g)].variant = fastest;
    }
  }

  result.delay_ps = delay;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    result.expected_leakage_na +=
        expected_leak(g, result.config[static_cast<std::size_t>(g)].variant);
  }
  result.average_leakage_na =
      sim::monte_carlo_leakage(netlist, result.config, options.probability_vectors,
                               options.seed + 1)
          .mean_na;
  return result;
}

}  // namespace svtox::opt
