#include "opt/annealing.hpp"

#include <cmath>

#include "sim/sim.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace svtox::opt {

namespace {

/// State-only leakage of a sleep vector: one topological simulation plus
/// per-gate fastest-version table lookups.
double state_cost_na(const AssignmentProblem& problem, const std::vector<bool>& vector) {
  const netlist::Netlist& netlist = problem.netlist();
  const std::vector<bool> values = sim::simulate(netlist, vector);
  double total = 0.0;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    total += problem.fastest_gate_leak_na(g, sim::local_state(netlist, values, g));
  }
  return total;
}

}  // namespace

Solution simulated_annealing(const AssignmentProblem& problem,
                             const AnnealingOptions& options) {
  Timer timer;
  const netlist::Netlist& netlist = problem.netlist();
  Rng rng(options.seed);
  Deadline deadline(options.time_limit_s);

  std::vector<bool> current(static_cast<std::size_t>(netlist.num_control_points()));
  for (std::size_t i = 0; i < current.size(); ++i) current[i] = rng.next_bool();
  double current_cost = state_cost_na(problem, current);

  std::vector<bool> best = current;
  double best_cost = current_cost;

  double temperature = options.t_start_fraction * current_cost;
  std::uint64_t moves = 0;
  while (!deadline.expired()) {
    // Single-bit flip move.
    const std::size_t bit = rng.next_below(current.size());
    current[bit] = !current[bit];
    const double cost = state_cost_na(problem, current);
    const double delta = cost - current_cost;
    if (delta <= 0.0 ||
        (temperature > 0.0 && rng.next_double() < std::exp(-delta / temperature))) {
      current_cost = cost;  // accept
      if (cost < best_cost) {
        best_cost = cost;
        best = current;
      }
    } else {
      current[bit] = !current[bit];  // reject
    }
    temperature *= options.cooling;
    ++moves;
  }

  // The annealed sleep vector gets the full simultaneous treatment.
  Solution solution = assign_gates_greedy(problem, best, options.gate_order);
  solution.states_explored = moves + 1;
  solution.runtime_s = timer.seconds();
  return solution;
}

}  // namespace svtox::opt
