#include "opt/leaf_evaluator.hpp"

#include "util/error.hpp"
#include "util/timer.hpp"

namespace svtox::opt {

LeafEvaluator::LeafEvaluator(const AssignmentProblem& problem)
    : problem_(&problem),
      sim_(problem.netlist()),
      timing_(problem.netlist()) {
  const netlist::Netlist& netlist = problem.netlist();
  contexts_.resize(static_cast<std::size_t>(netlist.num_gates()));
  state_terms_.resize(static_cast<std::size_t>(netlist.num_gates()));
  for (int g = 0; g < netlist.num_gates(); ++g) refresh_gate(g);
  config_ = initial_config(netlist, contexts_);
  fastest_config_ = sim::fastest_config(netlist);
  timing_.set_boundary(problem.boundary());
  // One analyze serves every leaf: the all-fastest arrival times do not
  // depend on the sleep vector, and pin tables within a symmetric group are
  // identical for the uniform-corner fastest version, so the mappings the
  // contexts carry cannot change them either.
  timing_.analyze(config_);
  timing_.snapshot(baseline_);
  // Shared, leaf-invariant accelerators: the problem's load-sliced tables
  // halve the per-lookup cost of incremental re-timing, and the downstream
  // bounds let infeasible trials abort their propagation early. Both are
  // bit-neutral to the results.
  timing_.use_load_slices(&problem.load_slices());
  down_lb_ = sta::downstream_delay_lower_bounds_ps(netlist);
}

void LeafEvaluator::refresh_gate(int gate) {
  GateContext& ctx = contexts_[static_cast<std::size_t>(gate)];
  ctx.raw_state = sim::local_state(problem_->netlist().flat(), sim_.values(),
                                   static_cast<std::uint32_t>(gate));
  if (problem_->use_pin_reorder()) {
    ctx.mapping = problem_->pin_mapping(gate, ctx.raw_state);
    ctx.canonical_state = ctx.mapping.canonical_state;
  } else {
    ctx.canonical_state = ctx.raw_state;
  }
  state_terms_[static_cast<std::size_t>(gate)] =
      problem_->fastest_gate_leak_na(gate, ctx.raw_state);
}

void LeafEvaluator::sync(const std::vector<bool>& sleep_vector) {
  if (sleep_vector.size() != sim_.input_values().size()) {
    throw ContractError("LeafEvaluator::sync: sleep vector size mismatch");
  }
  changed_.clear();
  for (std::size_t i = 0; i < sleep_vector.size(); ++i) {
    if (sim_.input_values()[i] != sleep_vector[i]) {
      sim_.set_input(static_cast<int>(i), sleep_vector[i], &changed_);
    }
  }
  // The evaluator only ever moves forward through the leaf stream, so the
  // undo frames opened above are dead weight.
  sim_.commit();
  for (int g : changed_) {
    refresh_gate(g);
    // A gate may appear once per set_input call; rewriting its mapping
    // twice is harmless.
    config_[static_cast<std::size_t>(g)].mapping =
        contexts_[static_cast<std::size_t>(g)].mapping;
  }
}

Solution LeafEvaluator::evaluate_greedy(const std::vector<bool>& sleep_vector,
                                        GateOrder order) {
  sync(sleep_vector);
  return assign_gates_greedy(*problem_, sleep_vector, order, contexts_, config_,
                             timing_, baseline_, &down_lb_);
}

Solution LeafEvaluator::evaluate_exact(const std::vector<bool>& sleep_vector,
                                       std::uint64_t max_nodes) {
  sync(sleep_vector);
  return assign_gates_exact(*problem_, sleep_vector, max_nodes, contexts_, config_,
                            timing_, baseline_, &down_lb_);
}

Solution LeafEvaluator::evaluate_state_only(const std::vector<bool>& sleep_vector) {
  Timer timer;
  sync(sleep_vector);
  Solution solution;
  solution.sleep_vector = sleep_vector;
  solution.config = fastest_config_;
  double total = 0.0;
  for (double term : state_terms_) total += term;
  solution.leakage_na = total;
  solution.delay_ps = problem_->budget().fast_delay_ps;
  solution.states_explored = 1;
  solution.runtime_s = timer.seconds();
  return solution;
}

}  // namespace svtox::opt
