// Result types of the standby-leakage optimization.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/leakage_eval.hpp"

namespace svtox::opt {

/// A complete standby solution: the sleep vector applied at the primary
/// inputs plus the per-gate cell-version selection (with pin reordering).
struct Solution {
  std::vector<bool> sleep_vector;   ///< Per primary input, PI order.
  sim::CircuitConfig config;        ///< Per gate.
  double leakage_na = 0.0;          ///< Total standby leakage.
  double delay_ps = 0.0;            ///< Circuit delay under `config`.

  // Search statistics.
  std::uint64_t states_explored = 0;  ///< State-tree leaves evaluated.
  std::uint64_t nodes_visited = 0;    ///< State-tree nodes (incl. interior).
  double runtime_s = 0.0;

  /// True when the search observed an external cancellation request
  /// (SearchOptions::cancel) and returned its best-so-far incumbent
  /// instead of running to its natural time/leaf budget.
  bool interrupted = false;
};

}  // namespace svtox::opt
