#include "opt/partition.hpp"

#include <numeric>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace svtox::opt {

namespace {

/// Union-find over signal ids (path halving + union by size).
class Dsu {
 public:
  explicit Dsu(int n) : parent_(static_cast<std::size_t>(n)), size_(static_cast<std::size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int find(int x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
  }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

/// Fills boundary_inputs and outputs of every partition from its gate
/// list. `partition_of` maps gate id -> partition index.
void derive_interfaces(const netlist::Netlist& netlist,
                       const std::vector<int>& partition_of,
                       std::vector<Partition>& partitions) {
  std::vector<bool> observed(static_cast<std::size_t>(netlist.num_signals()), false);
  for (int s : netlist.observe_points()) observed[static_cast<std::size_t>(s)] = true;
  // Per-signal marker of the partition that last recorded the signal as a
  // boundary input (epoch trick: no clearing between partitions).
  std::vector<int> seen(static_cast<std::size_t>(netlist.num_signals()), -1);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    Partition& part = partitions[p];
    for (int g : part.gates) {
      for (int f : netlist.gate(g).fanins) {
        const int driver = netlist.driver(f);
        const bool internal =
            driver >= 0 && partition_of[static_cast<std::size_t>(driver)] == static_cast<int>(p);
        if (internal || seen[static_cast<std::size_t>(f)] == static_cast<int>(p)) continue;
        seen[static_cast<std::size_t>(f)] = static_cast<int>(p);
        part.boundary_inputs.push_back(f);
      }
    }
    for (int g : part.gates) {
      const int out = netlist.gate(g).output;
      bool external = observed[static_cast<std::size_t>(out)];
      if (!external) {
        for (const netlist::Sink& sink : netlist.sinks(out)) {
          if (partition_of[static_cast<std::size_t>(sink.gate)] != static_cast<int>(p)) {
            external = true;
            break;
          }
        }
      }
      if (external) part.outputs.push_back(out);
    }
  }
}

/// The .bench function keyword of a library cell, or "" if none.
std::string bench_func(const std::string& cell) {
  if (cell == "INV") return "NOT";
  if (starts_with(cell, "NAND")) return "NAND";
  if (starts_with(cell, "NOR")) return "NOR";
  if (starts_with(cell, "AOI") || starts_with(cell, "OAI")) return cell;
  return "";
}

}  // namespace

std::vector<Partition> partition_netlist(const netlist::Netlist& netlist,
                                         const PartitionOptions& options) {
  if (!netlist.finalized()) throw ContractError("partition_netlist: netlist not finalized");
  if (options.max_gates < 1) throw ContractError("partition_netlist: max_gates must be >= 1");

  // Weakly-connected components over signals; a gate joins its fanins to
  // its output.
  Dsu dsu(netlist.num_signals());
  for (const netlist::Gate& gate : netlist.gates()) {
    for (int f : gate.fanins) dsu.unite(f, gate.output);
  }

  // Component gate lists in global topological order (so each list is
  // itself topologically sorted), components ordered by first appearance.
  std::vector<int> component_slot(static_cast<std::size_t>(netlist.num_signals()), -1);
  std::vector<std::vector<int>> component_gates;
  for (int g : netlist.topological_order()) {
    const int root = dsu.find(netlist.gate(g).output);
    int& slot = component_slot[static_cast<std::size_t>(root)];
    if (slot < 0) {
      slot = static_cast<int>(component_gates.size());
      component_gates.emplace_back();
    }
    component_gates[static_cast<std::size_t>(slot)].push_back(g);
  }

  // Slice every component into runs of at most max_gates.
  std::vector<Partition> partitions;
  std::vector<int> partition_of(static_cast<std::size_t>(netlist.num_gates()), -1);
  const std::size_t budget = static_cast<std::size_t>(options.max_gates);
  for (const std::vector<int>& gates : component_gates) {
    for (std::size_t begin = 0; begin < gates.size(); begin += budget) {
      const std::size_t end = std::min(gates.size(), begin + budget);
      Partition part;
      part.gates.assign(gates.begin() + static_cast<std::ptrdiff_t>(begin),
                        gates.begin() + static_cast<std::ptrdiff_t>(end));
      for (int g : part.gates) {
        partition_of[static_cast<std::size_t>(g)] = static_cast<int>(partitions.size());
      }
      partitions.push_back(std::move(part));
    }
  }

  derive_interfaces(netlist, partition_of, partitions);
  return partitions;
}

std::string canonical_bench_text(const netlist::Netlist& netlist,
                                 const Partition& partition) {
  // Canonical local name per referenced global signal.
  std::vector<std::string> local(static_cast<std::size_t>(netlist.num_signals()));
  for (std::size_t j = 0; j < partition.boundary_inputs.size(); ++j) {
    local[static_cast<std::size_t>(partition.boundary_inputs[j])] =
        "bi" + std::to_string(j);
  }
  for (std::size_t k = 0; k < partition.gates.size(); ++k) {
    local[static_cast<std::size_t>(netlist.gate(partition.gates[k]).output)] =
        "n" + std::to_string(k);
  }

  std::string out;
  out.reserve(partition.gates.size() * 24);
  for (std::size_t j = 0; j < partition.boundary_inputs.size(); ++j) {
    out += "INPUT(bi" + std::to_string(j) + ")\n";
  }
  for (int s : partition.outputs) {
    out += "OUTPUT(" + local[static_cast<std::size_t>(s)] + ")\n";
  }
  for (int g : partition.gates) {
    const netlist::Gate& gate = netlist.gate(g);
    const std::string& cell = netlist.cell_of(g).name();
    const std::string func = bench_func(cell);
    if (func.empty()) {
      throw ContractError("canonical_bench_text: cell '" + cell +
                          "' has no bench primitive equivalent");
    }
    out += local[static_cast<std::size_t>(gate.output)];
    out += " = " + func + "(";
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) out += ", ";
      const std::string& name = local[static_cast<std::size_t>(gate.fanins[i])];
      if (name.empty()) {
        throw ContractError("canonical_bench_text: fanin neither boundary nor internal");
      }
      out += name;
    }
    out += ")\n";
  }
  return out;
}

void check_partitions(const netlist::Netlist& netlist,
                      const std::vector<Partition>& partitions) {
  std::vector<int> partition_of(static_cast<std::size_t>(netlist.num_gates()), -1);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    for (int g : partitions[p].gates) {
      if (g < 0 || g >= netlist.num_gates()) {
        throw ContractError("check_partitions: gate id out of range");
      }
      if (partition_of[static_cast<std::size_t>(g)] >= 0) {
        throw ContractError("check_partitions: gate in two partitions");
      }
      partition_of[static_cast<std::size_t>(g)] = static_cast<int>(p);
    }
  }
  for (int g = 0; g < netlist.num_gates(); ++g) {
    if (partition_of[static_cast<std::size_t>(g)] < 0) {
      throw ContractError("check_partitions: gate in no partition");
    }
  }
  // Interfaces match a fresh derivation, and the partition order is
  // topological: boundary inputs come from control points or earlier
  // partitions only.
  std::vector<Partition> fresh(partitions.size());
  for (std::size_t p = 0; p < partitions.size(); ++p) fresh[p].gates = partitions[p].gates;
  derive_interfaces(netlist, partition_of, fresh);
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    if (fresh[p].boundary_inputs != partitions[p].boundary_inputs) {
      throw ContractError("check_partitions: boundary_inputs mismatch");
    }
    if (fresh[p].outputs != partitions[p].outputs) {
      throw ContractError("check_partitions: outputs mismatch");
    }
    for (int s : partitions[p].boundary_inputs) {
      const int driver = netlist.driver(s);
      if (driver < 0) continue;  // control point
      if (partition_of[static_cast<std::size_t>(driver)] >= static_cast<int>(p)) {
        throw ContractError("check_partitions: boundary input from a later partition");
      }
    }
  }
}

}  // namespace svtox::opt
