// Netlist partitioning for hierarchical optimization at 100k..1M gates.
//
// The flat optimizer's state tree is exponential in the number of
// controllable inputs, so large circuits are cut into clusters with a gate
// budget and each cluster is solved as an independent standby instance:
// its boundary signals become controllable primary inputs (the standard
// relaxation -- the cluster's sleep state is chosen as if the boundary
// were scannable), and a stitch pass afterwards reconciles the boundary
// choices on the real circuit (svc/hier.hpp).
//
// Partitions never mix weakly-connected components, and the canonical
// cluster text (canonical_bench_text) names everything positionally
// (bi*/n*/g*), so two structurally identical clusters -- multiplier rows,
// repeated macros, duplicated cones -- serialize to the same bytes and the
// service layer's content-addressed SolutionCache solves them once.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace svtox::opt {

/// Knobs of the partitioner.
struct PartitionOptions {
  /// Gate budget per partition. Components larger than this are cut into
  /// consecutive topological slices of at most this many gates.
  int max_gates = 2000;
};

/// One cluster of the circuit.
struct Partition {
  /// Member gate ids, a contiguous subsequence of a component's gates in
  /// global topological order (so the list itself is topologically
  /// sorted).
  std::vector<int> gates;
  /// Signals read by member gates but not driven by them (global control
  /// points or other partitions' outputs), ordered by first use scanning
  /// `gates` in order and fanins in pin order. These become the cluster's
  /// controllable primary inputs.
  std::vector<int> boundary_inputs;
  /// Signals driven by member gates and observed outside the partition
  /// (global observe points or fanins of non-member gates), in `gates`
  /// order. These become the cluster's primary outputs.
  std::vector<int> outputs;
};

/// Cuts `netlist` into partitions. Every gate lands in exactly one
/// partition; partitions are ordered so that every boundary input is
/// either a global control point or an output of an *earlier* partition
/// (a topological order over the partition graph).
std::vector<Partition> partition_netlist(const netlist::Netlist& netlist,
                                         const PartitionOptions& options = {});

/// The canonical .bench text of one partition: INPUT lines "bi<j>" in
/// boundary_inputs order, OUTPUT lines for `outputs`, then one gate line
/// per member gate in `gates` order driving "n<k>" (k = position in
/// `gates`). Structure-identical partitions produce byte-identical text
/// regardless of the global names, and reading the text back
/// (netlist::read_bench) yields a netlist whose gate k corresponds to
/// global gate `gates[k]` with the same cell and pin order -- the
/// hierarchical stitcher relies on both properties.
std::string canonical_bench_text(const netlist::Netlist& netlist,
                                 const Partition& partition);

/// Checks the partitioning invariants (every gate exactly once, boundary /
/// output sets consistent, acyclic partition order); throws ContractError
/// on violation. Test/debug helper, O(gates + signals).
void check_partitions(const netlist::Netlist& netlist,
                      const std::vector<Partition>& partitions);

}  // namespace svtox::opt
