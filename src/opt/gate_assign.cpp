#include "opt/gate_assign.hpp"

#include <algorithm>
#include <numeric>

#include "sim/sim.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace svtox::opt {

namespace {

constexpr double kDelaySlackEps = 1e-6;

std::vector<int> gate_visit_order(const AssignmentProblem& problem,
                                  const std::vector<GateContext>& contexts,
                                  GateOrder order) {
  const netlist::Netlist& netlist = problem.netlist();
  std::vector<int> gates(static_cast<std::size_t>(netlist.num_gates()));
  std::iota(gates.begin(), gates.end(), 0);
  switch (order) {
    case GateOrder::kTopological:
      return netlist.topological_order();
    case GateOrder::kReverseTopological: {
      std::vector<int> rev = netlist.topological_order();
      std::reverse(rev.begin(), rev.end());
      return rev;
    }
    case GateOrder::kBySavings: {
      std::vector<double> savings(gates.size());
      for (int g = 0; g < netlist.num_gates(); ++g) {
        const GateContext& ctx = contexts[static_cast<std::size_t>(g)];
        savings[static_cast<std::size_t>(g)] =
            problem.fastest_gate_leak_na(g, ctx.raw_state) -
            problem.min_gate_leak_na(g, ctx.raw_state);
      }
      std::stable_sort(gates.begin(), gates.end(), [&](int a, int b) {
        return savings[static_cast<std::size_t>(a)] > savings[static_cast<std::size_t>(b)];
      });
      return gates;
    }
  }
  return gates;
}

double config_leakage_na(const netlist::Netlist& netlist,
                         const std::vector<GateContext>& contexts,
                         const sim::CircuitConfig& config) {
  double total = 0.0;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    total += netlist.cell_of(g).leakage_na(
        config[static_cast<std::size_t>(g)].variant,
        contexts[static_cast<std::size_t>(g)].canonical_state);
  }
  return total;
}

/// Restores `config` to the all-fastest starting point (mappings kept) so
/// reusable buffers are ready for the next leaf.
void reset_to_fastest(const netlist::Netlist& netlist, sim::CircuitConfig& config) {
  for (int g = 0; g < netlist.num_gates(); ++g) {
    config[static_cast<std::size_t>(g)].variant = netlist.cell_of(g).fastest_variant();
  }
}

}  // namespace

std::vector<GateContext> build_contexts(const AssignmentProblem& problem,
                                        const std::vector<bool>& sleep_vector) {
  const netlist::Netlist& netlist = problem.netlist();
  const std::vector<bool> values = sim::simulate(netlist, sleep_vector);
  std::vector<GateContext> contexts(static_cast<std::size_t>(netlist.num_gates()));
  for (int g = 0; g < netlist.num_gates(); ++g) {
    GateContext& ctx = contexts[static_cast<std::size_t>(g)];
    ctx.raw_state = sim::local_state(netlist, values, g);
    if (problem.use_pin_reorder()) {
      ctx.mapping = problem.pin_mapping(g, ctx.raw_state);
      ctx.canonical_state = ctx.mapping.canonical_state;
    } else {
      // Ablation: keep wiring; menus and leakage use the raw state.
      ctx.canonical_state = ctx.raw_state;
    }
  }
  return contexts;
}

sim::CircuitConfig initial_config(const netlist::Netlist& netlist,
                                  const std::vector<GateContext>& contexts) {
  sim::CircuitConfig config(static_cast<std::size_t>(netlist.num_gates()));
  for (int g = 0; g < netlist.num_gates(); ++g) {
    config[static_cast<std::size_t>(g)].variant = netlist.cell_of(g).fastest_variant();
    // Pin reordering is applied from the start; it is timing- and
    // leakage-neutral for the fastest version (symmetric pins) and makes
    // every later swap see its canonical state.
    config[static_cast<std::size_t>(g)].mapping = contexts[static_cast<std::size_t>(g)].mapping;
  }
  return config;
}

Solution assign_gates_greedy(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector, GateOrder order,
                             const std::vector<GateContext>& contexts,
                             sim::CircuitConfig& config, sta::TimingState& timing,
                             const sta::TimingSnapshot& baseline,
                             const std::vector<double>* downstream_lb_ps) {
  Timer timer;
  const netlist::Netlist& netlist = problem.netlist();
  const double ceiling = problem.constraint_ps() + kDelaySlackEps;
  timing.restore(baseline);
  double delay = timing.circuit_delay_ps();

  sta::TimingUndo undo;  // hoisted: one allocation serves every trial
  for (int g : gate_visit_order(problem, contexts, order)) {
    const GateContext& ctx = contexts[static_cast<std::size_t>(g)];
    const VariantMenu& menu = problem.menu(g, ctx.canonical_state);
    const int fastest = netlist.cell_of(g).fastest_variant();
    // Ascending leakage: the first delay-feasible variant wins.
    for (int v : menu.by_leakage) {
      if (v == fastest) break;  // current selection; nothing left to gain
      config[static_cast<std::size_t>(g)].variant = v;
      undo.entries.clear();
      const double new_delay =
          downstream_lb_ps == nullptr
              ? timing.update_after_gate_change(config, g, &undo)
              : timing.update_after_gate_change_bounded(config, g, *downstream_lb_ps,
                                                        ceiling, &undo);
      if (new_delay <= ceiling) {
        delay = new_delay;
        break;
      }
      timing.revert(undo);
      config[static_cast<std::size_t>(g)].variant = fastest;
    }
  }

  Solution solution;
  solution.sleep_vector = sleep_vector;
  solution.config = config;
  solution.leakage_na = config_leakage_na(netlist, contexts, solution.config);
  solution.delay_ps = delay;
  solution.states_explored = 1;
  solution.runtime_s = timer.seconds();
  reset_to_fastest(netlist, config);
  return solution;
}

Solution assign_gates_greedy(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector, GateOrder order) {
  Timer timer;
  const std::vector<GateContext> contexts = build_contexts(problem, sleep_vector);
  sim::CircuitConfig config = initial_config(problem.netlist(), contexts);
  sta::TimingState timing(problem.netlist());
  timing.set_boundary(problem.boundary());
  timing.analyze(config);
  sta::TimingSnapshot baseline;
  timing.snapshot(baseline);
  Solution solution =
      assign_gates_greedy(problem, sleep_vector, order, contexts, config, timing, baseline);
  solution.runtime_s = timer.seconds();
  return solution;
}

namespace {

/// Depth-first exact search state.
struct ExactSearch {
  const AssignmentProblem* problem;
  const netlist::Netlist* netlist;
  const std::vector<GateContext>* contexts;
  const std::vector<int>* order;
  std::vector<double> suffix_min;  ///< Optimistic leakage of gates order[i..).
  sim::CircuitConfig* config;
  sta::TimingState* timing;
  const std::vector<double>* down_lb = nullptr;  ///< Optional abort bounds.
  double partial_leak = 0.0;
  Solution best;
  std::uint64_t nodes = 0;
  std::uint64_t max_nodes = 0;
  bool aborted = false;

  void dfs(std::size_t depth) {
    if (aborted) return;
    if (max_nodes != 0 && ++nodes > max_nodes) {
      aborted = true;
      return;
    }
    if (depth == order->size()) {
      if (partial_leak < best.leakage_na) {
        best.config = *config;
        best.leakage_na = partial_leak;
        best.delay_ps = timing->circuit_delay_ps();
      }
      return;
    }
    const int g = (*order)[depth];
    const GateContext& ctx = (*contexts)[static_cast<std::size_t>(g)];
    const VariantMenu& menu = problem->menu(g, ctx.canonical_state);
    const int fastest = netlist->cell_of(g).fastest_variant();

    for (int v : menu.by_leakage) {
      const double leak = netlist->cell_of(g).leakage_na(v, ctx.canonical_state);
      // Edges are sorted ascending: once the optimistic completion cannot
      // beat the incumbent, no later edge can either.
      if (partial_leak + leak + suffix_min[depth + 1] >= best.leakage_na - 1e-12) break;

      (*config)[static_cast<std::size_t>(g)].variant = v;
      sta::TimingUndo undo;
      const double ceiling = problem->constraint_ps() + kDelaySlackEps;
      const double d =
          down_lb == nullptr
              ? timing->update_after_gate_change(*config, g, &undo)
              : timing->update_after_gate_change_bounded(*config, g, *down_lb,
                                                         ceiling, &undo);
      // Remaining gates sit at their fastest versions, so `d` is the
      // minimum delay of any completion: infeasible => prune this edge (but
      // a later, leakier edge can be faster -- keep scanning).
      if (d <= ceiling) {
        partial_leak += leak;
        dfs(depth + 1);
        partial_leak -= leak;
      }
      timing->revert(undo);
      (*config)[static_cast<std::size_t>(g)].variant = fastest;
      if (aborted) return;
    }
  }
};

}  // namespace

Solution assign_gates_exact(const AssignmentProblem& problem,
                            const std::vector<bool>& sleep_vector,
                            std::uint64_t max_nodes,
                            const std::vector<GateContext>& contexts,
                            sim::CircuitConfig& config, sta::TimingState& timing,
                            const sta::TimingSnapshot& baseline,
                            const std::vector<double>* downstream_lb_ps) {
  Timer timer;
  const netlist::Netlist& netlist = problem.netlist();

  ExactSearch search;
  search.problem = &problem;
  search.netlist = &netlist;
  search.contexts = &contexts;
  const std::vector<int> order = gate_visit_order(problem, contexts, GateOrder::kBySavings);
  search.order = &order;
  search.max_nodes = max_nodes;

  // Optimistic suffix sums for pruning.
  search.suffix_min.assign(order.size() + 1, 0.0);
  for (std::size_t i = order.size(); i-- > 0;) {
    const int g = order[i];
    search.suffix_min[i] =
        search.suffix_min[i + 1] +
        problem.min_gate_leak_na(g, contexts[static_cast<std::size_t>(g)].raw_state);
  }

  // Incumbent: the greedy solution (this is also the paper's observation
  // that the first sorted descent establishes a good lower bound). The
  // greedy leaves `config` reset to all-fastest with the contexts'
  // mappings, which is exactly the DFS's starting configuration.
  search.best =
      assign_gates_greedy(problem, sleep_vector, GateOrder::kBySavings, contexts,
                          config, timing, baseline, downstream_lb_ps);

  search.config = &config;
  search.down_lb = downstream_lb_ps;
  timing.restore(baseline);
  search.timing = &timing;
  search.dfs(0);

  search.best.sleep_vector = sleep_vector;
  search.best.leakage_na = config_leakage_na(netlist, contexts, search.best.config);
  search.best.states_explored = 1;
  search.best.nodes_visited = search.nodes;
  search.best.runtime_s = timer.seconds();
  return search.best;
}

Solution assign_gates_exact(const AssignmentProblem& problem,
                            const std::vector<bool>& sleep_vector,
                            std::uint64_t max_nodes) {
  Timer timer;
  const std::vector<GateContext> contexts = build_contexts(problem, sleep_vector);
  sim::CircuitConfig config = initial_config(problem.netlist(), contexts);
  sta::TimingState timing(problem.netlist());
  timing.set_boundary(problem.boundary());
  timing.analyze(config);
  sta::TimingSnapshot baseline;
  timing.snapshot(baseline);
  Solution solution = assign_gates_exact(problem, sleep_vector, max_nodes, contexts,
                                         config, timing, baseline);
  solution.runtime_s = timer.seconds();
  return solution;
}

Solution evaluate_state_only(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector) {
  Timer timer;
  const netlist::Netlist& netlist = problem.netlist();
  const std::vector<bool> values = sim::simulate(netlist, sleep_vector);

  Solution solution;
  solution.sleep_vector = sleep_vector;
  solution.config = sim::fastest_config(netlist);
  double total = 0.0;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    total += problem.fastest_gate_leak_na(g, sim::local_state(netlist, values, g));
  }
  solution.leakage_na = total;
  solution.delay_ps = problem.budget().fast_delay_ps;
  solution.states_explored = 1;
  solution.runtime_s = timer.seconds();
  return solution;
}

}  // namespace svtox::opt
