// Unknown-state Vt/Tox assignment -- the strawman the paper argues against.
//
// Without a known standby state (paper Sec. 1/3), a transistor may be ON or
// OFF depending on data, so suppressing its leakage requires covering both
// cases and gates must be judged by their *expected* leakage. This module
// implements that flow: per-gate local-state distributions are estimated by
// random simulation, variants are ranked by expected leakage, and the same
// delay-constrained greedy selects versions. Comparing its achieved
// *average* leakage against the state-aware methods quantifies exactly how
// much the known sleep state buys (the paper's central motivation).
#pragma once

#include <cstdint>

#include "opt/gate_assign.hpp"
#include "opt/problem.hpp"
#include "opt/solution.hpp"

namespace svtox::opt {

struct UnknownStateOptions {
  /// Vectors used to estimate per-gate local-state probabilities.
  int probability_vectors = 2048;
  std::uint64_t seed = 2004;
  GateOrder gate_order = GateOrder::kBySavings;
  /// Simulation backend for the probability estimate and the final
  /// Monte-Carlo average; results are identical either way.
  sim::SimBackend backend = sim::default_backend();
};

/// Result of the unknown-state assignment. There is no sleep vector; the
/// figure of merit is the average leakage of `config` over random states.
struct UnknownStateResult {
  sim::CircuitConfig config;
  double expected_leakage_na = 0.0;  ///< Model-side expectation.
  double average_leakage_na = 0.0;   ///< Monte-Carlo average under config.
  double delay_ps = 0.0;
};

UnknownStateResult assign_unknown_state(const AssignmentProblem& problem,
                                        const UnknownStateOptions& options = {});

}  // namespace svtox::opt
