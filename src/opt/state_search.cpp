#include "opt/state_search.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace svtox::opt {

double leakage_lower_bound_na(const AssignmentProblem& problem,
                              const std::vector<sim::Tri>& input_values,
                              BoundKind kind) {
  const netlist::Netlist& netlist = problem.netlist();
  const std::vector<sim::Tri> values = sim::simulate_ternary(netlist, input_values);
  double bound = 0.0;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const std::vector<sim::Tri> pins = sim::local_ternary(netlist, values, g);
    double gate_min = 1e300;
    for (std::uint32_t state : sim::compatible_states(pins)) {
      const double leak = kind == BoundKind::kMinVariant
                              ? problem.min_gate_leak_na(g, state)
                              : problem.fastest_gate_leak_na(g, state);
      gate_min = std::min(gate_min, leak);
    }
    bound += gate_min;
  }
  return bound;
}

namespace {

/// Shared DFS driver for Heu1/Heu2/exact/state-only. Performs the bounded
/// depth-first state-tree search with branch ordering by bound; the leaf
/// evaluator and bound kind differ per mode.
class StateSearch {
 public:
  StateSearch(const AssignmentProblem& problem, const SearchOptions& options,
              BoundKind bound_kind, bool state_only)
      : problem_(problem),
        options_(options),
        bound_kind_(bound_kind),
        state_only_(state_only),
        deadline_(options.time_limit_s) {}

  Solution run() {
    Timer timer;
    const netlist::Netlist& netlist = problem_.netlist();
    best_.leakage_na = 1e300;
    inputs_.assign(static_cast<std::size_t>(netlist.num_control_points()), sim::Tri::kX);
    dfs(0);
    // Probe random vectors after the first descent so the descent result is
    // never displaced by luck when equal, only by strictly better vectors.
    if (options_.random_probes > 0) {
      Rng rng(0x5eedbeefcafe0001ULL);
      for (int probe = 0; probe < options_.random_probes; ++probe) {
        std::vector<bool> vector(static_cast<std::size_t>(netlist.num_control_points()));
        for (std::size_t i = 0; i < vector.size(); ++i) vector[i] = rng.next_bool();
        Solution leaf = state_only_ ? evaluate_state_only(problem_, vector)
                                    : assign_gates_greedy(problem_, vector,
                                                          options_.gate_order);
        ++leaves_;
        if (leaf.leakage_na < best_.leakage_na) best_ = std::move(leaf);
      }
    }
    best_.nodes_visited = nodes_;
    best_.states_explored = leaves_;
    best_.runtime_s = timer.seconds();
    return std::move(best_);
  }

 private:
  bool out_of_budget() const {
    if (options_.max_leaves != 0 && leaves_ >= options_.max_leaves) return true;
    // The very first leaf (Heu1's descent) always completes.
    return leaves_ > 0 && deadline_.expired();
  }

  void evaluate_leaf() {
    ++leaves_;
    std::vector<bool> vector(inputs_.size());
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      vector[i] = inputs_[i] == sim::Tri::kOne;
    }
    Solution leaf;
    if (state_only_) {
      leaf = evaluate_state_only(problem_, vector);
    } else if (options_.exact_leaves) {
      leaf = assign_gates_exact(problem_, vector, options_.max_gate_nodes);
    } else {
      leaf = assign_gates_greedy(problem_, vector, options_.gate_order);
    }
    if (leaf.leakage_na < best_.leakage_na) best_ = std::move(leaf);
  }

  void dfs(std::size_t depth) {
    ++nodes_;
    if (depth == inputs_.size()) {
      evaluate_leaf();
      return;
    }
    if (out_of_budget()) return;

    const int pi = problem_.input_order()[depth];
    // Bound both branches to order (and, beyond the first descent, prune).
    double bounds[2];
    for (int v = 0; v < 2; ++v) {
      inputs_[static_cast<std::size_t>(pi)] = v == 0 ? sim::Tri::kZero : sim::Tri::kOne;
      bounds[v] = leakage_lower_bound_na(problem_, inputs_, bound_kind_);
    }
    const int first = bounds[0] <= bounds[1] ? 0 : 1;
    for (int k = 0; k < 2; ++k) {
      const int v = k == 0 ? first : 1 - first;
      if (leaves_ > 0 && bounds[v] >= best_.leakage_na - 1e-12) continue;  // prune
      if (k == 1 && out_of_budget()) break;
      inputs_[static_cast<std::size_t>(pi)] = v == 0 ? sim::Tri::kZero : sim::Tri::kOne;
      dfs(depth + 1);
      if (options_.max_leaves != 0 && leaves_ >= options_.max_leaves) break;
    }
    inputs_[static_cast<std::size_t>(pi)] = sim::Tri::kX;
  }

  const AssignmentProblem& problem_;
  SearchOptions options_;
  BoundKind bound_kind_;
  bool state_only_;
  Deadline deadline_;
  std::vector<sim::Tri> inputs_;
  Solution best_;
  std::uint64_t nodes_ = 0;
  std::uint64_t leaves_ = 0;
};

}  // namespace

Solution heuristic1(const AssignmentProblem& problem, GateOrder gate_order) {
  SearchOptions options;
  options.max_leaves = 1;
  options.time_limit_s = 0.0;
  options.gate_order = gate_order;
  return StateSearch(problem, options, BoundKind::kMinVariant, /*state_only=*/false).run();
}

Solution heuristic2(const AssignmentProblem& problem, double time_limit_s,
                    GateOrder gate_order) {
  SearchOptions options;
  options.time_limit_s = time_limit_s;
  options.gate_order = gate_order;
  return StateSearch(problem, options, BoundKind::kMinVariant, /*state_only=*/false).run();
}

Solution exact_search(const AssignmentProblem& problem, const SearchOptions& options) {
  SearchOptions exact = options;
  exact.exact_leaves = true;
  exact.time_limit_s = options.time_limit_s > 0 ? options.time_limit_s : 1e9;
  return StateSearch(problem, exact, BoundKind::kMinVariant, /*state_only=*/false).run();
}

Solution state_only_search(const AssignmentProblem& problem, double time_limit_s) {
  SearchOptions options;
  options.time_limit_s = time_limit_s;
  options.random_probes = 256;  // leaf evaluation is a single O(G) simulation
  return StateSearch(problem, options, BoundKind::kFastestVariant, /*state_only=*/true)
      .run();
}

}  // namespace svtox::opt
