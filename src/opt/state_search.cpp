#include "opt/state_search.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "opt/checkpoint.hpp"
#include "opt/leaf_evaluator.hpp"
#include "opt/packed_bound.hpp"
#include "sim/packed.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/threads.hpp"
#include "util/timer.hpp"

namespace svtox::opt {

namespace {

int ceil_log2(std::uint32_t value) {
  int bits = 0;
  while ((1u << bits) < value) ++bits;
  return bits;
}

/// Best-so-far solution shared by every search worker. The leakage is
/// mirrored in an atomic so prune checks never take the lock. Equal-leakage
/// leaves tie-break toward the lexicographically smallest sleep vector, so
/// an exhaustive search returns the same solution regardless of worker
/// count or arrival order.
class Incumbent {
 public:
  Incumbent() { best_.leakage_na = 1e300; }

  double leakage() const { return leakage_.load(std::memory_order_acquire); }

  void offer(Solution&& leaf) {
    std::lock_guard<std::mutex> lock(mu_);
    if (leaf.leakage_na < best_.leakage_na ||
        (leaf.leakage_na == best_.leakage_na &&
         leaf.sleep_vector < best_.sleep_vector)) {
      best_ = std::move(leaf);
      leakage_.store(best_.leakage_na, std::memory_order_release);
    }
  }

  Solution take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(best_);
  }

  /// Copy of the current best (for checkpoint snapshots).
  Solution snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return best_;
  }

 private:
  std::atomic<double> leakage_{1e300};
  mutable std::mutex mu_;
  Solution best_;
};

/// Bookkeeping for periodic SearchCheckpoint writes. Only present (via
/// SearchContext::sink) when SearchOptions::checkpoint_path is set, which
/// also forces a serial search -- so none of these fields need atomics.
struct CheckpointSink {
  std::string path;
  double every_s = 5.0;
  std::uint64_t every_leaves = 64;
  std::uint64_t fingerprint = 0;
  bool tree_done = false;
  std::uint64_t probes_done = 0;
  /// Path (by input_order position) to the most recently evaluated leaf.
  std::vector<bool> leaf_path;
  /// Counter values at the frontier (the last leaf/probe boundary). A
  /// cancelling search keeps counting interior nodes it enters and then
  /// abandons; those nodes are re-explored after a resume, so snapshotting
  /// the live counters would double-count them. The marks advance only at
  /// consistent points, and the checkpoint stores the marks.
  std::uint64_t nodes_mark = 0;
  std::uint64_t leaves_mark = 0;
  /// Wall-clock consumed by earlier (interrupted) runs of this search.
  double base_elapsed_s = 0.0;
  const Timer* run_timer = nullptr;
  Timer since_write;
  std::uint64_t leaves_at_write = 0;
};

/// Everything the DFS workers share: the problem, the budget, and the
/// incumbent. Counters are atomics so the budget checks stay lock-free.
struct SearchContext {
  const AssignmentProblem& problem;
  const SearchOptions& options;
  BoundKind bound_kind;
  bool state_only;
  Deadline deadline;
  Incumbent incumbent;
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<std::uint64_t> leaves{0};
  /// Latched true once any worker observes the external cancel flag.
  std::atomic<bool> interrupted{false};
  /// Non-null only when checkpointing (serial search).
  CheckpointSink* sink = nullptr;

  SearchContext(const AssignmentProblem& p, const SearchOptions& o, BoundKind kind,
                bool only_state, double consumed_s = 0.0)
      : problem(p),
        options(o),
        bound_kind(kind),
        state_only(only_state),
        deadline(consumed_s > 0.0 ? std::max(0.0, o.time_limit_s - consumed_s)
                                  : o.time_limit_s) {}

  /// External cancellation check; latches `interrupted` when observed so
  /// the result can be flagged.
  bool cancelled() {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      interrupted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool out_of_budget() {
    const std::uint64_t done = leaves.load(std::memory_order_relaxed);
    if (options.max_leaves != 0 && done >= options.max_leaves) return true;
    // The very first leaf (Heu1's descent) always completes, so even a
    // cancelled search returns a valid incumbent.
    if (done == 0) return false;
    return deadline.expired() || cancelled();
  }
};

/// Serializes the current frontier + incumbent to the sink's file if the
/// cadence (leaf count or elapsed time since the last write) says so, or
/// unconditionally with `force`. A failed write is a warning, never a
/// search failure -- the search result does not depend on checkpoints.
void maybe_write_checkpoint(SearchContext& ctx, bool force) {
  CheckpointSink* sink = ctx.sink;
  if (sink == nullptr) return;
  const std::uint64_t done = ctx.leaves.load(std::memory_order_relaxed);
  if (!force) {
    const bool by_count = sink->every_leaves != 0 &&
                          done - sink->leaves_at_write >= sink->every_leaves;
    const bool by_time = sink->since_write.seconds() >= sink->every_s;
    if (!by_count && !by_time) return;
  }
  SearchCheckpoint checkpoint;
  checkpoint.fingerprint = sink->fingerprint;
  checkpoint.tree_done = sink->tree_done;
  if (!sink->tree_done) checkpoint.path = sink->leaf_path;
  checkpoint.probes_done = sink->probes_done;
  checkpoint.nodes = sink->nodes_mark;
  checkpoint.leaves = sink->leaves_mark;
  checkpoint.elapsed_s = sink->base_elapsed_s + sink->run_timer->seconds();
  const Solution best = ctx.incumbent.snapshot();
  checkpoint.sleep_vector = best.sleep_vector;
  checkpoint.config = best.config;
  checkpoint.leakage_na = best.leakage_na;
  checkpoint.delay_ps = best.delay_ps;
  try {
    write_checkpoint_file(checkpoint, sink->path);
  } catch (const std::exception& e) {
    log_warn(std::string("checkpoint write failed (continuing): ") + e.what());
  }
  sink->leaves_at_write = done;
  sink->since_write.reset();
}

/// One search worker: owns a private BoundEngine (and hence a private
/// incremental ternary simulator) for interior nodes plus a private
/// LeafEvaluator that amortizes leaf setup (simulation, canonicalization,
/// the all-fastest timing baseline) across every leaf the worker visits.
class DfsWorker {
 public:
  explicit DfsWorker(SearchContext& ctx)
      : ctx_(ctx),
        engine_(ctx.problem, ctx.bound_kind, ctx.options.bound_mode),
        evaluator_(ctx.problem) {}

  BoundEngine& engine() { return engine_; }

  /// Arms checkpoint replay: the next dfs(0) descends `path` (the recorded
  /// branch at every depth, by input_order position) without counting
  /// nodes, pruning, budget checks or re-evaluating the final leaf --
  /// those all happened before the checkpoint and live in the restored
  /// counters/incumbent -- then unwinds into the normal bounded DFS at
  /// each level, continuing exactly where the interrupted run stopped.
  /// The pointee must outlive the dfs call.
  void resume_from(const std::vector<bool>* path) {
    replay_path_ = path;
    replaying_ = true;
  }

  /// Bounded DFS assigning input_order positions [depth, n); positions
  /// before `depth` must already be set through the engine.
  void dfs(std::size_t depth) {
    if (!replaying_) ctx_.nodes.fetch_add(1, std::memory_order_relaxed);
    if (depth == num_control_points()) {
      if (replaying_) {
        // The replayed leaf was evaluated (and counted) pre-checkpoint.
        replaying_ = false;
        return;
      }
      evaluate_leaf();
      return;
    }
    if (!replaying_ && ctx_.out_of_budget()) return;

    const std::vector<bool>& prefix = ctx_.options.subtree_prefix;
    if (depth < prefix.size()) {
      // Pinned by the subtree restriction: take the prescribed branch only
      // -- no sibling, no bound probes, no pruning. A replayed checkpoint
      // of a restricted search recorded the same branch by construction,
      // so replay simply continues through here.
      const int pinned_pi = ctx_.problem.input_order()[depth];
      engine_.set_input(pinned_pi,
                        prefix[depth] ? sim::Tri::kOne : sim::Tri::kZero);
      dfs(depth + 1);
      engine_.undo();
      return;
    }
    if (!ctx_.options.pinned_inputs.empty()) {
      // Pinned to a constant (boundary-aware cone solve): descend the
      // prescribed value only -- no sibling, no bound probe, no pruning --
      // exactly like a subtree restriction, but addressed by control-point
      // index instead of tree depth. A replayed checkpoint of a pinned
      // search recorded this same branch by construction.
      const int pin_pi = ctx_.problem.input_order()[depth];
      const sim::Tri pin =
          ctx_.options.pinned_inputs[static_cast<std::size_t>(pin_pi)];
      if (pin != sim::Tri::kX) {
        engine_.set_input(pin_pi, pin);
        dfs(depth + 1);
        engine_.undo();
        return;
      }
    }

    const int pi = ctx_.problem.input_order()[depth];
    // Bound both branches to order (and, beyond the first leaf, prune).
    double bounds[2];
    for (int v = 0; v < 2; ++v) {
      bounds[v] = engine_.set_input(pi, v == 0 ? sim::Tri::kZero : sim::Tri::kOne);
      engine_.undo();
    }
    const int first = bounds[0] <= bounds[1] ? 0 : 1;
    int start_k = 0;
    if (replaying_) {
      // Descend the recorded branch unconditionally: the interrupted run
      // already decided to take it. A branch ordered before it was either
      // pruned or fully explored back then -- both already reflected in
      // the restored counters and incumbent -- so the continuation starts
      // at the next-ordered branch.
      const int v = (*replay_path_)[depth] ? 1 : 0;
      start_k = v == first ? 0 : 1;
      engine_.set_input(pi, v == 0 ? sim::Tri::kZero : sim::Tri::kOne);
      dfs(depth + 1);
      engine_.undo();
      if (ctx_.options.max_leaves != 0 &&
          ctx_.leaves.load(std::memory_order_relaxed) >= ctx_.options.max_leaves) {
        return;
      }
      ++start_k;
    }
    for (int k = start_k; k < 2; ++k) {
      const int v = k == 0 ? first : 1 - first;
      if (ctx_.leaves.load(std::memory_order_relaxed) > 0 &&
          bounds[v] >= ctx_.incumbent.leakage() - 1e-12) {
        continue;  // prune
      }
      if (k == 1 && ctx_.out_of_budget()) break;
      engine_.set_input(pi, v == 0 ? sim::Tri::kZero : sim::Tri::kOne);
      dfs(depth + 1);
      engine_.undo();
      if (ctx_.options.max_leaves != 0 &&
          ctx_.leaves.load(std::memory_order_relaxed) >= ctx_.options.max_leaves) {
        break;
      }
    }
  }

  /// Heu1's first descent: follow the better-bounded branch straight down
  /// -- never pruned, never budget-limited -- then evaluate one leaf and
  /// unwind. Used to seed the incumbent before the parallel split.
  void descend() {
    const std::size_t n = num_control_points();
    for (std::size_t depth = 0; depth < n; ++depth) {
      ctx_.nodes.fetch_add(1, std::memory_order_relaxed);
      const int pi = ctx_.problem.input_order()[depth];
      if (!ctx_.options.pinned_inputs.empty()) {
        const sim::Tri pin =
            ctx_.options.pinned_inputs[static_cast<std::size_t>(pi)];
        if (pin != sim::Tri::kX) {
          engine_.set_input(pi, pin);
          continue;
        }
      }
      double bounds[2];
      for (int v = 0; v < 2; ++v) {
        bounds[v] = engine_.set_input(pi, v == 0 ? sim::Tri::kZero : sim::Tri::kOne);
        engine_.undo();
      }
      const int best = bounds[0] <= bounds[1] ? 0 : 1;
      engine_.set_input(pi, best == 0 ? sim::Tri::kZero : sim::Tri::kOne);
    }
    ctx_.nodes.fetch_add(1, std::memory_order_relaxed);
    evaluate_leaf();
    for (std::size_t depth = 0; depth < n; ++depth) engine_.undo();
  }

 private:
  std::size_t num_control_points() const {
    return static_cast<std::size_t>(ctx_.problem.netlist().num_control_points());
  }

  void evaluate_leaf() {
    ctx_.leaves.fetch_add(1, std::memory_order_relaxed);
    const std::vector<sim::Tri>& inputs = engine_.input_values();
    std::vector<bool> vector(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      vector[i] = inputs[i] == sim::Tri::kOne;
    }
    Solution leaf;
    if (ctx_.state_only) {
      leaf = evaluator_.evaluate_state_only(vector);
    } else if (ctx_.options.exact_leaves) {
      leaf = evaluator_.evaluate_exact(vector, ctx_.options.max_gate_nodes);
    } else {
      leaf = evaluator_.evaluate_greedy(vector, ctx_.options.gate_order);
    }
    ctx_.incumbent.offer(std::move(leaf));
    if (ctx_.sink != nullptr) {
      // Record the path to this leaf (after the offer, so a snapshot's
      // incumbent is exact at the leaf boundary) and maybe write.
      const std::vector<int>& order = ctx_.problem.input_order();
      ctx_.sink->leaf_path.resize(order.size());
      for (std::size_t d = 0; d < order.size(); ++d) {
        ctx_.sink->leaf_path[d] = vector[static_cast<std::size_t>(order[d])];
      }
      ctx_.sink->nodes_mark = ctx_.nodes.load(std::memory_order_relaxed);
      ctx_.sink->leaves_mark = ctx_.leaves.load(std::memory_order_relaxed);
      maybe_write_checkpoint(ctx_, /*force=*/false);
    }
  }

  SearchContext& ctx_;
  BoundEngine engine_;
  LeafEvaluator evaluator_;
  const std::vector<bool>* replay_path_ = nullptr;
  bool replaying_ = false;
};

/// Parallel root split (SearchOptions::threads > 1): the top
/// ceil(log2(threads)) + 2 levels of the state tree are enumerated as
/// fixed-prefix subtrees that a thread pool drains through a shared
/// atomic work index -- the same partition-then-drain pattern as
/// monte_carlo_leakage_parallel. Oversplitting by 2 levels keeps the pool
/// busy when subtree sizes are skewed by pruning.
void parallel_split(SearchContext& ctx, int threads) {
  const int n = ctx.problem.netlist().num_control_points();
  const int split_levels =
      std::min({n, ceil_log2(static_cast<std::uint32_t>(threads)) + 2, 16});
  const std::uint32_t num_subtrees = 1u << split_levels;

  // Packed prescreen: bound every fixed prefix up front, 64 subtrees per
  // ternary pass. A worker skips a prescreened subtree without paying the
  // per-level incremental-engine descent. Safe: the prescreen bound equals
  // the engine bound bit-for-bit, and the incumbent it is compared against
  // can only have been larger at prescreen-check time than at the engine
  // check -- so everything skipped here would have been pruned anyway.
  std::vector<double> prefix_bounds;
  if (ctx.options.sim_backend == sim::SimBackend::kPacked) {
    prefix_bounds =
        packed_prefix_bounds(ctx.problem, ctx.bound_kind, split_levels, num_subtrees);
  }

  std::atomic<std::uint32_t> next{0};
  auto drain = [&ctx, &next, &prefix_bounds, split_levels, num_subtrees] {
    DfsWorker worker(ctx);
    for (;;) {
      const std::uint32_t subtree = next.fetch_add(1, std::memory_order_relaxed);
      if (subtree >= num_subtrees) return;
      if (ctx.out_of_budget()) return;
      if (!prefix_bounds.empty() &&
          prefix_bounds[subtree] >= ctx.incumbent.leakage() - 1e-12) {
        continue;
      }
      double bound = 0.0;
      for (int level = 0; level < split_levels; ++level) {
        bound = worker.engine().set_input(
            ctx.problem.input_order()[level],
            ((subtree >> level) & 1u) != 0 ? sim::Tri::kOne : sim::Tri::kZero);
      }
      if (bound < ctx.incumbent.leakage() - 1e-12) {
        worker.dfs(static_cast<std::size_t>(split_levels));
      }
      for (int level = 0; level < split_levels; ++level) worker.engine().undo();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
}

/// Word-parallel state-only probe sweep: 64 probes per PackedBoolSim pass,
/// per-lane leakage totals accumulated gate-by-gate with scatter-adds (the
/// exact FP sequence of evaluate_state_only's per-gate sum, so each lane's
/// total is bit-identical to the scalar probe evaluation). Each batch
/// offers only its best lane under the incumbent's total order (leakage,
/// then lexicographic sleep vector) -- equivalent to offering every lane,
/// since Incumbent::offer computes a global minimum under that same order.
/// Batches are drained through an atomic index like the scalar sweep.
void packed_probe_sweep(SearchContext& ctx, const std::vector<std::vector<bool>>& probes,
                        int threads) {
  const AssignmentProblem& problem = ctx.problem;
  const netlist::Netlist& netlist = problem.netlist();
  const int num_cps = netlist.num_control_points();
  const int num_gates = netlist.num_gates();

  // Per-cell fastest-variant leakage indexed by raw local state (the
  // per-gate term of evaluate_state_only's sum).
  std::vector<std::vector<double>> by_cell(netlist.library().cells().size());
  for (int g = 0; g < num_gates; ++g) {
    const auto cell = static_cast<std::size_t>(netlist.gate(g).cell_index);
    if (!by_cell[cell].empty()) continue;
    const std::uint32_t num_states = netlist.cell_of(g).topology().num_states();
    by_cell[cell].reserve(num_states);
    for (std::uint32_t s = 0; s < num_states; ++s) {
      by_cell[cell].push_back(problem.fastest_gate_leak_na(g, s));
    }
  }
  const sim::CircuitConfig config = sim::fastest_config(netlist);
  const std::size_t num_batches = (probes.size() + 63) / 64;

  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    if (ctx.deadline.expired() || ctx.cancelled()) return;
    sim::PackedBoolSim packed(netlist);
    std::vector<std::uint64_t> pi_words(static_cast<std::size_t>(num_cps));
    alignas(32) double totals[64];
    for (;;) {
      const std::size_t batch = next.fetch_add(1, std::memory_order_relaxed);
      if (batch >= num_batches || ctx.deadline.expired() || ctx.cancelled()) return;
      const std::size_t base = batch * 64;
      const int lanes = static_cast<int>(std::min<std::size_t>(64, probes.size() - base));
      for (int i = 0; i < num_cps; ++i) {
        std::uint64_t word = 0;
        for (int lane = 0; lane < lanes; ++lane) {
          if (probes[base + static_cast<std::size_t>(lane)][static_cast<std::size_t>(i)]) {
            word |= 1ULL << lane;
          }
        }
        pi_words[static_cast<std::size_t>(i)] = word;
      }
      const std::vector<std::uint64_t>& words = packed.run(pi_words);
      std::fill(totals, totals + 64, 0.0);
      const std::uint64_t mask = sim::tail_mask(lanes);
      for (int g = 0; g < num_gates; ++g) {
        const double* leak =
            by_cell[static_cast<std::size_t>(netlist.gate(g).cell_index)].data();
        sim::for_each_state_match(netlist, g, words, mask,
                                  [&](std::uint32_t state, std::uint64_t match) {
                                    simd::scatter_add(totals, match, leak[state]);
                                  });
      }
      int best = 0;
      for (int lane = 1; lane < lanes; ++lane) {
        if (totals[lane] < totals[best] ||
            (totals[lane] == totals[best] &&
             probes[base + static_cast<std::size_t>(lane)] <
                 probes[base + static_cast<std::size_t>(best)])) {
          best = lane;
        }
      }
      ctx.leaves.fetch_add(static_cast<std::uint64_t>(lanes), std::memory_order_relaxed);
      Solution leaf;
      leaf.sleep_vector = probes[base + static_cast<std::size_t>(best)];
      leaf.config = config;
      leaf.leakage_na = totals[best];
      leaf.delay_ps = problem.budget().fast_delay_ps;
      leaf.states_explored = 1;
      ctx.incumbent.offer(std::move(leaf));
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
}

/// Shared driver for Heu1/Heu2/exact/state-only: bounded DFS (serial or
/// root-split parallel) followed by the optional random-probe sweep.
/// With `SearchOptions::checkpoint_path` set the search is serial, resumes
/// from a matching checkpoint if one exists, snapshots periodically, and
/// on a clean finish deletes the checkpoint file.
Solution run_search(const AssignmentProblem& problem, const SearchOptions& caller_options,
                    BoundKind bound_kind, bool state_only) {
  SearchOptions options = caller_options;
  const bool checkpointing = !options.checkpoint_path.empty();
  const int n = problem.netlist().num_control_points();

  if (!options.subtree_prefix.empty()) {
    if (options.subtree_prefix.size() > static_cast<std::size_t>(n)) {
      throw ContractError("subtree_prefix longer than the input count");
    }
    // A subtree is one shard of a deterministic split: serial, and no
    // probe sweep -- the sweep is a whole-tree construct the coordinator
    // runs once; per-shard it would be duplicated work. Must happen
    // before the fingerprint below so coordinator-computed fingerprints
    // (which apply the same overrides) match.
    options.threads = 1;
    options.random_probes = 0;
  }
  if (!options.pinned_inputs.empty()) {
    if (options.pinned_inputs.size() != static_cast<std::size_t>(n)) {
      throw ContractError("pinned_inputs needs one entry per control point");
    }
    if (!options.subtree_prefix.empty()) {
      throw ContractError("pinned_inputs and subtree_prefix are mutually exclusive");
    }
    // Pins shrink the tree to the free inputs. The parallel root split and
    // its packed prescreen enumerate raw top-level prefixes and would flip
    // pinned values, so a pinned search runs serial -- the hierarchical
    // flow parallelizes across cones, not within one.
    options.threads = 1;
  }

  CheckpointSink sink;
  std::optional<SearchCheckpoint> resume;
  if (checkpointing) {
    if (resolve_thread_count(options.threads, 64) > 1) {
      log_warn("checkpointing forces a serial state search (threads 1)");
    }
    options.threads = 1;
  }
  // Checkpoint replay is a serial construct too.
  if (!options.resume_text.empty()) options.threads = 1;
  if (checkpointing || !options.resume_text.empty()) {
    sink.fingerprint = search_fingerprint(problem, options, bound_kind, state_only);
    std::optional<SearchCheckpoint> from_file;
    if (checkpointing) {
      sink.path = options.checkpoint_path;
      sink.every_s = options.checkpoint_every_s;
      sink.every_leaves = options.checkpoint_every_leaves;
      from_file = load_checkpoint_file(options.checkpoint_path, sink.fingerprint);
    }
    std::optional<SearchCheckpoint> from_text;
    if (!options.resume_text.empty()) {
      try {
        SearchCheckpoint blob = parse_checkpoint(options.resume_text);
        if (blob.fingerprint == sink.fingerprint) {
          from_text = std::move(blob);
        } else {
          log_warn("in-memory resume blob is for a different search; ignoring");
        }
      } catch (const std::exception& e) {
        log_warn(std::string("in-memory resume blob unusable (") + e.what() +
                 "); ignoring");
      }
    }
    // Resuming from any valid snapshot of the same search converges to the
    // identical result, so when both sources are usable the one with more
    // progress wins (a finished tree outranks any unfinished one; then
    // leaf/probe count) -- a speed choice, not a semantic one.
    const auto progress = [](const SearchCheckpoint& c) {
      return (c.tree_done ? 1ULL << 62 : 0ULL) + c.leaves + c.probes_done;
    };
    if (from_text && from_file) {
      resume = progress(*from_file) > progress(*from_text)
                   ? std::move(from_file)
                   : std::move(from_text);
    } else {
      resume = from_text ? std::move(from_text) : std::move(from_file);
    }
    // An empty path with an unfinished tree is a seed token (incumbent +
    // counters, no frontier yet): start from the root, do not replay.
    if (resume && !resume->tree_done && !resume->path.empty() &&
        resume->path.size() != static_cast<std::size_t>(n)) {
      log_warn("checkpoint path length mismatch; starting fresh");
      resume.reset();
    }
  }

  Timer timer;
  const double consumed_s = resume ? resume->elapsed_s : 0.0;
  SearchContext ctx(problem, options, bound_kind, state_only, consumed_s);
  if (resume) {
    ctx.nodes.store(resume->nodes, std::memory_order_relaxed);
    ctx.leaves.store(resume->leaves, std::memory_order_relaxed);
    Solution seed;
    seed.sleep_vector = resume->sleep_vector;
    seed.config = resume->config;
    seed.leakage_na = resume->leakage_na;
    seed.delay_ps = resume->delay_ps;
    ctx.incumbent.offer(std::move(seed));
    sink.tree_done = resume->tree_done;
    sink.probes_done = resume->probes_done;
    // Seed the last-leaf path and counter marks too, so an interrupt
    // before any new leaf re-snapshots the same frontier instead of an
    // empty one.
    sink.leaf_path = resume->path;
    sink.nodes_mark = resume->nodes;
    sink.leaves_mark = resume->leaves;
    log_info("resuming search from " +
             (options.checkpoint_path.empty() ? std::string("in-memory blob")
                                              : options.checkpoint_path) +
             " (" + std::to_string(resume->leaves) + " leaves done)");
  }
  if (checkpointing) {
    sink.base_elapsed_s = consumed_s;
    sink.run_timer = &timer;
    ctx.sink = &sink;
  }

  // The root split needs an uncapped leaf budget (a shared cap would make
  // the visited set depend on worker timing) and at least one level to
  // split on.
  const int threads = resolve_thread_count(options.threads, 64);
  const bool skip_tree = resume && resume->tree_done;
  if (!skip_tree) {
    if (threads > 1 && options.max_leaves == 0 && n >= 2) {
      // Phase 1 -- Heu1's serial descent seeds the shared incumbent, so the
      // parallel continued search keeps the serial guarantees: the first
      // leaf always completes and the result is never worse than Heu1.
      {
        DfsWorker seeder(ctx);
        seeder.descend();
      }
      parallel_split(ctx, threads);
    } else {
      DfsWorker worker(ctx);
      if (resume && !resume->path.empty()) worker.resume_from(&resume->path);
      worker.dfs(0);
    }
    // A cancelled tree is unfinished; anything else (completion, leaf cap,
    // deadline) moves the checkpoint frontier into the probe phase. The
    // finished tree's counters are deterministic, so they become the marks.
    if (!ctx.interrupted.load(std::memory_order_relaxed)) {
      sink.tree_done = true;
      sink.nodes_mark = ctx.nodes.load(std::memory_order_relaxed);
      sink.leaves_mark = ctx.leaves.load(std::memory_order_relaxed);
    }
  }

  // Probe random vectors after the tree search so the descent result is
  // only displaced by better (or equal-but-lexicographically-smaller)
  // vectors, never by probe luck. The whole probe set is pregenerated from
  // one serial Rng stream (the historical stream, so the vectors do not
  // depend on the worker count) and drained through an atomic index --
  // the same partition-then-drain pattern as the root split. Each worker
  // owns one LeafEvaluator, so per-probe cost is cone-local. Probes honor
  // the time limit -- none start once the deadline has passed (the tree
  // search above always completes its first leaf regardless) -- but not
  // `max_leaves`, which caps only the tree search, as it always has.
  if (options.random_probes > 0 && !ctx.deadline.expired() && !ctx.cancelled() &&
      sink.probes_done < static_cast<std::uint64_t>(options.random_probes)) {
    Rng rng(options.probe_seed);
    std::vector<std::vector<bool>> probes(
        static_cast<std::size_t>(options.random_probes));
    for (std::vector<bool>& vector : probes) {
      vector.resize(static_cast<std::size_t>(n));
      for (std::size_t i = 0; i < vector.size(); ++i) vector[i] = rng.next_bool();
      // Pinned bits are overwritten after generation so the Rng stream --
      // and hence every free bit -- matches the unpinned sweep's.
      for (std::size_t i = 0; i < options.pinned_inputs.size(); ++i) {
        const sim::Tri pin = options.pinned_inputs[i];
        if (pin != sim::Tri::kX) vector[i] = pin == sim::Tri::kOne;
      }
    }
    if (checkpointing) {
      // Serial indexed sweep so the frontier is a single resume index;
      // probes [0, probes_done) were evaluated before the interruption.
      LeafEvaluator evaluator(ctx.problem);
      for (std::size_t p = static_cast<std::size_t>(sink.probes_done);
           p < probes.size(); ++p) {
        if (ctx.deadline.expired() || ctx.cancelled()) break;
        Solution leaf =
            state_only ? evaluator.evaluate_state_only(probes[p])
                       : evaluator.evaluate_greedy(probes[p], options.gate_order);
        ctx.leaves.fetch_add(1, std::memory_order_relaxed);
        ctx.incumbent.offer(std::move(leaf));
        sink.probes_done = p + 1;
        sink.leaves_mark = ctx.leaves.load(std::memory_order_relaxed);
        maybe_write_checkpoint(ctx, /*force=*/false);
      }
    } else if (state_only && options.sim_backend == sim::SimBackend::kPacked) {
      // State-only probes are pure simulations, so they batch 64-wide;
      // greedy-mode probes run a full gate assignment each and stay scalar.
      packed_probe_sweep(
          ctx, probes,
          resolve_thread_count(options.threads,
                               static_cast<int>((probes.size() + 63) / 64)));
    } else {
      std::atomic<std::uint32_t> next{0};
      auto drain = [&ctx, &probes, &next, state_only] {
        // Skip the evaluator setup entirely when already out of time.
        if (ctx.deadline.expired() || ctx.cancelled()) return;
        LeafEvaluator evaluator(ctx.problem);
        for (;;) {
          const std::uint32_t p = next.fetch_add(1, std::memory_order_relaxed);
          if (p >= probes.size() || ctx.deadline.expired() || ctx.cancelled()) return;
          Solution leaf =
              state_only ? evaluator.evaluate_state_only(probes[p])
                         : evaluator.evaluate_greedy(probes[p], ctx.options.gate_order);
          ctx.leaves.fetch_add(1, std::memory_order_relaxed);
          ctx.incumbent.offer(std::move(leaf));
        }
      };
      const int probe_threads =
          resolve_thread_count(options.threads, options.random_probes);
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(probe_threads - 1));
      for (int t = 1; t < probe_threads; ++t) pool.emplace_back(drain);
      drain();
      for (std::thread& t : pool) t.join();
    }
  }

  const bool interrupted = ctx.interrupted.load(std::memory_order_relaxed);
  if (checkpointing) {
    if (interrupted) {
      // Final snapshot so the very last pre-interrupt work is never lost.
      // Must happen before take() empties the shared incumbent below.
      maybe_write_checkpoint(ctx, /*force=*/true);
    } else {
      std::remove(options.checkpoint_path.c_str());  // clean finish
    }
  }
  Solution best = ctx.incumbent.take();
  best.nodes_visited = ctx.nodes.load(std::memory_order_relaxed);
  best.states_explored = ctx.leaves.load(std::memory_order_relaxed);
  best.runtime_s = consumed_s + timer.seconds();
  best.interrupted = interrupted;
  return best;
}

}  // namespace

Solution heuristic1(const AssignmentProblem& problem, GateOrder gate_order) {
  SearchOptions options;
  options.gate_order = gate_order;
  return heuristic1(problem, options);
}

Solution heuristic1(const AssignmentProblem& problem, const SearchOptions& options) {
  SearchOptions heu1 = options;
  heu1.max_leaves = 1;
  heu1.time_limit_s = 0.0;
  heu1.exact_leaves = false;
  heu1.random_probes = 0;
  return run_search(problem, heu1, BoundKind::kMinVariant, /*state_only=*/false);
}

Solution heuristic2(const AssignmentProblem& problem, double time_limit_s,
                    GateOrder gate_order) {
  SearchOptions options;
  options.time_limit_s = time_limit_s;
  options.gate_order = gate_order;
  return heuristic2(problem, options);
}

Solution heuristic2(const AssignmentProblem& problem, const SearchOptions& options) {
  SearchOptions heu2 = options;
  heu2.exact_leaves = false;
  return run_search(problem, heu2, BoundKind::kMinVariant, /*state_only=*/false);
}

Solution exact_search(const AssignmentProblem& problem, const SearchOptions& options) {
  SearchOptions exact = options;
  exact.exact_leaves = true;
  exact.time_limit_s = options.time_limit_s > 0 ? options.time_limit_s : 1e9;
  return run_search(problem, exact, BoundKind::kMinVariant, /*state_only=*/false);
}

Solution state_only_search(const AssignmentProblem& problem, double time_limit_s) {
  SearchOptions options;
  options.time_limit_s = time_limit_s;
  options.random_probes = 256;  // leaf evaluation is a single O(G) simulation
  return state_only_search(problem, options);
}

Solution state_only_search(const AssignmentProblem& problem,
                           const SearchOptions& options) {
  return run_search(problem, options, BoundKind::kFastestVariant, /*state_only=*/true);
}

}  // namespace svtox::opt
