// Shared context of one optimization run: the delay constraint and
// per-gate lookup caches derived from the library.
#pragma once

#include <cstdint>
#include <vector>

#include "cellkit/state.hpp"
#include "netlist/netlist.hpp"
#include "sta/sta.hpp"

namespace svtox::opt {

/// Per-gate, per-canonical-state variant menu, sorted by leakage.
struct VariantMenu {
  /// Variant indices applicable at this canonical state, ascending by
  /// leakage at that state (the paper's pre-sorted gate-tree edges).
  std::vector<int> by_leakage;
};

/// Knobs beyond the delay penalty; defaults reproduce the paper's method.
struct ProblemOptions {
  /// Combined pin reordering (paper Sec. 3, Fig. 2(d)/(e)). When disabled
  /// -- an ablation of one of the paper's ingredients -- gates keep their
  /// wired pin order, variants are evaluated at the raw local state, and
  /// every library version is on the menu (sorted by leakage at that raw
  /// state).
  bool use_pin_reorder = true;
  /// Measured upstream arrival/slew at every control point (empty =
  /// defaults). The hierarchical flow sets this on cone problems so the
  /// delay budget and every leaf's timing see the arrivals the cone's
  /// boundary inputs have in the enclosing circuit, instead of the
  /// zero-arrival relaxation the global verify would then have to repair.
  sta::BoundaryTiming boundary;
};

/// Immutable problem description + caches. Construct once per (netlist,
/// penalty) pair and share across heuristics.
class AssignmentProblem {
 public:
  /// `penalty_fraction` in [0, 1]: 0.05 is the paper's 5% column.
  AssignmentProblem(const netlist::Netlist& netlist, double penalty_fraction,
                    const ProblemOptions& options = {});

  const netlist::Netlist& netlist() const { return *netlist_; }
  const sta::DelayBudget& budget() const { return budget_; }
  double constraint_ps() const { return constraint_ps_; }
  double penalty_fraction() const { return penalty_; }
  bool use_pin_reorder() const { return options_.use_pin_reorder; }
  /// The boundary seeds this problem was built with (empty = defaults).
  /// Evaluators constructing their own TimingState must apply these so
  /// every delay they measure is consistent with the budget above.
  const sta::BoundaryTiming& boundary() const { return options_.boundary; }

  /// The sorted variant menu for `gate`. With pin reordering (default) the
  /// state must be *canonical*; with reordering disabled it is the raw
  /// local state and every state has a menu.
  const VariantMenu& menu(int gate, std::uint32_t canonical_state) const;

  /// Memoized `cellkit::canonicalize` of `gate`'s cell at a raw local
  /// state. Libraries are tiny (states <= 2^k per cell), so every mapping
  /// is precomputed once here and no leaf evaluation ever canonicalizes in
  /// its hot loop. Only valid with pin reordering enabled.
  const cellkit::PinMapping& pin_mapping(int gate, std::uint32_t raw_state) const;

  /// Lower bound on `gate`'s leakage at a raw local state: the minimum over
  /// its menu at the canonicalized state, ignoring delay (admissible).
  double min_gate_leak_na(int gate, std::uint32_t raw_state) const;

  /// Leakage of `gate`'s fastest version at a raw local state, with no pin
  /// reordering (the state-only baseline's per-gate cost).
  double fastest_gate_leak_na(int gate, std::uint32_t raw_state) const;

  /// Lower bound on `gate`'s leakage over a set of compatible raw states.
  double min_gate_leak_over_na(int gate,
                               const std::vector<std::uint32_t>& raw_states) const;

  /// Primary inputs ordered for the state tree: descending transitive
  /// fanout (influential inputs first), which makes early branching
  /// decisions matter most (paper Sec. 5's branch ordering).
  const std::vector<int>& input_order() const { return input_order_; }

  /// Load-sliced NLDM tables of the netlist, built once here and shared
  /// (read-only) by every amortized leaf evaluator: attached to a
  /// TimingState they make incremental re-timing skip the 2-D lookups with
  /// bit-identical results (sta::LoadSlicedTables).
  const sta::LoadSlicedTables& load_slices() const { return load_slices_; }

 private:
  const netlist::Netlist* netlist_;
  const netlist::FlatNetlist* flat_;  ///< Hot per-gate lookups read this.
  sta::DelayBudget budget_;
  double constraint_ps_;
  double penalty_;
  ProblemOptions options_;

  // Caches are per library cell (shared by every gate of that cell).
  struct CellCache {
    // menus[state] is only populated for canonical states.
    std::vector<VariantMenu> menus;
    std::vector<double> min_leak_by_raw_state;
    std::vector<double> fastest_leak_by_raw_state;
    // Indexed by raw state; only populated with pin reordering enabled.
    std::vector<cellkit::PinMapping> mapping_by_raw_state;
  };
  std::vector<CellCache> cell_cache_;  ///< Indexed by library cell index.
  std::vector<int> input_order_;
  sta::LoadSlicedTables load_slices_;
};

}  // namespace svtox::opt
