// Gate-tree search: per-gate cell-version selection for a fixed sleep
// vector, under the circuit delay constraint.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/problem.hpp"
#include "opt/solution.hpp"

namespace svtox::opt {

/// Order in which the greedy traversal visits gates.
enum class GateOrder : std::uint8_t {
  kBySavings,     ///< Descending potential leakage savings (default).
  kTopological,   ///< Netlist topological order.
  kReverseTopological,
};

/// The paper's single downward gate-tree traversal: gates are visited once;
/// at each gate the variants applicable to its (canonicalized) local state
/// are tried in ascending leakage order and the first one that keeps the
/// circuit delay within the constraint is kept. Delay feasibility is checked
/// with incremental STA (accepting a variant never revisits earlier gates).
///
/// Returns the full Solution for `sleep_vector` (config, leakage, delay).
Solution assign_gates_greedy(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector,
                             GateOrder order = GateOrder::kBySavings);

/// Exact gate-tree branch-and-bound for a fixed sleep vector: explores
/// variant choices depth-first with edges sorted by leakage, pruning on
/// (partial leakage + optimistic remainder) against the incumbent and on
/// delay infeasibility of the fastest completion. Exponential; intended for
/// small circuits and for validating the greedy. `max_nodes` caps the
/// search (0 = unlimited).
Solution assign_gates_exact(const AssignmentProblem& problem,
                            const std::vector<bool>& sleep_vector,
                            std::uint64_t max_nodes = 0);

/// No-assignment evaluation: every gate at its fastest version; reports the
/// leakage of `sleep_vector` alone (the state-only baseline's leaf).
Solution evaluate_state_only(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector);

}  // namespace svtox::opt
