// Gate-tree search: per-gate cell-version selection for a fixed sleep
// vector, under the circuit delay constraint.
//
// Each search comes in two forms: a from-scratch convenience function
// (builds its contexts, timing state and starting configuration per call)
// and an overload over caller-owned reusable state. The overloads exist so
// a state-search worker (opt::LeafEvaluator) can amortize the
// leaf-invariant setup -- full 2-valued simulation, canonicalization, a
// heap-allocated TimingState and the all-fastest analyze() -- across the
// thousands of leaves it visits; both forms return bit-identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/problem.hpp"
#include "opt/solution.hpp"
#include "sta/sta.hpp"

namespace svtox::opt {

/// Order in which the greedy traversal visits gates.
enum class GateOrder : std::uint8_t {
  kBySavings,     ///< Descending potential leakage savings (default).
  kTopological,   ///< Netlist topological order.
  kReverseTopological,
};

/// Per-gate context shared by the gate-tree searches: the simulated local
/// input state under the sleep vector plus its canonicalization (identity
/// when the problem disables pin reordering).
struct GateContext {
  std::uint32_t raw_state = 0;
  std::uint32_t canonical_state = 0;
  cellkit::PinMapping mapping;
};

/// Contexts of every gate under `sleep_vector`: from-scratch 2-valued
/// simulation plus the problem's memoized canonicalization.
std::vector<GateContext> build_contexts(const AssignmentProblem& problem,
                                        const std::vector<bool>& sleep_vector);

/// Every gate at its fastest variant with the contexts' pin mappings --
/// the gate-tree searches' starting configuration.
sim::CircuitConfig initial_config(const netlist::Netlist& netlist,
                                  const std::vector<GateContext>& contexts);

/// The paper's single downward gate-tree traversal: gates are visited once;
/// at each gate the variants applicable to its (canonicalized) local state
/// are tried in ascending leakage order and the first one that keeps the
/// circuit delay within the constraint is kept. Delay feasibility is checked
/// with incremental STA (accepting a variant never revisits earlier gates).
///
/// Returns the full Solution for `sleep_vector` (config, leakage, delay).
Solution assign_gates_greedy(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector,
                             GateOrder order = GateOrder::kBySavings);

/// Greedy gate-tree search over caller-owned reusable state. Preconditions:
/// `contexts` matches `sleep_vector`, `config` is all-fastest variants with
/// the contexts' mappings, and `baseline` snapshots the timing of that
/// configuration. `timing` is clobbered (restored from `baseline` on
/// entry); `config`'s variants are reset to fastest before returning so the
/// buffers are immediately reusable. Bit-identical to the from-scratch
/// overload.
///
/// `downstream_lb_ps` (optional) is sta::downstream_delay_lower_bounds_ps
/// of the problem's netlist: with it, infeasible variant trials abort their
/// timing propagation as soon as the delay constraint is provably exceeded
/// (sta::update_after_gate_change_bounded) instead of re-timing the whole
/// fanout cone. The accept/reject decisions and every returned value stay
/// bit-identical; only rejected trials get cheaper.
Solution assign_gates_greedy(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector, GateOrder order,
                             const std::vector<GateContext>& contexts,
                             sim::CircuitConfig& config, sta::TimingState& timing,
                             const sta::TimingSnapshot& baseline,
                             const std::vector<double>* downstream_lb_ps = nullptr);

/// Exact gate-tree branch-and-bound for a fixed sleep vector: explores
/// variant choices depth-first with edges sorted by leakage, pruning on
/// (partial leakage + optimistic remainder) against the incumbent and on
/// delay infeasibility of the fastest completion. Exponential; intended for
/// small circuits and for validating the greedy. `max_nodes` caps the
/// search (0 = unlimited).
Solution assign_gates_exact(const AssignmentProblem& problem,
                            const std::vector<bool>& sleep_vector,
                            std::uint64_t max_nodes = 0);

/// Exact gate-tree search over caller-owned reusable state; the same
/// contract (including `downstream_lb_ps`) as the greedy overload above.
Solution assign_gates_exact(const AssignmentProblem& problem,
                            const std::vector<bool>& sleep_vector,
                            std::uint64_t max_nodes,
                            const std::vector<GateContext>& contexts,
                            sim::CircuitConfig& config, sta::TimingState& timing,
                            const sta::TimingSnapshot& baseline,
                            const std::vector<double>* downstream_lb_ps = nullptr);

/// No-assignment evaluation: every gate at its fastest version; reports the
/// leakage of `sleep_vector` alone (the state-only baseline's leaf).
Solution evaluate_state_only(const AssignmentProblem& problem,
                             const std::vector<bool>& sleep_vector);

}  // namespace svtox::opt
