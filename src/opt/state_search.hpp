// State-tree search: choosing the standby sleep vector.
//
// The paper's Section 5 search structure: a binary tree over the primary
// inputs (ordered most-influential first), each leaf evaluated by a
// gate-tree search. Interior nodes are bounded by a ternary-simulation
// leakage lower bound, which both orders the branches and prunes. Bounds
// are served by the incremental BoundEngine (cone-update + cached
// per-gate terms); results are identical to the full-recomputation
// reference because the engine sums its term cache in the reference's
// gate order.
//
//  * Heuristic 1  -- a single downward traversal of both trees.
//  * Heuristic 2  -- Heu1's descent plus continued bounded DFS until a time
//                    limit expires.
//  * exact        -- full branch-and-bound over both trees (small circuits).
//  * state-only   -- the same state search with all gates pinned to their
//                    fastest version (the paper's "Only State Assignment"
//                    baseline).
//
// Leaves are evaluated through a per-worker opt::LeafEvaluator, which
// amortizes the leaf-invariant setup (2-valued simulation,
// canonicalization, the all-fastest timing baseline) across the worker's
// whole leaf stream; leaf results are bit-identical to the from-scratch
// gate_assign entry points.
//
// With `SearchOptions::threads > 1` the continued search splits the top
// ceil(log2(threads)) + 2 levels of the state tree into subtrees drained
// by a thread pool sharing one incumbent, and the random-probe sweep is
// drained the same way from a pregenerated probe set; equal-leakage leaves
// tie-break on the lexicographically smallest sleep vector, so exhaustive
// (exact) results and fully-drained probe sweeps do not depend on the
// thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "opt/bound_engine.hpp"
#include "opt/gate_assign.hpp"
#include "opt/problem.hpp"
#include "opt/solution.hpp"
#include "sim/packed.hpp"
#include "sim/sim.hpp"

namespace svtox::opt {

/// Admissible leakage lower bound for a partial input assignment: ternary
/// simulation followed by a per-gate minimum over all local states
/// compatible with the propagated 0/1/X values. Ignores the delay
/// constraint, hence never overestimates the best completion. This is the
/// from-scratch reference; the search itself uses the incremental
/// BoundEngine, which returns bit-identical values.
double leakage_lower_bound_na(const AssignmentProblem& problem,
                              const std::vector<sim::Tri>& input_values,
                              BoundKind kind);

/// Tuning for the state search.
struct SearchOptions {
  /// Wall-clock limit for the continued search (Heu2); the first descent
  /// always completes regardless.
  double time_limit_s = 5.0;
  /// Cap on leaf evaluations; 0 = unlimited. Heuristic 1 is max_leaves = 1.
  std::uint64_t max_leaves = 0;
  /// Gate visiting order inside each leaf's greedy assignment.
  GateOrder gate_order = GateOrder::kBySavings;
  /// Use the exact gate-tree search at leaves (exact mode only).
  bool exact_leaves = false;
  std::uint64_t max_gate_nodes = 0;  ///< Node cap for exact leaves.
  /// Random sleep vectors evaluated after the tree search (so they only
  /// displace its result when strictly better under the deterministic
  /// tie-break). Useful when the ternary bound is flat (XOR-dominated
  /// circuits); defaults on for the state-only mode and off elsewhere.
  /// The sweep is parallel (see `threads`) over a pregenerated,
  /// thread-count-invariant probe set and stops starting probes once the
  /// time limit expires (`max_leaves` caps only the tree search).
  int random_probes = 0;
  /// Seed of the random-probe vector stream (experiments can vary the
  /// probes without code edits; the default preserves the historical
  /// stream).
  std::uint64_t probe_seed = 0x5eedbeefcafe0001ULL;
  /// Simulation backend for the word-parallel fast paths: the state-only
  /// probe sweep (64 probes per packed pass) and the root split's
  /// prefix-bound prescreen. Results are bit-identical either way -- the
  /// packed kernels reproduce the scalar FP sequences exactly -- so this
  /// is a performance/cross-check knob, not a semantics knob. The
  /// checkpointing sweep and greedy-mode probes always run scalar (their
  /// per-probe work is a full gate-assignment, not a simulation).
  sim::SimBackend sim_backend = sim::default_backend();
  /// Worker threads for the continued search's root split and the probe
  /// sweep. 1 = serial, 0 = all hardware threads. The root split is
  /// ignored (serial) when max_leaves != 0, since a shared leaf budget
  /// would make the split nondeterministic.
  int threads = 1;
  /// Bound evaluation strategy; kReference is the slow cross-check path.
  BoundMode bound_mode = BoundMode::kIncremental;
  /// Cooperative cancellation (std::stop_token-style): when non-null and
  /// set, the search stops mid-tree (and mid-probe-sweep) at the next
  /// budget check and returns its best-so-far incumbent with
  /// `Solution::interrupted` true. The first descent's leaf still
  /// completes, so a cancelled search always carries a valid solution.
  /// The pointee must outlive the search call.
  const std::atomic<bool>* cancel = nullptr;
  /// When non-empty, the search periodically serializes its frontier +
  /// incumbent to this file (atomic temp + rename, checksummed) and, if
  /// the file already holds a checkpoint with a matching fingerprint,
  /// resumes from it instead of restarting. An interrupted search writes a
  /// final snapshot; a completed one deletes the file. Forces a serial
  /// search (threads = 1). See opt/checkpoint.hpp for the invariants.
  std::string checkpoint_path;
  /// Checkpoint cadence: write after this many seconds have passed or this
  /// many new leaves were evaluated since the last write, whichever fires
  /// first (every_leaves = 0 disables the count trigger).
  double checkpoint_every_s = 5.0;
  std::uint64_t checkpoint_every_leaves = 64;
  /// When non-empty, restricts the search to the subtree of the state tree
  /// where input_order positions [0, size) are pinned to these values: the
  /// search descends the prescribed branch at those depths (no sibling, no
  /// bound probe, no pruning) and explores freely below. Distributed mode
  /// carves the root frontier into 2^k such subtrees and solves them as
  /// independent jobs; the min of their incumbents under the deterministic
  /// tie-break equals a flat search's result when each subtree gets the
  /// same leaf budget. Forces a serial search and disables the random
  /// probe sweep (the sweep is a whole-tree construct).
  std::vector<bool> subtree_prefix;
  /// When non-empty (one entry per control point, by control-point index,
  /// NOT by input_order position), pins control points to constants the
  /// search never branches on: kZero/kOne fix the input's value at every
  /// leaf, kX leaves it free. The state tree shrinks to the free inputs --
  /// pinned depths descend the prescribed branch with no sibling, no bound
  /// probe and no pruning -- and the random-probe sweep overwrites the
  /// pinned bits of every generated probe (the Rng stream is unchanged, so
  /// free bits match the unpinned sweep's). The hierarchical flow pins a
  /// cone's boundary inputs to their already-stitched upstream values.
  /// Forces a serial search; mutually exclusive with subtree_prefix.
  std::vector<sim::Tri> pinned_inputs;
  /// In-memory checkpoint blob (opt/checkpoint.hpp text format) to resume
  /// from, used to migrate a subtree between processes without a shared
  /// filesystem. Must carry the search's fingerprint. When both this and
  /// an on-disk checkpoint (checkpoint_path) are present and valid, the
  /// one with more progress wins -- resuming from *any* valid snapshot of
  /// the same search converges to the identical result, so the choice
  /// affects speed, not the answer. An empty `path` in the blob is
  /// allowed and means "no leaf recorded yet": the search starts from the
  /// root with the blob's incumbent/counters seeded (distributed seed
  /// tokens).
  std::string resume_text;
};

/// Heuristic 1: single downward traversal (paper Sec. 5).
Solution heuristic1(const AssignmentProblem& problem,
                    GateOrder gate_order = GateOrder::kBySavings);

/// Heuristic 1 with the full knob set (pinned inputs in particular); the
/// leaf budget and time limit are overridden to Heu1's single descent.
Solution heuristic1(const AssignmentProblem& problem, const SearchOptions& options);

/// Heuristic 2: Heu1 plus time-limited continued state search.
Solution heuristic2(const AssignmentProblem& problem, double time_limit_s,
                    GateOrder gate_order = GateOrder::kBySavings);

/// Heuristic 2 with full control over the search knobs (threads, probe
/// seed, bound mode). `exact_leaves` is overridden to the Heu2 default
/// (greedy); `max_leaves` is respected (0 = unlimited), giving callers a
/// deterministic budget knob -- checkpoint/resume byte-identity tests and
/// reproducible batch jobs cap leaves instead of wall-clock time.
Solution heuristic2(const AssignmentProblem& problem, const SearchOptions& options);

/// Exact simultaneous search over both trees. Exponential -- use only on
/// small circuits or with caps via `options`.
Solution exact_search(const AssignmentProblem& problem, const SearchOptions& options);

/// State assignment alone: searches the state tree with every gate fixed to
/// its fastest version (time-limited like Heu2).
Solution state_only_search(const AssignmentProblem& problem, double time_limit_s);

/// State-only search with full control over the search knobs.
Solution state_only_search(const AssignmentProblem& problem,
                           const SearchOptions& options);

}  // namespace svtox::opt
