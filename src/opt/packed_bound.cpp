#include "opt/packed_bound.hpp"

#include <algorithm>

#include "util/simd.hpp"

namespace svtox::opt {

PackedBoundKernel::PackedBoundKernel(const AssignmentProblem& problem, BoundKind kind)
    : problem_(&problem), sim_(problem.netlist()) {
  const netlist::Netlist& netlist = problem.netlist();
  by_cell_.resize(netlist.library().cells().size());
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const auto cell = static_cast<std::size_t>(netlist.gate(g).cell_index);
    if (!by_cell_[cell].empty()) continue;  // term tables are per cell
    const std::uint32_t num_states = netlist.cell_of(g).topology().num_states();
    by_cell_[cell].reserve(num_states);
    for (std::uint32_t s = 0; s < num_states; ++s) {
      const double leak = kind == BoundKind::kMinVariant
                              ? problem.min_gate_leak_na(g, s)
                              : problem.fastest_gate_leak_na(g, s);
      by_cell_[cell].push_back({leak, s});
    }
    // Ascending by leak; ties keep state order but cannot change the min.
    std::stable_sort(by_cell_[cell].begin(), by_cell_[cell].end(),
                     [](const StateLeak& a, const StateLeak& b) { return a.leak < b.leak; });
  }
}

void PackedBoundKernel::evaluate(const std::vector<cellkit::TriWord>& input_planes,
                                 std::uint64_t lane_mask, double* bounds) {
  const netlist::Netlist& netlist = problem_->netlist();
  sim_.run(input_planes);
  const std::vector<cellkit::TriWord>& planes = sim_.planes();
  std::fill(bounds, bounds + 64, 0.0);
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    const int k = static_cast<int>(gate.fanins.size());
    // A full state s is compatible with a lane iff every pin whose bit is
    // set can carry 1 (value 1 or X) and every cleared pin can carry 0.
    std::uint64_t can_hi[8];
    std::uint64_t can_lo[8];
    for (int p = 0; p < k; ++p) {
      const cellkit::TriWord pin = planes[static_cast<std::size_t>(gate.fanins[p])];
      can_hi[p] = pin.ones | pin.xs;
      can_lo[p] = ~pin.ones;
    }
    std::uint64_t unresolved = lane_mask;
    for (const StateLeak& sl :
         by_cell_[static_cast<std::size_t>(gate.cell_index)]) {
      std::uint64_t compatible = unresolved;
      for (int p = 0; p < k && compatible != 0; ++p) {
        compatible &= ((sl.state >> p) & 1u) ? can_hi[p] : can_lo[p];
      }
      if (compatible == 0) continue;
      // First compatible state in ascending-leak order = the lane's
      // per-gate minimum; one add per lane per gate, in gate order.
      simd::scatter_add(bounds, compatible, sl.leak);
      unresolved &= ~compatible;
      if (unresolved == 0) break;
    }
  }
}

std::vector<double> packed_prefix_bounds(const AssignmentProblem& problem,
                                         BoundKind kind, int split_levels,
                                         std::uint32_t num_subtrees) {
  const netlist::Netlist& netlist = problem.netlist();
  PackedBoundKernel kernel(problem, kind);
  std::vector<double> result(num_subtrees, 0.0);

  const auto num_cps = static_cast<std::size_t>(netlist.num_control_points());
  std::vector<cellkit::TriWord> planes(num_cps);
  double bounds[64];
  for (std::uint32_t first = 0; first < num_subtrees; first += 64) {
    const int lanes = static_cast<int>(
        std::min<std::uint32_t>(64, num_subtrees - first));
    // Unassigned control points are X in every lane.
    for (cellkit::TriWord& plane : planes) plane = {0, ~0ULL};
    for (int level = 0; level < split_levels; ++level) {
      const auto cp = static_cast<std::size_t>(problem.input_order()[level]);
      cellkit::TriWord plane{0, 0};
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint32_t subtree = first + static_cast<std::uint32_t>(lane);
        if ((subtree >> level) & 1u) plane.ones |= 1ULL << lane;
      }
      planes[cp] = plane;
    }
    kernel.evaluate(planes, sim::tail_mask(lanes), bounds);
    for (int lane = 0; lane < lanes; ++lane) {
      result[first + static_cast<std::uint32_t>(lane)] = bounds[lane];
    }
  }
  return result;
}

}  // namespace svtox::opt
