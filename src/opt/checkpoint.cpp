#include "opt/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace svtox::opt {

namespace {

constexpr const char* kMagic = "svtox_checkpoint v1";

/// Hexfloat rendering: exact round trip for every finite double, so the
/// restored incumbent prunes bit-identically to the live one.
std::string dump_f64(double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

double parse_f64(std::string_view token, int line_no) {
  const std::string s(token);
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || s.empty()) {
    throw ParseError("<checkpoint>", line_no, "malformed number '" + s + "'");
  }
  return value;
}

std::string dump_bits(const std::vector<bool>& bits) {
  if (bits.empty()) return "-";
  std::string out;
  out.reserve(bits.size());
  for (const bool b : bits) out.push_back(b ? '1' : '0');
  return out;
}

std::vector<bool> parse_bits(std::string_view token, int line_no) {
  std::vector<bool> bits;
  if (token == "-") return bits;
  bits.reserve(token.size());
  for (const char c : token) {
    if (c != '0' && c != '1') {
      throw ParseError("<checkpoint>", line_no, "malformed bit string");
    }
    bits.push_back(c == '1');
  }
  return bits;
}

/// One gate's config as a token: `<variant>` when the pin mapping is
/// empty (identity), else `<variant>:<canonical_state>:<digits>` with one
/// digit per logical pin.
std::string dump_gate(const sim::GateConfig& gate) {
  std::string out = std::to_string(gate.variant);
  if (!gate.mapping.logical_to_physical.empty()) {
    out += ':';
    out += std::to_string(gate.mapping.canonical_state);
    out += ':';
    for (const int p : gate.mapping.logical_to_physical) {
      out += static_cast<char>('0' + p);
    }
  }
  return out;
}

sim::GateConfig parse_gate(std::string_view token, int line_no) {
  sim::GateConfig gate;
  const std::size_t c1 = token.find(':');
  if (c1 == std::string_view::npos) {
    gate.variant = static_cast<int>(parse_f64(token, line_no));
    return gate;
  }
  gate.variant = static_cast<int>(parse_f64(token.substr(0, c1), line_no));
  const std::size_t c2 = token.find(':', c1 + 1);
  if (c2 == std::string_view::npos) {
    throw ParseError("<checkpoint>", line_no, "malformed gate config token");
  }
  gate.mapping.canonical_state =
      static_cast<std::uint32_t>(parse_f64(token.substr(c1 + 1, c2 - c1 - 1), line_no));
  for (const char c : token.substr(c2 + 1)) {
    if (c < '0' || c > '9') {
      throw ParseError("<checkpoint>", line_no, "malformed pin permutation");
    }
    gate.mapping.logical_to_physical.push_back(c - '0');
  }
  return gate;
}

}  // namespace

std::uint64_t search_fingerprint(const AssignmentProblem& problem,
                                 const SearchOptions& options, BoundKind bound_kind,
                                 bool state_only) {
  // Everything result-relevant except the wall-clock limit: the problem's
  // content identity plus the search knobs that change which leaf wins.
  std::string blob;
  const netlist::Netlist& netlist = problem.netlist();
  blob += netlist.name();
  blob += '|' + std::to_string(netlist.num_gates());
  blob += '|' + std::to_string(netlist.num_control_points());
  blob += '|' + std::to_string(netlist.library().total_versions());
  blob += '|' + dump_f64(problem.penalty_fraction());
  blob += problem.use_pin_reorder() ? "|reorder" : "|raw";
  for (const int pi : problem.input_order()) blob += ',' + std::to_string(pi);
  blob += '|' + std::to_string(options.max_leaves);
  blob += '|' + std::to_string(static_cast<int>(options.gate_order));
  blob += options.exact_leaves ? "|exact" : "|greedy";
  blob += '|' + std::to_string(options.max_gate_nodes);
  blob += '|' + std::to_string(options.random_probes);
  blob += '|' + std::to_string(options.probe_seed);
  blob += '|' + std::to_string(static_cast<int>(options.bound_mode));
  blob += '|' + std::to_string(static_cast<int>(bound_kind));
  blob += state_only ? "|state_only" : "|full";
  // Only appended when restricted, so flat-search fingerprints (and hence
  // every pre-existing checkpoint file) are unchanged.
  if (!options.subtree_prefix.empty()) {
    blob += "|st:";
    for (const bool bit : options.subtree_prefix) blob += bit ? '1' : '0';
  }
  // Same append-when-set rule for the boundary-aware knobs: pinned inputs
  // and seeded boundary timing both change which leaf wins, but unpinned
  // default-seeded searches keep their historical fingerprints.
  if (!options.pinned_inputs.empty()) {
    blob += "|pin:";
    for (const sim::Tri pin : options.pinned_inputs) {
      blob += pin == sim::Tri::kOne ? '1' : pin == sim::Tri::kZero ? '0' : 'x';
    }
  }
  if (!problem.boundary().empty()) {
    blob += "|bt:";
    for (const sta::BoundaryTiming::Point& point : problem.boundary().points) {
      blob += dump_f64(point.arrival_ps) + ',' + dump_f64(point.slew_ps) + ';';
    }
  }
  return fnv1a64(blob);
}

std::string write_checkpoint(const SearchCheckpoint& checkpoint) {
  std::string out;
  out += kMagic;
  out += '\n';
  out += "fingerprint " + hex64(checkpoint.fingerprint) + '\n';
  out += "tree_done " + std::string(checkpoint.tree_done ? "1" : "0") + '\n';
  out += "path " + dump_bits(checkpoint.path) + '\n';
  out += "probes_done " + std::to_string(checkpoint.probes_done) + '\n';
  out += "nodes " + std::to_string(checkpoint.nodes) + '\n';
  out += "leaves " + std::to_string(checkpoint.leaves) + '\n';
  out += "elapsed_s " + dump_f64(checkpoint.elapsed_s) + '\n';
  out += "leakage_na " + dump_f64(checkpoint.leakage_na) + '\n';
  out += "delay_ps " + dump_f64(checkpoint.delay_ps) + '\n';
  out += "sleep " + dump_bits(checkpoint.sleep_vector) + '\n';
  out += "config";
  for (const sim::GateConfig& gate : checkpoint.config) out += ' ' + dump_gate(gate);
  out += '\n';
  out += "checksum " + hex64(fnv1a64(out)) + '\n';
  return out;
}

SearchCheckpoint parse_checkpoint(const std::string& text) {
  // Verify the trailing checksum over everything before its line first:
  // a torn write must not be mistaken for a (wrong) valid frontier.
  const std::size_t marker = text.rfind("checksum ");
  if (marker == std::string::npos || (marker != 0 && text[marker - 1] != '\n')) {
    throw Error(ErrorCode::kCorrupt, "checkpoint has no checksum line");
  }
  const std::string_view payload(text.data(), marker);
  const std::string_view stored =
      trim(std::string_view(text).substr(marker + 9));
  if (stored != hex64(fnv1a64(payload))) {
    throw Error(ErrorCode::kCorrupt, "checkpoint checksum mismatch");
  }

  SearchCheckpoint checkpoint;
  std::istringstream in{std::string(payload)};
  std::string line;
  int line_no = 0;
  bool saw_magic = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view sv = trim(line);
    if (sv.empty()) continue;
    if (!saw_magic) {
      if (sv != kMagic) {
        throw ParseError("<checkpoint>", line_no, "bad magic line");
      }
      saw_magic = true;
      continue;
    }
    const std::size_t space = sv.find(' ');
    const std::string_view key = sv.substr(0, space);
    const std::string_view value =
        space == std::string_view::npos ? std::string_view() : trim(sv.substr(space + 1));
    if (key == "fingerprint") {
      checkpoint.fingerprint = std::strtoull(std::string(value).c_str(), nullptr, 16);
    } else if (key == "tree_done") {
      checkpoint.tree_done = value == "1";
    } else if (key == "path") {
      checkpoint.path = parse_bits(value, line_no);
    } else if (key == "probes_done") {
      checkpoint.probes_done = static_cast<std::uint64_t>(parse_f64(value, line_no));
    } else if (key == "nodes") {
      checkpoint.nodes = static_cast<std::uint64_t>(parse_f64(value, line_no));
    } else if (key == "leaves") {
      checkpoint.leaves = static_cast<std::uint64_t>(parse_f64(value, line_no));
    } else if (key == "elapsed_s") {
      checkpoint.elapsed_s = parse_f64(value, line_no);
    } else if (key == "leakage_na") {
      checkpoint.leakage_na = parse_f64(value, line_no);
    } else if (key == "delay_ps") {
      checkpoint.delay_ps = parse_f64(value, line_no);
    } else if (key == "sleep") {
      checkpoint.sleep_vector = parse_bits(value, line_no);
    } else if (key == "config") {
      for (const std::string_view token : split_ws(value)) {
        checkpoint.config.push_back(parse_gate(token, line_no));
      }
    } else {
      throw ParseError("<checkpoint>", line_no,
                       "unknown field '" + std::string(key) + "'");
    }
  }
  if (!saw_magic) throw ParseError("<checkpoint>", 1, "empty checkpoint");
  return checkpoint;
}

void write_checkpoint_file(const SearchCheckpoint& checkpoint,
                           const std::string& path) {
  SVTOX_FAIL_POINT("checkpoint_write");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) throw Error(ErrorCode::kIo, "cannot write checkpoint " + tmp);
    out << write_checkpoint(checkpoint);
    out.flush();
    if (!out) throw Error(ErrorCode::kIo, "short write on checkpoint " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(ErrorCode::kIo, "cannot rename checkpoint into " + path);
  }
}

std::optional<SearchCheckpoint> load_checkpoint_file(const std::string& path,
                                                     std::uint64_t expected_fp) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // no checkpoint yet: a fresh run
  try {
    SVTOX_FAIL_POINT("checkpoint_read");
    std::ostringstream text;
    text << in.rdbuf();
    SearchCheckpoint checkpoint = parse_checkpoint(text.str());
    if (checkpoint.fingerprint != expected_fp) {
      log_warn("checkpoint " + path + " is for a different run (fingerprint " +
               hex64(checkpoint.fingerprint) + " != " + hex64(expected_fp) +
               "); starting fresh");
      return std::nullopt;
    }
    return checkpoint;
  } catch (const std::exception& e) {
    log_warn("ignoring unusable checkpoint " + path + ": " + e.what());
    return std::nullopt;
  }
}

}  // namespace svtox::opt
