// Search checkpoint: crash-safe serialization of the state-tree search's
// progress, so an interrupted run (signal, daemon shutdown, crash) resumes
// instead of restarting.
//
// What gets saved is deliberately tiny -- O(inputs + gates), independent of
// how much of the tree was explored:
//
//  * the *path* to the last evaluated leaf, as one bit per input_order
//    position. The DFS branch order is a pure function of the incremental
//    bounds and the incumbent, both of which the checkpoint restores, so
//    replaying this path (without counting, pruning or re-evaluating)
//    parks the resumed search exactly where the interrupted one stopped;
//  * the incumbent solution (sleep vector, per-gate config, leakage,
//    delay) and the node/leaf counters, so pruning decisions after resume
//    are identical to the uninterrupted run's;
//  * the probe-sweep index once the tree phase is done;
//  * a fingerprint of the problem + search knobs, so a checkpoint is never
//    replayed against a different circuit, penalty or search mode.
//
// Files are written atomically (temp file + rename) and end with an FNV-1a
// checksum line; a torn or corrupted file fails the checksum and is
// ignored (the search restarts from scratch), never trusted.
//
// Invariant: with a deterministic budget (SearchOptions::max_leaves) and a
// serial search, interrupt-at-any-checkpoint + resume yields a final
// solution byte-identical to the uninterrupted run -- the kill-and-resume
// property test in tests/checkpoint_test.cpp exercises exactly this.
// Wall-clock budgets resume with the remaining time (best-effort).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "opt/state_search.hpp"

namespace svtox::opt {

/// One serialized search frontier + incumbent.
struct SearchCheckpoint {
  std::uint64_t fingerprint = 0;  ///< search_fingerprint() of the run.
  bool tree_done = false;         ///< Tree phase finished; in probe sweep.
  /// Input values along the path to the last evaluated leaf, indexed by
  /// input_order position (not PI id). Empty only in probe phase.
  std::vector<bool> path;
  std::uint64_t probes_done = 0;  ///< Probes evaluated (resume index).
  std::uint64_t nodes = 0;        ///< Counter snapshots at the leaf.
  std::uint64_t leaves = 0;
  double elapsed_s = 0.0;         ///< Wall-clock consumed before the snapshot.

  // Incumbent at the snapshot (offers only happen at leaves, so the
  // incumbent is always exact at a leaf boundary).
  std::vector<bool> sleep_vector;
  sim::CircuitConfig config;
  double leakage_na = 0.0;
  double delay_ps = 0.0;
};

/// Identity of a search run: problem content (netlist name/shape, library
/// variant space, penalty, pin reordering) + every result-relevant search
/// knob. Excludes the wall-clock limit, so a resumed run may continue
/// under a fresh budget.
std::uint64_t search_fingerprint(const AssignmentProblem& problem,
                                 const SearchOptions& options, BoundKind bound_kind,
                                 bool state_only);

/// Serializes to the line-oriented text format (ends with the checksum).
std::string write_checkpoint(const SearchCheckpoint& checkpoint);

/// Parses and verifies; throws Error(kCorrupt) on a checksum mismatch and
/// ParseError on a structurally malformed file.
SearchCheckpoint parse_checkpoint(const std::string& text);

/// Atomic write: temp file + rename. Throws Error(kIo) when the file
/// cannot be written (callers treat a failed checkpoint as a warning, not
/// a search failure).
void write_checkpoint_file(const SearchCheckpoint& checkpoint,
                           const std::string& path);

/// Loads `path` if it exists, verifies the checksum and the expected
/// fingerprint. Any failure (missing, torn, corrupt, mismatched) returns
/// nullopt -- resuming is always optional, never load-bearing.
std::optional<SearchCheckpoint> load_checkpoint_file(const std::string& path,
                                                     std::uint64_t expected_fp);

}  // namespace svtox::opt
