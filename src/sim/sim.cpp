#include "sim/sim.hpp"

#include "util/error.hpp"

namespace svtox::sim {

namespace {

void check_inputs(const netlist::Netlist& netlist, std::size_t provided) {
  if (provided != static_cast<std::size_t>(netlist.num_control_points())) {
    throw ContractError("simulate: control-point value count mismatch");
  }
  if (!netlist.finalized()) throw ContractError("simulate: netlist not finalized");
}

}  // namespace

std::vector<bool> simulate(const netlist::Netlist& netlist,
                           const std::vector<bool>& input_values) {
  check_inputs(netlist, input_values.size());
  std::vector<bool> values(static_cast<std::size_t>(netlist.num_signals()), false);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    values[static_cast<std::size_t>(netlist.control_points()[i])] = input_values[i];
  }
  for (int g : netlist.topological_order()) {
    const std::uint32_t state = local_state(netlist, values, g);
    values[static_cast<std::size_t>(netlist.gate(g).output)] =
        netlist.cell_of(g).topology().output(state);
  }
  return values;
}

std::vector<std::uint64_t> simulate64(const netlist::Netlist& netlist,
                                      const std::vector<std::uint64_t>& input_words) {
  check_inputs(netlist, input_words.size());
  std::vector<std::uint64_t> words(static_cast<std::size_t>(netlist.num_signals()), 0);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    words[static_cast<std::size_t>(netlist.control_points()[i])] = input_words[i];
  }
  for (int g : netlist.topological_order()) {
    const netlist::Gate& gate = netlist.gate(g);
    const cellkit::CellTopology& topo = netlist.cell_of(g).topology();
    const int k = topo.num_inputs();
    // Sum of minterms: for every ON-set state, AND the matching pin
    // polarities together and OR into the output word.
    std::uint64_t out = 0;
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      if (!topo.output(state)) continue;
      std::uint64_t term = ~0ULL;
      for (int pin = 0; pin < k; ++pin) {
        const std::uint64_t v = words[static_cast<std::size_t>(gate.fanins[pin])];
        term &= ((state >> pin) & 1u) ? v : ~v;
      }
      out |= term;
    }
    words[static_cast<std::size_t>(gate.output)] = out;
  }
  return words;
}

std::uint32_t local_state(const netlist::Netlist& netlist,
                          const std::vector<bool>& signal_values, int gate) {
  const netlist::Gate& g = netlist.gate(gate);
  std::uint32_t state = 0;
  for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
    if (signal_values[static_cast<std::size_t>(g.fanins[pin])]) state |= 1u << pin;
  }
  return state;
}

std::uint32_t local_state64(const netlist::Netlist& netlist,
                            const std::vector<std::uint64_t>& signal_words, int gate,
                            int lane) {
  const netlist::Gate& g = netlist.gate(gate);
  std::uint32_t state = 0;
  for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
    if ((signal_words[static_cast<std::size_t>(g.fanins[pin])] >> lane) & 1u) {
      state |= 1u << pin;
    }
  }
  return state;
}

std::vector<Tri> simulate_ternary(const netlist::Netlist& netlist,
                                  const std::vector<Tri>& input_values) {
  check_inputs(netlist, input_values.size());
  std::vector<Tri> values(static_cast<std::size_t>(netlist.num_signals()), Tri::kX);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    values[static_cast<std::size_t>(netlist.control_points()[i])] = input_values[i];
  }
  for (int g : netlist.topological_order()) {
    values[static_cast<std::size_t>(netlist.gate(g).output)] = ternary_output(
        netlist.cell_of(g).topology(), local_ternary_mask(netlist, values, g));
  }
  return values;
}

std::vector<Tri> local_ternary(const netlist::Netlist& netlist,
                               const std::vector<Tri>& signal_values, int gate) {
  const netlist::Gate& g = netlist.gate(gate);
  std::vector<Tri> pins(g.fanins.size());
  for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
    pins[pin] = signal_values[static_cast<std::size_t>(g.fanins[pin])];
  }
  return pins;
}

TriMask local_ternary_mask(const netlist::Netlist& netlist,
                           const std::vector<Tri>& signal_values, int gate) {
  const netlist::Gate& g = netlist.gate(gate);
  TriMask mask;
  for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
    switch (signal_values[static_cast<std::size_t>(g.fanins[pin])]) {
      case Tri::kZero:
        break;
      case Tri::kOne:
        mask.ones |= 1u << pin;
        break;
      case Tri::kX:
        mask.xmask |= 1u << pin;
        break;
    }
  }
  return mask;
}

Tri ternary_output(const cellkit::CellTopology& topo, TriMask mask) {
  // Output is known iff all compatible completions agree.
  bool saw_zero = false;
  bool saw_one = false;
  std::uint32_t sub = mask.xmask;
  for (;;) {
    (topo.output(mask.ones | sub) ? saw_one : saw_zero) = true;
    if (saw_zero && saw_one) return Tri::kX;
    if (sub == 0) break;
    sub = (sub - 1) & mask.xmask;
  }
  return saw_one ? Tri::kOne : Tri::kZero;
}

std::vector<std::uint32_t> compatible_states(const std::vector<Tri>& ternary_state) {
  std::vector<std::uint32_t> states = {0};
  for (std::size_t pin = 0; pin < ternary_state.size(); ++pin) {
    const Tri t = ternary_state[pin];
    const std::size_t count = states.size();
    for (std::size_t i = 0; i < count; ++i) {
      switch (t) {
        case Tri::kZero:
          break;
        case Tri::kOne:
          states[i] |= 1u << pin;
          break;
        case Tri::kX:
          states.push_back(states[i] | (1u << pin));
          break;
      }
    }
  }
  return states;
}

}  // namespace svtox::sim
