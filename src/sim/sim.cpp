#include "sim/sim.hpp"

#include "util/error.hpp"

namespace svtox::sim {

namespace {

void check_inputs(const netlist::Netlist& netlist, std::size_t provided) {
  if (provided != static_cast<std::size_t>(netlist.num_control_points())) {
    throw ContractError("simulate: control-point value count mismatch");
  }
  if (!netlist.finalized()) throw ContractError("simulate: netlist not finalized");
}

}  // namespace

std::vector<bool> simulate(const netlist::Netlist& netlist,
                           const std::vector<bool>& input_values) {
  check_inputs(netlist, input_values.size());
  const netlist::FlatNetlist& flat = netlist.flat();
  // Byte-valued scratch: vector<bool> costs a masked read-modify-write per
  // signal access, which dominates this kernel. Evaluate over bytes and
  // pack into the public vector<bool> once at the end.
  std::vector<unsigned char> scratch(static_cast<std::size_t>(flat.num_signals()), 0);
  for (std::uint32_t i = 0; i < flat.num_control_points(); ++i) {
    scratch[flat.control_points()[i]] = input_values[i] ? 1 : 0;
  }
  for (std::uint32_t g : flat.topo_order()) {
    const std::uint32_t* pins = flat.fanins(g);
    const std::uint32_t k = flat.fanin_count(g);
    std::uint32_t state = 0;
    for (std::uint32_t pin = 0; pin < k; ++pin) {
      state |= static_cast<std::uint32_t>(scratch[pins[pin]]) << pin;
    }
    scratch[flat.output(g)] =
        static_cast<unsigned char>((flat.truth(g) >> state) & 1u);
  }
  std::vector<bool> values(scratch.size());
  for (std::size_t s = 0; s < scratch.size(); ++s) values[s] = scratch[s] != 0;
  return values;
}

std::vector<std::uint64_t> simulate64(const netlist::Netlist& netlist,
                                      const std::vector<std::uint64_t>& input_words) {
  check_inputs(netlist, input_words.size());
  const netlist::FlatNetlist& flat = netlist.flat();
  std::vector<std::uint64_t> words(static_cast<std::size_t>(flat.num_signals()), 0);
  for (std::uint32_t i = 0; i < flat.num_control_points(); ++i) {
    words[flat.control_points()[i]] = input_words[i];
  }
  for (std::uint32_t g : flat.topo_order()) {
    const std::uint16_t truth = flat.truth(g);
    const std::uint32_t* pins = flat.fanins(g);
    const std::uint32_t k = flat.fanin_count(g);
    const std::uint32_t num_states = 1u << k;
    // Sum of minterms: for every ON-set state, AND the matching pin
    // polarities together and OR into the output word.
    std::uint64_t out = 0;
    for (std::uint32_t state = 0; state < num_states; ++state) {
      if (((truth >> state) & 1u) == 0) continue;
      std::uint64_t term = ~0ULL;
      for (std::uint32_t pin = 0; pin < k; ++pin) {
        const std::uint64_t v = words[pins[pin]];
        term &= ((state >> pin) & 1u) ? v : ~v;
      }
      out |= term;
    }
    words[flat.output(g)] = out;
  }
  return words;
}

std::uint32_t local_state(const netlist::Netlist& netlist,
                          const std::vector<bool>& signal_values, int gate) {
  return local_state(netlist.flat(), signal_values, static_cast<std::uint32_t>(gate));
}

std::uint32_t local_state64(const netlist::Netlist& netlist,
                            const std::vector<std::uint64_t>& signal_words, int gate,
                            int lane) {
  return local_state64(netlist.flat(), signal_words, static_cast<std::uint32_t>(gate),
                       lane);
}

std::vector<Tri> simulate_ternary(const netlist::Netlist& netlist,
                                  const std::vector<Tri>& input_values) {
  check_inputs(netlist, input_values.size());
  const netlist::FlatNetlist& flat = netlist.flat();
  std::vector<Tri> values(static_cast<std::size_t>(flat.num_signals()), Tri::kX);
  for (std::uint32_t i = 0; i < flat.num_control_points(); ++i) {
    values[flat.control_points()[i]] = input_values[i];
  }
  for (std::uint32_t g : flat.topo_order()) {
    values[flat.output(g)] =
        ternary_output(flat.truth(g), local_ternary_mask(flat, values, g));
  }
  return values;
}

std::vector<Tri> local_ternary(const netlist::Netlist& netlist,
                               const std::vector<Tri>& signal_values, int gate) {
  const netlist::Gate& g = netlist.gate(gate);
  std::vector<Tri> pins(g.fanins.size());
  for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
    pins[pin] = signal_values[static_cast<std::size_t>(g.fanins[pin])];
  }
  return pins;
}

TriMask local_ternary_mask(const netlist::Netlist& netlist,
                           const std::vector<Tri>& signal_values, int gate) {
  return local_ternary_mask(netlist.flat(), signal_values,
                            static_cast<std::uint32_t>(gate));
}

Tri ternary_output(const cellkit::CellTopology& topo, TriMask mask) {
  // Output is known iff all compatible completions agree.
  bool saw_zero = false;
  bool saw_one = false;
  std::uint32_t sub = mask.xmask;
  for (;;) {
    (topo.output(mask.ones | sub) ? saw_one : saw_zero) = true;
    if (saw_zero && saw_one) return Tri::kX;
    if (sub == 0) break;
    sub = (sub - 1) & mask.xmask;
  }
  return saw_one ? Tri::kOne : Tri::kZero;
}

std::vector<std::uint32_t> compatible_states(const std::vector<Tri>& ternary_state) {
  std::vector<std::uint32_t> states = {0};
  for (std::size_t pin = 0; pin < ternary_state.size(); ++pin) {
    const Tri t = ternary_state[pin];
    const std::size_t count = states.size();
    for (std::size_t i = 0; i < count; ++i) {
      switch (t) {
        case Tri::kZero:
          break;
        case Tri::kOne:
          states[i] |= 1u << pin;
          break;
        case Tri::kX:
          states.push_back(states[i] | (1u << pin));
          break;
      }
    }
  }
  return states;
}

}  // namespace svtox::sim
