// Random-vector combinational equivalence checking.
//
// Used to validate structure-preserving transformations (library rebinds,
// .bench round-trips, generator refactors). Monte-Carlo equivalence over
// the 64-way simulator: not a formal proof, but with a few thousand vectors
// the escape probability for the mapped circuits here is negligible, and
// mismatches come with a concrete counterexample.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace svtox::sim {

/// A disagreement witness.
struct Counterexample {
  std::vector<bool> inputs;       ///< PI vector (order of netlist a).
  std::string output_name;        ///< First differing primary output.
  bool value_a = false;
  bool value_b = false;
};

/// Result of an equivalence check.
struct EquivalenceResult {
  bool equivalent = false;
  int vectors_checked = 0;
  std::optional<Counterexample> counterexample;
};

/// Checks that `a` and `b` implement the same function on the primary
/// outputs, matching inputs and outputs *by signal name*. Requires both
/// netlists to expose identical input/output name sets (throws
/// ContractError otherwise). Deterministic in `seed`.
EquivalenceResult check_equivalence(const netlist::Netlist& a, const netlist::Netlist& b,
                                    int num_vectors, std::uint64_t seed);

}  // namespace svtox::sim
