#include "sim/incremental.hpp"

#include "util/error.hpp"

namespace svtox::sim {

IncrementalTernarySim::IncrementalTernarySim(const netlist::Netlist& netlist)
    : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw ContractError("IncrementalTernarySim: netlist not finalized");
  }
  flat_ = &netlist.flat();
  values_.assign(static_cast<std::size_t>(netlist.num_signals()), Tri::kX);
  inputs_.assign(static_cast<std::size_t>(netlist.num_control_points()), Tri::kX);
  level_bucket_.resize(static_cast<std::size_t>(netlist.depth()) + 1);
  gate_epoch_.assign(static_cast<std::size_t>(netlist.num_gates()), 0);
}

void IncrementalTernarySim::enqueue_sinks(std::uint32_t signal) {
  const std::uint32_t* sink_gates = flat_->sink_gates(signal);
  const std::uint32_t count = flat_->sink_count(signal);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t g = sink_gates[i];
    if (gate_epoch_[g] == epoch_) continue;
    gate_epoch_[g] = epoch_;
    level_bucket_[static_cast<std::size_t>(flat_->level(g))].push_back(
        static_cast<int>(g));
  }
}

void IncrementalTernarySim::set_input(int index, Tri value,
                                      std::vector<int>* changed_gates) {
  if (index < 0 || index >= netlist_->num_control_points()) {
    throw ContractError("IncrementalTernarySim::set_input: index out of range");
  }
  frames_.push_back({undo_log_.size(), index, inputs_[static_cast<std::size_t>(index)]});
  inputs_[static_cast<std::size_t>(index)] = value;

  const std::uint32_t signal = flat_->control_points()[static_cast<std::size_t>(index)];
  if (values_[signal] == value) return;
  undo_log_.push_back({static_cast<int>(signal), values_[signal]});
  values_[signal] = value;

  // Levelized sweep: a gate's fanins are all driven at strictly lower
  // levels, so processing buckets in ascending level order evaluates each
  // cone gate exactly once, after all of its changed fanins settled.
  ++epoch_;
  enqueue_sinks(signal);
  for (std::size_t level = 0; level < level_bucket_.size(); ++level) {
    std::vector<int>& bucket = level_bucket_[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint32_t g = static_cast<std::uint32_t>(bucket[i]);
      if (changed_gates != nullptr) changed_gates->push_back(static_cast<int>(g));
      const Tri out =
          ternary_output(flat_->truth(g), local_ternary_mask(*flat_, values_, g));
      const std::uint32_t out_signal = flat_->output(g);
      if (values_[out_signal] == out) continue;
      undo_log_.push_back({static_cast<int>(out_signal), values_[out_signal]});
      values_[out_signal] = out;
      enqueue_sinks(out_signal);
    }
    bucket.clear();
  }
}

void IncrementalTernarySim::undo() {
  if (frames_.empty()) throw ContractError("IncrementalTernarySim::undo: no frame");
  const Frame frame = frames_.back();
  frames_.pop_back();
  inputs_[static_cast<std::size_t>(frame.input_index)] = frame.previous_input;
  while (undo_log_.size() > frame.log_size) {
    const SignalWrite& write = undo_log_.back();
    values_[static_cast<std::size_t>(write.signal)] = write.previous;
    undo_log_.pop_back();
  }
}

void IncrementalTernarySim::reset() {
  values_.assign(values_.size(), Tri::kX);
  inputs_.assign(inputs_.size(), Tri::kX);
  undo_log_.clear();
  frames_.clear();
}

IncrementalBoolSim::IncrementalBoolSim(const netlist::Netlist& netlist)
    : netlist_(&netlist) {
  if (!netlist.finalized()) {
    throw ContractError("IncrementalBoolSim: netlist not finalized");
  }
  flat_ = &netlist.flat();
  inputs_.assign(static_cast<std::size_t>(netlist.num_control_points()), false);
  values_ = simulate(netlist, inputs_);
  level_bucket_.resize(static_cast<std::size_t>(netlist.depth()) + 1);
  gate_epoch_.assign(static_cast<std::size_t>(netlist.num_gates()), 0);
}

void IncrementalBoolSim::enqueue_sinks(std::uint32_t signal) {
  const std::uint32_t* sink_gates = flat_->sink_gates(signal);
  const std::uint32_t count = flat_->sink_count(signal);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t g = sink_gates[i];
    if (gate_epoch_[g] == epoch_) continue;
    gate_epoch_[g] = epoch_;
    level_bucket_[static_cast<std::size_t>(flat_->level(g))].push_back(
        static_cast<int>(g));
  }
}

void IncrementalBoolSim::set_input(int index, bool value,
                                   std::vector<int>* changed_gates) {
  if (index < 0 || index >= netlist_->num_control_points()) {
    throw ContractError("IncrementalBoolSim::set_input: index out of range");
  }
  frames_.push_back({undo_log_.size(), index, inputs_[static_cast<std::size_t>(index)]});
  inputs_[static_cast<std::size_t>(index)] = value;

  const std::uint32_t signal = flat_->control_points()[static_cast<std::size_t>(index)];
  if (values_[signal] == value) return;
  undo_log_.push_back({static_cast<int>(signal), values_[signal]});
  values_[signal] = value;

  // Same levelized sweep as the ternary engine: ascending level order
  // evaluates each cone gate exactly once, after all changed fanins settled.
  ++epoch_;
  enqueue_sinks(signal);
  for (std::size_t level = 0; level < level_bucket_.size(); ++level) {
    std::vector<int>& bucket = level_bucket_[level];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint32_t g = static_cast<std::uint32_t>(bucket[i]);
      if (changed_gates != nullptr) changed_gates->push_back(static_cast<int>(g));
      const bool out =
          ((flat_->truth(g) >> local_state(*flat_, values_, g)) & 1u) != 0;
      const std::uint32_t out_signal = flat_->output(g);
      if (values_[out_signal] == out) continue;
      undo_log_.push_back({static_cast<int>(out_signal), values_[out_signal]});
      values_[out_signal] = out;
      enqueue_sinks(out_signal);
    }
    bucket.clear();
  }
}

void IncrementalBoolSim::undo() {
  if (frames_.empty()) throw ContractError("IncrementalBoolSim::undo: no frame");
  const Frame frame = frames_.back();
  frames_.pop_back();
  inputs_[static_cast<std::size_t>(frame.input_index)] = frame.previous_input;
  while (undo_log_.size() > frame.log_size) {
    const SignalWrite& write = undo_log_.back();
    values_[static_cast<std::size_t>(write.signal)] = write.previous;
    undo_log_.pop_back();
  }
}

void IncrementalBoolSim::commit() {
  undo_log_.clear();
  frames_.clear();
}

}  // namespace svtox::sim
