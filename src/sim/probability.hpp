// Vectorless (probabilistic) leakage estimation.
//
// Instead of simulating random vectors, propagate signal probabilities
// through the netlist under an independence assumption and evaluate each
// gate's *expected* leakage analytically. One topological pass replaces
// thousands of simulations -- the classic trade-off: exact under
// independence, optimistic/pessimistic where reconvergent fanout makes
// signals correlated. Useful for instant estimates and as a cross-check of
// the Monte-Carlo baseline.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/leakage_eval.hpp"

namespace svtox::sim {

/// Propagates P(signal = 1) through the circuit. `input_probability[i]` is
/// the probability for control point i (use 0.5 everywhere for the uniform
/// random-vector model). Returns one probability per signal.
std::vector<double> propagate_probabilities(const netlist::Netlist& netlist,
                                            const std::vector<double>& input_probability);

/// Expected total leakage [nA] of `config` under independently distributed
/// signals with the given control-point probabilities.
double expected_leakage_na(const netlist::Netlist& netlist, const CircuitConfig& config,
                           const std::vector<double>& input_probability);

/// Convenience: uniform 0.5 inputs (the 10K-random-vector model).
double expected_leakage_uniform_na(const netlist::Netlist& netlist,
                                   const CircuitConfig& config);

}  // namespace svtox::sim
