#include "sim/leakage_eval.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/threads.hpp"

namespace svtox::sim {

namespace {

/// Validates `config` against the netlist and library once, returning each
/// gate's leakage table. The per-vector loops then index the tables
/// unchecked: every state a simulator can produce is < num_states, which
/// is exactly the validated table length, so the former per-lookup
/// `.at()` bounds checks were pure overhead on the hottest leakage path.
std::vector<const double*> resolve_leakage_tables(const netlist::Netlist& netlist,
                                                  const CircuitConfig& config,
                                                  const std::string& what) {
  if (config.size() != static_cast<std::size_t>(netlist.num_gates())) {
    throw ContractError(what + ": config size mismatch");
  }
  std::vector<const double*> tables(config.size());
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const GateConfig& gc = config[static_cast<std::size_t>(g)];
    const liberty::LibCell& cell = netlist.cell_of(g);
    if (gc.variant < 0 || gc.variant >= cell.num_variants()) {
      throw ContractError(what + ": variant index out of range");
    }
    const liberty::LibCellVariant& variant = cell.variant(gc.variant);
    const std::size_t num_states = cell.topology().num_states();
    if (variant.leakage_na.size() != num_states) {
      throw ContractError(what + ": leakage table size mismatch");
    }
    const std::vector<int>& perm = gc.mapping.logical_to_physical;
    if (!perm.empty()) {
      if (perm.size() != static_cast<std::size_t>(cell.num_inputs())) {
        throw ContractError(what + ": pin mapping size mismatch");
      }
      for (int p : perm) {
        if (p < 0 || p >= cell.num_inputs()) {
          throw ContractError(what + ": pin mapping entry out of range");
        }
      }
    }
    tables[static_cast<std::size_t>(g)] = variant.leakage_na.data();
  }
  return tables;
}

/// Per-gate leakage tables re-indexed by *logical* local state: the variant
/// lookup and pin-reordering are applied once per (gate, state) here instead
/// of once per (gate, vector) in the Monte-Carlo inner loop.
struct LogicalLeakTables {
  std::vector<double> flat;
  std::vector<std::size_t> offsets;  ///< Per gate, into `flat`.

  const double* gate(int g) const { return flat.data() + offsets[static_cast<std::size_t>(g)]; }
};

LogicalLeakTables resolve_logical_tables(const netlist::Netlist& netlist,
                                         const CircuitConfig& config,
                                         const std::string& what) {
  const std::vector<const double*> tables = resolve_leakage_tables(netlist, config, what);
  LogicalLeakTables logical;
  logical.offsets.resize(static_cast<std::size_t>(netlist.num_gates()));
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const GateConfig& gc = config[static_cast<std::size_t>(g)];
    logical.offsets[static_cast<std::size_t>(g)] = logical.flat.size();
    const std::uint32_t num_states = netlist.cell_of(g).topology().num_states();
    for (std::uint32_t s = 0; s < num_states; ++s) {
      logical.flat.push_back(tables[static_cast<std::size_t>(g)][gc.physical_state(s)]);
    }
  }
  return logical;
}

}  // namespace

CircuitConfig fastest_config(const netlist::Netlist& netlist) {
  CircuitConfig config(static_cast<std::size_t>(netlist.num_gates()));
  for (int g = 0; g < netlist.num_gates(); ++g) {
    config[static_cast<std::size_t>(g)].variant = netlist.cell_of(g).fastest_variant();
  }
  return config;
}

double circuit_leakage_from_values_na(const netlist::Netlist& netlist,
                                      const CircuitConfig& config,
                                      const std::vector<bool>& signal_values) {
  const std::vector<const double*> tables =
      resolve_leakage_tables(netlist, config, "circuit_leakage");
  const netlist::FlatNetlist& flat = netlist.flat();
  double total = 0.0;
  for (std::uint32_t g = 0; g < flat.num_gates(); ++g) {
    const GateConfig& gc = config[g];
    const std::uint32_t logical = local_state(flat, signal_values, g);
    total += tables[g][gc.physical_state(logical)];
  }
  return total;
}

double circuit_leakage_na(const netlist::Netlist& netlist, const CircuitConfig& config,
                          const std::vector<bool>& input_values) {
  return circuit_leakage_from_values_na(netlist, config,
                                        simulate(netlist, input_values));
}

double circuit_area(const netlist::Netlist& netlist, const CircuitConfig& config) {
  if (config.size() != static_cast<std::size_t>(netlist.num_gates())) {
    throw ContractError("circuit_area: config size mismatch");
  }
  double area = 0.0;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    area += netlist.cell_of(g).variant(config[static_cast<std::size_t>(g)].variant).area;
  }
  return area;
}

MonteCarloResult monte_carlo_leakage(const netlist::Netlist& netlist,
                                     const CircuitConfig& config, int num_vectors,
                                     std::uint64_t seed, SimBackend backend) {
  if (num_vectors < 1) throw ContractError("monte_carlo_leakage: need >= 1 vector");
  const LogicalLeakTables leak =
      resolve_logical_tables(netlist, config, "monte_carlo_leakage");
  const int num_gates = netlist.num_gates();

  Rng rng(seed);
  MonteCarloResult result;
  result.vectors = num_vectors;
  result.min_na = 1e300;
  result.max_na = -1e300;
  double sum = 0.0;

  int remaining = num_vectors;
  std::vector<std::uint64_t> pi_words(static_cast<std::size_t>(netlist.num_control_points()));
  if (backend == SimBackend::kPacked) {
    PackedBoolSim packed(netlist);
    // Flat per-gate accumulation plan, hoisted out of the pass loop: pin
    // word indices and the logical-state leak row, with no Gate/vector
    // indirections left in the hot path. 1- and 2-input gates (the bulk of
    // every library netlist) go through the fused simd::select_add kernels.
    struct GatePlan {
      std::int32_t num_pins;
      std::int32_t pin0;
      std::int32_t pin1;
      const double* leak;
    };
    const netlist::FlatNetlist& flat = netlist.flat();
    std::vector<GatePlan> plan(static_cast<std::size_t>(num_gates));
    for (int g = 0; g < num_gates; ++g) {
      const std::uint32_t* fanins = flat.fanins(static_cast<std::uint32_t>(g));
      GatePlan& p = plan[static_cast<std::size_t>(g)];
      p.num_pins = static_cast<std::int32_t>(flat.fanin_count(static_cast<std::uint32_t>(g)));
      p.pin0 = p.num_pins > 0 ? static_cast<std::int32_t>(fanins[0]) : 0;
      p.pin1 = p.num_pins > 1 ? static_cast<std::int32_t>(fanins[1]) : 0;
      p.leak = leak.gate(g);
    }
    // Per-lane totals of one 64-vector pass. Each lane takes exactly one
    // add per gate, in gate index order -- the same FP addition sequence
    // as the scalar per-vector loop, hence bit-identical totals. The
    // select_add kernels write all 64 lanes unconditionally (tail lanes
    // accumulate junk); only the first `lanes` are ever read.
    alignas(32) double totals[64];
    while (remaining > 0) {
      const int lanes = std::min(remaining, 64);
      for (auto& word : pi_words) word = rng.next_u64();
      const std::vector<std::uint64_t>& words = packed.run(pi_words);

      std::fill(totals, totals + 64, 0.0);
      const std::uint64_t mask = tail_mask(lanes);
      for (int g = 0; g < num_gates; ++g) {
        const GatePlan& p = plan[static_cast<std::size_t>(g)];
        if (p.num_pins == 2) {
          simd::select_add2(totals, words[static_cast<std::size_t>(p.pin0)],
                            words[static_cast<std::size_t>(p.pin1)], p.leak);
        } else if (p.num_pins == 1) {
          simd::select_add1(totals, words[static_cast<std::size_t>(p.pin0)],
                            p.leak);
        } else {
          const double* gate_leak = p.leak;
          for_each_state_match(flat, static_cast<std::uint32_t>(g), words, mask,
                               [&](std::uint32_t state, std::uint64_t match) {
                                 simd::scatter_add(totals, match,
                                                   gate_leak[state]);
                               });
        }
      }
      for (int lane = 0; lane < lanes; ++lane) {
        sum += totals[lane];
        result.min_na = std::min(result.min_na, totals[lane]);
        result.max_na = std::max(result.max_na, totals[lane]);
      }
      remaining -= lanes;
    }
  } else {
    // Scalar reference: identical Rng word stream, one vector at a time
    // through the single-vector simulator.
    const netlist::FlatNetlist& flat = netlist.flat();
    std::vector<bool> inputs(pi_words.size());
    while (remaining > 0) {
      const int lanes = std::min(remaining, 64);
      for (auto& word : pi_words) word = rng.next_u64();
      for (int lane = 0; lane < lanes; ++lane) {
        for (std::size_t i = 0; i < pi_words.size(); ++i) {
          inputs[i] = ((pi_words[i] >> lane) & 1u) != 0;
        }
        const std::vector<bool> values = simulate(netlist, inputs);
        double total = 0.0;
        for (int g = 0; g < num_gates; ++g) {
          total += leak.gate(g)[local_state(flat, values, static_cast<std::uint32_t>(g))];
        }
        sum += total;
        result.min_na = std::min(result.min_na, total);
        result.max_na = std::max(result.max_na, total);
      }
      remaining -= lanes;
    }
  }
  result.mean_na = sum / num_vectors;
  return result;
}

MonteCarloResult monte_carlo_leakage_parallel(const netlist::Netlist& netlist,
                                              const CircuitConfig& config,
                                              int num_vectors, std::uint64_t seed,
                                              int threads, SimBackend backend) {
  if (num_vectors < 1) throw ContractError("monte_carlo_leakage_parallel: need >= 1 vector");
  constexpr int kChunk = 1024;
  const int num_chunks = (num_vectors + kChunk - 1) / kChunk;
  threads = resolve_thread_count(threads, num_chunks);

  std::vector<MonteCarloResult> partial(static_cast<std::size_t>(num_chunks));
  std::atomic<int> next_chunk{0};
  auto worker = [&] {
    for (;;) {
      const int c = next_chunk.fetch_add(1);
      if (c >= num_chunks) return;
      const int vectors = std::min(kChunk, num_vectors - c * kChunk);
      // Per-chunk seed derived only from (seed, chunk index): the partition
      // -- and hence the estimate -- is independent of the thread count.
      const std::uint64_t chunk_seed =
          seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(c + 1));
      partial[static_cast<std::size_t>(c)] =
          monte_carlo_leakage(netlist, config, vectors, chunk_seed, backend);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  MonteCarloResult result;
  result.vectors = num_vectors;
  result.min_na = 1e300;
  result.max_na = -1e300;
  double sum = 0.0;
  for (const MonteCarloResult& p : partial) {
    sum += p.mean_na * p.vectors;
    result.min_na = std::min(result.min_na, p.min_na);
    result.max_na = std::max(result.max_na, p.max_na);
  }
  result.mean_na = sum / num_vectors;
  return result;
}

}  // namespace svtox::sim
