// Logic simulation: 2-valued, 64-way bit-parallel, and ternary (0/1/X).
//
// The ternary simulator propagates partial input states and is the engine
// behind the optimizer's leakage lower bounds during the state-tree search
// (paper Sec. 5: "bounds on the leakage with partial input state
// information are computed during the traversal of the state tree").
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace svtox::sim {

/// Simulates one input vector; returns a value for every signal.
/// `input_values[i]` is the value of primary input i, in
/// Netlist::primary_inputs() order.
std::vector<bool> simulate(const netlist::Netlist& netlist,
                           const std::vector<bool>& input_values);

/// 64 vectors at once, one per bit lane. `input_words[i]` packs the 64
/// values of primary input i. Returns a word for every signal.
std::vector<std::uint64_t> simulate64(const netlist::Netlist& netlist,
                                      const std::vector<std::uint64_t>& input_words);

/// The local input state of `gate` (bit p = value of its pin p).
std::uint32_t local_state(const netlist::Netlist& netlist,
                          const std::vector<bool>& signal_values, int gate);

/// Extracts the local input state of `gate` in `lane` of a 64-way result.
std::uint32_t local_state64(const netlist::Netlist& netlist,
                            const std::vector<std::uint64_t>& signal_words, int gate,
                            int lane);

/// Ternary value.
enum class Tri : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline Tri tri_of(bool value) { return value ? Tri::kOne : Tri::kZero; }

/// Simulates a partial input assignment; unknown inputs are X.
std::vector<Tri> simulate_ternary(const netlist::Netlist& netlist,
                                  const std::vector<Tri>& input_values);

/// Local ternary state of `gate`: the per-pin ternary values.
std::vector<Tri> local_ternary(const netlist::Netlist& netlist,
                               const std::vector<Tri>& signal_values, int gate);

/// Enumerates all full local states compatible with a ternary local state
/// (X pins free). For a k-input cell this is at most 2^k entries.
std::vector<std::uint32_t> compatible_states(const std::vector<Tri>& ternary_state);

/// A ternary local state packed as bitmasks: bit p of `ones` is set when
/// pin p carries 1, bit p of `xmask` when pin p is X (the two are
/// disjoint; a cleared bit in both means 0). The compatible full states
/// are exactly `ones | sub` for every subset `sub` of `xmask`, which the
/// bound and simulation kernels iterate allocation-free via the
/// `sub = (sub - 1) & xmask` subset walk.
struct TriMask {
  std::uint32_t ones = 0;
  std::uint32_t xmask = 0;

  bool operator==(const TriMask& other) const {
    return ones == other.ones && xmask == other.xmask;
  }
};

/// Masked local ternary state of `gate` (allocation-free `local_ternary`).
TriMask local_ternary_mask(const netlist::Netlist& netlist,
                           const std::vector<Tri>& signal_values, int gate);

// --- Flat-view overloads ---------------------------------------------------
// Same bit semantics as the Netlist versions, but reading the finalize-time
// SoA arrays: no string-bearing Gate structs, no nested vectors, and the
// bounds checks compile out in release builds. Hot consumers capture
// `netlist.flat()` once and call these in their inner loops.

inline std::uint32_t local_state(const netlist::FlatNetlist& flat,
                                 const std::vector<bool>& signal_values,
                                 std::uint32_t gate) {
  const std::uint32_t* pins = flat.fanins(gate);
  const std::uint32_t k = flat.fanin_count(gate);
  std::uint32_t state = 0;
  for (std::uint32_t pin = 0; pin < k; ++pin) {
    if (signal_values[pins[pin]]) state |= 1u << pin;
  }
  return state;
}

inline std::uint32_t local_state64(const netlist::FlatNetlist& flat,
                                   const std::vector<std::uint64_t>& signal_words,
                                   std::uint32_t gate, int lane) {
  const std::uint32_t* pins = flat.fanins(gate);
  const std::uint32_t k = flat.fanin_count(gate);
  std::uint32_t state = 0;
  for (std::uint32_t pin = 0; pin < k; ++pin) {
    if ((signal_words[pins[pin]] >> lane) & 1u) state |= 1u << pin;
  }
  return state;
}

inline TriMask local_ternary_mask(const netlist::FlatNetlist& flat,
                                  const std::vector<Tri>& signal_values,
                                  std::uint32_t gate) {
  const std::uint32_t* pins = flat.fanins(gate);
  const std::uint32_t k = flat.fanin_count(gate);
  TriMask mask;
  for (std::uint32_t pin = 0; pin < k; ++pin) {
    switch (signal_values[pins[pin]]) {
      case Tri::kZero:
        break;
      case Tri::kOne:
        mask.ones |= 1u << pin;
        break;
      case Tri::kX:
        mask.xmask |= 1u << pin;
        break;
    }
  }
  return mask;
}

/// Ternary output of a cell at a masked local state: known iff every
/// compatible completion agrees. Allocation-free; shared by the full and
/// incremental ternary simulators.
Tri ternary_output(const cellkit::CellTopology& topo, TriMask mask);

/// Same subset walk over a packed FlatNetlist::truth() word: one shift per
/// completion instead of an out-of-line topology lookup.
inline Tri ternary_output(std::uint16_t truth, TriMask mask) {
  bool saw_zero = false;
  bool saw_one = false;
  std::uint32_t sub = mask.xmask;
  for (;;) {
    (((truth >> (mask.ones | sub)) & 1u) != 0 ? saw_one : saw_zero) = true;
    if (saw_zero && saw_one) return Tri::kX;
    if (sub == 0) break;
    sub = (sub - 1) & mask.xmask;
  }
  return saw_one ? Tri::kOne : Tri::kZero;
}

}  // namespace svtox::sim
