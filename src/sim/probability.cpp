#include "sim/probability.hpp"

#include "util/error.hpp"

namespace svtox::sim {

std::vector<double> propagate_probabilities(const netlist::Netlist& netlist,
                                            const std::vector<double>& input_probability) {
  if (input_probability.size() != static_cast<std::size_t>(netlist.num_control_points())) {
    throw ContractError("propagate_probabilities: control-point count mismatch");
  }
  for (double p : input_probability) {
    if (p < 0.0 || p > 1.0) {
      throw ContractError("propagate_probabilities: probability out of [0, 1]");
    }
  }

  std::vector<double> prob(static_cast<std::size_t>(netlist.num_signals()), 0.0);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    prob[static_cast<std::size_t>(netlist.control_points()[i])] = input_probability[i];
  }

  for (int g : netlist.topological_order()) {
    const netlist::Gate& gate = netlist.gate(g);
    const cellkit::CellTopology& topo = netlist.cell_of(g).topology();
    // P(out = 1) = sum over ON-set states of prod_i P(pin_i takes state bit),
    // exact under pin independence.
    double p_one = 0.0;
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      if (!topo.output(state)) continue;
      double p_state = 1.0;
      for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
        const double p_in = prob[static_cast<std::size_t>(gate.fanins[pin])];
        p_state *= ((state >> pin) & 1u) ? p_in : 1.0 - p_in;
      }
      p_one += p_state;
    }
    prob[static_cast<std::size_t>(gate.output)] = p_one;
  }
  return prob;
}

double expected_leakage_na(const netlist::Netlist& netlist, const CircuitConfig& config,
                           const std::vector<double>& input_probability) {
  if (config.size() != static_cast<std::size_t>(netlist.num_gates())) {
    throw ContractError("expected_leakage_na: config size mismatch");
  }
  const std::vector<double> prob = propagate_probabilities(netlist, input_probability);

  double expected = 0.0;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const netlist::Gate& gate = netlist.gate(g);
    const sim::GateConfig& gc = config[static_cast<std::size_t>(g)];
    const liberty::LibCellVariant& variant = netlist.cell_of(g).variant(gc.variant);
    const std::uint32_t num_states = netlist.cell_of(g).topology().num_states();
    for (std::uint32_t state = 0; state < num_states; ++state) {
      double p_state = 1.0;
      for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
        const double p_in = prob[static_cast<std::size_t>(gate.fanins[pin])];
        p_state *= ((state >> pin) & 1u) ? p_in : 1.0 - p_in;
      }
      expected += p_state * variant.leakage_na[gc.physical_state(state)];
    }
  }
  return expected;
}

double expected_leakage_uniform_na(const netlist::Netlist& netlist,
                                   const CircuitConfig& config) {
  return expected_leakage_na(
      netlist, config,
      std::vector<double>(static_cast<std::size_t>(netlist.num_control_points()), 0.5));
}

}  // namespace svtox::sim
