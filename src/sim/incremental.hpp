// Event-driven resimulation (ternary and 2-valued).
//
// The state-tree search assigns one control point per tree level and asks
// for a leakage lower bound at every probe; a from-scratch ternary
// simulation makes each probe O(circuit). IncrementalTernarySim owns the
// signal array and re-evaluates only the transitive fanout cone of the
// changed control point (a levelized worklist over the netlist's gate
// levels), recording an undo log so the DFS backtracks in O(cone).
//
// IncrementalBoolSim is its 2-valued sibling: it keeps a fully-assigned
// Boolean valuation synchronized with the search's current sleep vector so
// leaf evaluation (opt::LeafEvaluator) can refresh per-gate local states
// for only the fanout cones of the inputs that changed since the previous
// leaf, instead of resimulating the whole circuit per leaf.
//
// Invariants (cross-checked against the from-scratch simulators in tests):
//  * `values()` always equals `simulate_ternary(netlist, input_values())`
//    (respectively `simulate(netlist, input_values())`).
//  * Each `set_input` opens one undo frame; `undo()` pops exactly one,
//    restoring every signal the frame touched in reverse write order.
//  * A gate is reported as changed iff one of its fanin signals changed
//    value during the propagation (its masked local state is stale), and
//    each such gate is reported at most once per `set_input`.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/sim.hpp"

namespace svtox::sim {

class IncrementalTernarySim {
 public:
  /// Starts with every control point (and hence every signal) at X.
  explicit IncrementalTernarySim(const netlist::Netlist& netlist);

  const netlist::Netlist& netlist() const { return *netlist_; }

  /// Current value of every signal (matches `simulate_ternary`).
  const std::vector<Tri>& values() const { return values_; }

  /// Current control-point assignment, in control_points() order.
  const std::vector<Tri>& input_values() const { return inputs_; }

  /// Sets control point `index` to `value` and re-evaluates its fanout
  /// cone. Every gate whose local ternary state changed is appended to
  /// `changed_gates` (deduplicated; pass nullptr to skip reporting).
  /// Opens an undo frame even when the value is unchanged, so set/undo
  /// calls always pair up.
  void set_input(int index, Tri value, std::vector<int>* changed_gates = nullptr);

  /// Reverts the most recent un-undone set_input in O(its cone).
  void undo();

  /// Number of set_input frames currently open.
  int frames() const { return static_cast<int>(frames_.size()); }

  /// Drops every frame and returns all signals to X.
  void reset();

 private:
  void enqueue_sinks(std::uint32_t signal);

  const netlist::Netlist* netlist_;
  const netlist::FlatNetlist* flat_;  ///< SoA view; all hot loops read this.
  std::vector<Tri> values_;   ///< Per signal.
  std::vector<Tri> inputs_;   ///< Per control point (mirror of the frames).

  struct SignalWrite {
    int signal;
    Tri previous;
  };
  struct Frame {
    std::size_t log_size;  ///< undo_log_ length when the frame opened.
    int input_index;
    Tri previous_input;
  };
  std::vector<SignalWrite> undo_log_;
  std::vector<Frame> frames_;

  // Levelized worklist scratch, reused across calls (no per-call heap
  // churn once the buckets have grown to their high-water mark).
  std::vector<std::vector<int>> level_bucket_;  ///< Gate ids per logic level.
  std::vector<std::uint64_t> gate_epoch_;       ///< Last epoch a gate was queued.
  std::uint64_t epoch_ = 0;
};

/// Event-driven 2-valued resimulation with the same set/undo contract as
/// IncrementalTernarySim. Every control point always carries a definite
/// value (there is no Boolean analogue of X), so construction fully
/// simulates the all-zero vector.
class IncrementalBoolSim {
 public:
  explicit IncrementalBoolSim(const netlist::Netlist& netlist);

  const netlist::Netlist& netlist() const { return *netlist_; }

  /// Current value of every signal (matches `simulate`).
  const std::vector<bool>& values() const { return values_; }

  /// Current control-point assignment, in control_points() order.
  const std::vector<bool>& input_values() const { return inputs_; }

  /// Sets control point `index` to `value` and re-evaluates its fanout
  /// cone. Every gate whose local state changed is appended to
  /// `changed_gates` (deduplicated per call; pass nullptr to skip
  /// reporting). Opens an undo frame even when the value is unchanged, so
  /// set/undo calls always pair up.
  void set_input(int index, bool value, std::vector<int>* changed_gates = nullptr);

  /// Reverts the most recent un-undone set_input in O(its cone).
  void undo();

  /// Drops every open frame while keeping the current valuation. The leaf
  /// evaluator advances monotonically from one sleep vector to the next and
  /// never backtracks, so without this the undo log would grow without
  /// bound over a worker's lifetime.
  void commit();

  /// Number of set_input frames currently open.
  int frames() const { return static_cast<int>(frames_.size()); }

 private:
  void enqueue_sinks(std::uint32_t signal);

  const netlist::Netlist* netlist_;
  const netlist::FlatNetlist* flat_;  ///< SoA view; all hot loops read this.
  std::vector<bool> values_;  ///< Per signal.
  std::vector<bool> inputs_;  ///< Per control point (mirror of the frames).

  struct SignalWrite {
    int signal;
    bool previous;
  };
  struct Frame {
    std::size_t log_size;  ///< undo_log_ length when the frame opened.
    int input_index;
    bool previous_input;
  };
  std::vector<SignalWrite> undo_log_;
  std::vector<Frame> frames_;

  std::vector<std::vector<int>> level_bucket_;  ///< Gate ids per logic level.
  std::vector<std::uint64_t> gate_epoch_;       ///< Last epoch a gate was queued.
  std::uint64_t epoch_ = 0;
};

}  // namespace svtox::sim
