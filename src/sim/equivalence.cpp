#include "sim/equivalence.hpp"

#include <algorithm>

#include "sim/sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::sim {

namespace {

/// Maps b's primary input/output positions onto a's, by signal name.
std::vector<int> match_by_name(const netlist::Netlist& a, const netlist::Netlist& b,
                               const std::vector<int>& a_signals,
                               const std::vector<int>& b_signals, const char* what) {
  if (a_signals.size() != b_signals.size()) {
    throw ContractError(std::string("check_equivalence: ") + what + " count mismatch");
  }
  std::vector<int> b_index_for_a(a_signals.size(), -1);
  for (std::size_t i = 0; i < a_signals.size(); ++i) {
    const std::string& name = a.signal_name(a_signals[i]);
    for (std::size_t j = 0; j < b_signals.size(); ++j) {
      if (b.signal_name(b_signals[j]) == name) {
        b_index_for_a[i] = static_cast<int>(j);
        break;
      }
    }
    if (b_index_for_a[i] < 0) {
      throw ContractError(std::string("check_equivalence: ") + what + " '" + name +
                          "' missing in second netlist");
    }
  }
  return b_index_for_a;
}

}  // namespace

EquivalenceResult check_equivalence(const netlist::Netlist& a, const netlist::Netlist& b,
                                    int num_vectors, std::uint64_t seed) {
  const std::vector<int> pi_map =
      match_by_name(a, b, a.control_points(), b.control_points(), "control point");
  const std::vector<int> po_map =
      match_by_name(a, b, a.observe_points(), b.observe_points(), "observe point");

  EquivalenceResult result;
  Rng rng(seed);
  int remaining = num_vectors;
  std::vector<std::uint64_t> words_a(a.control_points().size());
  std::vector<std::uint64_t> words_b(b.control_points().size());

  while (remaining > 0) {
    const int lanes = std::min(remaining, 64);
    for (std::size_t i = 0; i < words_a.size(); ++i) {
      words_a[i] = rng.next_u64();
      words_b[static_cast<std::size_t>(pi_map[i])] = words_a[i];
    }
    const auto values_a = simulate64(a, words_a);
    const auto values_b = simulate64(b, words_b);

    for (std::size_t o = 0; o < a.observe_points().size(); ++o) {
      const std::uint64_t wa =
          values_a[static_cast<std::size_t>(a.observe_points()[o])];
      const std::uint64_t wb = values_b[static_cast<std::size_t>(
          b.observe_points()[static_cast<std::size_t>(po_map[o])])];
      std::uint64_t diff = wa ^ wb;
      if (lanes < 64) diff &= (1ULL << lanes) - 1;
      if (diff == 0) continue;

      const int lane = __builtin_ctzll(diff);
      Counterexample cex;
      cex.inputs.resize(words_a.size());
      for (std::size_t i = 0; i < words_a.size(); ++i) {
        cex.inputs[i] = (words_a[i] >> lane) & 1;
      }
      cex.output_name = a.signal_name(a.observe_points()[o]);
      cex.value_a = (wa >> lane) & 1;
      cex.value_b = (wb >> lane) & 1;
      result.counterexample = std::move(cex);
      result.vectors_checked += lane + 1;
      return result;
    }
    result.vectors_checked += lanes;
    remaining -= lanes;
  }
  result.equivalent = true;
  return result;
}

}  // namespace svtox::sim
