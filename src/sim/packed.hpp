// Word-parallel (64-lane) packed simulation.
//
// One machine word holds one bit of 64 independent input vectors, so a
// whole gate evaluates 64 Monte-Carlo lanes in a handful of word ops. The
// kernels come from cellkit::compile_plane_program: each cell's pull-down
// series/parallel expression compiled to a postfix AND/OR program over bit
// planes, flattened here per gate with absolute signal ids. Ternary
// simulation packs 64 partial assignments as two planes per signal
// (value/X, the word-wide generalization of TriMask) and evaluates the
// same programs with Kleene connectives -- exact for every cell whose pins
// drive one device each (all standard cells; verified at compile time),
// with an exhaustive minterm fallback otherwise.
//
// Lane accounting: a batch always carries 64 lanes; callers processing
// `n < 64` tail vectors mask their accumulation with `tail_mask(n)`.
// Nothing in the simulators themselves depends on the active lane count --
// inactive lanes compute garbage that the mask discards, and the kernels
// below (histogram, leakage) take the mask explicitly.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cellkit/plane_compile.hpp"
#include "netlist/netlist.hpp"
#include "sim/sim.hpp"

namespace svtox::sim {

/// Which simulation/accumulation implementation a consumer runs.
/// kScalar is the one-vector-at-a-time bit-exact reference; kPacked is the
/// 64-lane word-parallel path. Results are bit-identical (a property test
/// enforces it); the selector exists so the reference stays reachable from
/// every entry point.
enum class SimBackend : std::uint8_t { kScalar, kPacked };

/// Process-wide default backend: kPacked, unless SVTOX_SIM_BACKEND=scalar.
SimBackend default_backend();

/// Active-lane mask for a batch carrying `lanes` (1..64) live vectors.
inline std::uint64_t tail_mask(int lanes) {
  return lanes >= 64 ? ~0ULL : (1ULL << lanes) - 1;
}

/// 64-way bit-parallel 2-valued simulator with per-cell compiled plane
/// programs. Functionally identical to simulate64() but evaluates each
/// gate in O(devices) word ops instead of O(2^k * k), and reuses its
/// signal buffer across batches.
class PackedBoolSim {
 public:
  explicit PackedBoolSim(const netlist::Netlist& netlist);

  const netlist::Netlist& netlist() const { return *netlist_; }

  /// Simulates 64 lanes: `input_words[i]` packs the values of control
  /// point i. Returns one word per signal (lane L of word s = signal s in
  /// vector L); the reference is valid until the next run().
  const std::vector<std::uint64_t>& run(const std::vector<std::uint64_t>& input_words);

  /// Signal words of the last run().
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  const netlist::Netlist* netlist_;
  std::vector<cellkit::PlaneOp> ops_;  ///< All gates' ops, signal-resolved.
  struct GateRange {
    std::int32_t begin = 0;
    std::int32_t end = 0;
    std::int32_t output = 0;
  };
  std::vector<GateRange> gates_;  ///< In topological order.
  std::vector<std::uint64_t> words_;
  int max_stack_ = 0;
};

/// 64-way packed ternary simulator over (value, X) planes.
/// planes()[s] holds lane-packed Tri values of signal s; lanes whose
/// control-point planes encode 0/1/X propagate exactly like
/// simulate_ternary on that lane's assignment.
class PackedTernarySim {
 public:
  explicit PackedTernarySim(const netlist::Netlist& netlist);

  const netlist::Netlist& netlist() const { return *netlist_; }

  /// Simulates 64 partial assignments; `input_planes[i]` packs control
  /// point i. The reference is valid until the next run().
  const std::vector<cellkit::TriWord>& run(
      const std::vector<cellkit::TriWord>& input_planes);

  const std::vector<cellkit::TriWord>& planes() const { return planes_; }

 private:
  void run_generic(int gate, int cell);

  const netlist::Netlist* netlist_;
  std::vector<cellkit::PlaneOp> ops_;
  struct GateRange {
    std::int32_t begin = 0;  ///< begin == end: exhaustive minterm fallback.
    std::int32_t end = 0;
    std::int32_t output = 0;
    std::int32_t gate = 0;
    std::int32_t cell = 0;
  };
  std::vector<GateRange> gates_;  ///< In topological order.
  /// Per library cell: the ON-set / OFF-set state lists of the fallback.
  struct CellStates {
    std::vector<std::uint32_t> on;
    std::vector<std::uint32_t> off;
  };
  std::vector<CellStates> cell_states_;
  std::vector<cellkit::TriWord> planes_;
  int max_stack_ = 0;
};

/// Calls `fn(state, match)` for every local input state of `gate` taken by
/// at least one active lane; `match` has a bit per lane at that state.
/// Every active lane appears in exactly one callback. The word-parallel
/// replacement for a per-lane local_state64 loop.
template <typename Fn>
inline void for_each_state_match(const netlist::FlatNetlist& flat, std::uint32_t gate,
                                 const std::vector<std::uint64_t>& signal_words,
                                 std::uint64_t lane_mask, Fn&& fn) {
  const std::uint32_t* pins = flat.fanins(gate);
  const int k = static_cast<int>(flat.fanin_count(gate));
  std::uint64_t pin_words[8];
  for (int p = 0; p < k; ++p) {
    pin_words[p] = signal_words[pins[p]];
  }
  const std::uint32_t num_states = 1u << k;
  for (std::uint32_t state = 0; state < num_states; ++state) {
    std::uint64_t match = lane_mask;
    for (int p = 0; p < k && match != 0; ++p) {
      match &= ((state >> p) & 1u) ? pin_words[p] : ~pin_words[p];
    }
    if (match != 0) fn(state, match);
  }
}

template <typename Fn>
inline void for_each_state_match(const netlist::Netlist& netlist, int gate,
                                 const std::vector<std::uint64_t>& signal_words,
                                 std::uint64_t lane_mask, Fn&& fn) {
  for_each_state_match(netlist.flat(), static_cast<std::uint32_t>(gate), signal_words,
                       lane_mask, std::forward<Fn>(fn));
}

/// Per-gate local-state occurrence counts over `num_vectors` uniform random
/// vectors (the Monte-Carlo state histogram): counts[g][s] = how many
/// vectors put gate g in local state s. Byte-identical across backends;
/// consumes the same Rng stream as monte_carlo_leakage for the same seed.
std::vector<std::vector<std::uint64_t>> state_histogram(
    const netlist::Netlist& netlist, int num_vectors, std::uint64_t seed,
    SimBackend backend = default_backend());

}  // namespace svtox::sim
