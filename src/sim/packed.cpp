#include "sim/packed.hpp"

#include <bit>
#include <cstdlib>
#include <string_view>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::sim {

namespace {

void check_run(const netlist::Netlist& netlist, std::size_t provided) {
  if (provided != static_cast<std::size_t>(netlist.num_control_points())) {
    throw ContractError("packed sim: control-point word count mismatch");
  }
  if (!netlist.finalized()) throw ContractError("packed sim: netlist not finalized");
}

/// Compiles (once per library cell actually instantiated) and returns the
/// per-cell plane programs, indexed by cell_index.
std::vector<cellkit::PlaneProgram> compile_programs(const netlist::Netlist& netlist) {
  const netlist::FlatNetlist& flat = netlist.flat();
  std::vector<cellkit::PlaneProgram> programs(netlist.library().cells().size());
  std::vector<bool> done(programs.size(), false);
  for (std::uint32_t g = 0; g < flat.num_gates(); ++g) {
    const std::size_t cell = flat.cell_index(g);
    if (done[cell]) continue;
    programs[cell] = cellkit::compile_plane_program(flat.topology(g));
    done[cell] = true;
  }
  return programs;
}

}  // namespace

SimBackend default_backend() {
  static const SimBackend backend = [] {
    const char* env = std::getenv("SVTOX_SIM_BACKEND");
    if (env == nullptr || *env == '\0') return SimBackend::kPacked;
    const std::string_view value(env);
    if (value == "packed") return SimBackend::kPacked;
    if (value == "scalar") return SimBackend::kScalar;
    throw ContractError("SVTOX_SIM_BACKEND must be 'packed' or 'scalar'");
  }();
  return backend;
}

PackedBoolSim::PackedBoolSim(const netlist::Netlist& netlist) : netlist_(&netlist) {
  if (!netlist.finalized()) throw ContractError("PackedBoolSim: netlist not finalized");
  const netlist::FlatNetlist& flat = netlist.flat();
  const std::vector<cellkit::PlaneProgram> programs = compile_programs(netlist);
  gates_.reserve(static_cast<std::size_t>(flat.num_gates()));
  for (std::uint32_t g : flat.topo_order()) {
    const std::uint32_t* fanins = flat.fanins(g);
    const cellkit::PlaneProgram& program = programs[flat.cell_index(g)];
    GateRange range;
    range.begin = static_cast<std::int32_t>(ops_.size());
    for (const cellkit::PlaneOp& op : program.ops) {
      cellkit::PlaneOp resolved = op;
      if (op.kind == cellkit::PlaneOp::Kind::kLoad) {
        // Resolve the cell-local pin to the gate's fanin signal id.
        resolved.pin = static_cast<int>(fanins[op.pin]);
      }
      ops_.push_back(resolved);
    }
    range.end = static_cast<std::int32_t>(ops_.size());
    range.output = static_cast<std::int32_t>(flat.output(g));
    gates_.push_back(range);
    if (program.max_stack > max_stack_) max_stack_ = program.max_stack;
  }
  words_.resize(static_cast<std::size_t>(flat.num_signals()), 0);
}

const std::vector<std::uint64_t>& PackedBoolSim::run(
    const std::vector<std::uint64_t>& input_words) {
  check_run(*netlist_, input_words.size());
  std::uint64_t* const words = words_.data();
  for (int i = 0; i < netlist_->num_control_points(); ++i) {
    words[netlist_->control_points()[static_cast<std::size_t>(i)]] =
        input_words[static_cast<std::size_t>(i)];
  }
  std::uint64_t stack_storage[16];
  std::vector<std::uint64_t> stack_heap;
  std::uint64_t* stack = stack_storage;
  if (max_stack_ > 16) {
    stack_heap.resize(static_cast<std::size_t>(max_stack_));
    stack = stack_heap.data();
  }
  const cellkit::PlaneOp* const ops = ops_.data();
  for (const GateRange& gate : gates_) {
    int top = -1;
    for (std::int32_t i = gate.begin; i < gate.end; ++i) {
      const cellkit::PlaneOp op = ops[i];
      switch (op.kind) {
        case cellkit::PlaneOp::Kind::kLoad:
          stack[++top] = words[op.pin];
          break;
        case cellkit::PlaneOp::Kind::kAnd:
          stack[top - 1] &= stack[top];
          --top;
          break;
        case cellkit::PlaneOp::Kind::kOr:
          stack[top - 1] |= stack[top];
          --top;
          break;
      }
    }
    words[gate.output] = ~stack[0];
  }
  return words_;
}

PackedTernarySim::PackedTernarySim(const netlist::Netlist& netlist)
    : netlist_(&netlist) {
  if (!netlist.finalized()) throw ContractError("PackedTernarySim: netlist not finalized");
  const netlist::FlatNetlist& flat = netlist.flat();
  const std::vector<cellkit::PlaneProgram> programs = compile_programs(netlist);
  cell_states_.resize(programs.size());
  std::vector<bool> states_done(programs.size(), false);
  gates_.reserve(static_cast<std::size_t>(flat.num_gates()));
  for (std::uint32_t g : flat.topo_order()) {
    const std::uint32_t* fanins = flat.fanins(g);
    const std::size_t cell = flat.cell_index(g);
    const cellkit::PlaneProgram& program = programs[cell];
    GateRange range;
    range.begin = range.end = static_cast<std::int32_t>(ops_.size());
    if (program.exact_ternary) {
      for (const cellkit::PlaneOp& op : program.ops) {
        cellkit::PlaneOp resolved = op;
        if (op.kind == cellkit::PlaneOp::Kind::kLoad) {
          resolved.pin = static_cast<int>(fanins[op.pin]);
        }
        ops_.push_back(resolved);
      }
      range.end = static_cast<std::int32_t>(ops_.size());
      if (program.max_stack > max_stack_) max_stack_ = program.max_stack;
    } else if (!states_done[cell]) {
      // Kleene evaluation would be pessimistic for this cell: precompute
      // the ON/OFF-set state lists its exact minterm fallback scans.
      const cellkit::CellTopology& topo = flat.topology(g);
      for (std::uint32_t s = 0; s < topo.num_states(); ++s) {
        (topo.output(s) ? cell_states_[cell].on : cell_states_[cell].off).push_back(s);
      }
      states_done[cell] = true;
    }
    range.output = static_cast<std::int32_t>(flat.output(g));
    range.gate = static_cast<std::int32_t>(g);
    range.cell = static_cast<std::int32_t>(cell);
    gates_.push_back(range);
  }
  planes_.resize(static_cast<std::size_t>(flat.num_signals()));
}

void PackedTernarySim::run_generic(int gate, int cell) {
  // Exact three-valued evaluation by completion sets: a lane's output can
  // be 1 iff some ON-set state is compatible with its pin planes, can be 0
  // iff some OFF-set state is. Known iff exactly one of the two holds.
  const netlist::FlatNetlist& flat = netlist_->flat();
  const std::uint32_t* fanins = flat.fanins(static_cast<std::uint32_t>(gate));
  const int k = static_cast<int>(flat.fanin_count(static_cast<std::uint32_t>(gate)));
  std::uint64_t can_hi[8];  // Pin can carry 1 (value 1 or X).
  std::uint64_t can_lo[8];  // Pin can carry 0 (value 0 or X).
  for (int p = 0; p < k; ++p) {
    const cellkit::TriWord pin = planes_[fanins[p]];
    can_hi[p] = pin.ones | pin.xs;
    can_lo[p] = ~pin.ones;
  }
  const CellStates& states = cell_states_[static_cast<std::size_t>(cell)];
  std::uint64_t can_one = 0;
  for (std::uint32_t s : states.on) {
    std::uint64_t term = ~0ULL;
    for (int p = 0; p < k; ++p) term &= ((s >> p) & 1u) ? can_hi[p] : can_lo[p];
    can_one |= term;
  }
  std::uint64_t can_zero = 0;
  for (std::uint32_t s : states.off) {
    std::uint64_t term = ~0ULL;
    for (int p = 0; p < k; ++p) term &= ((s >> p) & 1u) ? can_hi[p] : can_lo[p];
    can_zero |= term;
  }
  planes_[flat.output(static_cast<std::uint32_t>(gate))] = {can_one & ~can_zero,
                                                            can_one & can_zero};
}

const std::vector<cellkit::TriWord>& PackedTernarySim::run(
    const std::vector<cellkit::TriWord>& input_planes) {
  check_run(*netlist_, input_planes.size());
  cellkit::TriWord* const planes = planes_.data();
  for (int i = 0; i < netlist_->num_control_points(); ++i) {
    planes[netlist_->control_points()[static_cast<std::size_t>(i)]] =
        input_planes[static_cast<std::size_t>(i)];
  }
  cellkit::TriWord stack_storage[16];
  std::vector<cellkit::TriWord> stack_heap;
  cellkit::TriWord* stack = stack_storage;
  if (max_stack_ > 16) {
    stack_heap.resize(static_cast<std::size_t>(max_stack_));
    stack = stack_heap.data();
  }
  const cellkit::PlaneOp* const ops = ops_.data();
  for (const GateRange& gate : gates_) {
    if (gate.begin == gate.end) {
      run_generic(gate.gate, gate.cell);
      continue;
    }
    int top = -1;
    for (std::int32_t i = gate.begin; i < gate.end; ++i) {
      const cellkit::PlaneOp op = ops[i];
      switch (op.kind) {
        case cellkit::PlaneOp::Kind::kLoad:
          stack[++top] = planes[op.pin];
          break;
        case cellkit::PlaneOp::Kind::kAnd:
          stack[top - 1] = cellkit::tri_and(stack[top - 1], stack[top]);
          --top;
          break;
        case cellkit::PlaneOp::Kind::kOr:
          stack[top - 1] = cellkit::tri_or(stack[top - 1], stack[top]);
          --top;
          break;
      }
    }
    planes[gate.output] = cellkit::tri_not(stack[0]);
  }
  return planes_;
}

std::vector<std::vector<std::uint64_t>> state_histogram(const netlist::Netlist& netlist,
                                                        int num_vectors,
                                                        std::uint64_t seed,
                                                        SimBackend backend) {
  if (!netlist.finalized()) throw ContractError("state_histogram: netlist not finalized");
  if (num_vectors < 0) throw ContractError("state_histogram: negative vector count");
  const int num_gates = netlist.num_gates();
  std::vector<std::vector<std::uint64_t>> counts(static_cast<std::size_t>(num_gates));
  for (int g = 0; g < num_gates; ++g) {
    counts[static_cast<std::size_t>(g)].assign(
        netlist.cell_of(g).topology().num_states(), 0);
  }

  Rng rng(seed);
  std::vector<std::uint64_t> pi_words(
      static_cast<std::size_t>(netlist.num_control_points()));
  PackedBoolSim packed(netlist);
  std::vector<bool> scalar_inputs;
  for (int done = 0; done < num_vectors; done += 64) {
    const int lanes = std::min(64, num_vectors - done);
    for (std::uint64_t& word : pi_words) word = rng.next_u64();
    if (backend == SimBackend::kPacked) {
      const std::vector<std::uint64_t>& words = packed.run(pi_words);
      const std::uint64_t mask = tail_mask(lanes);
      const netlist::FlatNetlist& flat = netlist.flat();
      for (int g = 0; g < num_gates; ++g) {
        std::uint64_t* gate_counts = counts[static_cast<std::size_t>(g)].data();
        for_each_state_match(flat, static_cast<std::uint32_t>(g), words, mask,
                             [gate_counts](std::uint32_t state, std::uint64_t match) {
                               gate_counts[state] +=
                                   static_cast<std::uint64_t>(std::popcount(match));
                             });
      }
    } else {
      // Scalar reference: same Rng word stream, one lane at a time.
      scalar_inputs.resize(pi_words.size());
      for (int lane = 0; lane < lanes; ++lane) {
        for (std::size_t i = 0; i < pi_words.size(); ++i) {
          scalar_inputs[i] = ((pi_words[i] >> lane) & 1u) != 0;
        }
        const std::vector<bool> values = simulate(netlist, scalar_inputs);
        for (int g = 0; g < num_gates; ++g) {
          ++counts[static_cast<std::size_t>(g)][local_state(netlist, values, g)];
        }
      }
    }
  }
  return counts;
}

}  // namespace svtox::sim
