// Circuit-level standby leakage evaluation.
//
// A circuit configuration assigns each gate one library variant plus a
// pin-reordering. Leakage at a given primary-input vector is the sum of
// per-gate table lookups: the gate's logical local state is mapped through
// its pin reordering to the physical state the variant's characterization
// is indexed by.
#pragma once

#include <cstdint>
#include <vector>

#include "cellkit/state.hpp"
#include "netlist/netlist.hpp"
#include "sim/packed.hpp"
#include "sim/sim.hpp"

namespace svtox::sim {

/// Per-gate selection: which library variant is instantiated and how the
/// logical inputs are mapped onto physical pins.
struct GateConfig {
  int variant = 0;  ///< Index into the gate's LibCell variants.
  cellkit::PinMapping mapping;  ///< Empty logical_to_physical = identity.

  std::uint32_t physical_state(std::uint32_t logical_state) const {
    return mapping.logical_to_physical.empty()
               ? logical_state
               : cellkit::map_state(mapping, logical_state);
  }
};

/// One GateConfig per gate, indexed by gate id.
using CircuitConfig = std::vector<GateConfig>;

/// All gates at their fastest (all low-Vt, thin-Tox) version, no reordering.
CircuitConfig fastest_config(const netlist::Netlist& netlist);

/// Total circuit leakage [nA] at the PI vector `input_values`.
double circuit_leakage_na(const netlist::Netlist& netlist, const CircuitConfig& config,
                          const std::vector<bool>& input_values);

/// Total circuit leakage [nA] given a precomputed full-signal valuation.
double circuit_leakage_from_values_na(const netlist::Netlist& netlist,
                                      const CircuitConfig& config,
                                      const std::vector<bool>& signal_values);

/// Result of a Monte-Carlo leakage estimate.
struct MonteCarloResult {
  double mean_na = 0.0;
  double min_na = 0.0;
  double max_na = 0.0;
  int vectors = 0;
};

/// Average leakage over `num_vectors` uniform random input vectors
/// (the paper's "average leakage by random (10K) vectors" baseline).
/// Deterministic in `seed` and bit-identical across backends: both consume
/// the same Rng word stream, and the packed path's scatter-add keeps every
/// lane's additions in gate order -- the exact FP sequence of the scalar
/// per-vector loop, so no reassociation tolerance is needed. kPacked runs
/// 64 vectors per pass through PackedBoolSim; kScalar simulates one vector
/// at a time (the reference).
MonteCarloResult monte_carlo_leakage(const netlist::Netlist& netlist,
                                     const CircuitConfig& config, int num_vectors,
                                     std::uint64_t seed,
                                     SimBackend backend = default_backend());

/// Total cell area of the circuit under `config` [unit areas], including
/// the mixed-Vt/Tox spacing penalties of the selected versions (the cost
/// axis of the paper's Table 5 uniform-stack discussion).
double circuit_area(const netlist::Netlist& netlist, const CircuitConfig& config);

/// Multi-threaded Monte Carlo. The vector stream is partitioned into fixed
/// 1024-vector chunks with independent per-chunk generators, so the result
/// is bit-identical for any `threads` value (including 1) -- parallelism
/// never changes the estimate. `threads` <= 0 uses the hardware count.
MonteCarloResult monte_carlo_leakage_parallel(const netlist::Netlist& netlist,
                                              const CircuitConfig& config,
                                              int num_vectors, std::uint64_t seed,
                                              int threads = 0,
                                              SimBackend backend = default_backend());

}  // namespace svtox::sim
