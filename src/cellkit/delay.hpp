// Drive-resistance / delay modeling of cell variants.
//
// Delay is modeled through switching-path resistance: the transition driven
// by input pin `pin` flows through that pin's device and, for series
// structures, through its series neighbours. High-Vt and thick-Tox devices
// multiply their drive resistance by calibrated factors (TechParams), so a
// variant's delay is the nominal NLDM delay scaled by the ratio of assigned
// to nominal path resistance. Non-switching series devices are weighted
// below the switching device, which reproduces the pin-position delay
// asymmetry of the paper's Table 1.
#pragma once

#include "cellkit/analyzer.hpp"
#include "cellkit/topology.hpp"

namespace svtox::cellkit {

/// Output transition edge.
enum class Edge : std::uint8_t { kRise, kFall };

/// Switching-path resistance [kOhm] seen when `pin` drives an output `edge`,
/// under the given per-device corner assignment. Rise transitions pull
/// through the PUN, fall transitions through the PDN.
double path_resistance_kohm(const CellTopology& topo, const model::TechParams& tech,
                            const CellAssignment& assignment, int pin, Edge edge);

/// Ratio of assigned to nominal path resistance for (pin, edge); this is the
/// variant's delay multiplier relative to the minimum-delay version (the
/// "normalized delay" of the paper's Table 1).
double delay_factor(const CellTopology& topo, const model::TechParams& tech,
                    const CellAssignment& assignment, int pin, Edge edge);

/// Nominal (all low-Vt, thin-Tox) intrinsic delay [ps] of (pin, edge) for a
/// given input slew [ps] and output load [fF]. The NLDM characterizer
/// samples this function.
double nominal_delay_ps(const CellTopology& topo, const model::TechParams& tech,
                        int pin, Edge edge, double input_slew_ps, double load_ff);

/// Nominal output slew [ps] of (pin, edge) at the given input slew and load.
double nominal_output_slew_ps(const CellTopology& topo, const model::TechParams& tech,
                              int pin, Edge edge, double input_slew_ps, double load_ff);

}  // namespace svtox::cellkit
