// Topology -> bit-plane program compilation.
//
// A static CMOS cell's output is the complement of its pull-down
// conduction, and the pull-down network is a series/parallel expression
// over the input pins (series = AND of conduction, parallel = OR). That
// expression compiles directly into a short postfix program of word-wide
// plane operations: LOAD a pin's 64-lane word, AND/OR the top of an
// evaluation stack, and complement the final result. Evaluating the
// program once processes 64 input vectors -- this is what lets
// sim::PackedBoolSim evaluate a NAND2 in three word ops instead of the
// sum-of-minterms loop's eight.
//
// The same program evaluates 64-lane *ternary* values when each operand is
// a (ones, xs) plane pair combined with Kleene AND/OR/NOT. Kleene
// evaluation of an expression is exact (equal to checking every compatible
// completion, sim::ternary_output) whenever no input appears in more than
// one device leaf -- true for all the standard cells -- and pessimistic
// otherwise. compile_plane_program() verifies both behaviours against the
// cell's truth table at compile time: a Boolean mismatch is a contract
// violation (the networks would not be complementary), while a ternary
// mismatch just clears `exact_ternary`, making sim::PackedTernarySim fall
// back to its exact minterm kernel for that cell.
#pragma once

#include <cstdint>
#include <vector>

#include "cellkit/topology.hpp"

namespace svtox::cellkit {

/// One word-wide operation of a compiled plane program.
struct PlaneOp {
  enum class Kind : std::uint8_t {
    kLoad,  ///< Push pin `pin`'s plane(s) onto the evaluation stack.
    kAnd,   ///< Pop two operands, push their (Kleene) conjunction.
    kOr,    ///< Pop two operands, push their (Kleene) disjunction.
  };
  Kind kind = Kind::kLoad;
  int pin = -1;  ///< Valid for kLoad only.
};

/// A compiled cell kernel: postfix ops over the pull-down expression; the
/// evaluator complements the single remaining stack entry to produce the
/// output plane(s).
struct PlaneProgram {
  std::vector<PlaneOp> ops;
  int num_inputs = 0;
  int max_stack = 0;        ///< Deepest evaluation-stack use.
  bool exact_ternary = false;  ///< Kleene evaluation == sim::ternary_output.
};

/// Compiles (and truth-table-verifies) the plane program of a cell.
/// Throws ContractError if the program disagrees with topo.output() on any
/// state -- impossible for a complementary gate, so a throw means the
/// topology itself is inconsistent.
PlaneProgram compile_plane_program(const CellTopology& topo);

/// 64 ternary lanes as disjoint bit planes: bit L of `ones` set when lane L
/// carries 1, bit L of `xs` when it is unknown; both clear means 0. The
/// word-wide generalization of sim::TriMask's pin encoding.
struct TriWord {
  std::uint64_t ones = 0;
  std::uint64_t xs = 0;
};

/// Kleene strong-logic connectives on 64 lanes at once. Each preserves the
/// planes' disjointness invariant.
inline TriWord tri_and(TriWord a, TriWord b) {
  // 0 if either side is 0; 1 iff both are 1; X otherwise.
  const std::uint64_t ones = a.ones & b.ones;
  return {ones, ~ones & (a.ones | a.xs) & (b.ones | b.xs)};
}

inline TriWord tri_or(TriWord a, TriWord b) {
  // 1 if either side is 1; 0 iff both are 0; X otherwise.
  const std::uint64_t ones = a.ones | b.ones;
  return {ones, ~ones & (a.xs | b.xs)};
}

inline TriWord tri_not(TriWord a) {
  return {~(a.ones | a.xs), a.xs};
}

}  // namespace svtox::cellkit
