// Cell version (variant) generation -- the paper's Section 4.
//
// For every canonical input state of a cell we construct up to four
// delay/leakage trade-off points:
//   (a) minimum delay    -- all low-Vt, thin-Tox (shared across states),
//   (b) minimum leakage  -- every significant leakage path suppressed,
//   (c) fast fall        -- only pull-up (PMOS) assignments from (b),
//   (d) fast rise        -- only pull-down (NMOS) assignments from (b).
// Identical assignments are shared between states, which is what reduces
// the NAND2 to 5 versions and the NOR2 to 8 (paper Table 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellkit/analyzer.hpp"
#include "cellkit/state.hpp"
#include "cellkit/topology.hpp"

namespace svtox::cellkit {

/// Which trade-off point a version realizes for some state.
enum class TradeoffPoint : std::uint8_t {
  kMinDelay = 0,
  kFastRise = 1,
  kFastFall = 2,
  kMinLeakage = 3,
};

const char* to_string(TradeoffPoint point);

/// One manufacturable version of a cell (a member of the swap library).
struct CellVersion {
  std::string name;           ///< e.g. "NAND2_v2".
  CellAssignment assignment;  ///< Per-device Vt/Tox corners.

  bool is_fastest() const {
    for (const DeviceAssign& a : assignment) {
      if (!a.is_nominal()) return false;
    }
    return true;
  }
};

/// The trade-off points applicable to one canonical input state.
struct StateTradeoffs {
  std::uint32_t canonical_state = 0;
  /// version_index[point] = index into CellVersionSet::versions, or -1 when
  /// the point degenerated into another one and was dropped.
  int version_index[4] = {-1, -1, -1, -1};

  /// Distinct applicable versions, in trade-off-point order.
  std::vector<int> distinct_versions() const;
};

/// Library-generation options (paper Sections 4 and 6 / Table 5).
struct VariantOptions {
  /// 4 trade-off points per state when true, else 2 (min-delay, min-leak).
  bool four_point = true;
  /// Force every series-stacked network to share one Vt assignment.
  bool uniform_stack = false;
  /// Strip all thick-Tox assignments; yields the dual-Vt-only library used
  /// by the state+Vt baseline [12].
  bool vt_only = false;
};

/// The complete version set of one cell archetype.
class CellVersionSet {
 public:
  CellVersionSet(const CellTopology* topo, std::vector<CellVersion> versions,
                 std::vector<StateTradeoffs> by_state);

  const CellTopology& topology() const { return *topo_; }
  const std::vector<CellVersion>& versions() const { return versions_; }
  int num_versions() const { return static_cast<int>(versions_.size()); }

  /// Index of the all-fast version (always present).
  int fastest_version() const { return fastest_; }

  /// Trade-off points for a canonical state. The state must be canonical
  /// (i.e. PinMapping::canonical_state of some input state).
  const StateTradeoffs& tradeoffs(std::uint32_t canonical_state) const;

  /// All per-canonical-state records.
  const std::vector<StateTradeoffs>& all_tradeoffs() const { return by_state_; }

 private:
  const CellTopology* topo_;
  std::vector<CellVersion> versions_;
  std::vector<StateTradeoffs> by_state_;
  std::vector<int> state_lookup_;  ///< canonical state -> by_state_ index.
  int fastest_ = 0;
};

/// Generates the version set of `topo` under `options`.
CellVersionSet generate_versions(const CellTopology& topo, const model::TechParams& tech,
                                 const VariantOptions& options);

}  // namespace svtox::cellkit
