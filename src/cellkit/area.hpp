// Cell area estimation under mixed Vt/Tox assignments.
//
// The paper (Sec. 4, citing design-rule guidance [17]) notes that assigning
// Vt or Tox per-transistor inside a stack "may result in the need for
// increased spacing between the transistors in order not to violate design
// rules", that Tox spacing rules "are expected to be more severe" than Vt
// ones, and that uniform-stack control trades slightly higher leakage for
// slightly lower cell area. This model makes that trade-off measurable:
//
//   area(version) = sum(device gate areas)
//                 + vt_boundary_area  per adjacent series pair with mixed Vt
//                 + tox_boundary_area per adjacent series pair with mixed Tox
//
// Adjacency is shared-diffusion adjacency along series chains (where
// abutment is broken by an implant/oxide boundary). Areas are in normalized
// unit-transistor areas.
#pragma once

#include "cellkit/analyzer.hpp"
#include "cellkit/topology.hpp"

namespace svtox::cellkit {

/// Area rules for mixed-assignment spacing.
struct AreaRules {
  double area_per_unit_width = 1.0;
  /// Extra area where two series-adjacent devices differ in Vt.
  double vt_boundary_area = 0.4;
  /// Extra area where two series-adjacent devices differ in Tox
  /// (paper: "more severe" than the Vt rule).
  double tox_boundary_area = 1.2;
};

/// Area of one cell under a per-device assignment [unit areas].
double cell_area(const CellTopology& topo, const AreaRules& rules,
                 const CellAssignment& assignment);

/// Number of series-adjacent device pairs with mismatched Vt (first) and
/// Tox (second) -- exposed for tests and reporting.
struct BoundaryCount {
  int vt = 0;
  int tox = 0;
};
BoundaryCount count_boundaries(const CellTopology& topo, const CellAssignment& assignment);

}  // namespace svtox::cellkit
