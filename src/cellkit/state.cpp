#include "cellkit/state.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::cellkit {

PinMapping canonicalize(const CellTopology& topo, std::uint32_t state) {
  if (state >= topo.num_states()) throw ContractError("canonicalize: state out of range");

  PinMapping mapping;
  mapping.logical_to_physical.resize(topo.num_inputs());
  for (int pin = 0; pin < topo.num_inputs(); ++pin) {
    mapping.logical_to_physical[pin] = pin;
  }

  for (std::size_t g = 0; g < topo.symmetric_groups().size(); ++g) {
    const std::vector<int>& group = topo.symmetric_groups()[g];
    // The group's conducting devices move above its blocking ones in the
    // series network that contains it: ones-first for NMOS-series (NAND)
    // groups, zeros-first for PMOS-series (NOR) groups. Stable within equal
    // bits for determinism.
    const bool ones_first = topo.group_ones_first(g);
    std::vector<int> leaders;
    std::vector<int> trailers;
    for (int pin : group) {
      const bool is_one = (state >> pin) & 1u;
      (is_one == ones_first ? leaders : trailers).push_back(pin);
    }
    std::size_t slot = 0;
    for (int pin : leaders) mapping.logical_to_physical[pin] = group[slot++];
    for (int pin : trailers) mapping.logical_to_physical[pin] = group[slot++];
  }

  mapping.canonical_state = map_state(mapping, state);
  return mapping;
}

std::uint32_t map_state(const PinMapping& mapping, std::uint32_t logical_state) {
  std::uint32_t physical = 0;
  for (std::size_t i = 0; i < mapping.logical_to_physical.size(); ++i) {
    if ((logical_state >> i) & 1u) physical |= 1u << mapping.logical_to_physical[i];
  }
  return physical;
}

std::string state_to_string(std::uint32_t state, int num_inputs) {
  std::string out(static_cast<std::size_t>(num_inputs), '0');
  for (int pin = 0; pin < num_inputs; ++pin) {
    if ((state >> pin) & 1u) out[pin] = '1';
  }
  return out;
}

std::uint32_t state_from_string(const std::string& bits) {
  std::uint32_t state = 0;
  for (std::size_t pin = 0; pin < bits.size(); ++pin) {
    if (bits[pin] == '1') {
      state |= 1u << pin;
    } else if (bits[pin] != '0') {
      throw ContractError("state_from_string: bad bit character");
    }
  }
  return state;
}

}  // namespace svtox::cellkit
