// State-dependent electrical analysis of a cell.
//
// Given a cell topology and an input state, classifies every transistor's
// leakage situation (paper Sec. 2-3):
//   * OFF transistors on the blocking network carry subthreshold current,
//     suppressed super-linearly by series stacking;
//   * ON transistors whose channel reaches their "strong" rail tunnel at the
//     full gate bias; ON transistors stacked above a non-conducting device
//     see only ~one Vt of bias and tunnel negligibly;
//   * OFF transistors with a terminal at the far rail exhibit small reverse
//     gate-drain overlap tunneling (EDT);
//   * OFF transistors whose Vds collapsed to ~0 leak only residually.
//
// The classification is purely structural; `cell_leakage` folds it with the
// model's calibrated currents and a per-device Vt/Tox assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "cellkit/topology.hpp"
#include "model/leakage.hpp"

namespace svtox::cellkit {

/// Vt/Tox corner of one transistor.
struct DeviceAssign {
  model::VtClass vt = model::VtClass::kLow;
  model::ToxClass tox = model::ToxClass::kThin;

  bool operator==(const DeviceAssign&) const = default;
  bool is_nominal() const {
    return vt == model::VtClass::kLow && tox == model::ToxClass::kThin;
  }
};

/// Per-device corner choice for a whole cell, indexed by device index.
using CellAssignment = std::vector<DeviceAssign>;

/// Returns an all-low-Vt / all-thin assignment for the cell.
CellAssignment nominal_assignment(const CellTopology& topo);

/// Electrical situation of one transistor in one input state.
struct DeviceSituation {
  bool on = false;
  bool in_conducting_network = false;
  model::GateBias gate_bias = model::GateBias::kNone;
  /// Valid for OFF devices only: whether the device still sees drain bias.
  model::SubthresholdBias sub_bias = model::SubthresholdBias::kZeroVds;
};

/// Full classification of a cell at one input state.
struct CellStateAnalysis {
  bool output = false;
  std::vector<DeviceSituation> devices;  ///< Indexed by device index.
};

/// Classifies every transistor of `topo` at input `state`.
CellStateAnalysis classify(const CellTopology& topo, std::uint32_t state);

/// Total standby leakage of the cell at `state` under `assignment`.
model::LeakageBreakdown cell_leakage(const CellTopology& topo,
                                     const model::TechParams& tech,
                                     std::uint32_t state,
                                     const CellAssignment& assignment);

/// The transistors that carry *significant* leakage at `state` and would be
/// targeted by the paper's minimum-leakage version:
///  * `tox_targets` — ON devices with full-channel tunneling whose device
///    type has non-negligible Igate (NMOS under SiO2);
///  * `vt_targets` — a minimal set of OFF devices whose high-Vt assignment
///    suppresses every blocking path (one device per series group, all
///    branches of parallel groups).
struct LeakyDevices {
  std::vector<int> tox_targets;
  std::vector<int> vt_targets;
};
LeakyDevices find_leaky_devices(const CellTopology& topo, const model::TechParams& tech,
                                std::uint32_t state);

}  // namespace svtox::cellkit
