// Input-state canonicalization via pin reordering.
//
// The paper (Sec. 3, Fig. 2(d)/(e)) exploits that functionally symmetric
// pins can be reordered so that, in a series NMOS stack, conducting
// transistors sit *above* non-conducting ones. The device above an OFF
// device sees only ~one Vt of gate bias, so its tunneling current becomes
// negligible and no thick-oxide assignment is needed. Reordered states then
// share cell versions (Sec. 4: NAND2 state 01 needs no version beyond 10's).
//
// We implement reordering as state canonicalization: within each symmetric
// pin group, logical inputs carrying a 1 are mapped to the lowest physical
// pin positions — which, by the SpNode series convention (child 0 adjacent
// to the output), places ON devices at the top of pull-down stacks.
#pragma once

#include <cstdint>
#include <vector>

#include "cellkit/topology.hpp"

namespace svtox::cellkit {

/// Result of canonicalizing a gate's local input state.
struct PinMapping {
  /// The canonical state the cell versions are generated for.
  std::uint32_t canonical_state = 0;
  /// logical_to_physical[i] = physical pin position that logical input i
  /// drives after reordering. Identity when no reordering is needed.
  std::vector<int> logical_to_physical;

  bool is_identity() const {
    for (std::size_t i = 0; i < logical_to_physical.size(); ++i) {
      if (logical_to_physical[i] != static_cast<int>(i)) return false;
    }
    return true;
  }
};

/// Canonicalizes `state` under the cell's pin symmetries.
PinMapping canonicalize(const CellTopology& topo, std::uint32_t state);

/// Applies a logical->physical mapping to a logical state, producing the
/// state as seen at the physical pins.
std::uint32_t map_state(const PinMapping& mapping, std::uint32_t logical_state);

/// Renders a state as a bit string "b0b1..bk" (pin 0 first), e.g. NAND2
/// state with pin0=1, pin1=0 renders as "10".
std::string state_to_string(std::uint32_t state, int num_inputs);

/// Parses the output of state_to_string.
std::uint32_t state_from_string(const std::string& bits);

}  // namespace svtox::cellkit
