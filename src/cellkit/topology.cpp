#include "cellkit/topology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::cellkit {

namespace {

/// Flattens one network's device leaves into the device table.
void flatten_network(const SpNode& network, model::DeviceType type, double base_width,
                     const model::TechParams& tech, std::vector<Device>& devices) {
  std::vector<int> pins;
  collect_pins(network, pins);
  for (std::size_t leaf = 0; leaf < pins.size(); ++leaf) {
    Device dev;
    dev.type = type;
    dev.pin = pins[leaf];
    // Partial stack up-sizing: a device on a k-deep series path is widened
    // to recover part of the stacked drive strength (full compensation is
    // too area-expensive in practice).
    const int k = longest_path_through(network, static_cast<int>(leaf));
    dev.width = base_width * (1.0 + tech.stack_upsize_slope * (k - 1));
    dev.leaf_index = static_cast<int>(leaf);
    devices.push_back(dev);
  }
}

}  // namespace

CellTopology::CellTopology(std::string name, int num_inputs, SpNode pull_down,
                           SpNode pull_up, std::vector<std::vector<int>> symmetric_groups,
                           const model::TechParams& tech)
    : name_(std::move(name)),
      num_inputs_(num_inputs),
      pull_down_(std::move(pull_down)),
      pull_up_(std::move(pull_up)),
      symmetric_groups_(std::move(symmetric_groups)) {
  if (num_inputs_ < 1 || num_inputs_ > 6) {
    throw ContractError("CellTopology: inputs must be in [1, 6]");
  }

  // Unit NMOS width 1; PMOS gets the mobility compensation factor so an
  // inverter has balanced rise/fall drive.
  flatten_network(pull_down_, model::DeviceType::kNmos, 1.0, tech, devices_);
  num_pdn_devices_ = static_cast<int>(devices_.size());
  flatten_network(pull_up_, model::DeviceType::kPmos, tech.pmos_r_mult, tech, devices_);

  // Every pin must appear in both networks exactly once for a complementary
  // static gate of the families we support.
  std::vector<int> pdn_count(num_inputs_, 0);
  std::vector<int> pun_count(num_inputs_, 0);
  for (int d = 0; d < num_pdn_devices_; ++d) pdn_count.at(devices_[d].pin)++;
  for (int d = num_pdn_devices_; d < num_devices(); ++d) pun_count.at(devices_[d].pin)++;
  for (int pin = 0; pin < num_inputs_; ++pin) {
    if (pdn_count[pin] != 1 || pun_count[pin] != 1) {
      throw ContractError("CellTopology '" + name_ +
                          "': every pin must drive exactly one device per network");
    }
  }

  // Canonicalization direction per symmetric group: follow whichever
  // network stacks the group's devices in series *with each other* -- i.e.
  // whose lowest common series/parallel ancestor of the group's leaves is a
  // series node (reordering within the group then changes stack positions).
  struct GroupScan {
    // Returns how many group leaves the subtree contains, and records the
    // kind of the lowest node containing all of them.
    static int scan(const SpNode& node, const std::vector<bool>& pin_in_group,
                    int group_size, int& cursor, SpNode::Kind& ancestor_kind,
                    bool& found) {
      if (node.is_device()) {
        ++cursor;
        return pin_in_group[static_cast<std::size_t>(node.pin)] ? 1 : 0;
      }
      int count = 0;
      for (const SpNode& child : node.children) {
        count += scan(child, pin_in_group, group_size, cursor, ancestor_kind, found);
      }
      if (!found && count == group_size) {
        ancestor_kind = node.kind;
        found = true;
      }
      return count;
    }
  };

  for (const std::vector<int>& group : symmetric_groups_) {
    std::vector<bool> pin_in_group(static_cast<std::size_t>(num_inputs_), false);
    for (int pin : group) pin_in_group[static_cast<std::size_t>(pin)] = true;

    auto ancestor = [&](const SpNode& net) {
      SpNode::Kind kind = SpNode::Kind::kParallel;
      bool found = false;
      int cursor = 0;
      GroupScan::scan(net, pin_in_group, static_cast<int>(group.size()), cursor, kind,
                      found);
      return kind;
    };
    const bool nmos_series = ancestor(pull_down_) == SpNode::Kind::kSeries;
    const bool pmos_series = ancestor(pull_up_) == SpNode::Kind::kSeries;
    // NMOS-series groups sort ones first; PMOS-series-only groups sort
    // zeros first; fully parallel groups default to ones-first.
    group_ones_first_.push_back(nmos_series || !pmos_series);
  }

  // Input capacitance: NMOS gate cap + PMOS gate cap on the pin.
  pin_cap_ff_.assign(num_inputs_, 0.0);
  for (const Device& dev : devices_) {
    pin_cap_ff_[dev.pin] += tech.cin_ff_per_unit_w * dev.width;
  }

  // Truth table, and a consistency check that the networks are complementary
  // (exactly one conducts in every state).
  truth_.resize(num_states());
  for (std::uint32_t state = 0; state < num_states(); ++state) {
    std::vector<bool> pdn_on(num_pdn_devices_);
    for (int d = 0; d < num_pdn_devices_; ++d) {
      pdn_on[d] = (state >> devices_[d].pin) & 1u;  // NMOS on when input high
    }
    std::vector<bool> pun_on(num_devices() - num_pdn_devices_);
    for (int d = num_pdn_devices_; d < num_devices(); ++d) {
      pun_on[d - num_pdn_devices_] = !((state >> devices_[d].pin) & 1u);
    }
    const bool down = conducts(pull_down_, pdn_on);
    const bool up = conducts(pull_up_, pun_on);
    if (down == up) {
      throw ContractError("CellTopology '" + name_ +
                          "': networks are not complementary");
    }
    truth_[state] = up;
  }
}

bool CellTopology::output(std::uint32_t state) const {
  if (state >= num_states()) throw ContractError("CellTopology::output: state out of range");
  return truth_[state];
}

bool CellTopology::device_on(int device_index, std::uint32_t state) const {
  const Device& dev = devices_.at(device_index);
  const bool input_high = (state >> dev.pin) & 1u;
  return dev.type == model::DeviceType::kNmos ? input_high : !input_high;
}

double CellTopology::pin_capacitance_ff(int pin) const { return pin_cap_ff_.at(pin); }

double CellTopology::max_pin_capacitance_ff() const {
  return *std::max_element(pin_cap_ff_.begin(), pin_cap_ff_.end());
}

namespace {

/// NAND-k: k NMOS in series (pin 0 on top, adjacent to the output),
/// k PMOS in parallel.
CellTopology make_nand(const std::string& name, int k, const model::TechParams& tech) {
  std::vector<SpNode> series_devs;
  std::vector<SpNode> parallel_devs;
  std::vector<int> all_pins;
  for (int pin = 0; pin < k; ++pin) {
    series_devs.push_back(SpNode::device(pin));
    parallel_devs.push_back(SpNode::device(pin));
    all_pins.push_back(pin);
  }
  return CellTopology(name, k, SpNode::series(std::move(series_devs)),
                      SpNode::parallel(std::move(parallel_devs)), {all_pins}, tech);
}

/// NOR-k: k NMOS in parallel, k PMOS in series (pin 0 on top, adjacent to
/// the VDD rail -- series children are listed output-side first, so child 0
/// of the pull-up stack is adjacent to the *output*).
CellTopology make_nor(const std::string& name, int k, const model::TechParams& tech) {
  std::vector<SpNode> series_devs;
  std::vector<SpNode> parallel_devs;
  std::vector<int> all_pins;
  for (int pin = 0; pin < k; ++pin) {
    series_devs.push_back(SpNode::device(pin));
    parallel_devs.push_back(SpNode::device(pin));
    all_pins.push_back(pin);
  }
  return CellTopology(name, k, SpNode::parallel(std::move(parallel_devs)),
                      SpNode::series(std::move(series_devs)), {all_pins}, tech);
}

/// INV: single NMOS / single PMOS.
CellTopology make_inv(const model::TechParams& tech) {
  return CellTopology("INV", 1, SpNode::device(0), SpNode::device(0), {}, tech);
}

/// AOI21: out = !(A*B + C). Pins: 0=A, 1=B, 2=C; A and B are symmetric.
CellTopology make_aoi21(const model::TechParams& tech) {
  SpNode pdn = SpNode::parallel(
      {SpNode::series({SpNode::device(0), SpNode::device(1)}), SpNode::device(2)});
  SpNode pun = SpNode::series(
      {SpNode::parallel({SpNode::device(0), SpNode::device(1)}), SpNode::device(2)});
  return CellTopology("AOI21", 3, std::move(pdn), std::move(pun), {{0, 1}}, tech);
}

/// OAI21: out = !((A+B) * C). Pins: 0=A, 1=B, 2=C; A and B are symmetric.
CellTopology make_oai21(const model::TechParams& tech) {
  SpNode pdn = SpNode::series(
      {SpNode::parallel({SpNode::device(0), SpNode::device(1)}), SpNode::device(2)});
  SpNode pun = SpNode::parallel(
      {SpNode::series({SpNode::device(0), SpNode::device(1)}), SpNode::device(2)});
  return CellTopology("OAI21", 3, std::move(pdn), std::move(pun), {{0, 1}}, tech);
}

/// AOI22: out = !(A*B + C*D). Pins: 0=A, 1=B, 2=C, 3=D; {A,B} and {C,D}
/// are symmetric pairs.
CellTopology make_aoi22(const model::TechParams& tech) {
  SpNode pdn = SpNode::parallel({SpNode::series({SpNode::device(0), SpNode::device(1)}),
                                 SpNode::series({SpNode::device(2), SpNode::device(3)})});
  SpNode pun = SpNode::series({SpNode::parallel({SpNode::device(0), SpNode::device(1)}),
                               SpNode::parallel({SpNode::device(2), SpNode::device(3)})});
  return CellTopology("AOI22", 4, std::move(pdn), std::move(pun), {{0, 1}, {2, 3}}, tech);
}

/// OAI22: out = !((A+B) * (C+D)).
CellTopology make_oai22(const model::TechParams& tech) {
  SpNode pdn = SpNode::series({SpNode::parallel({SpNode::device(0), SpNode::device(1)}),
                               SpNode::parallel({SpNode::device(2), SpNode::device(3)})});
  SpNode pun = SpNode::parallel({SpNode::series({SpNode::device(0), SpNode::device(1)}),
                                 SpNode::series({SpNode::device(2), SpNode::device(3)})});
  return CellTopology("OAI22", 4, std::move(pdn), std::move(pun), {{0, 1}, {2, 3}}, tech);
}

}  // namespace

CellTopology make_standard_cell(const std::string& name, const model::TechParams& tech) {
  if (name == "INV") return make_inv(tech);
  if (name == "NAND2") return make_nand(name, 2, tech);
  if (name == "NAND3") return make_nand(name, 3, tech);
  if (name == "NAND4") return make_nand(name, 4, tech);
  if (name == "NOR2") return make_nor(name, 2, tech);
  if (name == "NOR3") return make_nor(name, 3, tech);
  if (name == "NOR4") return make_nor(name, 4, tech);
  if (name == "AOI21") return make_aoi21(tech);
  if (name == "OAI21") return make_oai21(tech);
  if (name == "AOI22") return make_aoi22(tech);
  if (name == "OAI22") return make_oai22(tech);
  throw ContractError("make_standard_cell: unknown cell '" + name + "'");
}

const std::vector<std::string>& standard_cell_names() {
  static const std::vector<std::string> names = {
      "INV",  "NAND2", "NAND3", "NAND4", "NOR2",  "NOR3",
      "NOR4", "AOI21", "OAI21", "AOI22", "OAI22"};
  return names;
}

}  // namespace svtox::cellkit
