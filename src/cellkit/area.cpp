#include "cellkit/area.hpp"

#include "util/error.hpp"

namespace svtox::cellkit {

namespace {

/// Walks an SP expression tracking, for each subtree, its first and last
/// device leaf (the devices that abut neighbouring subtrees in a series
/// chain). Series nodes add the adjacency between consecutive children.
struct Span {
  int first = -1;
  int last = -1;
};

Span walk(const SpNode& node, int& cursor,
          std::vector<std::pair<int, int>>& adjacent) {
  if (node.is_device()) {
    const int index = cursor++;
    return {index, index};
  }
  Span span;
  Span prev{-1, -1};
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const Span child = walk(node.children[i], cursor, adjacent);
    if (node.kind == SpNode::Kind::kSeries) {
      if (i > 0 && prev.last >= 0 && child.first >= 0) {
        adjacent.push_back({prev.last, child.first});
      }
      if (span.first < 0) span.first = child.first;
      span.last = child.last;
      prev = child;
    } else {
      // Parallel fingers: no shared-diffusion boundary modeled; the group
      // abuts its series neighbours through its first branch.
      if (span.first < 0) span.first = child.first;
      span.last = child.last;
    }
  }
  return span;
}

}  // namespace

BoundaryCount count_boundaries(const CellTopology& topo, const CellAssignment& assignment) {
  if (assignment.size() != static_cast<std::size_t>(topo.num_devices())) {
    throw ContractError("count_boundaries: assignment size mismatch");
  }
  std::vector<std::pair<int, int>> adjacent;
  int cursor = 0;
  walk(topo.pull_down(), cursor, adjacent);
  walk(topo.pull_up(), cursor, adjacent);

  BoundaryCount count;
  for (const auto& [a, b] : adjacent) {
    if (assignment[static_cast<std::size_t>(a)].vt !=
        assignment[static_cast<std::size_t>(b)].vt) {
      ++count.vt;
    }
    if (assignment[static_cast<std::size_t>(a)].tox !=
        assignment[static_cast<std::size_t>(b)].tox) {
      ++count.tox;
    }
  }
  return count;
}

double cell_area(const CellTopology& topo, const AreaRules& rules,
                 const CellAssignment& assignment) {
  double area = 0.0;
  for (const Device& dev : topo.devices()) area += rules.area_per_unit_width * dev.width;
  const BoundaryCount count = count_boundaries(topo, assignment);
  area += count.vt * rules.vt_boundary_area;
  area += count.tox * rules.tox_boundary_area;
  return area;
}

}  // namespace svtox::cellkit
