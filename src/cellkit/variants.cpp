#include "cellkit/variants.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::cellkit {

const char* to_string(TradeoffPoint point) {
  switch (point) {
    case TradeoffPoint::kMinDelay: return "min_delay";
    case TradeoffPoint::kFastRise: return "fast_rise";
    case TradeoffPoint::kFastFall: return "fast_fall";
    case TradeoffPoint::kMinLeakage: return "min_leakage";
  }
  return "?";
}

std::vector<int> StateTradeoffs::distinct_versions() const {
  std::vector<int> out;
  for (int idx : version_index) {
    if (idx < 0) continue;
    if (std::find(out.begin(), out.end(), idx) == out.end()) out.push_back(idx);
  }
  return out;
}

CellVersionSet::CellVersionSet(const CellTopology* topo, std::vector<CellVersion> versions,
                               std::vector<StateTradeoffs> by_state)
    : topo_(topo), versions_(std::move(versions)), by_state_(std::move(by_state)) {
  state_lookup_.assign(topo_->num_states(), -1);
  for (std::size_t i = 0; i < by_state_.size(); ++i) {
    state_lookup_.at(by_state_[i].canonical_state) = static_cast<int>(i);
  }
  fastest_ = -1;
  for (std::size_t v = 0; v < versions_.size(); ++v) {
    if (versions_[v].is_fastest()) fastest_ = static_cast<int>(v);
  }
  if (fastest_ < 0) throw ContractError("CellVersionSet: missing all-fast version");
}

const StateTradeoffs& CellVersionSet::tradeoffs(std::uint32_t canonical_state) const {
  if (canonical_state >= state_lookup_.size() || state_lookup_[canonical_state] < 0) {
    throw ContractError("CellVersionSet::tradeoffs: state is not canonical for " +
                        topo_->name());
  }
  return by_state_[static_cast<std::size_t>(state_lookup_[canonical_state])];
}

namespace {

/// Expands an assignment so every series-structured network with any high-Vt
/// device becomes uniformly high-Vt (manufacturing-friendly stacks,
/// paper Sec. 4 / Table 5).
void make_stack_uniform(const CellTopology& topo, CellAssignment& assignment) {
  struct Span {
    int first;
    int count;
    const SpNode* net;
  };
  const Span spans[2] = {
      {0, topo.num_pull_down_devices(), &topo.pull_down()},
      {topo.num_pull_down_devices(), topo.num_devices() - topo.num_pull_down_devices(),
       &topo.pull_up()},
  };
  for (const Span& span : spans) {
    if (longest_path(*span.net) <= 1) continue;  // no stacking in this network
    bool any_high = false;
    for (int d = span.first; d < span.first + span.count; ++d) {
      any_high = any_high || assignment[d].vt == model::VtClass::kHigh;
    }
    if (!any_high) continue;
    for (int d = span.first; d < span.first + span.count; ++d) {
      assignment[d].vt = model::VtClass::kHigh;
    }
  }
}

}  // namespace

CellVersionSet generate_versions(const CellTopology& topo, const model::TechParams& tech,
                                 const VariantOptions& options) {
  std::vector<CellVersion> versions;
  auto intern = [&](CellAssignment assignment) {
    for (std::size_t v = 0; v < versions.size(); ++v) {
      if (versions[v].assignment == assignment) return static_cast<int>(v);
    }
    CellVersion version;
    version.name = topo.name() + "_v" + std::to_string(versions.size());
    version.assignment = std::move(assignment);
    versions.push_back(std::move(version));
    return static_cast<int>(versions.size() - 1);
  };

  // Version 0 is always the all-fast cell, shared by every state.
  const int fast_index = intern(nominal_assignment(topo));

  // Enumerate canonical states only; non-canonical states reach their
  // versions through pin reordering.
  std::vector<bool> seen(topo.num_states(), false);
  std::vector<StateTradeoffs> by_state;
  for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
    const PinMapping mapping = canonicalize(topo, state);
    if (seen[mapping.canonical_state]) continue;
    seen[mapping.canonical_state] = true;
    const std::uint32_t canon = mapping.canonical_state;

    const LeakyDevices leaky = find_leaky_devices(topo, tech, canon);

    CellAssignment min_leak = nominal_assignment(topo);
    for (int d : leaky.vt_targets) min_leak[d].vt = model::VtClass::kHigh;
    if (!options.vt_only) {
      for (int d : leaky.tox_targets) min_leak[d].tox = model::ToxClass::kThick;
    }
    if (options.uniform_stack) make_stack_uniform(topo, min_leak);

    StateTradeoffs record;
    record.canonical_state = canon;
    record.version_index[static_cast<int>(TradeoffPoint::kMinDelay)] = fast_index;

    const int min_leak_index = intern(min_leak);
    record.version_index[static_cast<int>(TradeoffPoint::kMinLeakage)] = min_leak_index;

    if (options.four_point) {
      // Fast rise: only pull-down (NMOS) assignments -> the pull-up path is
      // untouched. Fast fall: only pull-up (PMOS) assignments.
      CellAssignment fast_rise = nominal_assignment(topo);
      CellAssignment fast_fall = nominal_assignment(topo);
      for (int d = 0; d < topo.num_devices(); ++d) {
        if (d < topo.num_pull_down_devices()) {
          fast_rise[d] = min_leak[d];
        } else {
          fast_fall[d] = min_leak[d];
        }
      }
      // Intermediate points that degenerate into (a) or (b) add no version.
      if (fast_rise != min_leak && fast_rise != versions[fast_index].assignment) {
        record.version_index[static_cast<int>(TradeoffPoint::kFastRise)] =
            intern(std::move(fast_rise));
      }
      if (fast_fall != min_leak && fast_fall != versions[fast_index].assignment) {
        record.version_index[static_cast<int>(TradeoffPoint::kFastFall)] =
            intern(std::move(fast_fall));
      }
    }
    by_state.push_back(record);
  }

  return CellVersionSet(&topo, std::move(versions), std::move(by_state));
}

}  // namespace svtox::cellkit
