#include "cellkit/analyzer.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace svtox::cellkit {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Explicit node/edge view of one network, for rail reachability analysis.
/// Node 0 is the cell output; node 1 is the network's rail (GND for the
/// pull-down network, VDD for the pull-up network).
struct NetGraph {
  struct Edge {
    int a = 0;          ///< Output-side node.
    int b = 0;          ///< Rail-side node.
    int device = 0;     ///< Global device index.
  };
  static constexpr int kOutputNode = 0;
  static constexpr int kRailNode = 1;
  int num_nodes = 2;
  std::vector<Edge> edges;
};

void build_graph(const SpNode& node, int a, int b, int& device_cursor, NetGraph& graph) {
  switch (node.kind) {
    case SpNode::Kind::kDevice:
      graph.edges.push_back({a, b, device_cursor++});
      return;
    case SpNode::Kind::kSeries: {
      int prev = a;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        const bool last = i + 1 == node.children.size();
        const int next = last ? b : graph.num_nodes++;
        build_graph(node.children[i], prev, next, device_cursor, graph);
        prev = next;
      }
      return;
    }
    case SpNode::Kind::kParallel:
      for (const SpNode& child : node.children) {
        build_graph(child, a, b, device_cursor, graph);
      }
      return;
  }
}

NetGraph make_graph(const SpNode& network, int first_device_index) {
  NetGraph graph;
  int cursor = first_device_index;
  build_graph(network, NetGraph::kOutputNode, NetGraph::kRailNode, cursor, graph);
  return graph;
}

/// Flood-fills node reachability through conducting devices from `seeds`.
std::vector<bool> reach(const NetGraph& graph, const std::vector<bool>& on_by_device,
                        const std::vector<int>& seeds) {
  std::vector<bool> reached(graph.num_nodes, false);
  for (int s : seeds) reached[s] = true;
  // Small graphs (<= ~10 edges): iterate to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const NetGraph::Edge& e : graph.edges) {
      if (!on_by_device[e.device]) continue;
      if (reached[e.a] != reached[e.b]) {
        reached[e.a] = reached[e.b] = true;
        changed = true;
      }
    }
  }
  return reached;
}

/// Result of the recursive subthreshold analysis of a (possibly blocking)
/// network expression.
struct SubLeak {
  bool conducting = false;
  double current_na = 0.0;  ///< Effective Isub through this subtree [nA].
  int off_depth = 0;        ///< Series depth of OFF devices along the path.
};

double stack_factor(const model::TechParams& tech, int depth) {
  return tech.stack_factor[std::min(depth, 4) - 1];
}

}  // namespace

CellAssignment nominal_assignment(const CellTopology& topo) {
  return CellAssignment(static_cast<std::size_t>(topo.num_devices()));
}

CellStateAnalysis classify(const CellTopology& topo, std::uint32_t state) {
  if (state >= topo.num_states()) throw ContractError("classify: state out of range");

  CellStateAnalysis analysis;
  analysis.output = topo.output(state);
  analysis.devices.resize(static_cast<std::size_t>(topo.num_devices()));

  std::vector<bool> on(static_cast<std::size_t>(topo.num_devices()));
  for (int d = 0; d < topo.num_devices(); ++d) on[d] = topo.device_on(d, state);

  const NetGraph pdn = make_graph(topo.pull_down(), 0);
  const NetGraph pun = make_graph(topo.pull_up(), topo.num_pull_down_devices());

  // Rail/output potential seeds. The PDN's rail is GND (low); the PUN's rail
  // is VDD (high); the shared output node takes the logic value.
  auto classify_network = [&](const NetGraph& graph, bool is_pdn) {
    std::vector<int> low_seeds;
    std::vector<int> high_seeds;
    (is_pdn ? low_seeds : high_seeds).push_back(NetGraph::kRailNode);
    (analysis.output ? high_seeds : low_seeds).push_back(NetGraph::kOutputNode);

    const std::vector<bool> reach_low = reach(graph, on, low_seeds);
    const std::vector<bool> reach_high = reach(graph, on, high_seeds);
    const bool network_conducts = is_pdn ? !analysis.output : analysis.output;

    for (const NetGraph::Edge& e : graph.edges) {
      DeviceSituation& sit = analysis.devices[e.device];
      const model::DeviceType type = topo.devices()[e.device].type;
      sit.on = on[e.device];
      sit.in_conducting_network = network_conducts;

      if (sit.on) {
        // Full channel tunneling only when the channel can reach the
        // device's strong rail (GND for NMOS, VDD for PMOS) -- otherwise the
        // channel floats to within one Vt of the gate and tunneling is
        // negligible (paper Fig. 3(f)).
        const bool strong = type == model::DeviceType::kNmos
                                ? (reach_low[e.a] || reach_low[e.b])
                                : (reach_high[e.a] || reach_high[e.b]);
        sit.gate_bias = strong ? model::GateBias::kFullChannel
                               : model::GateBias::kReducedChannel;
      } else {
        // Reverse overlap tunneling when the drain sits at the far rail.
        const bool far_rail = type == model::DeviceType::kNmos
                                  ? (reach_high[e.a] || reach_high[e.b])
                                  : (reach_low[e.a] || reach_low[e.b]);
        sit.gate_bias =
            far_rail ? model::GateBias::kReverseOverlap : model::GateBias::kNone;
        // An OFF device still sees drain bias unless both terminals are tied
        // to its own network's driven potential (conducting network) --
        // blocking-path devices are handled by the series/parallel current
        // analysis and marked kFullVds here.
        const bool both_tied = (reach_low[e.a] || reach_high[e.a]) &&
                               (reach_low[e.b] || reach_high[e.b]) && network_conducts;
        sit.sub_bias = both_tied ? model::SubthresholdBias::kZeroVds
                                 : model::SubthresholdBias::kFullVds;
      }
    }
  };

  classify_network(pdn, /*is_pdn=*/true);
  classify_network(pun, /*is_pdn=*/false);
  return analysis;
}

namespace {

/// Recursive subthreshold current of a network expression under `state` and
/// `assignment`. `device_cursor` walks the device table in leaf order.
SubLeak network_isub(const SpNode& node, const CellTopology& topo,
                     const model::TechParams& tech, std::uint32_t state,
                     const CellAssignment& assignment, int& device_cursor) {
  if (node.is_device()) {
    const int dev_index = device_cursor++;
    const Device& dev = topo.devices()[dev_index];
    if (topo.device_on(dev_index, state)) return {true, kInf, 0};
    const double full = model::isub_na(tech, dev.type, assignment[dev_index].vt,
                                       dev.width, model::SubthresholdBias::kFullVds,
                                       /*series_off_depth=*/1);
    return {false, full, 1};
  }

  std::vector<SubLeak> children;
  children.reserve(node.children.size());
  for (const SpNode& child : node.children) {
    children.push_back(network_isub(child, topo, tech, state, assignment, device_cursor));
  }

  if (node.kind == SpNode::Kind::kSeries) {
    bool all_conduct = true;
    int depth = 0;
    double min_unstacked = kInf;
    for (const SubLeak& c : children) {
      if (c.conducting) continue;
      all_conduct = false;
      depth += c.off_depth;
      min_unstacked = std::min(min_unstacked, c.current_na / stack_factor(tech, c.off_depth));
    }
    if (all_conduct) return {true, kInf, 0};
    return {false, min_unstacked * stack_factor(tech, depth), depth};
  }

  // Parallel: any conducting branch shorts the group; otherwise branch
  // currents add and the shallowest branch dominates the stack depth.
  bool any_conduct = false;
  double sum = 0.0;
  int depth = std::numeric_limits<int>::max();
  for (const SubLeak& c : children) {
    if (c.conducting) {
      any_conduct = true;
    } else {
      sum += c.current_na;
      depth = std::min(depth, c.off_depth);
    }
  }
  if (any_conduct) return {true, kInf, 0};
  return {false, sum, depth};
}

}  // namespace

model::LeakageBreakdown cell_leakage(const CellTopology& topo,
                                     const model::TechParams& tech,
                                     std::uint32_t state,
                                     const CellAssignment& assignment) {
  if (assignment.size() != static_cast<std::size_t>(topo.num_devices())) {
    throw ContractError("cell_leakage: assignment size mismatch");
  }
  const CellStateAnalysis analysis = classify(topo, state);

  model::LeakageBreakdown total;

  // Subthreshold: the blocking network carries the stacked path current...
  const bool pdn_blocks = analysis.output;  // output high => pull-down blocks
  const SpNode& blocking = pdn_blocks ? topo.pull_down() : topo.pull_up();
  int cursor = pdn_blocks ? 0 : topo.num_pull_down_devices();
  const SubLeak blocked = network_isub(blocking, topo, tech, state, assignment, cursor);
  if (!blocked.conducting) total.isub_na += blocked.current_na;

  // ...plus residual Vds~0 leakage of OFF devices in the conducting network.
  for (int d = 0; d < topo.num_devices(); ++d) {
    const DeviceSituation& sit = analysis.devices[d];
    if (sit.on || !sit.in_conducting_network) continue;
    if (sit.sub_bias != model::SubthresholdBias::kZeroVds) continue;
    const Device& dev = topo.devices()[d];
    total.isub_na += model::isub_na(tech, dev.type, assignment[d].vt, dev.width,
                                    model::SubthresholdBias::kZeroVds, 1);
  }

  // Gate tunneling of every device per its bias classification.
  for (int d = 0; d < topo.num_devices(); ++d) {
    const Device& dev = topo.devices()[d];
    total.igate_na += model::igate_na(tech, dev.type, assignment[d].tox, dev.width,
                                      analysis.devices[d].gate_bias);
  }
  return total;
}

namespace {

/// Minimal high-Vt set that suppresses every blocking path: one device per
/// series group, every branch of parallel groups.
///
/// Which series device gets the assignment matters for version sharing
/// (paper Table 2): the choice must land on the same physical stack position
/// across all blocking input states. The pin-reorder canonicalization moves
/// conducting devices to the low positions of every series-stacked symmetric
/// group (ones-first for NMOS-series, zeros-first for PMOS-series), so OFF
/// devices always fill a stack from its *last* position -- picking the last
/// blocking child reproduces the paper's NAND2 Fig. 3(e)/(f) sharing (state
/// 00's high-Vt device is the same bottom transistor that state 10 needs)
/// and the NOR3 count of 9.
void minimal_vt_set(const SpNode& node, const CellTopology& topo, std::uint32_t state,
                    int& device_cursor, std::vector<int>& out) {
  struct Child {
    const SpNode* node;
    int first_device;
    bool conducting;
    int device_count;
  };

  if (node.is_device()) {
    const int dev_index = device_cursor++;
    if (!topo.device_on(dev_index, state)) out.push_back(dev_index);
    return;
  }

  // Pre-scan children for conduction and device spans.
  std::vector<Child> children;
  int scan_cursor = device_cursor;
  for (const SpNode& child : node.children) {
    Child c{&child, scan_cursor, false, device_count(child)};
    std::vector<bool> on(static_cast<std::size_t>(c.device_count));
    for (int i = 0; i < c.device_count; ++i) on[i] = topo.device_on(scan_cursor + i, state);
    c.conducting = conducts(child, on);
    scan_cursor += c.device_count;
    children.push_back(c);
  }

  if (node.kind == SpNode::Kind::kParallel) {
    // All blocking branches must be suppressed.
    for (const Child& c : children) {
      int cursor = c.first_device;
      if (!c.conducting) {
        minimal_vt_set(*c.node, topo, state, cursor, out);
      }
    }
  } else {
    // Series: one blocking child suffices; take the last one -- the
    // position that stays blocked across all blocking states of this stack
    // under the canonicalization.
    const Child* chosen = nullptr;
    for (const Child& c : children) {
      if (!c.conducting) chosen = &c;
    }
    if (chosen != nullptr) {
      int cursor = chosen->first_device;
      minimal_vt_set(*chosen->node, topo, state, cursor, out);
    }
  }
  device_cursor = scan_cursor;
}

}  // namespace

LeakyDevices find_leaky_devices(const CellTopology& topo, const model::TechParams& tech,
                                std::uint32_t state) {
  LeakyDevices leaky;
  const CellStateAnalysis analysis = classify(topo, state);

  // Thick-oxide targets: full-channel tunneling devices of a type whose
  // Igate is worth suppressing (PMOS under SiO2 is an order of magnitude
  // down and is skipped, exactly as the paper argues in Sec. 2/4).
  for (int d = 0; d < topo.num_devices(); ++d) {
    if (analysis.devices[d].gate_bias != model::GateBias::kFullChannel) continue;
    const Device& dev = topo.devices()[d];
    const bool worthwhile =
        dev.type == model::DeviceType::kNmos || tech.igate_p_ratio >= 0.25;
    if (worthwhile) leaky.tox_targets.push_back(d);
  }

  // High-Vt targets: minimal blocking set of the non-conducting network.
  const bool pdn_blocks = analysis.output;
  const SpNode& blocking = pdn_blocks ? topo.pull_down() : topo.pull_up();
  int cursor = pdn_blocks ? 0 : topo.num_pull_down_devices();
  minimal_vt_set(blocking, topo, state, cursor, leaky.vt_targets);
  return leaky;
}

}  // namespace svtox::cellkit
