// Transistor-level topology of a static CMOS library cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellkit/sp_network.hpp"
#include "model/tech.hpp"

namespace svtox::cellkit {

/// One transistor of a cell, flattened out of the SP expressions.
/// Devices are numbered with all pull-down (NMOS) devices first, in
/// collect_pins order, followed by all pull-up (PMOS) devices.
struct Device {
  model::DeviceType type = model::DeviceType::kNmos;
  int pin = -1;        ///< Input pin driving the gate.
  double width = 1.0;  ///< In unit widths; includes stack up-sizing.
  int leaf_index = 0;  ///< Leaf position within its own network.
};

/// The logic function and transistor structure of one cell archetype
/// (e.g. NAND2). Immutable after construction.
class CellTopology {
 public:
  /// Builds a complementary static gate from its pull-down expression.
  /// The pull-up network must be supplied explicitly (it is the structural
  /// dual, but AOI/OAI cells have specific stack orderings).
  /// `symmetric_groups` lists sets of mutually interchangeable pins.
  CellTopology(std::string name, int num_inputs, SpNode pull_down, SpNode pull_up,
               std::vector<std::vector<int>> symmetric_groups,
               const model::TechParams& tech);

  const std::string& name() const { return name_; }
  int num_inputs() const { return num_inputs_; }
  std::uint32_t num_states() const { return 1u << num_inputs_; }

  const SpNode& pull_down() const { return pull_down_; }
  const SpNode& pull_up() const { return pull_up_; }

  /// All devices; pull-down devices first.
  const std::vector<Device>& devices() const { return devices_; }
  int num_devices() const { return static_cast<int>(devices_.size()); }
  int num_pull_down_devices() const { return num_pdn_devices_; }

  /// Pin-symmetry groups (each a set of interchangeable pin indices).
  const std::vector<std::vector<int>>& symmetric_groups() const {
    return symmetric_groups_;
  }

  /// Canonicalization direction of symmetric group `g`: true = inputs
  /// carrying 1 take the group's lowest pin positions. Chosen so that ON
  /// devices sit *above* OFF devices in whichever network stacks the group
  /// in series: ones-first when the group is series in the pull-down
  /// (NAND-like), zeros-first when series in the pull-up (NOR-like). Either
  /// way the conducting devices end up with reduced gate bias.
  bool group_ones_first(std::size_t g) const { return group_ones_first_.at(g); }

  /// Logic value of the output for an input state (bit i of `state` is the
  /// value at pin i).
  bool output(std::uint32_t state) const;

  /// True if `device_index`'s transistor conducts in `state`.
  bool device_on(int device_index, std::uint32_t state) const;

  /// Total input capacitance presented at `pin` [fF].
  double pin_capacitance_ff(int pin) const;

  /// Worst-case (largest) input pin capacitance [fF].
  double max_pin_capacitance_ff() const;

 private:
  std::string name_;
  int num_inputs_;
  SpNode pull_down_;
  SpNode pull_up_;
  std::vector<std::vector<int>> symmetric_groups_;
  std::vector<bool> group_ones_first_;
  std::vector<Device> devices_;
  int num_pdn_devices_ = 0;
  std::vector<double> pin_cap_ff_;
  std::vector<bool> truth_;  ///< Output per state, indexed by state.
};

/// Factory for the standard-cell archetypes used throughout the paper.
/// Supported names: INV, NAND2, NAND3, NAND4, NOR2, NOR3, NOR4, AOI21, OAI21.
/// Throws ContractError for unknown names.
CellTopology make_standard_cell(const std::string& name, const model::TechParams& tech);

/// All supported archetype names, in library order.
const std::vector<std::string>& standard_cell_names();

}  // namespace svtox::cellkit
