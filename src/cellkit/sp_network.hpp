// Series/parallel transistor network expressions.
//
// Static CMOS cells are modeled as a pull-down network (NMOS) and a
// complementary pull-up network (PMOS), each a series/parallel expression
// over the input pins. This is sufficient for the cell families the paper
// uses (INV, NAND, NOR, AOI, OAI) and keeps the electrical analysis exact.
//
// Conventions:
//  * A series node lists its children *from the output side towards the
//    rail*: child 0 of a pull-down series stack is the topmost transistor
//    (adjacent to the output), the last child touches GND. This ordering is
//    what makes "position in the stack" meaningful for the paper's
//    pin-reordering argument (Sec. 3, Fig. 2(d)/(e)).
//  * A device leaf carries the index of the input pin driving its gate.
#pragma once

#include <cstdint>
#include <vector>

namespace svtox::cellkit {

/// One node of a series/parallel network expression.
struct SpNode {
  enum class Kind : std::uint8_t { kDevice, kSeries, kParallel };

  Kind kind = Kind::kDevice;
  int pin = -1;                   ///< Input pin index (device leaves only).
  std::vector<SpNode> children;   ///< Sub-expressions (series/parallel only).

  static SpNode device(int pin_index);
  static SpNode series(std::vector<SpNode> children);
  static SpNode parallel(std::vector<SpNode> children);

  bool is_device() const { return kind == Kind::kDevice; }
};

/// Number of device leaves in the expression.
int device_count(const SpNode& node);

/// Appends the pin index of every device leaf in expression order
/// (series children visited output-side first).
void collect_pins(const SpNode& node, std::vector<int>& pins);

/// Length (device count) of the longest rail-to-output path through the
/// network: series sums, parallel takes the max.
int longest_path(const SpNode& node);

/// Length of the longest rail-to-output path that passes through the
/// `target`-th device leaf (leaves numbered in collect_pins order).
/// Used for stack-aware device sizing.
int longest_path_through(const SpNode& node, int target_leaf);

/// True if the network conducts when `device_on[leaf]` tells whether each
/// device leaf (in collect_pins order) is conducting.
bool conducts(const SpNode& node, const std::vector<bool>& device_on);

}  // namespace svtox::cellkit
