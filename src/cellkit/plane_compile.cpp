#include "cellkit/plane_compile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::cellkit {

namespace {

/// Emits the postfix ops of `node` and returns the subexpression's peak
/// stack depth (relative to an empty stack).
int emit(const SpNode& node, std::vector<PlaneOp>& ops) {
  if (node.is_device()) {
    ops.push_back({PlaneOp::Kind::kLoad, node.pin});
    return 1;
  }
  const PlaneOp::Kind fold = node.kind == SpNode::Kind::kSeries
                                 ? PlaneOp::Kind::kAnd
                                 : PlaneOp::Kind::kOr;
  int peak = 0;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    // Child i evaluates on top of the i-th..1st children already folded
    // into one stack slot (children after the first fold immediately).
    const int held = i == 0 ? 0 : 1;
    peak = std::max(peak, held + emit(node.children[i], ops));
    if (i > 0) ops.push_back({fold, -1});
  }
  return peak;
}

/// Runs the program over one Boolean word per pin; returns the output word
/// (final complement applied).
std::uint64_t eval_bool(const PlaneProgram& program, const std::uint64_t* pin_words,
                        std::vector<std::uint64_t>& stack) {
  stack.clear();
  for (const PlaneOp& op : program.ops) {
    switch (op.kind) {
      case PlaneOp::Kind::kLoad:
        stack.push_back(pin_words[op.pin]);
        break;
      case PlaneOp::Kind::kAnd: {
        const std::uint64_t top = stack.back();
        stack.pop_back();
        stack.back() &= top;
        break;
      }
      case PlaneOp::Kind::kOr: {
        const std::uint64_t top = stack.back();
        stack.pop_back();
        stack.back() |= top;
        break;
      }
    }
  }
  return ~stack.back();
}

/// Runs the program with Kleene connectives over one TriWord per pin.
TriWord eval_ternary(const PlaneProgram& program, const TriWord* pin_planes,
                     std::vector<TriWord>& stack) {
  stack.clear();
  for (const PlaneOp& op : program.ops) {
    switch (op.kind) {
      case PlaneOp::Kind::kLoad:
        stack.push_back(pin_planes[op.pin]);
        break;
      case PlaneOp::Kind::kAnd: {
        const TriWord top = stack.back();
        stack.pop_back();
        stack.back() = tri_and(stack.back(), top);
        break;
      }
      case PlaneOp::Kind::kOr: {
        const TriWord top = stack.back();
        stack.pop_back();
        stack.back() = tri_or(stack.back(), top);
        break;
      }
    }
  }
  return tri_not(stack.back());
}

/// All 2^k full states evaluated in one pass: pin p's word carries bit s =
/// pin value in state s (the classic truth-table constants).
void verify_boolean(const CellTopology& topo, const PlaneProgram& program) {
  const int k = topo.num_inputs();
  std::uint64_t pin_words[8] = {};
  for (int p = 0; p < k; ++p) {
    for (std::uint32_t s = 0; s < topo.num_states(); ++s) {
      if ((s >> p) & 1u) pin_words[p] |= 1ULL << s;
    }
  }
  std::vector<std::uint64_t> stack;
  const std::uint64_t out = eval_bool(program, pin_words, stack);
  for (std::uint32_t s = 0; s < topo.num_states(); ++s) {
    if (((out >> s) & 1ULL) != (topo.output(s) ? 1ULL : 0ULL)) {
      throw ContractError("compile_plane_program: '" + topo.name() +
                          "' plane program disagrees with the truth table");
    }
  }
}

/// Checks Kleene evaluation against sim-style exhaustive-completion
/// semantics on every ternary local state (3^k of them).
bool verify_ternary_exact(const CellTopology& topo, const PlaneProgram& program) {
  const int k = topo.num_inputs();
  std::uint32_t combos = 1;
  for (int p = 0; p < k; ++p) combos *= 3;

  std::vector<TriWord> stack;
  for (std::uint32_t combo = 0; combo < combos; ++combo) {
    TriWord pin_planes[8] = {};
    std::uint32_t ones = 0;
    std::uint32_t xmask = 0;
    std::uint32_t digits = combo;
    for (int p = 0; p < k; ++p) {
      const std::uint32_t d = digits % 3;  // 0, 1, or X per pin
      digits /= 3;
      if (d == 1) {
        pin_planes[p].ones = ~0ULL;
        ones |= 1u << p;
      } else if (d == 2) {
        pin_planes[p].xs = ~0ULL;
        xmask |= 1u << p;
      }
    }
    const TriWord out = eval_ternary(program, pin_planes, stack);

    // Exhaustive reference: known iff all compatible completions agree.
    bool saw_zero = false;
    bool saw_one = false;
    std::uint32_t sub = xmask;
    for (;;) {
      (topo.output(ones | sub) ? saw_one : saw_zero) = true;
      if (sub == 0) break;
      sub = (sub - 1) & xmask;
    }
    const bool want_x = saw_zero && saw_one;
    const bool want_one = !want_x && saw_one;
    const bool got_x = (out.xs & 1ULL) != 0;
    const bool got_one = (out.ones & 1ULL) != 0;
    if (got_x != want_x || got_one != want_one) return false;
  }
  return true;
}

}  // namespace

PlaneProgram compile_plane_program(const CellTopology& topo) {
  if (topo.num_inputs() > 6) {
    throw ContractError("compile_plane_program: > 6 inputs unsupported");
  }
  PlaneProgram program;
  program.num_inputs = topo.num_inputs();
  program.max_stack = emit(topo.pull_down(), program.ops);
  verify_boolean(topo, program);
  program.exact_ternary = verify_ternary_exact(topo, program);
  return program;
}

}  // namespace svtox::cellkit
