#include "cellkit/delay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace svtox::cellkit {

namespace {

constexpr double kLn2 = 0.6931471805599453;

/// Per-device drive resistance [kOhm] at a corner.
double device_r_kohm(const model::TechParams& tech, const Device& dev,
                     const DeviceAssign& assign) {
  double r = tech.r_unit_kohm / dev.width;
  if (dev.type == model::DeviceType::kPmos) r *= tech.pmos_r_mult;
  return r * model::resistance_factor(tech, assign.vt, assign.tox);
}

/// Minimum conducting-path resistance through a subtree, assuming all of its
/// devices can be turned on (the non-switching side conditions).
double min_subtree_r(const SpNode& node, const CellTopology& topo,
                     const model::TechParams& tech, const CellAssignment& assignment,
                     int& device_cursor, double weight) {
  if (node.is_device()) {
    const int dev_index = device_cursor++;
    return weight * device_r_kohm(tech, topo.devices()[dev_index], assignment[dev_index]);
  }
  if (node.kind == SpNode::Kind::kSeries) {
    double sum = 0.0;
    for (const SpNode& child : node.children) {
      sum += min_subtree_r(child, topo, tech, assignment, device_cursor, weight);
    }
    return sum;
  }
  double best = std::numeric_limits<double>::infinity();
  for (const SpNode& child : node.children) {
    best = std::min(best, min_subtree_r(child, topo, tech, assignment, device_cursor, weight));
  }
  return best;
}

/// Resistance of the switching path through `pin`'s device: the device
/// itself at full weight, series companions at tech.series_other_weight,
/// parallel siblings ignored (single-input switching, worst case).
/// Returns a negative value if the subtree does not contain the pin.
double switching_path_r(const SpNode& node, const CellTopology& topo,
                        const model::TechParams& tech, const CellAssignment& assignment,
                        int pin, int& device_cursor) {
  if (node.is_device()) {
    const int dev_index = device_cursor++;
    if (topo.devices()[dev_index].pin != pin) return -1.0;
    return device_r_kohm(tech, topo.devices()[dev_index], assignment[dev_index]);
  }
  if (node.kind == SpNode::Kind::kSeries) {
    double through = -1.0;
    double others = 0.0;
    for (const SpNode& child : node.children) {
      // Peek: compute both possibilities with a scratch cursor to keep the
      // device numbering consistent.
      int scratch = device_cursor;
      const double sub = switching_path_r(child, topo, tech, assignment, pin, scratch);
      if (sub >= 0.0) {
        through = sub;
        device_cursor = scratch;
      } else {
        int cursor2 = device_cursor;
        others += min_subtree_r(child, topo, tech, assignment, cursor2,
                                tech.series_other_weight);
        device_cursor = cursor2;
      }
    }
    return through >= 0.0 ? through + others : -1.0;
  }
  // Parallel: only the branch containing the pin carries the transition.
  double through = -1.0;
  for (const SpNode& child : node.children) {
    const double sub = switching_path_r(child, topo, tech, assignment, pin, device_cursor);
    if (sub >= 0.0) through = sub;
  }
  return through;
}

double network_path_r(const CellTopology& topo, const model::TechParams& tech,
                      const CellAssignment& assignment, int pin, Edge edge) {
  const bool fall = edge == Edge::kFall;
  const SpNode& network = fall ? topo.pull_down() : topo.pull_up();
  int cursor = fall ? 0 : topo.num_pull_down_devices();
  const double r = switching_path_r(network, topo, tech, assignment, pin, cursor);
  if (r < 0.0) throw ContractError("path_resistance: pin not present in network");
  return r;
}

}  // namespace

double path_resistance_kohm(const CellTopology& topo, const model::TechParams& tech,
                            const CellAssignment& assignment, int pin, Edge edge) {
  if (pin < 0 || pin >= topo.num_inputs()) {
    throw ContractError("path_resistance_kohm: pin out of range");
  }
  if (assignment.size() != static_cast<std::size_t>(topo.num_devices())) {
    throw ContractError("path_resistance_kohm: assignment size mismatch");
  }
  return network_path_r(topo, tech, assignment, pin, edge);
}

double delay_factor(const CellTopology& topo, const model::TechParams& tech,
                    const CellAssignment& assignment, int pin, Edge edge) {
  const double nominal =
      path_resistance_kohm(topo, tech, nominal_assignment(topo), pin, edge);
  return path_resistance_kohm(topo, tech, assignment, pin, edge) / nominal;
}

double nominal_delay_ps(const CellTopology& topo, const model::TechParams& tech,
                        int pin, Edge edge, double input_slew_ps, double load_ff) {
  const double r =
      path_resistance_kohm(topo, tech, nominal_assignment(topo), pin, edge);
  const double c = load_ff + tech.cout_self_ff;
  // R[kOhm] * C[fF] = ps.
  return kLn2 * r * c + tech.slew_derate * input_slew_ps;
}

double nominal_output_slew_ps(const CellTopology& topo, const model::TechParams& tech,
                              int pin, Edge edge, double input_slew_ps, double load_ff) {
  const double r =
      path_resistance_kohm(topo, tech, nominal_assignment(topo), pin, edge);
  const double c = load_ff + tech.cout_self_ff;
  // The driving slew degrades slowly through a gate; a small input-slew term
  // keeps slews monotone without letting them blow up along long paths.
  return tech.output_slew_factor * r * c + 0.1 * input_slew_ps;
}

}  // namespace svtox::cellkit
