#include "cellkit/sp_network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::cellkit {

SpNode SpNode::device(int pin_index) {
  SpNode node;
  node.kind = Kind::kDevice;
  node.pin = pin_index;
  return node;
}

SpNode SpNode::series(std::vector<SpNode> children) {
  if (children.empty()) throw ContractError("SpNode::series: empty child list");
  if (children.size() == 1) return std::move(children.front());
  SpNode node;
  node.kind = Kind::kSeries;
  node.children = std::move(children);
  return node;
}

SpNode SpNode::parallel(std::vector<SpNode> children) {
  if (children.empty()) throw ContractError("SpNode::parallel: empty child list");
  if (children.size() == 1) return std::move(children.front());
  SpNode node;
  node.kind = Kind::kParallel;
  node.children = std::move(children);
  return node;
}

int device_count(const SpNode& node) {
  if (node.is_device()) return 1;
  int count = 0;
  for (const SpNode& child : node.children) count += device_count(child);
  return count;
}

void collect_pins(const SpNode& node, std::vector<int>& pins) {
  if (node.is_device()) {
    pins.push_back(node.pin);
    return;
  }
  for (const SpNode& child : node.children) collect_pins(child, pins);
}

int longest_path(const SpNode& node) {
  if (node.is_device()) return 1;
  int length = 0;
  if (node.kind == SpNode::Kind::kSeries) {
    for (const SpNode& child : node.children) length += longest_path(child);
  } else {
    for (const SpNode& child : node.children) length = std::max(length, longest_path(child));
  }
  return length;
}

namespace {

// Returns the longest path through the target leaf if it lives in this
// subtree, or -1 otherwise. `leaf_cursor` advances over leaves in
// collect_pins order.
int longest_through_impl(const SpNode& node, int target_leaf, int& leaf_cursor) {
  if (node.is_device()) {
    const int index = leaf_cursor++;
    return index == target_leaf ? 1 : -1;
  }
  if (node.kind == SpNode::Kind::kSeries) {
    int through = -1;
    int others = 0;
    for (const SpNode& child : node.children) {
      const int sub = longest_through_impl(child, target_leaf, leaf_cursor);
      if (sub >= 0) {
        through = sub;
      } else {
        others += longest_path(child);
      }
    }
    return through >= 0 ? through + others : -1;
  }
  // Parallel: only the branch containing the target matters.
  int through = -1;
  for (const SpNode& child : node.children) {
    const int sub = longest_through_impl(child, target_leaf, leaf_cursor);
    if (sub >= 0) through = sub;
  }
  return through;
}

}  // namespace

int longest_path_through(const SpNode& node, int target_leaf) {
  int cursor = 0;
  const int result = longest_through_impl(node, target_leaf, cursor);
  if (result < 0) throw ContractError("longest_path_through: leaf index out of range");
  return result;
}

namespace {

bool conducts_impl(const SpNode& node, const std::vector<bool>& device_on,
                   int& leaf_cursor) {
  if (node.is_device()) return device_on.at(leaf_cursor++);
  if (node.kind == SpNode::Kind::kSeries) {
    bool all = true;
    for (const SpNode& child : node.children) {
      // No short-circuiting: the cursor must advance over every leaf.
      all = conducts_impl(child, device_on, leaf_cursor) && all;
    }
    return all;
  }
  bool any = false;
  for (const SpNode& child : node.children) {
    any = conducts_impl(child, device_on, leaf_cursor) || any;
  }
  return any;
}

}  // namespace

bool conducts(const SpNode& node, const std::vector<bool>& device_on) {
  int cursor = 0;
  return conducts_impl(node, device_on, cursor);
}

}  // namespace svtox::cellkit
