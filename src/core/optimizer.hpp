// StandbyOptimizer -- the public facade of the svtox library.
//
// Typical use:
//
//   const auto& tech = svtox::model::TechParams::nominal();
//   auto library = svtox::liberty::Library::build(tech, {});
//   auto circuit = svtox::netlist::make_benchmark("c432", library);
//   svtox::core::StandbyOptimizer optimizer(circuit);
//   auto result = optimizer.run(svtox::core::Method::kHeu1,
//                               {.penalty_fraction = 0.05});
//   // result.solution.sleep_vector is the standby state to scan in;
//   // result.solution.config is the per-gate cell-version swap list.
//
// The facade owns the delay-budget computation, caches one
// AssignmentProblem per penalty value, and knows how to run every method
// the paper evaluates (including the state-only and Vt+state baselines).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "netlist/netlist.hpp"
#include "opt/state_search.hpp"

namespace svtox::core {

/// The methods compared in the paper's Tables 3-5 and Figure 5.
enum class Method {
  kAverageRandom,  ///< 10K-random-vector average; no technique (baseline).
  kStateOnly,      ///< Sleep-state assignment alone [1].
  kVtState,        ///< Simultaneous state + Vt assignment [12] (no dual-Tox).
  kHeu1,           ///< Proposed heuristic 1 (single traversal).
  kHeu2,           ///< Proposed heuristic 2 (time-limited state search).
  kExact,          ///< Exact branch-and-bound (small circuits only).
};

const char* to_string(Method method);

/// Inverse of to_string, accepting the service layer's short aliases too
/// ("average", "state", "vtstate"). Throws ContractError on unknown names.
Method method_from_string(const std::string& name);

/// Per-run knobs.
struct RunConfig {
  double penalty_fraction = 0.05;  ///< Delay penalty (paper: 5/10/25%).
  double time_limit_s = 5.0;       ///< Heu2 / state-only search budget.
  int random_vectors = 10000;      ///< Monte-Carlo vector count.
  std::uint64_t seed = 2004;       ///< Monte-Carlo seed.
  opt::GateOrder gate_order = opt::GateOrder::kBySavings;
  /// Worker threads for the state-tree search's parallel root split
  /// (Heu2, exact, state-only, Vt+state). 1 = serial, 0 = all hardware
  /// threads. Heu1 is a single descent and always serial.
  int threads = 1;
  /// Optional cooperative cancellation flag forwarded to the state search
  /// (see opt::SearchOptions::cancel). When set mid-run the search returns
  /// its best-so-far solution with `interrupted` true. Must outlive run().
  const std::atomic<bool>* cancel = nullptr;
  /// Leaf-evaluation cap for the state search (0 = unlimited). Unlike the
  /// wall-clock limit this budget is deterministic, so capped runs (and
  /// checkpointed resumes of them) reproduce bit-identically.
  std::uint64_t max_leaves = 0;
  /// Checkpoint/resume for the state search (kStateOnly, kVtState, kHeu2,
  /// kExact): when non-empty, the search snapshots to this file and
  /// resumes from it after an interruption. See opt::SearchOptions.
  std::string checkpoint_path;
  double checkpoint_every_s = 5.0;
  std::uint64_t checkpoint_every_leaves = 64;
  /// Distributed subtree execution: when non-empty, the state search only
  /// explores the subtree where input_order positions [0, size) are pinned
  /// to these values (serial, probe sweep disabled). Ignored by kHeu1 /
  /// kAverageRandom, which do not run the continued tree search. See
  /// opt::SearchOptions::subtree_prefix.
  std::vector<bool> subtree_prefix;
  /// In-memory checkpoint blob to resume from (overrides the on-disk file
  /// when it carries more progress) -- the distributed coordinator's
  /// migration token. See opt::SearchOptions::resume_text.
  std::string resume_text;
  /// Boundary-aware cone solve (hierarchical flow): when non-empty, one
  /// entry per control point pinning it to a constant (kX = free). The
  /// state search never branches on pinned inputs and the returned sleep
  /// vector carries the pinned values verbatim. Forces a serial search.
  /// See opt::SearchOptions::pinned_inputs.
  std::vector<sim::Tri> pinned_inputs;
  /// Measured upstream arrival/slew per control point (empty = defaults).
  /// Changes the delay budget and every leaf's timing, so runs with
  /// different boundaries use distinct cached AssignmentProblems.
  sta::BoundaryTiming boundary;
};

/// The exact (options, bound kind, state-only) tuple run() hands the state
/// search for a method. Exposed so the distributed coordinator can compute
/// checkpoint fingerprints that match what remote workers will compute --
/// any divergence would silently discard migration tokens.
struct SearchPlan {
  opt::SearchOptions options;
  opt::BoundKind bound_kind = opt::BoundKind::kMinVariant;
  bool state_only = false;
  /// False for kAverageRandom and kHeu1: no continued tree search to
  /// split, so these methods cannot be distributed by subtree.
  bool splittable = false;
};

/// Outcome of one method run.
struct MethodResult {
  Method method = Method::kHeu1;
  opt::Solution solution;      ///< Empty for kAverageRandom.
  double leakage_ua = 0.0;     ///< Total standby leakage [uA].
  double reduction_x = 0.0;    ///< Average-random leakage / this leakage.
  double runtime_s = 0.0;
};

/// Facade tying netlist + library + optimizer together.
class StandbyOptimizer {
 public:
  /// `netlist` must outlive the optimizer. For kVtState a Vt-only twin
  /// library and rebound netlist are built internally.
  explicit StandbyOptimizer(const netlist::Netlist& netlist);
  ~StandbyOptimizer();

  StandbyOptimizer(const StandbyOptimizer&) = delete;
  StandbyOptimizer& operator=(const StandbyOptimizer&) = delete;

  const netlist::Netlist& circuit() const { return *netlist_; }

  /// The delay-budget endpoints (all-fast and all-slow delays).
  const sta::DelayBudget& delay_budget();

  /// Average leakage over random vectors [uA] (cached per (vectors, seed)).
  double average_random_leakage_ua(int vectors, std::uint64_t seed);

  /// Runs one method. kAverageRandom ignores the penalty.
  MethodResult run(Method method, const RunConfig& config = {});

  /// The assignment problem `method` searches at this penalty: the Vt-only
  /// twin for kVtState, the full dual-Vt/dual-Tox problem otherwise.
  /// Exposed for the distributed coordinator (fingerprints, seed descent).
  const opt::AssignmentProblem& problem(Method method, double penalty);

  /// Mirrors run()'s per-method search setup without running anything.
  static SearchPlan search_plan(Method method, const RunConfig& config);

 private:
  const opt::AssignmentProblem& problem_for(double penalty,
                                            const sta::BoundaryTiming& boundary = {});
  const opt::AssignmentProblem& vt_problem_for(double penalty,
                                               const sta::BoundaryTiming& boundary = {});

  const netlist::Netlist* netlist_;
  /// Keyed by (penalty, boundary fingerprint): jobs with different boundary
  /// seeds must not share an AssignmentProblem (the budget differs). The
  /// default no-boundary key is (penalty, 0).
  std::map<std::pair<double, std::uint64_t>, std::unique_ptr<opt::AssignmentProblem>>
      problems_;

  // Lazy Vt-only twin (for the kVtState baseline).
  std::unique_ptr<liberty::Library> vt_library_;
  std::unique_ptr<netlist::Netlist> vt_netlist_;
  std::map<std::pair<double, std::uint64_t>, std::unique_ptr<opt::AssignmentProblem>>
      vt_problems_;

  std::map<std::pair<int, std::uint64_t>, double> random_cache_ua_;
  std::optional<sta::DelayBudget> budget_;
};

}  // namespace svtox::core
