// Standby-solution serialization: the hand-off artifact between the
// optimizer and a physical-design flow. The format records the sleep
// vector (what the power-management unit scans in) and the per-gate cell
// version + pin order (the ECO swap list).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "opt/solution.hpp"

namespace svtox::core {

/// Writes `solution` for `netlist` as a line-oriented text report.
void write_solution(const opt::Solution& solution, const netlist::Netlist& netlist,
                    std::ostream& out);
std::string write_solution(const opt::Solution& solution, const netlist::Netlist& netlist);

/// Parses a solution previously written by write_solution against the same
/// netlist/library. Recomputed fields (leakage, delay) are restored from
/// the file header; throws ParseError / ContractError on mismatch.
opt::Solution read_solution(std::istream& in, const netlist::Netlist& netlist);
opt::Solution read_solution(const std::string& text, const netlist::Netlist& netlist);

}  // namespace svtox::core
