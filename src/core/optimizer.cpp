#include "core/optimizer.hpp"

#include <cstring>

#include "sim/leakage_eval.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace svtox::core {

const char* to_string(Method method) {
  switch (method) {
    case Method::kAverageRandom: return "average_random";
    case Method::kStateOnly: return "state_only";
    case Method::kVtState: return "vt_state";
    case Method::kHeu1: return "heu1";
    case Method::kHeu2: return "heu2";
    case Method::kExact: return "exact";
  }
  return "?";
}

Method method_from_string(const std::string& name) {
  if (name == "average" || name == "average_random") return Method::kAverageRandom;
  if (name == "state" || name == "state_only") return Method::kStateOnly;
  if (name == "vtstate" || name == "vt_state") return Method::kVtState;
  if (name == "heu1") return Method::kHeu1;
  if (name == "heu2") return Method::kHeu2;
  if (name == "exact") return Method::kExact;
  throw ContractError("unknown method '" + name + "'");
}

StandbyOptimizer::StandbyOptimizer(const netlist::Netlist& netlist)
    : netlist_(&netlist) {
  if (!netlist.finalized()) throw ContractError("StandbyOptimizer: netlist not finalized");
}

StandbyOptimizer::~StandbyOptimizer() = default;

namespace {

/// FNV-1a over the boundary points' bit patterns: a stable map key that
/// separates problems built against different upstream timing contexts.
/// Empty boundaries hash to 0, so the historical (penalty-only) entries
/// keep their identity.
std::uint64_t boundary_fingerprint(const sta::BoundaryTiming& boundary) {
  if (boundary.empty()) return 0;
  std::uint64_t hash = 14695981039346656037ULL;
  auto feed = [&hash](double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      hash ^= (bits >> (8 * i)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  };
  for (const sta::BoundaryTiming::Point& point : boundary.points) {
    feed(point.arrival_ps);
    feed(point.slew_ps);
  }
  return hash;
}

}  // namespace

const opt::AssignmentProblem& StandbyOptimizer::problem_for(
    double penalty, const sta::BoundaryTiming& boundary) {
  const auto key = std::make_pair(penalty, boundary_fingerprint(boundary));
  auto it = problems_.find(key);
  if (it == problems_.end()) {
    opt::ProblemOptions options;
    options.boundary = boundary;
    it = problems_
             .emplace(key, std::make_unique<opt::AssignmentProblem>(*netlist_, penalty,
                                                                    options))
             .first;
  }
  return *it->second;
}

const opt::AssignmentProblem& StandbyOptimizer::vt_problem_for(
    double penalty, const sta::BoundaryTiming& boundary) {
  if (vt_library_ == nullptr) {
    // The Vt+state baseline [12] sees the same circuit through a dual-Vt
    // library with no thick-oxide versions.
    liberty::LibraryOptions options = netlist_->library().options();
    options.variant_options.vt_only = true;
    options.cell_names.clear();
    vt_library_ = std::make_unique<liberty::Library>(
        liberty::Library::build(netlist_->library().tech(), options));
    vt_netlist_ = std::make_unique<netlist::Netlist>(
        netlist::rebind(*netlist_, *vt_library_));
  }
  const auto key = std::make_pair(penalty, boundary_fingerprint(boundary));
  auto it = vt_problems_.find(key);
  if (it == vt_problems_.end()) {
    opt::ProblemOptions options;
    options.boundary = boundary;
    it = vt_problems_
             .emplace(key, std::make_unique<opt::AssignmentProblem>(*vt_netlist_,
                                                                    penalty, options))
             .first;
  }
  return *it->second;
}

const sta::DelayBudget& StandbyOptimizer::delay_budget() {
  if (!budget_) budget_ = sta::compute_delay_budget(*netlist_);
  return *budget_;
}

double StandbyOptimizer::average_random_leakage_ua(int vectors, std::uint64_t seed) {
  const auto key = std::make_pair(vectors, seed);
  auto it = random_cache_ua_.find(key);
  if (it != random_cache_ua_.end()) return it->second;
  const sim::MonteCarloResult mc = sim::monte_carlo_leakage(
      *netlist_, sim::fastest_config(*netlist_), vectors, seed);
  const double ua = mc.mean_na / 1e3;
  random_cache_ua_.emplace(key, ua);
  return ua;
}

const opt::AssignmentProblem& StandbyOptimizer::problem(Method method,
                                                        double penalty) {
  return method == Method::kVtState ? vt_problem_for(penalty)
                                    : problem_for(penalty);
}

SearchPlan StandbyOptimizer::search_plan(Method method, const RunConfig& config) {
  SearchPlan plan;
  // Shared search knobs; per-method cases tweak what differs, mirroring
  // the dispatch in run() (which consumes this plan, so they cannot drift).
  opt::SearchOptions& options = plan.options;
  options.time_limit_s = config.time_limit_s;
  options.gate_order = config.gate_order;
  options.threads = config.threads;
  options.cancel = config.cancel;
  options.max_leaves = config.max_leaves;
  options.checkpoint_path = config.checkpoint_path;
  options.checkpoint_every_s = config.checkpoint_every_s;
  options.checkpoint_every_leaves = config.checkpoint_every_leaves;
  options.subtree_prefix = config.subtree_prefix;
  options.resume_text = config.resume_text;
  options.pinned_inputs = config.pinned_inputs;

  switch (method) {
    case Method::kAverageRandom:
      break;
    case Method::kStateOnly:
      options.gate_order = opt::GateOrder::kBySavings;
      options.random_probes = 256;
      plan.bound_kind = opt::BoundKind::kFastestVariant;
      plan.state_only = true;
      plan.splittable = true;
      break;
    case Method::kVtState:
    case Method::kHeu2:
      options.exact_leaves = false;
      plan.splittable = true;
      break;
    case Method::kHeu1:
      options.max_leaves = 1;
      options.time_limit_s = 0.0;
      break;
    case Method::kExact:
      options.exact_leaves = true;
      options.time_limit_s = config.time_limit_s > 0 ? config.time_limit_s : 1e9;
      plan.splittable = true;
      break;
  }
  return plan;
}

MethodResult StandbyOptimizer::run(Method method, const RunConfig& config) {
  Timer timer;
  MethodResult result;
  result.method = method;

  const double avg_ua = average_random_leakage_ua(config.random_vectors, config.seed);
  const SearchPlan plan = search_plan(method, config);
  const opt::SearchOptions& options = plan.options;

  switch (method) {
    case Method::kAverageRandom:
      result.leakage_ua = avg_ua;
      break;
    case Method::kStateOnly: {
      result.solution = opt::state_only_search(
          problem_for(config.penalty_fraction, config.boundary), options);
      break;
    }
    case Method::kVtState: {
      result.solution = opt::heuristic2(
          vt_problem_for(config.penalty_fraction, config.boundary), options);
      break;
    }
    case Method::kHeu1:
      result.solution = opt::heuristic1(
          problem_for(config.penalty_fraction, config.boundary), options);
      break;
    case Method::kHeu2: {
      result.solution = opt::heuristic2(
          problem_for(config.penalty_fraction, config.boundary), options);
      break;
    }
    case Method::kExact: {
      result.solution = opt::exact_search(
          problem_for(config.penalty_fraction, config.boundary), options);
      break;
    }
  }

  if (method != Method::kAverageRandom) {
    result.leakage_ua = result.solution.leakage_na / 1e3;
  }
  result.reduction_x = result.leakage_ua > 0.0 ? avg_ua / result.leakage_ua : 0.0;
  result.runtime_s = timer.seconds();
  log_info(netlist_->name() + ": " + to_string(method) + " -> " +
           format_double(result.leakage_ua, 2) + " uA (" +
           format_double(result.reduction_x, 1) + "X) in " +
           format_double(result.runtime_s, 2) + " s");
  return result;
}

}  // namespace svtox::core
