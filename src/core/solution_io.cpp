#include "core/solution_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace svtox::core {

namespace {
constexpr const char* kMagic = "svtox_solution";
}

void write_solution(const opt::Solution& solution, const netlist::Netlist& netlist,
                    std::ostream& out) {
  if (static_cast<int>(solution.config.size()) != netlist.num_gates()) {
    throw ContractError("write_solution: config/netlist mismatch");
  }
  out << kMagic << " v1 " << netlist.name() << '\n';
  out << "leakage_na " << format_double(solution.leakage_na, 6) << '\n';
  out << "delay_ps " << format_double(solution.delay_ps, 6) << '\n';

  out << "sleep_vector";
  for (std::size_t i = 0; i < solution.sleep_vector.size(); ++i) {
    out << ' ' << netlist.signal_name(netlist.control_points()[static_cast<int>(i)]) << '='
        << (solution.sleep_vector[i] ? '1' : '0');
  }
  out << '\n';

  // Only non-default gate configurations are listed (swap list semantics).
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const sim::GateConfig& gc = solution.config[static_cast<std::size_t>(g)];
    const liberty::LibCell& cell = netlist.cell_of(g);
    const bool swapped = gc.variant != cell.fastest_variant();
    const bool reordered =
        !gc.mapping.logical_to_physical.empty() && !gc.mapping.is_identity();
    if (!swapped && !reordered) continue;
    out << "gate " << netlist.gate(g).name << ' ' << cell.variant(gc.variant).name;
    out << " pins";
    for (int pin = 0; pin < cell.num_inputs(); ++pin) {
      const int phys = gc.mapping.logical_to_physical.empty()
                           ? pin
                           : gc.mapping.logical_to_physical[static_cast<std::size_t>(pin)];
      out << ' ' << phys;
    }
    out << '\n';
  }
  out << "end\n";
}

std::string write_solution(const opt::Solution& solution, const netlist::Netlist& netlist) {
  std::ostringstream out;
  write_solution(solution, netlist, out);
  return out.str();
}

opt::Solution read_solution(std::istream& in, const netlist::Netlist& netlist) {
  opt::Solution solution;
  solution.config.assign(static_cast<std::size_t>(netlist.num_gates()), {});
  for (int g = 0; g < netlist.num_gates(); ++g) {
    solution.config[static_cast<std::size_t>(g)].variant =
        netlist.cell_of(g).fastest_variant();
  }
  solution.sleep_vector.assign(static_cast<std::size_t>(netlist.num_control_points()),
                               false);

  // Gate and variant lookup tables.
  auto gate_by_name = [&](const std::string& name) {
    for (int g = 0; g < netlist.num_gates(); ++g) {
      if (netlist.gate(g).name == name) return g;
    }
    throw ContractError("read_solution: unknown gate '" + name + "'");
  };
  auto pi_index_by_name = [&](const std::string& name) {
    for (int i = 0; i < netlist.num_control_points(); ++i) {
      if (netlist.signal_name(netlist.control_points()[i]) == name) return i;
    }
    throw ContractError("read_solution: unknown control point '" + name + "'");
  };

  std::string line;
  int line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    auto fail = [&](const std::string& what) -> void {
      throw ParseError("<solution>", line_no, what);
    };

    if (!saw_header) {
      if (tokens.size() < 2 || tokens[0] != kMagic || tokens[1] != "v1") {
        fail("not an svtox solution file");
      }
      saw_header = true;
      continue;
    }
    if (tokens[0] == "leakage_na" && tokens.size() == 2) {
      solution.leakage_na = parse_double(tokens[1]);
    } else if (tokens[0] == "delay_ps" && tokens.size() == 2) {
      solution.delay_ps = parse_double(tokens[1]);
    } else if (tokens[0] == "sleep_vector") {
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        const auto parts = split(tokens[t], '=');
        if (parts.size() != 2) fail("bad sleep_vector entry");
        const int index = pi_index_by_name(std::string(parts[0]));
        solution.sleep_vector[static_cast<std::size_t>(index)] = parts[1] == "1";
      }
    } else if (tokens[0] == "gate") {
      if (tokens.size() < 4 || tokens[3] != "pins") fail("bad gate record");
      const int g = gate_by_name(std::string(tokens[1]));
      const liberty::LibCell& cell = netlist.cell_of(g);
      int variant = -1;
      for (int v = 0; v < cell.num_variants(); ++v) {
        if (cell.variant(v).name == tokens[2]) variant = v;
      }
      if (variant < 0) {
        throw ContractError("read_solution: unknown variant '" + std::string(tokens[2]) +
                            "' for " + cell.name());
      }
      sim::GateConfig& gc = solution.config[static_cast<std::size_t>(g)];
      gc.variant = variant;
      if (static_cast<int>(tokens.size()) != 4 + cell.num_inputs()) {
        fail("pin permutation arity mismatch");
      }
      gc.mapping.logical_to_physical.resize(static_cast<std::size_t>(cell.num_inputs()));
      for (int pin = 0; pin < cell.num_inputs(); ++pin) {
        gc.mapping.logical_to_physical[static_cast<std::size_t>(pin)] =
            static_cast<int>(parse_size(tokens[static_cast<std::size_t>(4 + pin)]));
      }
    } else if (tokens[0] == "end") {
      saw_end = true;
      break;
    } else {
      fail("unknown record '" + std::string(tokens[0]) + "'");
    }
  }
  if (!saw_header || !saw_end) {
    throw ParseError("<solution>", line_no, "truncated solution file");
  }
  return solution;
}

opt::Solution read_solution(const std::string& text, const netlist::Netlist& netlist) {
  std::istringstream in(text);
  return read_solution(in, netlist);
}

}  // namespace svtox::core
