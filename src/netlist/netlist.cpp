#include "netlist/netlist.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace svtox::netlist {

Netlist::Netlist(std::string name, const liberty::Library* library)
    : name_(std::move(name)), library_(library) {
  if (library_ == nullptr) throw ContractError("Netlist: null library");
}

int Netlist::add_signal(const std::string& signal_name) {
  if (finalized_) throw ContractError("Netlist: add_signal after finalize");
  signal_names_.push_back(signal_name);
  return static_cast<int>(signal_names_.size()) - 1;
}

void Netlist::mark_input(int signal) {
  if (finalized_) throw ContractError("Netlist: mark_input after finalize");
  if (signal < 0 || signal >= num_signals()) throw ContractError("Netlist: bad signal id");
  primary_inputs_.push_back(signal);
}

void Netlist::mark_output(int signal) {
  if (finalized_) throw ContractError("Netlist: mark_output after finalize");
  if (signal < 0 || signal >= num_signals()) throw ContractError("Netlist: bad signal id");
  primary_outputs_.push_back(signal);
}

int Netlist::add_gate(const std::string& gate_name, const std::string& cell_name,
                      std::vector<int> fanins, int output) {
  return add_gate(gate_name, library_->cell_index(cell_name), std::move(fanins),
                  output);
}

int Netlist::add_gate(const std::string& gate_name, int cell_index,
                      std::vector<int> fanins, int output) {
  if (finalized_) throw ContractError("Netlist: add_gate after finalize");
  const liberty::LibCell& cell = library_->cell_at(cell_index);
  if (static_cast<int>(fanins.size()) != cell.num_inputs()) {
    throw ContractError("Netlist: gate '" + gate_name + "' arity mismatch for " +
                        cell.name());
  }
  for (int f : fanins) {
    if (f < 0 || f >= num_signals()) throw ContractError("Netlist: bad fanin id");
  }
  if (output < 0 || output >= num_signals()) throw ContractError("Netlist: bad output id");

  Gate gate;
  gate.name = gate_name;
  gate.cell_index = cell_index;
  gate.fanins = std::move(fanins);
  gate.output = output;
  gates_.push_back(std::move(gate));
  return num_gates() - 1;
}

int Netlist::add_flip_flop(const std::string& ff_name, int d, int q) {
  if (finalized_) throw ContractError("Netlist: add_flip_flop after finalize");
  if (d < 0 || d >= num_signals() || q < 0 || q >= num_signals()) {
    throw ContractError("Netlist: bad flip-flop signal id");
  }
  flip_flops_.push_back({ff_name, d, q});
  return num_flip_flops() - 1;
}

void Netlist::finalize() {
  if (finalized_) throw ContractError("Netlist: finalize called twice");

  driver_.assign(num_signals(), -1);
  sinks_.assign(num_signals(), {});
  is_po_.assign(num_signals(), false);

  for (int g = 0; g < num_gates(); ++g) {
    const Gate& gate = gates_[g];
    if (driver_[gate.output] != -1) {
      throw ContractError("Netlist: multiple drivers on signal '" +
                          signal_names_[gate.output] + "'");
    }
    driver_[gate.output] = g;
    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      sinks_[gate.fanins[pin]].push_back({g, static_cast<int>(pin)});
    }
  }

  std::vector<bool> is_source(num_signals(), false);
  for (int s : primary_inputs_) {
    if (driver_[s] != -1) {
      throw ContractError("Netlist: primary input '" + signal_names_[s] + "' is driven");
    }
    is_source[s] = true;
  }
  for (const FlipFlop& ff : flip_flops_) {
    if (driver_[ff.q] != -1) {
      throw ContractError("Netlist: flip-flop output '" + signal_names_[ff.q] +
                          "' is driven by a gate");
    }
    if (is_source[ff.q]) {
      throw ContractError("Netlist: flip-flop output '" + signal_names_[ff.q] +
                          "' is also a primary input or another FF output");
    }
    is_source[ff.q] = true;
  }
  for (int s = 0; s < num_signals(); ++s) {
    if (driver_[s] == -1 && !is_source[s]) {
      throw ContractError("Netlist: signal '" + signal_names_[s] +
                          "' has no driver and is not an input");
    }
  }
  for (int s : primary_outputs_) is_po_[s] = true;

  control_points_ = primary_inputs_;
  for (const FlipFlop& ff : flip_flops_) control_points_.push_back(ff.q);
  observe_points_ = primary_outputs_;
  for (const FlipFlop& ff : flip_flops_) observe_points_.push_back(ff.d);

  // Kahn topological sort over gates.
  std::vector<int> pending(num_gates(), 0);
  std::vector<int> ready;
  for (int g = 0; g < num_gates(); ++g) {
    int count = 0;
    for (int f : gates_[g].fanins) count += driver_[f] != -1;
    pending[g] = count;
    if (count == 0) ready.push_back(g);
  }
  topo_order_.clear();
  topo_order_.reserve(num_gates());
  gate_level_.assign(num_gates(), 0);
  std::size_t head = 0;
  while (head < ready.size()) {
    const int g = ready[head++];
    topo_order_.push_back(g);
    int level = 1;
    for (int f : gates_[g].fanins) {
      if (driver_[f] != -1) level = std::max(level, gate_level_[driver_[f]] + 1);
    }
    gate_level_[g] = level;
    for (const Sink& sink : sinks_[gates_[g].output]) {
      if (--pending[sink.gate] == 0) ready.push_back(sink.gate);
    }
  }
  if (static_cast<int>(topo_order_.size()) != num_gates()) {
    throw ContractError("Netlist '" + name_ + "': combinational cycle detected");
  }
  depth_ = 0;
  for (int level : gate_level_) depth_ = std::max(depth_, level);

  ff_d_count_.assign(num_signals(), 0);
  for (const FlipFlop& ff : flip_flops_) ++ff_d_count_[ff.d];

  build_flat();
  finalized_ = true;
}

void Netlist::build_flat() {
  using u32 = FlatNetlist::u32;
  FlatNetlist& f = flat_;
  f.num_gates_ = static_cast<u32>(num_gates());
  f.num_signals_ = static_cast<u32>(num_signals());
  f.depth_ = depth_;

  f.fanin_offset_.assign(static_cast<std::size_t>(num_gates()) + 1, 0);
  f.output_.resize(static_cast<std::size_t>(num_gates()));
  f.cell_.resize(static_cast<std::size_t>(num_gates()));
  f.topology_.resize(static_cast<std::size_t>(num_gates()));
  f.truth_.resize(static_cast<std::size_t>(num_gates()));
  f.level_.resize(static_cast<std::size_t>(num_gates()));
  std::size_t total_fanins = 0;
  for (int g = 0; g < num_gates(); ++g) total_fanins += gates_[g].fanins.size();
  f.fanin_.clear();
  f.fanin_.reserve(total_fanins);
  for (int g = 0; g < num_gates(); ++g) {
    const Gate& gate = gates_[g];
    for (int s : gate.fanins) f.fanin_.push_back(static_cast<u32>(s));
    f.fanin_offset_[static_cast<std::size_t>(g) + 1] = static_cast<u32>(f.fanin_.size());
    f.output_[g] = static_cast<u32>(gate.output);
    f.cell_[g] = static_cast<u32>(gate.cell_index);
    f.topology_[g] = &library_->cell_at(gate.cell_index).topology();
    const cellkit::CellTopology& topo = *f.topology_[g];
    if (topo.num_states() > 16) {
      throw ContractError("Netlist: cell '" + topo.name() +
                          "' has more than 4 inputs; FlatNetlist packs truth "
                          "tables into 16 bits");
    }
    std::uint16_t truth = 0;
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      if (topo.output(state)) truth |= static_cast<std::uint16_t>(1u << state);
    }
    f.truth_[g] = truth;
    f.level_[g] = gate_level_[g];
  }

  f.topo_order_.resize(topo_order_.size());
  for (std::size_t i = 0; i < topo_order_.size(); ++i) {
    f.topo_order_[i] = static_cast<u32>(topo_order_[i]);
  }

  f.driver_.resize(static_cast<std::size_t>(num_signals()));
  f.sink_offset_.assign(static_cast<std::size_t>(num_signals()) + 1, 0);
  std::size_t total_sinks = 0;
  for (int s = 0; s < num_signals(); ++s) total_sinks += sinks_[s].size();
  f.sink_gate_.clear();
  f.sink_gate_.reserve(total_sinks);
  f.sink_pin_.clear();
  f.sink_pin_.reserve(total_sinks);
  for (int s = 0; s < num_signals(); ++s) {
    f.driver_[s] = driver_[s] < 0 ? FlatNetlist::kNoDriver : static_cast<u32>(driver_[s]);
    for (const Sink& sink : sinks_[s]) {
      f.sink_gate_.push_back(static_cast<u32>(sink.gate));
      f.sink_pin_.push_back(static_cast<u32>(sink.pin));
    }
    f.sink_offset_[static_cast<std::size_t>(s) + 1] = static_cast<u32>(f.sink_gate_.size());
  }

  f.control_points_.resize(control_points_.size());
  for (std::size_t i = 0; i < control_points_.size(); ++i) {
    f.control_points_[i] = static_cast<u32>(control_points_[i]);
  }
}

const FlatNetlist& Netlist::flat() const {
  if (!finalized_) throw ContractError("Netlist: flat() before finalize");
  return flat_;
}

int Netlist::find_signal(const std::string& signal_name) const {
  for (int s = 0; s < num_signals(); ++s) {
    if (signal_names_[s] == signal_name) return s;
  }
  return -1;
}

double Netlist::signal_load_ff(int signal) const {
  if (!finalized_) throw ContractError("Netlist: query before finalize");
  const model::TechParams& tech = library_->tech();
  double load = 0.0;
  for (const Sink& sink : sinks_.at(signal)) {
    load += cell_of(sink.gate).topology().pin_capacitance_ff(sink.pin);
  }
  load += tech.wire_ff_per_fanout * static_cast<double>(sinks_.at(signal).size());
  if (is_po_.at(signal)) load += tech.default_po_load_ff;
  // Flip-flop D pins load their drivers like a PO-sized endpoint. Repeated
  // addition (not a multiply) keeps the FP sequence identical to the old
  // per-FF scan, which added the constant once per matching FF.
  for (int i = 0; i < ff_d_count_[static_cast<std::size_t>(signal)]; ++i) {
    load += tech.default_po_load_ff;
  }
  return load;
}

Netlist rebind(const Netlist& netlist, const liberty::Library& library) {
  Netlist out(netlist.name(), &library);
  for (int s = 0; s < netlist.num_signals(); ++s) out.add_signal(netlist.signal_name(s));
  for (int s : netlist.primary_inputs()) out.mark_input(s);
  for (int s : netlist.primary_outputs()) out.mark_output(s);
  for (const Gate& gate : netlist.gates()) {
    const std::string& cell_name =
        netlist.library().cell_at(gate.cell_index).name();
    out.add_gate(gate.name, cell_name, gate.fanins, gate.output);
  }
  for (const FlipFlop& ff : netlist.flip_flops()) {
    out.add_flip_flop(ff.name, ff.d, ff.q);
  }
  out.finalize();
  return out;
}

NetlistStats stats(const Netlist& netlist) {
  NetlistStats s;
  s.inputs = netlist.num_inputs();
  s.outputs = netlist.num_outputs();
  s.gates = netlist.num_gates();
  s.depth = netlist.depth();
  s.flip_flops = netlist.num_flip_flops();
  return s;
}

}  // namespace svtox::netlist
