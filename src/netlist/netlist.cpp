#include "netlist/netlist.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace svtox::netlist {

Netlist::Netlist(std::string name, const liberty::Library* library)
    : name_(std::move(name)), library_(library) {
  if (library_ == nullptr) throw ContractError("Netlist: null library");
}

int Netlist::add_signal(const std::string& signal_name) {
  if (finalized_) throw ContractError("Netlist: add_signal after finalize");
  signal_names_.push_back(signal_name);
  return static_cast<int>(signal_names_.size()) - 1;
}

void Netlist::mark_input(int signal) {
  if (finalized_) throw ContractError("Netlist: mark_input after finalize");
  if (signal < 0 || signal >= num_signals()) throw ContractError("Netlist: bad signal id");
  primary_inputs_.push_back(signal);
}

void Netlist::mark_output(int signal) {
  if (finalized_) throw ContractError("Netlist: mark_output after finalize");
  if (signal < 0 || signal >= num_signals()) throw ContractError("Netlist: bad signal id");
  primary_outputs_.push_back(signal);
}

int Netlist::add_gate(const std::string& gate_name, const std::string& cell_name,
                      std::vector<int> fanins, int output) {
  if (finalized_) throw ContractError("Netlist: add_gate after finalize");
  const int cell_index = library_->cell_index(cell_name);
  const liberty::LibCell& cell = library_->cell_at(cell_index);
  if (static_cast<int>(fanins.size()) != cell.num_inputs()) {
    throw ContractError("Netlist: gate '" + gate_name + "' arity mismatch for " +
                        cell_name);
  }
  for (int f : fanins) {
    if (f < 0 || f >= num_signals()) throw ContractError("Netlist: bad fanin id");
  }
  if (output < 0 || output >= num_signals()) throw ContractError("Netlist: bad output id");

  Gate gate;
  gate.name = gate_name;
  gate.cell_index = cell_index;
  gate.fanins = std::move(fanins);
  gate.output = output;
  gates_.push_back(std::move(gate));
  return num_gates() - 1;
}

int Netlist::add_flip_flop(const std::string& ff_name, int d, int q) {
  if (finalized_) throw ContractError("Netlist: add_flip_flop after finalize");
  if (d < 0 || d >= num_signals() || q < 0 || q >= num_signals()) {
    throw ContractError("Netlist: bad flip-flop signal id");
  }
  flip_flops_.push_back({ff_name, d, q});
  return num_flip_flops() - 1;
}

void Netlist::finalize() {
  if (finalized_) throw ContractError("Netlist: finalize called twice");

  driver_.assign(num_signals(), -1);
  sinks_.assign(num_signals(), {});
  is_po_.assign(num_signals(), false);

  for (int g = 0; g < num_gates(); ++g) {
    const Gate& gate = gates_[g];
    if (driver_[gate.output] != -1) {
      throw ContractError("Netlist: multiple drivers on signal '" +
                          signal_names_[gate.output] + "'");
    }
    driver_[gate.output] = g;
    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      sinks_[gate.fanins[pin]].push_back({g, static_cast<int>(pin)});
    }
  }

  std::vector<bool> is_source(num_signals(), false);
  for (int s : primary_inputs_) {
    if (driver_[s] != -1) {
      throw ContractError("Netlist: primary input '" + signal_names_[s] + "' is driven");
    }
    is_source[s] = true;
  }
  for (const FlipFlop& ff : flip_flops_) {
    if (driver_[ff.q] != -1) {
      throw ContractError("Netlist: flip-flop output '" + signal_names_[ff.q] +
                          "' is driven by a gate");
    }
    if (is_source[ff.q]) {
      throw ContractError("Netlist: flip-flop output '" + signal_names_[ff.q] +
                          "' is also a primary input or another FF output");
    }
    is_source[ff.q] = true;
  }
  for (int s = 0; s < num_signals(); ++s) {
    if (driver_[s] == -1 && !is_source[s]) {
      throw ContractError("Netlist: signal '" + signal_names_[s] +
                          "' has no driver and is not an input");
    }
  }
  for (int s : primary_outputs_) is_po_[s] = true;

  control_points_ = primary_inputs_;
  for (const FlipFlop& ff : flip_flops_) control_points_.push_back(ff.q);
  observe_points_ = primary_outputs_;
  for (const FlipFlop& ff : flip_flops_) observe_points_.push_back(ff.d);

  // Kahn topological sort over gates.
  std::vector<int> pending(num_gates(), 0);
  std::vector<int> ready;
  for (int g = 0; g < num_gates(); ++g) {
    int count = 0;
    for (int f : gates_[g].fanins) count += driver_[f] != -1;
    pending[g] = count;
    if (count == 0) ready.push_back(g);
  }
  topo_order_.clear();
  topo_order_.reserve(num_gates());
  gate_level_.assign(num_gates(), 0);
  std::size_t head = 0;
  while (head < ready.size()) {
    const int g = ready[head++];
    topo_order_.push_back(g);
    int level = 1;
    for (int f : gates_[g].fanins) {
      if (driver_[f] != -1) level = std::max(level, gate_level_[driver_[f]] + 1);
    }
    gate_level_[g] = level;
    for (const Sink& sink : sinks_[gates_[g].output]) {
      if (--pending[sink.gate] == 0) ready.push_back(sink.gate);
    }
  }
  if (static_cast<int>(topo_order_.size()) != num_gates()) {
    throw ContractError("Netlist '" + name_ + "': combinational cycle detected");
  }
  depth_ = 0;
  for (int level : gate_level_) depth_ = std::max(depth_, level);

  finalized_ = true;
}

int Netlist::find_signal(const std::string& signal_name) const {
  for (int s = 0; s < num_signals(); ++s) {
    if (signal_names_[s] == signal_name) return s;
  }
  return -1;
}

double Netlist::signal_load_ff(int signal) const {
  if (!finalized_) throw ContractError("Netlist: query before finalize");
  const model::TechParams& tech = library_->tech();
  double load = 0.0;
  for (const Sink& sink : sinks_.at(signal)) {
    load += cell_of(sink.gate).topology().pin_capacitance_ff(sink.pin);
  }
  load += tech.wire_ff_per_fanout * static_cast<double>(sinks_.at(signal).size());
  if (is_po_.at(signal)) load += tech.default_po_load_ff;
  // Flip-flop D pins load their drivers like a PO-sized endpoint.
  for (const FlipFlop& ff : flip_flops_) {
    if (ff.d == signal) load += tech.default_po_load_ff;
  }
  return load;
}

Netlist rebind(const Netlist& netlist, const liberty::Library& library) {
  Netlist out(netlist.name(), &library);
  for (int s = 0; s < netlist.num_signals(); ++s) out.add_signal(netlist.signal_name(s));
  for (int s : netlist.primary_inputs()) out.mark_input(s);
  for (int s : netlist.primary_outputs()) out.mark_output(s);
  for (const Gate& gate : netlist.gates()) {
    const std::string& cell_name =
        netlist.library().cell_at(gate.cell_index).name();
    out.add_gate(gate.name, cell_name, gate.fanins, gate.output);
  }
  for (const FlipFlop& ff : netlist.flip_flops()) {
    out.add_flip_flop(ff.name, ff.d, ff.q);
  }
  out.finalize();
  return out;
}

NetlistStats stats(const Netlist& netlist) {
  NetlistStats s;
  s.inputs = netlist.num_inputs();
  s.outputs = netlist.num_outputs();
  s.gates = netlist.num_gates();
  s.depth = netlist.depth();
  s.flip_flops = netlist.num_flip_flops();
  return s;
}

}  // namespace svtox::netlist
