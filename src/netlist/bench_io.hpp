// ISCAS-85/89 ".bench" reader/writer with naive technology mapping.
//
// The paper evaluates on the ISCAS-85 set "synthesized using an industrial
// cell library". The authentic netlists use abstract AND/OR/NAND/NOR/NOT/
// BUFF/XOR/XNOR primitives; the reader maps them structurally onto our
// library cells (AND -> NAND+INV, XOR -> 4-NAND tree, wide gates -> trees),
// which is the classic naive mapping every academic flow starts from.
// ISCAS-89 `Q = DFF(D)` state elements are also accepted: flip-flop outputs
// become controllable sleep-vector bits (paper refs [1][3]) and D inputs
// become timing endpoints.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace svtox::netlist {

/// Parses a .bench stream into a finalized, mapped netlist.
/// Throws ParseError on malformed input; `source` names the input in error
/// messages (defaults to "<name>.bench" when empty).
Netlist read_bench(std::istream& in, const std::string& name,
                   const liberty::Library& library,
                   const std::string& source = "");

/// Convenience: parses from a string.
Netlist read_bench(const std::string& text, const std::string& name,
                   const liberty::Library& library,
                   const std::string& source = "");

/// Reads a .bench file from disk. Throws util::Error(kIo) when the file
/// cannot be opened and ParseError (carrying the real path and line) on
/// malformed content -- including a truncated final line (a file that does
/// not end in a newline is treated as cut off mid-write).
Netlist read_bench_file(const std::string& path, const liberty::Library& library);

/// Writes a mapped netlist back out as .bench. Cells representable as bench
/// primitives (INV -> NOT, NANDk, NORk) are emitted directly; AOI21/OAI21/
/// AOI22/OAI22 come out as extension primitives of the same name, which
/// read_bench maps back 1:1 -- a write/read round trip reproduces the gate
/// list (same cells, same pin order, same line order).
void write_bench(const Netlist& netlist, std::ostream& out);
std::string write_bench(const Netlist& netlist);

}  // namespace svtox::netlist
