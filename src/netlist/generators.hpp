// Circuit generators.
//
// The authentic ISCAS-85 netlists are not redistributable inside this
// repository, so the benchmark suite is built from two kinds of stand-ins
// (see DESIGN.md, "Substitutions"):
//   * structure-true generators for circuits whose function is known
//     (c6288 is a 16x16 array multiplier; c499/c1355 are a 32-bit
//     single-error-correcting code; alu64 is a 64-bit ALU), and
//   * seeded random mapped DAGs matched to the published (inputs, gates)
//     statistics for the rest.
// A .bench reader (bench_io.hpp) accepts the authentic netlists when
// available.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace svtox::netlist {

/// Relative frequency of each cell archetype in random circuits.
using GateMix = std::map<std::string, double>;

/// A representative post-synthesis mix (NAND-rich, some complex cells).
GateMix default_gate_mix();

/// Generates a random mapped DAG with exactly `num_inputs` primary inputs
/// and `num_gates` gates. Fanins are drawn with temporal locality so the
/// circuit has realistic logic depth; every primary input is used; signals
/// without fanout become primary outputs. Deterministic in `seed`.
Netlist random_circuit(const liberty::Library& library, const std::string& name,
                       int num_inputs, int num_gates, std::uint64_t seed,
                       const GateMix& mix = default_gate_mix());

/// `bits`-wide ripple-carry adder built from 9-NAND2 full adders.
/// Inputs: a[bits], b[bits], cin. Outputs: sum[bits], cout.
Netlist ripple_carry_adder(const liberty::Library& library, int bits);

/// n x n array multiplier (AND partial products, half/full adder array).
/// n = 16 is the structural stand-in for ISCAS-85 c6288.
Netlist array_multiplier(const liberty::Library& library, int n);

/// 64-bit ALU: a[64], b[64], 2 select lines, carry-in (131 inputs, matching
/// the paper's alu64 row). Ops: AND, OR, XOR, ADD, selected per-bit through
/// a NAND-mux.
Netlist alu64(const liberty::Library& library);

/// Single-error-correction-style parity network: `data_bits` data inputs,
/// `check_bits` check inputs and one enable, producing gated syndrome
/// outputs through XOR trees. (32, 8) is the stand-in for c499.
Netlist parity_checker(const liberty::Library& library, int data_bits, int check_bits);

/// Sequential pipeline: `stages` ranks of random mapped logic separated by
/// flip-flop banks of `width` bits (ISCAS-89-style). The sleep vector then
/// covers primary inputs *and* register states -- the scan-based standby
/// entry of the paper's refs [1][3]. Deterministic in `seed`.
Netlist sequential_pipeline(const liberty::Library& library, const std::string& name,
                            int width, int stages, int gates_per_stage,
                            std::uint64_t seed);

/// Shape knobs of `random_dag`.
struct DagOptions {
  int num_inputs = 64;
  int num_gates = 10000;
  /// Exact logic depth of the result: gates are laid out in `target_depth`
  /// ranks and each gate's first fanin comes from the previous rank, so
  /// the finalized depth() equals this value (requires
  /// num_gates >= target_depth).
  int target_depth = 32;
  /// Soft per-signal fanout cap. Fanins are drawn from a pool of signals
  /// with remaining fanout budget; when the pool runs dry the cap relaxes
  /// so generation always completes.
  int max_fanout = 8;
  std::uint64_t seed = 1;
  GateMix mix = default_gate_mix();
};

/// Random mapped DAG with controllable depth and fanout, O(num_gates)
/// regardless of size (no quadratic erase/scan anywhere) -- the generator
/// for 100k..1M-gate scale workloads. Deterministic in the options.
Netlist random_dag(const liberty::Library& library, const std::string& name,
                   const DagOptions& options);

/// Balanced reduction tree of ripple-carry adders summing `operands`
/// `width`-bit inputs (adder-tree preset; ~9*width gates per adder).
Netlist adder_tree(const liberty::Library& library, int width, int operands);

/// Named scale presets for benches and the hierarchical optimizer:
/// array multipliers ("mul64" .. "mul256", 46k..720k gates), an adder tree
/// ("addtree64x128"), and random DAGs ("dag10k", "dag100k", "dag500k",
/// "dag1m"). Throws ContractError for unknown names.
Netlist make_scale_circuit(const liberty::Library& library, const std::string& name);
/// All names make_scale_circuit accepts, smallest first.
std::vector<std::string> scale_circuit_names();

}  // namespace svtox::netlist
