// Circuit generators.
//
// The authentic ISCAS-85 netlists are not redistributable inside this
// repository, so the benchmark suite is built from two kinds of stand-ins
// (see DESIGN.md, "Substitutions"):
//   * structure-true generators for circuits whose function is known
//     (c6288 is a 16x16 array multiplier; c499/c1355 are a 32-bit
//     single-error-correcting code; alu64 is a 64-bit ALU), and
//   * seeded random mapped DAGs matched to the published (inputs, gates)
//     statistics for the rest.
// A .bench reader (bench_io.hpp) accepts the authentic netlists when
// available.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace svtox::netlist {

/// Relative frequency of each cell archetype in random circuits.
using GateMix = std::map<std::string, double>;

/// A representative post-synthesis mix (NAND-rich, some complex cells).
GateMix default_gate_mix();

/// Generates a random mapped DAG with exactly `num_inputs` primary inputs
/// and `num_gates` gates. Fanins are drawn with temporal locality so the
/// circuit has realistic logic depth; every primary input is used; signals
/// without fanout become primary outputs. Deterministic in `seed`.
Netlist random_circuit(const liberty::Library& library, const std::string& name,
                       int num_inputs, int num_gates, std::uint64_t seed,
                       const GateMix& mix = default_gate_mix());

/// `bits`-wide ripple-carry adder built from 9-NAND2 full adders.
/// Inputs: a[bits], b[bits], cin. Outputs: sum[bits], cout.
Netlist ripple_carry_adder(const liberty::Library& library, int bits);

/// n x n array multiplier (AND partial products, half/full adder array).
/// n = 16 is the structural stand-in for ISCAS-85 c6288.
Netlist array_multiplier(const liberty::Library& library, int n);

/// 64-bit ALU: a[64], b[64], 2 select lines, carry-in (131 inputs, matching
/// the paper's alu64 row). Ops: AND, OR, XOR, ADD, selected per-bit through
/// a NAND-mux.
Netlist alu64(const liberty::Library& library);

/// Single-error-correction-style parity network: `data_bits` data inputs,
/// `check_bits` check inputs and one enable, producing gated syndrome
/// outputs through XOR trees. (32, 8) is the stand-in for c499.
Netlist parity_checker(const liberty::Library& library, int data_bits, int check_bits);

/// Sequential pipeline: `stages` ranks of random mapped logic separated by
/// flip-flop banks of `width` bits (ISCAS-89-style). The sleep vector then
/// covers primary inputs *and* register states -- the scan-based standby
/// entry of the paper's refs [1][3]. Deterministic in `seed`.
Netlist sequential_pipeline(const liberty::Library& library, const std::string& name,
                            int width, int stages, int gates_per_stage,
                            std::uint64_t seed);

}  // namespace svtox::netlist
