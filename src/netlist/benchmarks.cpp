#include "netlist/benchmarks.hpp"

#include "netlist/generators.hpp"
#include "util/error.hpp"

namespace svtox::netlist {

const std::vector<BenchmarkSpec>& benchmark_suite() {
  // Paper rows transcribed from Tables 3, 4 and 5 (currents in uA).
  //          in   gates  avg    state  vt5    vt10   vt25   h1@5   h2@5   h1@10  h1@25  2op5   u4@5   u2@5
  static const std::vector<BenchmarkSpec> suite = {
      {"c432", {36, 177, 24.5, 22.7, 12.4, 10.4, 8.2, 6.9, 3.8, 4.8, 2.7, 7.5, 6.7, 7.8}},
      {"c499", {41, 519, 65.8, 63.9, 37.0, 33.3, 23.8, 24.8, 23.4, 19.7, 7.5, 27.6, 26.2, 28.6}},
      {"c880", {60, 364, 50.1, 46.0, 17.8, 17.1, 16.2, 8.7, 7.7, 8.3, 7.0, 9.0, 9.4, 10.3}},
      {"c1355", {41, 528, 70.8, 67.4, 33.6, 30.5, 23.9, 15.4, 13.1, 12.6, 7.6, 17.0, 22.4, 23.8}},
      {"c1908", {33, 432, 56.7, 54.8, 26.6, 23.4, 18.2, 14.7, 13.5, 12.1, 6.2, 15.2, 15.2, 15.8}},
      {"c2670", {233, 825, 104.7, 101.4, 32.7, 32.0, 30.0, 14.7, 12.3, 11.4, 11.3, 12.2, 16.2, 14.8}},
      {"c3540", {50, 940, 128.5, 121.8, 50.3, 47.8, 40.3, 21.6, 19.9, 19.1, 13.7, 23.9, 25.2, 24.7}},
      {"c5315", {178, 1627, 221.2, 215.1, 77.6, 74.6, 70.6, 31.1, 30.5, 28.5, 24.1, 30.7, 32.1, 33.0}},
      {"c6288", {32, 2470, 346.8, 306.7, 186.3, 159.0, 112.5, 114.7, 107.5, 70.9, 36.8, 120.6, 134.0, 149.6}},
      {"c7552", {207, 1994, 270.0, 262.6, 86.5, 86.0, 84.2, 32.6, 31.3, 30.4, 28.3, 31.2, 32.0, 30.6}},
      {"alu64", {131, 1803, 260.0, 237.2, 90.7, 82.7, 75.3, 42.2, 40.4, 35.5, 28.0, 42.3, 42.8, 46.9}},
  };
  return suite;
}

const BenchmarkSpec& benchmark_spec(const std::string& name) {
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    if (spec.name == name) return spec;
  }
  throw ContractError("benchmark_spec: unknown benchmark '" + name + "'");
}

Netlist make_benchmark(const std::string& name, const liberty::Library& library) {
  const BenchmarkSpec& spec = benchmark_spec(name);
  // Structure-true stand-ins where the original circuit's function is known.
  if (name == "c6288") return array_multiplier(library, 16);
  if (name == "alu64") return alu64(library);
  if (name == "c499") {
    // 32 data + 8 check + enable = 41 inputs, XOR-tree dominated like the
    // original 32-bit SEC circuit.
    return parity_checker(library, 32, 8);
  }
  // Seeded random mapped DAGs with the paper's exact (inputs, gates) stats.
  // The seed is derived from the circuit name's digits for reproducibility.
  std::uint64_t seed = 0;
  for (char c : name) seed = seed * 31 + static_cast<unsigned char>(c);
  return random_circuit(library, name, spec.paper.inputs, spec.paper.gates, seed);
}

}  // namespace svtox::netlist
