#include "netlist/bench_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace svtox::netlist {

namespace {

/// Incremental mapper: turns bench primitives into library-cell gates,
/// inventing intermediate signals as needed.
class Mapper {
 public:
  Mapper(Netlist& netlist, const liberty::Library& library)
      : netlist_(netlist), library_(library) {}

  int signal(const std::string& name) {
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    const int id = netlist_.add_signal(name);
    by_name_.emplace(name, id);
    return id;
  }

  int fresh_signal(const std::string& hint) {
    const int id = netlist_.add_signal(hint + "_m" + std::to_string(counter_++));
    return id;
  }

  void gate(const std::string& cell, std::vector<int> fanins, int output) {
    netlist_.add_gate("g" + std::to_string(counter_++), cell, std::move(fanins), output);
  }

  /// NOT.
  void map_not(int in, int out) { gate("INV", {in}, out); }

  /// BUFF: two inverters.
  void map_buff(int in, int out) {
    const int mid = fresh_signal("buf");
    map_not(in, mid);
    map_not(mid, out);
  }

  /// NAND of any arity (trees of NAND<=4 + AND subtrees for wide inputs).
  void map_nand(std::vector<int> ins, int out) {
    if (ins.size() == 1) {
      map_not(ins[0], out);
      return;
    }
    while (ins.size() > 4) ins = reduce_with_and(std::move(ins));
    const std::string cell = "NAND" + std::to_string(ins.size());
    gate(cell, std::move(ins), out);
  }

  /// NOR of any arity.
  void map_nor(std::vector<int> ins, int out) {
    if (ins.size() == 1) {
      map_not(ins[0], out);
      return;
    }
    while (ins.size() > 4) ins = reduce_with_or(std::move(ins));
    const std::string cell = "NOR" + std::to_string(ins.size());
    gate(cell, std::move(ins), out);
  }

  /// AND = NAND + INV.
  void map_and(std::vector<int> ins, int out) {
    const int mid = fresh_signal("and");
    map_nand(std::move(ins), mid);
    map_not(mid, out);
  }

  /// OR = NOR + INV.
  void map_or(std::vector<int> ins, int out) {
    const int mid = fresh_signal("or");
    map_nor(std::move(ins), mid);
    map_not(mid, out);
  }

  /// XOR2 as the classic 4-NAND tree; wider XOR as a balanced chain.
  void map_xor(std::vector<int> ins, int out) {
    while (ins.size() > 2) {
      std::vector<int> next;
      for (std::size_t i = 0; i + 1 < ins.size(); i += 2) {
        const int mid = fresh_signal("xor");
        map_xor2(ins[i], ins[i + 1], mid);
        next.push_back(mid);
      }
      if (ins.size() % 2 == 1) next.push_back(ins.back());
      ins = std::move(next);
    }
    if (ins.size() == 1) {
      map_buff(ins[0], out);
      return;
    }
    map_xor2(ins[0], ins[1], out);
  }

  void map_xor2(int a, int b, int out) {
    const int nab = fresh_signal("x");
    const int na = fresh_signal("x");
    const int nb = fresh_signal("x");
    gate("NAND2", {a, b}, nab);
    gate("NAND2", {a, nab}, na);
    gate("NAND2", {b, nab}, nb);
    gate("NAND2", {na, nb}, out);
  }

  void map_xnor(std::vector<int> ins, int out) {
    const int mid = fresh_signal("xn");
    map_xor(std::move(ins), mid);
    map_not(mid, out);
  }

 private:
  /// Collapses the first four inputs into one AND result.
  std::vector<int> reduce_with_and(std::vector<int> ins) {
    const int mid = fresh_signal("w");
    map_and({ins[0], ins[1], ins[2], ins[3]}, mid);
    std::vector<int> next = {mid};
    next.insert(next.end(), ins.begin() + 4, ins.end());
    return next;
  }

  std::vector<int> reduce_with_or(std::vector<int> ins) {
    const int mid = fresh_signal("w");
    map_or({ins[0], ins[1], ins[2], ins[3]}, mid);
    std::vector<int> next = {mid};
    next.insert(next.end(), ins.begin() + 4, ins.end());
    return next;
  }

  Netlist& netlist_;
  [[maybe_unused]] const liberty::Library& library_;
  std::unordered_map<std::string, int> by_name_;
  int counter_ = 0;
};

}  // namespace

Netlist read_bench(std::istream& in, const std::string& name,
                   const liberty::Library& library,
                   const std::string& source) {
  const std::string where = source.empty() ? name + ".bench" : source;
  Netlist netlist(name, &library);
  Mapper mapper(netlist, library);

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;

    auto fail = [&](const std::string& what) -> void {
      throw ParseError(where, line_no, what);
    };

    const std::string upper = to_upper(sv);
    if (starts_with(upper, "INPUT(") || starts_with(upper, "OUTPUT(")) {
      const std::size_t open = sv.find('(');
      const std::size_t close = sv.rfind(')');
      if (close == std::string_view::npos || close <= open + 1) fail("malformed port");
      const std::string port(trim(sv.substr(open + 1, close - open - 1)));
      const int sig = mapper.signal(port);
      if (upper[0] == 'I') {
        netlist.mark_input(sig);
      } else {
        netlist.mark_output(sig);
      }
      continue;
    }

    const std::size_t eq = sv.find('=');
    if (eq == std::string_view::npos) fail("expected assignment");
    const std::string lhs(trim(sv.substr(0, eq)));
    std::string_view rhs = trim(sv.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
      fail("expected FUNC(args)");
    }
    const std::string func = to_upper(trim(rhs.substr(0, open)));
    std::vector<int> fanins;
    for (std::string_view arg : split(rhs.substr(open + 1, close - open - 1), ',')) {
      arg = trim(arg);
      if (arg.empty()) fail("empty operand");
      fanins.push_back(mapper.signal(std::string(arg)));
    }
    if (fanins.empty()) fail("gate with no inputs");
    const int out = mapper.signal(lhs);

    if (func == "DFF") {
      // ISCAS-89 state element: Q = DFF(D).
      if (fanins.size() != 1) fail("DFF takes one input");
      netlist.add_flip_flop("ff_" + lhs, fanins[0], out);
    } else if (func == "NOT" || func == "INV") {
      if (fanins.size() != 1) fail("NOT takes one input");
      mapper.map_not(fanins[0], out);
    } else if (func == "BUFF" || func == "BUF") {
      if (fanins.size() != 1) fail("BUFF takes one input");
      mapper.map_buff(fanins[0], out);
    } else if (func == "NAND") {
      mapper.map_nand(std::move(fanins), out);
    } else if (func == "NOR") {
      mapper.map_nor(std::move(fanins), out);
    } else if (func == "AND") {
      mapper.map_and(std::move(fanins), out);
    } else if (func == "OR") {
      mapper.map_or(std::move(fanins), out);
    } else if (func == "XOR") {
      mapper.map_xor(std::move(fanins), out);
    } else if (func == "XNOR") {
      mapper.map_xnor(std::move(fanins), out);
    } else if (func == "AOI21" || func == "OAI21" || func == "AOI22" ||
               func == "OAI22") {
      // Extension primitives (emitted by write_bench for already-mapped
      // netlists): map 1:1 onto the library cell of the same name, so a
      // write/read round trip reproduces the gate list exactly.
      const std::size_t arity =
          static_cast<std::size_t>((func[3] - '0') + (func[4] - '0'));
      if (fanins.size() != arity) fail(func + " takes " + std::to_string(arity) + " inputs");
      mapper.gate(func, std::move(fanins), out);
    } else {
      fail("unknown primitive '" + func + "'");
    }
  }

  netlist.finalize();
  return netlist;
}

Netlist read_bench(const std::string& text, const std::string& name,
                   const liberty::Library& library,
                   const std::string& source) {
  std::istringstream in(text);
  return read_bench(in, name, library, source);
}

Netlist read_bench_file(const std::string& path, const liberty::Library& library) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(ErrorCode::kIo, "cannot open bench file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  if (!content.empty() && content.back() != '\n') {
    // A .bench file always ends in a newline; a missing one means the file
    // was cut off mid-write (partial copy, full disk, killed generator).
    const int lines =
        1 + static_cast<int>(std::count(content.begin(), content.end(), '\n'));
    throw ParseError(path, lines,
                     "truncated final line (file does not end in a newline)");
  }
  // Derive the circuit name from the basename without extension.
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(content, name, library, path);
}

void write_bench(const Netlist& netlist, std::ostream& out) {
  out << "# " << netlist.name() << " -- written by svtox\n";
  for (int s : netlist.primary_inputs()) {
    out << "INPUT(" << netlist.signal_name(s) << ")\n";
  }
  for (int s : netlist.primary_outputs()) {
    out << "OUTPUT(" << netlist.signal_name(s) << ")\n";
  }
  for (const FlipFlop& ff : netlist.flip_flops()) {
    out << netlist.signal_name(ff.q) << " = DFF(" << netlist.signal_name(ff.d) << ")\n";
  }
  for (int g : netlist.topological_order()) {
    const Gate& gate = netlist.gate(g);
    const std::string& cell = netlist.cell_of(g).name();
    std::string func;
    if (cell == "INV") {
      func = "NOT";
    } else if (starts_with(cell, "NAND")) {
      func = "NAND";
    } else if (starts_with(cell, "NOR")) {
      func = "NOR";
    } else if (starts_with(cell, "AOI") || starts_with(cell, "OAI")) {
      // Extension primitives; read_bench maps them back 1:1, keeping the
      // pin order, so write/read round trips are gate-exact.
      func = cell;
    } else {
      throw ContractError("write_bench: cell '" + cell +
                          "' has no bench primitive equivalent");
    }
    out << netlist.signal_name(gate.output) << " = " << func << '(';
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i) out << ", ";
      out << netlist.signal_name(gate.fanins[i]);
    }
    out << ")\n";
  }
}

std::string write_bench(const Netlist& netlist) {
  std::ostringstream out;
  write_bench(netlist, out);
  return out.str();
}

}  // namespace svtox::netlist
