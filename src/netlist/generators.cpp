#include "netlist/generators.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::netlist {

GateMix default_gate_mix() {
  return {
      {"INV", 0.16},  {"NAND2", 0.30}, {"NAND3", 0.09}, {"NAND4", 0.04},
      {"NOR2", 0.20}, {"NOR3", 0.08},  {"NOR4", 0.03},  {"AOI21", 0.05},
      {"OAI21", 0.05},
  };
}

namespace {

/// Weighted choice over the mix entries present in the library.
class CellPicker {
 public:
  CellPicker(const liberty::Library& library, const GateMix& mix) {
    for (const auto& [name, weight] : mix) {
      if (weight <= 0.0 || !library.has_cell(name)) continue;
      names_.push_back(name);
      arity_.push_back(library.cell(name).num_inputs());
      cumulative_.push_back((cumulative_.empty() ? 0.0 : cumulative_.back()) + weight);
    }
    if (names_.empty()) throw ContractError("CellPicker: empty gate mix");
  }

  /// Picks a cell whose arity does not exceed `max_arity`.
  std::size_t pick(Rng& rng, int max_arity) const {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double x = rng.next_double() * cumulative_.back();
      const std::size_t idx =
          std::lower_bound(cumulative_.begin(), cumulative_.end(), x) -
          cumulative_.begin();
      if (arity_[idx] <= max_arity) return idx;
    }
    // Degenerate fallback: the smallest-arity cell.
    return std::min_element(arity_.begin(), arity_.end()) - arity_.begin();
  }

  const std::string& name(std::size_t idx) const { return names_[idx]; }
  int arity(std::size_t idx) const { return arity_[idx]; }

 private:
  std::vector<std::string> names_;
  std::vector<int> arity_;
  std::vector<double> cumulative_;
};

}  // namespace

Netlist random_circuit(const liberty::Library& library, const std::string& name,
                       int num_inputs, int num_gates, std::uint64_t seed,
                       const GateMix& mix) {
  if (num_inputs < 2) throw ContractError("random_circuit: need at least 2 inputs");
  if (num_gates < 1) throw ContractError("random_circuit: need at least 1 gate");

  Netlist netlist(name, &library);
  Rng rng(seed);
  const CellPicker picker(library, mix);

  std::vector<int> signals;  // all drivable sources, in creation order
  std::vector<int> unused_inputs;
  for (int i = 0; i < num_inputs; ++i) {
    const int sig = netlist.add_signal("pi" + std::to_string(i));
    netlist.mark_input(sig);
    signals.push_back(sig);
    unused_inputs.push_back(sig);
  }

  for (int g = 0; g < num_gates; ++g) {
    const std::size_t cell = picker.pick(rng, static_cast<int>(signals.size()));
    const int arity = picker.arity(cell);

    // Fanin selection: consume unused primary inputs first so every input
    // is observable, then draw with temporal locality (recent signals are
    // more likely) to build up logic depth.
    std::vector<int> fanins;
    while (static_cast<int>(fanins.size()) < arity) {
      int candidate;
      if (!unused_inputs.empty()) {
        const std::size_t pick = rng.next_below(unused_inputs.size());
        candidate = unused_inputs[pick];
        unused_inputs.erase(unused_inputs.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (rng.next_double() < 0.65) {
        const std::size_t window =
            std::max<std::size_t>(8, signals.size() / 8);
        const std::size_t lo = signals.size() > window ? signals.size() - window : 0;
        candidate = signals[lo + rng.next_below(signals.size() - lo)];
      } else {
        candidate = signals[rng.next_below(signals.size())];
      }
      if (std::find(fanins.begin(), fanins.end(), candidate) == fanins.end()) {
        fanins.push_back(candidate);
      }
    }

    const int out = netlist.add_signal("n" + std::to_string(g));
    netlist.add_gate("g" + std::to_string(g), picker.name(cell), std::move(fanins), out);
    signals.push_back(out);
  }

  // Signals nobody reads become primary outputs.
  std::vector<int> fanout_count(static_cast<std::size_t>(netlist.num_signals()), 0);
  for (const Gate& gate : netlist.gates()) {
    for (int f : gate.fanins) ++fanout_count[static_cast<std::size_t>(f)];
  }
  for (const Gate& gate : netlist.gates()) {
    if (fanout_count[static_cast<std::size_t>(gate.output)] == 0) {
      netlist.mark_output(gate.output);
    }
  }

  netlist.finalize();
  return netlist;
}

namespace {

/// Helper shared by the structural generators: NAND-level primitives over
/// an under-construction netlist.
class Builder {
 public:
  Builder(Netlist& netlist) : netlist_(netlist) {}

  int input(const std::string& name) {
    const int sig = netlist_.add_signal(name);
    netlist_.mark_input(sig);
    return sig;
  }

  int fresh(const std::string& hint) {
    return netlist_.add_signal(hint + std::to_string(counter_++));
  }

  int emit(const std::string& cell, std::vector<int> ins, const std::string& hint) {
    const int out = fresh(hint);
    netlist_.add_gate(hint + "_g" + std::to_string(counter_++), cell, std::move(ins), out);
    return out;
  }

  int nand2(int a, int b) { return emit("NAND2", {a, b}, "nd"); }
  int nand3(int a, int b, int c) { return emit("NAND3", {a, b, c}, "nd3"); }
  int nand4(int a, int b, int c, int d) { return emit("NAND4", {a, b, c, d}, "nd4"); }
  int inv(int a) { return emit("INV", {a}, "inv"); }
  int and2(int a, int b) { return inv(nand2(a, b)); }

  /// XOR2 as a 4-NAND tree.
  int xor2(int a, int b) {
    const int nab = nand2(a, b);
    return nand2(nand2(a, nab), nand2(b, nab));
  }

  /// Full adder from 9 NAND2 (carry chain via shared nodes).
  struct FullAdd {
    int sum;
    int carry;
  };
  FullAdd full_add(int a, int b, int cin) {
    const int n1 = nand2(a, b);
    const int hs = nand2(nand2(a, n1), nand2(b, n1));  // a ^ b
    const int n4 = nand2(hs, cin);
    const int sum = nand2(nand2(hs, n4), nand2(cin, n4));
    const int carry = nand2(n1, n4);
    return {sum, carry};
  }

  /// Half adder: sum = a ^ b, carry = a & b.
  FullAdd half_add(int a, int b) { return {xor2(a, b), and2(a, b)}; }

  void output(int signal) { netlist_.mark_output(signal); }

 private:
  Netlist& netlist_;
  int counter_ = 0;
};

}  // namespace

Netlist ripple_carry_adder(const liberty::Library& library, int bits) {
  if (bits < 1) throw ContractError("ripple_carry_adder: need at least 1 bit");
  Netlist netlist("rca" + std::to_string(bits), &library);
  Builder b(netlist);

  std::vector<int> a(bits), bb(bits);
  for (int i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));
  int carry = b.input("cin");

  for (int i = 0; i < bits; ++i) {
    const Builder::FullAdd fa = b.full_add(a[i], bb[i], carry);
    b.output(fa.sum);
    carry = fa.carry;
  }
  b.output(carry);

  netlist.finalize();
  return netlist;
}

Netlist array_multiplier(const liberty::Library& library, int n) {
  if (n < 2) throw ContractError("array_multiplier: need at least 2 bits");
  Netlist netlist("mul" + std::to_string(n) + "x" + std::to_string(n), &library);
  Builder b(netlist);

  std::vector<int> a(n), x(n);
  for (int i = 0; i < n; ++i) a[i] = b.input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) x[i] = b.input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[i] & x[j].
  std::vector<std::vector<int>> pp(n, std::vector<int>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) pp[i][j] = b.and2(a[i], x[j]);
  }

  // Ripple-carry row reduction (the classic c6288-style array): row i adds
  // its partial products to the shifted running sum. `sum[j]` holds the bit
  // for column i+j; `top_carry` is the previous row's carry-out.
  std::vector<int> sum = pp[0];
  b.output(sum[0]);  // product bit 0
  int top_carry = -1;
  for (int i = 1; i < n; ++i) {
    std::vector<int> next(static_cast<std::size_t>(n));
    int carry = -1;
    for (int j = 0; j < n; ++j) {
      std::vector<int> terms = {pp[i][j]};
      if (j + 1 < n) {
        terms.push_back(sum[static_cast<std::size_t>(j + 1)]);
      } else if (top_carry >= 0) {
        terms.push_back(top_carry);
      }
      if (carry >= 0) terms.push_back(carry);

      if (terms.size() == 1) {
        next[static_cast<std::size_t>(j)] = terms[0];
        carry = -1;
      } else if (terms.size() == 2) {
        const Builder::FullAdd ha = b.half_add(terms[0], terms[1]);
        next[static_cast<std::size_t>(j)] = ha.sum;
        carry = ha.carry;
      } else {
        const Builder::FullAdd fa = b.full_add(terms[0], terms[1], terms[2]);
        next[static_cast<std::size_t>(j)] = fa.sum;
        carry = fa.carry;
      }
    }
    top_carry = carry;
    sum = std::move(next);
    b.output(sum[0]);  // product bit i
  }
  // High half: columns n .. 2n-2 plus the final carry (bit 2n-1).
  for (int j = 1; j < n; ++j) b.output(sum[static_cast<std::size_t>(j)]);
  if (top_carry >= 0) b.output(top_carry);

  netlist.finalize();
  return netlist;
}

Netlist alu64(const liberty::Library& library) {
  Netlist netlist("alu64", &library);
  Builder b(netlist);

  constexpr int kBits = 64;
  std::vector<int> a(kBits), x(kBits);
  for (int i = 0; i < kBits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (int i = 0; i < kBits; ++i) x[i] = b.input("b" + std::to_string(i));
  const int s0 = b.input("sel0");
  const int s1 = b.input("sel1");
  const int cin = b.input("cin");

  // One-hot select decode (shared across all bits).
  const int ns0 = b.inv(s0);
  const int ns1 = b.inv(s1);
  const int sel_and = b.and2(ns1, ns0);   // 00 -> AND
  const int sel_or = b.and2(ns1, s0);     // 01 -> OR
  const int sel_xor = b.and2(s1, ns0);    // 10 -> XOR
  const int sel_add = b.and2(s1, s0);     // 11 -> ADD

  int carry = cin;
  for (int i = 0; i < kBits; ++i) {
    const int nand_ab = b.nand2(a[i], x[i]);
    const int and_ab = b.inv(nand_ab);
    const int or_ab = b.inv(b.emit("NOR2", {a[i], x[i]}, "nr"));
    const int xor_ab = b.xor2(a[i], x[i]);
    const Builder::FullAdd fa = b.full_add(a[i], x[i], carry);
    carry = fa.carry;

    // 4:1 mux as NAND4 of NAND2s (OR of ANDs).
    const int m0 = b.nand2(and_ab, sel_and);
    const int m1 = b.nand2(or_ab, sel_or);
    const int m2 = b.nand2(xor_ab, sel_xor);
    const int m3 = b.nand2(fa.sum, sel_add);
    const int out = b.nand4(m0, m1, m2, m3);
    b.output(out);
  }
  b.output(carry);

  // Zero-detect tree over the result mux outputs is part of real ALUs and
  // brings the gate count in line with the paper's alu64 row.
  std::vector<int> zero_stage;
  for (int i = 0; i < kBits; i += 4) {
    // NOR4 of four result bits is 1 when all are 0... our outputs are
    // already consumed as POs; detect over the XOR lane instead (it is a
    // function of the inputs, like a real zero flag on the bus).
    const int x0 = b.xor2(a[i], x[i]);
    const int x1 = b.xor2(a[i + 1], x[i + 1]);
    const int x2 = b.xor2(a[i + 2], x[i + 2]);
    const int x3 = b.xor2(a[i + 3], x[i + 3]);
    zero_stage.push_back(b.emit("NOR4", {x0, x1, x2, x3}, "z"));
  }
  while (zero_stage.size() > 1) {
    std::vector<int> next;
    std::size_t i = 0;
    for (; i + 3 < zero_stage.size(); i += 4) {
      next.push_back(b.inv(b.nand4(zero_stage[i], zero_stage[i + 1], zero_stage[i + 2],
                                   zero_stage[i + 3])));
    }
    for (; i < zero_stage.size(); ++i) next.push_back(zero_stage[i]);
    if (next.size() == zero_stage.size()) break;  // safety against 1-3 leftovers
    zero_stage = std::move(next);
  }
  b.output(zero_stage.front());

  netlist.finalize();
  return netlist;
}

Netlist sequential_pipeline(const liberty::Library& library, const std::string& name,
                            int width, int stages, int gates_per_stage,
                            std::uint64_t seed) {
  if (width < 2 || stages < 1 || gates_per_stage < width) {
    throw ContractError("sequential_pipeline: bad configuration");
  }
  Netlist netlist(name, &library);
  Rng rng(seed);
  const CellPicker picker(library, default_gate_mix());

  // Stage 0 sources: primary inputs. Later stages read register outputs.
  std::vector<int> sources;
  for (int i = 0; i < width; ++i) {
    const int sig = netlist.add_signal("pi" + std::to_string(i));
    netlist.mark_input(sig);
    sources.push_back(sig);
  }

  int counter = 0;
  for (int stage = 0; stage < stages; ++stage) {
    // Random logic cloud over this stage's sources.
    std::vector<int> signals = sources;
    std::vector<int> unused = sources;
    for (int g = 0; g < gates_per_stage; ++g) {
      const std::size_t cell = picker.pick(rng, static_cast<int>(signals.size()));
      const int arity = picker.arity(cell);
      std::vector<int> fanins;
      while (static_cast<int>(fanins.size()) < arity) {
        int candidate;
        if (!unused.empty()) {
          const std::size_t pick = rng.next_below(unused.size());
          candidate = unused[pick];
          unused.erase(unused.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          candidate = signals[rng.next_below(signals.size())];
        }
        if (std::find(fanins.begin(), fanins.end(), candidate) == fanins.end()) {
          fanins.push_back(candidate);
        }
      }
      const int out = netlist.add_signal("s" + std::to_string(stage) + "_n" +
                                         std::to_string(g));
      netlist.add_gate("g" + std::to_string(counter++), picker.name(cell),
                       std::move(fanins), out);
      signals.push_back(out);
    }

    // Register bank: latch the last `width` stage outputs.
    std::vector<int> next_sources;
    for (int b = 0; b < width; ++b) {
      const int d = signals[signals.size() - static_cast<std::size_t>(width) +
                            static_cast<std::size_t>(b)];
      if (stage + 1 == stages) {
        netlist.mark_output(d);  // final stage feeds the outputs directly
        continue;
      }
      const int q = netlist.add_signal("r" + std::to_string(stage) + "_q" +
                                       std::to_string(b));
      netlist.add_flip_flop("ff" + std::to_string(stage) + "_" + std::to_string(b), d, q);
      next_sources.push_back(q);
    }
    if (stage + 1 < stages) sources = std::move(next_sources);
  }

  netlist.finalize();
  return netlist;
}

Netlist parity_checker(const liberty::Library& library, int data_bits, int check_bits) {
  if (data_bits < 2 || check_bits < 1) {
    throw ContractError("parity_checker: bad configuration");
  }
  Netlist netlist("sec" + std::to_string(data_bits), &library);
  Builder b(netlist);

  std::vector<int> data(data_bits), check(check_bits);
  for (int i = 0; i < data_bits; ++i) data[i] = b.input("d" + std::to_string(i));
  for (int i = 0; i < check_bits; ++i) check[i] = b.input("c" + std::to_string(i));
  const int enable = b.input("en");

  // Syndrome j = XOR of a (Hamming-style) half of the data bits + check j.
  for (int j = 0; j < check_bits; ++j) {
    std::vector<int> terms;
    for (int i = 0; i < data_bits; ++i) {
      // Data bit i participates in syndrome j when bit j of (i+1) is set --
      // the classic Hamming membership rule.
      if (((i + 1) >> (j % 8)) & 1) terms.push_back(data[i]);
    }
    if (terms.empty()) terms.push_back(data[j % data_bits]);
    terms.push_back(check[j]);
    int acc = terms[0];
    for (std::size_t t = 1; t < terms.size(); ++t) acc = b.xor2(acc, terms[t]);
    b.output(b.and2(acc, enable));
  }

  netlist.finalize();
  return netlist;
}

}  // namespace svtox::netlist
