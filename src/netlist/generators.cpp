#include "netlist/generators.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svtox::netlist {

GateMix default_gate_mix() {
  return {
      {"INV", 0.16},  {"NAND2", 0.30}, {"NAND3", 0.09}, {"NAND4", 0.04},
      {"NOR2", 0.20}, {"NOR3", 0.08},  {"NOR4", 0.03},  {"AOI21", 0.05},
      {"OAI21", 0.05},
  };
}

namespace {

/// Weighted choice over the mix entries present in the library. The
/// cumulative-weight vector and per-entry library cell indices are
/// precomputed once, so per-gate sampling is a binary search plus integer
/// reads -- no map walks or cell-name lookups at generation time.
class CellPicker {
 public:
  CellPicker(const liberty::Library& library, const GateMix& mix) {
    for (const auto& [name, weight] : mix) {
      if (weight <= 0.0 || !library.has_cell(name)) continue;
      names_.push_back(name);
      cell_index_.push_back(library.cell_index(name));
      arity_.push_back(library.cell(name).num_inputs());
      cumulative_.push_back((cumulative_.empty() ? 0.0 : cumulative_.back()) + weight);
    }
    if (names_.empty()) throw ContractError("CellPicker: empty gate mix");
  }

  /// Picks a cell whose arity does not exceed `max_arity`.
  std::size_t pick(Rng& rng, int max_arity) const {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double x = rng.next_double() * cumulative_.back();
      const std::size_t idx =
          std::lower_bound(cumulative_.begin(), cumulative_.end(), x) -
          cumulative_.begin();
      if (arity_[idx] <= max_arity) return idx;
    }
    // Degenerate fallback: the smallest-arity cell.
    return std::min_element(arity_.begin(), arity_.end()) - arity_.begin();
  }

  const std::string& name(std::size_t idx) const { return names_[idx]; }
  int cell_index(std::size_t idx) const { return cell_index_[idx]; }
  int arity(std::size_t idx) const { return arity_[idx]; }

 private:
  std::vector<std::string> names_;
  std::vector<int> cell_index_;
  std::vector<int> arity_;
  std::vector<double> cumulative_;
};

}  // namespace

Netlist random_circuit(const liberty::Library& library, const std::string& name,
                       int num_inputs, int num_gates, std::uint64_t seed,
                       const GateMix& mix) {
  if (num_inputs < 2) throw ContractError("random_circuit: need at least 2 inputs");
  if (num_gates < 1) throw ContractError("random_circuit: need at least 1 gate");

  Netlist netlist(name, &library);
  Rng rng(seed);
  const CellPicker picker(library, mix);

  std::vector<int> signals;  // all drivable sources, in creation order
  std::vector<int> unused_inputs;
  for (int i = 0; i < num_inputs; ++i) {
    const int sig = netlist.add_signal("pi" + std::to_string(i));
    netlist.mark_input(sig);
    signals.push_back(sig);
    unused_inputs.push_back(sig);
  }

  for (int g = 0; g < num_gates; ++g) {
    const std::size_t cell = picker.pick(rng, static_cast<int>(signals.size()));
    const int arity = picker.arity(cell);

    // Fanin selection: consume unused primary inputs first so every input
    // is observable, then draw with temporal locality (recent signals are
    // more likely) to build up logic depth.
    std::vector<int> fanins;
    while (static_cast<int>(fanins.size()) < arity) {
      int candidate;
      if (!unused_inputs.empty()) {
        const std::size_t pick = rng.next_below(unused_inputs.size());
        candidate = unused_inputs[pick];
        unused_inputs.erase(unused_inputs.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (rng.next_double() < 0.65) {
        const std::size_t window =
            std::max<std::size_t>(8, signals.size() / 8);
        const std::size_t lo = signals.size() > window ? signals.size() - window : 0;
        candidate = signals[lo + rng.next_below(signals.size() - lo)];
      } else {
        candidate = signals[rng.next_below(signals.size())];
      }
      if (std::find(fanins.begin(), fanins.end(), candidate) == fanins.end()) {
        fanins.push_back(candidate);
      }
    }

    const int out = netlist.add_signal("n" + std::to_string(g));
    netlist.add_gate("g" + std::to_string(g), picker.cell_index(cell), std::move(fanins),
                     out);
    signals.push_back(out);
  }

  // Signals nobody reads become primary outputs.
  std::vector<int> fanout_count(static_cast<std::size_t>(netlist.num_signals()), 0);
  for (const Gate& gate : netlist.gates()) {
    for (int f : gate.fanins) ++fanout_count[static_cast<std::size_t>(f)];
  }
  for (const Gate& gate : netlist.gates()) {
    if (fanout_count[static_cast<std::size_t>(gate.output)] == 0) {
      netlist.mark_output(gate.output);
    }
  }

  netlist.finalize();
  return netlist;
}

namespace {

/// Helper shared by the structural generators: NAND-level primitives over
/// an under-construction netlist.
class Builder {
 public:
  Builder(Netlist& netlist) : netlist_(netlist) {}

  int input(const std::string& name) {
    const int sig = netlist_.add_signal(name);
    netlist_.mark_input(sig);
    return sig;
  }

  int fresh(const std::string& hint) {
    return netlist_.add_signal(hint + std::to_string(counter_++));
  }

  int emit(const std::string& cell, std::vector<int> ins, const std::string& hint) {
    const int out = fresh(hint);
    netlist_.add_gate(hint + "_g" + std::to_string(counter_++), cell, std::move(ins), out);
    return out;
  }

  int nand2(int a, int b) { return emit("NAND2", {a, b}, "nd"); }
  int nand3(int a, int b, int c) { return emit("NAND3", {a, b, c}, "nd3"); }
  int nand4(int a, int b, int c, int d) { return emit("NAND4", {a, b, c, d}, "nd4"); }
  int inv(int a) { return emit("INV", {a}, "inv"); }
  int and2(int a, int b) { return inv(nand2(a, b)); }

  /// XOR2 as a 4-NAND tree.
  int xor2(int a, int b) {
    const int nab = nand2(a, b);
    return nand2(nand2(a, nab), nand2(b, nab));
  }

  /// Full adder from 9 NAND2 (carry chain via shared nodes).
  struct FullAdd {
    int sum;
    int carry;
  };
  FullAdd full_add(int a, int b, int cin) {
    const int n1 = nand2(a, b);
    const int hs = nand2(nand2(a, n1), nand2(b, n1));  // a ^ b
    const int n4 = nand2(hs, cin);
    const int sum = nand2(nand2(hs, n4), nand2(cin, n4));
    const int carry = nand2(n1, n4);
    return {sum, carry};
  }

  /// Half adder: sum = a ^ b, carry = a & b.
  FullAdd half_add(int a, int b) { return {xor2(a, b), and2(a, b)}; }

  void output(int signal) { netlist_.mark_output(signal); }

 private:
  Netlist& netlist_;
  int counter_ = 0;
};

}  // namespace

Netlist ripple_carry_adder(const liberty::Library& library, int bits) {
  if (bits < 1) throw ContractError("ripple_carry_adder: need at least 1 bit");
  Netlist netlist("rca" + std::to_string(bits), &library);
  Builder b(netlist);

  std::vector<int> a(bits), bb(bits);
  for (int i = 0; i < bits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) bb[i] = b.input("b" + std::to_string(i));
  int carry = b.input("cin");

  for (int i = 0; i < bits; ++i) {
    const Builder::FullAdd fa = b.full_add(a[i], bb[i], carry);
    b.output(fa.sum);
    carry = fa.carry;
  }
  b.output(carry);

  netlist.finalize();
  return netlist;
}

Netlist array_multiplier(const liberty::Library& library, int n) {
  if (n < 2) throw ContractError("array_multiplier: need at least 2 bits");
  Netlist netlist("mul" + std::to_string(n) + "x" + std::to_string(n), &library);
  Builder b(netlist);

  std::vector<int> a(n), x(n);
  for (int i = 0; i < n; ++i) a[i] = b.input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) x[i] = b.input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[i] & x[j].
  std::vector<std::vector<int>> pp(n, std::vector<int>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) pp[i][j] = b.and2(a[i], x[j]);
  }

  // Ripple-carry row reduction (the classic c6288-style array): row i adds
  // its partial products to the shifted running sum. `sum[j]` holds the bit
  // for column i+j; `top_carry` is the previous row's carry-out.
  std::vector<int> sum = pp[0];
  b.output(sum[0]);  // product bit 0
  int top_carry = -1;
  for (int i = 1; i < n; ++i) {
    std::vector<int> next(static_cast<std::size_t>(n));
    int carry = -1;
    for (int j = 0; j < n; ++j) {
      std::vector<int> terms = {pp[i][j]};
      if (j + 1 < n) {
        terms.push_back(sum[static_cast<std::size_t>(j + 1)]);
      } else if (top_carry >= 0) {
        terms.push_back(top_carry);
      }
      if (carry >= 0) terms.push_back(carry);

      if (terms.size() == 1) {
        next[static_cast<std::size_t>(j)] = terms[0];
        carry = -1;
      } else if (terms.size() == 2) {
        const Builder::FullAdd ha = b.half_add(terms[0], terms[1]);
        next[static_cast<std::size_t>(j)] = ha.sum;
        carry = ha.carry;
      } else {
        const Builder::FullAdd fa = b.full_add(terms[0], terms[1], terms[2]);
        next[static_cast<std::size_t>(j)] = fa.sum;
        carry = fa.carry;
      }
    }
    top_carry = carry;
    sum = std::move(next);
    b.output(sum[0]);  // product bit i
  }
  // High half: columns n .. 2n-2 plus the final carry (bit 2n-1).
  for (int j = 1; j < n; ++j) b.output(sum[static_cast<std::size_t>(j)]);
  if (top_carry >= 0) b.output(top_carry);

  netlist.finalize();
  return netlist;
}

Netlist alu64(const liberty::Library& library) {
  Netlist netlist("alu64", &library);
  Builder b(netlist);

  constexpr int kBits = 64;
  std::vector<int> a(kBits), x(kBits);
  for (int i = 0; i < kBits; ++i) a[i] = b.input("a" + std::to_string(i));
  for (int i = 0; i < kBits; ++i) x[i] = b.input("b" + std::to_string(i));
  const int s0 = b.input("sel0");
  const int s1 = b.input("sel1");
  const int cin = b.input("cin");

  // One-hot select decode (shared across all bits).
  const int ns0 = b.inv(s0);
  const int ns1 = b.inv(s1);
  const int sel_and = b.and2(ns1, ns0);   // 00 -> AND
  const int sel_or = b.and2(ns1, s0);     // 01 -> OR
  const int sel_xor = b.and2(s1, ns0);    // 10 -> XOR
  const int sel_add = b.and2(s1, s0);     // 11 -> ADD

  int carry = cin;
  for (int i = 0; i < kBits; ++i) {
    const int nand_ab = b.nand2(a[i], x[i]);
    const int and_ab = b.inv(nand_ab);
    const int or_ab = b.inv(b.emit("NOR2", {a[i], x[i]}, "nr"));
    const int xor_ab = b.xor2(a[i], x[i]);
    const Builder::FullAdd fa = b.full_add(a[i], x[i], carry);
    carry = fa.carry;

    // 4:1 mux as NAND4 of NAND2s (OR of ANDs).
    const int m0 = b.nand2(and_ab, sel_and);
    const int m1 = b.nand2(or_ab, sel_or);
    const int m2 = b.nand2(xor_ab, sel_xor);
    const int m3 = b.nand2(fa.sum, sel_add);
    const int out = b.nand4(m0, m1, m2, m3);
    b.output(out);
  }
  b.output(carry);

  // Zero-detect tree over the result mux outputs is part of real ALUs and
  // brings the gate count in line with the paper's alu64 row.
  std::vector<int> zero_stage;
  for (int i = 0; i < kBits; i += 4) {
    // NOR4 of four result bits is 1 when all are 0... our outputs are
    // already consumed as POs; detect over the XOR lane instead (it is a
    // function of the inputs, like a real zero flag on the bus).
    const int x0 = b.xor2(a[i], x[i]);
    const int x1 = b.xor2(a[i + 1], x[i + 1]);
    const int x2 = b.xor2(a[i + 2], x[i + 2]);
    const int x3 = b.xor2(a[i + 3], x[i + 3]);
    zero_stage.push_back(b.emit("NOR4", {x0, x1, x2, x3}, "z"));
  }
  while (zero_stage.size() > 1) {
    std::vector<int> next;
    std::size_t i = 0;
    for (; i + 3 < zero_stage.size(); i += 4) {
      next.push_back(b.inv(b.nand4(zero_stage[i], zero_stage[i + 1], zero_stage[i + 2],
                                   zero_stage[i + 3])));
    }
    for (; i < zero_stage.size(); ++i) next.push_back(zero_stage[i]);
    if (next.size() == zero_stage.size()) break;  // safety against 1-3 leftovers
    zero_stage = std::move(next);
  }
  b.output(zero_stage.front());

  netlist.finalize();
  return netlist;
}

Netlist sequential_pipeline(const liberty::Library& library, const std::string& name,
                            int width, int stages, int gates_per_stage,
                            std::uint64_t seed) {
  if (width < 2 || stages < 1 || gates_per_stage < width) {
    throw ContractError("sequential_pipeline: bad configuration");
  }
  Netlist netlist(name, &library);
  Rng rng(seed);
  const CellPicker picker(library, default_gate_mix());

  // Stage 0 sources: primary inputs. Later stages read register outputs.
  std::vector<int> sources;
  for (int i = 0; i < width; ++i) {
    const int sig = netlist.add_signal("pi" + std::to_string(i));
    netlist.mark_input(sig);
    sources.push_back(sig);
  }

  int counter = 0;
  for (int stage = 0; stage < stages; ++stage) {
    // Random logic cloud over this stage's sources.
    std::vector<int> signals = sources;
    std::vector<int> unused = sources;
    for (int g = 0; g < gates_per_stage; ++g) {
      const std::size_t cell = picker.pick(rng, static_cast<int>(signals.size()));
      const int arity = picker.arity(cell);
      std::vector<int> fanins;
      while (static_cast<int>(fanins.size()) < arity) {
        int candidate;
        if (!unused.empty()) {
          const std::size_t pick = rng.next_below(unused.size());
          candidate = unused[pick];
          unused.erase(unused.begin() + static_cast<std::ptrdiff_t>(pick));
        } else {
          candidate = signals[rng.next_below(signals.size())];
        }
        if (std::find(fanins.begin(), fanins.end(), candidate) == fanins.end()) {
          fanins.push_back(candidate);
        }
      }
      const int out = netlist.add_signal("s" + std::to_string(stage) + "_n" +
                                         std::to_string(g));
      netlist.add_gate("g" + std::to_string(counter++), picker.cell_index(cell),
                       std::move(fanins), out);
      signals.push_back(out);
    }

    // Register bank: latch the last `width` stage outputs.
    std::vector<int> next_sources;
    for (int b = 0; b < width; ++b) {
      const int d = signals[signals.size() - static_cast<std::size_t>(width) +
                            static_cast<std::size_t>(b)];
      if (stage + 1 == stages) {
        netlist.mark_output(d);  // final stage feeds the outputs directly
        continue;
      }
      const int q = netlist.add_signal("r" + std::to_string(stage) + "_q" +
                                       std::to_string(b));
      netlist.add_flip_flop("ff" + std::to_string(stage) + "_" + std::to_string(b), d, q);
      next_sources.push_back(q);
    }
    if (stage + 1 < stages) sources = std::move(next_sources);
  }

  netlist.finalize();
  return netlist;
}

Netlist parity_checker(const liberty::Library& library, int data_bits, int check_bits) {
  if (data_bits < 2 || check_bits < 1) {
    throw ContractError("parity_checker: bad configuration");
  }
  Netlist netlist("sec" + std::to_string(data_bits), &library);
  Builder b(netlist);

  std::vector<int> data(data_bits), check(check_bits);
  for (int i = 0; i < data_bits; ++i) data[i] = b.input("d" + std::to_string(i));
  for (int i = 0; i < check_bits; ++i) check[i] = b.input("c" + std::to_string(i));
  const int enable = b.input("en");

  // Syndrome j = XOR of a (Hamming-style) half of the data bits + check j.
  for (int j = 0; j < check_bits; ++j) {
    std::vector<int> terms;
    for (int i = 0; i < data_bits; ++i) {
      // Data bit i participates in syndrome j when bit j of (i+1) is set --
      // the classic Hamming membership rule.
      if (((i + 1) >> (j % 8)) & 1) terms.push_back(data[i]);
    }
    if (terms.empty()) terms.push_back(data[j % data_bits]);
    terms.push_back(check[j]);
    int acc = terms[0];
    for (std::size_t t = 1; t < terms.size(); ++t) acc = b.xor2(acc, terms[t]);
    b.output(b.and2(acc, enable));
  }

  netlist.finalize();
  return netlist;
}

Netlist random_dag(const liberty::Library& library, const std::string& name,
                   const DagOptions& options) {
  if (options.num_inputs < 2) throw ContractError("random_dag: need at least 2 inputs");
  if (options.num_gates < 1) throw ContractError("random_dag: need at least 1 gate");
  if (options.target_depth < 1 || options.target_depth > options.num_gates) {
    throw ContractError("random_dag: target_depth must be in [1, num_gates]");
  }
  if (options.max_fanout < 1) throw ContractError("random_dag: max_fanout must be >= 1");

  Netlist netlist(name, &library);
  Rng rng(options.seed);
  const CellPicker picker(library, options.mix);

  // Every non-first fanin draw goes through `pool`, a vector of signals
  // with remaining fanout budget; saturated entries are swap-removed, so
  // the whole generation is O(num_gates * arity) with no quadratic
  // erase/scan. Signals enter the pool only once their rank is complete,
  // which keeps every fanin strictly below the gate's own rank.
  std::vector<int> budget;       // per signal: remaining fanout allowance
  std::vector<int> pool;         // signals with budget > 0
  std::vector<int> pool_slot;    // per signal: index in pool, -1 if absent
  auto add_source = [&](int signal) {
    if (static_cast<std::size_t>(signal) >= budget.size()) {
      budget.resize(static_cast<std::size_t>(signal) + 1, 0);
      pool_slot.resize(static_cast<std::size_t>(signal) + 1, -1);
    }
    budget[static_cast<std::size_t>(signal)] = options.max_fanout;
    pool_slot[static_cast<std::size_t>(signal)] = static_cast<int>(pool.size());
    pool.push_back(signal);
  };
  auto consume = [&](int signal) {
    if (--budget[static_cast<std::size_t>(signal)] > 0) return;
    const int slot = pool_slot[static_cast<std::size_t>(signal)];
    if (slot < 0) return;
    const int last = pool.back();
    pool[static_cast<std::size_t>(slot)] = last;
    pool_slot[static_cast<std::size_t>(last)] = slot;
    pool.pop_back();
    pool_slot[static_cast<std::size_t>(signal)] = -1;
  };

  std::vector<int> unused_inputs;
  std::vector<int> prev_rank;  // previous rank's signals (rank 0: the PIs)
  for (int i = 0; i < options.num_inputs; ++i) {
    const int sig = netlist.add_signal("pi" + std::to_string(i));
    netlist.mark_input(sig);
    add_source(sig);
    unused_inputs.push_back(sig);
    prev_rank.push_back(sig);
  }

  // Lay gates out in `target_depth` ranks. A gate's first fanin comes from
  // the previous rank (primary inputs for rank 0), which pins its level to
  // rank + 1 exactly; remaining fanins come from the budget pool (strictly
  // lower ranks), consuming unseen primary inputs first so every input is
  // observable.
  const int depth = options.target_depth;
  int emitted = 0;
  std::vector<int> fanins;
  for (int rank = 0; rank < depth; ++rank) {
    const int rank_gates = (options.num_gates - emitted) / (depth - rank);
    const std::size_t rank_base = static_cast<std::size_t>(netlist.num_signals());
    std::vector<int> this_rank;
    this_rank.reserve(static_cast<std::size_t>(rank_gates));
    for (int g = 0; g < rank_gates; ++g) {
      const std::size_t cell = picker.pick(rng, static_cast<int>(rank_base));
      const int arity = picker.arity(cell);
      fanins.clear();

      // First fanin: a previous-rank signal, preferring one with budget
      // left (one retry; the cap is soft, so a saturated signal is still
      // usable -- exact depth beats the fanout preference).
      int first = prev_rank[rng.next_below(prev_rank.size())];
      if (budget[static_cast<std::size_t>(first)] <= 0 && prev_rank.size() > 1) {
        first = prev_rank[rng.next_below(prev_rank.size())];
      }
      consume(first);
      fanins.push_back(first);

      while (static_cast<int>(fanins.size()) < arity) {
        int candidate;
        if (!unused_inputs.empty()) {
          candidate = unused_inputs.back();
          unused_inputs.pop_back();
        } else if (!pool.empty()) {
          candidate = pool[rng.next_below(pool.size())];
        } else {
          candidate = static_cast<int>(rng.next_below(rank_base));
        }
        if (std::find(fanins.begin(), fanins.end(), candidate) != fanins.end()) {
          // Duplicate draw: fall back to a uniform lower-rank signal to
          // guarantee progress (arity <= rank_base by construction).
          candidate = static_cast<int>(rng.next_below(rank_base));
          if (std::find(fanins.begin(), fanins.end(), candidate) != fanins.end()) {
            continue;
          }
        }
        consume(candidate);
        fanins.push_back(candidate);
      }

      const int out = netlist.add_signal("n" + std::to_string(emitted + g));
      netlist.add_gate("g" + std::to_string(emitted + g), picker.cell_index(cell),
                       fanins, out);
      this_rank.push_back(out);
    }
    for (int out : this_rank) add_source(out);
    emitted += rank_gates;
    prev_rank = std::move(this_rank);
  }

  // Signals nobody reads become primary outputs.
  std::vector<int> fanout_count(static_cast<std::size_t>(netlist.num_signals()), 0);
  for (const Gate& gate : netlist.gates()) {
    for (int f : gate.fanins) ++fanout_count[static_cast<std::size_t>(f)];
  }
  for (const Gate& gate : netlist.gates()) {
    if (fanout_count[static_cast<std::size_t>(gate.output)] == 0) {
      netlist.mark_output(gate.output);
    }
  }

  netlist.finalize();
  return netlist;
}

Netlist adder_tree(const liberty::Library& library, int width, int operands) {
  if (width < 1) throw ContractError("adder_tree: need at least 1 bit");
  if (operands < 2) throw ContractError("adder_tree: need at least 2 operands");
  Netlist netlist("addtree" + std::to_string(width) + "x" + std::to_string(operands),
                  &library);
  Builder b(netlist);

  // Operand inputs, then a balanced pairwise reduction: each round adds
  // adjacent pairs with ripple-carry adders whose width grows by one bit
  // per round (the carry-out becomes the new MSB), so no precision is lost.
  std::vector<std::vector<int>> terms(static_cast<std::size_t>(operands));
  for (int o = 0; o < operands; ++o) {
    terms[static_cast<std::size_t>(o)].resize(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      terms[static_cast<std::size_t>(o)][static_cast<std::size_t>(i)] =
          b.input("op" + std::to_string(o) + "_" + std::to_string(i));
    }
  }

  while (terms.size() > 1) {
    std::vector<std::vector<int>> next;
    std::size_t i = 0;
    for (; i + 1 < terms.size(); i += 2) {
      const std::vector<int>& x = terms[i];
      const std::vector<int>& y = terms[i + 1];
      const std::size_t bits = std::max(x.size(), y.size());
      std::vector<int> sum;
      sum.reserve(bits + 1);
      int carry = -1;
      for (std::size_t j = 0; j < bits; ++j) {
        const bool has_x = j < x.size();
        const bool has_y = j < y.size();
        if (has_x && has_y) {
          const Builder::FullAdd fa = carry >= 0 ? b.full_add(x[j], y[j], carry)
                                                 : b.half_add(x[j], y[j]);
          sum.push_back(fa.sum);
          carry = fa.carry;
        } else {
          const int lone = has_x ? x[j] : y[j];
          if (carry >= 0) {
            const Builder::FullAdd ha = b.half_add(lone, carry);
            sum.push_back(ha.sum);
            carry = ha.carry;
          } else {
            sum.push_back(lone);
          }
        }
      }
      if (carry >= 0) sum.push_back(carry);
      next.push_back(std::move(sum));
    }
    for (; i < terms.size(); ++i) next.push_back(std::move(terms[i]));
    terms = std::move(next);
  }

  for (int sig : terms.front()) b.output(sig);
  netlist.finalize();
  return netlist;
}

Netlist make_scale_circuit(const liberty::Library& library, const std::string& name) {
  auto dag = [&](int gates, int depth) {
    DagOptions opt;
    opt.num_inputs = 256;
    opt.num_gates = gates;
    opt.target_depth = depth;
    opt.max_fanout = 8;
    opt.seed = 20240;
    return random_dag(library, name, opt);
  };
  if (name == "dag10k") return dag(10000, 40);
  if (name == "dag100k") return dag(100000, 64);
  if (name == "dag500k") return dag(500000, 96);
  if (name == "dag1m") return dag(1000000, 128);
  if (name == "mul64") return array_multiplier(library, 64);
  if (name == "mul128") return array_multiplier(library, 128);
  if (name == "mul256") return array_multiplier(library, 256);
  if (name == "addtree64x128") return adder_tree(library, 64, 128);
  throw ContractError("make_scale_circuit: unknown preset '" + name + "'");
}

std::vector<std::string> scale_circuit_names() {
  return {"dag10k",  "mul64",  "dag100k", "addtree64x128",
          "dag500k", "mul128", "mul256",  "dag1m"};
}

}  // namespace svtox::netlist
