// Gate-level mapped netlist.
//
// A netlist is a DAG of library-cell instances over single-driver signals.
// Signals are dense integer ids; gates reference the Library by cell index
// so the optimizer can swap variants without touching the structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "liberty/library.hpp"

namespace svtox::netlist {

/// One cell instance.
struct Gate {
  std::string name;
  int cell_index = -1;        ///< Index into Library::cells().
  std::vector<int> fanins;    ///< Signal id per input pin, in pin order.
  int output = -1;            ///< Driven signal id.
};

/// One D flip-flop. In standby analysis the FF is a *state element*: its Q
/// output is a controllable source (the sleep vector is scanned or forced
/// into the registers, paper refs [1][3]) and its D input is a timing
/// endpoint.
struct FlipFlop {
  std::string name;
  int d = -1;  ///< Data input signal.
  int q = -1;  ///< Output signal (undriven by combinational logic).
};

/// A (gate, pin) sink of a signal.
struct Sink {
  int gate = -1;
  int pin = -1;
};

/// Immutable-after-finalize gate-level netlist.
class Netlist {
 public:
  explicit Netlist(std::string name, const liberty::Library* library);

  const std::string& name() const { return name_; }
  const liberty::Library& library() const { return *library_; }

  // --- Construction (before finalize) ---------------------------------
  /// Creates a new signal; returns its id.
  int add_signal(const std::string& signal_name);
  /// Marks an existing signal as a primary input (it must stay driverless).
  void mark_input(int signal);
  /// Marks an existing signal as a primary output.
  void mark_output(int signal);
  /// Adds a gate driving `output` from `fanins`; arity must match the cell.
  int add_gate(const std::string& gate_name, const std::string& cell_name,
               std::vector<int> fanins, int output);
  /// Adds a D flip-flop with data input `d` and output `q`. `q` must not be
  /// driven by any gate and must not be a primary input.
  int add_flip_flop(const std::string& ff_name, int d, int q);
  /// Validates the structure (single drivers, no cycles, everything driven)
  /// and computes topological order, fanouts, and levels. Must be called
  /// exactly once before any query below.
  void finalize();

  // --- Queries (after finalize) ----------------------------------------
  bool finalized() const { return finalized_; }
  int num_signals() const { return static_cast<int>(signal_names_.size()); }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  int num_inputs() const { return static_cast<int>(primary_inputs_.size()); }
  int num_outputs() const { return static_cast<int>(primary_outputs_.size()); }

  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(int index) const { return gates_.at(index); }
  const std::vector<int>& primary_inputs() const { return primary_inputs_; }
  const std::vector<int>& primary_outputs() const { return primary_outputs_; }
  const std::vector<FlipFlop>& flip_flops() const { return flip_flops_; }
  int num_flip_flops() const { return static_cast<int>(flip_flops_.size()); }
  bool is_sequential() const { return !flip_flops_.empty(); }

  /// Controllable sources of the combinational core: primary inputs
  /// followed by flip-flop Q outputs. This is the domain of the sleep
  /// vector; for purely combinational circuits it equals primary_inputs().
  const std::vector<int>& control_points() const { return control_points_; }
  int num_control_points() const { return static_cast<int>(control_points_.size()); }

  /// Timing/observation endpoints: primary outputs followed by flip-flop D
  /// inputs. For combinational circuits it equals primary_outputs().
  const std::vector<int>& observe_points() const { return observe_points_; }
  const std::string& signal_name(int signal) const { return signal_names_.at(signal); }
  /// Signal id by name; -1 when absent.
  int find_signal(const std::string& signal_name) const;

  /// Driving gate of a signal, or -1 for primary inputs.
  int driver(int signal) const { return driver_.at(signal); }
  /// All (gate, pin) sinks of a signal.
  const std::vector<Sink>& sinks(int signal) const { return sinks_.at(signal); }
  bool is_primary_output(int signal) const { return is_po_.at(signal); }

  /// Gate indices in topological (fanin-before-fanout) order.
  const std::vector<int>& topological_order() const { return topo_order_; }
  /// Logic level of a gate (max fanin level + 1; PIs are level 0).
  int gate_level(int gate) const { return gate_level_.at(gate); }
  /// Maximum gate level (logic depth).
  int depth() const { return depth_; }

  /// The LibCell of a gate.
  const liberty::LibCell& cell_of(int gate) const {
    return library_->cell_at(gates_.at(gate).cell_index);
  }

  /// Capacitive load on a signal [fF]: sink pin caps + wire (per-fanout)
  /// + primary-output load.
  double signal_load_ff(int signal) const;

 private:
  std::string name_;
  const liberty::Library* library_;
  std::vector<std::string> signal_names_;
  std::vector<int> primary_inputs_;
  std::vector<int> primary_outputs_;
  std::vector<Gate> gates_;
  std::vector<FlipFlop> flip_flops_;
  std::vector<int> control_points_;
  std::vector<int> observe_points_;
  bool finalized_ = false;

  // Derived on finalize().
  std::vector<int> driver_;
  std::vector<std::vector<Sink>> sinks_;
  std::vector<bool> is_po_;
  std::vector<int> topo_order_;
  std::vector<int> gate_level_;
  int depth_ = 0;
};

/// Summary statistics used by the result tables.
struct NetlistStats {
  int inputs = 0;
  int outputs = 0;
  int gates = 0;
  int depth = 0;
  int flip_flops = 0;
};
NetlistStats stats(const Netlist& netlist);

/// Clones the structure of `netlist` against a different library (cells are
/// matched by archetype name). Used to evaluate the same circuit under
/// alternative library builds (2-option, uniform-stack, Vt-only).
Netlist rebind(const Netlist& netlist, const liberty::Library& library);

}  // namespace svtox::netlist
