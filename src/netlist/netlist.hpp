// Gate-level mapped netlist.
//
// A netlist is a DAG of library-cell instances over single-driver signals.
// Signals are dense integer ids; gates reference the Library by cell index
// so the optimizer can swap variants without touching the structure.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "liberty/library.hpp"

namespace svtox::netlist {

/// One cell instance.
struct Gate {
  std::string name;
  int cell_index = -1;        ///< Index into Library::cells().
  std::vector<int> fanins;    ///< Signal id per input pin, in pin order.
  int output = -1;            ///< Driven signal id.
};

/// One D flip-flop. In standby analysis the FF is a *state element*: its Q
/// output is a controllable source (the sleep vector is scanned or forced
/// into the registers, paper refs [1][3]) and its D input is a timing
/// endpoint.
struct FlipFlop {
  std::string name;
  int d = -1;  ///< Data input signal.
  int q = -1;  ///< Output signal (undriven by combinational logic).
};

/// A (gate, pin) sink of a signal.
struct Sink {
  int gate = -1;
  int pin = -1;
};

/// Flattened structure-of-arrays view of a finalized netlist.
///
/// Built once by `Netlist::finalize()` and owned by the Netlist. All
/// adjacency is CSR over 32-bit ids in contiguous arrays: per-gate fanins,
/// per-signal sinks, plus per-gate cell index / topology pointer / level
/// and the topological order. Hot loops (incremental sims, packed plans,
/// STA, bound evaluation) iterate these arrays instead of chasing
/// `std::vector<Gate>`-of-`std::string`/nested-vector structures.
///
/// Accessors are unchecked in release builds; debug builds assert the
/// index range. Indices and iteration orders mirror the owning Netlist
/// exactly, so any consumer switching from the pointer API to this view
/// produces bit-identical results.
class FlatNetlist {
 public:
  using u32 = std::uint32_t;
  static constexpr u32 kNoDriver = 0xffffffffu;

  u32 num_gates() const { return num_gates_; }
  u32 num_signals() const { return num_signals_; }
  u32 num_control_points() const { return static_cast<u32>(control_points_.size()); }
  int depth() const { return depth_; }

  // --- Per-gate arrays --------------------------------------------------
  u32 fanin_count(u32 gate) const {
    assert(gate < num_gates_);
    return fanin_offset_[gate + 1] - fanin_offset_[gate];
  }
  /// Pointer to the gate's fanin signal ids, in pin order.
  const u32* fanins(u32 gate) const {
    assert(gate < num_gates_);
    return fanin_.data() + fanin_offset_[gate];
  }
  u32 output(u32 gate) const {
    assert(gate < num_gates_);
    return output_[gate];
  }
  u32 cell_index(u32 gate) const {
    assert(gate < num_gates_);
    return cell_[gate];
  }
  const cellkit::CellTopology& topology(u32 gate) const {
    assert(gate < num_gates_);
    return *topology_[gate];
  }
  /// The gate's truth table packed into a word: bit `state` is
  /// topology(gate).output(state). Lets simulation kernels evaluate a gate
  /// with one shift instead of an out-of-line vector<bool> lookup.
  std::uint16_t truth(u32 gate) const {
    assert(gate < num_gates_);
    return truth_[gate];
  }
  int level(u32 gate) const {
    assert(gate < num_gates_);
    return level_[gate];
  }
  const std::vector<u32>& topo_order() const { return topo_order_; }

  // --- Per-signal arrays ------------------------------------------------
  /// Driving gate id, or kNoDriver for primary inputs / FF outputs.
  u32 driver(u32 signal) const {
    assert(signal < num_signals_);
    return driver_[signal];
  }
  u32 sink_count(u32 signal) const {
    assert(signal < num_signals_);
    return sink_offset_[signal + 1] - sink_offset_[signal];
  }
  /// Pointers into the flat sink arrays; entry i of gates/pins is one
  /// (gate, pin) sink of the signal, in the same order as Netlist::sinks().
  const u32* sink_gates(u32 signal) const {
    assert(signal < num_signals_);
    return sink_gate_.data() + sink_offset_[signal];
  }
  const u32* sink_pins(u32 signal) const {
    assert(signal < num_signals_);
    return sink_pin_.data() + sink_offset_[signal];
  }

  /// Control-point signal ids (PIs then FF Qs), same order as the Netlist.
  const std::vector<u32>& control_points() const { return control_points_; }

 private:
  friend class Netlist;

  u32 num_gates_ = 0;
  u32 num_signals_ = 0;
  int depth_ = 0;
  std::vector<u32> fanin_offset_;  ///< Size num_gates + 1.
  std::vector<u32> fanin_;
  std::vector<u32> output_;
  std::vector<u32> cell_;
  std::vector<const cellkit::CellTopology*> topology_;
  std::vector<std::uint16_t> truth_;
  std::vector<int> level_;
  std::vector<u32> topo_order_;
  std::vector<u32> driver_;
  std::vector<u32> sink_offset_;  ///< Size num_signals + 1.
  std::vector<u32> sink_gate_;
  std::vector<u32> sink_pin_;
  std::vector<u32> control_points_;
};

/// Immutable-after-finalize gate-level netlist.
class Netlist {
 public:
  explicit Netlist(std::string name, const liberty::Library* library);

  const std::string& name() const { return name_; }
  const liberty::Library& library() const { return *library_; }

  // --- Construction (before finalize) ---------------------------------
  /// Creates a new signal; returns its id.
  int add_signal(const std::string& signal_name);
  /// Marks an existing signal as a primary input (it must stay driverless).
  void mark_input(int signal);
  /// Marks an existing signal as a primary output.
  void mark_output(int signal);
  /// Adds a gate driving `output` from `fanins`; arity must match the cell.
  int add_gate(const std::string& gate_name, const std::string& cell_name,
               std::vector<int> fanins, int output);
  /// Same, with the cell pre-resolved to its library index. Generators that
  /// emit hundreds of thousands of gates use this to skip the per-gate
  /// cell-name map lookup.
  int add_gate(const std::string& gate_name, int cell_index,
               std::vector<int> fanins, int output);
  /// Adds a D flip-flop with data input `d` and output `q`. `q` must not be
  /// driven by any gate and must not be a primary input.
  int add_flip_flop(const std::string& ff_name, int d, int q);
  /// Validates the structure (single drivers, no cycles, everything driven)
  /// and computes topological order, fanouts, and levels. Must be called
  /// exactly once before any query below.
  void finalize();

  // --- Queries (after finalize) ----------------------------------------
  bool finalized() const { return finalized_; }
  int num_signals() const { return static_cast<int>(signal_names_.size()); }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  int num_inputs() const { return static_cast<int>(primary_inputs_.size()); }
  int num_outputs() const { return static_cast<int>(primary_outputs_.size()); }

  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(int index) const { return gates_.at(index); }
  const std::vector<int>& primary_inputs() const { return primary_inputs_; }
  const std::vector<int>& primary_outputs() const { return primary_outputs_; }
  const std::vector<FlipFlop>& flip_flops() const { return flip_flops_; }
  int num_flip_flops() const { return static_cast<int>(flip_flops_.size()); }
  bool is_sequential() const { return !flip_flops_.empty(); }

  /// Controllable sources of the combinational core: primary inputs
  /// followed by flip-flop Q outputs. This is the domain of the sleep
  /// vector; for purely combinational circuits it equals primary_inputs().
  const std::vector<int>& control_points() const { return control_points_; }
  int num_control_points() const { return static_cast<int>(control_points_.size()); }

  /// Timing/observation endpoints: primary outputs followed by flip-flop D
  /// inputs. For combinational circuits it equals primary_outputs().
  const std::vector<int>& observe_points() const { return observe_points_; }
  const std::string& signal_name(int signal) const { return signal_names_.at(signal); }
  /// Signal id by name; -1 when absent.
  int find_signal(const std::string& signal_name) const;

  /// Driving gate of a signal, or -1 for primary inputs.
  int driver(int signal) const { return driver_.at(signal); }
  /// All (gate, pin) sinks of a signal.
  const std::vector<Sink>& sinks(int signal) const { return sinks_.at(signal); }
  bool is_primary_output(int signal) const { return is_po_.at(signal); }

  /// Gate indices in topological (fanin-before-fanout) order.
  const std::vector<int>& topological_order() const { return topo_order_; }
  /// Logic level of a gate (max fanin level + 1; PIs are level 0).
  int gate_level(int gate) const { return gate_level_.at(gate); }
  /// Maximum gate level (logic depth).
  int depth() const { return depth_; }

  /// The LibCell of a gate.
  const liberty::LibCell& cell_of(int gate) const {
    return library_->cell_at(gates_.at(gate).cell_index);
  }

  /// Capacitive load on a signal [fF]: sink pin caps + wire (per-fanout)
  /// + primary-output load.
  double signal_load_ff(int signal) const;

  /// Flattened SoA view of the finalized structure.
  const FlatNetlist& flat() const;

 private:
  void build_flat();

  std::string name_;
  const liberty::Library* library_;
  std::vector<std::string> signal_names_;
  std::vector<int> primary_inputs_;
  std::vector<int> primary_outputs_;
  std::vector<Gate> gates_;
  std::vector<FlipFlop> flip_flops_;
  std::vector<int> control_points_;
  std::vector<int> observe_points_;
  bool finalized_ = false;

  // Derived on finalize().
  std::vector<int> driver_;
  std::vector<std::vector<Sink>> sinks_;
  std::vector<bool> is_po_;
  std::vector<int> topo_order_;
  std::vector<int> gate_level_;
  std::vector<int> ff_d_count_;  ///< Per signal, FF D pins loading it.
  int depth_ = 0;
  FlatNetlist flat_;
};

/// Summary statistics used by the result tables.
struct NetlistStats {
  int inputs = 0;
  int outputs = 0;
  int gates = 0;
  int depth = 0;
  int flip_flops = 0;
};
NetlistStats stats(const Netlist& netlist);

/// Clones the structure of `netlist` against a different library (cells are
/// matched by archetype name). Used to evaluate the same circuit under
/// alternative library builds (2-option, uniform-stack, Vt-only).
Netlist rebind(const Netlist& netlist, const liberty::Library& library);

}  // namespace svtox::netlist
