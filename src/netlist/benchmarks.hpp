// The evaluation benchmark suite (paper Sec. 6, Tables 3-5).
//
// Each entry mirrors one row of the paper's Table 4: same name, same number
// of primary inputs, and (for the seeded random stand-ins) exactly the same
// gate count. The paper's reference currents are stored alongside so the
// bench harnesses can print paper-vs-measured columns.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace svtox::netlist {

/// Reference data from the paper's tables for one circuit.
struct PaperRow {
  // Table 4 circuit statistics.
  int inputs = 0;
  int gates = 0;
  // Table 3/4 currents [uA].
  double avg_random_ua = 0.0;       ///< 10K random vectors, no technique.
  double state_only_ua = 0.0;       ///< State assignment alone.
  double vt_state_5_ua = 0.0;       ///< Vt+state [12] at 5% delay penalty.
  double vt_state_10_ua = 0.0;      ///< Vt+state at 10%.
  double vt_state_25_ua = 0.0;      ///< Vt+state at 25%.
  double heu1_5_ua = 0.0;           ///< Proposed Heu1 at 5%.
  double heu2_5_ua = 0.0;           ///< Proposed Heu2 at 5%.
  double heu1_10_ua = 0.0;          ///< Heu1 at 10%.
  double heu1_25_ua = 0.0;          ///< Heu1 at 25%.
  // Table 5 library-option currents at 5% [uA].
  double opt2_5_ua = 0.0;           ///< 2-option library.
  double uniform4_5_ua = 0.0;       ///< 4-option, uniform stacks.
  double uniform2_5_ua = 0.0;       ///< 2-option, uniform stacks.
};

/// One benchmark: its name, how to build it, and the paper's numbers.
struct BenchmarkSpec {
  std::string name;
  PaperRow paper;
};

/// All 11 circuits of the paper's evaluation, in table order.
const std::vector<BenchmarkSpec>& benchmark_suite();

/// Builds the named benchmark circuit against `library`. Structure-true
/// generators are used for c499 (SEC parity), c6288 (16x16 multiplier) and
/// alu64; the rest are seeded random mapped DAGs with the paper's (inputs,
/// gates) statistics. Throws ContractError for unknown names.
Netlist make_benchmark(const std::string& name, const liberty::Library& library);

/// The spec for one circuit; throws ContractError for unknown names.
const BenchmarkSpec& benchmark_spec(const std::string& name);

}  // namespace svtox::netlist
