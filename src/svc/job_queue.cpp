#include "svc/job_queue.hpp"

#include <algorithm>

namespace svtox::svc {

JobQueue::JobQueue(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

bool JobQueue::push(JobId id, int priority) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
  if (closed_) return false;
  const Key key{-priority, next_seq_++};
  items_.emplace(key, id);
  index_.emplace(id, key);
  not_empty_.notify_one();
  return true;
}

bool JobQueue::try_push(JobId id, int priority) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  const Key key{-priority, next_seq_++};
  items_.emplace(key, id);
  index_.emplace(id, key);
  not_empty_.notify_one();
  return true;
}

std::optional<JobId> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;  // closed and drained
  const auto it = items_.begin();
  const JobId id = it->second;
  index_.erase(id);
  items_.erase(it);
  not_full_.notify_one();
  return id;
}

bool JobQueue::remove(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  items_.erase({it->second, id});
  index_.erase(it);
  not_full_.notify_one();
  return true;
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::vector<JobId> JobQueue::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobId> dropped;
  dropped.reserve(items_.size());
  for (const auto& [key, id] : items_) dropped.push_back(id);
  items_.clear();
  index_.clear();
  not_full_.notify_all();
  return dropped;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace svtox::svc
