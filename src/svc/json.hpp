// Minimal JSON value for the service layer's wire protocol and job
// manifests: newline-delimited JSON requests/responses (svtoxd), manifest
// files (svtox batch), and the solution-cache disk metadata.
//
// Scope is deliberately small -- parse / dump of the standard six value
// types with strict syntax -- so the daemon carries no external
// dependency. Objects preserve insertion order (deterministic dumps, which
// the byte-identity tests rely on); duplicate keys keep the last value on
// parse. Numbers are doubles; integral values round-trip exactly up to
// 2^53, wide enough for job ids and counters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace svtox::svc {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(std::int64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(std::uint64_t n) : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  double as_number(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(number_) : fallback;
  }
  const std::string& as_string(const std::string& fallback = empty_string()) const {
    return is_string() ? string_ : fallback;
  }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* get(std::string_view key) const;
  /// Inserts or replaces an object member (turns a null value into {}).
  Json& set(std::string_view key, Json value);

  /// Serializes on one line (no newlines, ASCII-safe escapes) -- directly
  /// usable as one NDJSON record.
  std::string dump() const;

  /// Strict parse of exactly one JSON document (trailing whitespace ok).
  /// Throws svtox::ParseError on malformed input.
  static Json parse(std::string_view text);

 private:
  static const std::string& empty_string();

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace svtox::svc
