#include "svc/metrics.hpp"

#include <cstdio>

namespace svtox::svc {

namespace {

void header(std::string& out, const std::string& name, const std::string& help,
            const char* type) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

void sample(std::string& out, const std::string& name, std::uint64_t value) {
  out += name + " " + std::to_string(value) + "\n";
}

void sample(std::string& out, const std::string& name, const std::string& labels,
            std::uint64_t value) {
  out += name + "{" + labels + "} " + std::to_string(value) + "\n";
}

void sample_f(std::string& out, const std::string& name, const std::string& labels,
              double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  out += name + "{" + labels + "} " + buffer + "\n";
}

}  // namespace

std::string render_prometheus(const SchedulerStats& scheduler,
                              const std::vector<CacheStats>& shards,
                              const DistCacheStats* dist,
                              const ServerNetStats& net,
                              const std::vector<PeerHealthSnapshot>* peers) {
  std::string out;
  out.reserve(4096);

  header(out, "svtox_jobs_total", "Jobs by lifecycle event.", "counter");
  sample(out, "svtox_jobs_total", "event=\"submitted\"", scheduler.submitted);
  sample(out, "svtox_jobs_total", "event=\"completed\"", scheduler.completed);
  sample(out, "svtox_jobs_total", "event=\"failed\"", scheduler.failed);
  sample(out, "svtox_jobs_total", "event=\"cancelled\"", scheduler.cancelled);
  sample(out, "svtox_jobs_total", "event=\"executed\"", scheduler.executed);
  sample(out, "svtox_jobs_total", "event=\"retried\"", scheduler.retried);

  header(out, "svtox_jobs_adopted_total",
         "Coordinator job ledgers adopted and resumed after a failover.",
         "counter");
  sample(out, "svtox_jobs_adopted_total", scheduler.jobs_adopted);

  header(out, "svtox_queue_depth", "Jobs waiting in the priority queue.", "gauge");
  sample(out, "svtox_queue_depth", scheduler.queued);
  header(out, "svtox_jobs_running", "Jobs currently executing.", "gauge");
  sample(out, "svtox_jobs_running", scheduler.running);
  header(out, "svtox_workers", "Worker threads in the pool.", "gauge");
  sample(out, "svtox_workers", static_cast<std::uint64_t>(scheduler.workers));

  header(out, "svtox_cache_ops_total", "Solution cache operations per shard.",
         "counter");
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const std::string shard = "shard=\"" + std::to_string(s) + "\"";
    sample(out, "svtox_cache_ops_total", shard + ",op=\"hit\"", shards[s].hits);
    sample(out, "svtox_cache_ops_total", shard + ",op=\"disk_hit\"",
           shards[s].disk_hits);
    sample(out, "svtox_cache_ops_total", shard + ",op=\"miss\"", shards[s].misses);
    sample(out, "svtox_cache_ops_total", shard + ",op=\"inflight_wait\"",
           shards[s].inflight_waits);
    sample(out, "svtox_cache_ops_total", shard + ",op=\"eviction\"",
           shards[s].evictions);
    sample(out, "svtox_cache_ops_total", shard + ",op=\"corrupt\"",
           shards[s].corrupt);
  }
  header(out, "svtox_cache_entries", "Resident cache entries per shard.", "gauge");
  for (std::size_t s = 0; s < shards.size(); ++s) {
    sample(out, "svtox_cache_entries", "shard=\"" + std::to_string(s) + "\"",
           shards[s].entries);
  }
  header(out, "svtox_cache_inflight", "Keys owned by an inflight solve, per shard.",
         "gauge");
  for (std::size_t s = 0; s < shards.size(); ++s) {
    sample(out, "svtox_cache_inflight", "shard=\"" + std::to_string(s) + "\"",
           shards[s].inflight);
  }

  if (dist != nullptr) {
    header(out, "svtox_dist_cache_total", "Distributed cache events.", "counter");
    sample(out, "svtox_dist_cache_total", "event=\"remote_hit\"", dist->remote_hits);
    sample(out, "svtox_dist_cache_total", "event=\"remote_miss\"",
           dist->remote_misses);
    sample(out, "svtox_dist_cache_total", "event=\"remote_publish\"",
           dist->remote_publishes);
    sample(out, "svtox_dist_cache_total", "event=\"remote_abandon\"",
           dist->remote_abandons);
    sample(out, "svtox_dist_cache_total", "event=\"peer_failure\"",
           dist->peer_failures);
    header(out, "svtox_cache_replica_fallbacks_total",
           "Cache fetches served by a successor after the primary owner failed.",
           "counter");
    sample(out, "svtox_cache_replica_fallbacks_total", dist->replica_fallbacks);
  }

  if (peers != nullptr && !peers->empty()) {
    header(out, "svtox_peer_up",
           "Peer health from heartbeats (1 up, 0.5 suspect, 0 down).", "gauge");
    for (const PeerHealthSnapshot& peer : *peers) {
      const double up = peer.health == PeerHealth::kUp     ? 1.0
                        : peer.health == PeerHealth::kSuspect ? 0.5
                                                              : 0.0;
      sample_f(out, "svtox_peer_up", "peer=\"" + peer.member + "\"", up);
    }
    header(out, "svtox_heartbeat_latency_seconds",
           "Smoothed heartbeat round-trip time per peer.", "gauge");
    for (const PeerHealthSnapshot& peer : *peers) {
      sample_f(out, "svtox_heartbeat_latency_seconds",
               "peer=\"" + peer.member + "\"", peer.latency_s);
    }
  }

  header(out, "svtox_net_bytes_total", "Request/response bytes by transport.",
         "counter");
  sample(out, "svtox_net_bytes_total", "transport=\"unix\",direction=\"in\"",
         net.bytes_in_unix);
  sample(out, "svtox_net_bytes_total", "transport=\"unix\",direction=\"out\"",
         net.bytes_out_unix);
  sample(out, "svtox_net_bytes_total", "transport=\"tcp\",direction=\"in\"",
         net.bytes_in_tcp);
  sample(out, "svtox_net_bytes_total", "transport=\"tcp\",direction=\"out\"",
         net.bytes_out_tcp);

  header(out, "svtox_busy_rejections_total",
         "Connections refused by admission control.", "counter");
  sample(out, "svtox_busy_rejections_total", net.busy_rejections);
  header(out, "svtox_connections_accepted_total",
         "Connections accepted, lifetime.", "counter");
  sample(out, "svtox_connections_accepted_total", net.accepted);
  header(out, "svtox_connections", "Currently open connections.", "gauge");
  sample(out, "svtox_connections", net.connections);

  return out;
}

}  // namespace svtox::svc
