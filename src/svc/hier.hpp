// Hierarchical standby optimization: partition -> boundary-aware level
// sweep -> stitch -> refine.
//
// Scales the paper's method to 100k..1M-gate circuits where the flat state
// tree is out of reach. The circuit is cut into gate-budgeted clusters
// (opt/partition.hpp); each cluster becomes an independent standby
// instance whose boundary signals are controllable primary inputs, solved
// through the Scheduler as parallel jobs (the content-addressed
// SolutionCache dedups structurally identical cones to one solve).
//
// Cones are dispatched level by level over the partition DAG (a
// partition's level is one more than the deepest partition driving any of
// its boundary inputs). When a level-L cone is scheduled, every boundary
// input driven by an already-solved upstream partition is *pinned* to its
// stitched simulated value (JobSpec::pinned_inputs), and its measured
// upstream arrival/slew from a global STA of the stitched-so-far config
// seeds the cone's timing (JobSpec::boundary_timing; the STA refreshes
// once ~1/16 of the gates were reconfigured since the last analysis, so
// deep partition DAGs do not pay one full-circuit analysis per level) --
// so the cone optimizes against its real logical and electrical context
// instead of a free-boundary relaxation. Same-level cones still run in parallel; both
// context strings are part of the cone's cache key, so hits stay sound.
//
// The stitch reconciles the remaining choices on the real circuit:
//  * sleep bits: votes over the global control points in ascending
//    partition-id order within each level (deterministic under any worker
//    count), remaining points forced to 0;
//  * gate configs: copied per gate from the cone solutions (cells and pin
//    order are preserved by the canonical cone text, so variants and pin
//    mappings transfer verbatim);
//  * leakage: a full 2-valued simulation of the stitched sleep vector,
//    then exact table evaluation -- no cone-level approximation survives
//    into the reported number;
//  * delay: a full STA of the stitched config against the *global*
//    constraint, with a repair loop that walks the critical path resetting
//    gates to their fastest variant until the constraint holds (it must:
//    the all-fast configuration meets any constraint with penalty >= 0).
//
// A stitch-refine loop then re-solves the K partitions with the largest
// exact leakage contribution, this time with *every* boundary input pinned
// (control points to their voted sleep bits, driven boundaries to their
// simulated values) -- the sleep vector and hence all signal values stay
// fixed, so per-partition contributions are independent and only the delay
// couples globally. A pass is accepted only if the exact global leakage
// improves after re-repair; the loop stops when a pass fails to improve or
// the pass budget is exhausted.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"
#include "opt/partition.hpp"
#include "opt/solution.hpp"
#include "sta/sta.hpp"

namespace svtox::svc {

struct HierOptions {
  opt::PartitionOptions partition;
  /// Per-cone method: state|vtstate|heu1|heu2|exact.
  std::string method = "heu1";
  double penalty_fraction = 0.05;
  /// Slack apportionment: each cone is solved at
  /// `penalty_fraction * cone_penalty_scale` of its own fast/slow spread.
  /// Local budgets do not compose exactly into the global one (boundary
  /// arrivals and slews are not modeled), so a value < 1 leaves headroom
  /// and trades a little per-cone leakage for far fewer repair resets.
  double cone_penalty_scale = 1.0;
  /// Scheduler worker threads (0 = all hardware threads).
  int workers = 0;
  /// Per-cone search budget (heu2/state-only; heu1 ignores it).
  double time_limit_s = 1.0;
  /// Monte-Carlo vectors per cone job (cones only need the baseline for
  /// their reduction stat, so this stays small).
  int random_vectors = 64;
  std::uint64_t seed = 2004;
  /// Library build knobs; must describe the library `netlist` is bound to
  /// (the cone jobs rebuild the library from these flags).
  bool nitrided = false;
  bool two_point = false;
  bool uniform_stack = false;
  bool vt_only = false;
  /// Solution-cache disk directory for cone solutions; empty = memory only.
  std::string cache_dir;
  /// Pin boundary inputs driven by already-solved upstream partitions to
  /// their stitched simulated values (the level sweep). Off reproduces the
  /// legacy free-boundary relaxation.
  bool pin_boundaries = true;
  /// Seed each cone's boundary inputs with the measured upstream
  /// arrival/slew from the global STA of the stitched-so-far config.
  bool seed_boundary_timing = true;
  /// Stitch-refine budget: up to this many passes re-solve the
  /// `refine_worst` partitions with the largest exact leakage
  /// contribution, all boundaries pinned. 0 disables refinement.
  int refine_passes = 2;
  int refine_worst = 8;
};

struct HierResult {
  /// The stitched global solution: sleep vector over
  /// Netlist::control_points(), per-gate config, exact leakage and delay.
  opt::Solution solution;
  sta::DelayBudget budget;   ///< Global all-fast / all-slow endpoints.
  double constraint_ps = 0.0;
  int partitions = 0;
  std::uint64_t unique_solves = 0;  ///< Cone jobs actually executed.
  std::uint64_t cache_hits = 0;     ///< Cone jobs served from the cache.
  int repaired_gates = 0;  ///< Gates changed by the stitched-config delay
                           ///< repair: critical-path fastest-resets, or
                           ///< config diffs when the local repair would
                           ///< reset > ~0.5% of the gates and the global
                           ///< greedy re-assignment fallback runs instead.
  int levels = 0;               ///< Depth of the partition DAG sweep.
  int refine_passes_run = 0;    ///< Refine passes executed (incl. a final
                                ///< non-improving one, if any).
  int refine_accepted = 0;      ///< Partition re-solves that improved and
                                ///< were kept across accepted passes.
  double runtime_s = 0.0;
};

/// Runs the hierarchical flow on `netlist`. The result's delay respects
/// the global constraint (verified by a from-scratch STA on the stitched
/// assignment). Throws on cone-job failures and invalid options.
HierResult optimize_hierarchical(const netlist::Netlist& netlist,
                                 const HierOptions& options = {});

}  // namespace svtox::svc
