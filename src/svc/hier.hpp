// Hierarchical standby optimization: partition -> per-cone solve -> stitch.
//
// Scales the paper's method to 100k..1M-gate circuits where the flat state
// tree is out of reach. The circuit is cut into gate-budgeted clusters
// (opt/partition.hpp); each cluster becomes an independent standby
// instance whose boundary signals are controllable primary inputs, solved
// through the Scheduler as parallel jobs (the content-addressed
// SolutionCache dedups structurally identical cones to one solve). The
// stitch pass reconciles boundary choices on the real circuit:
//  * sleep bits: first-partition-wins votes over the global control
//    points, remaining points forced to 0;
//  * gate configs: copied per gate from the cone solutions (cells and pin
//    order are preserved by the canonical cone text, so variants and pin
//    mappings transfer verbatim);
//  * leakage: a full 2-valued simulation of the stitched sleep vector,
//    then exact table evaluation -- no cone-level approximation survives
//    into the reported number;
//  * delay: a full STA of the stitched config against the *global*
//    constraint. Each cone was solved against its own local budget at the
//    same penalty fraction, which does not compose exactly, so a repair
//    loop walks the critical path resetting gates to their fastest
//    variant until the global constraint holds (it must: the all-fast
//    configuration meets any constraint with penalty >= 0).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"
#include "opt/partition.hpp"
#include "opt/solution.hpp"
#include "sta/sta.hpp"

namespace svtox::svc {

struct HierOptions {
  opt::PartitionOptions partition;
  /// Per-cone method: state|vtstate|heu1|heu2|exact.
  std::string method = "heu1";
  double penalty_fraction = 0.05;
  /// Slack apportionment: each cone is solved at
  /// `penalty_fraction * cone_penalty_scale` of its own fast/slow spread.
  /// Local budgets do not compose exactly into the global one (boundary
  /// arrivals and slews are not modeled), so a value < 1 leaves headroom
  /// and trades a little per-cone leakage for far fewer repair resets.
  double cone_penalty_scale = 1.0;
  /// Scheduler worker threads (0 = all hardware threads).
  int workers = 0;
  /// Per-cone search budget (heu2/state-only; heu1 ignores it).
  double time_limit_s = 1.0;
  /// Monte-Carlo vectors per cone job (cones only need the baseline for
  /// their reduction stat, so this stays small).
  int random_vectors = 64;
  std::uint64_t seed = 2004;
  /// Library build knobs; must describe the library `netlist` is bound to
  /// (the cone jobs rebuild the library from these flags).
  bool nitrided = false;
  bool two_point = false;
  bool uniform_stack = false;
  bool vt_only = false;
  /// Solution-cache disk directory for cone solutions; empty = memory only.
  std::string cache_dir;
};

struct HierResult {
  /// The stitched global solution: sleep vector over
  /// Netlist::control_points(), per-gate config, exact leakage and delay.
  opt::Solution solution;
  sta::DelayBudget budget;   ///< Global all-fast / all-slow endpoints.
  double constraint_ps = 0.0;
  int partitions = 0;
  std::uint64_t unique_solves = 0;  ///< Cone jobs actually executed.
  std::uint64_t cache_hits = 0;     ///< Cone jobs served from the cache.
  int repaired_gates = 0;  ///< Gates reset to fastest by the delay repair.
  double runtime_s = 0.0;
};

/// Runs the hierarchical flow on `netlist`. The result's delay respects
/// the global constraint (verified by a from-scratch STA on the stitched
/// assignment). Throws on cone-job failures and invalid options.
HierResult optimize_hierarchical(const netlist::Netlist& netlist,
                                 const HierOptions& options = {});

}  // namespace svtox::svc
