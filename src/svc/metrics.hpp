// Prometheus text exposition of the daemon's counters.
//
// One render function, fed plain stats structs so it stays trivially
// testable: the `metrics` request handler in the server collects
// SchedulerStats + per-shard CacheStats + DistCacheStats + transport
// counters and hands them here. Output follows the Prometheus text format
// (# HELP / # TYPE headers, `name{labels} value` samples, LF line ends).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/dist_cache.hpp"
#include "svc/scheduler.hpp"

namespace svtox::svc {

/// Transport-level counters maintained by the Server.
struct ServerNetStats {
  std::uint64_t bytes_in_unix = 0;
  std::uint64_t bytes_out_unix = 0;
  std::uint64_t bytes_in_tcp = 0;
  std::uint64_t bytes_out_tcp = 0;
  std::uint64_t busy_rejections = 0;  ///< Connections refused at capacity.
  std::uint64_t accepted = 0;         ///< Connections accepted, lifetime.
  std::uint64_t connections = 0;      ///< Currently open connections.
};

/// Renders all daemon counters as Prometheus text. `dist` may be null
/// (daemon running without --peers); `peers` may be null or empty (no
/// cluster, or heartbeats disabled).
std::string render_prometheus(const SchedulerStats& scheduler,
                              const std::vector<CacheStats>& shards,
                              const DistCacheStats* dist,
                              const ServerNetStats& net,
                              const std::vector<PeerHealthSnapshot>* peers = nullptr);

}  // namespace svtox::svc
