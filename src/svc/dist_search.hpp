// Distributed subtree search: the coordinator side of `JobSpec::subtrees`.
//
// The state tree's top k = ceil(log2(subtrees)) levels are carved into 2^k
// fixed-prefix subtrees. Each subtree becomes an independent, serial,
// leaf-budgeted search job seeded with the SAME migration token: a
// SearchCheckpoint blob holding the coordinator's single-descent incumbent
// and an empty path. Because every subtree starts from the same token and
// runs with probes disabled under a deterministic leaf budget, a subtree's
// final (incumbent, counters) is a pure function of the spec -- not of
// which node solved it, when, or whether it was stolen and resumed from a
// mid-run checkpoint of that same execution. The coordinator merges the
// per-subtree incumbents under the search's deterministic tie-break
// (lowest leakage, then lexicographically smallest sleep vector) and sums
// the counters, so an N-node run is byte-identical to a 1-node run.
//
// Scheduling is work-stealing over a shared task board:
//  * the coordinator's own worker thread drains tasks inline (no extra
//    scheduler submission, so coordinators can never deadlock the pool);
//  * one dispatcher thread per peer ships tasks over TCP, polls status,
//    refreshes the task's migration token from the worker's checkpoint
//    file (`checkpoint_fetch`), and steals the subtree back -- latest
//    token in hand -- when the peer leaves it queued too long (busy peer)
//    or lets it run past steal_after_s (straggler / wedged node). A peer
//    error requeues the task and retires the dispatcher; the inline drain
//    is always a sufficient fallback.
//
// Coordinator failover: when `ledger_path` is set, the coordinator
// journals a job ledger -- the (inlined) spec, plus each subtree's latest
// migration token and completion state -- to disk with the same atomic
// temp+rename discipline as SearchCheckpoint, refreshed by a small
// background thread whenever progress lands. A restarted daemon (or a
// peer that adopted the orphaned ledger via `adopt_jobs`) re-runs the
// same spec: distributed_search finds the ledger, restores completed
// subtrees verbatim (their tree_done tokens carry the full solution and
// counters) and seeds the rest from their recorded tokens. Because every
// subtree is a pure function of the spec, the resumed merge is
// byte-identical to an uninterrupted run -- completed subtrees are never
// re-solved and the counter totals stay seed + sum(shards). The ledger is
// deleted on clean completion.
#pragma once

#include <atomic>
#include <string>

#include "core/optimizer.hpp"
#include "svc/cluster.hpp"
#include "svc/job.hpp"

namespace svtox::svc {

struct DistSearchContext {
  core::StandbyOptimizer& optimizer;  ///< The coordinator's own context.
  std::uint64_t library_fp = 0;       ///< For remote checkpoint keys.
  std::uint64_t netlist_fp = 0;
  Cluster* cluster = nullptr;         ///< Null = solve every subtree inline.
  std::string checkpoint_dir;         ///< Inline solves checkpoint here.
  double checkpoint_every_s = 5.0;
  const std::atomic<bool>* cancel = nullptr;
  double poll_interval_s = 0.05;      ///< Remote status poll cadence.
  double queued_grace_s = 5.0;        ///< Steal from a peer that never starts.
  double steal_after_s = 30.0;        ///< Steal from a straggler.
  /// Durable job ledger path (".ledger"); empty = no failover journal.
  std::string ledger_path;
  /// Bumped once when an existing ledger with restorable progress was
  /// adopted (the svtox_jobs_adopted_total counter).
  std::atomic<std::uint64_t>* adopted = nullptr;
};

/// Runs `spec` (subtrees >= 2, a splittable method, bench already inlined
/// as circuit/bench_text) as a distributed search. Throws like
/// StandbyOptimizer::run on setup errors; peer failures never propagate.
core::MethodResult distributed_search(const JobSpec& spec, DistSearchContext& ctx);

}  // namespace svtox::svc
