// Sharded, thread-safe, content-addressed solution cache.
//
// Keys are svc::cache_key fingerprints (library + netlist + run knobs);
// values are completed JobResults whose `solution_text` is the canonical
// core::write_solution artifact, so a hit is byte-identical to re-solving.
//
// Three mechanisms:
//  * LRU over a bounded entry count, per shard (shard = hash(key) % N, so
//    unrelated circuits never contend on one mutex).
//  * Inflight dedup: the first fetch_or_lock() miss for a key makes the
//    caller the *owner* (it must later publish() or abandon()); concurrent
//    fetches for the same key block until the owner publishes rather than
//    solving the same instance twice. If the owner abandons (job failed or
//    was cancelled), one waiter is promoted to owner and re-solves.
//  * Optional disk persistence: published entries are mirrored to
//    `<dir>/<key>.svcache` (one JSON metadata line + the solution text in
//    the existing core/solution_io format) and misses fall back to disk,
//    so repeated suite/sweep runs across process restarts are near-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#include <condition_variable>

#include "svc/job.hpp"

namespace svtox::svc {

struct CacheStats {
  std::uint64_t hits = 0;            ///< Served from memory.
  std::uint64_t disk_hits = 0;       ///< Served from the persistence dir.
  std::uint64_t misses = 0;          ///< Caller became owner and must solve.
  std::uint64_t inflight_waits = 0;  ///< Blocked on a concurrent solve.
  std::uint64_t evictions = 0;
  std::uint64_t corrupt = 0;         ///< Disk entries rejected (bad checksum
                                     ///< or malformed) and removed.
  std::uint64_t entries = 0;         ///< Current resident entries.
  std::uint64_t inflight = 0;        ///< Keys currently owned by a solver.
};

class SolutionCache {
 public:
  struct Options {
    std::size_t capacity = 1024;  ///< Total entries across shards.
    std::size_t shards = 8;
    std::string disk_dir;         ///< Empty = memory-only.
  };

  explicit SolutionCache(const Options& options);

  /// Returns the cached result on a hit (memory, then disk). On a miss the
  /// caller becomes the owner of `key` and nullopt is returned: it must
  /// call publish() or abandon() exactly once. Blocks while another owner
  /// is inflight on the same key. `max_wait_s > 0` bounds that wait: on
  /// expiry the caller is promoted to an *additional* owner and gets
  /// nullopt (a duplicate solve), so a crashed owner -- e.g. a remote
  /// borrower that died mid-solve -- degrades to redundant work instead of
  /// parking every later fetch forever.
  std::optional<JobResult> fetch_or_lock(const std::string& key,
                                         double max_wait_s = 0.0);

  /// Owner fulfills the key; waiters wake with a copy. Results flagged
  /// interrupted are not canonical for their key and are treated as
  /// abandon().
  void publish(const std::string& key, const JobResult& result);

  /// Owner gives up (failure/cancel); one waiter is promoted to owner.
  void abandon(const std::string& key);

  /// Peek without inflight participation (no blocking, no ownership).
  std::optional<JobResult> peek(const std::string& key);

  /// Aggregate across shards (the historical counters).
  CacheStats stats() const;
  /// One CacheStats per shard, in shard order -- the scrape-friendly view
  /// (a hot shard shows up as one skewed row, not as diluted totals).
  std::vector<CacheStats> shard_stats() const;
  std::size_t num_shards() const { return shards_.size(); }
  const std::string& disk_dir() const { return disk_dir_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    // Values + LRU (front = most recent).
    std::unordered_map<std::string, JobResult> values;
    std::list<std::string> lru;
    std::unordered_map<std::string, std::list<std::string>::iterator> lru_pos;
    std::unordered_set<std::string> inflight;
    // Monotonic per-shard counters; atomic (not under mu) so publishing
    // never orders against the stats reader.
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> disk_hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> inflight_waits{0};
    std::atomic<std::uint64_t> evictions{0};
    mutable std::atomic<std::uint64_t> corrupt{0};
  };

  Shard& shard_for(const std::string& key);
  void touch_locked(Shard& shard, const std::string& key);
  void insert_locked(Shard& shard, const std::string& key, const JobResult& result);

  std::optional<JobResult> load_disk(const Shard& shard,
                                     const std::string& key) const;
  void store_disk(const std::string& key, const JobResult& result) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_;
  std::string disk_dir_;
};

}  // namespace svtox::svc
